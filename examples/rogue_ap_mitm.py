#!/usr/bin/env python3
"""The paper's §4 proof-of-concept, start to finish.

Builds Figure 1 (the dual-radio rogue gateway, parprouted bridge),
arms Figure 2 (the iptables DNAT + netsed rules, printed verbatim),
walks a victim in, and runs the download experiment.  The victim's
MD5 check passes — on a trojan.

Run:  python examples/rogue_ap_mitm.py
"""

from repro.core.scenario import EVIL_IP, TARGET_IP, build_corp_scenario


def main() -> None:
    scenario = build_corp_scenario(seed=1)
    sim = scenario.sim
    rogue = scenario.rogue

    print("== stage 1: the attacker's gateway machine (Fig. 1) ==")
    print(f"  eth1 (managed)  associated to CORP: {rogue.upstream_associated}")
    print(f"  wlan0 (master)  ssid={rogue.wlan0.core.ssid!r} "
          f"channel={rogue.wlan0.core.channel} bssid={rogue.wlan0.core.bssid} "
          f"(cloned: {rogue.wlan0.core.bssid == scenario.ap.bssid})")
    print("  Appendix A commands executed on the gateway:")
    for cmd in rogue.box.history:
        print(f"    # {cmd}")

    print("\n== stage 2: arm the download MITM (Fig. 2) ==")
    scenario.arm_download_mitm()
    print(f"    # {rogue.box.history[-1]}")
    print(f"  netsed rules: rewrite link -> http://{EVIL_IP}/file.tgz, "
          f"MD5 {scenario.real_md5[:8]}... -> {scenario.fake_md5[:8]}...")

    print("\n== stage 3: the unsuspecting client connects ==")
    victim = scenario.add_victim()
    sim.run_for(5.0)
    print(f"  victim associated on channel {victim.associated_channel} "
          f"(rogue clients: {[str(m) for m in rogue.captured_clients()]})")
    rtts = []
    victim.ping("10.0.0.1", on_reply=rtts.append)
    sim.run_for(2.0)
    print(f"  victim pings its gateway through the bridge: {rtts[0]*1000:.1f} ms")

    print("\n== stage 4: the download ==")
    outcome = scenario.run_download_experiment(victim)
    print(f"  page link followed : {outcome.link}")
    print(f"  published MD5SUM   : {outcome.published_md5} "
          f"({'FORGED' if outcome.published_md5 == scenario.fake_md5 else 'real'})")
    print(f"  computed MD5       : {outcome.computed_md5}")
    print(f"  integrity check    : {'PASSED' if outcome.md5_ok else 'failed'}")
    print(f"  binary executed    : {outcome.executed}")
    print(f"  binary trojaned    : {outcome.trojaned}")
    print(f"\n  VICTIM COMPROMISED : {outcome.compromised}")
    print(f"  (netsed made {rogue.netsed.total_replacements} stream replacements)")


if __name__ == "__main__":
    main()
