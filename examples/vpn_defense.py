#!/usr/bin/env python3
"""The paper's §5 solution: VPN all traffic to a trusted wired endpoint.

Same rogue, same netsed rules as examples/rogue_ap_mitm.py — but the
victim tunnels everything through PPP-over-SSH to a pre-arranged
endpoint.  The attack sees only ciphertext on port 22, and the §5.2
requirements checklist is evaluated against the configuration.

Run:  python examples/vpn_defense.py
"""

from repro.core.scenario import build_corp_scenario
from repro.defense.policy import check_vpn_requirements


def main() -> None:
    scenario = build_corp_scenario(seed=2)
    scenario.arm_download_mitm()
    sim = scenario.sim

    victim = scenario.add_victim()
    sim.run_for(5.0)
    print(f"victim captured by the rogue (channel {victim.associated_channel})")

    print("\n== connecting the VPN (credentials pre-established out of band) ==")
    vpn = scenario.connect_vpn(victim)
    sim.run_for(5.0)
    print(f"  tunnel up: {vpn.connected}  inner ip: {vpn.tun.ip}")
    print("  victim routing table now:")
    for line in str(victim.routing).splitlines():
        print(f"    {line}")

    print("\n== §5.2 requirements checklist ==")
    report = check_vpn_requirements(vpn, endpoint_kind="corporate-wired")
    print(report)

    print("\n== the same download, through the same rogue ==")
    outcome = scenario.run_download_experiment(victim, settle_s=90.0)
    print(f"  link followed    : {outcome.link}")
    print(f"  integrity check  : {'passed' if outcome.md5_ok else 'FAILED'}")
    print(f"  trojaned         : {outcome.trojaned}")
    print(f"  compromised      : {outcome.compromised}")
    print(f"  netsed saw       : {scenario.rogue.netsed.connections_proxied} "
          f"port-80 flows (everything rode port 22, encrypted)")
    print(f"  packets tunnelled: {vpn.packets_tunnelled}")


if __name__ == "__main__":
    main()
