#!/usr/bin/env python3
"""A victim-runnable rogue check: is my gateway really one hop away?

The parprouted rogue is ARP-transparent but it *routes* — it decrements
TTL.  A TTL=1 echo probe to the gateway therefore dies at the rogue,
which answers TIME_EXCEEDED from its own IP address: the attacker's
10.0.0.24, in plain sight, discoverable by the victim alone with no
monitoring infrastructure.

Run:  python examples/first_hop_check.py
"""

from repro.core.scenario import build_corp_scenario
from repro.defense.pathcheck import check_first_hop
from repro.radio.propagation import Position


def probe(scenario, victim, label):
    results = []
    check_first_hop(victim, "10.0.0.1", results.append)
    scenario.sim.run_for(5.0)
    result = results[0]
    print(f"  [{label}] {result.describe()}")
    return result


def main() -> None:
    print("== clean network ==")
    clean = build_corp_scenario(seed=6, with_rogue=False)
    victim = clean.add_victim()
    clean.sim.run_for(5.0)
    probe(clean, victim, "clean")

    print("\n== same victim behaviour, rogue in path ==")
    attacked = build_corp_scenario(seed=6)
    victim2 = attacked.add_victim()
    attacked.sim.run_for(5.0)
    print(f"  (victim associated on channel {victim2.associated_channel} — captured)")
    result = probe(attacked, victim2, "captured")
    assert result.interloper is not None
    print(f"\n  The address {result.interloper} is the rogue gateway's wlan0")
    print("  (Appendix A assigns it 10.0.0.24). The victim can now walk")
    print("  away, report it, or bring up the §5 VPN.")

    print("\n== traceroute view of the same path ==")
    hops = []
    for ttl in (1, 2, 3):
        attacked.sim.run_for(0.1)
        victim2.ping("198.51.100.80", ttl=ttl,
                     on_reply=lambda rtt, t=ttl: hops.append((t, "198.51.100.80 (dest)")),
                     on_error=lambda ip, typ, t=ttl: hops.append((t, str(ip))))
        attacked.sim.run_for(3.0)
    for ttl, where in hops:
        print(f"  hop {ttl}: {where}")


if __name__ == "__main__":
    main()
