#!/usr/bin/env python3
"""Causal frame tracing: follow the Fig. 2 rewrite through the stack.

Runs the download-MITM world under a flight recorder, then uses the
lineage API directly: find the netsed rewrite hop, walk its ancestor
chain back to the victim's first transmission, walk forward to the
frame that delivered the tampered payload, corroborate against the
simulator's own event trace, and export pcap + Perfetto files.

Run:  python examples/flight_recorder.py
"""

import os
import tempfile

from repro.core.scenario import build_corp_scenario
from repro.obs.export import write_chrome_trace, write_pcap
from repro.obs.lineage import recording


def main() -> None:
    print("== stage 1: run the Fig. 2 world under a flight recorder ==")
    with recording(capacity=8192) as rec:
        scenario = build_corp_scenario(seed=1)
        scenario.arm_download_mitm()
        victim = scenario.add_victim()
        scenario.sim.run_for(5.0)
        outcome = scenario.run_download_experiment(victim)
    s = rec.summary()
    print(f"  victim compromised: {outcome.compromised}")
    print(f"  recorded: {s['lineages']} lineages, {s['hops']} hops "
          f"(by kind: {s['by_kind']}, evicted: {s['evicted']})")

    print("\n== stage 2: find the rewrite and walk its causes ==")
    lineage, hop = next(rec.find_hops("netsed", "rewrite"))
    chain = rec.ancestors(lineage.trace_id)
    print(f"  netsed fired {hop.detail['replacements']} replacement(s) on "
          f"frame #{lineage.trace_id} at t={hop.t:.6f}")
    print(f"  causal chain: {len(chain)} frames, rooted at "
          f"#{chain[0].trace_id} ({chain[0].origin}, t0={chain[0].t0:.3f})")
    print(f"  payload diff at the rewrite:")
    print(f"    - {hop.detail['before']}")
    print(f"    + {hop.detail['after']}")

    print("\n== stage 3: ...and forward to the victim ==")
    for child in rec.descendants(lineage.trace_id):
        for h in child.find("nic", "deliver"):
            print(f"  frame #{child.trace_id}: {h.layer}.{h.action}@{h.host} "
                  f"at t={h.t:.6f}")

    print("\n== stage 4: corroborate against the simulator's event trace ==")
    for trace in rec.sim_traces:
        for ev in trace.between(hop.t - 0.5, hop.t + 0.5, category="netsed."):
            print(f"  [{ev.time:.6f}] {ev.category} from {ev.source}: "
                  f"{ev.detail}")

    print("\n== stage 5: export ==")
    out = tempfile.mkdtemp(prefix="repro-trace-")
    pcap = os.path.join(out, "fig2.pcap")
    chrome = os.path.join(out, "fig2.json")
    print(f"  {pcap}: {write_pcap(pcap, rec)} 802.11 frames "
          f"(open in Wireshark)")
    print(f"  {chrome}: {write_chrome_trace(chrome, rec)} events "
          f"(drop onto https://ui.perfetto.dev)")


if __name__ == "__main__":
    main()
