#!/usr/bin/env python3
"""Airsnort in action: passive WEP key recovery from monitor-mode capture.

A victim station chats over the WEP-protected CORP WLAN; a sniffer in
the parking lot collects frames; the FMS attack recovers the root key
from the weak-IV subset; the recovered key then decrypts the victim's
traffic — §2.1's "provides no protection" and §4's "retrieved the WEP
key via Airsnort" in one script.

(Time compression: the victim's IV counter is steered through the
weak-IV classes so the demo collects in seconds what a real sequential
card spreads over ~10M frames; E-FMS in benchmarks/ quantifies that
economics honestly.)

Run:  python examples/wep_cracking.py
"""

from repro.attacks.airsnort import AirsnortAttack
from repro.attacks.sniffer import MonitorSniffer
from repro.core.scenario import build_corp_scenario
from repro.crypto.fms import weak_iv_for
from repro.radio.propagation import Position
from repro.workloads.traffic import WepTrafficPump


class WeakIvSweep:
    """IV source cycling the FMS-weak classes (see module docstring)."""

    def __init__(self) -> None:
        self._n = 0

    def next_iv(self) -> bytes:
        a, x = self._n % 5, (self._n // 5) % 256
        self._n += 1
        return weak_iv_for(a, x)


def main() -> None:
    scenario = build_corp_scenario(seed=5, with_rogue=False)
    sim = scenario.sim
    print(f"CORP runs {scenario.wep.bits}-bit WEP; the key is not ours to know.")

    sniffer = MonitorSniffer(sim, scenario.medium, Position(25.0, 10.0))
    victim = scenario.add_victim()
    sim.run_for(5.0)
    victim.wlan.iv_gen = WeakIvSweep()
    pump = WepTrafficPump(victim, "10.0.0.1", rate_pps=400.0)
    pump.start()

    attack = AirsnortAttack(sniffer, key_length=5)
    cracked = None
    while cracked is None:
        sim.run_for(20.0)
        fed = attack.ingest()
        cracked = attack.crack()
        print(f"  t={sim.now:6.1f}s  captured {len(sniffer.capture):6d} frames, "
              f"{attack.weak_iv_count:5d} weak IVs -> "
              f"{'KEY RECOVERED' if cracked else 'not yet'}")
    pump.stop()

    print(f"\nrecovered key: {cracked.key!r} "
          f"(truth: {scenario.wep.key!r}, match: {cracked.key == scenario.wep.key})")

    payloads = list(sniffer.decrypted_payloads(cracked))
    print(f"decrypting the capture with it: {len(payloads)} frames readable")
    sample = next(p for _, _, p in payloads if b"background traffic" in p)
    print(f"sample plaintext from the air: ...{sample[-30:]!r}")


if __name__ == "__main__":
    main()
