#!/usr/bin/env python3
"""§5.1's scenario: the careful user, the trusted news site, the
hostile hotspot.

A traveler joins "FreeAirportWiFi" (DHCP, DNS, NAT — all perfectly
normal), browses a big trustworthy news site, and gets exploit script
injected into the page in flight.  A second traveler with current
patches survives; a third visits through an honest hotspot as the
control.  Then the §2.3 detection angle: what would monitoring see?

Run:  python examples/hostile_hotspot.py
"""

from repro.core.scenario import build_hotspot_scenario


def main() -> None:
    print("== arm 1: unpatched traveler, hostile hotspot ==")
    world = build_hotspot_scenario(seed=3, hostile=True)
    station, browser = world.add_visitor(name="traveler", patched=False)
    print(f"  joined {world.hotspot.ssid!r}: ip={station.wlan.ip} "
          f"(gateway and DNS are the attacker's)")
    visit = browser.visit("http://news.example.com/index.html")
    world.sim.run_for(40.0)
    print(f"  page loaded: HTTP {visit.status}")
    print(f"  inline script served: {visit.script!r}")
    print(f"  exploit executed: {visit.exploit_executed} -> "
          f"compromised: {browser.compromised}")
    print(f"  (gateway tampered {world.hotspot.tampered_segments} TCP segments)")

    print("\n== arm 2: patched traveler, hostile hotspot ==")
    world2 = build_hotspot_scenario(seed=3, hostile=True)
    _, browser2 = world2.add_visitor(name="patched-traveler", patched=True)
    browser2.visit("http://news.example.com/index.html")
    world2.sim.run_for(40.0)
    print(f"  tampered in flight: {world2.hotspot.tampered_segments > 0}, "
          f"compromised: {browser2.compromised}")

    print("\n== arm 3: unpatched traveler, honest hotspot (control) ==")
    world3 = build_hotspot_scenario(seed=3, hostile=False)
    _, browser3 = world3.add_visitor(name="control-traveler", patched=False)
    visit3 = browser3.visit("http://news.example.com/index.html")
    world3.sim.run_for(40.0)
    print(f"  script served: {visit3.script!r}")
    print(f"  compromised: {browser3.compromised}")

    print("\nThe paper's point (§5.1): the user's trust in the website was")
    print("irrelevant — only the path mattered. Hence: VPN everything (§5).")


if __name__ == "__main__":
    main()
