#!/usr/bin/env python3
"""§6 future work, built: detect the rogue (§2.3) and *counter* it.

A WIDS sensor watches the air with the sequence-control monitor; when
the Fig. 1 rogue appears (authorized BSSID beaconing on an unauthorized
channel), the sensor contains it with broadcast deauthentication into
the rogue's BSS — evicting the captured victim back to the legitimate
AP and keeping it there.

Also shown: the honest limitation.  Containment is itself spoofed
deauth; it works only because 802.11b management frames are
unauthenticated, and it is an arms race the attacker can rejoin.

Run:  python examples/wids_containment.py
"""

from repro.core.scenario import build_corp_scenario
from repro.defense.containment import ContainmentSensor
from repro.radio.propagation import Position


def main() -> None:
    scenario = build_corp_scenario(seed=4)
    sim = scenario.sim

    victim = scenario.add_victim()
    sim.run_for(5.0)
    print(f"victim captured by the rogue: channel {victim.associated_channel}")

    print("\n== the WIDS sensor comes online ==")
    sensor = ContainmentSensor(
        sim, scenario.medium, Position(35.0, 5.0),
        authorized=[(scenario.ap.bssid, 1)],
        containment_rate_hz=10.0)
    sensor.start()

    evicted_at = None
    for _ in range(60):
        sim.run_for(1.0)
        if not sensor.actions:
            continue
        if evicted_at is None and victim.associated_channel == 1:
            evicted_at = sim.now
            break
    action = sensor.actions[0]
    print(f"  t={action.time:.1f}s  CONTAIN {action.bssid} ch{action.channel}")
    print(f"    reason: {action.reason}")
    print(f"  t={evicted_at:.1f}s  victim evicted back to the legitimate AP "
          f"(channel {victim.associated_channel})")
    print(f"  containment deauths injected so far: {sensor.deauths_injected}")

    print("\n== holding the line ==")
    sim.run_for(20.0)
    print(f"  20s later the victim is still on channel "
          f"{victim.associated_channel} (contained BSSes: "
          f"{[(str(b), ch) for b, ch in sensor.containing]})")

    print("\nLimitation (documented in repro/defense/containment.py): this is")
    print("spoofed deauth fighting spoofed deauth — an arms race, not a fix.")
    print("The §5 VPN protects the client regardless of who wins it.")


if __name__ == "__main__":
    main()
