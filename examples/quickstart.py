#!/usr/bin/env python3
"""Quickstart: build a corporate WLAN, watch a client join, move traffic.

This is the smallest end-to-end tour of the library's public API:
an 802.11b access point with WEP, a client station, ICMP and HTTP over
the simulated stack, and the trace log that every experiment builds on.

Run:  python examples/quickstart.py
"""

from repro.core.scenario import TARGET_IP, build_corp_scenario
from repro.httpsim.client import HttpClient


def main() -> None:
    # A ready-made world: CORP WLAN (WEP key "SECRET"), a border router,
    # and a web server on the WAN.  No rogue in this one.
    scenario = build_corp_scenario(seed=7, with_rogue=False)
    sim = scenario.sim

    # A victim laptop, configured the way §4.1 describes: SSID CORP,
    # the WEP key entered, a static address, the corp default gateway.
    victim = scenario.add_victim()
    sim.run_for(5.0)
    print(f"associated: {victim.wlan.associated} "
          f"(bssid={victim.associated_bssid}, channel={victim.associated_channel})")

    # ICMP through the AP bridge and the border router.
    rtts = []
    victim.ping("10.0.0.1", on_reply=rtts.append)
    victim.ping(TARGET_IP, on_reply=rtts.append)
    sim.run_for(3.0)
    for label, rtt in zip(("gateway", "web server"), rtts):
        print(f"ping {label}: {rtt * 1000:.2f} ms")

    # HTTP over the simulated TCP.
    pages = []
    HttpClient(victim).get(f"http://{TARGET_IP}/download.html", pages.append)
    sim.run_for(30.0)
    page = pages[0]
    print(f"HTTP GET /download.html -> {page.status}, {len(page.body)} bytes")
    print(page.body.decode().strip())

    # Everything that happened is in the trace.
    print("\n--- trace (dot11 events) ---")
    print(sim.trace.dump("dot11"))


if __name__ == "__main__":
    main()
