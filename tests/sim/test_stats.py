"""Statistics accumulators."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.campaign import TrialStats
from repro.sim.stats import Counter, Histogram, RateMeter, TimeSeries, Welford, summarize


def _split(xs, cuts):
    """Split ``xs`` into parts at the (sorted, clamped) cut points."""
    bounds = sorted(min(c, len(xs)) for c in cuts)
    parts, start = [], 0
    for b in bounds + [len(xs)]:
        parts.append(xs[start:b])
        start = b
    return parts


def test_counter_incr_and_report():
    c = Counter()
    c.incr("frames")
    c.incr("frames", 4)
    c.incr("drops")
    assert c.get("frames") == 5
    assert c.get("missing") == 0
    assert "frames" in c.report()


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=200))
def test_welford_matches_two_pass(xs):
    w = Welford()
    w.extend(xs)
    mean = sum(xs) / len(xs)
    var = sum((x - mean) ** 2 for x in xs) / (len(xs) - 1)
    assert w.n == len(xs)
    assert math.isclose(w.mean, mean, rel_tol=1e-9, abs_tol=1e-6)
    assert math.isclose(w.variance, var, rel_tol=1e-6, abs_tol=1e-5)
    assert w.min == min(xs)
    assert w.max == max(xs)


def test_welford_empty_is_nan():
    assert math.isnan(Welford().mean)


def test_histogram_binning_and_overflow():
    h = Histogram(0.0, 10.0, 10)
    for x in [0.5, 1.5, 1.7, 9.9, -1.0, 10.0, 25.0]:
        h.add(x)
    assert h.counts[0] == 1
    assert h.counts[1] == 2
    assert h.counts[9] == 1
    assert h.underflow == 1
    assert h.overflow == 2
    assert h.total == 7


def test_histogram_quantile_monotone():
    h = Histogram(0.0, 100.0, 100)
    for x in range(100):
        h.add(float(x))
    assert h.quantile(0.1) < h.quantile(0.5) < h.quantile(0.9)


def test_histogram_invalid_bounds():
    with pytest.raises(ValueError):
        Histogram(1.0, 1.0, 5)


def test_timeseries_ordering_enforced():
    ts = TimeSeries()
    ts.add(1.0, 5.0)
    ts.add(2.0, 7.0)
    with pytest.raises(ValueError):
        ts.add(1.5, 0.0)
    assert len(ts) == 2
    assert ts.mean() == 6.0


def test_timeseries_window():
    ts = TimeSeries()
    for t in range(10):
        ts.add(float(t), float(t * 10))
    win = ts.window(2.0, 5.0)
    assert win.times == [2.0, 3.0, 4.0]


def test_rate_meter():
    rm = RateMeter()
    assert rm.rate() == 0.0
    rm.mark(0.0)
    rm.mark(1.0)
    rm.mark(2.0)
    assert rm.rate() == pytest.approx(1.5)  # 3 events over 2 seconds


def test_summarize_small_sample():
    s = summarize([1.0, 2.0, 3.0, 4.0])
    assert s["n"] == 4
    assert s["mean"] == 2.5
    assert s["median"] == 2.5
    assert s["min"] == 1.0 and s["max"] == 4.0


def test_summarize_empty():
    assert summarize([])["n"] == 0


# ----------------------------------------------------------------------
# merge(): partials over any split must equal single-pass accumulation
# (the contract the fleet engine's per-worker sharding relies on)
# ----------------------------------------------------------------------

@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), max_size=200),
       st.lists(st.integers(min_value=0, max_value=200), max_size=4))
def test_welford_merge_equals_single_pass(xs, cuts):
    whole = Welford()
    whole.extend(xs)
    merged = Welford()
    for part in _split(xs, cuts):
        partial = Welford()
        partial.extend(part)
        merged.merge(partial)
    assert merged.n == whole.n
    if xs:
        assert merged.min == whole.min and merged.max == whole.max
        assert math.isclose(merged.mean, whole.mean, rel_tol=1e-9, abs_tol=1e-6)
    assert math.isclose(merged.variance, whole.variance,
                        rel_tol=1e-9, abs_tol=1e-6)


def test_welford_merge_into_empty_copies_everything():
    src = Welford()
    src.extend([1.0, 2.0, 3.0])
    dst = Welford()
    dst.merge(src)
    assert (dst.n, dst.mean, dst.variance) == (src.n, src.mean, src.variance)
    assert (dst.min, dst.max) == (1.0, 3.0)
    # and merging an empty accumulator is a no-op
    before = (dst.n, dst.mean, dst.variance)
    dst.merge(Welford())
    assert (dst.n, dst.mean, dst.variance) == before


@given(st.lists(st.floats(min_value=-50.0, max_value=150.0), max_size=200),
       st.lists(st.integers(min_value=0, max_value=200), max_size=4))
def test_histogram_merge_equals_single_pass(xs, cuts):
    whole = Histogram(0.0, 100.0, 20)
    for x in xs:
        whole.add(x)
    merged = Histogram(0.0, 100.0, 20)
    for part in _split(xs, cuts):
        partial = Histogram(0.0, 100.0, 20)
        for x in part:
            partial.add(x)
        merged.merge(partial)
    assert merged.counts == whole.counts  # exact: counts are integers
    assert merged.underflow == whole.underflow
    assert merged.overflow == whole.overflow
    assert merged.total == whole.total


def test_histogram_merge_rejects_mismatched_binning():
    with pytest.raises(ValueError):
        Histogram(0.0, 10.0, 10).merge(Histogram(0.0, 10.0, 5))
    with pytest.raises(ValueError):
        Histogram(0.0, 10.0, 10).merge(Histogram(0.0, 20.0, 10))


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), max_size=200),
       st.lists(st.integers(min_value=0, max_value=200), max_size=4))
def test_trialstats_merge_is_exact_concatenation(xs, cuts):
    whole = TrialStats()
    for x in xs:
        whole.add(x)
    merged = TrialStats()
    for part in _split(xs, cuts):
        partial = TrialStats()
        for x in part:
            partial.add(x)
        merged.merge(partial)
    # in-order merge reproduces the serial sample list bit-for-bit,
    # so every derived statistic is identical too (same float ops)
    assert merged.values == whole.values
    if len(xs) >= 2:
        assert merged.mean == whole.mean
        assert merged.stdev == whole.stdev


@given(st.dictionaries(st.sampled_from("abcdef"),
                       st.integers(min_value=-100, max_value=100)),
       st.dictionaries(st.sampled_from("abcdef"),
                       st.integers(min_value=-100, max_value=100)))
def test_counter_merge_adds_counts(left, right):
    a, b = Counter(), Counter()
    for k, v in left.items():
        a.incr(k, v)
    for k, v in right.items():
        b.incr(k, v)
    a.merge(b)
    for key in set(left) | set(right):
        assert a.get(key) == left.get(key, 0) + right.get(key, 0)


def test_merge_returns_self_for_chaining():
    w = Welford()
    assert w.merge(Welford()) is w
    c = Counter()
    assert c.merge(Counter()) is c
    h = Histogram(0.0, 1.0, 2)
    assert h.merge(Histogram(0.0, 1.0, 2)) is h
    t = TrialStats()
    assert t.merge(TrialStats()) is t
