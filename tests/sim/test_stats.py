"""Statistics accumulators."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.stats import Counter, Histogram, RateMeter, TimeSeries, Welford, summarize


def test_counter_incr_and_report():
    c = Counter()
    c.incr("frames")
    c.incr("frames", 4)
    c.incr("drops")
    assert c.get("frames") == 5
    assert c.get("missing") == 0
    assert "frames" in c.report()


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=200))
def test_welford_matches_two_pass(xs):
    w = Welford()
    w.extend(xs)
    mean = sum(xs) / len(xs)
    var = sum((x - mean) ** 2 for x in xs) / (len(xs) - 1)
    assert w.n == len(xs)
    assert math.isclose(w.mean, mean, rel_tol=1e-9, abs_tol=1e-6)
    assert math.isclose(w.variance, var, rel_tol=1e-6, abs_tol=1e-5)
    assert w.min == min(xs)
    assert w.max == max(xs)


def test_welford_empty_is_nan():
    assert math.isnan(Welford().mean)


def test_histogram_binning_and_overflow():
    h = Histogram(0.0, 10.0, 10)
    for x in [0.5, 1.5, 1.7, 9.9, -1.0, 10.0, 25.0]:
        h.add(x)
    assert h.counts[0] == 1
    assert h.counts[1] == 2
    assert h.counts[9] == 1
    assert h.underflow == 1
    assert h.overflow == 2
    assert h.total == 7


def test_histogram_quantile_monotone():
    h = Histogram(0.0, 100.0, 100)
    for x in range(100):
        h.add(float(x))
    assert h.quantile(0.1) < h.quantile(0.5) < h.quantile(0.9)


def test_histogram_invalid_bounds():
    with pytest.raises(ValueError):
        Histogram(1.0, 1.0, 5)


def test_timeseries_ordering_enforced():
    ts = TimeSeries()
    ts.add(1.0, 5.0)
    ts.add(2.0, 7.0)
    with pytest.raises(ValueError):
        ts.add(1.5, 0.0)
    assert len(ts) == 2
    assert ts.mean() == 6.0


def test_timeseries_window():
    ts = TimeSeries()
    for t in range(10):
        ts.add(float(t), float(t * 10))
    win = ts.window(2.0, 5.0)
    assert win.times == [2.0, 3.0, 4.0]


def test_rate_meter():
    rm = RateMeter()
    assert rm.rate() == 0.0
    rm.mark(0.0)
    rm.mark(1.0)
    rm.mark(2.0)
    assert rm.rate() == pytest.approx(1.5)  # 3 events over 2 seconds


def test_summarize_small_sample():
    s = summarize([1.0, 2.0, 3.0, 4.0])
    assert s["n"] == 4
    assert s["mean"] == 2.5
    assert s["median"] == 2.5
    assert s["min"] == 1.0 and s["max"] == 4.0


def test_summarize_empty():
    assert summarize([])["n"] == 0
