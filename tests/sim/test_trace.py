"""Trace: emission, filtering, listeners, capacity."""

from repro.sim.kernel import Simulator
from repro.sim.trace import Trace, TraceRecord


def test_emit_records_time_from_bound_clock():
    sim = Simulator(seed=0)
    sim.schedule(2.5, sim.trace.emit, "test.cat", "src", value=1)
    sim.run()
    rec = sim.trace.last("test.cat")
    assert rec is not None
    assert rec.time == 2.5
    assert rec.detail == {"value": 1}


def test_select_by_category_prefix():
    t = Trace()
    t.emit("dot11.assoc", "a")
    t.emit("dot11.deauth", "b")
    t.emit("vpn.connected", "c")
    assert t.count("dot11") == 2
    assert t.count("dot11.assoc") == 1
    assert t.count("vpn") == 1
    assert t.count() == 3


def test_select_by_source_and_detail():
    t = Trace()
    t.emit("x", "host1", code=1)
    t.emit("x", "host2", code=2)
    t.emit("x", "host1", code=2)
    assert t.count("x", source="host1") == 2
    assert t.count("x", code=2) == 2
    assert t.count("x", source="host1", code=2) == 1


def test_select_since():
    sim = Simulator(seed=0)
    sim.schedule(1.0, sim.trace.emit, "a", "s")
    sim.schedule(5.0, sim.trace.emit, "a", "s")
    sim.run()
    assert sim.trace.count("a", since=2.0) == 1


def test_subscribe_and_unsubscribe():
    t = Trace()
    seen = []
    unsub = t.subscribe("dot11", seen.append)
    t.emit("dot11.assoc", "a")
    t.emit("vpn.up", "b")
    assert len(seen) == 1
    unsub()
    t.emit("dot11.assoc", "a")
    assert len(seen) == 1


def test_capacity_drops_oldest():
    t = Trace(capacity=10)
    for i in range(25):
        t.emit("c", "s", i=i)
    assert len(t.records) <= 11
    # the newest records survive
    assert t.records[-1].detail["i"] == 24


def test_capacity_trims_oldest_half_exactly_once_past_limit():
    t = Trace(capacity=10)
    for i in range(10):
        t.emit("c", "s", i=i)
    assert [r.detail["i"] for r in t.records] == list(range(10))  # at capacity: untouched
    t.emit("c", "s", i=10)  # 11th record crosses the limit
    assert [r.detail["i"] for r in t.records] == [5, 6, 7, 8, 9, 10]
    # the buffer then refills to capacity before the next trim
    for i in range(11, 15):
        t.emit("c", "s", i=i)
    assert [r.detail["i"] for r in t.records] == [5, 6, 7, 8, 9, 10, 11, 12, 13, 14]
    t.emit("c", "s", i=15)  # crosses the limit again: one more half-trim
    assert [r.detail["i"] for r in t.records] == [10, 11, 12, 13, 14, 15]


def test_listeners_fire_even_for_records_later_trimmed():
    t = Trace(capacity=10)
    seen = []
    t.subscribe("c", lambda rec: seen.append(rec.detail["i"]))
    for i in range(25):
        t.emit("c", "s", i=i)
    assert seen == list(range(25))  # every emission, including trimmed ones
    assert len(t.records) < 25


def test_disabled_trace_is_silent():
    t = Trace()
    t.enabled = False
    assert t.emit("c", "s") is None
    assert t.count() == 0


def test_disabled_trace_does_not_notify_listeners():
    t = Trace()
    seen = []
    t.subscribe("", seen.append)
    t.enabled = False
    t.emit("c", "s")
    assert seen == []
    t.enabled = True
    t.emit("c", "s")
    assert len(seen) == 1


def test_record_detail_is_defensively_copied_on_construction():
    # Regression: TraceRecord is frozen but its detail dict was shared
    # with the caller — mutating the caller's dict rewrote recorded
    # history in place.
    payload = {"state": "associated"}
    rec = TraceRecord(time=0.0, category="dot11.assoc", source="victim",
                      detail=payload)
    payload["state"] = "deauthed"
    payload["extra"] = True
    assert rec.detail == {"state": "associated"}


def test_emit_kwargs_cannot_be_mutated_after_the_fact():
    t = Trace()
    detail = {"seq": 1}
    t.emit("c.x", "s", **detail)
    detail["seq"] = 999  # emit built its own dict from **kwargs anyway...
    rec = t.last("c.x")
    assert rec is not None and rec.detail == {"seq": 1}
    # ...but a record constructed straight from a shared dict is the
    # case the defensive copy exists for:
    shared = {"seq": 2}
    direct = TraceRecord(time=1.0, category="c.y", source="s", detail=shared)
    shared.clear()
    assert direct.detail == {"seq": 2}


def test_between_bounds_are_inclusive():
    sim = Simulator(seed=0)
    for t in (1.0, 2.0, 3.0, 4.0):
        sim.schedule(t, sim.trace.emit, "a.x", "s", t=t)
    sim.run()
    got = [r.detail["t"] for r in sim.trace.between(2.0, 3.0)]
    assert got == [2.0, 3.0]
    # composes with select()'s filters
    assert [r.detail["t"] for r in sim.trace.between(0.0, 9.0, t=4.0)] == [4.0]


def test_between_with_category_prefix():
    sim = Simulator(seed=0)
    sim.schedule(1.0, sim.trace.emit, "netsed.rewrite", "gw")
    sim.schedule(1.0, sim.trace.emit, "dot11.assoc", "ap")
    sim.schedule(5.0, sim.trace.emit, "netsed.rewrite", "gw")
    sim.run()
    got = list(sim.trace.between(0.0, 2.0, category="netsed."))
    assert len(got) == 1 and got[0].category == "netsed.rewrite"


def test_matching_is_a_category_prefix_view():
    t = Trace()
    t.emit("netsed.rewrite", "gw", replacements=2)
    t.emit("netsed.accept", "gw")
    t.emit("netfilter.dnat", "gw")
    cats = [r.category for r in t.matching("netsed.")]
    assert cats == ["netsed.rewrite", "netsed.accept"]
    assert list(t.matching("nosuch.")) == []


def test_record_to_dict_from_dict_roundtrip():
    rec = TraceRecord(time=1.25, category="dot11.assoc", source="victim",
                      detail={"bssid": "aa:bb", "ok": True})
    data = rec.to_dict()
    assert data == {"time": 1.25, "category": "dot11.assoc",
                    "source": "victim", "detail": {"bssid": "aa:bb", "ok": True}}
    clone = TraceRecord.from_dict(data)
    assert clone == rec
    # the dict is a copy: mutating it can't reach back into the record
    data["detail"]["ok"] = False
    assert rec.detail["ok"] is True


def test_trace_to_dicts_from_dicts_roundtrip():
    sim = Simulator(seed=0)
    sim.schedule(1.0, sim.trace.emit, "a.x", "s1", k=1)
    sim.schedule(2.0, sim.trace.emit, "b.y", "s2")
    sim.run()
    clone = Trace.from_dicts(sim.trace.to_dicts())
    assert clone.records == sim.trace.records
    assert clone.count("a") == 1


def test_trace_summary():
    sim = Simulator(seed=0)
    sim.schedule(1.0, sim.trace.emit, "a.x", "s")
    sim.schedule(2.0, sim.trace.emit, "a.x", "s")
    sim.schedule(3.0, sim.trace.emit, "b.y", "s")
    sim.run()
    assert sim.trace.summary() == {
        "n": 3, "by_category": {"a.x": 2, "b.y": 1},
        "t_first": 1.0, "t_last": 3.0,
    }
    assert Trace().summary() == {"n": 0, "by_category": {},
                                 "t_first": None, "t_last": None}


def test_dump_is_readable():
    t = Trace()
    t.emit("cat.sub", "host", k="v")
    out = t.dump()
    assert "cat.sub" in out and "host" in out and "k='v'" in out


# ----------------------------------------------------------------------
# listener containment: one broken/mutating listener must not break
# emission, starve other listeners, or lose the record
# ----------------------------------------------------------------------

def test_raising_listener_is_contained_and_recorded():
    t = Trace()
    boom = RuntimeError("listener bug")

    def bad(rec):
        raise boom

    t.subscribe("c", bad)
    rec = t.emit("c.x", "s", k=1)  # must not raise
    assert rec is not None
    assert t.count("c.x") == 1  # the record itself survived
    assert t.listener_errors == [("c.x", bad, boom)]


def test_raising_listener_does_not_starve_later_listeners():
    t = Trace()
    seen = []

    def bad(rec):
        raise ValueError("first listener broken")

    t.subscribe("c", bad)
    t.subscribe("c", lambda rec: seen.append(rec.detail["i"]))
    t.emit("c.x", "s", i=1)
    t.emit("c.x", "s", i=2)
    assert seen == [1, 2]
    assert len(t.listener_errors) == 2


def test_listener_unsubscribing_mid_emit_does_not_skip_others():
    t = Trace()
    seen = []
    unsubs = []

    def self_removing(rec):
        unsubs[0]()  # mutates _listeners during the notify loop

    unsubs.append(t.subscribe("c", self_removing))
    t.subscribe("c", lambda rec: seen.append(rec.detail["i"]))
    t.emit("c.x", "s", i=1)
    assert seen == [1]  # the second listener still fired this emit
    t.emit("c.x", "s", i=2)
    assert seen == [1, 2]
    assert t.listener_errors == []


def test_listener_subscribing_mid_emit_applies_from_next_emit():
    t = Trace()
    late = []

    def adder(rec):
        if not late:
            t.subscribe("c", lambda r: late.append(r.detail["i"]))

    t.subscribe("c", adder)
    t.emit("c.x", "s", i=1)
    assert late == []  # not notified for the emit that added it
    t.emit("c.x", "s", i=2)
    assert late == [2]
