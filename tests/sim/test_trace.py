"""Trace: emission, filtering, listeners, capacity."""

from repro.sim.kernel import Simulator
from repro.sim.trace import Trace


def test_emit_records_time_from_bound_clock():
    sim = Simulator(seed=0)
    sim.schedule(2.5, sim.trace.emit, "test.cat", "src", value=1)
    sim.run()
    rec = sim.trace.last("test.cat")
    assert rec is not None
    assert rec.time == 2.5
    assert rec.detail == {"value": 1}


def test_select_by_category_prefix():
    t = Trace()
    t.emit("dot11.assoc", "a")
    t.emit("dot11.deauth", "b")
    t.emit("vpn.connected", "c")
    assert t.count("dot11") == 2
    assert t.count("dot11.assoc") == 1
    assert t.count("vpn") == 1
    assert t.count() == 3


def test_select_by_source_and_detail():
    t = Trace()
    t.emit("x", "host1", code=1)
    t.emit("x", "host2", code=2)
    t.emit("x", "host1", code=2)
    assert t.count("x", source="host1") == 2
    assert t.count("x", code=2) == 2
    assert t.count("x", source="host1", code=2) == 1


def test_select_since():
    sim = Simulator(seed=0)
    sim.schedule(1.0, sim.trace.emit, "a", "s")
    sim.schedule(5.0, sim.trace.emit, "a", "s")
    sim.run()
    assert sim.trace.count("a", since=2.0) == 1


def test_subscribe_and_unsubscribe():
    t = Trace()
    seen = []
    unsub = t.subscribe("dot11", seen.append)
    t.emit("dot11.assoc", "a")
    t.emit("vpn.up", "b")
    assert len(seen) == 1
    unsub()
    t.emit("dot11.assoc", "a")
    assert len(seen) == 1


def test_capacity_drops_oldest():
    t = Trace(capacity=10)
    for i in range(25):
        t.emit("c", "s", i=i)
    assert len(t.records) <= 11
    # the newest records survive
    assert t.records[-1].detail["i"] == 24


def test_disabled_trace_is_silent():
    t = Trace()
    t.enabled = False
    assert t.emit("c", "s") is None
    assert t.count() == 0


def test_dump_is_readable():
    t = Trace()
    t.emit("cat.sub", "host", k="v")
    out = t.dump()
    assert "cat.sub" in out and "host" in out and "k='v'" in out
