"""Simulator kernel: ordering, cancellation, recurrence, determinism."""

import pytest

from repro.sim.kernel import ScheduleError, Simulator


def test_events_fire_in_time_order():
    sim = Simulator(seed=0)
    order = []
    sim.schedule(3.0, order.append, "c")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(2.0, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 3.0


def test_same_time_ties_break_by_insertion():
    sim = Simulator(seed=0)
    order = []
    for tag in "abcde":
        sim.schedule(1.0, order.append, tag)
    sim.run()
    assert order == list("abcde")


def test_negative_delay_rejected():
    sim = Simulator(seed=0)
    with pytest.raises(ScheduleError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_in_past_rejected():
    sim = Simulator(seed=0)
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(ScheduleError):
        sim.schedule_at(0.5, lambda: None)


def test_cancel_prevents_execution():
    sim = Simulator(seed=0)
    hits = []
    ev = sim.schedule(1.0, hits.append, "x")
    ev.cancel()
    sim.run()
    assert hits == []


def test_run_until_is_inclusive_and_advances_clock():
    sim = Simulator(seed=0)
    hits = []
    sim.schedule(1.0, hits.append, 1)
    sim.schedule(2.0, hits.append, 2)
    sim.run(until=1.0)
    assert hits == [1]
    assert sim.now == 1.0
    sim.run(until=5.0)
    assert hits == [1, 2]
    assert sim.now == 5.0  # clock advances even though queue drained at 2.0


def test_run_for_composes():
    sim = Simulator(seed=0)
    hits = []
    sim.schedule(0.5, hits.append, "a")
    sim.schedule(1.5, hits.append, "b")
    sim.run_for(1.0)
    assert hits == ["a"]
    sim.run_for(1.0)
    assert hits == ["a", "b"]


def test_events_scheduled_during_run_execute():
    sim = Simulator(seed=0)
    hits = []

    def first():
        hits.append("first")
        sim.schedule(1.0, hits.append, "second")

    sim.schedule(1.0, first)
    sim.run()
    assert hits == ["first", "second"]
    assert sim.now == 2.0


def test_call_soon_runs_at_current_time_after_queued():
    sim = Simulator(seed=0)
    hits = []

    def at_one():
        sim.call_soon(hits.append, "soon")
        hits.append("now")

    sim.schedule(1.0, at_one)
    sim.run()
    assert hits == ["now", "soon"]
    assert sim.now == 1.0


def test_every_recurs_and_stop_halts():
    sim = Simulator(seed=0)
    hits = []
    stop = sim.every(1.0, lambda: hits.append(sim.now))
    sim.run(until=3.5)
    assert hits == [1.0, 2.0, 3.0]
    stop()
    sim.run(until=10.0)
    assert hits == [1.0, 2.0, 3.0]


def test_every_until_bound():
    sim = Simulator(seed=0)
    hits = []
    sim.every(1.0, lambda: hits.append(sim.now), until=2.5)
    sim.run(until=10.0)
    assert hits == [1.0, 2.0]


def test_every_until_is_inclusive_at_exact_boundary():
    sim = Simulator(seed=0)
    hits = []
    sim.every(1.0, lambda: hits.append(sim.now), until=3.0)
    sim.run()
    assert hits == [1.0, 2.0, 3.0]  # the firing landing exactly at until runs


def test_every_never_arms_an_event_past_until():
    """A bounded recurrence must not drag the clock beyond its bound."""
    sim = Simulator(seed=0)
    hits = []
    sim.every(1.0, lambda: hits.append(sim.now), until=2.5)
    sim.run()  # unbounded run: only armed events advance the clock
    assert hits == [1.0, 2.0]
    assert sim.now == 2.0  # no ghost event at 3.0
    assert sim.pending == 0


def test_every_stop_cancels_already_armed_event():
    sim = Simulator(seed=0)
    hits = []
    stop = sim.every(1.0, lambda: hits.append(sim.now))
    stop()  # the t=1.0 firing is armed but must never run
    sim.run()
    assert hits == []
    assert sim.now == 0.0  # the cancelled event didn't advance the clock


def test_every_stop_from_inside_callback():
    sim = Simulator(seed=0)
    hits = []
    holder = {}

    def tick():
        hits.append(sim.now)
        if len(hits) == 2:
            holder["stop"]()

    holder["stop"] = sim.every(1.0, tick)
    sim.run(until=10.0)
    assert hits == [1.0, 2.0]


def test_every_jitter_deterministic_for_fixed_seed():
    def firing_times(seed):
        sim = Simulator(seed=seed)
        hits = []
        sim.every(1.0, lambda: hits.append(sim.now), jitter=0.5, until=20.0)
        sim.run()
        return hits

    first, second = firing_times(42), firing_times(42)
    assert first == second  # bit-for-bit repeatable
    assert firing_times(43) != first
    gaps = [b - a for a, b in zip([0.0] + first, first)]
    assert all(1.0 <= g < 1.5 for g in gaps)  # every gap is interval + [0, jitter)
    assert all(t <= 20.0 for t in first)


def test_max_events_bounds_run():
    sim = Simulator(seed=0)
    hits = []
    for i in range(10):
        sim.schedule(float(i + 1), hits.append, i)
    sim.run(max_events=4)
    assert hits == [0, 1, 2, 3]


def test_step_returns_false_when_drained():
    sim = Simulator(seed=0)
    assert sim.step() is False
    sim.schedule(1.0, lambda: None)
    assert sim.step() is True
    assert sim.step() is False


def test_determinism_same_seed_same_trace():
    def run(seed):
        sim = Simulator(seed=seed)
        out = []
        for _ in range(50):
            sim.schedule(sim.rng.uniform(0, 10), out.append, sim.rng.randint(0, 99))
        sim.run()
        return out

    assert run(7) == run(7)
    assert run(7) != run(8)


def test_events_dispatched_counter():
    sim = Simulator(seed=0)
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_dispatched == 5
