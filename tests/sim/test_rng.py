"""SimRandom: determinism, substream independence, helper behaviour."""

import pytest

from repro.sim.rng import SimRandom


def test_same_seed_same_sequence():
    a = SimRandom(42)
    b = SimRandom(42)
    assert [a.random() for _ in range(20)] == [b.random() for _ in range(20)]


def test_different_seed_different_sequence():
    assert [SimRandom(1).random() for _ in range(5)] != \
           [SimRandom(2).random() for _ in range(5)]


def test_substream_is_deterministic_and_named():
    a = SimRandom(9).substream("radio")
    b = SimRandom(9).substream("radio")
    c = SimRandom(9).substream("other")
    seq_a = [a.randint(0, 1000) for _ in range(10)]
    assert seq_a == [b.randint(0, 1000) for _ in range(10)]
    assert seq_a != [c.randint(0, 1000) for _ in range(10)]


def test_substream_isolation_from_parent_consumption():
    """Drawing from the parent must not perturb a substream."""
    parent1 = SimRandom(5)
    sub_before = [parent1.substream("x").random() for _ in range(3)]
    parent2 = SimRandom(5)
    for _ in range(100):
        parent2.random()
    sub_after = [parent2.substream("x").random() for _ in range(3)]
    assert sub_before == sub_after


def test_bernoulli_edges():
    rng = SimRandom(0)
    assert rng.bernoulli(0.0) is False
    assert rng.bernoulli(1.0) is True
    assert rng.bernoulli(-1.0) is False
    assert rng.bernoulli(2.0) is True


def test_bernoulli_rate_roughly_matches_p():
    rng = SimRandom(3)
    hits = sum(rng.bernoulli(0.3) for _ in range(10000))
    assert 2700 < hits < 3300


def test_bytes_length_and_determinism():
    assert len(SimRandom(1).bytes(17)) == 17
    assert SimRandom(1).bytes(8) == SimRandom(1).bytes(8)


def test_pick_weighted_respects_weights():
    rng = SimRandom(4)
    counts = {"a": 0, "b": 0}
    for _ in range(5000):
        counts[rng.pick_weighted([("a", 3.0), ("b", 1.0)])] += 1
    assert counts["a"] > counts["b"] * 2


def test_pick_weighted_rejects_nonpositive_total():
    with pytest.raises(ValueError):
        SimRandom(0).pick_weighted([("a", 0.0)])


def test_expovariate_positive():
    rng = SimRandom(6)
    draws = [rng.expovariate(2.0) for _ in range(100)]
    assert all(d >= 0 for d in draws)
    assert 0.2 < sum(draws) / len(draws) < 1.0  # mean ~0.5
