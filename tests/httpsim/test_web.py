"""Website content, HTTP server/client over the stack, and the Browser."""

import pytest

from repro.crypto.md5 import md5_hexdigest
from repro.httpsim.browser import Browser
from repro.httpsim.client import HttpClient, parse_url
from repro.httpsim.content import Website, make_download_page, make_news_page
from repro.httpsim.downloads import is_trojaned, make_binary
from repro.httpsim.messages import HttpRequest, HttpResponse
from repro.httpsim.server import HttpServer
from repro.sim.errors import ProtocolError
from repro.sim.kernel import Simulator
from repro.sim.rng import SimRandom


def test_parse_url():
    u = parse_url("http://10.0.0.2:8080/path/to/x")
    assert (u.host, u.port, u.path) == ("10.0.0.2", 8080, "/path/to/x")
    assert u.is_ip
    u2 = parse_url("http://example.com")
    assert (u2.host, u2.port, u2.path) == ("example.com", 80, "/")
    assert not u2.is_ip
    with pytest.raises(ProtocolError):
        parse_url("ftp://example.com/")
    with pytest.raises(ProtocolError):
        parse_url("http:///nohost")


def test_website_static_and_handler():
    site = Website()
    site.add_page("/a", "alpha", "text/plain")
    site.add_handler("/dyn", lambda req: HttpResponse.ok(req.path.encode()))
    assert site.handle(HttpRequest("GET", "/a")).body == b"alpha"
    assert site.handle(HttpRequest("GET", "/dyn")).body == b"/dyn"
    assert site.handle(HttpRequest("GET", "/missing")).status == 404
    assert site.paths() == ["/a", "/dyn"]


def test_make_download_page_publishes_real_md5():
    site = Website()
    binary = make_binary("tool", 1024, SimRandom(1))
    digest = make_download_page(site, binary=binary)
    assert digest == md5_hexdigest(binary)
    page = site.handle(HttpRequest("GET", "/download.html"))
    assert b"href=file.tgz" in page.body
    assert digest.encode() in page.body
    served = site.handle(HttpRequest("GET", "/file.tgz"))
    assert served.body == binary


def test_make_binary_and_trojan_marker():
    binary = make_binary("x", 256, SimRandom(2))
    assert not is_trojaned(binary)
    assert len(binary) == 256
    with pytest.raises(ValueError):
        make_binary("x", 4, SimRandom(2))


def test_news_page_script():
    site = Website()
    make_news_page(site, headline="Hello")
    body = site.handle(HttpRequest("GET", "/index.html")).body
    assert b"<script>renderWeatherWidget()</script>" in body


def test_http_over_stack(wired_pair):
    sim, client_host, server_host = wired_pair
    site = Website()
    site.add_page("/hello", "world")
    server = HttpServer(server_host, site, 80)
    client = HttpClient(client_host)
    results = []
    client.get("http://10.0.0.2/hello", results.append)
    client.get("http://10.0.0.2/missing", results.append)
    sim.run_for(10.0)
    statuses = sorted(r.status for r in results if r)
    assert statuses == [200, 404]
    assert server.requests_served == 2
    assert [r.path for r in server.request_log] == ["/hello", "/missing"]


def test_http_client_connection_refused(wired_pair):
    sim, client_host, _ = wired_pair
    client = HttpClient(client_host)
    results = []
    client.get("http://10.0.0.2/x", results.append)  # no server
    sim.run_for(5.0)
    assert results == [None]
    assert client.errors == 1


def test_http_client_hostname_without_resolver(wired_pair):
    sim, client_host, _ = wired_pair
    client = HttpClient(client_host)
    results = []
    client.get("http://needs-dns.example/", results.append)
    sim.run_for(1.0)
    assert results == [None]


def test_browser_download_and_run_clean(wired_pair):
    sim, client_host, server_host = wired_pair
    site = Website()
    binary = make_binary("tool", 2048, sim.rng.substream("b"))
    make_download_page(site, binary=binary)
    HttpServer(server_host, site, 80)
    browser = Browser(client_host)
    outcome = browser.download_and_run("http://10.0.0.2/download.html")
    sim.run_for(20.0)
    assert outcome.link == "file.tgz"
    assert outcome.md5_ok is True
    assert outcome.executed and not outcome.trojaned
    assert not outcome.compromised
    assert not browser.compromised


def test_browser_refuses_md5_mismatch(wired_pair):
    """If only the binary is swapped (not the page digest), the victim's
    check catches it — motivating the attack's second rewrite rule."""
    sim, client_host, server_host = wired_pair
    site = Website()
    binary = make_binary("tool", 2048, sim.rng.substream("b"))
    make_download_page(site, binary=binary)
    # Maliciously replace the served binary only.
    from repro.attacks.trojan import trojanize
    site.add_page("/file.tgz", trojanize(binary), "application/octet-stream")
    HttpServer(server_host, site, 80)
    browser = Browser(client_host)
    outcome = browser.download_and_run("http://10.0.0.2/download.html")
    sim.run_for(20.0)
    assert outcome.md5_ok is False
    assert not outcome.executed
    assert not outcome.compromised


def test_browser_visit_executes_script(wired_pair):
    sim, client_host, server_host = wired_pair
    site = Website()
    make_news_page(site, script="exploit(1337)")
    HttpServer(server_host, site, 80)
    unpatched = Browser(client_host, patched=False)
    visit = unpatched.visit("http://10.0.0.2/index.html")
    sim.run_for(10.0)
    assert visit.exploit_executed
    assert unpatched.compromised


def test_patched_browser_survives_exploit(wired_pair):
    sim, client_host, server_host = wired_pair
    site = Website()
    make_news_page(site, script="exploit(1337)")
    HttpServer(server_host, site, 80)
    patched = Browser(client_host, patched=True)
    visit = patched.visit("http://10.0.0.2/index.html")
    sim.run_for(10.0)
    assert not visit.exploit_executed
    assert not patched.compromised


def test_browser_absolutize_handles_percent2f():
    assert Browser._absolutize(
        "http://10.0.0.2/download.html",
        "http:%2f%2f198.51.100.66%2ffile.tgz",
    ) == "http://198.51.100.66/file.tgz"
    assert Browser._absolutize(
        "http://10.0.0.2/dir/page.html", "file.tgz",
    ) == "http://10.0.0.2/dir/file.tgz"
    assert Browser._absolutize(
        "http://10.0.0.2/page.html", "/abs/path.tgz",
    ) == "http://10.0.0.2:80/abs/path.tgz"
