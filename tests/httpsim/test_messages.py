"""HTTP message serialization and the incremental stream parser."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.httpsim.messages import HttpRequest, HttpResponse, HttpStreamParser
from repro.sim.errors import ProtocolError


def test_request_roundtrip_head():
    req = HttpRequest(method="GET", path="/download.html",
                      headers={"Host": "example.com"})
    raw = req.to_bytes()
    head = raw.split(b"\r\n\r\n")[0]
    parsed = HttpRequest.parse_head(head)
    assert parsed.method == "GET"
    assert parsed.path == "/download.html"
    assert parsed.headers["Host"] == "example.com"


def test_request_with_body_gets_content_length():
    req = HttpRequest(method="POST", path="/submit", body=b"a=1")
    raw = req.to_bytes()
    assert b"Content-Length: 3" in raw
    assert raw.endswith(b"a=1")


def test_response_roundtrip():
    resp = HttpResponse.ok(b"<html>hi</html>")
    raw = resp.to_bytes()
    assert raw.startswith(b"HTTP/1.0 200 OK\r\n")
    assert b"Content-Length: 15" in raw
    head = raw.split(b"\r\n\r\n")[0]
    parsed = HttpResponse.parse_head(head)
    assert parsed.status == 200
    assert parsed.headers["Content-Type"] == "text/html"


def test_close_delimited_response_omits_length():
    resp = HttpResponse.ok(b"body", use_content_length=False)
    assert b"Content-Length" not in resp.to_bytes()


def test_not_found():
    assert HttpResponse.not_found().status == 404


def test_malformed_heads():
    with pytest.raises(ProtocolError):
        HttpRequest.parse_head(b"GARBAGE")
    with pytest.raises(ProtocolError):
        HttpResponse.parse_head(b"HTTP/1.0")
    with pytest.raises(ProtocolError):
        HttpResponse.parse_head(b"HTTP/1.0 abc OK")


def test_parser_single_feed_request():
    p = HttpStreamParser("request")
    p.feed(HttpRequest(method="GET", path="/x").to_bytes())
    assert p.complete
    assert p.message.path == "/x"


def test_parser_byte_by_byte():
    raw = HttpRequest(method="POST", path="/p", body=b"hello").to_bytes()
    p = HttpStreamParser("request")
    for i in range(len(raw)):
        assert not p.complete or i >= len(raw)
        p.feed(raw[i:i + 1])
    assert p.complete
    assert p.message.body == b"hello"


def test_parser_content_length_response():
    resp = HttpResponse.ok(b"x" * 100)
    p = HttpStreamParser("response")
    raw = resp.to_bytes()
    p.feed(raw[:50])
    assert not p.complete
    p.feed(raw[50:])
    assert p.complete
    assert p.message.body == b"x" * 100


def test_parser_close_delimited_response():
    resp = HttpResponse.ok(b"streamed body", use_content_length=False)
    p = HttpStreamParser("response")
    p.feed(resp.to_bytes())
    assert not p.complete  # waiting for close
    p.finish_on_close()
    assert p.complete
    assert p.message.body == b"streamed body"


def test_parser_leftover():
    raw = HttpRequest(method="GET", path="/a").to_bytes() + b"EXTRA"
    p = HttpStreamParser("request")
    p.feed(raw)
    assert p.complete
    assert p.leftover == b"EXTRA"


def test_parser_invalid_kind():
    with pytest.raises(ValueError):
        HttpStreamParser("nonsense")


@given(st.binary(max_size=300), st.integers(1, 50))
def test_parser_chunking_invariance(body, chunk):
    raw = HttpResponse.ok(body).to_bytes()
    p = HttpStreamParser("response")
    for i in range(0, len(raw), chunk):
        p.feed(raw[i:i + chunk])
    assert p.complete
    assert p.message.body == body
