"""The paper's §4 proof-of-concept, end to end, as one narrative test,
plus cross-cutting claims that span attack and defense layers."""

import pytest

from repro.core.scenario import EVIL_IP, TARGET_IP, build_corp_scenario
from repro.radio.propagation import Position


def test_full_section4_experiment():
    """Every §4.1 stage, in order, in one world."""
    # Stage 0: the corporate network exists; WEP and the key are set.
    scenario = build_corp_scenario(seed=201)
    sim = scenario.sim

    # Stage 1: "The attacker will first authenticate to the existing
    # network as a valid client with one WiFi card."
    assert scenario.rogue.upstream_associated

    # Stage 2: the second card is in Master mode with the same SSID,
    # same WEP key, cloned BSSID, different channel.
    core = scenario.rogue.wlan0.core
    assert core.ssid == "CORP"
    assert core.bssid == scenario.ap.bssid
    assert core.channel == 6
    assert core.wep is not None and core.wep.key == scenario.wep.key

    # Stage 3: parprouted bridges, per Appendix A.
    assert scenario.rogue.host.ip_forward
    assert scenario.rogue.host.interfaces["wlan0"].proxy_arp
    assert scenario.rogue.host.interfaces["eth1"].proxy_arp

    # Stage 4: the iptables DNAT + netsed rules.
    scenario.arm_download_mitm()
    assert any("DNAT" in cmd for cmd in scenario.rogue.box.history)

    # Stage 5: "As clients connect, some will doubtlessly accidentally
    # connect to the Rogue AP."
    victim = scenario.add_victim()
    sim.run_for(5.0)
    assert victim.associated_channel == 6
    assert victim.wlan.mac in scenario.rogue.captured_clients()

    # Stage 6: the download. The page's link and MD5SUM are rewritten
    # in flight; the victim's check passes; the trojan runs.
    outcome = scenario.run_download_experiment(victim)
    assert EVIL_IP in outcome.link.replace("%2f", "/")
    assert outcome.md5_ok is True
    assert outcome.compromised

    # Stage 7 (§5): the same victim, VPN'd, is immune.
    vpn = scenario.connect_vpn(victim)
    sim.run_for(5.0)
    assert vpn.connected
    protected = scenario.run_download_experiment(victim, settle_s=90.0)
    assert protected.md5_ok is True
    assert not protected.compromised


def test_wep_provides_no_protection_against_insider_rogue():
    """§2.1: 'in the attack scenarios we present here [WEP] provides no
    protection what so ever' — compromise rate is identical with WEP
    off and WEP on when the rogue holds the key."""
    results = {}
    for wep in (False, True):
        scenario = build_corp_scenario(seed=202, wep=wep)
        scenario.arm_download_mitm()
        victim = scenario.add_victim()
        scenario.sim.run_for(5.0)
        outcome = scenario.run_download_experiment(victim)
        results[wep] = outcome.compromised
    assert results[False] is True
    assert results[True] is True  # WEP changed nothing


def test_mac_filter_defeated_by_sniff_and_spoof():
    """§2.1: MAC filtering 'accomplishes nothing more than perhaps
    keeping honest people honest'."""
    from repro.attacks.mac_spoof import observe_client_macs, spoof_mac
    from repro.attacks.sniffer import MonitorSniffer
    from repro.hosts.ap_core import MacFilter
    from repro.hosts.station import Station

    # AP filters to exactly one allowed client.
    scenario = build_corp_scenario(seed=203, with_rogue=False, wep=False)
    allowed = scenario.sim  # placeholder; we add the client below
    victim = scenario.add_victim()
    scenario.ap.core.mac_filter.allow(victim.wlan.mac)
    # (filter was permissive until now; re-scope it to enforce)
    scenario.sim.run_for(5.0)

    # An honest outsider is denied.
    outsider = Station(scenario.sim, "outsider", scenario.medium, Position(12, 0))
    outsider.connect("CORP", wep_key=None, ip="10.0.0.50")
    scenario.sim.run_for(5.0)
    assert not outsider.wlan.associated

    # The dishonest outsider sniffs a valid MAC and takes it.
    sniffer = MonitorSniffer(scenario.sim, scenario.medium, Position(12, 2))
    rtts = []
    victim.ping("10.0.0.1", on_reply=rtts.append)  # some victim traffic to observe
    scenario.sim.run_for(3.0)
    harvested = observe_client_macs(sniffer, bssid=scenario.ap.bssid)
    assert victim.wlan.mac in harvested
    outsider.wlan.leave()
    scenario.sim.run_for(1.0)
    spoof_mac(outsider.wlan, harvested[0])
    outsider.wlan.auto_reconnect = True
    outsider.wlan.join("CORP")
    scenario.sim.run_for(8.0)
    assert outsider.wlan.associated  # filter defeated


def test_rogue_without_wep_key_cannot_capture_wep_clients():
    """Sanity boundary: the §4 attack does need the key (valid client
    or Airsnort) when the network runs WEP."""
    scenario = build_corp_scenario(seed=204, rogue_wep="none")
    victim = scenario.add_victim()
    scenario.sim.run_for(8.0)
    # The rogue beacons an open network; the WEP-configured victim's
    # scan rejects the privacy mismatch and stays on the real AP.
    assert victim.associated_channel == 1


def test_trace_records_the_attack_timeline():
    scenario = build_corp_scenario(seed=205)
    scenario.arm_download_mitm()
    victim = scenario.add_victim()
    scenario.sim.run_for(5.0)
    scenario.run_download_experiment(victim)
    trace = scenario.sim.trace
    assert trace.count("rogue.start") == 1
    assert trace.count("rogue.mitm_armed") == 1
    assert trace.count("parprouted.start") == 1
    assert trace.count("netsed.rewrite") >= 1
    assert trace.count("browser.compromised") == 1
