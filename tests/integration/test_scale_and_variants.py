"""Scale sanity and attack variants that combine multiple mechanisms."""

import pytest

from repro.core.scenario import build_corp_scenario
from repro.hosts.station import Station
from repro.radio.interference import Jammer
from repro.radio.propagation import Position


def test_ten_stations_share_the_bss():
    """Scale: a realistic office floor associates and moves traffic."""
    scenario = build_corp_scenario(seed=501, with_rogue=False)
    stations = []
    for i in range(10):
        sta = Station(scenario.sim, f"sta{i}", scenario.medium,
                      Position(3.0 + i * 2.0, (-1) ** i * 4.0))
        sta.connect("CORP", wep_key=scenario.wep, ip=f"10.0.0.{30 + i}",
                    gateway="10.0.0.1")
        stations.append(sta)
    scenario.sim.run_for(10.0)
    assert all(s.wlan.associated for s in stations)
    rtts = []
    for sta in stations:
        sta.ping("10.0.0.1", on_reply=rtts.append)
    scenario.sim.run_for(5.0)
    assert len(rtts) == 10
    # Client-to-client through the AP still works amid the crowd.
    cross = []
    stations[0].ping("10.0.0.39", on_reply=cross.append)
    scenario.sim.run_for(3.0)
    assert len(cross) == 1


def test_jamming_assisted_capture():
    """Variant: jam the legitimate AP's channel; the starved victim
    rescans and lands on the rogue's clean channel — capture without a
    single forged deauth frame."""
    scenario = build_corp_scenario(seed=502, rogue_position=Position(30.0, 0.0))
    victim = scenario.add_victim(position=Position(6.0, 0.0))
    scenario.sim.run_for(5.0)
    assert victim.associated_channel == 1  # happily on the legit AP

    jammer = Jammer(scenario.medium, Position(3.0, 0.0), channel=1,
                    effectiveness=1.0, range_m=60.0)
    captured = False
    for _ in range(60):
        scenario.sim.run_for(1.0)
        if victim.associated_channel == 6:
            captured = True
            break
    jammer.stop()
    assert captured
    assert victim.wlan.mac in scenario.rogue.captured_clients()
    # No deauth was ever transmitted (distinguishes this variant).
    assert victim.wlan.deauths_received == 0


def test_deterministic_full_attack_replay():
    """The complete §4 world replays bit-identically from its seed."""

    def run():
        scenario = build_corp_scenario(seed=503)
        scenario.arm_download_mitm()
        victim = scenario.add_victim()
        scenario.sim.run_for(5.0)
        outcome = scenario.run_download_experiment(victim)
        return (outcome.compromised, outcome.computed_md5,
                scenario.sim.events_dispatched,
                scenario.rogue.netsed.total_replacements,
                len(scenario.sim.trace.records))

    assert run() == run()


def test_roaming_hotspot_rate_helper():
    from repro.workloads.roaming import measure_hotspot_compromise_rate
    rate = measure_hotspot_compromise_rate([11], settle_s=40.0)
    assert rate == 1.0
    rate_vpn = measure_hotspot_compromise_rate([11], with_vpn=True)
    assert rate_vpn == 0.0
