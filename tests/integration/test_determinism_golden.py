"""Determinism golden tests.

The whole reproduction rests on one property: a simulated world is a
pure function of its seed.  These tests pin that down at three levels —
the full FIG2 download-MITM world (trace-for-trace), the campaign
layer (serial and parallel sweeps must agree bit-for-bit), and the
observability layer (enabling metrics/profiling must not change any
simulated result: the zero-perturbation invariant).
"""

import pytest

from repro.core.campaign import run_trials
from repro.core.registry import get_experiment
from repro.core.scenario import build_corp_scenario
from repro.fleet import run_campaign
from repro.obs import collecting


def _run_fig2_world(seed):
    """One FIG2 world: rogue + netsed MITM against a downloading victim."""
    scenario = build_corp_scenario(seed=seed)
    scenario.arm_download_mitm()
    victim = scenario.add_victim()
    scenario.sim.run_for(5.0)
    outcome = scenario.run_download_experiment(victim)
    categories = [rec.category for rec in scenario.sim.trace.records]
    counters = {
        "events_dispatched": scenario.sim.events_dispatched,
        "trace_by_category": scenario.sim.trace.summary()["by_category"],
        "netsed_replacements": scenario.rogue.netsed.total_replacements,
        "netsed_connections": scenario.rogue.netsed.connections_proxied,
        "compromised": outcome.compromised,
        "md5_ok": outcome.md5_ok,
        "final_time": scenario.sim.now,
    }
    return categories, counters


def fig2_compromise_trial(seed):
    """Module-level trial (picklable) for the campaign-level golden test."""
    scenario = build_corp_scenario(seed=seed)
    scenario.arm_download_mitm()
    victim = scenario.add_victim()
    scenario.sim.run_for(5.0)
    outcome = scenario.run_download_experiment(victim)
    return 1.0 if outcome.compromised else 0.0


def test_fig2_world_identical_for_identical_seed():
    categories_a, counters_a = _run_fig2_world(seed=11)
    categories_b, counters_b = _run_fig2_world(seed=11)
    assert categories_a == categories_b  # the full event-category sequence
    assert counters_a == counters_b


def test_fig2_campaign_identical_serial_vs_parallel():
    serial = run_trials(6, fig2_compromise_trial, seed_base=300)
    parallel = run_trials(6, fig2_compromise_trial, seed_base=300, workers=4)
    assert serial.values == parallel.values  # bit-for-bit, not just close
    assert serial.mean == parallel.mean


# ----------------------------------------------------------------------
# zero-perturbation: observability on, off, or absent must not change
# one bit of any simulated result
# ----------------------------------------------------------------------

@pytest.mark.parametrize("exp_id", ["FIG1", "FIG2", "E-DETECT"])
def test_experiment_payload_identical_with_obs_on_off_absent(exp_id):
    runner = get_experiment(exp_id).runner
    absent = runner()  # no context installed at all
    with collecting(metrics=True, profile=True):
        enabled = runner()
    with collecting(metrics=False):
        disabled = runner()
    assert enabled == absent
    assert disabled == absent


def test_fig2_trace_contents_identical_with_obs_enabled():
    categories_off, counters_off = _run_fig2_world(seed=11)
    with collecting(metrics=True, profile=True) as col:
        categories_on, counters_on = _run_fig2_world(seed=11)
    assert categories_on == categories_off  # full event-category sequence
    assert counters_on == counters_off
    # and the run actually recorded something — the invariant is
    # "observation changes nothing", not "nothing was observed"
    assert col.registry.value("radio.deliveries") > 0
    assert col.profiler.count("radio.fanout") > 0


def test_fleet_merged_metrics_identical_serial_vs_parallel():
    serial = run_campaign(4, fig2_compromise_trial, seed_base=300,
                          collect_metrics=True)
    parallel = run_campaign(4, fig2_compromise_trial, seed_base=300,
                            workers=2, collect_metrics=True)
    # per-trial values unchanged by collection, serial == parallel
    assert serial.per_seed == parallel.per_seed
    # per-trial snapshots agree seed-for-seed ...
    assert serial.metrics == parallel.metrics
    # ... and seed-order reduction yields the same merged registry
    assert serial.merged_metrics.snapshot() == parallel.merged_metrics.snapshot()
    assert serial.merged_metrics.value("radio.deliveries") > 0


def test_collect_metrics_does_not_change_trial_values():
    plain = run_campaign(4, fig2_compromise_trial, seed_base=300)
    collected = run_campaign(4, fig2_compromise_trial, seed_base=300,
                             collect_metrics=True)
    assert plain.per_seed == collected.per_seed
    assert plain.metrics == {}
    assert plain.merged_metrics is None
