"""Determinism golden tests.

The whole reproduction rests on one property: a simulated world is a
pure function of its seed.  These tests pin that down at three levels —
the full FIG2 download-MITM world (trace-for-trace), the campaign
layer (serial and parallel sweeps must agree bit-for-bit), and the
observability layer (enabling metrics/profiling must not change any
simulated result: the zero-perturbation invariant).
"""

import pytest

from repro.attacks.sniffer import MonitorSniffer
from repro.core.campaign import run_trials
from repro.core.registry import SeededExperiment, get_experiment
from repro.core.scenario import build_corp_scenario
from repro.fleet import run_campaign
from repro.obs import collecting
from repro.obs.lineage import recording
from repro.radio.propagation import Position
from repro.wids import Scorecard, WidsEngine, wids_watch


def _run_fig2_world(seed):
    """One FIG2 world: rogue + netsed MITM against a downloading victim."""
    scenario = build_corp_scenario(seed=seed)
    scenario.arm_download_mitm()
    victim = scenario.add_victim()
    scenario.sim.run_for(5.0)
    outcome = scenario.run_download_experiment(victim)
    categories = [rec.category for rec in scenario.sim.trace.records]
    counters = {
        "events_dispatched": scenario.sim.events_dispatched,
        "trace_by_category": scenario.sim.trace.summary()["by_category"],
        "netsed_replacements": scenario.rogue.netsed.total_replacements,
        "netsed_connections": scenario.rogue.netsed.connections_proxied,
        "compromised": outcome.compromised,
        "md5_ok": outcome.md5_ok,
        "final_time": scenario.sim.now,
    }
    return categories, counters


def fig2_compromise_trial(seed):
    """Module-level trial (picklable) for the campaign-level golden test."""
    scenario = build_corp_scenario(seed=seed)
    scenario.arm_download_mitm()
    victim = scenario.add_victim()
    scenario.sim.run_for(5.0)
    outcome = scenario.run_download_experiment(victim)
    return 1.0 if outcome.compromised else 0.0


def test_fig2_world_identical_for_identical_seed():
    categories_a, counters_a = _run_fig2_world(seed=11)
    categories_b, counters_b = _run_fig2_world(seed=11)
    assert categories_a == categories_b  # the full event-category sequence
    assert counters_a == counters_b


def test_fig2_world_identical_under_scalar_and_vector_kernels():
    """End-to-end kernel differential on a *real* scenario.

    The hypothesis harness (tests/radio/test_kernel_equivalence.py)
    sweeps synthetic worlds; this golden locks the same claim on the
    full FIG2 rogue-MITM world: flipping the radio kernel from the
    vectorized default to the scalar reference must not move one trace
    record or counter.  (Every other test in this file runs under the
    vectorized default, so serial==parallel and the zero-perturbation
    goldens already exercise it implicitly.)
    """
    import repro.radio.kernel as radio_kernel

    assert radio_kernel.DEFAULT_KERNEL == "vector"
    vector_cats, vector_counters = _run_fig2_world(seed=11)
    radio_kernel.DEFAULT_KERNEL = "scalar"
    try:
        scalar_cats, scalar_counters = _run_fig2_world(seed=11)
    finally:
        radio_kernel.DEFAULT_KERNEL = "vector"
    assert vector_cats == scalar_cats
    assert vector_counters == scalar_counters


def test_fig2_campaign_identical_serial_vs_parallel():
    serial = run_trials(6, fig2_compromise_trial, seed_base=300)
    parallel = run_trials(6, fig2_compromise_trial, seed_base=300, workers=4)
    assert serial.values == parallel.values  # bit-for-bit, not just close
    assert serial.mean == parallel.mean


# ----------------------------------------------------------------------
# zero-perturbation: observability on, off, or absent must not change
# one bit of any simulated result
# ----------------------------------------------------------------------

@pytest.mark.parametrize("exp_id", ["FIG1", "FIG2", "E-DETECT"])
def test_experiment_payload_identical_with_obs_on_off_absent(exp_id):
    runner = get_experiment(exp_id).runner
    absent = runner()  # no context installed at all
    with collecting(metrics=True, profile=True):
        enabled = runner()
    with collecting(metrics=False):
        disabled = runner()
    assert enabled == absent
    assert disabled == absent


def test_fig2_trace_contents_identical_with_obs_enabled():
    categories_off, counters_off = _run_fig2_world(seed=11)
    with collecting(metrics=True, profile=True) as col:
        categories_on, counters_on = _run_fig2_world(seed=11)
    assert categories_on == categories_off  # full event-category sequence
    assert counters_on == counters_off
    # and the run actually recorded something — the invariant is
    # "observation changes nothing", not "nothing was observed"
    assert col.registry.value("radio.deliveries") > 0
    assert col.profiler.count("radio.fanout") > 0


def test_fig2_world_identical_with_flight_recorder_on_off_absent():
    absent_cats, absent_counters = _run_fig2_world(seed=11)
    with recording() as rec:
        on_cats, on_counters = _run_fig2_world(seed=11)
    # tiny ring: heavy eviction pressure must not leak into the sim either
    with recording(capacity=2, max_hops=1):
        tiny_cats, tiny_counters = _run_fig2_world(seed=11)
    assert on_cats == absent_cats == tiny_cats
    assert on_counters == absent_counters == tiny_counters
    # the recorder did observe the world it didn't perturb: the full
    # MITM chain including the netsed rewrite is in the ring
    assert len(rec) > 0
    rewrites = list(rec.find_hops("netsed", "rewrite"))
    assert rewrites, "FIG2 world must record the netsed rewrite hop"
    lineage, hop = rewrites[0]
    assert hop.detail["replacements"] >= 1
    assert "before" in hop.detail and "after" in hop.detail
    # causal chain reaches back past the bridge to the victim's radio
    chain = rec.ancestors(lineage.trace_id)
    assert len(chain) > 1
    # and forward to the tampered payload landing on the victim's NIC
    assert any(h.layer == "nic" and h.action == "deliver"
               and h.host.startswith("victim")
               for d in rec.descendants(lineage.trace_id) for h in d.hops)


def test_recorder_capacity_bounds_hold_under_a_full_world():
    with recording(capacity=32, max_hops=4) as rec:
        _run_fig2_world(seed=11)
    assert len(rec) <= 32
    assert rec.evicted > 0  # FIG2 generates far more than 32 frames
    assert all(len(ln.hops) <= 4 for ln in rec.lineages())


def test_fleet_merged_metrics_identical_serial_vs_parallel():
    serial = run_campaign(4, fig2_compromise_trial, seed_base=300,
                          collect_metrics=True)
    parallel = run_campaign(4, fig2_compromise_trial, seed_base=300,
                            workers=2, collect_metrics=True)
    # per-trial values unchanged by collection, serial == parallel
    assert serial.per_seed == parallel.per_seed
    # per-trial snapshots agree seed-for-seed ...
    assert serial.metrics == parallel.metrics
    # ... and seed-order reduction yields the same merged registry
    assert serial.merged_metrics.snapshot() == parallel.merged_metrics.snapshot()
    assert serial.merged_metrics.value("radio.deliveries") > 0


def test_collect_metrics_does_not_change_trial_values():
    plain = run_campaign(4, fig2_compromise_trial, seed_base=300)
    collected = run_campaign(4, fig2_compromise_trial, seed_base=300,
                             collect_metrics=True)
    assert plain.per_seed == collected.per_seed
    assert plain.metrics == {}
    assert plain.merged_metrics is None


def test_fig2_world_identical_with_ambient_wids_on_off_absent():
    """The radio-layer WIDS hook obeys the zero-perturbation discipline.

    The ambient watch taps :meth:`Medium._fan_out` before any
    per-receiver RNG draw and never registers a radio port, so the
    simulated world is bit-identical with the watch installed,
    installed-with-heavy-eviction, or absent — while the watch itself
    still observes the attack.
    """
    absent_cats, absent_counters = _run_fig2_world(seed=11)
    with wids_watch() as watch:
        on_cats, on_counters = _run_fig2_world(seed=11)
    # tiny capture ring: eviction pressure must not leak into the sim
    with wids_watch(capacity=8) as tiny:
        tiny_cats, tiny_counters = _run_fig2_world(seed=11)
    assert on_cats == absent_cats == tiny_cats
    assert on_counters == absent_counters == tiny_counters
    # the watch did observe the world it didn't perturb
    assert watch.frames_seen() > 0
    detectors = {a.detector for a in watch.alerts()}
    assert {"fingerprint", "multichannel"} <= detectors
    assert tiny.frames_seen() == watch.frames_seen()


def _run_wids_sniffer_world(seed, mode):
    """One FIG2 world carrying a monitor sniffer; ``mode`` controls the
    engine: "absent", "attached", or "detached" (attached then removed
    mid-run).  The sniffer is present in every mode so the worlds are
    built identically — only the (purely observational) engine varies."""
    scenario = build_corp_scenario(seed=seed)
    sniffer = MonitorSniffer(scenario.sim, scenario.medium,
                             Position(15.0, 5.0))
    engine = WidsEngine()
    detach = engine.attach(sniffer.capture) if mode != "absent" else None
    scenario.arm_download_mitm()
    victim = scenario.add_victim()
    scenario.sim.run_for(5.0)
    if mode == "detached":
        detach()
    outcome = scenario.run_download_experiment(victim)
    categories = [rec.category for rec in scenario.sim.trace.records]
    counters = {
        "events_dispatched": scenario.sim.events_dispatched,
        "compromised": outcome.compromised,
        "final_time": scenario.sim.now,
        "frames_captured": len(sniffer.capture),
    }
    return categories, counters, engine


def test_fig2_world_identical_with_engine_attached_detached_absent():
    absent_cats, absent_counters, _ = _run_wids_sniffer_world(11, "absent")
    on_cats, on_counters, attached = _run_wids_sniffer_world(11, "attached")
    mid_cats, mid_counters, detached = _run_wids_sniffer_world(11, "detached")
    assert on_cats == absent_cats == mid_cats
    assert on_counters == absent_counters == mid_counters
    # the attached engine alerted on the rogue without changing anything
    assert attached.alerts
    # the detached engine saw only the pre-detach prefix of the stream
    assert 0 < detached.frames_seen < attached.frames_seen


def test_wids_eval_merged_scorecard_identical_serial_vs_parallel():
    """The acceptance bar for ``sweep --wids``: per-seed ``wids.eval.*``
    registries reduce in seed order to the same merged scorecard
    whether the trials ran serially or across workers."""
    trial = SeededExperiment("E-WIDS")
    serial = run_campaign(2, trial, seed_base=40, collect_metrics=True)
    parallel = run_campaign(2, trial, seed_base=40, workers=2,
                            collect_metrics=True)
    assert serial.per_seed == parallel.per_seed
    assert serial.metrics == parallel.metrics
    assert serial.merged_metrics.snapshot() == parallel.merged_metrics.snapshot()
    card_s = Scorecard.from_registry(serial.merged_metrics)
    card_p = Scorecard.from_registry(parallel.merged_metrics)
    assert card_s.to_json_dict() == card_p.to_json_dict()
    rows = card_s.rows()
    assert rows
    for row in rows:
        # 2 trials x 4 worlds each, zero false positives throughout
        assert row.tp + row.fp + row.fn + row.tn == 8
        assert row.fp == 0


def test_fleet_lineage_samples_identical_serial_vs_parallel():
    serial = run_campaign(3, fig2_compromise_trial, seed_base=300,
                          flight_recorder=16)
    parallel = run_campaign(3, fig2_compromise_trial, seed_base=300,
                            workers=3, flight_recorder=16)
    # recording never changes trial values, and the shipped samples are
    # a pure function of the seed: serial == parallel, dict-for-dict
    plain = run_campaign(3, fig2_compromise_trial, seed_base=300)
    assert serial.per_seed == parallel.per_seed == plain.per_seed
    assert serial.lineages == parallel.lineages
    assert set(serial.lineages) == {300, 301, 302}
    assert all(len(sample) <= 16 for sample in serial.lineages.values())
    assert serial.merged_lineages == parallel.merged_lineages
    assert [ln["seed"] for ln in serial.merged_lineages] == \
        sorted(ln["seed"] for ln in serial.merged_lineages)
    assert plain.lineages == {} and plain.merged_lineages == []


def test_fig2_world_matches_committed_digest():
    """Cross-era pin: the seed-11 FIG2 world, hashed trace-for-trace.

    ``fig2_golden.json`` was generated when ``repro.rsn`` landed and
    verified bit-identical against the pre-RSN tree, so it proves the
    RSN/SAE/PMF machinery is invisible until asked for — and from now
    on it catches *any* change that moves a legacy world.
    """
    import hashlib
    import json
    from pathlib import Path

    golden = json.loads(
        (Path(__file__).parent / "fig2_golden.json").read_text())
    categories, counters = _run_fig2_world(seed=golden["seed"])
    blob = json.dumps({"categories": categories, "counters": counters},
                      sort_keys=True, default=str).encode()
    assert counters["events_dispatched"] == golden["events_dispatched"]
    assert hashlib.sha256(blob).hexdigest() == golden["sha256"]
