"""Determinism golden tests.

The whole reproduction rests on one property: a simulated world is a
pure function of its seed.  These tests pin that down at two levels —
the full FIG2 download-MITM world (trace-for-trace), and the campaign
layer (serial and parallel sweeps must agree bit-for-bit).
"""

from repro.core.campaign import run_trials
from repro.core.scenario import build_corp_scenario


def _run_fig2_world(seed):
    """One FIG2 world: rogue + netsed MITM against a downloading victim."""
    scenario = build_corp_scenario(seed=seed)
    scenario.arm_download_mitm()
    victim = scenario.add_victim()
    scenario.sim.run_for(5.0)
    outcome = scenario.run_download_experiment(victim)
    categories = [rec.category for rec in scenario.sim.trace.records]
    counters = {
        "events_dispatched": scenario.sim.events_dispatched,
        "trace_by_category": scenario.sim.trace.summary()["by_category"],
        "netsed_replacements": scenario.rogue.netsed.total_replacements,
        "netsed_connections": scenario.rogue.netsed.connections_proxied,
        "compromised": outcome.compromised,
        "md5_ok": outcome.md5_ok,
        "final_time": scenario.sim.now,
    }
    return categories, counters


def fig2_compromise_trial(seed):
    """Module-level trial (picklable) for the campaign-level golden test."""
    scenario = build_corp_scenario(seed=seed)
    scenario.arm_download_mitm()
    victim = scenario.add_victim()
    scenario.sim.run_for(5.0)
    outcome = scenario.run_download_experiment(victim)
    return 1.0 if outcome.compromised else 0.0


def test_fig2_world_identical_for_identical_seed():
    categories_a, counters_a = _run_fig2_world(seed=11)
    categories_b, counters_b = _run_fig2_world(seed=11)
    assert categories_a == categories_b  # the full event-category sequence
    assert counters_a == counters_b


def test_fig2_campaign_identical_serial_vs_parallel():
    serial = run_trials(6, fig2_compromise_trial, seed_base=300)
    parallel = run_trials(6, fig2_compromise_trial, seed_base=300, workers=4)
    assert serial.values == parallel.values  # bit-for-bit, not just close
    assert serial.mean == parallel.mean
