"""JSON-lines stream: record grammar, replay == in-process merge."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.telemetry.stream import JsonlWriter, read_records, replay


def _reg(n: int) -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.incr("telemetry.sessions.completed", n)
    reg.set_gauge("telemetry.sessions.active", n * 0.5)
    reg.observe("telemetry.session.latency_s", float(n), lo=0.0, hi=40.0,
                bins=160)
    return reg


def test_writer_emits_one_json_object_per_line(tmp_path):
    path = str(tmp_path / "t.jsonl")
    with JsonlWriter(path) as writer:
        writer.write_meta(shards=2)
        writer.write_snapshot(0, 1000, _reg(1).snapshot())
        writer.write_final(_reg(1).snapshot(), scorecard={"p50_latency_s": 1})
    lines = open(path).read().splitlines()
    assert len(lines) == 3
    kinds = [json.loads(line)["kind"] for line in lines]
    assert kinds == ["meta", "snapshot", "final"]
    meta = json.loads(lines[0])
    assert meta["version"] == 1 and meta["shards"] == 2


def test_writer_appends_and_seq_increases(tmp_path):
    path = str(tmp_path / "t.jsonl")
    with JsonlWriter(path) as writer:
        writer.write_snapshot(0, 1000, {})
    with JsonlWriter(path) as writer:
        writer.write_snapshot(1, 1001, {})
    records = list(read_records(path))
    assert [r["index"] for r in records] == [0, 1]


def test_read_records_rejects_garbage(tmp_path):
    path = str(tmp_path / "bad.jsonl")
    with open(path, "w") as fh:
        fh.write('{"kind": "meta"}\nnot json\n')
    with pytest.raises(ValueError, match="bad JSON"):
        list(read_records(path))
    with open(path, "w") as fh:
        fh.write('{"no_kind": 1}\n')
    with pytest.raises(ValueError, match="without a kind"):
        list(read_records(path))


def test_replay_keeps_last_snapshot_per_index_and_merges_in_seed_order(
        tmp_path):
    path = str(tmp_path / "t.jsonl")
    with JsonlWriter(path) as writer:
        writer.write_meta()
        # interleaved cumulative snapshots, shard 1 arrives before shard 0
        writer.write_snapshot(1, 1001, _reg(2).snapshot())
        writer.write_snapshot(0, 1000, _reg(1).snapshot())
        writer.write_snapshot(1, 1001, _reg(5).snapshot())   # supersedes
        writer.write_snapshot(0, 1000, _reg(3).snapshot())   # supersedes
    expected = MetricsRegistry()
    expected.merge(_reg(3)).merge(_reg(5))  # last per shard, seed order
    assert replay(path).snapshot() == expected.snapshot()


def test_replay_of_partial_stream_is_consistent_not_torn(tmp_path):
    # Dropping a prefix of snapshots loses staleness, not correctness:
    # the replayed registry is exactly the last-cumulative-per-shard merge.
    path = str(tmp_path / "t.jsonl")
    with JsonlWriter(path) as writer:
        writer.write_snapshot(0, 1000, _reg(9).snapshot())
    assert replay(path).snapshot() == _reg(9).snapshot()


def test_writer_accepts_file_object():
    import io

    buffer = io.StringIO()
    writer = JsonlWriter(buffer)
    writer.write_meta(note="x")
    writer.close()  # must not close a sink it does not own
    assert json.loads(buffer.getvalue())["note"] == "x"
