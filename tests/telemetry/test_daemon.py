"""Daemon end-to-end: live scrape, stream replay, determinism goldens."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.fleet import run_campaign
from repro.obs import collecting
from repro.obs.metrics import MetricsRegistry
from repro.telemetry import (CampaignDaemon, LiveStore, OpenLoopShard,
                             clear_stop, parse_exposition, replay,
                             request_stop)
from repro.telemetry.scorecard import LatencyScorecard
from repro.telemetry.stream import read_records

SHARD = dict(duration_s=2.0, rate_per_s=8.0, snapshot_every_s=0.5)


@pytest.fixture(autouse=True)
def _clean_stop_flag():
    clear_stop()
    yield
    clear_stop()


def _get(url: str) -> str:
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.read().decode("utf-8")


# ----------------------------------------------------------------------
# determinism goldens: the exporter must not touch the simulation
# ----------------------------------------------------------------------

def test_golden_exporter_on_off_bit_identical():
    shard = OpenLoopShard(**SHARD)
    with collecting() as col:
        bare_summary = shard(seed=1000)
    bare_metrics = col.snapshot()
    seen = []
    result = run_campaign(1, shard, seed_base=1000, collect_metrics=True,
                          on_snapshot=lambda i, snap: seen.append(snap))
    assert result.per_index[0] == bare_summary
    assert result.metrics[1000] == bare_metrics
    assert len(seen) > 1
    # cumulative snapshots: the last published == the trial's own final
    assert seen[-1] == bare_metrics


def test_golden_scorecard_deterministic_for_fixed_seed():
    def once():
        daemon = CampaignDaemon(shards=2, shard=OpenLoopShard(**SHARD))
        result, card = daemon.run(install_signal_handlers=False)
        return result, card
    r1, c1 = once()
    r2, c2 = once()
    assert c1.to_json_dict() == c2.to_json_dict()
    assert r1.merged_metrics.snapshot() == r2.merged_metrics.snapshot()
    assert [r1.per_index[i] for i in sorted(r1.per_index)] \
        == [r2.per_index[i] for i in sorted(r2.per_index)]


def test_golden_serial_equals_parallel():
    shard = OpenLoopShard(**SHARD)
    serial = CampaignDaemon(shards=2, shard=shard, workers=1)
    parallel = CampaignDaemon(shards=2, shard=shard, workers=2)
    rs, cs = serial.run(install_signal_handlers=False)
    rp, cp = parallel.run(install_signal_handlers=False)
    assert cs.to_json_dict() == cp.to_json_dict()
    assert rs.merged_metrics.snapshot() == rp.merged_metrics.snapshot()
    assert parallel.snapshots_seen > 0  # the queue channel carried snaps


# ----------------------------------------------------------------------
# live export
# ----------------------------------------------------------------------

def test_daemon_serves_metrics_and_jsonl(tmp_path):
    jsonl = str(tmp_path / "tele.jsonl")
    daemon = CampaignDaemon(shards=2, shard=OpenLoopShard(**SHARD),
                            jsonl_path=jsonl, linger_s=120.0)
    scraped: dict = {}

    def scrape_then_stop(url: str) -> None:
        # Poll /metrics until the campaign has completed sessions (the
        # linger window keeps the exporter up), then release the daemon.
        try:
            scraped["health"] = _get(url + "/healthz")
            deadline = time.monotonic() + 110
            while time.monotonic() < deadline:
                text = _get(url + "/metrics")
                families = parse_exposition(text)  # every scrape is valid
                done = families.get(
                    "repro_telemetry_sessions_completed_total")
                if done and done["samples"][0][2] > 0:
                    scraped["metrics"] = text
                    break
                time.sleep(0.1)
            try:
                _get(url + "/nope")
            except urllib.error.HTTPError as exc:
                scraped["not_found"] = exc.code
        finally:
            request_stop()

    threads = []

    def ready(d: CampaignDaemon) -> None:
        thread = threading.Thread(
            target=scrape_then_stop, args=(f"http://127.0.0.1:{d.port}",),
            daemon=True)
        thread.start()
        threads.append(thread)

    result, card = daemon.run(install_signal_handlers=False, on_ready=ready)
    threads[0].join(timeout=30)

    assert scraped["health"] == "ok\n"
    assert scraped["not_found"] == 404
    families = parse_exposition(scraped["metrics"])
    totals = families["repro_telemetry_sessions_completed_total"]["samples"]
    assert totals[0][2] > 0
    # derived scorecard gauges are live on the endpoint
    assert "repro_telemetry_scorecard_p50_latency_s" in families

    # the JSON-lines stream replays to the in-process merged registry
    records = list(read_records(jsonl))
    assert records[0]["kind"] == "meta"
    assert records[-1]["kind"] == "final"
    assert replay(jsonl).snapshot() == result.merged_metrics.snapshot()
    assert records[-1]["metrics"] == result.merged_metrics.snapshot()
    assert records[-1]["scorecard"] == card.to_json_dict()
    json.dumps(records[-1])  # JSON-clean end to end


def test_ephemeral_port_allocation():
    daemon = CampaignDaemon(
        shards=1, shard=OpenLoopShard(duration_s=1.0, rate_per_s=4.0))
    ports = {}
    daemon.run(install_signal_handlers=False,
               on_ready=lambda d: ports.setdefault("port", d.port))
    assert ports["port"] > 0


def test_live_store_merges_in_seed_order():
    store = LiveStore()
    a, b = MetricsRegistry(), MetricsRegistry()
    a.set_gauge("g", 1.0)
    b.set_gauge("g", 2.0)
    # updates arrive out of seed order; merge must still be seed-ordered
    store.update(1, 1001, b.snapshot())
    store.update(0, 1000, a.snapshot())
    assert store.merged().get("g").value == 2.0  # seed 1001 is later
    store.update(0, 1000, a.snapshot())          # refresh changes nothing
    assert store.merged().get("g").value == 2.0
    assert len(store) == 2


# ----------------------------------------------------------------------
# graceful stop
# ----------------------------------------------------------------------

def test_stop_flag_drains_in_process_campaign():
    shard = OpenLoopShard(duration_s=3600.0, rate_per_s=8.0,
                          snapshot_every_s=0.5)
    calls = []

    def deliver(index, snapshot):
        calls.append(index)
        if len(calls) == 3:
            request_stop()

    result = run_campaign(1, shard, seed_base=1000, collect_metrics=True,
                          on_snapshot=deliver)
    summary = result.per_index[0]
    assert summary["stopped_early"] is True
    assert summary["active"] == 0  # drained, not truncated
    card = LatencyScorecard.from_registry(result.merged_metrics)
    assert card.sessions_completed == summary["completed"]
