"""Latency scorecards: quantiles, merge-safety, derived gauges."""

from __future__ import annotations

import json

from repro.obs.metrics import MetricsRegistry
from repro.telemetry.scorecard import LatencyScorecard
from repro.telemetry.sessions import (LATENCY_BINS, LATENCY_HI_S,
                                      LATENCY_METRIC)


def _registry(latencies, *, alerts: int = 0, duration: float = 10.0,
              first_alert: float = None) -> MetricsRegistry:
    reg = MetricsRegistry()
    for x in latencies:
        reg.observe(LATENCY_METRIC, x, lo=0.0, hi=LATENCY_HI_S,
                    bins=LATENCY_BINS)
    reg.incr("telemetry.sessions.arrived", len(latencies))
    reg.incr("telemetry.sessions.completed", len(latencies))
    if alerts:
        reg.incr("telemetry.alerts.emitted", alerts)
    reg.set_gauge("telemetry.campaign.duration_s", duration)
    if first_alert is not None:
        reg.set_gauge("telemetry.alerts.first_t_s", first_alert)
    return reg


def test_quantiles_ordered_and_rates_computed():
    card = LatencyScorecard.from_registry(
        _registry([0.1 * i for i in range(1, 101)], alerts=5, duration=10.0,
                  first_alert=2.5))
    assert card.sessions_completed == 100
    assert card.p50_latency_s <= card.p95_latency_s <= card.p99_latency_s
    assert abs(card.p50_latency_s - 5.0) < 0.3
    assert card.alerts_per_s == 0.5
    assert card.time_to_detect_s == 2.5


def test_empty_registry_yields_none_fields():
    card = LatencyScorecard.from_registry(MetricsRegistry())
    assert card.sessions_completed == 0
    assert card.p50_latency_s is None
    assert card.alerts_per_s is None
    assert card.time_to_detect_s is None
    json.dumps(card.to_json_dict())  # JSON-clean even when empty


def test_scorecard_of_merge_is_scorecard_of_campaign():
    # The scorecard must be derivable from merged state alone: computing
    # it on a merged registry equals computing it on the union registry.
    a = _registry([1.0, 2.0], alerts=1, first_alert=4.0)
    b = _registry([3.0, 4.0], alerts=2, first_alert=3.0)
    union = _registry([1.0, 2.0, 3.0, 4.0], alerts=3, first_alert=3.0)
    merged = MetricsRegistry()
    merged.merge(a).merge(b)
    assert LatencyScorecard.from_registry(merged).to_json_dict() \
        == LatencyScorecard.from_registry(union).to_json_dict()


def test_time_to_detect_takes_earliest_shard_via_gauge_min():
    late = _registry([1.0], alerts=1, first_alert=9.0)
    early = _registry([1.0], alerts=1, first_alert=1.5)
    merged = MetricsRegistry()
    merged.merge(late).merge(early)
    # last-write-wins would say 1.5 here; order the merge the other way
    # to prove it is the *min*, not the last value, that is reported
    merged2 = MetricsRegistry()
    merged2.merge(early).merge(late)
    assert LatencyScorecard.from_registry(merged).time_to_detect_s == 1.5
    assert LatencyScorecard.from_registry(merged2).time_to_detect_s == 1.5


def test_install_writes_scorecard_gauges():
    reg = _registry([1.0, 2.0, 3.0], alerts=2, first_alert=1.0)
    card = LatencyScorecard.from_registry(reg)
    card.install(reg)
    assert reg.get("telemetry.scorecard.p50_latency_s").value \
        == card.p50_latency_s
    assert reg.get("telemetry.scorecard.sessions_completed").value == 3
    # None fields stay uninstalled rather than becoming bogus zeros
    empty = MetricsRegistry()
    LatencyScorecard.from_registry(empty).install(empty)
    assert empty.get("telemetry.scorecard.p50_latency_s") is None


def test_report_renders_for_humans():
    text = LatencyScorecard.from_registry(
        _registry([1.0], alerts=1, first_alert=2.0)).report()
    assert "p95 latency" in text and "time to detect" in text
    empty = LatencyScorecard.from_registry(MetricsRegistry()).report()
    assert "n/a" in empty
