"""Tests for repro.telemetry (PR 8)."""
