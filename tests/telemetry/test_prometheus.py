"""Text-exposition rendering: naming rules, format grammar, histograms."""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.telemetry.prometheus import (metric_family_name, parse_exposition,
                                        render_exposition)


def _registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.incr("telemetry.sessions.completed", 42)
    reg.set_gauge("telemetry.sessions.active", 3)
    reg.gauge("telemetry.never.set")  # stays unset -> omitted
    reg.add_time("telemetry.session.duration", 0.5)
    reg.add_time("telemetry.session.duration", 1.5)
    for x in (0.5, 1.5, 2.5, -1.0, 99.0):  # one under, one over
        reg.observe("telemetry.session.latency_s", x, lo=0.0, hi=4.0, bins=4)
    return reg


def test_family_naming_rules():
    assert metric_family_name("telemetry.sessions.completed", "counter") \
        == "repro_telemetry_sessions_completed_total"
    assert metric_family_name("a.b-c d", "gauge") == "repro_a_b_c_d"
    assert metric_family_name("x", "timer") == "repro_x_seconds"


def test_render_is_valid_and_deterministic():
    text = render_exposition(_registry())
    assert text == render_exposition(_registry())
    families = parse_exposition(text)
    assert families["repro_telemetry_sessions_completed_total"]["type"] \
        == "counter"
    assert families["repro_telemetry_sessions_active"]["type"] == "gauge"
    assert families["repro_telemetry_session_duration_seconds"]["type"] \
        == "summary"
    assert families["repro_telemetry_session_latency_s"]["type"] == "histogram"
    assert "repro_telemetry_never_set" not in families


def test_counter_and_gauge_values():
    families = parse_exposition(render_exposition(_registry()))
    (name, labels, value), = \
        families["repro_telemetry_sessions_completed_total"]["samples"]
    assert (labels, value) == ({}, 42.0)
    (_, _, active), = families["repro_telemetry_sessions_active"]["samples"]
    assert active == 3.0


def test_histogram_buckets_cumulative_with_underflow_and_inf():
    families = parse_exposition(render_exposition(_registry()))
    samples = families["repro_telemetry_session_latency_s"]["samples"]
    buckets = {labels["le"]: value for name, labels, value in samples
               if name.endswith("_bucket")}
    # underflow (-1.0) is <= every finite edge, so it folds in everywhere
    assert buckets["1"] == 2.0      # underflow + 0.5
    assert buckets["2"] == 3.0      # + 1.5
    assert buckets["3"] == 4.0      # + 2.5
    assert buckets["4"] == 4.0
    assert buckets["+Inf"] == 5.0   # + overflow (99.0)
    count = [v for n, _l, v in samples if n.endswith("_count")][0]
    assert count == 5.0


def test_summary_sum_and_count():
    families = parse_exposition(render_exposition(_registry()))
    samples = {name: value for name, _l, value in
               families["repro_telemetry_session_duration_seconds"]["samples"]}
    assert samples["repro_telemetry_session_duration_seconds_sum"] == 2.0
    assert samples["repro_telemetry_session_duration_seconds_count"] == 2.0


def test_render_accepts_snapshot_dict():
    reg = _registry()
    assert render_exposition(reg.snapshot()) == render_exposition(reg)


def test_empty_registry_renders_empty():
    assert render_exposition(MetricsRegistry()) == ""
    assert parse_exposition("") == {}


@pytest.mark.parametrize("bad", [
    "repro_x 1",                          # sample with no TYPE
    "# TYPE repro_x counter\nrepro_x nope",   # unparseable value
    "# TYPE repro_x wat\nrepro_x 1",      # unknown type
    "# TYPE repro_x counter\nrepro_x -1",  # negative counter
    "# TYPE repro_x counter\n\nrepro_x 1",  # blank line inside
])
def test_parser_rejects_malformed(bad):
    with pytest.raises(ValueError):
        parse_exposition(bad)


def test_parser_rejects_non_cumulative_histogram():
    bad = "\n".join([
        "# TYPE repro_h histogram",
        'repro_h_bucket{le="1"} 5',
        'repro_h_bucket{le="2"} 3',
        'repro_h_bucket{le="+Inf"} 5',
        "repro_h_sum 1",
        "repro_h_count 5",
    ])
    with pytest.raises(ValueError, match="non-cumulative"):
        parse_exposition(bad)


def test_parser_rejects_missing_inf_bucket():
    bad = "\n".join([
        "# TYPE repro_h histogram",
        'repro_h_bucket{le="1"} 5',
        "repro_h_sum 1",
        "repro_h_count 5",
    ])
    with pytest.raises(ValueError, match=r"\+Inf"):
        parse_exposition(bad)
