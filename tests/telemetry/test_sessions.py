"""Open-loop session generator: determinism, funnel accounting, shedding."""

from __future__ import annotations

import pytest

from repro.core.scenario import build_corp_scenario
from repro.obs import collecting
from repro.telemetry.sessions import LATENCY_METRIC, OpenLoopSessions


def _drive(seed: int, *, rate: float = 10.0, duration: float = 3.0,
           drain: float = 35.0, with_rogue: bool = True, **kwargs):
    scenario = build_corp_scenario(seed, with_rogue=with_rogue)
    if scenario.rogue is not None:
        scenario.arm_download_mitm()
    gen = OpenLoopSessions(scenario, rate_per_s=rate, **kwargs)
    gen.start()
    scenario.sim.run(until=scenario.sim.now + duration)
    gen.stop()
    scenario.sim.run(until=scenario.sim.now + drain)
    return gen


def test_sessions_flow_and_funnel_balances():
    gen = _drive(7)
    assert gen.arrived > 10  # ~rate * duration
    assert gen.arrived == gen.started + gen.shed
    assert gen.started == gen.completed + gen.failed + gen.active
    assert gen.active == 0  # fully drained
    assert gen.completed > 0


def test_sessions_are_seed_deterministic():
    a = _drive(21).summary()
    b = _drive(21).summary()
    assert a == b


def test_different_seeds_differ():
    a = _drive(5).summary()
    b = _drive(6).summary()
    assert a != b  # arrival process follows the world's seed


def test_rogue_world_compromises_some_downloaders():
    gen = _drive(3, rate=12.0, duration=5.0, download_fraction=1.0)
    assert gen.compromised > 0
    gen_clean = _drive(3, rate=12.0, duration=5.0, download_fraction=1.0,
                       with_rogue=False)
    assert gen_clean.compromised == 0


def test_open_loop_arrivals_do_not_wait_for_completion():
    # With one pooled client, a long queue of arrivals lands while the
    # first session is still in flight: the rest are shed immediately,
    # which is exactly the open-loop property (offered load continues).
    gen = _drive(11, rate=30.0, duration=2.0, max_clients=1)
    assert gen.shed > 0
    assert gen.arrived == gen.started + gen.shed


def test_max_sessions_caps_offered_load():
    gen = _drive(13, rate=50.0, duration=10.0, max_sessions=5)
    assert gen.arrived == 5


def test_metrics_written_when_collecting():
    with collecting() as col:
        gen = _drive(9)
    reg = col.registry
    assert reg.value("telemetry.sessions.arrived") == gen.arrived
    assert reg.value("telemetry.sessions.completed") == gen.completed
    hist = reg.get(LATENCY_METRIC)
    assert hist is not None and hist.total == gen.completed
    # quantiles of a drained run are finite and ordered
    assert 0.0 <= hist.quantile(0.5) <= hist.quantile(0.99)


def test_summary_matches_with_and_without_collection():
    with collecting():
        observed = _drive(17).summary()
    bare = _drive(17).summary()
    assert observed == bare  # observation never perturbs the world


def test_bad_parameters_rejected():
    scenario = build_corp_scenario(1, with_rogue=False)
    with pytest.raises(ValueError):
        OpenLoopSessions(scenario, rate_per_s=0.0)
    with pytest.raises(ValueError):
        OpenLoopSessions(scenario, rate_per_s=1.0, download_fraction=1.5)
