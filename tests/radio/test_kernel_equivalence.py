"""Differential harness: the vectorized kernel is *bit-identical* to
the scalar reference.

Every hypothesis-generated world — random positions, channels, tx
powers, shadowing on/off, collisions from carrier-sense-off injectors,
mobility mid-run, attach/detach mid-run — is executed twice with the
same seed, once under ``Medium(kernel="scalar")`` and once under
``kernel="vector"``.  The runs must agree on:

* the full delivery sequence, **including exact RSSI floats** (a 1-ULP
  drift would fail — this is why the kernel computes pair geometry with
  scalar ``math`` and uses numpy only for IEEE-exact add/sub/compare);
* every per-port counter (tx/rx/drop-by-loss/drop-by-collision);
* the final RNG stream positions of both the medium substream and the
  root simulator stream — equal results with a diverged stream would
  still be a caching bug waiting to perturb the next subsystem;
* the ``radio.*`` metrics snapshot (minus the kernel's own
  ``radio.kernel.*`` cache telemetry, which intentionally differs).

CI runs this file as the dedicated ``kernel-equivalence`` step with a
fixed profile (``derandomize=True`` keeps the corpus stable across
runs, so a red build is always reproducible locally).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dot11.frames import make_beacon
from repro.dot11.mac import MacAddress
from repro.obs.runtime import collecting
from repro.radio.medium import Medium, RadioPort
from repro.radio.propagation import FrameLossModel, LogDistancePathLoss, Position
from repro.sim.kernel import Simulator

AP = MacAddress("aa:bb:cc:dd:00:01")

# Deterministic differential profile: 200+ worlds, stable corpus.
DIFF_SETTINGS = settings(
    max_examples=200,
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_coord = st.floats(min_value=-40.0, max_value=40.0,
                   allow_nan=False, allow_infinity=False, width=64)

_port_spec = st.fixed_dictionaries({
    "x": _coord,
    "y": _coord,
    "channel": st.integers(min_value=1, max_value=11),
    "power": st.floats(min_value=5.0, max_value=25.0,
                       allow_nan=False, allow_infinity=False),
    "any": st.booleans(),
})

_action = st.fixed_dictionaries({
    "kind": st.sampled_from(
        ["tx", "tx", "tx", "tx_nocs", "move", "move_raw",
         "detach", "attach", "channel"]),
    "i": st.integers(min_value=0, max_value=7),
    "dt": st.floats(min_value=1e-5, max_value=2e-3,
                    allow_nan=False, allow_infinity=False),
    "x": _coord,
    "y": _coord,
    "channel": st.integers(min_value=1, max_value=11),
})

_world = st.fixed_dictionaries({
    "seed": st.integers(min_value=0, max_value=2**32 - 1),
    "sigma": st.sampled_from([0.0, 0.0, 0.0, 3.0, 6.0]),
    "extra_loss": st.sampled_from([0.0, 0.0, 0.2]),
    "ports": st.lists(_port_spec, min_size=2, max_size=6),
    "actions": st.lists(_action, min_size=1, max_size=14),
})


def _run_world(kernel: str, spec: dict) -> dict:
    """Execute one drawn world under ``kernel`` and return everything
    observable: delivery log, counters, RNG states, radio metrics."""
    with collecting() as col:
        sim = Simulator(seed=spec["seed"])
        medium = Medium(
            sim,
            LogDistancePathLoss(shadowing_sigma_db=spec["sigma"]),
            FrameLossModel(extra_loss=spec["extra_loss"]),
            kernel=kernel,
        )
        log: list = []
        ports = []
        for i, p in enumerate(spec["ports"]):
            port = RadioPort(
                f"p{i}", Position(p["x"], p["y"]), p["channel"],
                tx_power_dbm=p["power"], any_channel=p["any"],
            )

            def receiver(frame, rssi, ch, _name=port.name):
                log.append((_name, frame.subtype.name, rssi, ch))

            port.on_receive = receiver
            medium.attach(port)
            ports.append(port)
        beacon = make_beacon(AP, "DIFF", 1)

        def act(a: dict) -> None:
            port = ports[a["i"] % len(ports)]
            kind = a["kind"]
            if kind == "tx":
                if port._medium is not None:
                    port.transmit(beacon)
            elif kind == "tx_nocs":
                # Carrier-sense-off injector: transmits immediately,
                # provoking time-overlap collisions.
                if port._medium is not None:
                    medium.transmit(port, beacon, 11e6, carrier_sense=False)
            elif kind == "move":
                port.move_to(Position(a["x"], a["y"]))
            elif kind == "move_raw":
                # The stale-position hazard path: plain assignment must
                # behave exactly like move_to().
                port.position = Position(a["x"], a["y"])
            elif kind == "detach":
                if port._medium is not None:
                    medium.detach(port)
            elif kind == "attach":
                if port._medium is None:
                    medium.attach(port)
            elif kind == "channel":
                port.channel = a["channel"]

        t = 0.0
        for a in spec["actions"]:
            t += a["dt"]
            sim.schedule_at(t, act, a)
        sim.run()

        return {
            "log": log,
            "counters": [
                (p.name, p.tx_frames, p.rx_frames,
                 p.rx_dropped_loss, p.rx_dropped_collision)
                for p in ports
            ],
            "medium_rng": medium._rng.getstate(),
            "sim_rng": sim.rng.getstate(),
            "metrics": {
                k: v for k, v in col.snapshot().items()
                if k.startswith("radio.")
                and not k.startswith("radio.kernel.")
            },
        }


@DIFF_SETTINGS
@given(spec=_world)
def test_vector_kernel_matches_scalar_reference(spec):
    scalar = _run_world("scalar", spec)
    vector = _run_world("vector", spec)
    assert vector["log"] == scalar["log"]
    assert vector["counters"] == scalar["counters"]
    assert vector["medium_rng"] == scalar["medium_rng"]
    assert vector["sim_rng"] == scalar["sim_rng"]
    assert vector["metrics"] == scalar["metrics"]


@DIFF_SETTINGS
@given(spec=_world)
def test_scalar_reference_is_self_deterministic(spec):
    """Anchor for the differential: the reference itself must be a pure
    function of the world spec, or the comparison above proves nothing."""
    assert _run_world("scalar", spec) == _run_world("scalar", spec)
