"""Radio medium edge cases: capture effect, busy deferral, determinism."""

import pytest

from repro.dot11.frames import make_beacon
from repro.dot11.mac import MacAddress
from repro.radio.medium import Medium, RadioPort
from repro.radio.propagation import Position
from repro.sim.kernel import Simulator

AP = MacAddress("aa:bb:cc:dd:00:01")


def _port(medium, name, x, channel=1, **kw):
    port = RadioPort(name=name, position=Position(x, 0.0), channel=channel, **kw)
    medium.attach(port)
    return port


def test_capture_effect_strong_signal_survives_collision():
    """With >= capture margin separating two colliding signals, the
    strong one is decoded and only the weak one is lost."""
    sim = Simulator(seed=3)
    medium = Medium(sim, capture_margin_db=10.0)
    near_tx = _port(medium, "near", 4.0)     # 1 m from rx: loud
    far_tx = _port(medium, "far", 400.0)     # 395 m: faint but hearable
    rx = _port(medium, "rx", 5.0)
    got = []
    rx.on_receive = lambda f, rssi, ch: got.append(f.parse_beacon().ssid)
    # Force a true collision: both transmit without carrier sense.
    medium.transmit(near_tx, make_beacon(AP, "LOUD", 1), 11e6, carrier_sense=False)
    medium.transmit(far_tx, make_beacon(AP, "FAINT", 1), 11e6, carrier_sense=False)
    sim.run()
    assert "LOUD" in got
    assert "FAINT" not in got
    assert rx.rx_dropped_collision >= 0  # the faint one died (loss or collision)


def test_comparable_signals_mutually_destruct():
    sim = Simulator(seed=3)
    medium = Medium(sim, capture_margin_db=10.0)
    tx1 = _port(medium, "tx1", 4.0)
    tx2 = _port(medium, "tx2", 6.0)  # similar distance: similar power at rx
    rx = _port(medium, "rx", 5.0)
    got = []
    rx.on_receive = lambda f, rssi, ch: got.append(1)
    medium.transmit(tx1, make_beacon(AP, "A", 1), 11e6, carrier_sense=False)
    medium.transmit(tx2, make_beacon(AP, "B", 1), 11e6, carrier_sense=False)
    sim.run()
    assert got == []
    assert rx.rx_dropped_collision == 2


def test_busy_deferral_preserves_fifo_per_port():
    """Frames queued on one transmitter arrive in submission order."""
    sim = Simulator(seed=4)
    medium = Medium(sim)
    tx = _port(medium, "tx", 0.0)
    rx = _port(medium, "rx", 5.0)
    order = []
    rx.on_receive = lambda f, rssi, ch: order.append(f.parse_beacon().ssid)
    for i in range(8):
        tx.transmit(make_beacon(AP, f"N{i}", 1))
    sim.run()
    assert order == [f"N{i}" for i in range(8)]


def test_airtime_accounting():
    sim = Simulator(seed=5)
    medium = Medium(sim)
    beacon = make_beacon(AP, "NET", 1)
    airtime = medium.airtime(beacon, 11e6)
    # 192us preamble + bytes at 11 Mb/s.
    expected = 192e-6 + beacon.air_bytes() * 8 / 11e6
    assert airtime == pytest.approx(expected)
    # 1 Mb/s takes 11x longer on the payload portion (preamble fixed).
    slow = medium.airtime(beacon, 1e6)
    assert (slow - 192e-6) == pytest.approx(11 * (airtime - 192e-6))


def test_medium_delivery_is_deterministic():
    def run(seed):
        sim = Simulator(seed=seed)
        medium = Medium(sim)
        from repro.radio.propagation import FrameLossModel
        medium.loss_model = FrameLossModel(extra_loss=0.3)
        tx = _port(medium, "tx", 0.0)
        rx = _port(medium, "rx", 5.0)
        got = []
        rx.on_receive = lambda f, rssi, ch: got.append(sim.now)
        for _ in range(100):
            tx.transmit(make_beacon(AP, "NET", 1))
        sim.run()
        return got

    assert run(42) == run(42)
    assert run(42) != run(43)


def test_tx_counters():
    sim = Simulator(seed=6)
    medium = Medium(sim)
    tx = _port(medium, "tx", 0.0)
    rx = _port(medium, "rx", 5.0)
    rx.on_receive = lambda f, r, c: None
    beacon = make_beacon(AP, "NET", 1)
    for _ in range(5):
        tx.transmit(beacon)
    sim.run()
    assert tx.tx_frames == 5
    assert tx.tx_bytes == 5 * beacon.air_bytes()
    assert rx.rx_frames == 5


def test_detach_clears_back_reference_and_gauge():
    """A detached port must not keep a stale handle into the medium."""
    from repro.obs.runtime import collecting
    from repro.sim.errors import ConfigurationError

    sim = Simulator(seed=3)
    with collecting() as col:
        medium = Medium(sim)
        port = _port(medium, "roamer", 1.0)
        other = _port(medium, "stays", 2.0)
        medium.detach(port)
        assert port._medium is None
        assert port not in medium.ports
        with pytest.raises(ConfigurationError, match="not attached"):
            port.transmit(make_beacon(AP, "GHOST", 1))
        # gauge tracks the live attachment count
        assert col.registry.snapshot()["radio.ports"]["value"] == 1
        # detaching an unknown port is a no-op
        medium.detach(port)
        assert other in medium.ports


def test_detached_port_can_reattach_to_another_medium():
    sim = Simulator(seed=3)
    m1, m2 = Medium(sim), Medium(sim)
    port = _port(m1, "mover", 1.0)
    m1.detach(port)
    m2.attach(port)
    assert port._medium is m2
