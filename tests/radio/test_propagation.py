"""Path-loss and frame-error models."""

import math

import pytest

from repro.radio.propagation import FrameLossModel, LogDistancePathLoss, Position
from repro.sim.rng import SimRandom


def test_position_distance():
    assert Position(0, 0).distance_to(Position(3, 4)) == 5.0
    assert Position(1, 1).distance_to(Position(1, 1)) == 0.0


def test_position_moved():
    assert Position(1, 2).moved(3, -1) == Position(4, 1)


def test_path_loss_grows_with_distance():
    model = LogDistancePathLoss(exponent=3.0)
    losses = [model.path_loss_db(d) for d in (1, 10, 50, 100)]
    assert losses == sorted(losses)
    assert losses[0] == pytest.approx(40.0)          # PL(d0)
    assert losses[1] == pytest.approx(70.0)          # +10*n dB per decade


def test_rssi_from_tx_power():
    model = LogDistancePathLoss(exponent=3.0)
    assert model.rssi_dbm(15.0, 10.0) == pytest.approx(15.0 - 70.0)


def test_distance_clamp():
    model = LogDistancePathLoss()
    assert model.path_loss_db(0.0) == model.path_loss_db(0.1)


def test_shadowing_deterministic_with_rng():
    model = LogDistancePathLoss(shadowing_sigma_db=4.0)
    a = model.path_loss_db(20.0, SimRandom(5))
    b = model.path_loss_db(20.0, SimRandom(5))
    assert a == b
    c = model.path_loss_db(20.0, SimRandom(6))
    assert a != c


def test_invalid_exponent():
    with pytest.raises(ValueError):
        LogDistancePathLoss(exponent=0.0)


def test_loss_model_sigmoid_shape():
    model = FrameLossModel(threshold_dbm=-88.0, width_db=2.0)
    strong = model.success_probability(-60.0)
    at_threshold = model.success_probability(-88.0)
    weak = model.success_probability(-110.0)
    assert strong > 0.999
    assert at_threshold == pytest.approx(0.5)
    assert weak < 0.001


def test_loss_model_extra_loss_scales():
    clean = FrameLossModel(extra_loss=0.0)
    lossy = FrameLossModel(extra_loss=0.5)
    assert lossy.success_probability(-60.0) == pytest.approx(
        0.5 * clean.success_probability(-60.0))
    with pytest.raises(ValueError):
        FrameLossModel(extra_loss=1.0)


def test_hearable_margin():
    model = FrameLossModel(threshold_dbm=-88.0)
    assert model.hearable(-90.0)
    assert model.hearable(-98.0)
    assert not model.hearable(-98.1)


def test_no_overflow_at_extremes():
    model = FrameLossModel()
    assert model.success_probability(500.0) == 1.0
    assert model.success_probability(-500.0) == 0.0
