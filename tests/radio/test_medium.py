"""The broadcast medium: delivery, channels, sniffing, collisions, jamming."""

import pytest

from repro.dot11.frames import make_beacon
from repro.dot11.mac import MacAddress
from repro.radio.interference import Jammer
from repro.radio.medium import Medium, RadioPort
from repro.radio.mobility import LinearMobility
from repro.radio.propagation import FrameLossModel, Position
from repro.sim.errors import ConfigurationError
from repro.sim.kernel import Simulator

AP = MacAddress("aa:bb:cc:dd:00:01")


def _port(medium, name, x, channel=1, **kw):
    port = RadioPort(name=name, position=Position(x, 0.0), channel=channel, **kw)
    medium.attach(port)
    return port


def _rx_recorder(port):
    received = []
    port.on_receive = lambda frame, rssi, ch: received.append((frame, rssi, ch))
    return received


def test_broadcast_reaches_all_in_range():
    sim = Simulator(seed=1)
    medium = Medium(sim)
    tx = _port(medium, "tx", 0.0)
    rx1, rx2 = _port(medium, "rx1", 10.0), _port(medium, "rx2", 20.0)
    got1, got2 = _rx_recorder(rx1), _rx_recorder(rx2)
    tx.transmit(make_beacon(AP, "NET", 1))
    sim.run()
    assert len(got1) == 1 and len(got2) == 1
    # Closer receiver sees stronger signal.
    assert got1[0][1] > got2[0][1]


def test_sender_does_not_hear_itself():
    sim = Simulator(seed=1)
    medium = Medium(sim)
    tx = _port(medium, "tx", 0.0)
    got = _rx_recorder(tx)
    tx.transmit(make_beacon(AP, "NET", 1))
    sim.run()
    assert got == []


def test_out_of_range_receiver_silent():
    sim = Simulator(seed=1)
    medium = Medium(sim)
    tx = _port(medium, "tx", 0.0)
    far = _port(medium, "far", 100000.0)
    got = _rx_recorder(far)
    tx.transmit(make_beacon(AP, "NET", 1))
    sim.run()
    assert got == []


def test_nonoverlapping_channel_deaf():
    sim = Simulator(seed=1)
    medium = Medium(sim)
    tx = _port(medium, "tx", 0.0, channel=1)
    other = _port(medium, "other", 5.0, channel=6)
    got = _rx_recorder(other)
    tx.transmit(make_beacon(AP, "NET", 1))
    sim.run()
    assert got == []


def test_monitor_hears_all_channels():
    sim = Simulator(seed=1)
    medium = Medium(sim)
    tx1 = _port(medium, "tx1", 0.0, channel=1)
    tx6 = _port(medium, "tx6", 1.0, channel=6)
    monitor = _port(medium, "mon", 5.0, channel=1,
                    promiscuous=True, any_channel=True)
    got = _rx_recorder(monitor)
    tx1.transmit(make_beacon(AP, "A", 1))
    tx6.transmit(make_beacon(AP, "B", 6))
    sim.run()
    assert len(got) == 2
    assert {ch for _, _, ch in got} == {1, 6}


def test_adjacent_channel_attenuated_but_audible_nearby():
    sim = Simulator(seed=1)
    medium = Medium(sim)
    tx = _port(medium, "tx", 0.0, channel=1)
    co = _port(medium, "co", 5.0, channel=1)
    adj = _port(medium, "adj", 5.0, channel=2)
    got_co, got_adj = _rx_recorder(co), _rx_recorder(adj)
    tx.transmit(make_beacon(AP, "NET", 1))
    sim.run()
    assert got_co and got_adj
    assert got_co[0][1] > got_adj[0][1]  # rejection applied


def test_carrier_sense_serializes_same_channel():
    """Two immediate transmissions defer instead of colliding."""
    sim = Simulator(seed=1)
    medium = Medium(sim)
    a = _port(medium, "a", 0.0)
    b = _port(medium, "b", 1.0)
    rx = _port(medium, "rx", 2.0)
    got = _rx_recorder(rx)
    a.transmit(make_beacon(AP, "A", 1))
    b.transmit(make_beacon(AP, "B", 1))
    sim.run()
    assert len(got) == 2
    assert rx.rx_dropped_collision == 0


def test_no_carrier_sense_collides():
    sim = Simulator(seed=1)
    medium = Medium(sim)
    a = _port(medium, "a", 0.0)
    b = _port(medium, "b", 1.0)
    rx = _port(medium, "rx", 2.0)
    got = _rx_recorder(rx)
    medium.transmit(a, make_beacon(AP, "A", 1), 11e6, carrier_sense=False)
    medium.transmit(b, make_beacon(AP, "B", 1), 11e6, carrier_sense=False)
    sim.run()
    assert rx.rx_dropped_collision == 2
    assert got == []


def test_extra_loss_drops_frames():
    sim = Simulator(seed=1)
    medium = Medium(sim, loss_model=FrameLossModel(extra_loss=0.5))
    tx = _port(medium, "tx", 0.0)
    rx = _port(medium, "rx", 5.0)
    got = _rx_recorder(rx)
    for _ in range(200):
        tx.transmit(make_beacon(AP, "NET", 1))
    sim.run()
    assert 60 < len(got) < 140  # ~50% delivery
    assert rx.rx_dropped_loss == 200 - len(got)


def test_detached_port_cannot_transmit():
    port = RadioPort(name="lost", position=Position(0, 0), channel=1)
    with pytest.raises(ConfigurationError):
        port.transmit(make_beacon(AP, "NET", 1))


def test_double_attach_rejected():
    sim = Simulator(seed=1)
    medium = Medium(sim)
    port = _port(medium, "p", 0.0)
    with pytest.raises(ConfigurationError):
        medium.attach(port)


def test_disabled_port_neither_sends_nor_receives():
    sim = Simulator(seed=1)
    medium = Medium(sim)
    tx = _port(medium, "tx", 0.0)
    rx = _port(medium, "rx", 5.0)
    got = _rx_recorder(rx)
    rx.enabled = False
    tx.transmit(make_beacon(AP, "NET", 1))
    sim.run()
    assert got == []


def test_jammer_destroys_cochannel_frames():
    sim = Simulator(seed=1)
    medium = Medium(sim)
    tx = _port(medium, "tx", 0.0)
    rx = _port(medium, "rx", 5.0)
    got = _rx_recorder(rx)
    Jammer(medium, Position(5.0, 0.0), channel=1, effectiveness=1.0)
    for _ in range(20):
        tx.transmit(make_beacon(AP, "NET", 1))
    sim.run()
    assert got == []


def test_jammer_duty_cycle_partial():
    sim = Simulator(seed=2)
    medium = Medium(sim)
    tx = _port(medium, "tx", 0.0)
    rx = _port(medium, "rx", 5.0)
    got = _rx_recorder(rx)
    Jammer(medium, Position(5.0, 0.0), channel=1, duty_cycle=0.5,
           period_s=1.0, effectiveness=1.0)
    stop = sim.every(0.1, lambda: tx.transmit(make_beacon(AP, "NET", 1)))
    sim.run(until=10.0)
    stop()
    # Roughly half the frames land in the jammer's off-phase.
    assert 20 < len(got) < 80


def test_jammer_other_channel_harmless():
    sim = Simulator(seed=1)
    medium = Medium(sim)
    tx = _port(medium, "tx", 0.0, channel=11)
    rx = _port(medium, "rx", 5.0, channel=11)
    got = _rx_recorder(rx)
    Jammer(medium, Position(5.0, 0.0), channel=1, effectiveness=1.0)
    tx.transmit(make_beacon(AP, "NET", 11))
    sim.run()
    assert len(got) == 1


def test_mobility_moves_port_to_waypoints():
    sim = Simulator(seed=1)
    medium = Medium(sim)
    port = _port(medium, "walker", 0.0)
    arrived = []
    mob = LinearMobility(sim, port, [Position(10.0, 0.0)], speed_mps=2.0,
                         on_arrival=lambda: arrived.append(sim.now))
    sim.run(until=10.0)
    assert mob.arrived
    assert port.position == Position(10.0, 0.0)
    assert arrived and 4.5 <= arrived[0] <= 6.0  # 10m at 2 m/s


def test_mobility_stop():
    sim = Simulator(seed=1)
    medium = Medium(sim)
    port = _port(medium, "walker", 0.0)
    mob = LinearMobility(sim, port, [Position(100.0, 0.0)], speed_mps=1.0)
    sim.run(until=5.0)
    mob.stop()
    x_at_stop = port.position.x
    sim.run(until=50.0)
    assert port.position.x == x_at_stop
