"""Property tests for the vectorized kernel's geometry cache.

The cache's contract: after *any* interleaving of moves, attaches and
detaches, ``rssi_between`` returns exactly what a fresh
``LogDistancePathLoss`` computation would — epoch invalidation never
serves stale geometry, and caching never changes a single bit.  Plus
the satellite regression for the silent stale-position hazard: a plain
``port.position = ...`` assignment must behave exactly like
``move_to()`` (bump the epoch, invalidate, and be visible on the very
next transmission).
"""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dot11.frames import make_beacon
from repro.dot11.mac import MacAddress
from repro.radio.medium import Medium, RadioPort
from repro.radio.propagation import LogDistancePathLoss, Position
from repro.sim.kernel import Simulator

AP = MacAddress("aa:bb:cc:dd:00:01")

_coord = st.floats(min_value=-60.0, max_value=60.0,
                   allow_nan=False, allow_infinity=False, width=64)

_op = st.fixed_dictionaries({
    "kind": st.sampled_from(["move", "move_raw", "detach", "attach", "rssi"]),
    "i": st.integers(min_value=0, max_value=7),
    "j": st.integers(min_value=0, max_value=7),
    "x": _coord,
    "y": _coord,
})


def _fresh_rssi(medium: Medium, tx: RadioPort, rx: RadioPort) -> float:
    """The uncached reference: recompute path loss from scratch."""
    distance = tx.position.distance_to(rx.position)
    return tx.tx_power_dbm - medium.path_loss.path_loss_db(distance, None)


@settings(max_examples=150, derandomize=True, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    positions=st.lists(st.tuples(_coord, _coord), min_size=2, max_size=6),
    ops=st.lists(_op, min_size=0, max_size=20),
)
def test_cached_rssi_equals_fresh_computation_after_any_interleaving(
        positions, ops):
    sim = Simulator(seed=7)
    medium = Medium(sim, kernel="vector")
    ports = [RadioPort(f"p{i}", Position(x, y), 1)
             for i, (x, y) in enumerate(positions)]
    for p in ports:
        medium.attach(p)
    for op in ops:
        port = ports[op["i"] % len(ports)]
        kind = op["kind"]
        if kind == "move":
            port.move_to(Position(op["x"], op["y"]))
        elif kind == "move_raw":
            port.position = Position(op["x"], op["y"])
        elif kind == "detach" and port._medium is not None:
            medium.detach(port)
        elif kind == "attach" and port._medium is None:
            medium.attach(port)
        elif kind == "rssi":
            # Interleaved reads warm the cache mid-sequence so later
            # invalidations act on *populated* rows, not empty ones.
            other = ports[op["j"] % len(ports)]
            if other is not port:
                medium.rssi_between(port, other)
    # After the dust settles every pair — cached or not — must agree
    # with a from-scratch computation, exactly.
    for tx in ports:
        for rx in ports:
            if tx is rx:
                continue
            assert medium.rssi_between(tx, rx) == _fresh_rssi(medium, tx, rx)


@settings(max_examples=80, derandomize=True, deadline=None)
@given(ax=_coord, ay=_coord, bx=_coord, by=_coord,
       power=st.floats(min_value=1.0, max_value=30.0, allow_nan=False))
def test_rssi_is_symmetric_for_equal_powers(ax, ay, bx, by, power):
    """``math.hypot`` of negated deltas is bit-identical, so with equal
    tx powers the cached RSSI must be *exactly* symmetric — each
    direction cached in a different transmitter's row."""
    sim = Simulator(seed=7)
    medium = Medium(sim, kernel="vector")
    a = RadioPort("a", Position(ax, ay), 1, tx_power_dbm=power)
    b = RadioPort("b", Position(bx, by), 1, tx_power_dbm=power)
    medium.attach(a)
    medium.attach(b)
    assert medium.rssi_between(a, b) == medium.rssi_between(b, a)


def test_sub_decimetre_distances_clamp_to_point_one_metre():
    """Coincident and near-coincident ports hit the 0.1 m clamp — the
    cache must reproduce it, not divide by a tiny distance."""
    sim = Simulator(seed=7)
    medium = Medium(sim, kernel="vector")
    a = RadioPort("a", Position(0.0, 0.0), 1)
    coincident = RadioPort("b", Position(0.0, 0.0), 1)
    near = RadioPort("c", Position(0.05, 0.0), 1)
    for p in (a, coincident, near):
        medium.attach(p)
    clamped = a.tx_power_dbm - medium.path_loss.path_loss_db(0.1, None)
    assert medium.rssi_between(a, coincident) == clamped
    assert medium.rssi_between(a, near) == clamped


def test_move_updates_cached_rows_incrementally():
    """Movement patches the mover's column in cached rows (row_updates)
    rather than rebuilding every row from scratch (row_builds)."""
    sim = Simulator(seed=7)
    medium = Medium(sim, kernel="vector")
    ports = [RadioPort(f"p{i}", Position(float(i * 3), 0.0), 1)
             for i in range(4)]
    for p in ports:
        medium.attach(p)
    # Warm rows for two transmitters.
    medium.rssi_between(ports[0], ports[1])
    medium.rssi_between(ports[1], ports[2])
    stats = medium.kernel.cache_stats()
    assert stats["row_builds"] == 2 and stats["pl_rows"] == 2
    ports[3].move_to(Position(1.0, 1.0))
    stats = medium.kernel.cache_stats()
    # One column patched per cached row, zero rebuilds.
    assert stats["row_updates"] == 2
    assert stats["row_builds"] == 2
    # A mover with a cached row loses it (rebuilt lazily on next use).
    ports[0].move_to(Position(2.0, 2.0))
    assert medium.kernel.cache_stats()["pl_rows"] == 1


class _Recorder:
    def __init__(self, port):
        self.rssi = []
        port.on_receive = lambda frame, rssi, ch: self.rssi.append(rssi)


def test_direct_position_write_is_visible_on_next_transmission():
    """The stale-position hazard, closed: a plain assignment routes
    through move_to(), so the very next transmission uses the new
    geometry — no warm-up transmission, no manual invalidation."""
    sim = Simulator(seed=7)
    medium = Medium(sim, kernel="vector")
    tx = RadioPort("tx", Position(0.0, 0.0), 1)
    rx = RadioPort("rx", Position(10.0, 0.0), 1)
    medium.attach(tx)
    medium.attach(rx)
    got = _Recorder(rx)
    beacon = make_beacon(AP, "NET", 1)

    tx.transmit(beacon)
    sim.run()
    epoch_before = tx.position_epoch
    tx.position = Position(40.0, 0.0)          # plain write, not move_to()
    assert tx.position_epoch == epoch_before + 1
    tx.transmit(beacon)
    sim.run()

    assert len(got.rssi) == 2
    expected_near = tx.tx_power_dbm - medium.path_loss.path_loss_db(10.0, None)
    expected_far = tx.tx_power_dbm - medium.path_loss.path_loss_db(30.0, None)
    assert got.rssi[0] == expected_near
    assert got.rssi[1] == expected_far
    assert got.rssi[1] < got.rssi[0]


def test_receiver_move_invalidates_delivery_plans_too():
    """Plans cache per-receiver RSSI; a *receiver* moving must
    invalidate the transmitter's plan, not just the mover's own row."""
    sim = Simulator(seed=7)
    medium = Medium(sim, kernel="vector")
    tx = RadioPort("tx", Position(0.0, 0.0), 1)
    rx = RadioPort("rx", Position(5.0, 0.0), 1)
    medium.attach(tx)
    medium.attach(rx)
    got = _Recorder(rx)
    beacon = make_beacon(AP, "NET", 1)
    tx.transmit(beacon)
    sim.run()
    rx.position = Position(25.0, 0.0)
    tx.transmit(beacon)
    sim.run()
    assert got.rssi[0] == tx.tx_power_dbm - medium.path_loss.path_loss_db(5.0, None)
    assert got.rssi[1] == tx.tx_power_dbm - medium.path_loss.path_loss_db(25.0, None)


def test_detach_mid_flight_leaves_no_stale_row():
    """A transmitter that detaches while its frame is still in the air
    must not leave a cached row or plan behind: the fan-out computes
    its geometry uncached, because nothing would ever evict a row keyed
    by a detached port and on_move/on_attach refresh columns on the
    premise that every cached transmitter is attached."""
    sim = Simulator(seed=7)
    medium = Medium(sim, path_loss=LogDistancePathLoss(shadowing_sigma_db=0.0),
                    kernel="vector")
    tx = RadioPort("tx", Position(0.0, 0.0), 1, tx_power_dbm=5.0)
    rx = RadioPort("rx", Position(0.0, 0.0), 1, tx_power_dbm=5.0)
    heard = _Recorder(rx)
    medium.attach(tx)
    medium.attach(rx)
    beacon = make_beacon(AP, "CACHE", 1)
    sim.schedule_at(0.001, lambda: tx.transmit(beacon))
    sim.schedule_at(0.001 + 1e-5, lambda: medium.detach(tx))  # mid-flight
    # The regression: this move used to raise KeyError in _port_of while
    # refreshing the detached transmitter's orphaned row.
    sim.schedule_at(0.01, lambda: rx.move_to(Position(1.0, 2.0)))
    sim.run()
    assert heard.rssi  # the in-flight frame still delivered
    kernel = medium.kernel
    assert all(pid in kernel._idx for pid in kernel._pl_rows)
    assert all(pid in kernel._idx for pid in kernel._plans)


def test_detach_mid_flight_delivery_matches_scalar_kernel():
    """The uncached fan-out for a detached transmitter is bit-identical
    to the scalar reference."""
    def run(kernel):
        sim = Simulator(seed=11)
        medium = Medium(sim, kernel=kernel)
        tx = RadioPort("tx", Position(0.0, 0.0), 1, tx_power_dbm=5.0)
        rx = RadioPort("rx", Position(4.0, 3.0), 1, tx_power_dbm=5.0)
        heard = _Recorder(rx)
        medium.attach(tx)
        medium.attach(rx)
        beacon = make_beacon(AP, "CACHE", 1)
        sim.schedule_at(0.001, lambda: tx.transmit(beacon))
        sim.schedule_at(0.001 + 1e-5, lambda: medium.detach(tx))
        sim.run()
        return heard.rssi
    assert run("vector") == run("scalar")
