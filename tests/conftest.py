"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.dot11.mac import MacAddress
from repro.hosts.host import Host
from repro.hosts.nic import WiredInterface
from repro.netstack.ethernet import Hub, LanSegment, Switch
from repro.sim.kernel import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator(seed=1234)


def make_wired_host(sim: Simulator, segment: LanSegment, name: str, ip: str,
                    *, netmask: str = "255.255.255.0",
                    promiscuous: bool = False) -> Host:
    """A host with one wired interface on ``segment``."""
    host = Host(sim, name)
    mac = MacAddress.random(sim.rng.substream(f"mac.{name}"))
    iface = WiredInterface("eth0", mac, promiscuous=promiscuous)
    iface.attach_segment(segment)
    host.add_interface(iface)
    iface.configure_ip(ip, netmask)
    return host


@pytest.fixture
def wired_pair(sim):
    """Two hosts on one switch: (sim, host_a, host_b)."""
    lan = Switch(sim, "lan")
    a = make_wired_host(sim, lan, "alpha", "10.0.0.1")
    b = make_wired_host(sim, lan, "beta", "10.0.0.2")
    return sim, a, b


@pytest.fixture
def hub_trio(sim):
    """Three hosts on a hub (the sniffable wired case)."""
    lan = Hub(sim, "hub")
    a = make_wired_host(sim, lan, "alpha", "10.0.0.1")
    b = make_wired_host(sim, lan, "beta", "10.0.0.2")
    c = make_wired_host(sim, lan, "eve", "10.0.0.3", promiscuous=True)
    return sim, a, b, c
