"""Information elements and the monitor-mode capture container."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dot11.capture import CapturedFrame, FrameCapture
from repro.dot11.frames import FrameSubtype, make_beacon, make_data
from repro.dot11.ies import (
    IeId,
    InformationElement,
    challenge_ie,
    ds_param_ie,
    find_ie,
    pack_ies,
    parse_ies,
    rates_ie,
    ssid_ie,
)
from repro.dot11.mac import MacAddress
from repro.sim.errors import ProtocolError

AP1 = MacAddress("aa:bb:cc:dd:00:01")
AP2 = MacAddress("aa:bb:cc:dd:00:02")
STA = MacAddress("00:02:2d:00:00:07")


def test_ie_pack_parse_roundtrip():
    ies = [ssid_ie("CORP"), rates_ie(), ds_param_ie(6)]
    parsed = parse_ies(pack_ies(ies))
    assert parsed == ies


def test_find_ie():
    ies = [ssid_ie("NET"), ds_param_ie(3)]
    assert find_ie(ies, IeId.SSID).data == b"NET"
    assert find_ie(ies, IeId.CHALLENGE_TEXT) is None


def test_ssid_length_limit():
    with pytest.raises(ProtocolError):
        ssid_ie("x" * 33)
    assert ssid_ie("x" * 32).data == b"x" * 32


def test_ds_param_validation():
    with pytest.raises(ProtocolError):
        ds_param_ie(0)
    with pytest.raises(ProtocolError):
        ds_param_ie(15)


def test_challenge_ie():
    assert challenge_ie(b"C" * 128).element_id == IeId.CHALLENGE_TEXT


def test_truncated_ies_rejected():
    good = pack_ies([ssid_ie("NET")])
    with pytest.raises(ProtocolError):
        parse_ies(good[:-1])
    with pytest.raises(ProtocolError):
        parse_ies(b"\x00")


def test_ie_data_length_limit():
    with pytest.raises(ProtocolError):
        InformationElement(0, b"x" * 256)


@given(st.lists(
    st.tuples(st.integers(0, 255), st.binary(max_size=40)), max_size=8))
def test_ies_roundtrip_property(pairs):
    ies = [InformationElement(eid, data) for eid, data in pairs]
    assert parse_ies(pack_ies(ies)) == ies


# ----------------------------------------------------------------------
# capture
# ----------------------------------------------------------------------

def _cap(frame, t=0.0, ch=1, rssi=-50.0):
    return CapturedFrame(time=t, channel=ch, rssi_dbm=rssi, frame=frame)


def test_capture_filters():
    cap = FrameCapture()
    cap.add(_cap(make_beacon(AP1, "CORP", 1), t=1.0, ch=1))
    cap.add(_cap(make_beacon(AP2, "CORP", 6), t=2.0, ch=6))
    cap.add(_cap(make_data(STA, AP1, AP1, b"x", to_ds=True), t=3.0))
    assert cap.count(subtype=FrameSubtype.BEACON) == 2
    assert cap.count(subtype=FrameSubtype.BEACON, bssid=AP1) == 1
    assert cap.count(transmitter=STA) == 1
    assert cap.count(since=2.5) == 1
    assert len(cap) == 3


def test_capture_transmitters():
    cap = FrameCapture()
    cap.add(_cap(make_beacon(AP1, "CORP", 1)))
    cap.add(_cap(make_data(STA, AP1, AP1, b"x", to_ds=True)))
    assert cap.transmitters() == {AP1, STA}


def test_ssids_advertised_detects_two_bssids_one_ssid():
    cap = FrameCapture()
    cap.add(_cap(make_beacon(AP1, "CORP", 1)))
    cap.add(_cap(make_beacon(AP2, "CORP", 6)))
    advertised = cap.ssids_advertised()
    assert advertised["CORP"] == {AP1, AP2}


def test_ssids_advertised_blind_to_cloned_bssid():
    """Fig. 1's rogue clones the BSSID: SSID-level survey sees ONE AP."""
    cap = FrameCapture()
    cap.add(_cap(make_beacon(AP1, "CORP", 1), ch=1))
    cap.add(_cap(make_beacon(AP1, "CORP", 6), ch=6))  # the rogue
    assert cap.ssids_advertised()["CORP"] == {AP1}


def test_capture_tap():
    cap = FrameCapture()
    seen = []
    remove = cap.tap(seen.append)
    cap.add(_cap(make_beacon(AP1, "X", 1)))
    assert len(seen) == 1
    remove()
    cap.add(_cap(make_beacon(AP1, "X", 1)))
    assert len(seen) == 1


def test_capture_capacity():
    cap = FrameCapture(capacity=10)
    for i in range(30):
        cap.add(_cap(make_beacon(AP1, "X", 1), t=float(i)))
    assert len(cap) <= 10
    assert cap.frames[-1].time == 29.0


@pytest.mark.parametrize("capacity", [1, 2, 3, 10, 100])
def test_capture_capacity_invariant_holds_after_every_add(capacity):
    """Regression: capacity=1 used to evict nothing (the batched drop
    was ``capacity // 2 = 0`` frames), so a "keep only the newest
    frame" capture grew without bound."""
    cap = FrameCapture(capacity=capacity)
    for i in range(5 * capacity + 7):
        cap.add(_cap(make_beacon(AP1, "X", 1), t=float(i)))
        assert len(cap) <= capacity
    # the newest frame always survives eviction
    assert cap.frames[-1].time == float(5 * capacity + 6)


def test_capture_unbounded_by_default():
    cap = FrameCapture()
    for i in range(300):
        cap.add(_cap(make_beacon(AP1, "X", 1), t=float(i)))
    assert len(cap) == 300
