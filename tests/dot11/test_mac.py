"""MacAddress semantics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dot11.mac import BROADCAST, MacAddress
from repro.sim.rng import SimRandom


def test_parse_string_forms():
    a = MacAddress("aa:bb:cc:dd:ee:ff")
    assert a.bytes == bytes.fromhex("aabbccddeeff")
    assert MacAddress("AA-BB-CC-DD-EE-FF") == a
    assert str(a) == "aa:bb:cc:dd:ee:ff"


def test_parse_rejects_malformed():
    for bad in ("aa:bb:cc", "aa:bb:cc:dd:ee:ff:00", "xx:bb:cc:dd:ee:ff", ""):
        with pytest.raises(ValueError):
            MacAddress(bad)
    with pytest.raises(ValueError):
        MacAddress(b"\x00" * 5)
    with pytest.raises(TypeError):
        MacAddress(12345)


def test_broadcast_and_multicast_bits():
    assert BROADCAST.is_broadcast and BROADCAST.is_multicast
    assert MacAddress("01:00:5e:00:00:01").is_multicast
    assert not MacAddress("00:02:2d:00:00:01").is_multicast


def test_locally_administered_bit():
    assert MacAddress("02:00:00:00:00:01").is_locally_administered
    assert not MacAddress("00:02:2d:00:00:01").is_locally_administered


def test_equality_hash_and_bytes_comparison():
    a = MacAddress("aa:bb:cc:dd:ee:ff")
    b = MacAddress(bytes.fromhex("aabbccddeeff"))
    assert a == b and hash(a) == hash(b)
    assert a == bytes.fromhex("aabbccddeeff")
    assert a != MacAddress("aa:bb:cc:dd:ee:fe")
    assert len({a, b}) == 1


def test_ordering():
    lo = MacAddress("00:00:00:00:00:01")
    hi = MacAddress("ff:00:00:00:00:00")
    assert lo < hi
    assert sorted([hi, lo]) == [lo, hi]


def test_immutability():
    a = MacAddress("aa:bb:cc:dd:ee:ff")
    with pytest.raises(AttributeError):
        a._bytes = b"\x00" * 6


def test_random_uses_oui():
    rng = SimRandom(7)
    a = MacAddress.random(rng)
    assert a.oui == b"\x00\x02\x2d"
    b = MacAddress.random(rng, oui=b"\x00\x11\x22")
    assert b.oui == b"\x00\x11\x22"
    with pytest.raises(ValueError):
        MacAddress.random(rng, oui=b"\x00")


@given(st.binary(min_size=6, max_size=6))
def test_roundtrip_via_string(raw):
    a = MacAddress(raw)
    assert MacAddress(str(a)) == a


def test_copy_constructor():
    a = MacAddress("aa:bb:cc:dd:ee:ff")
    assert MacAddress(a) == a
