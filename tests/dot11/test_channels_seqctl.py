"""Channelization and sequence-control counters."""

import pytest

from repro.dot11.channels import (
    CHANNELS_11B,
    channel_center_mhz,
    channel_rejection_db,
    channels_overlap,
)
from repro.dot11.seqctl import SEQ_MODULO, SequenceCounter


def test_channel_frequencies():
    assert channel_center_mhz(1) == 2412
    assert channel_center_mhz(6) == 2437
    assert channel_center_mhz(11) == 2462
    assert channel_center_mhz(14) == 2484


def test_invalid_channel():
    with pytest.raises(ValueError):
        channel_center_mhz(0)
    with pytest.raises(ValueError):
        channel_center_mhz(15)


def test_classic_nonoverlapping_plan():
    """1/6/11 are the famous mutually clear channels."""
    assert not channels_overlap(1, 6)
    assert not channels_overlap(6, 11)
    assert not channels_overlap(1, 11)


def test_adjacent_channels_overlap():
    assert channels_overlap(1, 1)
    assert channels_overlap(1, 2)
    assert channels_overlap(1, 4)
    assert channels_overlap(1, 5)      # 20 MHz apart: marginal overlap
    assert not channels_overlap(1, 6)  # exactly 25 MHz apart


def test_rejection_monotone_in_separation():
    assert channel_rejection_db(6, 6) == 0.0
    r1 = channel_rejection_db(6, 7)
    r2 = channel_rejection_db(6, 8)
    r3 = channel_rejection_db(6, 9)
    assert 0 < r1 < r2 < r3
    assert channel_rejection_db(1, 6) == float("inf")


def test_rejection_symmetric():
    assert channel_rejection_db(3, 5) == channel_rejection_db(5, 3)


def test_fig1_channel_plan_is_clean():
    """The paper's rogue (ch 6) does not interfere with its own
    upstream client on the legit AP's ch 1."""
    assert not channels_overlap(1, 6)


def test_channels_list():
    assert CHANNELS_11B == tuple(range(1, 12))


# ----------------------------------------------------------------------
# sequence control
# ----------------------------------------------------------------------

def test_sequence_counter_increments_and_wraps():
    c = SequenceCounter(start=4094)
    assert c.next() == 4094
    assert c.next() == 4095
    assert c.next() == 0
    assert c.peek() == 1


def test_gap_semantics():
    assert SequenceCounter.gap(10, 11) == 1
    assert SequenceCounter.gap(10, 10) == 0
    assert SequenceCounter.gap(4095, 0) == 1      # wrap is a small gap
    assert SequenceCounter.gap(0, 4095) == 4095   # backward jump is huge
    assert SequenceCounter.gap(100, 50) == SEQ_MODULO - 50


def test_healthy_stream_gaps_are_one():
    c = SequenceCounter(start=77)
    seqs = [c.next() for _ in range(100)]
    gaps = [SequenceCounter.gap(a, b) for a, b in zip(seqs, seqs[1:])]
    assert all(g == 1 for g in gaps)
