"""Cross-layer property: WEP-protected frames survive air serialization."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.wep import WepKey, wep_decrypt, wep_encrypt
from repro.dot11.frames import Dot11Frame, make_data
from repro.dot11.mac import MacAddress
from repro.netstack.ethernet import llc_decap, llc_encap

AP = MacAddress("aa:bb:cc:dd:00:01")
STA = MacAddress("00:02:2d:00:00:07")
KEY = WepKey.from_passphrase("SECRET")


@settings(max_examples=50, deadline=None)
@given(
    payload=st.binary(max_size=400),
    ethertype=st.sampled_from([0x0800, 0x0806, 0x888E]),
    iv=st.binary(min_size=3, max_size=3),
    seq=st.integers(0, 4095),
)
def test_full_data_frame_pipeline_roundtrip(payload, ethertype, iv, seq):
    """encap(LLC) → WEP → frame → bytes → frame → WEP⁻¹ → decap(LLC)
    is the identity — the exact pipeline every protected data frame
    takes through the simulator."""
    body = wep_encrypt(KEY, iv, llc_encap(ethertype, payload))
    frame = make_data(STA, AP, AP, body, to_ds=True, protected=True, seq=seq)
    parsed = Dot11Frame.from_bytes(frame.to_bytes())
    assert parsed.protected and parsed.seq == seq
    decrypted = wep_decrypt(KEY, parsed.body)
    got_ethertype, got_payload = llc_decap(decrypted)
    assert got_ethertype == ethertype
    assert got_payload == payload


@settings(max_examples=30, deadline=None)
@given(payload=st.binary(min_size=1, max_size=200),
       iv=st.binary(min_size=3, max_size=3))
def test_ciphertext_differs_from_plaintext_on_air(payload, iv):
    """The on-air body never contains the LLC payload verbatim
    (beyond chance for very short strings)."""
    plain_body = llc_encap(0x0800, payload)
    cipher_body = wep_encrypt(KEY, iv, plain_body)
    if len(payload) >= 4:
        assert payload not in cipher_body[4:]  # beyond the cleartext IV hdr
