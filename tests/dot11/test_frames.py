"""802.11 frame serialization, parsing, and body decoders."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dot11.frames import (
    CAP_PRIVACY,
    AuthAlgorithm,
    Dot11Frame,
    FrameSubtype,
    FrameType,
    ReasonCode,
    StatusCode,
    make_assoc_request,
    make_assoc_response,
    make_auth,
    make_beacon,
    make_data,
    make_deauth,
    make_disassoc,
    make_probe_request,
    make_probe_response,
)
from repro.dot11.mac import BROADCAST, MacAddress
from repro.sim.errors import ProtocolError

AP = MacAddress("aa:bb:cc:dd:00:01")
STA = MacAddress("00:02:2d:11:22:33")


def _roundtrip(frame: Dot11Frame) -> Dot11Frame:
    return Dot11Frame.from_bytes(frame.to_bytes())


def test_beacon_roundtrip_and_parse():
    beacon = make_beacon(AP, "CORP", 6, privacy=True, timestamp=12345, seq=42)
    parsed = _roundtrip(beacon)
    assert parsed.subtype is FrameSubtype.BEACON
    assert parsed.seq == 42
    info = parsed.parse_beacon()
    assert info.ssid == "CORP"
    assert info.channel == 6
    assert info.privacy is True
    assert info.timestamp == 12345
    assert info.bssid == AP
    assert parsed.addr1.is_broadcast


def test_beacon_without_privacy():
    info = _roundtrip(make_beacon(AP, "open-net", 1)).parse_beacon()
    assert info.privacy is False
    assert not info.capability & CAP_PRIVACY


def test_probe_request_response():
    req = _roundtrip(make_probe_request(STA, "CORP"))
    assert req.subtype is FrameSubtype.PROBE_REQ
    resp = _roundtrip(make_probe_response(AP, STA, "CORP", 1, privacy=True))
    assert resp.subtype is FrameSubtype.PROBE_RESP
    info = resp.parse_beacon()  # probe responses share the beacon layout
    assert info.ssid == "CORP" and info.privacy


def test_auth_frames():
    open_auth = _roundtrip(make_auth(STA, AP, AP, txn=1))
    alg, txn, status, challenge = open_auth.parse_auth()
    assert alg == AuthAlgorithm.OPEN_SYSTEM and txn == 1
    assert status == StatusCode.SUCCESS and challenge is None

    shared = _roundtrip(make_auth(AP, STA, AP, algorithm=AuthAlgorithm.SHARED_KEY,
                                  txn=2, challenge=b"C" * 128))
    alg, txn, status, challenge = shared.parse_auth()
    assert alg == AuthAlgorithm.SHARED_KEY and txn == 2
    assert challenge == b"C" * 128


def test_assoc_frames():
    req = _roundtrip(make_assoc_request(STA, AP, "CORP", privacy=True))
    capability, ssid = req.parse_assoc_request()
    assert ssid == "CORP" and capability & CAP_PRIVACY

    resp = _roundtrip(make_assoc_response(AP, STA, status=StatusCode.SUCCESS, aid=5))
    cap, status, aid = resp.parse_assoc_response()
    assert status == StatusCode.SUCCESS
    assert aid & 0x3FFF == 5


def test_deauth_disassoc_reason():
    d = _roundtrip(make_deauth(AP, STA, AP, reason=ReasonCode.PREV_AUTH_EXPIRED))
    assert d.parse_reason() == ReasonCode.PREV_AUTH_EXPIRED
    d2 = _roundtrip(make_disassoc(AP, STA, AP, reason=ReasonCode.INACTIVITY))
    assert d2.parse_reason() == ReasonCode.INACTIVITY


def test_data_frame_address_mapping_to_ds():
    dst = MacAddress("00:00:00:00:00:99")
    f = make_data(STA, dst, AP, b"payload", to_ds=True)
    assert f.addr1 == AP        # receiver: the AP
    assert f.addr2 == STA       # transmitter: the station
    assert f.addr3 == dst       # final destination
    assert f.destination == dst
    assert f.source == STA


def test_data_frame_address_mapping_from_ds():
    src = MacAddress("00:00:00:00:00:99")
    f = make_data(src, STA, AP, b"payload", from_ds=True)
    assert f.addr1 == STA       # receiver: the station
    assert f.addr2 == AP        # transmitter: the AP
    assert f.addr3 == src       # original source
    assert f.destination == STA
    assert f.source == src


def test_fcs_detects_corruption():
    raw = bytearray(make_beacon(AP, "CORP", 1).to_bytes())
    raw[10] ^= 0x40
    with pytest.raises(ProtocolError):
        Dot11Frame.from_bytes(bytes(raw))


def test_flags_roundtrip():
    f = make_data(STA, AP, AP, b"x", to_ds=True, protected=True)
    f.retry = True
    parsed = _roundtrip(f)
    assert parsed.to_ds and parsed.protected and parsed.retry
    assert not parsed.from_ds


def test_short_frame_rejected():
    with pytest.raises(ProtocolError):
        Dot11Frame.from_bytes(b"\x00" * 10)


def test_frame_type_mapping():
    assert FrameSubtype.BEACON.frame_type is FrameType.MANAGEMENT
    assert FrameSubtype.DATA.frame_type is FrameType.DATA
    assert FrameSubtype.ACK.frame_type is FrameType.CONTROL


@given(
    st.sampled_from([FrameSubtype.BEACON, FrameSubtype.DATA, FrameSubtype.AUTH,
                     FrameSubtype.DEAUTH, FrameSubtype.PROBE_REQ]),
    st.integers(min_value=0, max_value=4095),
    st.binary(max_size=200),
)
def test_serialization_roundtrip_property(subtype, seq, body):
    frame = Dot11Frame(subtype=subtype, addr1=STA, addr2=AP, addr3=AP,
                       body=body, seq=seq)
    parsed = _roundtrip(frame)
    assert parsed.subtype == subtype
    assert parsed.seq == seq
    assert parsed.body == body
    assert parsed.addr1 == STA and parsed.addr2 == AP


def test_rogue_beacon_is_byte_identical_to_legit():
    """The paper's core structural point: a rogue can clone a beacon
    exactly — nothing in the frame authenticates the network."""
    legit = make_beacon(AP, "CORP", 6, privacy=True, timestamp=777, seq=9)
    rogue = make_beacon(AP, "CORP", 6, privacy=True, timestamp=777, seq=9)
    assert legit.to_bytes() == rogue.to_bytes()
