"""Passive attacks: sniffing, Airsnort WEP cracking, MAC harvesting."""

import pytest

from repro.attacks.airsnort import AirsnortAttack
from repro.attacks.mac_spoof import observe_client_macs, spoof_mac
from repro.attacks.sniffer import MonitorSniffer
from repro.core.scenario import build_corp_scenario
from repro.crypto.wep import WepKey
from repro.netstack.ethernet import ETHERTYPE_IPV4
from repro.radio.propagation import Position
from repro.workloads.traffic import WepTrafficPump


class _WeakIvSweep:
    """An IV source cycling through the FMS-weak classes.

    Time compression for the radio-level Airsnort test: a sequential
    card sweeps the whole 24-bit IV space and hits a weak IV every
    ~65k frames; capturing the ~500k frames that supplies takes hours
    on the air and minutes of simulation.  Airsnort discards the
    non-weak frames anyway, so the test generates only the frames the
    attack would have kept.  (The IV *sweep behaviour* itself is unit-
    tested in tests/crypto/test_wep.py; the packets-needed economics
    are measured by the E-FMS benchmark at the crypto layer.)
    """

    def __init__(self, key_length: int = 5) -> None:
        self.key_length = key_length
        self._n = 0

    def next_iv(self) -> bytes:
        from repro.crypto.fms import weak_iv_for
        a = self._n % self.key_length
        x = (self._n // self.key_length) % 256
        self._n += 1
        return weak_iv_for(a, x)


@pytest.fixture(scope="module")
def sniffed_world():
    """A corp WLAN with a victim generating WEP traffic and a sniffer."""
    scenario = build_corp_scenario(seed=31, with_rogue=False)
    sniffer = MonitorSniffer(scenario.sim, scenario.medium, Position(20.0, 5.0))
    victim = scenario.add_victim()
    scenario.sim.run_for(5.0)
    victim.wlan.iv_gen = _WeakIvSweep()
    pump = WepTrafficPump(victim, "10.0.0.1", rate_pps=400.0)
    pump.start()
    scenario.sim.run_for(20.0)
    pump.stop()
    return scenario, sniffer, victim


def test_sniffer_sees_protected_frames(sniffed_world):
    scenario, sniffer, victim = sniffed_world
    from repro.dot11.frames import FrameSubtype
    protected = sniffer.capture.count(subtype=FrameSubtype.DATA, protected=True)
    assert protected > 1000


def test_sniffer_cannot_read_without_key(sniffed_world):
    """WEP does hide payload bytes from a keyless bystander..."""
    scenario, sniffer, victim = sniffed_world
    wrong = WepKey(b"WRONG")
    decrypted = list(sniffer.decrypted_payloads(wrong))
    assert decrypted == []


def test_sniffer_reads_everything_with_key(sniffed_world):
    """...but any valid client (same shared key) reads everyone (§1.1)."""
    scenario, sniffer, victim = sniffed_world
    payloads = list(sniffer.decrypted_payloads(scenario.wep))
    assert len(payloads) > 1000
    ip_payloads = [p for _, et, p in payloads if et == ETHERTYPE_IPV4]
    assert any(b"background traffic" in p for p in ip_payloads)


def test_fms_samples_extracted(sniffed_world):
    scenario, sniffer, victim = sniffed_world
    samples = list(sniffer.fms_samples())
    assert len(samples) > 1000
    iv, ks0 = samples[0]
    assert len(iv) == 3 and 0 <= ks0 <= 255


def test_airsnort_recovers_wep_key(sniffed_world):
    """§4: 'an outside attacker who has retrieved the WEP key via
    Airsnort' — end-to-end over the air, from the captured weak-IV
    frames to the verified root key."""
    scenario, sniffer, victim = sniffed_world
    attack = AirsnortAttack(sniffer, key_length=5)
    fed = attack.ingest()
    assert fed > 1000
    cracked = attack.crack()
    tries = 0
    pump = WepTrafficPump(victim, "10.0.0.1", rate_pps=400.0)
    pump.start()
    while cracked is None and tries < 6:
        scenario.sim.run_for(20.0)
        cracked = attack.crack()
        tries += 1
    pump.stop()
    assert cracked is not None
    assert cracked.key == scenario.wep.key


def test_observe_client_macs_harvests_valid_stations(sniffed_world):
    scenario, sniffer, victim = sniffed_world
    macs = observe_client_macs(sniffer, bssid=scenario.ap.bssid)
    assert victim.wlan.mac in macs


def test_spoof_mac_changes_identity():
    scenario = build_corp_scenario(seed=32, with_rogue=False)
    from repro.hosts.station import Station
    attacker = Station(scenario.sim, "attacker", scenario.medium, Position(15, 0))
    stolen = scenario.sim.rng.substream("victim-mac")
    from repro.dot11.mac import MacAddress
    target_mac = MacAddress("00:02:2d:77:88:99")
    original = spoof_mac(attacker.wlan, target_mac)
    assert attacker.wlan.mac == target_mac
    assert original != target_mac
