"""Hostile hotspot (§1.3.2/§5.1) and trojan packaging."""

import pytest

from repro.attacks.trojan import build_trojan_site, trojanize
from repro.core.scenario import build_hotspot_scenario
from repro.crypto.md5 import md5_hexdigest
from repro.httpsim.downloads import LEGIT_MAGIC, TROJAN_MAGIC, is_trojaned, make_binary
from repro.sim.rng import SimRandom


# ----------------------------------------------------------------------
# trojan
# ----------------------------------------------------------------------

def test_trojanize_swaps_provenance_header():
    binary = make_binary("tool", 512, SimRandom(1))
    trojan = trojanize(binary)
    assert is_trojaned(trojan)
    assert not is_trojaned(binary)
    # The functional payload is preserved (the trojan still "works").
    assert trojan[len(TROJAN_MAGIC):] == binary[len(LEGIT_MAGIC):]


def test_trojan_md5_differs():
    """Different bytes → different MD5 — the reason the paper's attack
    must rewrite the published digest too."""
    binary = make_binary("tool", 512, SimRandom(2))
    assert md5_hexdigest(binary) != md5_hexdigest(trojanize(binary))


def test_trojanize_arbitrary_blob():
    assert is_trojaned(trojanize(b"not-a-binary"))


def test_build_trojan_site_serves_trojan():
    binary = make_binary("tool", 512, SimRandom(3))
    site, trojan, path = build_trojan_site(binary)
    from repro.httpsim.messages import HttpRequest
    served = site.handle(HttpRequest("GET", path))
    assert served.status == 200
    assert served.body == trojan


# ----------------------------------------------------------------------
# hostile hotspot
# ----------------------------------------------------------------------

def test_visitor_gets_full_config_from_hotspot():
    world = build_hotspot_scenario(seed=61, hostile=True)
    station, browser = world.add_visitor()
    assert station.wlan.associated
    assert station.wlan.ip is not None
    assert browser.client.resolver is not None


def test_hostile_hotspot_injects_exploit():
    world = build_hotspot_scenario(seed=62, hostile=True)
    station, browser = world.add_visitor(patched=False)
    visit = browser.visit("http://news.example.com/index.html")
    world.sim.run_for(40.0)
    assert visit.status == 200
    assert visit.exploit_executed
    assert browser.compromised
    assert world.hotspot.tampered_segments >= 1


def test_honest_hotspot_harmless():
    world = build_hotspot_scenario(seed=63, hostile=False)
    station, browser = world.add_visitor(patched=False)
    visit = browser.visit("http://news.example.com/index.html")
    world.sim.run_for(40.0)
    assert visit.status == 200
    assert not visit.exploit_executed
    assert b"renderWeatherWidget" in visit.script


def test_patched_client_survives_hostile_hotspot():
    """§5.1's caveat inverted: the exploit is injected either way, but
    an up-to-date client shrugs it off."""
    world = build_hotspot_scenario(seed=64, hostile=True)
    station, browser = world.add_visitor(patched=True)
    visit = browser.visit("http://news.example.com/index.html")
    world.sim.run_for(40.0)
    assert world.hotspot.tampered_segments >= 1  # tampering happened
    assert not browser.compromised               # but didn't land


def test_tamper_preserves_stream_offsets():
    """In-path rewriting must not change segment lengths, or the
    victim's TCP would desynchronize; the injected script is padded."""
    world = build_hotspot_scenario(seed=65, hostile=True)
    station, browser = world.add_visitor()
    results = []
    browser.client.get("http://news.example.com/index.html", results.append)
    world.sim.run_for(40.0)
    assert results and results[0] is not None
    tampered_body = results[0].body
    # Same length as the honest page (padding preserved it).
    honest = build_hotspot_scenario(seed=65, hostile=False)
    station2, browser2 = honest.add_visitor()
    results2 = []
    browser2.client.get("http://news.example.com/index.html", results2.append)
    honest.sim.run_for(40.0)
    assert len(tampered_body) == len(results2[0].body)
