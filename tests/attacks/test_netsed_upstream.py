"""netsed's request-direction rewriting and remaining edge paths."""

import pytest

from repro.attacks.netsed import NetsedProxy, NetsedRule, StreamingRewriter
from repro.httpsim.content import Website
from repro.httpsim.messages import HttpResponse
from repro.httpsim.server import HttpServer
from repro.netstack.ethernet import Switch
from repro.sim.kernel import Simulator
from tests.conftest import make_wired_host


def test_rewrite_upstream_modifies_requests():
    """netsed applies rules in both directions when asked — e.g. to
    redirect which *path* the victim requests."""
    sim = Simulator(seed=61)
    lan = Switch(sim, "lan")
    client = make_wired_host(sim, lan, "client", "10.0.0.1")
    gateway = make_wired_host(sim, lan, "gw", "10.0.0.2")
    server = make_wired_host(sim, lan, "server", "10.0.0.3")
    site = Website()
    site.add_page("/real", b"REAL PAGE", "text/plain")
    site.add_page("/evil", b"EVIL PAGE", "text/plain")
    srv = HttpServer(server, site, 80)
    # Note: the s/old/new string syntax cannot carry '/' inside a
    # pattern (the paper escapes with %2f for the same reason); pass a
    # structured rule instead.
    proxy = NetsedProxy(gateway, 10101, "10.0.0.3", 80,
                        [NetsedRule(b"GET /real", b"GET /evil")],
                        rewrite_upstream=True)
    chunks = []
    conn = client.tcp_connect("10.0.0.2", 10101)
    conn.on_data = chunks.append
    conn.on_established = lambda: conn.send(
        b"GET /real HTTP/1.0\r\nHost: server\r\n\r\n")
    sim.run_for(20.0)
    body = b"".join(chunks)
    assert b"EVIL PAGE" in body
    assert srv.request_log[0].path == "/evil"  # the request was rewritten
    assert proxy.total_replacements >= 1


def test_streaming_rewriter_no_rules_identity():
    rw = StreamingRewriter([])
    out = rw.process(b"abc") + rw.process(b"def") + rw.flush()
    assert out == b"abcdef"


def test_streaming_rewriter_overlapping_occurrences():
    rw = StreamingRewriter([NetsedRule(b"aa", b"XX")])
    out = rw.process(b"aaaa") + rw.flush()
    assert out == b"XXXX"
    assert rw.replacements == 2


def test_netsed_rule_equal_length_replacement_stream_safe():
    """The paper's actual rules replace MD5 hex with MD5 hex — equal
    length — which keeps even Content-Length-framed pages intact."""
    rule = NetsedRule(b"a" * 32, b"b" * 32)
    out, hits = rule.apply(b"prefix " + b"a" * 32 + b" suffix")
    assert hits == 1
    assert len(out) == len(b"prefix " + b"a" * 32 + b" suffix")
