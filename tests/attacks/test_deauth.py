"""Deauthentication forcing: the §4 victim-capture mechanism."""

import pytest

from repro.attacks.deauth import DeauthAttacker
from repro.core.scenario import build_corp_scenario
from repro.radio.propagation import Position


def test_deauth_disconnects_victim():
    scenario = build_corp_scenario(seed=41, with_rogue=False)
    victim = scenario.add_victim(position=Position(5.0, 0.0))
    scenario.sim.run_for(5.0)
    assert victim.wlan.associated
    attacker = DeauthAttacker(
        scenario.sim, scenario.medium, Position(8.0, 0.0),
        ap_bssid=scenario.ap.bssid, channel=1,
        target=victim.wlan.mac, rate_hz=20.0)
    attacker.start()
    scenario.sim.run_for(2.0)
    attacker.stop()
    assert victim.wlan.deauths_received > 0
    assert attacker.frames_injected > 10


def test_sustained_deauth_drives_victim_to_rogue():
    """§4: force disassociation 'until the client associates with the
    Rogue AP'.  The victim sits closer to the legit AP, so without the
    attack it stays there; the deauth storm's selection penalties
    eventually push it to the rogue."""
    scenario = build_corp_scenario(seed=42, rogue_position=Position(20.0, 0.0))
    victim = scenario.add_victim(position=Position(6.0, 0.0))
    scenario.sim.run_for(5.0)
    assert victim.associated_channel == 1  # prefers the legit AP

    attacker = DeauthAttacker(
        scenario.sim, scenario.medium, Position(6.0, 2.0),
        ap_bssid=scenario.ap.bssid, channel=1,
        target=victim.wlan.mac, rate_hz=20.0)
    attacker.start()
    captured_at = None
    for _ in range(120):
        scenario.sim.run_for(1.0)
        if victim.associated_channel == 6:
            captured_at = scenario.sim.now
            break
    attacker.stop()
    assert captured_at is not None, "victim never fell onto the rogue"
    assert victim.wlan.mac in scenario.rogue.captured_clients()


def test_broadcast_deauth_hits_all_clients():
    scenario = build_corp_scenario(seed=43, with_rogue=False)
    v1 = scenario.add_victim(position=Position(5.0, 0.0), ip="10.0.0.23", name="v1")
    v2 = scenario.add_victim(position=Position(-5.0, 0.0), ip="10.0.0.24", name="v2")
    scenario.sim.run_for(5.0)
    attacker = DeauthAttacker(
        scenario.sim, scenario.medium, Position(0.0, 5.0),
        ap_bssid=scenario.ap.bssid, channel=1,
        target=None, rate_hz=10.0)
    attacker.start()
    scenario.sim.run_for(2.0)
    attacker.stop()
    assert v1.wlan.deauths_received > 0
    assert v2.wlan.deauths_received > 0


def test_deauth_from_wrong_bssid_ignored():
    """The victim only obeys deauths naming its own BSS (the forgery
    works because the attacker *can* name it)."""
    from repro.dot11.mac import MacAddress
    scenario = build_corp_scenario(seed=44, with_rogue=False)
    victim = scenario.add_victim(position=Position(5.0, 0.0))
    scenario.sim.run_for(5.0)
    attacker = DeauthAttacker(
        scenario.sim, scenario.medium, Position(8.0, 0.0),
        ap_bssid=MacAddress("de:ad:be:ef:00:00"),  # not the victim's BSS
        channel=1, target=victim.wlan.mac, rate_hz=20.0)
    attacker.start()
    scenario.sim.run_for(2.0)
    attacker.stop()
    assert victim.wlan.deauths_received == 0
    assert victim.wlan.associated


def test_deauth_rate_controls_injection_count():
    scenario = build_corp_scenario(seed=45, with_rogue=False)
    slow = DeauthAttacker(scenario.sim, scenario.medium, Position(0, 0),
                          ap_bssid=scenario.ap.bssid, channel=1, rate_hz=2.0,
                          name="slow")
    fast = DeauthAttacker(scenario.sim, scenario.medium, Position(0, 1),
                          ap_bssid=scenario.ap.bssid, channel=1, rate_hz=20.0,
                          name="fast")
    slow.start()
    fast.start()
    scenario.sim.run_for(5.0)
    slow.stop()
    fast.stop()
    assert fast.frames_injected > 4 * slow.frames_injected


def test_custom_reason_code_carried_on_the_wire():
    """aireplay-ng lets the operator pick the reason code; forged
    frames must carry it verbatim so detectors can fingerprint it."""
    import struct

    from repro.attacks.sniffer import MonitorSniffer
    from repro.dot11.frames import FrameSubtype, ReasonCode

    scenario = build_corp_scenario(seed=46, with_rogue=False)
    victim = scenario.add_victim(position=Position(5.0, 0.0))
    scenario.sim.run_for(5.0)
    sniffer = MonitorSniffer(scenario.sim, scenario.medium, Position(0, 3),
                             channel=1)
    attacker = DeauthAttacker(
        scenario.sim, scenario.medium, Position(8.0, 0.0),
        ap_bssid=scenario.ap.bssid, channel=1,
        target=victim.wlan.mac, rate_hz=10.0,
        reason=ReasonCode.CLASS3_FROM_NONASSOC)
    attacker.start()
    scenario.sim.run_for(2.0)
    attacker.stop()
    reasons = {struct.unpack("<H", bytes(cap.frame.body[:2]))[0]
               for cap in sniffer.capture.select(subtype=FrameSubtype.DEAUTH)}
    assert reasons == {int(ReasonCode.CLASS3_FROM_NONASSOC)}


@pytest.mark.parametrize("bad_reason", [0, -1, 0x10000])
def test_out_of_range_reason_code_rejected(bad_reason):
    scenario = build_corp_scenario(seed=47, with_rogue=False)
    with pytest.raises(ValueError):
        DeauthAttacker(scenario.sim, scenario.medium, Position(0, 0),
                       ap_bssid=scenario.ap.bssid, channel=1,
                       reason=bad_reason)
