"""netsed: rule parsing, rewriters, and the packet-boundary limitation."""

import pytest

from repro.attacks.netsed import (
    NetsedProxy,
    NetsedRule,
    StreamingRewriter,
    _PerSegmentRewriter,
    parse_rule,
)
from repro.httpsim.content import Website
from repro.httpsim.messages import HttpResponse
from repro.httpsim.server import HttpServer
from repro.netstack.ethernet import Switch
from repro.sim.errors import ConfigurationError
from repro.sim.kernel import Simulator
from tests.conftest import make_wired_host


def test_parse_rule_paper_syntax():
    rule = parse_rule("s/href=file.tgz/href=http:%2f%2fevil%2ffile.tgz/")
    assert rule.old == b"href=file.tgz"
    assert rule.new == b"href=http:%2f%2fevil%2ffile.tgz"


def test_parse_rule_rejects_garbage():
    for bad in ("x/y/z", "s/", "s//new", "plain"):
        with pytest.raises(ConfigurationError):
            parse_rule(bad)


def test_rule_apply_counts():
    rule = NetsedRule(b"aa", b"XY")
    out, hits = rule.apply(b"aa bb aa cc aa")
    assert out == b"XY bb XY cc XY"
    assert hits == 3
    out, hits = rule.apply(b"nothing here")
    assert hits == 0


def test_per_segment_rewriter_misses_split_pattern():
    """The §4.2 limitation, at unit level."""
    rw = _PerSegmentRewriter([NetsedRule(b"SECRET", b"XXXXXX")])
    out = rw.process(b"...SEC") + rw.process(b"RET...")
    assert b"SECRET" in out          # the split match survived
    assert rw.replacements == 0


def test_per_segment_rewriter_hits_contained_pattern():
    rw = _PerSegmentRewriter([NetsedRule(b"SECRET", b"XXXXXX")])
    out = rw.process(b"..SECRET..")
    assert out == b"..XXXXXX.."
    assert rw.replacements == 1


def test_streaming_rewriter_catches_split_pattern():
    rw = StreamingRewriter([NetsedRule(b"SECRET", b"XXXXXX")])
    out = rw.process(b"...SEC") + rw.process(b"RET...") + rw.flush()
    assert b"SECRET" not in out
    assert b"XXXXXX" in out
    assert rw.replacements == 1


def test_streaming_rewriter_byte_by_byte():
    rw = StreamingRewriter([NetsedRule(b"abc", b"DEF")])
    data = b"xxabcyyabczz"
    out = b"".join(rw.process(bytes([b])) for b in data) + rw.flush()
    assert out == b"xxDEFyyDEFzz"
    assert rw.replacements == 2


def test_streaming_rewriter_flush_releases_tail():
    rw = StreamingRewriter([NetsedRule(b"LONGPATTERN", b"X")])
    out = rw.process(b"short")
    assert out == b""  # held back, shorter than pattern
    assert rw.flush() == b"short"


def _proxy_world(seed=1, *, streaming=False, rules=None,
                 response_body=b"the SECRET value", close_delimited=True):
    sim = Simulator(seed=seed)
    lan = Switch(sim, "lan")
    client = make_wired_host(sim, lan, "client", "10.0.0.1")
    gateway = make_wired_host(sim, lan, "gw", "10.0.0.2")
    server = make_wired_host(sim, lan, "server", "10.0.0.3")
    site = Website()
    site.add_page("/x", response_body, "text/plain",
                  use_content_length=not close_delimited)
    HttpServer(server, site, 80)
    proxy = NetsedProxy(gateway, 10101, "10.0.0.3", 80,
                        rules or ["s/SECRET/XXXXXX/"], streaming=streaming)
    return sim, client, gateway, server, proxy


def _fetch_via_proxy(sim, client, proxy_ip="10.0.0.2", port=10101):
    chunks = []
    done = []
    conn = client.tcp_connect(proxy_ip, port)
    conn.on_data = chunks.append
    conn.on_established = lambda: conn.send(
        b"GET /x HTTP/1.0\r\nHost: server\r\n\r\n")
    conn.on_close = lambda: done.append(1)
    sim.run_for(20.0)
    return b"".join(chunks)


def test_proxy_rewrites_response():
    sim, client, gw, server, proxy = _proxy_world()
    body = _fetch_via_proxy(sim, client)
    assert b"XXXXXX" in body
    assert b"SECRET" not in body
    assert proxy.connections_proxied == 1
    assert proxy.total_replacements == 1


def test_proxy_passes_nonmatching_traffic():
    sim, client, gw, server, proxy = _proxy_world(
        rules=["s/NOMATCH/YYY/"])
    body = _fetch_via_proxy(sim, client)
    assert b"the SECRET value" in body
    assert proxy.total_replacements == 0


def test_proxy_relays_request_upstream_untouched():
    sim, client, gw, server, proxy = _proxy_world()
    body = _fetch_via_proxy(sim, client)
    assert b"200 OK" in body  # the real server answered


def _shrink_server_mss(server, mss):
    """Make every connection the server accepts emit tiny segments."""
    orig_make = server._make_connection

    def small_mss(*args, **kwargs):
        kwargs["mss"] = mss
        return orig_make(*args, **kwargs)

    server._make_connection = small_mss


def test_proxy_per_segment_misses_boundary_spanning_match():
    """End-to-end §4.2: with the MSS smaller than the pattern, every
    occurrence straddles a segment boundary and per-segment netsed
    misses all of them."""
    sim, client, gw, server, proxy = _proxy_world(
        response_body=b"A" * 30 + b"SECRET" + b"B" * 30)
    _shrink_server_mss(server, 4)  # pattern is 6 bytes: must straddle
    body = _fetch_via_proxy(sim, client)
    assert b"SECRET" in body
    assert proxy.total_replacements == 0


def test_proxy_streaming_variant_catches_boundary_match():
    sim, client, gw, server, proxy = _proxy_world(
        streaming=True,
        response_body=b"A" * 30 + b"SECRET" + b"B" * 30)
    _shrink_server_mss(server, 4)
    body = _fetch_via_proxy(sim, client)
    assert b"SECRET" not in body
    assert proxy.total_replacements == 1


def test_proxy_upstream_refused_aborts_client():
    sim = Simulator(seed=1)
    lan = Switch(sim, "lan")
    client = make_wired_host(sim, lan, "client", "10.0.0.1")
    gateway = make_wired_host(sim, lan, "gw", "10.0.0.2")
    make_wired_host(sim, lan, "server", "10.0.0.3")  # no HTTP server
    NetsedProxy(gateway, 10101, "10.0.0.3", 80, ["s/a/b/"])
    conn = client.tcp_connect("10.0.0.2", 10101)
    resets = []
    conn.on_reset = lambda: resets.append(1)
    conn.on_established = lambda: conn.send(b"GET / HTTP/1.0\r\n\r\n")
    sim.run_for(10.0)
    assert resets == [1]
