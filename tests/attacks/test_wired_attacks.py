"""Wired MITM baselines: ARP poisoning, DNS spoofing, and the taxonomy."""

import pytest

from repro.attacks.arp_spoof import ArpSpoofer
from repro.attacks.dns_spoof import DnsSpoofer
from repro.attacks.wired_mitm import wired_vs_wireless_paths
from repro.core.scenario import TARGET_IP, build_wired_office
from repro.hosts.services import DnsResolver
from repro.netstack.addressing import IPv4Address


def test_arp_spoof_intercepts_victim_traffic_on_switch():
    """ARP poisoning works even on a switch — but required a port on
    the victim's LAN (the §1.2 prerequisite)."""
    office = build_wired_office(seed=51, fabric="switch")
    sim = office.sim
    victim, attacker = office.victim, office.attacker
    gateway_mac = office.wan.router.interfaces["lan0"].mac
    # Prime the victim's ARP cache with the honest mapping first.
    victim.ping(str(office.gateway_ip))
    sim.run_for(1.0)

    spoofer = ArpSpoofer(
        attacker, "eth0",
        victim_ip="10.0.0.23", victim_mac=victim.interfaces["eth0"].mac,
        gateway_ip=str(office.gateway_ip), gateway_mac=gateway_mac)
    spoofer.start()
    sim.run_for(2.0)

    cap = attacker.enable_capture()
    rtts = []
    victim.ping(TARGET_IP, on_reply=rtts.append)
    sim.run_for(3.0)
    spoofer.stop()
    assert len(rtts) == 1  # relay keeps the victim online (stealth)
    # And the attacker forwarded (hence saw) the victim's traffic.
    assert attacker.packets_forwarded >= 2
    assert cap.count(src=IPv4Address("10.0.0.23"), dst=IPv4Address(TARGET_IP)) >= 1


def test_arp_spoof_poisons_cache():
    office = build_wired_office(seed=52, fabric="switch")
    sim = office.sim
    victim, attacker = office.victim, office.attacker
    victim.ping(str(office.gateway_ip))
    sim.run_for(1.0)
    honest = victim.arp_tables["eth0"].lookup(office.gateway_ip, sim.now)
    spoofer = ArpSpoofer(
        attacker, "eth0",
        victim_ip="10.0.0.23", victim_mac=victim.interfaces["eth0"].mac,
        gateway_ip=str(office.gateway_ip),
        gateway_mac=office.wan.router.interfaces["lan0"].mac)
    spoofer.start()
    sim.run_for(2.0)
    spoofer.stop()
    poisoned = victim.arp_tables["eth0"].lookup(office.gateway_ip, sim.now)
    assert honest != poisoned
    assert poisoned == attacker.interfaces["eth0"].mac


def test_dns_spoof_succeeds_on_hub():
    """On a shared segment the attacker sees the query and wins the race."""
    office = build_wired_office(seed=53, fabric="hub")
    sim = office.sim
    resolver = DnsResolver(office.victim, "10.0.0.53")
    spoofer = DnsSpoofer(office.attacker, "eth0",
                         lies={"downloads.example.com": "10.0.0.66"})
    spoofer.arm()
    answers = []
    resolver.resolve("downloads.example.com", answers.append)
    sim.run_for(5.0)
    spoofer.disarm()
    assert spoofer.queries_seen >= 1
    assert spoofer.responses_forged >= 1
    assert answers == [IPv4Address("10.0.0.66")]  # the lie won the race


def test_dns_spoof_blind_on_switch():
    """On a switch the attacker never sees the query (§1.1's isolation)."""
    office = build_wired_office(seed=54, fabric="switch")
    sim = office.sim
    # Teach the switch where everyone is so queries aren't flooded.
    office.victim.ping("10.0.0.66")
    office.victim.ping("10.0.0.53")
    sim.run_for(2.0)
    resolver = DnsResolver(office.victim, "10.0.0.53")
    spoofer = DnsSpoofer(office.attacker, "eth0",
                         lies={"downloads.example.com": "10.0.0.66"})
    spoofer.arm()
    answers = []
    resolver.resolve("downloads.example.com", answers.append)
    sim.run_for(5.0)
    spoofer.disarm()
    assert spoofer.queries_seen == 0          # structurally blind
    assert answers == [IPv4Address(TARGET_IP)]  # honest answer arrived


def test_dns_spoof_ignores_unlisted_names():
    office = build_wired_office(seed=55, fabric="hub")
    sim = office.sim
    resolver = DnsResolver(office.victim, "10.0.0.53")
    spoofer = DnsSpoofer(office.attacker, "eth0", lies={"other.example": "6.6.6.6"})
    spoofer.arm()
    answers = []
    resolver.resolve("downloads.example.com", answers.append)
    sim.run_for(5.0)
    assert spoofer.queries_seen >= 1
    assert spoofer.responses_forged == 0
    assert answers == [IPv4Address(TARGET_IP)]


def test_taxonomy_structure():
    paths = wired_vs_wireless_paths()
    names = {p.name for p in paths}
    assert {"arp-spoof", "dns-spoof", "gateway-compromise",
            "rogue-ap", "hostile-hotspot"} == names
    wired = [p for p in paths if p.medium == "wired"]
    wireless = [p for p in paths if p.medium == "wireless"]
    assert len(wired) == 3 and len(wireless) == 2
    # The paper's claim in structural form: every wired path needs
    # inside access or a host compromise; no wireless path does.
    for p in wired:
        assert "inside" in p.physical_presence or "hardened" in p.physical_presence
    for p in wireless:
        assert "inside" not in p.physical_presence
