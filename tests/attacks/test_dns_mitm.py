"""The §4.2 DNS-lying variation of the rogue-AP MITM."""

import pytest

from repro.core.scenario import (
    DNS_IP,
    EVIL_IP,
    TARGET_HOSTNAME,
    TARGET_IP,
    build_corp_scenario,
)
from repro.httpsim.browser import Browser
from repro.httpsim.content import make_download_page
from repro.netstack.addressing import IPv4Address


def test_honest_resolution_through_rogue():
    """Without the DNS MITM armed, the rogue forwards answers honestly."""
    scenario = build_corp_scenario(seed=321)
    victim = scenario.add_victim()
    scenario.sim.run_for(5.0)
    assert victim.associated_channel == 6  # on the rogue
    resolver = scenario.resolver_for(victim)
    answers = []
    resolver.resolve(TARGET_HOSTNAME, answers.append)
    scenario.sim.run_for(5.0)
    assert answers == [IPv4Address(TARGET_IP)]


def test_dns_mitm_rewrites_selected_answer():
    scenario = build_corp_scenario(seed=322)
    scenario.rogue.install_dns_mitm({TARGET_HOSTNAME: EVIL_IP})
    victim = scenario.add_victim()
    scenario.sim.run_for(5.0)
    resolver = scenario.resolver_for(victim)
    answers = []
    resolver.resolve(TARGET_HOSTNAME, answers.append)
    scenario.sim.run_for(5.0)
    assert answers == [IPv4Address(EVIL_IP)]
    assert scenario.rogue.dns_mitm.rewritten == 1


def test_dns_mitm_leaves_other_names_honest():
    """Selective lying: unlisted names resolve truthfully."""
    scenario = build_corp_scenario(seed=323)
    scenario.zone.add("www.other.example", "198.51.100.99")
    scenario.rogue.install_dns_mitm({TARGET_HOSTNAME: EVIL_IP})
    victim = scenario.add_victim()
    scenario.sim.run_for(5.0)
    resolver = scenario.resolver_for(victim)
    answers = []
    resolver.resolve("www.other.example", answers.append)
    scenario.sim.run_for(5.0)
    assert answers == [IPv4Address("198.51.100.99")]


def test_dns_mitm_full_compromise_via_cloned_site():
    """End-to-end §4.2 variation: the attacker clones the whole download
    page around the trojan (so the published MD5 matches the trojan by
    construction) and redirects the *hostname* — no netsed needed."""
    scenario = build_corp_scenario(seed=324)
    # The attacker's server gets a complete cloned download page built
    # around the trojan, so the page's published MD5SUM matches the
    # trojan by construction (the attacker authors both).
    make_download_page(scenario.evil_site, binary=scenario.trojan)

    scenario.rogue.install_dns_mitm({TARGET_HOSTNAME: EVIL_IP})
    victim = scenario.add_victim()
    scenario.sim.run_for(5.0)
    resolver = scenario.resolver_for(victim)
    browser = Browser(victim, resolver=resolver)
    outcome = browser.download_and_run(
        f"http://{TARGET_HOSTNAME}/download.html")
    scenario.sim.run_for(60.0)
    assert outcome.md5_ok is True     # the clone's digest matches its trojan
    assert outcome.executed and outcome.trojaned
    assert outcome.compromised
    # And netsed never existed in this variation.
    assert scenario.rogue.netsed is None


def test_dns_mitm_removal_restores_honesty():
    scenario = build_corp_scenario(seed=325)
    mitm = scenario.rogue.install_dns_mitm({TARGET_HOSTNAME: EVIL_IP})
    mitm.remove()
    victim = scenario.add_victim()
    scenario.sim.run_for(5.0)
    resolver = scenario.resolver_for(victim)
    answers = []
    resolver.resolve(TARGET_HOSTNAME, answers.append)
    scenario.sim.run_for(5.0)
    assert answers == [IPv4Address(TARGET_IP)]
