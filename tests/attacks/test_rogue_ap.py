"""The Fig. 1 rogue AP: capture, bridging, and the Fig. 2 download MITM."""

import pytest

from repro.core.scenario import (
    EVIL_IP,
    TARGET_IP,
    VICTIM_IP,
    build_corp_scenario,
)
from repro.radio.propagation import Position


@pytest.fixture(scope="module")
def mitm_world():
    """One armed scenario shared by the read-only assertions below."""
    scenario = build_corp_scenario(seed=21)
    scenario.arm_download_mitm()
    victim = scenario.add_victim()
    scenario.sim.run_for(5.0)
    return scenario, victim


def test_rogue_upstream_associates_as_valid_client(mitm_world):
    scenario, _ = mitm_world
    assert scenario.rogue.upstream_associated
    # It really did join the legitimate AP on channel 1.
    assert scenario.rogue.eth1.channel == 1
    assert scenario.rogue.eth1.bssid == scenario.ap.bssid


def test_victim_lands_on_rogue_channel(mitm_world):
    scenario, victim = mitm_world
    assert victim.wlan.associated
    assert victim.associated_channel == 6          # the rogue's channel
    assert victim.associated_bssid == scenario.ap.bssid  # cloned BSSID!
    assert victim.wlan.mac in scenario.rogue.captured_clients()


def test_victim_connectivity_via_bridge(mitm_world):
    scenario, victim = mitm_world
    rtts = []
    victim.ping("10.0.0.1", on_reply=rtts.append)
    scenario.sim.run_for(3.0)
    assert len(rtts) == 1  # transparent: the victim reaches its gateway


def test_parprouted_learned_victim_route(mitm_world):
    scenario, victim = mitm_world
    route = scenario.rogue.host.routing.lookup(victim.wlan.ip)
    assert route is not None
    assert route.interface == "wlan0"
    assert route.network.prefix_len == 32


def test_proxy_arp_answered_for_gateway(mitm_world):
    scenario, victim = mitm_world
    assert scenario.sim.trace.count("arp.proxy_reply",
                                    source=scenario.rogue.host.name) >= 1


def test_download_mitm_compromises_victim(mitm_world):
    scenario, victim = mitm_world
    outcome = scenario.run_download_experiment(victim)
    assert outcome.link is not None and EVIL_IP.replace(".", "") not in ""  # sanity
    assert EVIL_IP in outcome.link.replace("%2f", "/")
    assert outcome.md5_ok is True        # the forged digest matched
    assert outcome.executed
    assert outcome.trojaned
    assert outcome.compromised
    assert scenario.rogue.netsed.total_replacements >= 2


def test_other_traffic_passes_unmodified(mitm_world):
    """Fig. 2's 'No Rule Match' path: non-target-IP port-80 flows are
    forwarded, not proxied."""
    scenario, victim = mitm_world
    before = scenario.rogue.netsed.connections_proxied
    from repro.httpsim.client import HttpClient
    results = []
    HttpClient(victim).get(f"http://{EVIL_IP}/file.tgz", results.append)
    scenario.sim.run_for(20.0)
    assert results and results[0] is not None and results[0].status == 200
    assert scenario.rogue.netsed.connections_proxied == before


def test_control_arm_without_rogue_is_clean():
    scenario = build_corp_scenario(seed=22, with_rogue=False)
    victim = scenario.add_victim()
    scenario.sim.run_for(5.0)
    assert victim.associated_channel == 1
    outcome = scenario.run_download_experiment(victim)
    assert outcome.md5_ok is True
    assert not outcome.trojaned
    assert not outcome.compromised


def test_victim_near_legit_ap_not_captured():
    """A victim far from the rogue still picks the real AP."""
    scenario = build_corp_scenario(seed=23)
    victim = scenario.add_victim(position=Position(2.0, 0.0))
    scenario.sim.run_for(5.0)
    assert victim.associated_channel == 1
    assert victim.wlan.mac not in scenario.rogue.captured_clients()


def test_rogue_stop_tears_down():
    scenario = build_corp_scenario(seed=24)
    victim = scenario.add_victim()
    scenario.sim.run_for(5.0)
    assert victim.associated_channel == 6
    scenario.rogue.stop()
    scenario.sim.run_for(10.0)
    # Victim falls back to the legitimate AP after beacon loss.
    assert victim.associated_channel == 1
