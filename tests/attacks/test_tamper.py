"""In-path tampering: gateway compromise and the anti-VPN corruption arm."""

import pytest

from repro.attacks.tamper import InPathTamperer, compromise_gateway
from repro.core.scenario import TARGET_IP, build_corp_scenario, build_wired_office
from repro.httpsim.browser import Browser
from repro.httpsim.client import HttpClient


def test_tamperer_validates_args(wired_pair):
    _, a, _ = wired_pair
    with pytest.raises(ValueError):
        InPathTamperer(a, mode="nonsense")
    with pytest.raises(ValueError):
        InPathTamperer(a, mode="replace")  # no rules


def test_gateway_compromise_rewrites_responses():
    """§1.2's third wired MITM path: the attacker owns the border router."""
    office = build_wired_office(seed=311, fabric="switch")
    tamperer = compromise_gateway(
        office.wan.router,
        rules=[(b"MD5SUM", b"HACKED")])
    results = []
    HttpClient(office.victim).get(f"http://{TARGET_IP}/download.html",
                                  results.append)
    office.sim.run_for(30.0)
    assert results and results[0] is not None
    assert b"HACKED" in results[0].body
    assert b"MD5SUM" not in results[0].body
    assert tamperer.tampered >= 1


def test_gateway_compromise_removal_restores_honesty():
    office = build_wired_office(seed=312, fabric="switch")
    tamperer = compromise_gateway(office.wan.router,
                                  rules=[(b"MD5SUM", b"HACKED")])
    tamperer.remove()
    results = []
    HttpClient(office.victim).get(f"http://{TARGET_IP}/download.html",
                                  results.append)
    office.sim.run_for(30.0)
    assert b"MD5SUM" in results[0].body
    assert tamperer.tampered == 0


def test_replace_mode_preserves_length():
    office = build_wired_office(seed=313, fabric="switch")
    compromise_gateway(office.wan.router, rules=[(b"MD5SUM:", b"X:")])
    results = []
    HttpClient(office.victim).get(f"http://{TARGET_IP}/download.html",
                                  results.append)
    office.sim.run_for(30.0)
    body = results[0].body
    assert b"X:     " in body  # padded to the original 7 bytes


def test_corrupt_mode_breaks_cleartext_download():
    """Corruption against unprotected TCP: the payload arrives damaged
    and nothing in cleartext HTTP notices — contrast with the VPN."""
    office = build_wired_office(seed=314, fabric="switch")
    InPathTamperer(office.wan.router, src_port=80, mode="corrupt").install()
    browser = Browser(office.victim)
    outcome = browser.download_and_run(f"http://{TARGET_IP}/download.html")
    office.sim.run_for(40.0)
    # The page or the binary got mangled: either parsing failed, the
    # link/digest was damaged, or the md5 check tripped.  What cannot
    # happen is a clean verified download.
    assert not (outcome.md5_ok and outcome.executed and not outcome.failed) \
        or outcome.computed_md5 != outcome.published_md5


def test_vpn_fails_closed_under_corruption_then_reconnects():
    """The rogue corrupts what it cannot read.  HMAC-SHA1 catches every
    damaged record, the session tears down (never silently accepts),
    and auto-reconnect restores service once the corruption stops."""
    scenario = build_corp_scenario(seed=315)
    victim = scenario.add_victim()
    scenario.sim.run_for(5.0)
    assert victim.associated_channel == 6

    from repro.crypto.keystore import KeyStore
    from repro.core.scenario import VPN_SERVER_NAME, VPN_SHARED_SECRET, VPN_IP
    from repro.defense.vpn import VpnClient
    ks = KeyStore()
    ks.enroll(VPN_SERVER_NAME, VPN_SHARED_SECRET)
    vpn = VpnClient(victim, ks, VPN_SERVER_NAME, VPN_IP, auto_reconnect=True)
    vpn.connect()
    scenario.sim.run_for(5.0)
    assert vpn.connected

    # The rogue starts corrupting the victim's port-22 stream.
    tamperer = InPathTamperer(scenario.rogue.host, dst_port=22,
                              mode="corrupt", corrupt_nth=1).install()
    rtts = []
    for _ in range(5):
        victim.ping(TARGET_IP, on_reply=rtts.append)
        scenario.sim.run_for(3.0)
    scenario.sim.run_for(15.0)
    # Integrity failure was detected somewhere (client or server side)
    # and the session was torn down at least once — never a silent pass.
    assert scenario.sim.trace.count("vpn.integrity_fail") >= 1
    assert scenario.sim.trace.count("vpn.disconnected") >= 1

    # Corruption ends; auto-reconnect restores the tunnel.
    tamperer.remove()
    for _ in range(12):
        scenario.sim.run_for(5.0)
        if vpn.connected:
            break
    assert vpn.connected
    assert vpn.reconnects >= 1
    rtts2 = []
    victim.ping(TARGET_IP, on_reply=rtts2.append)
    scenario.sim.run_for(10.0)
    assert rtts2  # service restored through the tunnel
