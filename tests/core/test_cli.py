"""The `python -m repro` CLI and the experiment registry."""

import json

import pytest

from repro.__main__ import main
from repro.core.registry import (EXPERIMENTS, SeededExperiment,
                                 get_experiment, render_result,
                                 spec_accepts_seed)


def test_registry_covers_design_index():
    ids = {s.exp_id for s in EXPERIMENTS}
    paper = {"FIG1", "FIG2", "FIG3", "E-WEP", "E-MAC", "E-FMS",
             "E-DEAUTH", "E-NETSED", "E-WIRED", "E-VPNOH",
             "E-DETECT", "E-PROM", "E-CNN", "E-8021X"}
    extensions = {"X-PATH", "X-CONTAIN", "E-WIDS",
                  "E-DOWNGRADE", "E-CSA", "E-PMF"}
    assert ids == paper | extensions


def test_registry_bench_targets_exist():
    import os
    for spec in EXPERIMENTS:
        assert os.path.exists(spec.bench_target), spec.bench_target


def test_get_experiment_case_insensitive():
    assert get_experiment("fig2").exp_id == "FIG2"
    with pytest.raises(KeyError):
        get_experiment("E-NOPE")


def test_render_result_tables_and_scalars():
    out = render_result({"rows": [{"a": 1, "b": True}, {"a": 2, "c": "x"}],
                         "note": "hello"})
    assert "a" in out and "b" in out and "c" in out
    assert "note = hello" in out


def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "FIG1" in out and "E-8021X" in out


def test_cli_threats(capsys):
    assert main(["threats"]) == 0
    out = capsys.readouterr().out
    assert "rogue-access-point" in out


def test_cli_run_fast_experiment(capsys):
    assert main(["run", "E-8021X"]) == 0
    out = capsys.readouterr().out
    assert "ROGUE" in out and "completed in" in out


def test_cli_run_unknown(capsys):
    assert main(["run", "E-NOPE"]) == 2


def test_cli_run_fig2(capsys):
    assert main(["run", "FIG2"]) == 0
    out = capsys.readouterr().out
    assert "rogue + netsed" in out and "completed in" in out


def test_cli_sweep_json_parallel(tmp_path, capsys):
    out_file = tmp_path / "sweep.json"
    assert main(["sweep", "E-8021X", "--trials", "3", "--workers", "2",
                 "--json", str(out_file)]) == 0
    out = capsys.readouterr().out
    assert "Sweep E-8021X" in out and "1002" in out
    payload = json.loads(out_file.read_text())
    assert payload["experiment"] == "E-8021X"
    assert payload["trials"] == 3 and payload["workers"] == 2
    assert payload["failures"] == []
    assert [r["seed"] for r in payload["results"]] == [1000, 1001, 1002]
    for entry in payload["results"]:
        assert entry["value"]["rows"]  # each per-seed result carries its tables


def test_cli_sweep_unknown_experiment(capsys):
    assert main(["sweep", "E-NOPE"]) == 2


def test_cli_sweep_custom_seed_base(tmp_path, capsys):
    out_file = tmp_path / "sweep.json"
    assert main(["sweep", "E-8021X", "--trials", "2", "--seed-base", "7",
                 "--json", str(out_file)]) == 0
    payload = json.loads(out_file.read_text())
    assert [r["seed"] for r in payload["results"]] == [7, 8]


def test_seeded_experiment_adapter():
    adapter = SeededExperiment("e-8021x")  # case-insensitive, normalized
    assert adapter.exp_id == "E-8021X"
    result = adapter(seed=3)
    assert result["rows"]
    with pytest.raises(KeyError):
        SeededExperiment("E-NOPE")


def test_spec_accepts_seed_distinguishes_runner_shapes():
    assert spec_accepts_seed(get_experiment("FIG2"))          # runner(seed=...)
    assert not spec_accepts_seed(get_experiment("E-NETSED"))  # runner(trials=...)


def test_cli_profile_prints_breakdown_and_metrics(capsys):
    assert main(["profile", "FIG1"]) == 0
    out = capsys.readouterr().out
    assert "profiling FIG1" in out
    # the per-category wall-clock breakdown table
    assert "category" in out and "calls" in out
    assert "total_ms" in out and "share" in out
    assert "kernel." in out  # event-dispatch spans by module
    # the metrics registry listing
    assert "counter" in out


def test_cli_profile_unknown_experiment(capsys):
    assert main(["profile", "E-NOPE"]) == 2
    assert "E-NOPE" in capsys.readouterr().err


def test_cli_profile_json_snapshot(tmp_path, capsys):
    out_file = tmp_path / "profile.json"
    assert main(["profile", "FIG1", "--json", str(out_file)]) == 0
    payload = json.loads(out_file.read_text())
    assert payload["experiment"] == "FIG1"
    assert payload["elapsed_s"] > 0
    assert any(cat.startswith("kernel.") for cat in payload["profile"])
    for acc in payload["profile"].values():
        assert set(acc) == {"count", "total_s", "min_s", "max_s"}
    for metric in payload["metrics"].values():
        assert metric["kind"] in {"counter", "gauge", "timer", "histogram"}


def test_cli_profile_malformed_json_path(tmp_path, capsys):
    bad = tmp_path / "not-a-dir" / "profile.json"
    assert main(["profile", "E-8021X", "--json", str(bad)]) == 1
    assert "cannot write" in capsys.readouterr().err


def test_cli_sweep_metrics_json_schema(tmp_path, capsys):
    out_file = tmp_path / "metrics.json"
    assert main(["sweep", "FIG2", "--trials", "2", "--workers", "2",
                 "--metrics", str(out_file)]) == 0
    payload = json.loads(out_file.read_text())
    assert payload["experiment"] == "FIG2"
    assert payload["trials"] == 2
    names = set(payload["metrics"])
    # the acceptance families: radio, tcp, netfilter, and attack counters
    for family in ("radio.", "tcp.", "netfilter.", "attack."):
        assert any(n.startswith(family) for n in names), family
    for metric in payload["metrics"].values():
        assert metric["kind"] in {"counter", "gauge", "timer", "histogram"}
    # counters aggregated across both trials are positive
    assert payload["metrics"]["radio.deliveries"]["value"] > 0


def test_cli_sweep_metrics_malformed_path(tmp_path, capsys):
    bad = tmp_path / "missing-dir" / "metrics.json"
    assert main(["sweep", "E-8021X", "--trials", "2",
                 "--metrics", str(bad)]) == 1
    assert "cannot write" in capsys.readouterr().err


def test_cli_sweep_without_metrics_flag_ships_none(tmp_path, capsys):
    out_file = tmp_path / "sweep.json"
    assert main(["sweep", "E-8021X", "--trials", "2",
                 "--json", str(out_file)]) == 0
    payload = json.loads(out_file.read_text())
    assert payload["metrics"] is None  # collection off => nothing shipped


def test_cli_trace_fig2_reconstructs_the_mitm_path(tmp_path, capsys):
    pcap = tmp_path / "frames.pcap"
    chrome = tmp_path / "trace.json"
    assert main(["trace", "FIG2", "--pcap", str(pcap),
                 "--chrome", str(chrome)]) == 0
    out = capsys.readouterr().out
    # the hop-by-hop Fig-2 path: victim, rogue bridge, rewrite, upstream
    assert "MITM path" in out
    assert "netsed.rewrite@rogue-gw" in out
    assert "nic.deliver@rogue-gw:eth1" in out
    assert "nic.deliver@victim:wlan0" in out
    # before/after payload diff around the rewrite
    assert "href=file.tgz" in out
    assert "href=http:%2f%2f198.51.100.66" in out
    # sim-trace corroboration via Trace.between/matching
    assert "netsed.* event(s)" in out
    # exports landed and announced themselves
    assert "linktype 105" in out and "Perfetto" in out
    assert pcap.read_bytes()[:4] == b"\xd4\xc3\xb2\xa1"  # LE pcap magic
    assert json.loads(chrome.read_text())["traceEvents"]


def test_cli_trace_follow_prints_one_lineage(capsys):
    assert main(["trace", "FIG2", "--follow", "2"]) == 0
    out = capsys.readouterr().out
    assert "#2 in full" in out


def test_cli_trace_follow_unknown_id(capsys):
    assert main(["trace", "E-8021X", "--follow", "999999"]) == 1
    assert "not in the ring buffer" in capsys.readouterr().err


def test_cli_trace_unknown_experiment(capsys):
    assert main(["trace", "E-NOPE"]) == 2
    assert "E-NOPE" in capsys.readouterr().err


def test_cli_trace_without_rewrite_falls_back_to_longest_chain(capsys):
    assert main(["trace", "E-DETECT"]) == 0
    out = capsys.readouterr().out
    assert "no netsed rewrite recorded" in out
    assert "longest causal chain" in out


def test_cli_trace_frameless_experiment(capsys):
    assert main(["trace", "E-8021X"]) == 0
    assert "no frames recorded" in capsys.readouterr().out


def test_cli_sweep_flight_recorder_ships_lineage_samples(tmp_path, capsys):
    out_file = tmp_path / "sweep.json"
    assert main(["sweep", "FIG2", "--trials", "2", "--workers", "2",
                 "--flight-recorder", "8", "--json", str(out_file)]) == 0
    out = capsys.readouterr().out
    assert "lineage sample(s)" in out and "merged in seed order" in out
    payload = json.loads(out_file.read_text())
    lineages = payload["lineages"]
    assert lineages and {ln["seed"] for ln in lineages} == {1000, 1001}
    for ln in lineages:
        assert {"trace_id", "kind", "origin", "t0", "hops"} <= set(ln)
    # without the flag nothing ships
    assert main(["sweep", "E-8021X", "--trials", "2",
                 "--json", str(out_file)]) == 0
    assert json.loads(out_file.read_text())["lineages"] is None


def test_cli_wids_e_wids_timeline_and_scorecard(tmp_path, capsys):
    out_file = tmp_path / "scorecard.json"
    assert main(["wids", "E-WIDS", "--json", str(out_file)]) == 0
    out = capsys.readouterr().out
    assert "wids-watching E-WIDS" in out
    assert "alert timeline" in out
    # the ambient watch hears the rogue worlds' cloned identity
    assert "fingerprint" in out and "multichannel" in out
    # the E-WIDS runner recorded wids.eval.* metrics -> scorecard table
    assert "WIDS evaluation scorecard" in out
    assert "mean_ttd_s" in out
    payload = json.loads(out_file.read_text())
    assert payload["experiment"] == "E-WIDS"
    assert payload["alerts"], "ambient watch produced no alerts"
    for alert in payload["alerts"]:
        assert {"detector", "subject", "t", "score", "severity"} <= set(alert)
    assert payload["scorecard"]["rows"]
    # alerts carry flight-recorder lineage ids (the watch ran under
    # recording()), so `trace --follow` can chase any of them
    assert any(alert["trace_ids"] for alert in payload["alerts"])


def test_cli_wids_frameless_experiment(capsys):
    assert main(["wids", "E-8021X"]) == 0
    out = capsys.readouterr().out
    assert "no alerts" in out


def test_cli_wids_unknown_experiment(capsys):
    assert main(["wids", "E-NOPE"]) == 2
    assert "E-NOPE" in capsys.readouterr().err


def test_cli_wids_malformed_json_path(tmp_path, capsys):
    bad = tmp_path / "not-a-dir" / "scorecard.json"
    assert main(["wids", "E-8021X", "--json", str(bad)]) == 1
    assert "cannot write" in capsys.readouterr().err


def test_cli_sweep_wids_merged_scorecard(tmp_path, capsys):
    out_file = tmp_path / "wids.json"
    assert main(["sweep", "E-WIDS", "--trials", "2", "--workers", "2",
                 "--wids", str(out_file)]) == 0
    out = capsys.readouterr().out
    assert "Merged WIDS scorecard" in out
    payload = json.loads(out_file.read_text())
    assert payload["experiment"] == "E-WIDS"
    assert payload["trials"] == 2
    rows = payload["scorecard"]["rows"]
    assert rows
    # two trials, four worlds each: every cell row sums to 8 worlds
    for row in rows:
        assert row["tp"] + row["fp"] + row["fn"] + row["tn"] == 8
        assert row["fp"] == 0  # zero false positives across the sweep


def test_cli_sweep_wids_on_experiment_without_eval(tmp_path, capsys):
    out_file = tmp_path / "wids.json"
    assert main(["sweep", "E-8021X", "--trials", "2",
                 "--wids", str(out_file)]) == 0
    err = capsys.readouterr().err
    assert "no wids.eval." in err
    payload = json.loads(out_file.read_text())
    assert payload["scorecard"]["rows"] == []


def test_cli_report_writes_markdown(tmp_path, monkeypatch, capsys):
    """The report command runs the registry and writes a markdown file
    (patched down to one fast experiment to keep the test quick)."""
    import repro.__main__ as cli
    from repro.core.registry import ExperimentSpec
    from repro.core.experiments import exp_dot1x_wpa_gap

    fast = [ExperimentSpec("E-8021X", "gap", "§2.2", exp_dot1x_wpa_gap,
                           "benchmarks/test_dot1x_wpa_gap.py")]
    monkeypatch.setattr(cli, "EXPERIMENTS", fast)
    out_file = tmp_path / "report.md"
    assert cli.main(["report", str(out_file)]) == 0
    text = out_file.read_text()
    assert "# Reproduction report" in text
    assert "## E-8021X" in text
    assert "ROGUE" in text
