"""Core layer: threat taxonomy, campaign runner, metrics, reporting."""

import math

import pytest

from repro.core.campaign import TrialStats, run_trials
from repro.core.metrics import DownloadMetrics, TunnelMetrics
from repro.core.report import format_kv, format_table
from repro.core.threatmodel import Threat, ThreatApplicability, threat_taxonomy
from repro.httpsim.browser import DownloadOutcome


def test_taxonomy_covers_paper_threats():
    threats = {t.name for t in threat_taxonomy()}
    assert {"eavesdropping", "jamming", "spoofing", "rogue-access-point",
            "man-in-the-middle", "hostile-hotspot"} == threats


def test_every_threat_is_wireless_amplified():
    """The paper's thesis as an invariant over the taxonomy."""
    for threat in threat_taxonomy():
        assert threat.wireless_amplified, threat.name


def test_taxonomy_anchors_and_modules():
    for threat in threat_taxonomy():
        assert threat.paper_anchor.startswith("§")
        assert threat.demonstrated_by.startswith("repro.")


def test_trial_stats_aggregation():
    stats = TrialStats()
    for v in (1.0, 0.0, 1.0, 1.0):
        stats.add(v)
    assert stats.n == 4
    assert stats.mean == 0.75
    assert stats.rate == 0.75
    assert stats.stdev == pytest.approx(0.5)
    assert stats.ci95_halfwidth() > 0
    assert "n=4" in str(stats)


def test_trial_stats_empty():
    assert math.isnan(TrialStats().mean)


def test_run_trials_uses_distinct_seeds():
    seeds = []
    run_trials(5, lambda seed: (seeds.append(seed), 0.0)[1])
    assert len(set(seeds)) == 5


def test_run_trials_reproducible():
    def trial(seed):
        from repro.sim.rng import SimRandom
        return SimRandom(seed).random()

    a = run_trials(10, trial)
    b = run_trials(10, trial)
    assert a.values == b.values


def test_download_metrics_from_outcome():
    outcome = DownloadOutcome(page_url="u", md5_ok=True, executed=True, trojaned=True)
    m = DownloadMetrics.from_outcome(outcome)
    assert m.compromised and m.md5_check_passed and m.attempted


def test_tunnel_metrics():
    m = TunnelMetrics(offered=10, delivered=8,
                      latencies_s=[0.1, 0.2, 0.3, 0.4])
    assert m.delivery_ratio == 0.8
    assert m.mean_latency_s == pytest.approx(0.25)
    assert m.latency_quantile(0.99) == 0.4
    assert math.isnan(TunnelMetrics().mean_latency_s)


def test_format_table_alignment():
    out = format_table(
        ["arm", "compromised", "rate"],
        [["no-vpn", True, 1.0], ["vpn", False, 0.0]],
        title="FIG3")
    lines = out.splitlines()
    assert lines[0] == "FIG3"
    assert "arm" in lines[1] and "compromised" in lines[1]
    assert "yes" in out and "no" in out
    # Columns align: every row same length.
    assert len(set(len(l) for l in lines[2:])) <= 2


def test_format_kv():
    out = format_kv("Result", [("key", 1.23456), ("flag", True)])
    assert "Result" in out and "1.235" in out and "yes" in out
