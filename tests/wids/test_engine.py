"""The correlation engine: evidence in, deduplicated alerts out."""

from repro.dot11.capture import CapturedFrame, FrameCapture
from repro.dot11.frames import make_beacon, make_deauth
from repro.dot11.mac import BROADCAST, MacAddress
from repro.obs import collecting
from repro.wids.alerts import MAX_TRACE_IDS, Alert
from repro.wids.correlate import AlertCorrelator
from repro.wids.detectors import DeauthFloodDetector, Detection
from repro.wids.engine import WidsEngine

AP = MacAddress("aa:bb:cc:dd:00:01")


def _cap(frame, t=0.0, ch=1):
    return CapturedFrame(time=t, channel=ch, rssi_dbm=-50.0, frame=frame)


# ----------------------------------------------------------------------
# correlator
# ----------------------------------------------------------------------

def test_correlator_opens_once_at_threshold():
    corr = AlertCorrelator()
    d = Detection(subject="s", score=1.0, reason="r")
    assert corr.ingest("det", 3.0, d, t=1.0) is None
    assert corr.ingest("det", 3.0, d, t=2.0) is None
    opened = corr.ingest("det", 3.0, d, t=3.0)
    assert opened is not None
    assert opened.t == 3.0                   # threshold-crossing time
    assert opened.first_evidence_t == 1.0
    assert corr.ingest("det", 3.0, d, t=4.0) is None  # updates, not dupes
    assert corr.alerts == [opened]
    assert opened.score == 4.0 and opened.count == 4
    assert opened.last_evidence_t == 4.0


def test_correlator_keys_on_detector_and_subject():
    corr = AlertCorrelator()
    corr.ingest("a", 1.0, Detection(subject="x"), t=0.0)
    corr.ingest("b", 1.0, Detection(subject="x"), t=0.1)
    corr.ingest("a", 1.0, Detection(subject="y"), t=0.2)
    assert len(corr.alerts) == 3
    assert corr.evidence_score("a", "x") == 1.0
    assert corr.evidence_score("a", "nope") == 0.0
    assert corr.open_alert("b", "x") is corr.alerts[1]
    assert corr.open_alert("b", "nope") is None


def test_correlator_keeps_freshest_reason_and_caps_trace_ids():
    corr = AlertCorrelator()
    for i in range(MAX_TRACE_IDS + 10):
        corr.ingest("det", 1.0,
                    Detection(subject="s", reason=f"reason-{i}"),
                    t=float(i), trace_id=100 + i)
    alert = corr.alerts[0]
    assert alert.reason == f"reason-{MAX_TRACE_IDS + 9}"
    assert len(alert.trace_ids) == MAX_TRACE_IDS
    assert alert.trace_ids[0] == 100  # earliest contributors kept


def test_alert_severity_buckets_and_to_dict():
    a = Alert(detector="d", subject="s", t=1.0, score=1.0, count=1,
              first_evidence_t=0.5, last_evidence_t=1.0)
    assert a.severity == "warn"
    a.score = 3.0
    assert a.severity == "high"
    a.score = 10.0
    assert a.severity == "critical"
    d = a.to_dict()
    assert d["severity"] == "critical" and d["detector"] == "d"
    a.add_trace_id(None)
    a.add_trace_id(7)
    a.add_trace_id(7)
    assert a.trace_ids == [7]


# ----------------------------------------------------------------------
# engine
# ----------------------------------------------------------------------

def _flood_caps(n=20):
    return [_cap(make_deauth(AP, BROADCAST, AP), t=i * 0.1) for i in range(n)]


def test_engine_live_tap_equals_offline_scan():
    caps = _flood_caps()

    live_capture = FrameCapture()
    live = WidsEngine([DeauthFloodDetector()])
    detach = live.attach(live_capture)
    for cap in caps:
        live_capture.add(cap)

    offline_capture = FrameCapture()
    for cap in caps:
        offline_capture.add(cap)
    offline = WidsEngine([DeauthFloodDetector()])
    offline.scan(offline_capture)

    assert [a.to_dict() for a in live.alerts] == \
        [a.to_dict() for a in offline.alerts]
    assert live.frames_seen == offline.frames_seen == len(caps)

    # after detach the live engine hears nothing more
    detach()
    live_capture.add(_cap(make_deauth(AP, BROADCAST, AP), t=99.0))
    assert live.frames_seen == len(caps)


def test_engine_alert_accessors():
    engine = WidsEngine([DeauthFloodDetector()])
    capture = FrameCapture()
    engine.attach(capture)
    for cap in _flood_caps():
        capture.add(cap)
    assert engine.first_alert() is engine.alerts[0]
    assert engine.alerts_for("deauth-flood") == engine.alerts
    assert engine.alerts_for("seqctl") == []
    assert engine.alerts[0].detector == "deauth-flood"


def test_engine_records_ambient_metrics():
    with collecting() as col:
        engine = WidsEngine([DeauthFloodDetector()])
        capture = FrameCapture()
        engine.attach(capture)
        for cap in _flood_caps():
            capture.add(cap)
    reg = col.registry
    assert reg.value("wids.frames") == 20
    assert reg.value("wids.evidence.deauth-flood") > 0
    assert reg.value("wids.alerts") == 1
    assert reg.value("wids.alerts.deauth-flood") == 1


def test_engine_record_metrics_false_is_silent():
    with collecting() as col:
        engine = WidsEngine([DeauthFloodDetector()], record_metrics=False)
        capture = FrameCapture()
        engine.attach(capture)
        for cap in _flood_caps():
            capture.add(cap)
    assert engine.alerts  # still detects
    assert not any(n.startswith("wids.") for n in col.registry.snapshot())


def test_engine_benign_traffic_no_alerts():
    engine = WidsEngine()  # the full default bank
    capture = FrameCapture()
    engine.attach(capture)
    tbtt = 100 * 1024e-6
    for i in range(100):
        capture.add(_cap(make_beacon(AP, "CORP", 1, seq=i % 4096),
                         t=i * tbtt))
    assert engine.alerts == []


def test_engine_sharded_equals_unsharded_on_live_capture():
    """PR 10: a sharded engine hears a mixed-band world identically."""
    caps = _flood_caps()
    # interleave a channel-6 twin so band routing actually splits work
    caps += [_cap(make_beacon(AP, "CORP", 6, seq=3000 + i),
                  t=i * 0.1 + 0.05, ch=6) for i in range(20)]
    caps.sort(key=lambda c: c.time)

    engines = {}
    for shards in (1, 4):
        capture = FrameCapture()
        engine = WidsEngine(shards=shards, record_metrics=False)
        engine.attach(capture)
        for cap in caps:
            capture.add(cap)
        engines[shards] = engine
    assert [a.to_dict() for a in engines[1].alerts] == \
        [a.to_dict() for a in engines[4].alerts]
    assert engines[1].frames_seen == engines[4].frames_seen == len(caps)


def test_engine_max_evidence_passthrough():
    engine = WidsEngine([DeauthFloodDetector()], record_metrics=False,
                        max_evidence=2)
    assert engine.correlator.max_evidence == 2
    sharded = WidsEngine(shards=2, record_metrics=False, max_evidence=2)
    assert all(s.max_evidence == 2 for s in sharded.correlator.shards)
