"""Evaluation harness: confusion cells, ROC, ttd, and the merge law."""

import json

from repro.dot11.capture import CapturedFrame, FrameCapture
from repro.dot11.frames import make_beacon
from repro.dot11.mac import MacAddress
from repro.obs import collecting
from repro.obs.metrics import MetricsRegistry
from repro.wids.detectors import DETECTORS
from repro.wids.evaluation import (GroundTruth, Scorecard, ScoreRow,
                                   _thr_token, _thr_value, evaluate,
                                   evaluate_rescan, evaluate_with_crossings)

AP = MacAddress("aa:bb:cc:dd:00:01")


def _cap(frame, t=0.0, ch=1):
    return CapturedFrame(time=t, channel=ch, rssi_dbm=-50.0, frame=frame)


def _rogue_capture():
    """The legit AP plus an evil twin on channel 6 — fingerprint and
    multichannel evidence on every twin beacon."""
    capture = FrameCapture()
    tbtt = 100 * 1024e-6
    for i in range(30):
        capture.add(_cap(make_beacon(AP, "CORP", 1, seq=i), t=i * tbtt, ch=1))
        capture.add(_cap(make_beacon(AP, "CORP", 6, seq=3000 + i),
                         t=i * tbtt + 0.01, ch=6))
    return capture


def _benign_capture():
    capture = FrameCapture()
    tbtt = 100 * 1024e-6
    for i in range(30):
        capture.add(_cap(make_beacon(AP, "CORP", 1, seq=i), t=i * tbtt, ch=1))
    return capture


def test_thr_token_roundtrip():
    for thr in (1.0, 2.0, 13.0, 0.5, 2.5):
        assert _thr_value(_thr_token(thr)) == thr
    assert _thr_token(3.0) == "thr3"
    assert _thr_token(0.5) == "thr0_5"


def test_evaluate_rogue_world_scores_tp():
    reg = evaluate(_rogue_capture(), GroundTruth(rogue_present=True))
    # fingerprint + multichannel see the twin at every threshold
    for det in ("fingerprint", "multichannel"):
        for thr in DETECTORS[det].SWEEP:
            assert reg.value(f"wids.eval.{det}.{_thr_token(thr)}.tp") == 1
    # deauth-flood has nothing to find in a beacon-only world
    thr = _thr_token(DETECTORS["deauth-flood"].default_threshold)
    assert reg.value(f"wids.eval.deauth-flood.{thr}.fn") == 1
    # ttd recorded at the default threshold only, >= 0
    card = Scorecard.from_registry(reg)
    assert card.mean_ttd_s("fingerprint") is not None
    assert card.mean_ttd_s("fingerprint") >= 0.0
    assert card.ttd("deauth-flood") is None


def test_evaluate_benign_world_scores_tn():
    reg = evaluate(_benign_capture(), GroundTruth(rogue_present=False))
    for det, cls in DETECTORS.items():
        for thr in cls.SWEEP:
            assert reg.value(f"wids.eval.{det}.{_thr_token(thr)}.tn") == 1
            assert reg.value(f"wids.eval.{det}.{_thr_token(thr)}.fp") == 0


def test_evaluate_writes_ambient_registry_too():
    with collecting() as col:
        local = evaluate(_rogue_capture(), GroundTruth(rogue_present=True))
    ambient = col.registry.subtree("wids.eval")
    assert ambient  # the fleet-shipped copy
    for name, metric in local.subtree("wids.eval").items():
        assert ambient[name].to_dict() == metric.to_dict()
    # and sweep replays don't pollute the live wids.* counters
    assert col.registry.value("wids.frames") == 0


def test_evaluate_attack_start_offsets_ttd():
    late = evaluate(_rogue_capture(), GroundTruth(rogue_present=True,
                                                  attack_start_s=0.0))
    card = Scorecard.from_registry(late)
    base = card.mean_ttd_s("multichannel")
    offset = evaluate(_rogue_capture(),
                      GroundTruth(rogue_present=True, attack_start_s=0.01))
    card2 = Scorecard.from_registry(offset)
    assert abs(card2.mean_ttd_s("multichannel") - (base - 0.01)) < 1e-9


def test_scorecard_rows_rates_and_roc():
    reg = MetricsRegistry()
    evaluate(_rogue_capture(), GroundTruth(rogue_present=True), registry=reg)
    evaluate(_benign_capture(), GroundTruth(rogue_present=False), registry=reg)
    card = Scorecard.from_registry(reg)
    assert set(card.detectors()) == set(DETECTORS)
    fp_rows = [r for r in card.rows() if r.detector == "fingerprint"]
    assert [r.threshold for r in fp_rows] == sorted(DETECTORS["fingerprint"].SWEEP)
    for r in fp_rows:
        assert (r.tp, r.fp, r.fn, r.tn) == (1, 0, 0, 1)
        assert r.precision == 1.0 and r.recall == 1.0
        assert r.tpr == 1.0 and r.fpr == 0.0
    roc = card.roc("fingerprint")
    assert [p[2] for p in roc] == sorted(DETECTORS["fingerprint"].SWEEP,
                                         reverse=True)
    assert all(p[0] == 0.0 and p[1] == 1.0 for p in roc)


def test_scorecard_merge_law_serial_equals_split():
    """Two per-world registries merged == one registry over both worlds."""
    serial = MetricsRegistry()
    evaluate(_rogue_capture(), GroundTruth(rogue_present=True),
             registry=serial)
    evaluate(_benign_capture(), GroundTruth(rogue_present=False),
             registry=serial)

    a = evaluate(_rogue_capture(), GroundTruth(rogue_present=True))
    b = evaluate(_benign_capture(), GroundTruth(rogue_present=False))
    merged = MetricsRegistry()
    merged.merge(a)
    merged.merge(b)

    assert merged.snapshot() == serial.snapshot()
    assert json.dumps(Scorecard.from_registry(merged).to_json_dict(),
                      sort_keys=True) == \
        json.dumps(Scorecard.from_registry(serial).to_json_dict(),
                   sort_keys=True)


def test_scorecard_snapshot_roundtrip_and_report():
    reg = evaluate(_rogue_capture(), GroundTruth(rogue_present=True))
    card = Scorecard.from_registry(reg)
    clone = Scorecard.from_snapshot(reg.snapshot())
    assert clone.to_json_dict() == card.to_json_dict()
    text = card.report()
    assert "WIDS evaluation scorecard" in text
    assert "fingerprint" in text and "mean_ttd_s" in text


def test_single_pass_matches_rescan_differential():
    """PR 10 equivalence: trajectory-derived cells == per-threshold rescan.

    The single-pass evaluate() must be bit-identical to the old
    O(frames x detectors x thresholds) engine rescan on every world
    shape — rogue (with ttd timers) and benign (tn-only) alike.
    """
    worlds = [
        (_rogue_capture(), GroundTruth(rogue_present=True,
                                       attack_start_s=0.005)),
        (_benign_capture(), GroundTruth(rogue_present=False)),
    ]
    for capture, truth in worlds:
        fast = evaluate(capture, truth)
        slow = evaluate_rescan(capture, truth)
        assert fast.snapshot() == slow.snapshot()


def test_crossings_match_engine_first_alert():
    from repro.wids.engine import WidsEngine

    capture = _rogue_capture()
    _reg, crossings = evaluate_with_crossings(
        capture, GroundTruth(rogue_present=True))
    for det, cls in DETECTORS.items():
        assert set(crossings[det]) == set(cls.SWEEP)
        engine = WidsEngine([cls()], record_metrics=False)
        engine.scan(capture)
        expected = engine.alerts[0].t if engine.alerts else None
        assert crossings[det][cls.default_threshold] == expected


def _one_point_card(tp, fp, fn, tn):
    return Scorecard([ScoreRow(detector="d", threshold=1.0,
                               tp=tp, fp=fp, fn=fn, tn=tn)], {})


def test_auc_degenerate_rocs():
    # a single perfect operating point (fpr=0, tpr=1) closes to area 1.0
    assert _one_point_card(tp=1, fp=0, fn=0, tn=1).auc("d") == 1.0
    # never-alert (0, 0) and always-alert (1, 1) both close to chance
    assert _one_point_card(tp=0, fp=0, fn=1, tn=1).auc("d") == 0.5
    assert _one_point_card(tp=1, fp=1, fn=0, tn=0).auc("d") == 0.5
    # no rows for the detector at all -> None, and json carries the value
    card = _one_point_card(tp=1, fp=0, fn=0, tn=1)
    assert card.auc("missing") is None
    assert card.to_json_dict()["auc"] == {"d": 1.0}
    assert "auc" in card.report()


def test_scorecard_empty_registry():
    card = Scorecard.from_registry(MetricsRegistry())
    assert card.rows() == [] and card.detectors() == []
    assert card.mean_ttd_s("fingerprint") is None
    assert card.to_json_dict() == {"rows": [], "roc": {}, "auc": {},
                                   "time_to_detect_s": {}}
