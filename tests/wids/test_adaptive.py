"""AdaptiveThreshold: Youden-J selection over a sliding eval window."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.wids.adaptive import AdaptiveThreshold
from repro.wids.detectors import DETECTORS
from repro.wids.evaluation import _thr_token


def _gen_registry(detector, cells):
    """Build a wids.eval registry: {threshold: (tp, fp, fn, tn)}."""
    reg = MetricsRegistry()
    for threshold, (tp, fp, fn, tn) in cells.items():
        token = _thr_token(threshold)
        for cell, n in (("tp", tp), ("fp", fp), ("fn", fn), ("tn", tn)):
            for _ in range(n):
                reg.incr(f"wids.eval.{detector}.{token}.{cell}")
    return reg


def test_youden_j_picks_the_knee():
    adaptive = AdaptiveThreshold(window=4)
    # thr=1: catches everything but half the benigns too (J = 0.5);
    # thr=2: catches 0.9 with no false alarms (J = 0.9) <- the knee;
    # thr=4: quiet but mostly blind (J = 0.2)
    adaptive.observe(_gen_registry("fingerprint", {
        1.0: (10, 5, 0, 5),
        2.0: (9, 0, 1, 10),
        4.0: (2, 0, 8, 10),
    }))
    assert adaptive.threshold_for("fingerprint") == 2.0


def test_tie_breaks_toward_higher_threshold():
    adaptive = AdaptiveThreshold()
    # identical J at 2.0 and 3.0 -> keep the quieter configuration
    adaptive.observe(_gen_registry("fingerprint", {
        2.0: (9, 0, 1, 10),
        3.0: (9, 0, 1, 10),
    }))
    assert adaptive.threshold_for("fingerprint") == 3.0


def test_window_slides_old_generations_out():
    adaptive = AdaptiveThreshold(window=2)
    stale = _gen_registry("fingerprint", {2.0: (10, 0, 0, 10)})
    adaptive.observe(stale)
    # two fresh generations where 4.0 wins push the stale one out
    fresh = _gen_registry("fingerprint", {2.0: (1, 9, 9, 1),
                                          4.0: (9, 0, 1, 10)})
    adaptive.observe(fresh)
    adaptive.observe(fresh)
    assert len(adaptive) == 2 and adaptive.observed == 3
    assert adaptive.threshold_for("fingerprint") == 4.0


def test_empty_window_falls_back_to_defaults():
    adaptive = AdaptiveThreshold()
    assert adaptive.threshold_for("fingerprint") is None
    thresholds = adaptive.thresholds()
    assert thresholds == {name: cls.default_threshold
                          for name, cls in DETECTORS.items()}


def test_observe_accepts_snapshot_dicts():
    reg = _gen_registry("fingerprint", {2.0: (9, 0, 1, 10)})
    a, b = AdaptiveThreshold(), AdaptiveThreshold()
    a.observe(reg)
    b.observe(reg.snapshot())
    assert a.thresholds() == b.thresholds()
    assert a.merged().snapshot() == b.merged().snapshot()


def test_json_dict_shape():
    adaptive = AdaptiveThreshold(window=3)
    adaptive.observe(_gen_registry("fingerprint", {2.0: (9, 0, 1, 10)}))
    payload = adaptive.to_json_dict()
    assert payload["window"] == 3
    assert payload["generations_seen"] == 1
    assert payload["generations_windowed"] == 1
    assert payload["thresholds"]["fingerprint"] == 2.0
    tuned = {p["detector"]: p for p in payload["operating_points"]}
    assert tuned["fingerprint"]["tpr"] == 0.9
    assert tuned["fingerprint"]["fpr"] == 0.0


def test_defaults_are_sweep_members():
    """Retuning swaps between SWEEP rungs; the defaults must be rungs."""
    for name, cls in DETECTORS.items():
        assert cls.default_threshold in cls.SWEEP, name


def test_window_validation():
    with pytest.raises(ValueError):
        AdaptiveThreshold(window=0)
