"""The sharded correlator and its merge law: serial == sharded == split.

The load-bearing PR 10 property, pinned three ways on hypothesis-drawn
evidence streams: the unsharded :class:`AlertCorrelator`, the
:class:`ShardedCorrelator` facade fed the same serial stream, and N
independently-fed shards (one per route, as a fleet of workers would
hold them) merged by ``open_seq`` must produce bit-identical alerts —
same order, same scores/counts/times/trace_ids/open_seq.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wids.alerts import Alert
from repro.wids.correlate import (AlertCorrelator, ShardedCorrelator,
                                  shard_index)
from repro.wids.detectors import Detection
from repro.wids.storm import alert_storm, run_storm, storm_digest

# ---------------------------------------------------------------------------
# hypothesis stream: a handful of subjects x detectors, scores that make
# thresholds cross at awkward places, optional trace ids and bands
# ---------------------------------------------------------------------------

_SUBJECTS = ["ap:evil", "ap:corp", "sta:07", "sta:42", "ap:ghost"]
_DETECTORS = ["fingerprint", "seqctl", "deauth-flood"]
_BANDS = [None, "2g4", "5g"]

_event = st.tuples(
    st.sampled_from(_DETECTORS),
    st.sampled_from(_SUBJECTS),
    st.floats(min_value=0.1, max_value=4.0, allow_nan=False,
              allow_infinity=False),
    st.sampled_from(_BANDS),
    st.one_of(st.none(), st.integers(min_value=0, max_value=99)),
)

_streams = st.lists(_event, min_size=0, max_size=200)


def _feed(correlator, events, threshold=5.0):
    for i, (detector, subject, score, band, trace_id) in enumerate(events):
        correlator.ingest(detector, threshold,
                          Detection(subject=subject, score=score,
                                    reason=f"ev{i}"),
                          t=i * 0.01, trace_id=trace_id, band=band)
    return correlator


def _alert_tuple(a: Alert):
    return (a.detector, a.subject, a.t, a.score, a.count,
            a.first_evidence_t, a.last_evidence_t, a.reason,
            list(a.trace_ids), a.open_seq)


def _assert_identical(alerts_a, alerts_b):
    assert [_alert_tuple(a) for a in alerts_a] == \
        [_alert_tuple(a) for a in alerts_b]


@settings(max_examples=100, deadline=None)
@given(events=_streams, shards=st.integers(min_value=1, max_value=6))
def test_merge_law_serial_equals_sharded_equals_split(events, shards):
    serial = _feed(AlertCorrelator(), events)

    facade = _feed(ShardedCorrelator(shards=shards), events)
    _assert_identical(serial.alerts, facade.merge())

    # split feed: each shard held and fed independently (the fleet
    # shape), with the global stream position passed explicitly
    split = [AlertCorrelator() for _ in range(shards)]
    route = {}
    for i, (detector, subject, score, band, trace_id) in enumerate(events):
        idx = route.setdefault(subject, shard_index(subject, band, shards))
        split[idx].ingest(detector, 5.0,
                          Detection(subject=subject, score=score,
                                    reason=f"ev{i}"),
                          t=i * 0.01, trace_id=trace_id, seq=i + 1)
    probe = ShardedCorrelator(shards=shards)
    probe._shards = split
    _assert_identical(serial.alerts, probe.merge())

    # end-state probes agree too
    for detector in _DETECTORS:
        for subject in _SUBJECTS:
            assert facade.evidence_score(detector, subject) == \
                serial.evidence_score(detector, subject)
            a, b = (serial.open_alert(detector, subject),
                    facade.open_alert(detector, subject))
            assert (a is None) == (b is None)
            if a is not None:
                assert _alert_tuple(a) == _alert_tuple(b)


def test_storm_digest_sharded_equals_serial():
    events = alert_storm(5000, subjects=16, detectors=3, churn=0.1, seed=3)
    serial = run_storm(AlertCorrelator(), events)
    sharded = run_storm(ShardedCorrelator(shards=4), events)
    assert storm_digest(serial) == storm_digest(sharded)
    _assert_identical(serial.alerts, sharded.merge())


def test_trace_ids_update_path_does_not_recopy():
    """Satellite (a): evidence after an alert opens must not rebuild the
    trace_ids list — the alert shares it, and new ids keep arriving."""
    c = AlertCorrelator()
    det = Detection(subject="ap:evil", score=3.0, reason="spoof")
    alert = c.ingest("fingerprint", 5.0, det, t=0.0, trace_id=1)
    assert alert is None
    alert = c.ingest("fingerprint", 5.0, det, t=0.1, trace_id=2)
    assert alert is not None
    shared = alert.trace_ids
    for i in range(3, 8):
        assert c.ingest("fingerprint", 5.0, det, t=i * 0.1,
                        trace_id=i) is None
    # same list object throughout (O(1) update), ids accumulated in order
    assert alert.trace_ids is shared
    assert alert.trace_ids == [1, 2, 3, 4, 5, 6, 7]
    assert alert.count == 7 and alert.score == 21.0


def test_band_pins_subject_to_first_shard():
    """A subject roaming bands keeps accumulating on one shard."""
    c = ShardedCorrelator(shards=4)
    det = Detection(subject="ap:twin", score=2.0, reason="twin")
    c.ingest("fingerprint", 5.0, det, t=0.0, band="2g4")
    first = c.shard_of("ap:twin")
    c.ingest("fingerprint", 5.0, det, t=0.1, band="5g")
    alert = c.ingest("fingerprint", 5.0, det, t=0.2, band="5g")
    assert c.shard_of("ap:twin", "5g") == first
    assert alert is not None and alert.score == 6.0
    assert c.evidence_score("fingerprint", "ap:twin") == 6.0
    assert len(c.merge()) == 1


def test_max_evidence_bounds_map_and_counts_evictions():
    c = AlertCorrelator(max_evidence=8)
    for i in range(50):
        c.ingest("fingerprint", 1e9,
                 Detection(subject=f"churn:{i:03d}", score=1.0, reason="x"),
                 t=i * 0.01)
        assert c.evidence_size <= 8
    assert c.evicted == 42
    assert c.alerts == []


def test_eviction_never_drops_open_alerts():
    c = AlertCorrelator(max_evidence=4)
    hot = Detection(subject="ap:evil", score=10.0, reason="flood")
    alert = c.ingest("deauth-flood", 5.0, hot, t=0.0)
    assert alert is not None
    for i in range(20):
        c.ingest("deauth-flood", 5.0,
                 Detection(subject=f"churn:{i:03d}", score=0.1, reason="x"),
                 t=1.0 + i)
    # the alerted pair survived every eviction round and still updates
    assert c.open_alert("deauth-flood", "ap:evil") is alert
    c.ingest("deauth-flood", 5.0, hot, t=99.0)
    assert alert.count == 2 and alert.last_evidence_t == 99.0
    assert c.evidence_size <= 4


def test_sharded_max_evidence_is_per_shard():
    c = ShardedCorrelator(shards=2, max_evidence=4)
    for i in range(64):
        c.ingest("fingerprint", 1e9,
                 Detection(subject=f"churn:{i:03d}", score=1.0, reason="x"),
                 t=i * 0.01)
    assert c.evidence_size <= 2 * 4
    assert c.evicted == 64 - c.evidence_size


def test_shard_index_is_stable_and_in_range():
    # CRC-based: must not depend on PYTHONHASHSEED; pin a few goldens
    assert shard_index("ap:evil", "2g4", 4) == \
        shard_index("ap:evil", "2g4", 4)
    for shards in (1, 2, 4, 7):
        for subject in _SUBJECTS:
            for band in _BANDS:
                assert 0 <= shard_index(subject, band, shards) < shards


def test_constructor_validation():
    import pytest
    with pytest.raises(ValueError):
        AlertCorrelator(max_evidence=0)
    with pytest.raises(ValueError):
        ShardedCorrelator(shards=0)
