"""The ambient WIDS watch: radio-layer feed, zero perturbation."""

from repro.core.scenario import build_corp_scenario
from repro.wids.runtime import WidsWatch, active_wids, wids_watch


def test_active_wids_none_by_default():
    assert active_wids() is None


def test_wids_watch_installs_and_restores():
    with wids_watch() as outer:
        assert active_wids() is outer
        with wids_watch() as inner:
            assert active_wids() is inner
        assert active_wids() is outer  # nesting restores the previous
    assert active_wids() is None


def test_wids_watch_restores_on_exception():
    try:
        with wids_watch():
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert active_wids() is None


def test_watch_hears_the_rogue_world():
    with wids_watch() as watch:
        scenario = build_corp_scenario(seed=11, with_rogue=True)
        scenario.add_victim()
        scenario.sim.run_for(5.0)
    assert watch.frames_seen() > 0
    assert len(watch.feeds()) == 1  # one medium in this world
    alerts = watch.alerts()
    detectors = {a.detector for a in alerts}
    # the cloned-BSSID twin on channel 6 is unhideable
    assert {"fingerprint", "multichannel"} <= detectors
    # alerts are sorted by threshold-crossing time
    times = [a.t for a in alerts]
    assert times == sorted(times)


def test_watch_silent_on_benign_world():
    with wids_watch() as watch:
        scenario = build_corp_scenario(seed=11, with_rogue=False)
        scenario.add_victim()
        scenario.sim.run_for(5.0)
    assert watch.frames_seen() > 0
    assert watch.alerts() == []


def test_watch_capacity_bounds_each_feed():
    with wids_watch(capacity=16) as watch:
        scenario = build_corp_scenario(seed=11, with_rogue=True)
        scenario.sim.run_for(5.0)
    (_label, capture, engine) = watch.feeds()[0]
    assert len(capture) <= 16
    # the engine still saw every frame live, not just the retained tail
    assert engine.frames_seen == watch.frames_seen()
    assert engine.frames_seen > 16


def test_watch_threshold_overrides_flow_to_engines():
    watch = WidsWatch(thresholds={"multichannel": 1000.0})

    class FakeMedium:
        pass

    _label, _capture, engine = watch._feed_for(FakeMedium())
    by_name = {d.name: d.threshold for d in engine.detectors}
    assert by_name["multichannel"] == 1000.0


def test_watch_separates_media():
    watch = WidsWatch()

    class FakeMedium:
        pass

    m1, m2 = FakeMedium(), FakeMedium()
    label1, _, _ = watch._feed_for(m1)
    label2, _, _ = watch._feed_for(m2)
    assert label1 == "medium-0" and label2 == "medium-1"
    assert watch._feed_for(m1)[0] == "medium-0"  # stable per medium
    assert len(watch.feeds()) == 2
