"""The arms-race campaign: Pareto machinery + serial == parallel."""

import json

import pytest

from repro.telemetry.stream import JsonlWriter, replay
from repro.wids.armsrace import (ArmsRaceCampaign, ArmsRaceTrial,
                                 DEFAULT_POPULATION, EvasionGenome,
                                 ParetoScorecard, pareto_front)
from repro.wids.evaluation import Scorecard
from repro.obs.metrics import MetricsRegistry

# A tiny but representative population: the FP control, the naive corp
# rogue, and one RSN-downgrade posture — both world kinds exercised.
_POP = (
    EvasionGenome("benign", rogue=False),
    EvasionGenome("naive", beacon_jitter_s=0.03),
    EvasionGenome("downgrade-wpa2", rsn_downgrade="wpa2"),
)


# ---------------------------------------------------------------------------
# pareto_front units
# ---------------------------------------------------------------------------

def test_pareto_front_basic_dominance():
    points = [
        {"tpr": 1.0, "fpr": 0.0},   # dominates everything
        {"tpr": 0.5, "fpr": 0.0},   # dominated by 0
        {"tpr": 1.0, "fpr": 0.5},   # dominated by 0
    ]
    assert pareto_front(points, maximize=("tpr",), minimize=("fpr",)) == [0]


def test_pareto_front_incomparable_points_all_survive():
    points = [
        {"tpr": 0.9, "fpr": 0.2},
        {"tpr": 0.7, "fpr": 0.1},
        {"tpr": 1.0, "fpr": 0.9},
    ]
    assert pareto_front(points, maximize=("tpr",),
                        minimize=("fpr",)) == [0, 1, 2]


def test_pareto_front_none_is_worst():
    points = [
        {"tpr": 0.9, "mean_ttd_s": 0.5},
        {"tpr": 0.9, "mean_ttd_s": None},  # never detected: strictly worse
    ]
    assert pareto_front(points, maximize=("tpr",),
                        minimize=("mean_ttd_s",)) == [0]
    # ...and on a maximized objective too
    points = [{"v": None}, {"v": 1.0}]
    assert pareto_front(points, maximize=("v",)) == [1]


def test_pareto_front_duplicate_points_both_survive():
    points = [{"tpr": 0.5}, {"tpr": 0.5}]
    assert pareto_front(points, maximize=("tpr",)) == [0, 1]
    assert pareto_front([], maximize=("tpr",)) == []


def test_pareto_scorecard_report_and_json():
    defender = [
        {"detector": "fingerprint", "threshold": 2.0, "tpr": 1.0,
         "fpr": 0.0, "mean_ttd_s": 0.1},
        {"detector": "fingerprint", "threshold": 1.0, "tpr": 1.0,
         "fpr": 1.0, "mean_ttd_s": 0.1},
    ]
    attacker = [
        {"genome": "naive", "worlds": 4, "detection_rate": 1.0,
         "compromise_rate": 0.5, "mean_ttd_s": 0.2},
        {"genome": "ghost", "worlds": 4, "detection_rate": 0.0,
         "compromise_rate": 1.0, "mean_ttd_s": None},
    ]
    card = ParetoScorecard(defender, attacker,
                           Scorecard.from_registry(MetricsRegistry()))
    assert card.defender_front == [0]
    # ghost wins detection + compromise but has no ttd (None = worst for
    # an attacker maximizing time-to-detect): incomparable, both survive
    assert card.attacker_front == [0, 1]
    payload = card.to_json_dict()
    assert payload["defender"]["front"] == [0]
    assert payload["attacker"]["front"] == [0, 1]
    json.dumps(payload)  # must be JSON-clean
    text = card.report()
    assert "defender Pareto" in text and "attacker Pareto" in text
    assert "ghost" in text and "-" in text  # None ttd renders as "-"


# ---------------------------------------------------------------------------
# trials and the campaign
# ---------------------------------------------------------------------------

def test_trial_payload_shape_and_determinism():
    trial = ArmsRaceTrial(EvasionGenome("naive", beacon_jitter_s=0.03))
    a, b = trial(1234), trial(1234)
    assert a == b  # same seed, same world, same payload
    assert a["genome"] == "naive" and a["rogue"] is True
    assert a["frames"] > 0
    assert set(a["crossings"])  # every registered detector appears
    reg = MetricsRegistry.from_snapshot(a["metrics"])
    assert reg.subtree("wids.eval")


def test_default_population_names_are_unique():
    names = [g.name for g in DEFAULT_POPULATION]
    assert len(names) == len(set(names))
    assert "benign" in names  # the FP control is always raced


def _run(workers, jsonl=None):
    writer = JsonlWriter(jsonl) if jsonl else None
    try:
        return ArmsRaceCampaign(
            population=_POP, generations=2, trials_per_gen=2,
            seed_base=1000, workers=workers, window=2,
            writer=writer).run()
    finally:
        if writer is not None:
            writer.close()


def test_campaign_serial_equals_parallel(tmp_path):
    """The fleet merge law, end to end: workers=1 == workers=2."""
    serial = _run(1, jsonl=str(tmp_path / "serial.jsonl"))
    parallel = _run(2, jsonl=str(tmp_path / "parallel.jsonl"))
    assert serial.to_json_dict() == parallel.to_json_dict()
    # and the telemetry streams replay to the same merged registry
    serial_replay = replay(str(tmp_path / "serial.jsonl"))
    parallel_replay = replay(str(tmp_path / "parallel.jsonl"))
    assert serial_replay.snapshot() == parallel_replay.snapshot()
    assert serial_replay.snapshot() == serial.merged_metrics.snapshot()


def test_campaign_shape_and_retuning(tmp_path):
    result = _run(1)
    assert result.worlds_run == len(_POP) * 2 * 2
    assert len(result.generations) == 2
    # trajectory: initial defaults + one retune per generation
    assert len(result.thresholds_trajectory) == 3
    from repro.wids.detectors import DETECTORS
    defaults = {n: c.default_threshold for n, c in DETECTORS.items()}
    assert result.thresholds_trajectory[0] == defaults
    for thresholds in result.thresholds_trajectory:
        for det, thr in thresholds.items():
            assert thr in DETECTORS[det].SWEEP
    # per-genome generation stats are rates in [0, 1]
    for record in result.generations:
        for stats in record["per_genome"].values():
            assert 0.0 <= stats["detection_rate"] <= 1.0
            assert 0.0 <= stats["compromise_rate"] <= 1.0
    # the benign control is excluded from the attacker race
    racing = {p["genome"] for p in result.pareto.attacker}
    assert racing == {"naive", "downgrade-wpa2"}
    json.dumps(result.to_json_dict())


def test_campaign_validation():
    with pytest.raises(ValueError):
        ArmsRaceCampaign(generations=0)
    with pytest.raises(ValueError):
        ArmsRaceCampaign(trials_per_gen=0)
