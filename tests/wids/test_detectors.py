"""Unit tests for the streaming detector bank (synthetic captures)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dot11.capture import CapturedFrame, FrameCapture
from repro.dot11.frames import (make_ack, make_beacon, make_data,
                                make_deauth, make_probe_response)
from repro.dot11.mac import BROADCAST, MacAddress
from repro.dot11.seqctl import SEQ_MODULO, SequenceCounter
from repro.wids.detectors import (DETECTORS, BeaconFingerprintDetector,
                                  BeaconJitterDetector, DeauthFloodDetector,
                                  Detector, MultiChannelSsidDetector,
                                  SeqCtlAnomalyDetector, SeqCtlMonitor,
                                  default_detectors, get_detector_class,
                                  register)

AP = MacAddress("aa:bb:cc:dd:00:01")
STA = MacAddress("00:02:2d:00:00:07")


def _cap(frame, t=0.0, ch=1):
    return CapturedFrame(time=t, channel=ch, rssi_dbm=-50.0, frame=frame)


def _detections(detector, caps):
    out = []
    for cap in caps:
        out.extend(detector.observe(cap))
    return out


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

def test_registry_names_and_order():
    # Registration order is load order — determinism depends on it.
    assert list(DETECTORS) == ["seqctl", "fingerprint", "multichannel",
                               "beacon-jitter", "deauth-flood",
                               "rsn-mismatch", "unexpected-CSA"]


def test_register_rejects_duplicates_and_anonymous():
    class Nameless(Detector):
        pass

    with pytest.raises(ValueError):
        register(Nameless)

    class Clash(Detector):
        name = "seqctl"

    with pytest.raises(ValueError):
        register(Clash)
    assert DETECTORS["seqctl"] is SeqCtlAnomalyDetector  # untouched


def test_get_detector_class():
    assert get_detector_class("fingerprint") is BeaconFingerprintDetector
    with pytest.raises(KeyError):
        get_detector_class("nope")


def test_default_detectors_respects_threshold_overrides():
    bank = default_detectors({"seqctl": 99.0})
    by_name = {d.name: d for d in bank}
    assert by_name["seqctl"].threshold == 99.0
    assert by_name["fingerprint"].threshold == \
        BeaconFingerprintDetector.default_threshold


def test_every_detector_sweeps_its_default_threshold():
    for name, cls in DETECTORS.items():
        assert cls.default_threshold in cls.SWEEP, name


# ----------------------------------------------------------------------
# seqctl (streaming)
# ----------------------------------------------------------------------

def test_seqctl_healthy_stream_is_silent():
    det = SeqCtlAnomalyDetector()
    caps = [_cap(make_data(STA, AP, AP, b"x", to_ds=True, seq=i), t=i * 0.01)
            for i in range(200)]
    assert _detections(det, caps) == []


def test_seqctl_large_gap_detected():
    det = SeqCtlAnomalyDetector()
    caps = [_cap(make_data(STA, AP, AP, b"x", to_ds=True, seq=10)),
            _cap(make_data(STA, AP, AP, b"x", to_ds=True, seq=2000))]
    found = _detections(det, caps)
    assert len(found) == 1
    assert found[0].subject == str(STA)
    assert "gap" in found[0].reason


def test_seqctl_ignores_acks_and_duplicates():
    det = SeqCtlAnomalyDetector()
    caps = [_cap(make_data(STA, AP, AP, b"x", to_ds=True, seq=5)),
            _cap(make_ack(STA)),  # no seq number — must not reset state
            _cap(make_data(STA, AP, AP, b"x", to_ds=True, seq=5)),  # dup
            _cap(make_data(STA, AP, AP, b"x", to_ds=True, seq=6))]
    assert _detections(det, caps) == []


def test_seqctl_tracks_transmitters_independently():
    det = SeqCtlAnomalyDetector()
    other = MacAddress("00:02:2d:00:00:08")
    caps = [_cap(make_data(STA, AP, AP, b"x", to_ds=True, seq=100)),
            _cap(make_data(other, AP, AP, b"x", to_ds=True, seq=3000)),
            _cap(make_data(STA, AP, AP, b"x", to_ds=True, seq=101)),
            _cap(make_data(other, AP, AP, b"x", to_ds=True, seq=3001))]
    assert _detections(det, caps) == []


# ----------------------------------------------------------------------
# satellite: SequenceCounter.gap + wrap-around properties (hypothesis)
# ----------------------------------------------------------------------

@given(st.integers(0, SEQ_MODULO - 1), st.integers(0, SEQ_MODULO - 1))
def test_gap_is_modular_distance(a, b):
    gap = SequenceCounter.gap(a, b)
    assert gap == (b - a) % SEQ_MODULO
    assert 0 <= gap < SEQ_MODULO
    # advancing a by the gap always lands exactly on b
    assert (a + gap) % SEQ_MODULO == b


@given(st.integers(0, SEQ_MODULO - 1), st.integers(0, SEQ_MODULO - 1))
def test_gap_of_successor_is_one(start, step_to):
    assert SequenceCounter.gap(step_to, (step_to + 1) % SEQ_MODULO) == 1
    assert SequenceCounter.gap(start, start) == 0


@given(start=st.integers(0, SEQ_MODULO - 1),
       length=st.integers(2, 300),
       losses=st.lists(st.integers(1, 4), max_size=20))
def test_healthy_transmitter_crossing_wraparound_is_never_flagged(
        start, length, losses):
    """A single radio crossing the 4096 modulus must not look spoofed.

    The counter is modular, so the stream ... 4094, 4095, 0, 1 ... has
    gap 1 throughout; light frame loss (the monitor missing a handful)
    only produces small gaps.  Neither the streaming detector nor the
    offline monitor may count any of it as anomalous.
    """
    seqs = []
    seq = start
    loss_iter = iter(losses)
    for i in range(length):
        seqs.append(seq)
        step = next(loss_iter, 1) if i % 7 == 3 else 1
        seq = (seq + step) % SEQ_MODULO

    caps = [_cap(make_data(STA, AP, AP, b"x", to_ds=True, seq=s), t=i * 0.01)
            for i, s in enumerate(seqs)]

    streaming = SeqCtlAnomalyDetector()
    assert _detections(streaming, caps) == []

    capture = FrameCapture()
    for cap in caps:
        capture.add(cap)
    verdict = SeqCtlMonitor(capture).analyze_transmitter(STA)
    assert verdict.anomalies == 0
    assert not verdict.spoofed


@given(start=st.integers(0, SEQ_MODULO - 1))
def test_interleaved_counters_flagged_even_across_wraparound(start):
    """Two radios under one address stay detectable wherever they sit."""
    a, b = start, (start + 2048) % SEQ_MODULO
    seqs = []
    for i in range(40):
        seqs.append(a)
        a = (a + 1) % SEQ_MODULO
        seqs.append(b)
        b = (b + 1) % SEQ_MODULO
    caps = [_cap(make_data(AP, STA, AP, b"x", from_ds=True, seq=s), t=i * 0.01)
            for i, s in enumerate(seqs)]
    streaming = SeqCtlAnomalyDetector()
    assert len(_detections(streaming, caps)) > 10


# ----------------------------------------------------------------------
# fingerprint
# ----------------------------------------------------------------------

def test_fingerprint_consistent_advertisement_is_silent():
    det = BeaconFingerprintDetector()
    caps = [_cap(make_beacon(AP, "CORP", 1, privacy=True, seq=i), t=i * 0.1)
            for i in range(10)]
    assert _detections(det, caps) == []


def test_fingerprint_conflicting_channel_ie_detected():
    det = BeaconFingerprintDetector()
    caps = [_cap(make_beacon(AP, "CORP", 1, privacy=True), ch=1),
            _cap(make_beacon(AP, "CORP", 6, privacy=True), ch=6)]  # clone
    found = _detections(det, caps)
    assert len(found) == 1
    assert found[0].subject == f"CORP/{AP}"
    assert "conflicting advertisement" in found[0].reason


def test_fingerprint_conflicting_capability_detected():
    det = BeaconFingerprintDetector()
    caps = [_cap(make_beacon(AP, "CORP", 1, privacy=True)),
            _cap(make_beacon(AP, "CORP", 1, privacy=False))]  # WEP bit off
    assert len(_detections(det, caps)) == 1


def test_fingerprint_distinct_bssids_do_not_conflict():
    det = BeaconFingerprintDetector()
    ap2 = MacAddress("aa:bb:cc:dd:00:02")
    caps = [_cap(make_beacon(AP, "CORP", 1)),
            _cap(make_beacon(ap2, "CORP", 6))]  # a second, honest AP
    assert _detections(det, caps) == []


def test_fingerprint_counts_probe_responses():
    det = BeaconFingerprintDetector()
    caps = [_cap(make_beacon(AP, "CORP", 1)),
            _cap(make_probe_response(AP, STA, "CORP", 6))]
    assert len(_detections(det, caps)) == 1


def test_fingerprint_ignores_data_frames():
    det = BeaconFingerprintDetector()
    caps = [_cap(make_data(STA, AP, AP, b"x", to_ds=True))]
    assert _detections(det, caps) == []


# ----------------------------------------------------------------------
# multichannel
# ----------------------------------------------------------------------

def test_multichannel_same_air_channel_is_silent():
    det = MultiChannelSsidDetector()
    caps = [_cap(make_beacon(AP, "CORP", 1), ch=1, t=0.1),
            _cap(make_beacon(AP, "CORP", 1), ch=1, t=0.2)]
    assert _detections(det, caps) == []


def test_multichannel_two_air_channels_detected():
    det = MultiChannelSsidDetector()
    caps = [_cap(make_beacon(AP, "CORP", 1), ch=1),
            _cap(make_beacon(AP, "CORP", 1), ch=6)]  # forged IE, real air ch
    found = _detections(det, caps)
    assert len(found) == 1
    assert found[0].subject == str(AP)
    assert "two radios" in found[0].reason


def test_multichannel_ignores_client_frames():
    # Scanning clients transmit on every channel legitimately.
    det = MultiChannelSsidDetector()
    caps = [_cap(make_data(STA, AP, AP, b"x", to_ds=True), ch=1),
            _cap(make_data(STA, AP, AP, b"x", to_ds=True), ch=6)]
    assert _detections(det, caps) == []


# ----------------------------------------------------------------------
# beacon-jitter
# ----------------------------------------------------------------------

_TBTT = 100 * 1024e-6  # 100 TU in seconds


def test_jitter_crystal_cadence_is_silent():
    det = BeaconJitterDetector()
    caps = [_cap(make_beacon(AP, "CORP", 1), t=i * _TBTT) for i in range(50)]
    assert _detections(det, caps) == []


def test_jitter_skipped_beacons_still_silent():
    # A missed beacon is an integer multiple of the interval, not jitter.
    det = BeaconJitterDetector()
    times = [0.0, _TBTT, 4 * _TBTT, 5 * _TBTT]
    caps = [_cap(make_beacon(AP, "CORP", 1), t=t) for t in times]
    assert _detections(det, caps) == []


def test_jitter_sloppy_scheduler_detected():
    det = BeaconJitterDetector()
    caps = [_cap(make_beacon(AP, "CORP", 1), t=0.0),
            _cap(make_beacon(AP, "CORP", 1), t=_TBTT + 0.030)]  # 30 ms late
    found = _detections(det, caps)
    assert len(found) == 1
    assert "cadence" in found[0].reason


def test_jitter_tracks_channels_separately():
    # The same (cloned) BSSID on two channels is two beacon schedulers;
    # each is judged against its own cadence (multichannel handles the
    # cloning itself).
    det = BeaconJitterDetector()
    caps = [_cap(make_beacon(AP, "CORP", 1), t=0.0, ch=1),
            _cap(make_beacon(AP, "CORP", 6), t=0.05, ch=6),
            _cap(make_beacon(AP, "CORP", 1), t=_TBTT, ch=1),
            _cap(make_beacon(AP, "CORP", 6), t=0.05 + _TBTT, ch=6)]
    assert _detections(det, caps) == []


# ----------------------------------------------------------------------
# deauth-flood
# ----------------------------------------------------------------------

def test_deauth_occasional_deauth_is_silent():
    det = DeauthFloodDetector()
    caps = [_cap(make_deauth(AP, STA, AP), t=t) for t in (0.0, 60.0, 120.0)]
    assert _detections(det, caps) == []


def test_deauth_flood_detected_past_count():
    det = DeauthFloodDetector()  # flood_count=8 in window_s=5.0
    caps = [_cap(make_deauth(AP, BROADCAST, AP), t=i * 0.1)
            for i in range(12)]
    found = _detections(det, caps)
    assert len(found) == 12 - 8  # every frame past the 8th is evidence
    assert all(f.subject == str(AP) for f in found)


def test_deauth_window_prunes_old_frames():
    det = DeauthFloodDetector(window_s=5.0, flood_count=8)
    # 8 deauths, then a long quiet gap, then 8 more: never >8 in-window.
    caps = [_cap(make_deauth(AP, STA, AP), t=i * 0.1) for i in range(8)]
    caps += [_cap(make_deauth(AP, STA, AP), t=100.0 + i * 0.1)
             for i in range(8)]
    assert _detections(det, caps) == []


# ----------------------------------------------------------------------
# the retired deprecation shim (tombstone since PR 10)
# ----------------------------------------------------------------------

def test_defense_detection_tombstone_raises_with_clear_message():
    import importlib
    import sys

    sys.modules.pop("repro.defense.detection", None)
    with pytest.raises(ImportError) as exc:
        importlib.import_module("repro.defense.detection")
    message = str(exc.value)
    assert "removed" in message
    assert "repro.wids.detectors" in message
    # package-level re-exports still resolve to the migrated classes
    from repro.defense import SeqCtlMonitor as pkg_monitor
    from repro.defense import SpoofVerdict as pkg_verdict
    from repro.wids import detectors as home
    assert pkg_monitor is home.SeqCtlMonitor
    assert pkg_verdict is home.SpoofVerdict
