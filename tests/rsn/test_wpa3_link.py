"""WPA3/RSN over the air: SAE association, PMF enforcement, downgrades."""

from repro.crypto.wpa_kdf import psk_from_passphrase
from repro.dot11.mac import MacAddress
from repro.hosts.access_point import AccessPoint
from repro.hosts.station import Station
from repro.netstack.ethernet import Switch
from repro.radio.medium import Medium
from repro.radio.propagation import Position
from repro.rsn.ie import RsnIe
from repro.sim.kernel import Simulator
from tests.conftest import make_wired_host

BSSID = MacAddress("aa:bb:cc:dd:00:01")
PASSPHRASE = "office-passphrase"
PSK = psk_from_passphrase(PASSPHRASE, "CORP")


def build_bss(seed=1, *, rsn, sae_password=None, wpa_psk=None):
    sim = Simulator(seed=seed)
    medium = Medium(sim)
    lan = Switch(sim, "lan")
    ap = AccessPoint(sim, medium, "ap", bssid=BSSID, ssid="CORP",
                     channel=1, position=Position(0, 0), rsn=rsn,
                     sae_password=sae_password, wpa_psk=wpa_psk)
    ap.attach_uplink(lan)
    server = make_wired_host(sim, lan, "server", "10.0.0.1")
    return sim, medium, ap, server


def connect_victim(sim, medium, *, rsn, sae_password=None, wpa_psk=None,
                   rsn_strict=True):
    sta = Station(sim, "sta", medium, Position(10, 0))
    sta.connect("CORP", rsn=rsn, sae_password=sae_password,
                wpa_psk=wpa_psk, rsn_strict=rsn_strict, ip="10.0.0.23")
    sim.run_for(5.0)
    return sta


def test_wpa3_sae_association_end_to_end():
    sim, medium, ap, _ = build_bss(rsn=RsnIe.wpa3(),
                                   sae_password=PASSPHRASE)
    sta = connect_victim(sim, medium, rsn=RsnIe.wpa3(),
                         sae_password=PASSPHRASE)
    assert sta.wlan.associated
    assert sta.wlan.link_ready
    assert sta.wlan.negotiated_akm == "SAE"
    assert sta.wlan.pmf_active
    assert sta.wlan.link_encrypted
    rtts = []
    sta.ping("10.0.0.1", on_reply=rtts.append)
    sim.run_for(3.0)
    assert len(rtts) == 1


def test_wrong_sae_password_never_associates():
    sim, medium, ap, _ = build_bss(rsn=RsnIe.wpa3(),
                                   sae_password=PASSPHRASE)
    sta = connect_victim(sim, medium, rsn=RsnIe.wpa3(),
                         sae_password="not-the-passphrase")
    assert not sta.wlan.associated
    assert not sta.wlan.link_ready


def test_wpa2_rsn_association_uses_psk_akm():
    sim, medium, ap, _ = build_bss(rsn=RsnIe.wpa2(), wpa_psk=PSK)
    sta = connect_victim(sim, medium, rsn=RsnIe.wpa2(), wpa_psk=PSK)
    assert sta.wlan.associated and sta.wlan.link_ready
    assert sta.wlan.negotiated_akm == "PSK"
    assert not sta.wlan.pmf_active


def test_transition_ap_serves_both_generations():
    sim, medium, ap, _ = build_bss(rsn=RsnIe.wpa3_transition(),
                                   sae_password=PASSPHRASE, wpa_psk=PSK)
    modern = Station(sim, "modern", medium, Position(10, 0))
    modern.connect("CORP", rsn=RsnIe.wpa3_transition(),
                   sae_password=PASSPHRASE, wpa_psk=PSK, ip="10.0.0.23")
    legacy = Station(sim, "legacy", medium, Position(-10, 0))
    legacy.connect("CORP", rsn=RsnIe.wpa2(), wpa_psk=PSK, ip="10.0.0.24")
    sim.run_for(6.0)
    assert modern.wlan.negotiated_akm == "SAE"
    assert legacy.wlan.negotiated_akm == "PSK"
    assert modern.wlan.link_ready and legacy.wlan.link_ready


def test_strict_rsn_client_refuses_open_ap():
    sim = Simulator(seed=7)
    medium = Medium(sim)
    AccessPoint(sim, medium, "ap", bssid=BSSID, ssid="CORP", channel=1,
                position=Position(0, 0))  # open, no RSN
    sta = connect_victim(sim, medium, rsn=RsnIe.wpa3(),
                         sae_password=PASSPHRASE, rsn_strict=True)
    assert not sta.wlan.associated


def test_non_strict_client_falls_back_to_open():
    sim = Simulator(seed=8)
    medium = Medium(sim)
    AccessPoint(sim, medium, "ap", bssid=BSSID, ssid="CORP", channel=1,
                position=Position(0, 0))
    sta = connect_victim(sim, medium, rsn=RsnIe.wpa3(),
                         sae_password=PASSPHRASE, rsn_strict=False)
    assert sta.wlan.associated
    assert sta.wlan.negotiated_akm is None
    assert not sta.wlan.link_encrypted


def test_legitimate_pmf_deauth_still_honored():
    """PMF rejects forgeries, not the AP's own (MME-carrying) kicks."""
    sim, medium, ap, _ = build_bss(rsn=RsnIe.wpa3(),
                                   sae_password=PASSPHRASE)
    sta = connect_victim(sim, medium, rsn=RsnIe.wpa3(),
                         sae_password=PASSPHRASE)
    assert sta.wlan.associated and sta.wlan.pmf_active
    ap.core.deauth_client(sta.wlan.mac)
    sim.run_for(0.5)
    assert sta.wlan.pmf_discards == 0
    assert not sta.wlan.link_ready  # the kick landed


def test_forged_deauth_discarded_under_pmf():
    from repro.attacks.deauth import DeauthAttacker
    sim, medium, ap, _ = build_bss(rsn=RsnIe.wpa3(),
                                   sae_password=PASSPHRASE)
    sta = connect_victim(sim, medium, rsn=RsnIe.wpa3(),
                         sae_password=PASSPHRASE)
    attacker = DeauthAttacker(sim, medium, Position(12, 0),
                              ap_bssid=BSSID, channel=1,
                              target=sta.wlan.mac, rate_hz=10.0)
    attacker.start()
    sim.run_for(3.0)
    attacker.stop()
    assert sta.wlan.pmf_discards > 0
    assert sta.wlan.associated and sta.wlan.link_ready
    assert sta.wlan.associations == 1
