"""PMF (802.11w-style) unit tests: forged deauths fail the MME check."""

from repro.dot11.frames import ReasonCode, make_deauth, make_disassoc
from repro.dot11.mac import MacAddress
from repro.rsn.pmf import Mme, derive_igtk, mme_for_frame, verify_mgmt_mic

AP = MacAddress("aa:bb:cc:dd:00:01")
STA = MacAddress("02:00:00:00:00:17")
KCK = bytes(range(16))
IGTK = derive_igtk(KCK)


def protected_deauth(igtk=IGTK, ipn=1, *, reason=ReasonCode.UNSPECIFIED):
    frame = make_deauth(AP, STA, AP, reason=reason, seq=5)
    mme = mme_for_frame(frame, igtk, ipn)
    return frame.with_body(frame.body + mme.to_ie().pack())


def test_igtk_is_deterministic_and_key_dependent():
    assert derive_igtk(KCK) == IGTK
    assert derive_igtk(bytes(16)) != IGTK
    assert len(IGTK) == 16


def test_valid_mme_verifies_and_returns_ipn():
    assert verify_mgmt_mic(protected_deauth(ipn=7), IGTK, 6) == 7


def test_replayed_ipn_rejected():
    frame = protected_deauth(ipn=7)
    assert verify_mgmt_mic(frame, IGTK, 7) is None   # equal = replay
    assert verify_mgmt_mic(frame, IGTK, 12) is None  # stale


def test_missing_mme_is_a_forgery():
    bare = make_deauth(AP, STA, AP, reason=ReasonCode.UNSPECIFIED, seq=5)
    assert verify_mgmt_mic(bare, IGTK, 0) is None


def test_wrong_key_rejected():
    frame = protected_deauth(igtk=derive_igtk(b"\xee" * 16), ipn=3)
    assert verify_mgmt_mic(frame, IGTK, 0) is None


def test_tampered_reason_breaks_the_mic():
    frame = protected_deauth(ipn=3, reason=ReasonCode.UNSPECIFIED)
    body = bytearray(frame.body)
    body[0] = int(ReasonCode.PREV_AUTH_EXPIRED)
    assert verify_mgmt_mic(frame.with_body(bytes(body)), IGTK, 0) is None


def test_malformed_mme_rejected_not_raised():
    frame = make_deauth(AP, STA, AP, reason=ReasonCode.UNSPECIFIED, seq=5)
    # an MME-id IE with a short body parses as garbage, not an exception
    bad = frame.with_body(frame.body + b"\x4c\x04" + bytes(4))
    assert verify_mgmt_mic(bad, IGTK, 0) is None


def test_disassoc_protected_the_same_way():
    frame = make_disassoc(AP, STA, AP, reason=ReasonCode.UNSPECIFIED, seq=6)
    mme = mme_for_frame(frame, IGTK, 2)
    protected = frame.with_body(frame.body + mme.to_ie().pack())
    assert verify_mgmt_mic(protected, IGTK, 1) == 2


def test_mic_binds_the_addresses():
    # Same body, same key, different target STA: the MIC must differ,
    # otherwise one captured kick could be replayed at every client.
    frame = make_deauth(AP, STA, AP, reason=ReasonCode.UNSPECIFIED, seq=5)
    other = make_deauth(AP, MacAddress("02:00:00:00:00:18"), AP,
                        reason=ReasonCode.UNSPECIFIED, seq=5)
    assert (mme_for_frame(frame, IGTK, 1).mic
            != mme_for_frame(other, IGTK, 1).mic)


def test_mme_wire_roundtrip():
    mme = Mme(key_id=4, ipn=(1 << 48) - 1, mic=b"\xab" * 8)
    assert Mme.parse(mme.pack()) == mme
