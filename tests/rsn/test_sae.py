"""SAE handshake unit tests: mutual authentication without a PSK on the air."""

import pytest

from repro.crypto.dh import DH_GROUP_1536, DH_GROUP_TOY
from repro.dot11.mac import MacAddress
from repro.rsn.sae import SAE_GROUP_IDS, SaeError, SaeParty, sae_container_ie, sae_payload
from repro.sim.rng import SimRandom

STA = MacAddress("02:00:00:00:00:17")
AP = MacAddress("aa:bb:cc:dd:00:01")


def handshake(pw_sta="hunter2", pw_ap="hunter2", *, group=DH_GROUP_TOY):
    sta = SaeParty(pw_sta, STA, AP, SimRandom(11), group=group)
    ap = SaeParty(pw_ap, AP, STA, SimRandom(12), group=group)
    sta.process_commit(ap.commit_bytes())
    ap.process_commit(sta.commit_bytes())
    return sta, ap


def test_same_password_yields_shared_pmk():
    sta, ap = handshake()
    assert ap.process_confirm(sta.confirm_bytes())
    assert sta.process_confirm(ap.confirm_bytes())
    assert sta.confirmed and ap.confirmed
    assert sta.pmk == ap.pmk
    assert len(sta.pmk) == 32


def test_full_group_handshake():
    sta, ap = handshake(group=DH_GROUP_1536)
    assert ap.process_confirm(sta.confirm_bytes())
    assert sta.process_confirm(ap.confirm_bytes())
    assert sta.pmk == ap.pmk


def test_wrong_password_fails_at_confirm_not_commit():
    # Commits exchange fine (they carry no password proof); the
    # confirm is where the passwords must match.
    sta, ap = handshake(pw_sta="hunter2", pw_ap="not-hunter2")
    assert not ap.process_confirm(sta.confirm_bytes())
    assert not sta.process_confirm(ap.confirm_bytes())
    assert not ap.confirmed
    assert sta.pmk != ap.pmk  # each derives its own, never agreed


def test_fresh_rng_yields_fresh_pmk():
    first_sta, _ = handshake()
    second = SaeParty("hunter2", STA, AP, SimRandom(99), group=DH_GROUP_TOY)
    peer = SaeParty("hunter2", AP, STA, SimRandom(100), group=DH_GROUP_TOY)
    second.process_commit(peer.commit_bytes())
    assert second.pmk != first_sta.pmk


def test_group_mismatch_rejected():
    sta = SaeParty("pw", STA, AP, SimRandom(1), group=DH_GROUP_TOY)
    ap = SaeParty("pw", AP, STA, SimRandom(2), group=DH_GROUP_1536)
    with pytest.raises(SaeError, match="group mismatch"):
        # toy32 commit is far shorter than modp1536's, so length trips
        # first on one side; test the direction where lengths align
        # with the group-id check by padding to the expected size.
        ap.process_commit(sta.commit_bytes()
                          + bytes(2 + 192 - len(sta.commit_bytes())))


def test_wrong_length_commit_rejected():
    sta, _ = handshake()
    fresh = SaeParty("pw", AP, STA, SimRandom(3), group=DH_GROUP_TOY)
    with pytest.raises(SaeError, match="wrong length"):
        fresh.process_commit(sta.commit_bytes() + b"\x00")


def test_degenerate_element_rejected():
    fresh = SaeParty("pw", AP, STA, SimRandom(4), group=DH_GROUP_TOY)
    group_id = SAE_GROUP_IDS[DH_GROUP_TOY.name].to_bytes(2, "little")
    element_len = (DH_GROUP_TOY.p.bit_length() + 7) // 8
    for bad in (0, 1, DH_GROUP_TOY.p - 1):
        with pytest.raises(SaeError, match="degenerate"):
            fresh.process_commit(group_id + bad.to_bytes(element_len, "big"))


def test_confirm_before_commit_raises():
    fresh = SaeParty("pw", STA, AP, SimRandom(5), group=DH_GROUP_TOY)
    with pytest.raises(SaeError, match="before processing"):
        fresh.confirm_bytes()
    assert fresh.process_confirm(b"\x00" * 12) is False


def test_truncated_confirm_rejected():
    sta, ap = handshake()
    assert not ap.process_confirm(sta.confirm_bytes()[:-1])


def test_container_ie_roundtrip():
    payload = b"\x05\x00" + bytes(16)
    ie = sae_container_ie(payload)
    assert sae_payload([ie]) == payload
    assert sae_payload([]) is None


def test_unknown_group_has_no_wire_id():
    from repro.crypto.dh import DhGroup
    weird = DhGroup(p=23, g=5, name="toy5bit")
    with pytest.raises(SaeError, match="no wire id"):
        SaeParty("pw", STA, AP, SimRandom(6), group=weird)
