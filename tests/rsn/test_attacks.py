"""DowngradeRogueAP / CsaLureAttack behavior and experiment registry wiring."""

import pytest

from repro.crypto.wpa_kdf import psk_from_passphrase
from repro.dot11.mac import MacAddress
from repro.hosts.access_point import AccessPoint
from repro.hosts.station import Station
from repro.radio.medium import Medium
from repro.radio.propagation import Position
from repro.rsn.attacks import CsaLureAttack, DowngradeRogueAP
from repro.rsn.ie import RsnIe
from repro.sim.errors import ConfigurationError
from repro.sim.kernel import Simulator

BSSID = MacAddress("aa:bb:cc:dd:00:01")
PASSPHRASE = "office-passphrase"
PSK = psk_from_passphrase(PASSPHRASE, "CORP")


def test_unknown_mode_rejected():
    sim = Simulator(seed=1)
    medium = Medium(sim)
    with pytest.raises(ConfigurationError):
        DowngradeRogueAP(sim, medium, Position(0, 0), ssid="CORP",
                         bssid=BSSID, channel=6, mode="wep")


def test_wpa2_mode_requires_psk():
    sim = Simulator(seed=1)
    medium = Medium(sim)
    with pytest.raises(ConfigurationError):
        DowngradeRogueAP(sim, medium, Position(0, 0), ssid="CORP",
                         bssid=BSSID, channel=6, mode="wpa2")


def test_wpa2_rogue_captures_a_transition_client():
    """The core coercion: a WPA3-transition client alone with the
    downgrade twin negotiates PSK and completes the crackable 4-way."""
    sim = Simulator(seed=2)
    medium = Medium(sim)
    rogue = DowngradeRogueAP(sim, medium, Position(0, 0), ssid="CORP",
                             bssid=BSSID, channel=6, mode="wpa2", psk=PSK)
    sta = Station(sim, "victim", medium, Position(8, 0))
    sta.connect("CORP", rsn=RsnIe.wpa3_transition(),
                sae_password=PASSPHRASE, wpa_psk=PSK, ip="10.0.0.23")
    sim.run_for(5.0)
    assert sta.wlan.associated
    assert sta.wlan.negotiated_akm == "PSK"  # coerced off SAE
    assert not sta.wlan.pmf_active
    assert sta.wlan.mac in rogue.victims


def test_open_rogue_only_catches_non_strict_clients():
    sim = Simulator(seed=3)
    medium = Medium(sim)
    rogue = DowngradeRogueAP(sim, medium, Position(0, 0), ssid="CORP",
                             bssid=BSSID, channel=6, mode="open")
    strict = Station(sim, "strict", medium, Position(8, 0))
    strict.connect("CORP", rsn=RsnIe.wpa3_transition(),
                   sae_password=PASSPHRASE, wpa_psk=PSK, ip="10.0.0.23")
    sloppy = Station(sim, "sloppy", medium, Position(-8, 0))
    sloppy.connect("CORP", rsn=RsnIe.wpa3_transition(),
                   sae_password=PASSPHRASE, wpa_psk=PSK, ip="10.0.0.24",
                   rsn_strict=False)
    sim.run_for(5.0)
    assert not strict.wlan.associated
    assert sloppy.wlan.associated
    assert not sloppy.wlan.link_encrypted


def test_csa_lure_herds_a_wpa3_victim():
    sim = Simulator(seed=4)
    medium = Medium(sim)
    AccessPoint(sim, medium, "ap", bssid=BSSID, ssid="CORP", channel=1,
                position=Position(0, 0), rsn=RsnIe.wpa3(),
                sae_password=PASSPHRASE)
    sta = Station(sim, "victim", medium, Position(10, 0))
    sta.connect("CORP", rsn=RsnIe.wpa3(), sae_password=PASSPHRASE,
                ip="10.0.0.23")
    sim.run_for(5.0)
    assert sta.wlan.associated and sta.wlan.channel == 1

    lure = CsaLureAttack(sim, medium, Position(12, 0), clone_bssid=BSSID,
                         ssid="CORP", legit_channel=1, lure_channel=6,
                         rsn=RsnIe.wpa3(), rate_hz=10.0)
    lure.start()
    sim.run_for(3.0)
    lure.stop()
    assert lure.frames_injected > 0
    assert sta.wlan.csa_switches >= 1  # obeyed the forged announcement
    # With no twin waiting on channel 6 the victim eventually rescans
    # and recovers — the E-CSA experiment adds the twin to hold it.
    assert sta.wlan.associated


def test_csa_lure_needs_no_keys():
    """The point of the attack: forged beacons carry the CSA without
    any knowledge of the network's SAE password."""
    sim = Simulator(seed=5)
    medium = Medium(sim)
    lure = CsaLureAttack(sim, medium, Position(0, 0), clone_bssid=BSSID,
                         ssid="CORP", legit_channel=1, lure_channel=6,
                         rsn=RsnIe.wpa3(), rate_hz=20.0)
    lure.start()
    sim.run_for(1.0)
    lure.stop()
    injected = lure.frames_injected
    assert injected > 10
    sim.run_for(1.0)
    assert lure.frames_injected == injected  # stop() really stops


def test_experiments_registered():
    from repro.core.registry import get_experiment
    for exp_id in ("E-DOWNGRADE", "E-CSA", "E-PMF"):
        spec = get_experiment(exp_id)
        assert callable(spec.runner)
