"""Determinism pins for the RSN experiments.

Same contract as the FIG2 goldens: each experiment is a pure function
of its seed, and running a campaign of them serially or across worker
processes yields bit-identical merged results.  The trial value is a
CRC over the *entire* canonical result dict — flags, world summaries,
and scorecards — so any nondeterminism anywhere in the payload breaks
the equality, not just in the headline flag.
"""

import json
from zlib import crc32

from repro.core.campaign import run_trials
from repro.rsn.experiment import exp_csa_lure, exp_downgrade, exp_pmf_flood


def _digest(result) -> float:
    return float(crc32(json.dumps(result, sort_keys=True,
                                  default=str).encode()))


def pmf_trial(seed):
    return _digest(exp_pmf_flood(seed=seed))


def downgrade_trial(seed):
    return _digest(exp_downgrade(seed=seed))


def csa_trial(seed):
    return _digest(exp_csa_lure(seed=seed))


def test_experiments_pure_functions_of_seed():
    assert exp_pmf_flood(seed=5) == exp_pmf_flood(seed=5)
    # and the seed actually matters (worlds are not secretly static)
    assert _digest(exp_pmf_flood(seed=5)) != _digest(exp_pmf_flood(seed=6))


def test_pmf_campaign_identical_serial_vs_parallel():
    serial = run_trials(2, pmf_trial, seed_base=500)
    parallel = run_trials(2, pmf_trial, seed_base=500, workers=2)
    assert serial.values == parallel.values


def test_downgrade_campaign_identical_serial_vs_parallel():
    serial = run_trials(2, downgrade_trial, seed_base=500)
    parallel = run_trials(2, downgrade_trial, seed_base=500, workers=2)
    assert serial.values == parallel.values


def test_csa_campaign_identical_serial_vs_parallel():
    serial = run_trials(2, csa_trial, seed_base=500)
    parallel = run_trials(2, csa_trial, seed_base=500, workers=2)
    assert serial.values == parallel.values
