"""RSN negotiation matrix: strongest mutual AKM, PMF gating, cipher choice."""

import pytest

from repro.rsn.ie import (
    AkmSuite,
    CipherSuite,
    RsnIe,
    negotiate,
)

WPA2 = RsnIe.wpa2()
WPA3 = RsnIe.wpa3()
TRANSITION = RsnIe.wpa3_transition()
SAE_NO_PMF = RsnIe(akms=(int(AkmSuite.SAE),))


def test_like_for_like():
    for posture, akm in ((WPA2, AkmSuite.PSK), (WPA3, AkmSuite.SAE)):
        sel = negotiate(posture, posture)
        assert sel is not None
        assert sel.akm == int(akm)
        assert sel.pairwise == int(CipherSuite.CCMP)


def test_transition_pair_picks_sae():
    sel = negotiate(TRANSITION, TRANSITION)
    assert sel.akm == int(AkmSuite.SAE)
    assert sel.akm_name == "SAE"


def test_transition_ap_meets_wpa2_only_client():
    sel = negotiate(TRANSITION, WPA2)
    assert sel is not None
    assert sel.akm == int(AkmSuite.PSK)
    assert not sel.pmf  # WPA2-only client has no MFPC


def test_wpa3_only_ap_rejects_wpa2_only_client():
    # WPA3-only means PMF required; a plain WPA2 client can't do it
    # and shares no AKM either.
    assert negotiate(WPA3, WPA2) is None
    assert negotiate(WPA2, WPA3) is None


def test_missing_ie_means_no_rsn():
    assert negotiate(None, WPA3) is None
    assert negotiate(WPA3, None) is None
    assert negotiate(None, None) is None


def test_pmf_required_vs_incapable_fails():
    require = RsnIe(akms=(int(AkmSuite.SAE),), pmf_capable=True,
                    pmf_required=True)
    assert negotiate(require, SAE_NO_PMF) is None
    assert negotiate(SAE_NO_PMF, require) is None


def test_pmf_optional_vs_incapable_negotiates_without_pmf():
    capable = RsnIe(akms=(int(AkmSuite.SAE),), pmf_capable=True)
    sel = negotiate(capable, SAE_NO_PMF)
    assert sel is not None
    assert not sel.pmf


def test_pmf_on_only_when_both_capable():
    capable = RsnIe(akms=(int(AkmSuite.SAE),), pmf_capable=True)
    assert negotiate(capable, capable).pmf
    assert negotiate(WPA3, WPA3).pmf


def test_ccmp_preferred_over_tkip():
    mixed = RsnIe(pairwise=(int(CipherSuite.TKIP), int(CipherSuite.CCMP)),
                  akms=(int(AkmSuite.PSK),))
    sel = negotiate(mixed, mixed)
    assert sel.pairwise == int(CipherSuite.CCMP)


def test_tkip_only_intersection():
    tkip_only = RsnIe(pairwise=(int(CipherSuite.TKIP),),
                      akms=(int(AkmSuite.PSK),))
    both = RsnIe(pairwise=(int(CipherSuite.CCMP), int(CipherSuite.TKIP)),
                 akms=(int(AkmSuite.PSK),))
    assert negotiate(tkip_only, both).pairwise == int(CipherSuite.TKIP)


def test_no_common_cipher_fails():
    ccmp_only = RsnIe(pairwise=(int(CipherSuite.CCMP),),
                      akms=(int(AkmSuite.PSK),))
    tkip_only = RsnIe(pairwise=(int(CipherSuite.TKIP),),
                      akms=(int(AkmSuite.PSK),))
    assert negotiate(ccmp_only, tkip_only) is None


def test_version_mismatch_fails():
    future = RsnIe(akms=(int(AkmSuite.PSK),), version=2)
    assert negotiate(future, WPA2) is None


@pytest.mark.parametrize("ap,sta,expected_akm", [
    (TRANSITION, WPA3, AkmSuite.SAE),
    (TRANSITION, SAE_NO_PMF, AkmSuite.SAE),
    (WPA2, TRANSITION, AkmSuite.PSK),
])
def test_strongest_mutual_akm(ap, sta, expected_akm):
    assert negotiate(ap, sta).akm == int(expected_akm)
