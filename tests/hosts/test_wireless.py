"""Wireless host behaviour: scanning, association, WEP policy, AP bridge."""

import pytest

from repro.crypto.wep import WepKey
from repro.dot11.frames import AuthAlgorithm
from repro.dot11.mac import MacAddress
from repro.hosts.access_point import AccessPoint
from repro.hosts.ap_core import MacFilter
from repro.hosts.nic import StaState, first_heard_policy
from repro.hosts.station import Station
from repro.netstack.ethernet import Switch
from repro.radio.medium import Medium
from repro.radio.propagation import Position
from repro.sim.kernel import Simulator
from tests.conftest import make_wired_host

BSSID = MacAddress("aa:bb:cc:dd:00:01")
WEP = WepKey.from_passphrase("SECRET")


def build_bss(seed=1, *, wep=None, mac_filter=None, auth_algorithm=0, channel=1):
    sim = Simulator(seed=seed)
    medium = Medium(sim)
    lan = Switch(sim, "lan")
    ap = AccessPoint(sim, medium, "ap", bssid=BSSID, ssid="CORP",
                     channel=channel, position=Position(0, 0), wep_key=wep,
                     mac_filter=mac_filter, auth_algorithm=auth_algorithm)
    ap.attach_uplink(lan)
    server = make_wired_host(sim, lan, "server", "10.0.0.1")
    return sim, medium, ap, lan, server


def test_open_association_and_ping():
    sim, medium, ap, lan, server = build_bss()
    sta = Station(sim, "sta", medium, Position(10, 0))
    sta.connect("CORP", ip="10.0.0.23")
    sim.run_for(4.0)
    assert sta.wlan.associated
    assert sta.associated_bssid == BSSID
    rtts = []
    sta.ping("10.0.0.1", on_reply=rtts.append)
    sim.run_for(2.0)
    assert len(rtts) == 1


def test_wep_association_and_data():
    sim, medium, ap, lan, server = build_bss(wep=WEP)
    sta = Station(sim, "sta", medium, Position(10, 0))
    sta.connect("CORP", wep_key=WEP, ip="10.0.0.23")
    sim.run_for(4.0)
    assert sta.wlan.associated
    rtts = []
    sta.ping("10.0.0.1", on_reply=rtts.append)
    sim.run_for(2.0)
    assert len(rtts) == 1


def test_client_without_key_does_not_join_privacy_network():
    sim, medium, ap, lan, _ = build_bss(wep=WEP)
    sta = Station(sim, "nokey", medium, Position(10, 0))
    sta.connect("CORP", wep_key=None, ip="10.0.0.30")
    sim.run_for(6.0)
    # Privacy-capability mismatch: the scan filter never selects the BSS.
    assert not sta.wlan.associated


def test_wrong_wep_key_data_dropped_by_ap():
    sim, medium, ap, lan, server = build_bss(wep=WEP)
    sta = Station(sim, "wrongkey", medium, Position(10, 0))
    sta.connect("CORP", wep_key=WepKey(b"WRONG"), ip="10.0.0.31")
    sim.run_for(4.0)
    assert sta.wlan.associated  # open-auth assoc succeeds...
    rtts = []
    sta.ping("10.0.0.1", on_reply=rtts.append)
    sim.run_for(3.0)
    assert rtts == []           # ...but data never decrypts
    assert ap.core.wep_drop_count > 0


def test_shared_key_auth_succeeds_with_key():
    sim, medium, ap, lan, _ = build_bss(wep=WEP, auth_algorithm=AuthAlgorithm.SHARED_KEY)
    sta = Station(sim, "sta", medium, Position(10, 0))
    sta.connect("CORP", wep_key=WEP, ip="10.0.0.23",
                auth_algorithm=AuthAlgorithm.SHARED_KEY)
    sim.run_for(5.0)
    assert sta.wlan.associated


def test_shared_key_auth_rejects_wrong_key():
    sim, medium, ap, lan, _ = build_bss(wep=WEP, auth_algorithm=AuthAlgorithm.SHARED_KEY)
    sta = Station(sim, "sta", medium, Position(10, 0))
    sta.connect("CORP", wep_key=WepKey(b"WRONG"), ip="10.0.0.23",
                auth_algorithm=AuthAlgorithm.SHARED_KEY)
    sim.run_for(5.0)
    assert not sta.wlan.associated


def test_mac_filter_blocks_unknown_station():
    allowed = MacAddress("00:02:2d:00:00:aa")
    sim, medium, ap, lan, _ = build_bss(mac_filter=MacFilter([allowed]))
    sta = Station(sim, "blocked", medium, Position(10, 0))
    sta.connect("CORP", ip="10.0.0.23")
    sim.run_for(5.0)
    assert not sta.wlan.associated
    assert ap.core.mac_filter.denials > 0


def test_mac_filter_admits_listed_station():
    mac = MacAddress("00:02:2d:00:00:aa")
    sim, medium, ap, lan, _ = build_bss(mac_filter=MacFilter([mac]))
    sta = Station(sim, "ok", medium, Position(10, 0), mac=mac)
    sta.connect("CORP", ip="10.0.0.23")
    sim.run_for(5.0)
    assert sta.wlan.associated


def test_ap_deauth_kicks_client_and_client_rejoins():
    sim, medium, ap, lan, _ = build_bss()
    sta = Station(sim, "sta", medium, Position(10, 0))
    sta.connect("CORP", ip="10.0.0.23")
    sim.run_for(4.0)
    assert sta.wlan.associated
    ap.core.deauth_client(sta.wlan.mac)
    sim.run_for(0.2)
    assert sta.wlan.deauths_received == 1
    sim.run_for(10.0)
    assert sta.wlan.associated  # auto-reconnect brought it back
    assert sta.wlan.associations >= 2


def test_leave_stays_idle():
    sim, medium, ap, lan, _ = build_bss()
    sta = Station(sim, "sta", medium, Position(10, 0))
    sta.connect("CORP", ip="10.0.0.23")
    sim.run_for(4.0)
    sta.wlan.leave()
    sim.run_for(10.0)
    assert sta.wlan.state is StaState.IDLE


def test_strongest_rssi_policy_picks_nearest():
    sim = Simulator(seed=9)
    medium = Medium(sim)
    lan = Switch(sim, "lan")
    near = AccessPoint(sim, medium, "near", bssid=MacAddress("aa:00:00:00:00:01"),
                       ssid="NET", channel=1, position=Position(5, 0))
    far = AccessPoint(sim, medium, "far", bssid=MacAddress("aa:00:00:00:00:02"),
                      ssid="NET", channel=11, position=Position(60, 0))
    near.attach_uplink(lan)
    far.attach_uplink(lan)
    sta = Station(sim, "sta", medium, Position(0, 0))
    sta.connect("NET", ip="10.0.0.5")
    sim.run_for(5.0)
    assert sta.associated_bssid == near.bssid


def test_first_heard_policy_ablation():
    sim = Simulator(seed=9)
    medium = Medium(sim)
    a = AccessPoint(sim, medium, "ch1", bssid=MacAddress("aa:00:00:00:00:01"),
                    ssid="NET", channel=1, position=Position(50, 0))
    b = AccessPoint(sim, medium, "ch11", bssid=MacAddress("aa:00:00:00:00:02"),
                    ssid="NET", channel=11, position=Position(5, 0))
    sta = Station(sim, "sta", medium, Position(0, 0))
    sta.connect("NET", ip="10.0.0.5", policy=first_heard_policy)
    sim.run_for(5.0)
    # Channel 1 is scanned first, so the far ch-1 AP wins despite RSSI.
    assert sta.associated_bssid == a.bssid


def test_client_to_client_relay_through_ap():
    sim, medium, ap, lan, _ = build_bss()
    sta1 = Station(sim, "sta1", medium, Position(10, 0))
    sta2 = Station(sim, "sta2", medium, Position(-10, 0))
    sta1.connect("CORP", ip="10.0.0.41")
    sta2.connect("CORP", ip="10.0.0.42")
    sim.run_for(5.0)
    rtts = []
    sta1.ping("10.0.0.42", on_reply=rtts.append)
    sim.run_for(3.0)
    assert len(rtts) == 1
    assert ap.core.data_relayed > 0


def test_beacon_loss_triggers_rescan():
    sim, medium, ap, lan, _ = build_bss()
    sta = Station(sim, "sta", medium, Position(10, 0))
    sta.connect("CORP", ip="10.0.0.23")
    sim.run_for(4.0)
    assert sta.wlan.associated
    ap.shutdown()
    sim.run_for(5.0)
    assert not sta.wlan.associated
    assert sim.trace.count("dot11.beacon_loss") >= 1
