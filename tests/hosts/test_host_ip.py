"""Host IP path: ARP resolution, local delivery, forwarding, sockets."""

import pytest

from repro.netstack.addressing import IPv4Address, Network
from repro.netstack.ethernet import Switch
from repro.netstack.netfilter import Chain, Rule, TargetDrop
from repro.sim.errors import NetworkError, SocketError
from repro.sim.kernel import Simulator
from tests.conftest import make_wired_host


def test_ping_between_wired_hosts(wired_pair):
    sim, a, b = wired_pair
    rtts = []
    a.ping("10.0.0.2", on_reply=rtts.append)
    sim.run_for(2.0)
    assert len(rtts) == 1
    assert 0.0 < rtts[0] < 0.01


def test_arp_resolution_populates_tables(wired_pair):
    sim, a, b = wired_pair
    a.ping("10.0.0.2")
    sim.run_for(1.0)
    assert a.arp_tables["eth0"].lookup(IPv4Address("10.0.0.2"), sim.now) == \
        b.interfaces["eth0"].mac
    # The peer learned us from our request.
    assert b.arp_tables["eth0"].lookup(IPv4Address("10.0.0.1"), sim.now) == \
        a.interfaces["eth0"].mac


def test_arp_timeout_drops_queued_packets(wired_pair):
    sim, a, _ = wired_pair
    a.ping("10.0.0.99")  # nobody there
    sim.run_for(5.0)
    assert a.packets_dropped >= 1
    assert sim.trace.count("arp.timeout") == 1


def test_no_route_drop(wired_pair):
    sim, a, _ = wired_pair
    with pytest.raises(NetworkError):
        a.ping("192.168.55.1")  # no default route


def test_forwarding_requires_ip_forward():
    sim = Simulator(seed=2)
    lan1, lan2 = Switch(sim, "lan1"), Switch(sim, "lan2")
    router = make_wired_host(sim, lan1, "router", "10.0.1.1")
    # second interface
    from repro.dot11.mac import MacAddress
    from repro.hosts.nic import WiredInterface
    iface2 = WiredInterface("eth1", MacAddress.random(sim.rng.substream("m2")))
    iface2.attach_segment(lan2)
    router.add_interface(iface2)
    iface2.configure_ip("10.0.2.1")

    a = make_wired_host(sim, lan1, "a", "10.0.1.5")
    a.routing.add_default(IPv4Address("10.0.1.1"), "eth0")
    b = make_wired_host(sim, lan2, "b", "10.0.2.5")
    b.routing.add_default(IPv4Address("10.0.2.1"), "eth0")

    rtts = []
    a.ping("10.0.2.5", on_reply=rtts.append)
    sim.run_for(3.0)
    assert rtts == []  # router not forwarding yet

    router.ip_forward = True
    a.ping("10.0.2.5", on_reply=rtts.append)
    sim.run_for(3.0)
    assert len(rtts) == 1
    assert router.packets_forwarded >= 2


def test_input_chain_drop(wired_pair):
    sim, a, b = wired_pair
    b.netfilter.append(Chain.INPUT, Rule(target=TargetDrop(), proto="icmp"))
    rtts = []
    a.ping("10.0.0.2", on_reply=rtts.append)
    sim.run_for(2.0)
    assert rtts == []
    assert b.packets_dropped >= 1


def test_udp_socket_exchange(wired_pair):
    sim, a, b = wired_pair
    got = []
    server = b.udp_socket(5000)
    server.on_datagram = lambda p, ip, port: got.append((p, str(ip), port))
    client = a.udp_socket()
    client.sendto(b"hello udp", "10.0.0.2", 5000)
    sim.run_for(1.0)
    assert got and got[0][0] == b"hello udp"
    assert got[0][1] == "10.0.0.1"


def test_udp_port_conflict(wired_pair):
    _, a, _ = wired_pair
    a.udp_socket(6000)
    with pytest.raises(SocketError):
        a.udp_socket(6000)


def test_udp_socket_close_unbinds(wired_pair):
    sim, a, b = wired_pair
    sock = b.udp_socket(6001)
    sock.close()
    b.udp_socket(6001)  # rebindable
    with pytest.raises(SocketError):
        sock.sendto(b"x", "10.0.0.1", 1)


def test_tcp_connect_refused_when_no_listener(wired_pair):
    sim, a, b = wired_pair
    conn = a.tcp_connect("10.0.0.2", 8080)
    resets = []
    conn.on_reset = lambda: resets.append(1)
    sim.run_for(2.0)
    assert resets == [1]
    assert conn.closed


def test_tcp_listener_accepts_and_serves(wired_pair):
    sim, a, b = wired_pair
    echoes = []

    def on_conn(conn):
        conn.on_data = lambda d: conn.send(d.upper())

    b.tcp_listen(7000, on_conn)
    client = a.tcp_connect("10.0.0.2", 7000)
    client.on_data = echoes.append
    client.on_established = lambda: client.send(b"shout")
    sim.run_for(3.0)
    assert echoes == [b"SHOUT"]


def test_tcp_listen_port_conflict(wired_pair):
    _, _, b = wired_pair
    b.tcp_listen(7001, lambda c: None)
    with pytest.raises(SocketError):
        b.tcp_listen(7001, lambda c: None)


def test_reap_closed_connections(wired_pair):
    sim, a, b = wired_pair
    b.tcp_listen(7002, lambda c: c.close())
    conn = a.tcp_connect("10.0.0.2", 7002)
    conn.on_close = lambda: conn.close()
    sim.run_for(10.0)
    assert a.reap_closed_connections() >= 1


def test_ephemeral_ports_unique(wired_pair):
    _, a, _ = wired_pair
    ports = {a.ephemeral_port() for _ in range(100)}
    assert len(ports) == 100


def test_capture_records_directions(wired_pair):
    sim, a, b = wired_pair
    cap = a.enable_capture()
    a.ping("10.0.0.2")
    sim.run_for(1.0)
    assert cap.count(direction="out") >= 1
    assert cap.count(direction="in") >= 1


def test_broadcast_udp_requires_via_iface(wired_pair):
    sim, a, b = wired_pair
    sock = a.udp_socket()
    with pytest.raises(NetworkError):
        sock.sendto(b"x", "255.255.255.255", 9)
    got = []
    server = b.udp_socket(9)
    server.on_datagram = lambda p, ip, port: got.append(p)
    sock.sendto(b"bcast", "255.255.255.255", 9, via_iface="eth0")
    sim.run_for(1.0)
    assert got == [b"bcast"]
