"""DNS/DHCP services, resolver behaviour, and the LinuxBox front-end."""

import pytest

from repro.hosts.linuxconf import LinuxBox
from repro.hosts.services import (
    DhcpClientService,
    DhcpServerService,
    DnsResolver,
    DnsServerService,
    UdpEchoService,
)
from repro.netstack.addressing import IPv4Address, Network
from repro.netstack.dhcp import LeasePool
from repro.netstack.dns import DnsZone
from repro.netstack.ethernet import Switch
from repro.netstack.netfilter import Chain, TargetDnat
from repro.sim.errors import ConfigurationError
from repro.sim.kernel import Simulator
from tests.conftest import make_wired_host


def test_udp_echo_service(wired_pair):
    sim, a, b = wired_pair
    echo = UdpEchoService(b, port=7)
    got = []
    sock = a.udp_socket()
    sock.on_datagram = lambda p, ip, port: got.append(p)
    sock.sendto(b"marco", "10.0.0.2", 7)
    sim.run_for(1.0)
    assert got == [b"marco"]
    assert echo.echoed == 1


def test_dns_server_and_resolver(wired_pair):
    sim, client_host, server_host = wired_pair
    zone = DnsZone({"www.corp.example": "198.51.100.80"})
    DnsServerService(server_host, zone)
    resolver = DnsResolver(client_host, "10.0.0.2")
    answers = []
    resolver.resolve("www.corp.example", answers.append)
    resolver.resolve("nonexistent.example", answers.append)
    sim.run_for(15.0)
    assert IPv4Address("198.51.100.80") in answers
    assert None in answers


def test_dns_resolver_caches(wired_pair):
    sim, client_host, server_host = wired_pair
    service = DnsServerService(server_host, DnsZone({"a.example": "1.1.1.1"}))
    resolver = DnsResolver(client_host, "10.0.0.2")
    answers = []
    resolver.resolve("a.example", answers.append)
    sim.run_for(2.0)
    resolver.resolve("a.example", answers.append)
    sim.run_for(2.0)
    assert len(answers) == 2
    assert service.queries == 1  # second answer came from cache


def test_dns_server_answer_hook_lies(wired_pair):
    sim, client_host, server_host = wired_pair
    service = DnsServerService(server_host, DnsZone({"bank.example": "1.2.3.4"}))
    service.answer_hook = lambda name, real: IPv4Address("6.6.6.6")
    resolver = DnsResolver(client_host, "10.0.0.2")
    answers = []
    resolver.resolve("bank.example", answers.append)
    sim.run_for(2.0)
    assert answers == [IPv4Address("6.6.6.6")]


def test_dhcp_full_exchange():
    sim = Simulator(seed=4)
    lan = Switch(sim, "lan")
    server = make_wired_host(sim, lan, "dhcpd", "192.168.7.1")
    DhcpServerService(server, "eth0", LeasePool(Network("192.168.7.0/24")),
                      gateway="192.168.7.1", dns_server="192.168.7.1")
    from repro.dot11.mac import MacAddress
    from repro.hosts.host import Host
    from repro.hosts.nic import WiredInterface
    client = Host(sim, "laptop")
    iface = WiredInterface("eth0", MacAddress.random(sim.rng.substream("m")))
    iface.attach_segment(lan)
    client.add_interface(iface)
    leases = []
    dhcp = DhcpClientService(client, "eth0", on_configured=leases.append)
    dhcp.start()
    sim.run_for(5.0)
    assert dhcp.lease is not None
    assert iface.ip is not None and iface.ip in Network("192.168.7.0/24")
    assert client.routing.lookup(IPv4Address("8.8.8.8")).gateway == "192.168.7.1"
    assert leases and leases[0].dns_server == "192.168.7.1"


# ----------------------------------------------------------------------
# LinuxBox
# ----------------------------------------------------------------------

def test_linuxbox_ip_forward(wired_pair):
    _, a, _ = wired_pair
    box = LinuxBox(a)
    assert a.ip_forward is False
    box.sh("echo 1 > /proc/sys/net/ipv4/ip_forward")
    assert a.ip_forward is True
    box.sh("echo 0 > /proc/sys/net/ipv4/ip_forward")
    assert a.ip_forward is False


def test_linuxbox_ifconfig_and_route(wired_pair):
    _, a, _ = wired_pair
    box = LinuxBox(a)
    box.sh("ifconfig eth0 10.0.0.24 netmask 255.255.255.0")
    assert a.interfaces["eth0"].ip == "10.0.0.24"
    box.sh("route add -host 10.0.0.23 dev eth0")
    box.sh("route add default gw 10.0.0.1")
    assert a.routing.lookup(IPv4Address("10.0.0.23")).network.prefix_len == 32
    assert a.routing.lookup(IPv4Address("8.8.8.8")).gateway == "10.0.0.1"


def test_linuxbox_paper_iptables_command(wired_pair):
    """The verbatim §4.1 command parses into the right rule."""
    _, a, _ = wired_pair
    box = LinuxBox(a)
    box.sh("iptables -t nat -A PREROUTING -p tcp -d 198.51.100.80 "
           "--dport 80 -j DNAT --to 10.0.0.24:10101")
    rules = a.netfilter.chains[Chain.PREROUTING]
    assert len(rules) == 1
    rule = rules[0]
    assert isinstance(rule.target, TargetDnat)
    assert rule.target.to_ip == "10.0.0.24"
    assert rule.target.to_port == 10101
    assert rule.proto == "tcp" and rule.dport == 80
    assert IPv4Address("198.51.100.80") in rule.dst


def test_linuxbox_iptables_other_targets(wired_pair):
    _, a, _ = wired_pair
    box = LinuxBox(a)
    box.sh("iptables -A FORWARD -p tcp --dport 23 -j DROP")
    box.sh("iptables -A INPUT -j ACCEPT")
    box.sh("iptables -t nat -A POSTROUTING -o eth0 -j SNAT --to 1.2.3.4")
    box.sh("iptables -t nat -A PREROUTING -p tcp --dport 80 -j REDIRECT --to-port 3128")
    assert len(a.netfilter.chains[Chain.FORWARD]) == 1
    assert len(a.netfilter.chains[Chain.POSTROUTING]) == 1
    assert len(a.netfilter.chains[Chain.PREROUTING]) == 1


def test_linuxbox_rejects_unknown(wired_pair):
    _, a, _ = wired_pair
    box = LinuxBox(a)
    with pytest.raises(ConfigurationError):
        box.sh("rm -rf /")
    with pytest.raises(ConfigurationError):
        box.sh("route del default")
    with pytest.raises(ConfigurationError):
        box.sh("ifconfig nosuch 1.2.3.4")
    with pytest.raises(ConfigurationError):
        box.sh("iptables -A FORWARD -j MASQUERADE")


def test_linuxbox_history(wired_pair):
    _, a, _ = wired_pair
    box = LinuxBox(a)
    box.sh("echo 1 > /proc/sys/net/ipv4/ip_forward")
    assert box.history == ["echo 1 > /proc/sys/net/ipv4/ip_forward"]
