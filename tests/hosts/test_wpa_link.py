"""WPA-PSK over the air: handshake, TKIP data path, and the §2.2 gap."""

import pytest

from repro.crypto.wpa_kdf import psk_from_passphrase
from repro.dot11.mac import MacAddress
from repro.hosts.access_point import AccessPoint
from repro.hosts.station import Station
from repro.netstack.ethernet import Switch
from repro.radio.medium import Medium
from repro.radio.propagation import Position
from repro.sim.errors import ConfigurationError
from repro.sim.kernel import Simulator
from tests.conftest import make_wired_host

BSSID = MacAddress("aa:bb:cc:dd:00:01")
PSK = psk_from_passphrase("office-passphrase", "CORP")


def build_wpa_bss(seed=1, *, psk=PSK):
    sim = Simulator(seed=seed)
    medium = Medium(sim)
    lan = Switch(sim, "lan")
    ap = AccessPoint(sim, medium, "ap", bssid=BSSID, ssid="CORP",
                     channel=1, position=Position(0, 0), wpa_psk=psk)
    ap.attach_uplink(lan)
    server = make_wired_host(sim, lan, "server", "10.0.0.1")
    return sim, medium, ap, server


def test_wep_and_wpa_mutually_exclusive():
    from repro.crypto.wep import WepKey
    sim = Simulator(seed=1)
    medium = Medium(sim)
    with pytest.raises(ConfigurationError):
        AccessPoint(sim, medium, "ap", bssid=BSSID, ssid="X", channel=1,
                    position=Position(0, 0),
                    wep_key=WepKey(b"12345"), wpa_psk=PSK)


def test_wpa_handshake_over_the_air():
    sim, medium, ap, server = build_wpa_bss()
    sta = Station(sim, "sta", medium, Position(10, 0))
    sta.connect("CORP", wpa_psk=PSK, ip="10.0.0.23")
    sim.run_for(5.0)
    assert sta.wlan.associated
    assert sta.wlan.link_ready           # 4-way completed
    assert ap.core.wpa_established(sta.wlan.mac)


def test_wpa_data_flows_tkip_protected():
    sim, medium, ap, server = build_wpa_bss()
    sta = Station(sim, "sta", medium, Position(10, 0))
    sta.connect("CORP", wpa_psk=PSK, ip="10.0.0.23")
    sim.run_for(5.0)
    rtts = []
    sta.ping("10.0.0.1", on_reply=rtts.append)
    sim.run_for(3.0)
    assert len(rtts) == 1
    # TCP too.
    got = []
    server.tcp_listen(80, lambda c: setattr(c, "on_data",
                                            lambda d: c.send(d.upper())))
    conn = sta.tcp_connect("10.0.0.1", 80)
    conn.on_data = got.append
    conn.on_established = lambda: conn.send(b"wpa works")
    sim.run_for(5.0)
    assert got == [b"WPA WORKS"]


def test_wpa_frames_are_actually_protected():
    """A monitor sees only TKIP ciphertext for the data exchange."""
    from repro.attacks.sniffer import MonitorSniffer
    from repro.dot11.frames import FrameSubtype
    sim, medium, ap, server = build_wpa_bss()
    sniffer = MonitorSniffer(sim, medium, Position(12, 3))
    sta = Station(sim, "sta", medium, Position(10, 0))
    sta.connect("CORP", wpa_psk=PSK, ip="10.0.0.23")
    sim.run_for(5.0)
    sock = sta.udp_socket()
    for _ in range(5):
        sock.sendto(b"super secret payload", "10.0.0.1", 9999)
    sim.run_for(2.0)
    protected = list(sniffer.capture.select(subtype=FrameSubtype.DATA,
                                            protected=True))
    assert protected
    assert all(b"super secret payload" not in c.frame.body for c in protected)


def test_wpa_wrong_psk_client_never_gets_link():
    sim, medium, ap, server = build_wpa_bss()
    sta = Station(sim, "intruder", medium, Position(10, 0))
    sta.connect("CORP", wpa_psk=psk_from_passphrase("wrong", "CORP"),
                ip="10.0.0.66")
    sim.run_for(8.0)
    assert sta.wlan.associated        # open assoc succeeds...
    assert not sta.wlan.link_ready    # ...but the 4-way never completes
    rtts = []
    sta.ping("10.0.0.1", on_reply=rtts.append)
    sim.run_for(3.0)
    assert rtts == []


def test_wpa_keyless_rogue_cannot_capture_client():
    """Over the air: the client refuses a rogue that can't prove PSK
    knowledge at message 3."""
    sim, medium, ap, server = build_wpa_bss()
    rogue_ap = AccessPoint(sim, medium, "rogue", bssid=BSSID, ssid="CORP",
                           channel=6, position=Position(18, 0),
                           wpa_psk=psk_from_passphrase("guessed", "CORP"))
    sta = Station(sim, "sta", medium, Position(16, 0))  # nearer the rogue
    sta.connect("CORP", wpa_psk=PSK, ip="10.0.0.23")
    sim.run_for(10.0)
    # The station may associate to the rogue at 802.11 level, but the
    # handshake fails and no data link ever forms with it.
    if sta.associated_channel == 6:
        assert not sta.wlan.link_ready
    assert not rogue_ap.core.wpa_established(sta.wlan.mac)


def test_wpa_insider_rogue_captures_client():
    """§2.2 over the air: a rogue holding the PSK (any valid client)
    completes the handshake and carries the victim's traffic."""
    sim, medium, ap, server = build_wpa_bss()
    rogue_ap = AccessPoint(sim, medium, "rogue", bssid=BSSID, ssid="CORP",
                           channel=6, position=Position(18, 0), wpa_psk=PSK)
    sta = Station(sim, "sta", medium, Position(16, 0))
    sta.connect("CORP", wpa_psk=PSK, ip="10.0.0.23")
    sim.run_for(8.0)
    assert sta.associated_channel == 6
    assert sta.wlan.link_ready
    assert rogue_ap.core.wpa_established(sta.wlan.mac)


def test_wpa_rekey_on_reassociation():
    """Each association derives fresh nonces → fresh PTK."""
    sim, medium, ap, server = build_wpa_bss()
    sta = Station(sim, "sta", medium, Position(10, 0))
    sta.connect("CORP", wpa_psk=PSK, ip="10.0.0.23")
    sim.run_for(5.0)
    first_keys = sta.wlan._wpa.keys.tk
    ap.core.deauth_client(sta.wlan.mac)
    sim.run_for(10.0)
    assert sta.wlan.link_ready
    assert sta.wlan._wpa.keys.tk != first_keys


def test_full_download_mitm_through_wpa_insider_rogue():
    """The whole §4 attack on a WPA-PSK network, staged by an insider:
    §2.2's warning made concrete end to end."""
    from repro.core.scenario import build_corp_scenario, EVIL_IP
    from repro.attacks.rogue_ap import RogueAccessPoint
    from repro.radio.propagation import Position as Pos

    scenario = build_corp_scenario(seed=401, wep=False, with_rogue=False)
    # Rebuild the BSS as WPA: swap the AP's crypto to PSK.
    scenario.ap.shutdown()
    from repro.hosts.access_point import AccessPoint
    wpa_ap = AccessPoint(scenario.sim, scenario.medium, "corp-wpa-ap",
                         bssid=BSSID, ssid="CORP", channel=1,
                         position=Pos(0, 0), wpa_psk=PSK)
    wpa_ap.attach_uplink(scenario.lan)
    scenario.ap = wpa_ap

    rogue = RogueAccessPoint(scenario.sim, scenario.medium, Pos(38, 0),
                             clone_bssid=BSSID, legit_channel=1,
                             rogue_channel=6, wpa_psk=PSK)
    rogue.start()
    scenario.rogue = rogue
    scenario.sim.run_for(4.0)
    assert rogue.upstream_associated
    assert rogue.eth1.link_ready

    scenario.arm_download_mitm()
    victim = Station(scenario.sim, "victim", scenario.medium, Pos(40, 0))
    victim.connect("CORP", wpa_psk=PSK, ip="10.0.0.23", gateway="10.0.0.1")
    scenario.sim.run_for(6.0)
    assert victim.associated_channel == 6
    assert victim.wlan.link_ready

    outcome = scenario.run_download_experiment(victim)
    assert outcome.md5_ok is True
    assert outcome.compromised  # WPA changed nothing against the insider
