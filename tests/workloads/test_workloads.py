"""Traffic generators and the roaming model."""

import pytest

from repro.core.scenario import build_corp_scenario
from repro.sim.rng import SimRandom
from repro.workloads.roaming import RoamingOutcome, simulate_roaming_client
from repro.workloads.traffic import BulkTcpTransfer, CbrUdpStream
from repro.workloads.web import BrowsingWorkload


@pytest.fixture(scope="module")
def traffic_world():
    scenario = build_corp_scenario(seed=111, with_rogue=False)
    victim = scenario.add_victim()
    scenario.sim.run_for(5.0)
    return scenario, victim


def test_cbr_udp_stream_delivery(traffic_world):
    scenario, victim = traffic_world
    stream = CbrUdpStream(victim, scenario.target_server, "198.51.100.80",
                          port=9001, rate_pps=50.0)
    stream.start(duration_s=4.0)
    scenario.sim.run_for(8.0)
    stream.stop()
    assert stream.sent >= 150
    assert stream.delivery_ratio > 0.95
    assert stream.duplicates == 0
    assert 0 < stream.latency_quantile(0.5) < 0.1


def test_bulk_tcp_goodput(traffic_world):
    scenario, victim = traffic_world
    xfer = BulkTcpTransfer(victim, scenario.target_server, "198.51.100.80",
                           port=9102, total_bytes=100_000)
    xfer.start()
    scenario.sim.run_for(60.0)
    assert xfer.complete
    assert xfer.received_bytes >= 100_000
    # 802.11b payload rates top out well under 11 Mb/s.
    assert 100_000 < xfer.goodput_bps < 11_000_000


def test_browsing_workload(traffic_world):
    scenario, victim = traffic_world
    from repro.httpsim.browser import Browser
    browser = Browser(victim)
    workload = BrowsingWorkload(
        scenario.sim, browser,
        ["http://198.51.100.80/download.html",
         "http://198.51.100.80/missing.html"],
        think_time_s=1.0)
    workload.start()
    scenario.sim.run_for(60.0)
    assert workload.done
    assert workload.pages_loaded == 1
    assert workload.pages_failed == 1


# ----------------------------------------------------------------------
# roaming model
# ----------------------------------------------------------------------

def test_roaming_no_hostiles_never_compromised():
    rng = SimRandom(1)
    for _ in range(50):
        out = simulate_roaming_client(rng, domains=10, hostile_fraction=0.0,
                                      per_visit_compromise_prob=1.0)
        assert not out.compromised
        assert out.hostile_encounters == 0


def test_roaming_certain_compromise():
    rng = SimRandom(2)
    out = simulate_roaming_client(rng, domains=5, hostile_fraction=1.0,
                                  per_visit_compromise_prob=1.0)
    assert out.compromised
    assert out.compromised_at_visit == 1
    assert out.brought_home


def test_roaming_rate_matches_analytic():
    """P(compromise) = 1 - (1 - p*s)^K."""
    rng = SimRandom(3)
    p, s, K, n = 0.3, 0.8, 6, 4000
    hits = sum(
        simulate_roaming_client(rng, domains=K, hostile_fraction=p,
                                per_visit_compromise_prob=s).compromised
        for _ in range(n)
    )
    expected = 1 - (1 - p * s) ** K
    assert abs(hits / n - expected) < 0.03


def test_roaming_more_domains_more_risk():
    rng = SimRandom(4)

    def rate(domains):
        return sum(
            simulate_roaming_client(rng, domains=domains, hostile_fraction=0.2,
                                    per_visit_compromise_prob=0.5).compromised
            for _ in range(1500)) / 1500

    assert rate(1) < rate(5) < rate(20)
