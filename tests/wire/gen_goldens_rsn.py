"""Regenerate tests/wire/golden_vectors_rsn.json from the current codecs.

The RSN golden set pins the wire formats introduced with ``repro.rsn``
(RSN/CSA/MME/vendor elements and the RSN-bearing management frames).
Only run this to *add* vectors — diff the result; existing hex strings
must not change.  ``golden_vectors.json`` (the seed-era set) has its
own generator and stays frozen.
"""

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", ".."))

from tests.wire.vectors_rsn import build_rsn_vectors  # noqa: E402


def main() -> None:
    dest = os.path.join(os.path.dirname(__file__), "golden_vectors_rsn.json")
    goldens = {v.key: v.encode().hex() for v in build_rsn_vectors()}
    with open(dest, "w") as fh:
        json.dump(goldens, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {len(goldens)} vectors to {dest}")


if __name__ == "__main__":
    main()
