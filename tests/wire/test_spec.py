"""Unit tests for the declarative wire toolkit itself."""

from __future__ import annotations

import struct

import pytest

from repro.obs.runtime import collecting
from repro.sim.errors import ProtocolError
from repro.wire import (
    EncodeCache,
    Field,
    HeaderSpec,
    fixed_bytes,
    internet_checksum,
    pack_tlv,
    parse_tlv,
    patch_u16,
    pseudo_header,
    take,
    transport_checksum,
    u8,
    u16,
    u32,
    u64,
)

SPEC = HeaderSpec(
    "demo header", ">",
    u8("kind", const=7),
    u16("length"),
    u32("token"),
    fixed_bytes("tag", 2, enc=lambda s: s.encode(), dec=lambda b: b.decode()),
)


# ----------------------------------------------------------------------
# HeaderSpec
# ----------------------------------------------------------------------
class TestHeaderSpec:
    def test_size_is_the_compiled_struct_size(self):
        assert SPEC.size == 1 + 2 + 4 + 2

    def test_pack_emits_consts_and_applies_encoders(self):
        raw = SPEC.pack(length=10, token=0xCAFEBABE, tag="ok")
        assert raw == struct.pack(">BHI2s", 7, 10, 0xCAFEBABE, b"ok")

    def test_unpack_round_trips_and_omits_consts(self):
        raw = SPEC.pack(length=3, token=9, tag="ab")
        assert SPEC.unpack(raw) == {"length": 3, "token": 9, "tag": "ab"}

    def test_unpack_is_zero_copy_from_a_memoryview_at_offset(self):
        raw = b"\xff\xff" + SPEC.pack(length=1, token=2, tag="xy")
        fields = SPEC.unpack(memoryview(raw), offset=2)
        assert fields["tag"] == "xy"

    def test_unpack_validates_const_fields(self):
        raw = bytearray(SPEC.pack(length=1, token=2, tag="xy"))
        raw[0] = 8
        with pytest.raises(ProtocolError, match="field 'kind' must be 7, got 8"):
            SPEC.unpack(bytes(raw))

    def test_truncated_buffer_raises_with_the_protocol_label(self):
        with pytest.raises(ProtocolError, match="demo header too short"):
            SPEC.unpack(b"\x07\x00")

    def test_missing_field_raises(self):
        with pytest.raises(ProtocolError, match="missing field 'token'"):
            SPEC.pack(length=1, tag="xy")

    def test_default_fills_an_omitted_field(self):
        spec = HeaderSpec("d", ">", u16("a", default=42))
        assert spec.pack() == struct.pack(">H", 42)

    def test_pack_into_writes_at_offset(self):
        buf = bytearray(SPEC.size + 4)
        SPEC.pack_into(buf, 4, length=1, token=2, tag="zz")
        assert bytes(buf[4:]) == SPEC.pack(length=1, token=2, tag="zz")

    def test_u64_field(self):
        spec = HeaderSpec("wide", "<", u64("stamp"))
        assert spec.unpack(spec.pack(stamp=2**63))["stamp"] == 2**63

    def test_field_slots_reject_stray_attributes(self):
        with pytest.raises(AttributeError):
            Field("x", "B").extra = 1


# ----------------------------------------------------------------------
# TLV / length-prefixed combinators
# ----------------------------------------------------------------------
class TestTlv:
    def test_round_trip(self):
        items = [(0, b"CORP"), (1, b"\x82\x84"), (3, b"\x0b")]
        assert [(t, bytes(v)) for t, v in parse_tlv(pack_tlv(items))] == items

    def test_values_come_back_as_views_of_the_input(self):
        raw = pack_tlv([(9, b"abc")])
        ((_, view),) = list(parse_tlv(raw))
        assert isinstance(view, memoryview)
        assert view.obj is raw

    def test_truncated_header_uses_caller_label(self):
        with pytest.raises(ProtocolError, match="truncated IE header"):
            list(parse_tlv(b"\x01", label="IE"))

    def test_truncated_body(self):
        with pytest.raises(ProtocolError, match="truncated TLV body"):
            list(parse_tlv(b"\x01\x05abc"))

    def test_take_slices_and_advances(self):
        view = memoryview(b"abcdef")
        piece, offset = take(view, 1, 3, "thing")
        assert (bytes(piece), offset) == (b"bcd", 4)

    def test_take_truncation(self):
        with pytest.raises(ProtocolError, match="DNS name truncated"):
            take(memoryview(b"ab"), 0, 3, "DNS name")


# ----------------------------------------------------------------------
# checksum helpers
# ----------------------------------------------------------------------
class TestChecksum:
    def test_rfc1071_worked_example(self):
        # RFC 1071 §3: 0x0001 f203 f4f5 f6f7 -> sum 0xddf2, checksum 0x220d.
        assert internet_checksum(b"\x00\x01\xf2\x03\xf4\xf5\xf6\xf7") == 0x220D

    def test_all_zero_input_yields_ffff(self):
        assert internet_checksum(b"\x00" * 8) == 0xFFFF

    def test_nonzero_multiple_of_ffff_yields_zero(self):
        assert internet_checksum(b"\xff\xff") == 0
        assert internet_checksum(b"\xff\xfe\x00\x01") == 0

    def test_empty_input(self):
        assert internet_checksum(b"") == 0xFFFF
        assert internet_checksum() == 0xFFFF

    def test_odd_length_pads_with_zero(self):
        assert internet_checksum(b"\xab") == internet_checksum(b"\xab\x00")

    def test_chunking_never_changes_the_result(self):
        data = bytes(range(1, 40))
        whole = internet_checksum(data)
        assert internet_checksum(data[:1], data[1:2], data[2:17], data[17:]) == whole
        assert internet_checksum(*[data[i:i + 1] for i in range(len(data))]) == whole
        assert internet_checksum(memoryview(data)[:7], data[7:], b"") == whole

    def test_verification_of_a_patched_buffer_is_zero_or_ffff(self):
        buf = bytearray(b"\x12\x34\x00\x00\x56\x78\x9a")
        patch_u16(buf, 2, internet_checksum(buf))
        assert internet_checksum(buf) in (0, 0xFFFF)

    def test_pseudo_header_layout(self):
        raw = pseudo_header(b"\x0a\x00\x00\x01", b"\x0a\x00\x00\x02", 6, 20)
        assert raw == b"\x0a\x00\x00\x01\x0a\x00\x00\x02\x00\x06\x00\x14"

    def test_transport_checksum_equals_manual_concatenation(self):
        src, dst = b"\x0a\x00\x00\x01", b"\xc0\xa8\x01\xc8"
        header, payload = b"\x00\x35\x14\x51\x00\x0c\x00\x00", b"data"
        pseudo = pseudo_header(src, dst, 17, len(header) + len(payload))
        assert transport_checksum(src, dst, 17, header, payload) == \
            internet_checksum(pseudo + header + payload)

    def test_patch_u16_is_big_endian_in_place(self):
        buf = bytearray(4)
        patch_u16(buf, 1, 0xBEEF)
        assert bytes(buf) == b"\x00\xbe\xef\x00"


# ----------------------------------------------------------------------
# encode cache
# ----------------------------------------------------------------------
class TestEncodeCache:
    def test_get_put_clear(self):
        cache = EncodeCache()
        assert cache.get(True) is None
        assert cache.put(True, b"raw") == b"raw"
        assert cache.get(True) == b"raw"
        assert len(cache) == 1
        cache.clear()
        assert cache.get(True) is None

    def test_variant_keys_are_independent(self):
        cache = EncodeCache()
        cache.put(True, b"with-fcs")
        cache.put(False, b"without")
        assert (cache.get(True), cache.get(False)) == (b"with-fcs", b"without")

    def test_metrics_counters(self):
        with collecting() as col:
            cache = EncodeCache()
            cache.get("k")            # lookup miss
            cache.put("k", b"x")      # miss (fill)
            cache.get("k")            # hit
            cache.get("k")            # hit
        snap = col.registry.snapshot()
        assert snap["codec.encode_cache.hits"]["value"] == 2
        assert snap["codec.encode_cache.lookup_misses"]["value"] == 1
        assert snap["codec.encode_cache.misses"]["value"] == 1
