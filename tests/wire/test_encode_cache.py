"""`EncodeCache` invalidation under derivatives and mixed variant keys.

The cache's invalidation contract is *structural*: it lives in an
``init=False`` dataclass field, so every copy-on-write derivative
(``with_body``, WEP encap/decap) starts cold automatically — there is
no manual invalidation call to forget.  These tests walk the full
cold → cached → invalidated → re-cached lifecycle, chain derivatives,
mix ``with_fcs`` variant keys, and at every step assert the
``codec.encode_cache.*`` counters match the observed path exactly.
"""

from __future__ import annotations

import pytest

from repro.dot11.frames import Dot11Frame, make_data
from repro.dot11.mac import MacAddress
from repro.obs.runtime import collecting
from repro.wire import EncodeCache

AP = MacAddress("aa:bb:cc:dd:00:01")
STA = MacAddress("00:02:2d:00:00:07")


def _counters(col):
    snap = col.registry.snapshot()

    def value(name):
        entry = snap.get(name)
        return entry["value"] if entry else 0

    return {
        "hits": value("codec.encode_cache.hits"),
        "misses": value("codec.encode_cache.misses"),
        "lookup_misses": value("codec.encode_cache.lookup_misses"),
    }


def _frame(payload: bytes = bytes(range(100))) -> Dot11Frame:
    return make_data(STA, AP, AP, payload, to_ds=True, seq=7)


# ----------------------------------------------------------------------
# the EncodeCache object itself
# ----------------------------------------------------------------------

def test_cache_get_put_counters():
    with collecting() as col:
        cache = EncodeCache()
        assert cache.get("k") is None           # cold lookup
        assert cache.put("k", b"raw") == b"raw"
        assert cache.get("k") == b"raw"         # hit
        assert len(cache) == 1
    assert _counters(col) == {"hits": 1, "misses": 1, "lookup_misses": 1}


def test_cache_clear_starts_cold_again():
    with collecting() as col:
        cache = EncodeCache()
        cache.put("k", b"raw")
        cache.clear()
        assert len(cache) == 0
        assert cache.get("k") is None
    assert _counters(col)["hits"] == 0
    assert _counters(col)["lookup_misses"] == 1


def test_cache_records_nothing_without_context():
    cache = EncodeCache()
    cache.put("k", b"raw")
    assert cache.get("k") == b"raw"             # no registry: still works


# ----------------------------------------------------------------------
# cold -> cached -> invalidated -> re-cached through Dot11Frame
# ----------------------------------------------------------------------

def test_cold_cached_invalidated_recached_lifecycle():
    with collecting() as col:
        frame = _frame()
        raw1 = frame.to_bytes()                 # cold: lookup_miss + miss
        assert _counters(col) == {"hits": 0, "misses": 1,
                                  "lookup_misses": 1}
        assert frame.to_bytes() == raw1         # cached: pure hit
        assert frame.to_bytes() is raw1         # same buffer, zero copies
        assert _counters(col) == {"hits": 2, "misses": 1,
                                  "lookup_misses": 1}

        derived = frame.with_body(b"ciphertext " * 9, protected=True)
        raw2 = derived.to_bytes()               # invalidated: cold again
        assert raw2 != raw1
        assert _counters(col) == {"hits": 2, "misses": 2,
                                  "lookup_misses": 2}
        assert derived.to_bytes() is raw2       # re-cached
        assert _counters(col) == {"hits": 3, "misses": 2,
                                  "lookup_misses": 2}
        # The parent's cache was never touched by the derivative.
        assert frame.to_bytes() is raw1
        assert _counters(col)["hits"] == 4


def test_chained_with_body_derivatives_each_start_cold():
    """encap -> decap chains: every link re-encodes exactly once."""
    with collecting() as col:
        frame = _frame()
        encap = frame.with_body(b"E" * 64, protected=True)
        decap = encap.with_body(bytes(range(100)), protected=False)
        chain = [frame, encap, decap]
        raws = [f.to_bytes() for f in chain]    # 3 cold encodes
        again = [f.to_bytes() for f in chain]   # 3 hits
        assert [a is b for a, b in zip(raws, again)] == [True] * 3
        assert _counters(col) == {"hits": 3, "misses": 3,
                                  "lookup_misses": 3}
    # The decap round-trip restored the original wire bytes even
    # though its cache entry is distinct from the root frame's.
    assert raws[2] == raws[0]
    assert raws[1] != raws[0]


def test_mixed_with_fcs_keys_are_distinct_entries():
    """True/False FCS variants: two cold encodes, then all hits."""
    with collecting() as col:
        frame = _frame()
        with_fcs = frame.to_bytes(with_fcs=True)
        without = frame.to_bytes(with_fcs=False)
        assert with_fcs[:-4] == without         # FCS is the only delta
        assert len(with_fcs) == len(without) + 4
        assert _counters(col) == {"hits": 0, "misses": 2,
                                  "lookup_misses": 2}
        for _ in range(3):
            assert frame.to_bytes(with_fcs=True) is with_fcs
            assert frame.to_bytes(with_fcs=False) is without
        assert _counters(col) == {"hits": 6, "misses": 2,
                                  "lookup_misses": 2}


def test_derivative_with_mixed_keys_cold_per_variant():
    """Chained with_body + both FCS variants: 2 cold entries per link."""
    with collecting() as col:
        frame = _frame()
        frame.to_bytes(with_fcs=True)
        frame.to_bytes(with_fcs=False)
        derived = frame.with_body(b"x" * 32)
        derived.to_bytes(with_fcs=True)
        derived.to_bytes(with_fcs=False)
        assert _counters(col) == {"hits": 0, "misses": 4,
                                  "lookup_misses": 4}
        # Re-reading every (object, variant) pair is all hits.
        frame.to_bytes(with_fcs=True)
        frame.to_bytes(with_fcs=False)
        derived.to_bytes(with_fcs=True)
        derived.to_bytes(with_fcs=False)
        assert _counters(col) == {"hits": 4, "misses": 4,
                                  "lookup_misses": 4}


def test_real_encodes_counted_once_per_cold_path():
    """dot11.frames_encoded counts real encodes, not cache hits."""
    with collecting() as col:
        frame = _frame()
        for _ in range(5):
            frame.to_bytes()
        derived = frame.with_body(b"y" * 16)
        for _ in range(5):
            derived.to_bytes()
    snap = col.registry.snapshot()
    assert snap["dot11.frames_encoded"]["value"] == 2
    assert snap["codec.encode_cache.misses"]["value"] == 2
    assert snap["codec.encode_cache.hits"]["value"] == 8


def test_cached_bytes_roundtrip_after_invalidation():
    """Sanity: decoding a re-cached derivative sees the new body."""
    frame = _frame()
    derived = frame.with_body(b"new payload bytes", protected=False)
    decoded = Dot11Frame.from_bytes(derived.to_bytes())
    assert decoded.body == b"new payload bytes"
    assert Dot11Frame.from_bytes(frame.to_bytes()).body == frame.body
