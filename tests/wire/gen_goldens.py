"""Regenerate tests/wire/golden_vectors.json from the current codecs.

The checked-in file was produced by the pre-``repro.wire`` hand-rolled
serializers; regenerating it against changed codecs would defeat the
byte-compatibility guarantee, so only run this to *add* vectors (and
diff the result — existing hex strings must not change).
"""

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", ".."))

from tests.wire.vectors import build_vectors  # noqa: E402


def main() -> None:
    dest = os.path.join(os.path.dirname(__file__), "golden_vectors.json")
    goldens = {v.key: v.encode().hex() for v in build_vectors()}
    with open(dest, "w") as fh:
        json.dump(goldens, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {len(goldens)} vectors to {dest}")


if __name__ == "__main__":
    main()
