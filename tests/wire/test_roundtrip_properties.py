"""Hypothesis round-trip properties for every wire-backed protocol.

Two families of invariants:

* ``decode(encode(x)) == x`` for arbitrary well-formed protocol
  objects (the generator explores the field space far beyond the
  hand-picked golden vectors);
* the streaming :func:`repro.wire.internet_checksum` is bit-identical
  to the seed word-loop implementation for arbitrary data and
  arbitrary chunk boundaries.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dot11.frames import Dot11Frame, FrameSubtype, make_beacon
from repro.dot11.ies import InformationElement, pack_ies, parse_ies
from repro.dot11.mac import MacAddress
from repro.netstack.addressing import IPv4Address
from repro.netstack.arp import ArpOp, ArpPacket
from repro.netstack.dhcp import DhcpMessage, DhcpMessageType
from repro.netstack.dns import DnsMessage
from repro.netstack.ethernet import EthernetFrame
from repro.netstack.icmp import IcmpMessage
from repro.netstack.ipv4 import IPv4Packet
from repro.netstack.tcp import TcpSegment
from repro.netstack.udp import UdpDatagram
from repro.sim.errors import ProtocolError
from repro.wire import internet_checksum

macs = st.binary(min_size=6, max_size=6).map(MacAddress)
ips = st.integers(min_value=0, max_value=2**32 - 1).map(IPv4Address)
u8s = st.integers(min_value=0, max_value=0xFF)
u16s = st.integers(min_value=0, max_value=0xFFFF)
u32s = st.integers(min_value=0, max_value=0xFFFFFFFF)
payloads = st.binary(max_size=64)


# ----------------------------------------------------------------------
# checksum vs the seed word-loop reference
# ----------------------------------------------------------------------
def _seed_checksum(data: bytes) -> int:
    """The pre-``repro.wire`` implementation, verbatim (from ipv4.py)."""
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


@given(st.binary(max_size=200))
def test_checksum_matches_seed_word_loop(data):
    assert internet_checksum(data) == _seed_checksum(data)


@given(st.binary(min_size=1, max_size=120),
       st.lists(st.integers(min_value=0, max_value=120), max_size=6))
def test_checksum_is_chunking_invariant(data, cuts):
    bounds = sorted({min(c, len(data)) for c in cuts} | {0, len(data)})
    chunks = [data[a:b] for a, b in zip(bounds, bounds[1:])]
    assert internet_checksum(*chunks) == _seed_checksum(data)


@given(st.binary(max_size=60).filter(lambda d: len(d) % 2 == 1))
def test_checksum_odd_length_matches_seed(data):
    assert internet_checksum(data) == _seed_checksum(data)


# ----------------------------------------------------------------------
# netstack round-trips
# ----------------------------------------------------------------------
@given(dst=macs, src=macs, ethertype=u16s, payload=payloads)
def test_ethernet_round_trip(dst, src, ethertype, payload):
    frame = EthernetFrame(dst=dst, src=src, ethertype=ethertype, payload=payload)
    assert EthernetFrame.from_bytes(frame.to_bytes()) == frame


@given(op=st.sampled_from(list(ArpOp)), smac=macs, sip=ips, tmac=macs, tip=ips)
def test_arp_round_trip(op, smac, sip, tmac, tip):
    pkt = ArpPacket(op=op, sender_mac=smac, sender_ip=sip,
                    target_mac=tmac, target_ip=tip)
    raw = pkt.to_bytes()
    assert ArpPacket.from_bytes(raw) == pkt
    assert ArpPacket.from_bytes(raw).to_bytes() == raw


@given(src=ips, dst=ips, proto=u8s, payload=payloads,
       ttl=st.integers(min_value=1, max_value=255), ident=u16s, tos=u8s)
def test_ipv4_round_trip(src, dst, proto, payload, ttl, ident, tos):
    pkt = IPv4Packet(src=src, dst=dst, proto=proto, payload=payload,
                     ttl=ttl, ident=ident, tos=tos)
    raw = pkt.to_bytes()
    assert IPv4Packet.from_bytes(raw) == pkt
    assert IPv4Packet.from_bytes(raw).to_bytes() == raw


@given(src=ips, dst=ips, sport=u16s, dport=u16s, seq=u32s, ack=u32s,
       flags=u8s, window=u16s, payload=payloads, urgent=u16s)
def test_tcp_round_trip_preserves_urgent_pointer(src, dst, sport, dport, seq,
                                                 ack, flags, window, payload,
                                                 urgent):
    seg = TcpSegment(src_port=sport, dst_port=dport, seq=seq, ack=ack,
                     flags=flags, window=window, payload=payload, urgent=urgent)
    raw = seg.to_bytes(src, dst)
    decoded = TcpSegment.from_bytes(raw, src, dst)
    assert decoded == seg
    assert decoded.to_bytes(src, dst) == raw


@given(src=ips, dst=ips)
def test_tcp_rejects_options(src, dst):
    seg = TcpSegment(src_port=1, dst_port=2, seq=3, ack=4, flags=0x10,
                     payload=b"\x00" * 8)
    raw = bytearray(seg.to_bytes(src, dst))
    raw[12] = 7 << 4  # data offset 28: 8 bytes of options
    with pytest.raises(ProtocolError, match="TCP options unsupported"):
        TcpSegment.from_bytes(bytes(raw), src, dst, verify_checksum=False)


@given(src=ips, dst=ips, sport=u16s, dport=u16s, payload=payloads)
def test_udp_round_trip(src, dst, sport, dport, payload):
    dgram = UdpDatagram(src_port=sport, dst_port=dport, payload=payload)
    raw = dgram.to_bytes(src, dst)
    decoded = UdpDatagram.from_bytes(raw, src, dst)
    assert decoded == dgram
    assert decoded.to_bytes(src, dst) == raw


@given(icmp_type=u8s, code=u8s, rest=u32s, payload=payloads)
def test_icmp_round_trip(icmp_type, code, rest, payload):
    msg = IcmpMessage(icmp_type=icmp_type, code=code, rest=rest, payload=payload)
    raw = msg.to_bytes()
    assert IcmpMessage.from_bytes(raw) == msg
    assert IcmpMessage.from_bytes(raw).to_bytes() == raw


@given(txn_id=u16s,
       name=st.text(alphabet=st.characters(min_codepoint=0x21, max_codepoint=0x7E),
                    max_size=63),
       is_response=st.booleans(),
       answers=st.lists(ips, max_size=5).map(tuple))
def test_dns_round_trip(txn_id, name, is_response, answers):
    msg = DnsMessage(txn_id=txn_id, name=name, is_response=is_response,
                     answers=answers)
    raw = msg.to_bytes()
    assert DnsMessage.from_bytes(raw) == msg
    assert DnsMessage.from_bytes(raw).to_bytes() == raw


@given(mtype=st.sampled_from(list(DhcpMessageType)), xid=u32s, mac=macs,
       your_ip=ips, server_ip=ips, gateway=ips, dns_server=ips, netmask=ips)
def test_dhcp_round_trip(mtype, xid, mac, your_ip, server_ip, gateway,
                         dns_server, netmask):
    msg = DhcpMessage(message_type=mtype, xid=xid, client_mac=mac,
                      your_ip=your_ip, server_ip=server_ip, gateway=gateway,
                      dns_server=dns_server, netmask=netmask)
    raw = msg.to_bytes()
    assert DhcpMessage.from_bytes(raw) == msg
    assert DhcpMessage.from_bytes(raw).to_bytes() == raw


# ----------------------------------------------------------------------
# 802.11 information elements
# ----------------------------------------------------------------------
ie_lists = st.lists(
    st.builds(InformationElement, element_id=u8s,
              data=st.binary(max_size=255)),
    max_size=6)


@given(ies=ie_lists)
def test_ies_round_trip(ies):
    raw = pack_ies(ies)
    assert parse_ies(raw) == ies
    assert pack_ies(parse_ies(raw)) == raw


@given(data=st.binary(min_size=255, max_size=255))
def test_ie_at_the_255_byte_boundary(data):
    (ie,) = parse_ies(pack_ies([InformationElement(221, data)]))
    assert ie.data == data


def test_ie_over_255_bytes_is_rejected_at_construction():
    with pytest.raises(ProtocolError, match="longer than 255"):
        InformationElement(221, bytes(256))


@given(ies=ie_lists.filter(lambda l: sum(2 + len(ie.data) for ie in l) > 1),
       cut=st.integers(min_value=1, max_value=50))
def test_truncated_ie_run_raises(ies, cut):
    raw = pack_ies(ies)
    truncated = raw[:len(raw) - min(cut, len(raw) - 1)]
    try:
        parse_ies(truncated)
    except ProtocolError as exc:
        assert "truncated IE" in str(exc)
    # A cut landing exactly on an element boundary parses a shorter
    # list — that is correct TLV behaviour, not an error.


# ----------------------------------------------------------------------
# 802.11 frames
# ----------------------------------------------------------------------
@settings(max_examples=50)
@given(a1=macs, a2=macs, a3=macs, body=payloads,
       seq=st.integers(min_value=0, max_value=0x0FFF),
       frag=st.integers(min_value=0, max_value=0x0F),
       duration=u16s,
       subtype=st.sampled_from(list(FrameSubtype)),
       protected=st.booleans(), to_ds=st.booleans(),
       from_ds=st.booleans(), retry=st.booleans(),
       with_fcs=st.booleans())
def test_dot11_frame_round_trip(a1, a2, a3, body, seq, frag, duration,
                                subtype, protected, to_ds, from_ds, retry,
                                with_fcs):
    frame = Dot11Frame(subtype=subtype, addr1=a1, addr2=a2, addr3=a3,
                       body=body, seq=seq, frag=frag, duration=duration,
                       protected=protected, to_ds=to_ds, from_ds=from_ds,
                       retry=retry)
    raw = frame.to_bytes(with_fcs=with_fcs)
    decoded = Dot11Frame.from_bytes(raw, with_fcs=with_fcs)
    assert decoded == frame
    assert decoded.to_bytes(with_fcs=with_fcs) == raw


@given(cut=st.integers(min_value=1, max_value=23))
def test_truncated_dot11_frame_raises(cut):
    with pytest.raises(ProtocolError, match="frame too short"):
        Dot11Frame.from_bytes(b"\x00" * cut, with_fcs=False)


def test_truncated_transport_buffers_raise():
    a, b = IPv4Address("10.0.0.1"), IPv4Address("10.0.0.2")
    with pytest.raises(ProtocolError, match="TCP segment too short"):
        TcpSegment.from_bytes(b"\x00" * 19, a, b)
    with pytest.raises(ProtocolError, match="UDP datagram too short"):
        UdpDatagram.from_bytes(b"\x00" * 7, a, b)
    with pytest.raises(ProtocolError, match="ICMP message too short"):
        IcmpMessage.from_bytes(b"\x00" * 7)
    with pytest.raises(ProtocolError, match="IPv4 packet too short"):
        IPv4Packet.from_bytes(b"\x45" + b"\x00" * 10)
    with pytest.raises(ProtocolError, match="ARP packet too short"):
        ArpPacket.from_bytes(b"\x00\x01\x08\x00\x06\x04")
    with pytest.raises(ProtocolError, match="DHCP message too short"):
        DhcpMessage.from_bytes(b"\x01" + b"\x00" * 20)
    with pytest.raises(ProtocolError, match="DNS name truncated"):
        DnsMessage.from_bytes(
            DnsMessage.query(1, "example.com").to_bytes()[:-3])


def test_beacon_body_still_parses_through_the_ie_layer():
    beacon = make_beacon(MacAddress("02:0a:00:00:00:03"), "CORP", 6, seq=1)
    info = Dot11Frame.from_bytes(beacon.to_bytes()).parse_beacon()
    assert (info.ssid, info.channel) == ("CORP", 6)
