"""Hypothesis properties for the ``repro.rsn`` codecs.

Same two families as ``test_roundtrip_properties.py``, scoped to the
RSN wire formats: ``parse(pack(x)) == x`` over the generated field
space, and every truncation of a valid encoding raises
:class:`ProtocolError` (never returns garbage, never raises anything
else).
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rsn.ie import AkmSuite, CipherSuite, CsaIe, RsnIe, VendorIe
from repro.rsn.pmf import MME_LEN, Mme
from repro.sim.errors import ProtocolError

ciphers = st.sampled_from([int(c) for c in CipherSuite])
akms = st.sampled_from([int(a) for a in AkmSuite])


@st.composite
def rsn_ies(draw):
    # MFPR without MFPC is invalid per 802.11 and pack() normalizes it
    # away, so only generate required => capable combinations.
    pmf_required = draw(st.booleans())
    pmf_capable = pmf_required or draw(st.booleans())
    return RsnIe(
        group_cipher=draw(ciphers),
        pairwise=tuple(draw(st.lists(ciphers, min_size=1, max_size=4,
                                     unique=True))),
        akms=tuple(draw(st.lists(akms, min_size=1, max_size=3,
                                 unique=True))),
        pmf_capable=pmf_capable,
        pmf_required=pmf_required,
    )


csa_ies = st.builds(CsaIe,
                    new_channel=st.integers(min_value=1, max_value=14),
                    count=st.integers(min_value=0, max_value=255),
                    mode=st.integers(min_value=0, max_value=1))
vendor_ies = st.builds(VendorIe,
                       oui=st.binary(min_size=3, max_size=3),
                       data=st.binary(max_size=64))
mmes = st.builds(Mme,
                 key_id=st.integers(min_value=0, max_value=0xFFFF),
                 ipn=st.integers(min_value=0, max_value=(1 << 48) - 1),
                 mic=st.binary(min_size=8, max_size=8))


# ----------------------------------------------------------------------
# round-trips
# ----------------------------------------------------------------------
@given(rsn_ies())
def test_rsn_ie_roundtrip(ie):
    assert RsnIe.parse(ie.pack()) == ie


@given(rsn_ies())
def test_rsn_ie_roundtrip_via_information_element(ie):
    assert RsnIe.from_ie(ie.to_ie()) == ie


@given(csa_ies)
def test_csa_roundtrip(csa):
    assert CsaIe.parse(csa.pack()) == csa


@given(vendor_ies)
def test_vendor_roundtrip(vendor):
    assert VendorIe.parse(vendor.pack()) == vendor


@given(mmes)
def test_mme_roundtrip(mme):
    assert Mme.parse(mme.pack()) == mme


@given(rsn_ies())
def test_rsn_parse_accepts_memoryview(ie):
    assert RsnIe.parse(memoryview(ie.pack())) == ie


# ----------------------------------------------------------------------
# truncations: every proper prefix must raise ProtocolError
# ----------------------------------------------------------------------
@given(rsn_ies(), st.data())
def test_truncated_rsn_ie_raises(ie, data):
    raw = ie.pack()
    cut = data.draw(st.integers(min_value=0, max_value=len(raw) - 1))
    with pytest.raises(ProtocolError):
        RsnIe.parse(raw[:cut])


@given(csa_ies, st.data())
def test_truncated_csa_raises(csa, data):
    raw = csa.pack()
    cut = data.draw(st.integers(min_value=0, max_value=len(raw) - 1))
    with pytest.raises(ProtocolError):
        CsaIe.parse(raw[:cut])


@given(vendor_ies)
def test_truncated_vendor_raises(vendor):
    with pytest.raises(ProtocolError):
        VendorIe.parse(vendor.pack()[:2])  # shorter than the 3-byte OUI


@given(mmes, st.data())
def test_truncated_mme_raises(mme, data):
    raw = mme.pack()
    cut = data.draw(st.integers(min_value=0, max_value=MME_LEN - 1))
    with pytest.raises(ProtocolError):
        Mme.parse(raw[:cut])


# ----------------------------------------------------------------------
# malformed (non-truncation) rejections
# ----------------------------------------------------------------------
@given(rsn_ies())
def test_rsn_ie_tolerates_trailing_optional_fields(ie):
    # Real RSN IEs may append PMKID count/list and a group-management
    # cipher after the capabilities; the parser ignores what it does
    # not model rather than rejecting the element.
    assert RsnIe.parse(ie.pack() + b"\x00\x00") == ie


@given(csa_ies)
def test_csa_trailing_garbage_raises(csa):
    with pytest.raises(ProtocolError):
        CsaIe.parse(csa.pack() + b"\xff")


def test_rsn_ie_bad_oui_raises():
    raw = bytearray(RsnIe.wpa2().pack())
    raw[2:5] = b"\x00\x50\xf2"  # WPA1 vendor OUI, not 00-0F-AC
    with pytest.raises(ProtocolError):
        RsnIe.parse(bytes(raw))
