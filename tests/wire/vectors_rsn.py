"""Golden-vector builders for the ``repro.rsn`` wire formats.

A *separate* vector set with its own golden file
(``golden_vectors_rsn.json``): the original ``golden_vectors.json`` is
frozen — it proves the seed-era codecs never changed — while this file
pins the RSN/CSA/MME/vendor formats and the RSN-bearing management
frames introduced with ``repro.rsn``.  Same rule applies from now on:
regenerate only to *add* vectors, never to paper over a byte change.

Regenerate with::

    PYTHONPATH=src python tests/wire/gen_goldens_rsn.py
"""

from __future__ import annotations

from repro.dot11.frames import (
    AuthAlgorithm,
    ReasonCode,
    make_assoc_request,
    make_auth,
    make_beacon,
    make_deauth,
    make_probe_response,
)
from repro.dot11.mac import MacAddress
from repro.rsn.ie import AkmSuite, CipherSuite, CsaIe, RsnIe, VendorIe
from repro.rsn.pmf import Mme
from repro.rsn.sae import sae_container_ie
from tests.wire.vectors import MAC_A, MAC_AP, Vector, _eq

__all__ = ["build_rsn_vectors"]


def build_rsn_vectors() -> list[Vector]:
    out: list[Vector] = []

    # ------------------------------------------------------------------
    # RSN IE: the three standard postures plus a kitchen-sink config
    # ------------------------------------------------------------------
    for label, ie in (("wpa2", RsnIe.wpa2()),
                      ("wpa3", RsnIe.wpa3()),
                      ("wpa3-transition", RsnIe.wpa3_transition())):
        out.append(Vector(f"rsn.ie-{label}", ie.pack,
                          lambda raw, ie=ie: _eq(ie)(RsnIe.parse(raw))))
    kitchen = RsnIe(group_cipher=int(CipherSuite.TKIP),
                    pairwise=(int(CipherSuite.CCMP), int(CipherSuite.TKIP)),
                    akms=(int(AkmSuite.SAE), int(AkmSuite.IEEE_8021X),
                          int(AkmSuite.PSK)),
                    pmf_capable=True, pmf_required=False)
    out.append(Vector("rsn.ie-mixed-suites", kitchen.pack,
                      lambda raw: _eq(kitchen)(RsnIe.parse(raw))))

    # ------------------------------------------------------------------
    # CSA / vendor / MME elements
    # ------------------------------------------------------------------
    csa = CsaIe(new_channel=6, count=3, mode=1)
    out.append(Vector("rsn.csa", csa.pack,
                      lambda raw: _eq(csa)(CsaIe.parse(raw))))
    csa_now = CsaIe(new_channel=11, count=0, mode=0)
    out.append(Vector("rsn.csa-immediate", csa_now.pack,
                      lambda raw: _eq(csa_now)(CsaIe.parse(raw))))
    vendor = VendorIe(b"\x00\x0f\xac", b"\x53payload-bytes")
    out.append(Vector("rsn.vendor", vendor.pack,
                      lambda raw: _eq(vendor)(VendorIe.parse(raw))))
    mme = Mme(key_id=4, ipn=0x0000DEADBEEF, mic=bytes(range(8)))
    out.append(Vector("rsn.mme", mme.pack,
                      lambda raw: _eq(mme)(Mme.parse(raw))))

    # ------------------------------------------------------------------
    # RSN-bearing management frames (extra_ies carriage)
    # ------------------------------------------------------------------
    wpa3 = RsnIe.wpa3()
    out.append(Vector(
        "rsn.beacon-wpa3",
        lambda: make_beacon(MAC_AP, "CORP", 1, privacy=True, seq=7,
                            extra_ies=[wpa3.to_ie()]).to_bytes()))
    out.append(Vector(
        "rsn.beacon-wpa3-csa",
        lambda: make_beacon(MAC_AP, "CORP", 1, privacy=True, seq=8,
                            extra_ies=[wpa3.to_ie(), csa.to_ie()]).to_bytes()))
    out.append(Vector(
        "rsn.probe-resp-wpa3",
        lambda: make_probe_response(MAC_AP, MAC_A, "CORP", 1, privacy=True,
                                    seq=9,
                                    extra_ies=[wpa3.to_ie()]).to_bytes()))
    out.append(Vector(
        "rsn.assoc-req-wpa3",
        lambda: make_assoc_request(MAC_A, MAC_AP, "CORP", privacy=True,
                                   seq=10,
                                   extra_ies=[wpa3.to_ie()]).to_bytes()))
    out.append(Vector(
        "rsn.auth-sae-commit",
        lambda: make_auth(MAC_A, MAC_AP, MAC_AP,
                          algorithm=AuthAlgorithm.SAE, txn=1, seq=11,
                          extra_ies=[sae_container_ie(
                              b"\x05\x00" + bytes(16))]).to_bytes()))
    out.append(Vector(
        "rsn.deauth-with-mme",
        lambda: make_deauth(MAC_AP, MAC_A, MAC_AP,
                            reason=ReasonCode.CLASS3_FROM_NONASSOC, seq=12,
                            extra_ies=[mme.to_ie()]).to_bytes()))
    return out
