"""Byte-stability pins for the ``repro.rsn`` wire formats.

Parallel to ``test_goldens.py`` but over its own golden file:
``golden_vectors_rsn.json`` was generated when ``repro.rsn`` landed
and pins the RSN/CSA/MME/vendor codecs and the RSN-bearing management
frames.  The seed-era ``golden_vectors.json`` remains frozen and
untouched by this set.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from tests.wire.vectors import Vector
from tests.wire.vectors_rsn import build_rsn_vectors

GOLDENS = json.loads(
    (Path(__file__).parent / "golden_vectors_rsn.json").read_text())
VECTORS = build_rsn_vectors()


def test_every_vector_has_a_golden_and_vice_versa():
    assert sorted(v.key for v in VECTORS) == sorted(GOLDENS)


@pytest.mark.parametrize("vector", VECTORS, ids=lambda v: v.key)
def test_encode_matches_pinned_bytes(vector: Vector):
    assert vector.encode().hex() == GOLDENS[vector.key]


@pytest.mark.parametrize(
    "vector", [v for v in VECTORS if v.decode_check is not None],
    ids=lambda v: v.key)
def test_pinned_bytes_decode_to_original_object(vector: Vector):
    vector.decode_check(bytes.fromhex(GOLDENS[vector.key]))


@pytest.mark.parametrize(
    "vector", [v for v in VECTORS if v.decode_check is not None],
    ids=lambda v: v.key)
def test_pinned_bytes_decode_from_memoryview(vector: Vector):
    """Zero-copy contract: decoders accept memoryviews, same result."""
    vector.decode_check(memoryview(bytes.fromhex(GOLDENS[vector.key])))
