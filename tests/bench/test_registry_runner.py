"""Registry, runner, emission, and gate behavior for ``repro.bench``.

The acceptance test for the whole harness lives here: a synthetic
benchmark is registered, baselined, then an injected slowdown must be
caught by the differ and fail the CLI gate, while the unperturbed run
passes — end to end through the same code path CI's ``bench-gate``
job executes.
"""

from __future__ import annotations

import json

import pytest

from repro.bench import registry as breg
from repro.bench.cli import cmd_bench
from repro.bench.diff import diff_baselines
from repro.bench.registry import BenchSample, all_specs, register
from repro.bench.runner import (baseline_path, capture_environment,
                                load_baselines, run_spec, run_suite,
                                write_baselines)

AREA = "synthetic"


@pytest.fixture
def synthetic_spec():
    """Register a deterministic-payload, controllable-value benchmark."""
    state = {"values": [10.0], "calls": 0}

    @register(AREA, "ops_per_s", unit="ops/s", higher_is_better=True,
              tolerance=0.5)
    def synthetic(scale: float = 1.0):
        state["calls"] += 1
        value = state["values"][min(state["calls"], len(state["values"])) - 1]
        return BenchSample(value=value, payload={"scale": scale, "n": 7})

    spec = breg._REGISTRY[(AREA, "ops_per_s")]
    yield spec, state
    del breg._REGISTRY[(AREA, "ops_per_s")]


def test_duplicate_registration_rejected(synthetic_spec):
    with pytest.raises(ValueError, match="duplicate"):
        register(AREA, "ops_per_s", unit="ops/s", higher_is_better=True)(
            lambda scale=1.0: BenchSample(1.0))


def test_registry_lists_builtin_areas():
    areas = {spec.area for spec in all_specs()}
    # The five areas the ISSUE names, plus the hot loops under them.
    assert {"radio", "wire", "fleet", "wids", "trace"} <= areas


def test_unknown_area_filter_raises():
    with pytest.raises(KeyError, match="unknown benchmark area"):
        all_specs(["no-such-area"])


def test_run_spec_takes_median_of_k(synthetic_spec):
    spec, state = synthetic_spec
    state["values"] = [1.0, 100.0, 3.0]
    entry = run_spec(spec, repeat=3)
    assert entry["value"] == 3.0                # median, not mean/min
    assert entry["samples"] == [1.0, 100.0, 3.0]
    assert entry["repeat"] == 3
    assert entry["unit"] == "ops/s" and entry["tolerance"] == 0.5
    assert entry["payload"] == {"scale": 1.0, "n": 7}


def test_run_spec_rejects_bad_repeat(synthetic_spec):
    spec, _ = synthetic_spec
    with pytest.raises(ValueError):
        run_spec(spec, repeat=0)


def test_environment_capture_fields():
    env = capture_environment(mode="smoke")
    for key in ("python", "platform", "pythonhashseed", "commit",
                "usable_cores", "mode"):
        assert key in env, key
    assert env["mode"] == "smoke"
    assert env["usable_cores"] >= 1


def test_suite_doc_schema_and_emission(tmp_path, synthetic_spec):
    docs = run_suite(area_filter=[AREA], repeat=2)
    assert set(docs) == {AREA}
    doc = docs[AREA]
    assert doc["schema"] == 1 and doc["area"] == AREA
    assert "environment" in doc and "metrics" in doc
    assert set(doc["metrics"]) == {"ops_per_s"}

    paths = write_baselines(docs, str(tmp_path))
    assert paths == [baseline_path(str(tmp_path), AREA)]
    assert paths[0].endswith(f"BENCH_{AREA}.json")
    loaded = load_baselines(str(tmp_path))
    assert loaded == {AREA: json.loads(json.dumps(doc))}

    # Emission is deterministic: writing the same docs again is
    # byte-identical (sorted keys, fixed rounding).
    first = open(paths[0]).read()
    write_baselines(docs, str(tmp_path))
    assert open(paths[0]).read() == first


def test_smoke_mode_scales_down_and_single_repeat(synthetic_spec):
    spec, state = synthetic_spec
    docs = run_suite(area_filter=[AREA], repeat=5, smoke=True)
    entry = docs[AREA]["metrics"]["ops_per_s"]
    assert entry["repeat"] == 1                 # smoke forces k=1
    assert entry["payload"]["scale"] == 0.25    # and the smoke scale
    assert docs[AREA]["environment"]["mode"] == "smoke"


def test_injected_synthetic_slowdown_is_caught(synthetic_spec):
    """The acceptance criterion: a slowdown beyond tolerance fails."""
    spec, state = synthetic_spec
    baseline = run_suite(area_filter=[AREA], repeat=1)

    # Within tolerance (50%): 10 -> 6 must pass.
    state.update(values=[6.0], calls=0)
    drift = run_suite(area_filter=[AREA], repeat=1)
    report = diff_baselines(baseline, drift)
    assert report.ok() and not report.regressions

    # Beyond tolerance: 10 -> 2 (5x slowdown) must be flagged.
    state.update(values=[2.0], calls=0)
    slow = run_suite(area_filter=[AREA], repeat=1)
    report = diff_baselines(baseline, slow)
    assert not report.ok()
    (reg,) = report.regressions
    assert reg.name == f"{AREA}/ops_per_s"
    assert reg.worsening == pytest.approx(0.8)

    # An improvement is never flagged: 10 -> 1000.
    state.update(values=[1000.0], calls=0)
    fast = run_suite(area_filter=[AREA], repeat=1)
    assert diff_baselines(baseline, fast).ok()


def test_cli_gate_end_to_end(tmp_path, synthetic_spec, capsys):
    """--update then --check passes; a tampered baseline fails with 1."""
    spec, state = synthetic_spec
    rc = cmd_bench([AREA], 1, False, None, None, str(tmp_path))
    assert rc == 0
    path = baseline_path(str(tmp_path), AREA)
    assert json.load(open(path))["metrics"]["ops_per_s"]["value"] == 10.0

    state.update(calls=0)
    rc = cmd_bench([AREA], 1, False, None, str(tmp_path), None)
    assert rc == 0
    assert "bench gate: ok" in capsys.readouterr().out

    # Simulate a slowdown by raising the committed expectation 10x.
    doc = json.load(open(path))
    doc["metrics"]["ops_per_s"]["value"] = 100.0
    with open(path, "w") as fh:
        json.dump(doc, fh)
    state.update(calls=0)
    rc = cmd_bench([AREA], 1, False, None, str(tmp_path), None)
    assert rc == 1
    captured = capsys.readouterr()
    assert "REGRESSION" in captured.out
    assert "bench gate: FAIL" in captured.err


def test_cli_check_without_baselines_fails(tmp_path, synthetic_spec, capsys):
    rc = cmd_bench([AREA], 1, False, None, str(tmp_path), None)
    assert rc == 1
    assert "no BENCH_*.json baselines" in capsys.readouterr().err


def test_cli_json_output(tmp_path, synthetic_spec):
    out = tmp_path / "combined.json"
    rc = cmd_bench([AREA], 1, False, str(out), None, None)
    assert rc == 0
    combined = json.load(open(out))
    assert combined["schema"] == 1
    assert combined["areas"][AREA]["metrics"]["ops_per_s"]["value"] == 10.0


def test_committed_baselines_cover_the_issue_areas():
    """The repo ships >= 5 BENCH_<area>.json at the root, one per claim."""
    import os

    root = os.path.join(os.path.dirname(__file__), "..", "..")
    docs = load_baselines(root)
    assert {"radio", "wire", "fleet", "wids", "trace"} <= set(docs)
    assert len(docs) >= 5
    wire = docs["wire"]["metrics"]
    assert "checksum_mb_per_s" in wire and "encode_cache_hit_rate" in wire
    assert "fanout_frames_per_s" in docs["radio"]["metrics"]
    assert "eval_alerts_per_s" in docs["wids"]["metrics"]
    assert "overhead_ratio" in docs["trace"]["metrics"]
    # Every committed metric is still produced by the current registry:
    # the committed baselines can never silently rot.
    registered = {(s.area, s.metric) for s in all_specs()}
    for area, doc in docs.items():
        for metric in doc["metrics"]:
            assert (area, metric) in registered, (area, metric)
