"""Tests for the repro.bench perf-regression harness."""
