"""Hypothesis properties for the baseline differ.

The differ is the component a CI gate trusts blindly, so its contract
is pinned property-first over arbitrary metric tables:

* a metric that moved in the worse direction beyond its tolerance is
  *always* classified a regression;
* improvements and within-tolerance drift are *never* flagged;
* metrics present on only one side are reported distinctly (``new`` /
  ``missing``), never silently dropped, never conflated with value
  changes;
* the diff is total and symmetric-safe on empty inputs: an empty
  baseline yields only ``new``, an empty current run only ``missing``,
  both empty yields nothing.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.diff import diff_baselines, diff_metrics

names = st.text(alphabet="abcdefgh_", min_size=1, max_size=8)
values = st.floats(min_value=1e-6, max_value=1e9, allow_nan=False,
                   allow_infinity=False)
tolerances = st.floats(min_value=0.0, max_value=5.0, allow_nan=False)


def entry(value, tolerance=0.5, higher_is_better=True, unit="u"):
    return {"value": value, "tolerance": tolerance,
            "higher_is_better": higher_is_better, "unit": unit}


metric_entries = st.builds(entry, values, tolerances, st.booleans())
metric_tables = st.dictionaries(names, metric_entries, max_size=6)


def _worse_beyond(base, cur):
    """Ground-truth re-derivation: did cur worsen beyond tolerance?"""
    b, c = base["value"], cur["value"]
    tol = cur["tolerance"]
    delta = (b - c) if cur["higher_is_better"] else (c - b)
    if delta <= 0:
        return False
    return delta / abs(b) > tol


@given(metric_tables, metric_tables)
@settings(max_examples=200)
def test_partition_is_total_and_disjoint(base, cur):
    """Every metric lands in exactly one bucket; none invented."""
    deltas = diff_metrics("a", base, cur)
    seen = [d.metric for d in deltas]
    assert sorted(seen) == sorted(set(base) | set(cur))
    assert len(seen) == len(set(seen))
    for d in deltas:
        assert d.kind in ("regression", "missing", "new", "improvement",
                          "within")


@given(metric_tables, metric_tables)
@settings(max_examples=200)
def test_new_and_missing_reported_distinctly(base, cur):
    deltas = {d.metric: d for d in diff_metrics("a", base, cur)}
    for name in cur:
        if name not in base:
            assert deltas[name].kind == "new"
    for name in base:
        if name not in cur:
            assert deltas[name].kind == "missing"
    for name in set(base) & set(cur):
        assert deltas[name].kind not in ("new", "missing")


@given(names, metric_entries, values)
@settings(max_examples=300)
def test_regressions_beyond_tolerance_always_flagged(name, base, cur_value):
    """Ground truth and differ agree on every shared metric."""
    cur = dict(base, value=cur_value)
    (delta,) = diff_metrics("a", {name: base}, {name: cur})
    if _worse_beyond(base, cur):
        assert delta.kind == "regression", delta
    else:
        assert delta.kind != "regression", delta


@given(names, metric_entries, st.floats(min_value=1e-6, max_value=1.0,
                                        exclude_max=True))
@settings(max_examples=300)
def test_improvements_never_flagged(name, base, frac):
    """Any strictly-better value is an improvement, whatever the size."""
    b = base["value"]
    better = b * (1 + frac) if base["higher_is_better"] else b * (1 - frac)
    cur = dict(base, value=better)
    (delta,) = diff_metrics("a", {name: base}, {name: cur})
    assert delta.kind == "improvement"


@given(names, metric_entries, st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=300)
def test_within_tolerance_drift_never_flagged(name, base, frac):
    """Worsening by any fraction of the tolerance stays unflagged."""
    b, tol = base["value"], base["tolerance"]
    drift = tol * frac * 0.999          # strictly inside the band
    worse = b * (1 - drift) if base["higher_is_better"] else b * (1 + drift)
    cur = dict(base, value=worse)
    (delta,) = diff_metrics("a", {name: base}, {name: cur})
    assert delta.kind in ("within", "improvement"), delta


@given(metric_tables)
@settings(max_examples=100)
def test_empty_baseline_is_all_new_and_passes(cur):
    """First run ever: everything is new, nothing regresses."""
    report = diff_baselines({}, {"a": {"metrics": cur}})
    assert not report.regressions and not report.missing
    assert {d.metric for d in report.new} == set(cur)
    assert report.ok()


@given(metric_tables)
@settings(max_examples=100)
def test_empty_current_is_all_missing_and_fails(base):
    """A run that produced nothing cannot pass against a real baseline."""
    report = diff_baselines({"a": {"metrics": base}}, {})
    assert not report.regressions and not report.new
    assert {d.metric for d in report.missing} == set(base)
    assert report.ok() == (len(base) == 0)
    assert report.ok(fail_on_missing=False)


def test_both_empty_is_clean():
    report = diff_baselines({}, {})
    assert report.deltas == [] and report.ok()


def test_nan_current_value_is_a_regression():
    base = {"m": entry(10.0)}
    cur = {"m": entry(math.nan)}
    (delta,) = diff_metrics("a", base, cur)
    assert delta.kind == "regression"


def test_zero_baseline_flags_any_worsening():
    base = {"m": entry(0.0, tolerance=0.5)}
    worse = {"m": entry(-1.0, tolerance=0.5)}
    better = {"m": entry(1.0, tolerance=0.5)}
    (d_worse,) = diff_metrics("a", base, worse)
    (d_better,) = diff_metrics("a", base, better)
    assert d_worse.kind == "regression" and d_worse.worsening == math.inf
    assert d_better.kind == "improvement"


def test_tolerance_read_from_current_registration():
    """Code is the source of truth: a tightened tolerance takes effect."""
    base = {"m": entry(100.0, tolerance=5.0)}
    cur = {"m": entry(40.0, tolerance=0.1)}
    (delta,) = diff_metrics("a", base, cur)
    assert delta.kind == "regression" and delta.tolerance == 0.1
