"""Repeat-run determinism: benchmark payloads are timing-free facts.

Two invocations of every registered benchmark must produce identical
payloads — tables, counters, hit rates, CRCs.  Timing lands only in
``BenchSample.value``; anything else that varied between runs would
make the committed ``BENCH_<area>.json`` baselines churn on every
``--update`` and would mark a benchmark whose *workload* (not speed)
is nondeterministic — exactly the flake class this test deflakes.

Runs at smoke scale so the double execution of the full suite stays
test-suite cheap.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.registry import all_specs
from repro.bench.runner import SMOKE_SCALE


@pytest.mark.parametrize("spec", all_specs(),
                         ids=lambda s: f"{s.area}/{s.metric}")
def test_payload_identical_across_invocations(spec):
    first = spec.run(scale=SMOKE_SCALE)
    second = spec.run(scale=SMOKE_SCALE)
    assert first.payload == second.payload, spec.key
    # Payloads must also be JSON-clean (they get committed verbatim)
    # and free of anything that smells like a wall-clock measurement.
    encoded = json.dumps(first.payload, sort_keys=True)
    decoded = json.loads(encoded)
    assert decoded == first.payload
    for key in first.payload:
        assert not any(t in key for t in ("elapsed", "seconds", "_ms", "_s")), \
            f"{spec.key}: payload key {key!r} looks like a timing"


def test_payloads_are_nonempty():
    """Every benchmark explains itself: no payload-less metrics."""
    for spec in all_specs():
        sample = spec.run(scale=SMOKE_SCALE)
        assert sample.payload, f"{spec.key} returned an empty payload"
        assert sample.value == sample.value, f"{spec.key} returned NaN"
