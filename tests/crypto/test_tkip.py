"""Michael MIC (IEEE vectors) and TKIP session behaviour."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.tkip import MichaelMic, TkipError, TkipSession


# IEEE 802.11i Annex test vectors (chained: each MIC keys the next).
MICHAEL_VECTORS = [
    ("0000000000000000", b"", "82925c1ca1d130b8"),
    ("82925c1ca1d130b8", b"M", "434721ca40639b3f"),
    ("434721ca40639b3f", b"Mi", "e8f9becae97e5d29"),
    ("e8f9becae97e5d29", b"Mic", "90038fc6cf13c1db"),
    ("90038fc6cf13c1db", b"Mich", "d55e100510128986"),
    ("d55e100510128986", b"Michael", "0a942b124ecaa546"),
]


@pytest.mark.parametrize("key_hex,message,expected", MICHAEL_VECTORS)
def test_michael_ieee_vectors(key_hex, message, expected):
    assert MichaelMic(bytes.fromhex(key_hex)).compute(message).hex() == expected


def test_michael_key_length_enforced():
    with pytest.raises(ValueError):
        MichaelMic(b"short")


def _pair():
    tx = TkipSession(b"T" * 16, b"M" * 8, b"\xaa\xbb\xcc\xdd\xee\xff")
    rx = TkipSession(b"T" * 16, b"M" * 8, b"\xaa\xbb\xcc\xdd\xee\xff")
    return tx, rx


@given(st.binary(min_size=1, max_size=300))
def test_tkip_roundtrip(payload):
    tx, rx = _pair()
    assert rx.decapsulate(tx.encapsulate(payload)) == payload


def test_tkip_per_packet_keys_differ():
    tx, _ = _pair()
    a = tx.encapsulate(b"same plaintext")
    b = tx.encapsulate(b"same plaintext")
    assert a[6:] != b[6:]  # different ciphertext under different TSC


def test_tkip_replay_rejected():
    tx, rx = _pair()
    frame = tx.encapsulate(b"data")
    assert rx.decapsulate(frame) == b"data"
    with pytest.raises(TkipError):
        rx.decapsulate(frame)


def test_tkip_out_of_order_old_tsc_rejected():
    tx, rx = _pair()
    f1 = tx.encapsulate(b"one")
    f2 = tx.encapsulate(b"two")
    assert rx.decapsulate(f2) == b"two"
    with pytest.raises(TkipError):
        rx.decapsulate(f1)  # TSC went backward


def test_tkip_tamper_detected_by_michael():
    tx, rx = _pair()
    frame = bytearray(tx.encapsulate(b"important data"))
    frame[8] ^= 0x01
    with pytest.raises(TkipError):
        rx.decapsulate(bytes(frame))


def test_tkip_wrong_temporal_key_fails():
    tx = TkipSession(b"T" * 16, b"M" * 8, b"\x00" * 6)
    rx = TkipSession(b"X" * 16, b"M" * 8, b"\x00" * 6)
    with pytest.raises(TkipError):
        rx.decapsulate(tx.encapsulate(b"data"))


def test_tkip_short_frame_rejected():
    _, rx = _pair()
    with pytest.raises(TkipError):
        rx.decapsulate(b"\x01\x02\x03")


def test_tkip_key_length_validation():
    with pytest.raises(ValueError):
        TkipSession(b"short", b"M" * 8, b"\x00" * 6)
