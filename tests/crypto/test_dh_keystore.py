"""Diffie-Hellman agreement and the out-of-band KeyStore."""

import pytest

from repro.crypto.dh import (
    DH_GROUP_1536,
    DiffieHellman,
    DhGroup,
    authenticate_exchange,
    derive_key,
)
from repro.crypto.dh import DH_GROUP_TOY
from repro.crypto.keystore import Credential, KeyStore
from repro.sim.errors import ConfigurationError
from repro.sim.rng import SimRandom


def test_toy_group_agreement():
    a = DiffieHellman(DH_GROUP_TOY, SimRandom(1))
    b = DiffieHellman(DH_GROUP_TOY, SimRandom(2))
    assert a.shared_secret(b.public) == b.shared_secret(a.public)


def test_1536_group_agreement():
    a = DiffieHellman(DH_GROUP_1536, SimRandom(10))
    b = DiffieHellman(DH_GROUP_1536, SimRandom(20))
    shared = a.shared_secret(b.public)
    assert shared == b.shared_secret(a.public)
    assert len(shared) == 192  # 1536 bits


def test_degenerate_public_values_rejected():
    a = DiffieHellman(DH_GROUP_TOY, SimRandom(3))
    for bad in (0, 1, DH_GROUP_TOY.p - 1, DH_GROUP_TOY.p):
        with pytest.raises(ValueError):
            a.shared_secret(bad)


def test_distinct_parties_distinct_secrets():
    a = DiffieHellman(DH_GROUP_TOY, SimRandom(4))
    b = DiffieHellman(DH_GROUP_TOY, SimRandom(5))
    c = DiffieHellman(DH_GROUP_TOY, SimRandom(6))
    assert a.shared_secret(b.public) != a.shared_secret(c.public)


def test_derive_key_length_and_labels():
    assert len(derive_key(b"s", "enc", 7)) == 7
    assert len(derive_key(b"s", "enc", 64)) == 64
    assert derive_key(b"s", "enc", 16) != derive_key(b"s", "mac", 16)
    assert derive_key(b"s", "enc", 16, b"sid1") != derive_key(b"s", "enc", 16, b"sid2")


def test_authenticate_exchange_binds_psk():
    t = b"transcript"
    assert authenticate_exchange(b"psk1", t) != authenticate_exchange(b"psk2", t)
    assert authenticate_exchange(b"psk1", t) == authenticate_exchange(b"psk1", t)


# ----------------------------------------------------------------------
# KeyStore
# ----------------------------------------------------------------------

def test_keystore_enroll_lookup():
    ks = KeyStore()
    cred = ks.enroll("vpn.corp", b"secret")
    assert ks.lookup("vpn.corp") is cred
    assert "vpn.corp" in ks
    assert len(ks) == 1
    assert ks.lookup("other") is None


def test_keystore_require_missing_raises():
    ks = KeyStore()
    with pytest.raises(ConfigurationError):
        ks.require("vpn.corp")


def test_keystore_provenance_policy():
    """§5.2.1: a purchased certificate is not trust."""
    ks = KeyStore()
    ks.enroll("hotspot.example", b"s", provenance="purchased-cert")
    with pytest.raises(ConfigurationError):
        ks.require("hotspot.example", trusted_only=True)
    # But explicit opt-out works (for the experiment's control arm).
    assert ks.require("hotspot.example", trusted_only=False).secret == b"s"


def test_keystore_trustworthy_provenances():
    assert Credential("p", b"s", "out-of-band").trustworthy
    assert Credential("p", b"s", "secure-network").trustworthy
    assert not Credential("p", b"s", "in-band").trustworthy


def test_keystore_rejects_empty_secret():
    with pytest.raises(ConfigurationError):
        KeyStore().enroll("x", b"")


def test_credential_fingerprint_not_secret():
    cred = Credential("p", b"super-secret")
    assert b"super-secret".hex() not in cred.fingerprint()
    assert len(cred.fingerprint()) == 12
