"""FMS key recovery: weak-IV classification and end-to-end cracking."""

import pytest

from repro.crypto.fms import FmsAttack, FmsSample, is_weak_iv, weak_iv_for
from repro.crypto.rc4 import rc4_keystream
from repro.crypto.wep import WepKey
from repro.sim.rng import SimRandom


def _samples_for(key: WepKey, byte_index: int, count: int):
    """Generate weak-IV observations against a real per-packet keystream."""
    for x in range(count):
        iv = weak_iv_for(byte_index, x)
        yield iv, rc4_keystream(key.per_packet_key(iv), 1)[0]


def test_weak_iv_classification():
    assert is_weak_iv(b"\x03\xff\x00")          # targets byte 0
    assert is_weak_iv(b"\x03\xff\x00", 0)
    assert not is_weak_iv(b"\x03\xff\x00", 1)
    assert is_weak_iv(b"\x07\xff\x42", 4)
    assert not is_weak_iv(b"\x03\xfe\x00")      # second byte must be 255
    assert not is_weak_iv(b"\x02\xff\x00")      # A = -1 invalid
    assert not is_weak_iv(b"\x11\xff\x00", 5)   # wrong byte index


def test_weak_iv_for_construction():
    assert weak_iv_for(0) == b"\x03\xff\x00"
    assert weak_iv_for(4, 0x99) == b"\x07\xff\x99"
    with pytest.raises(ValueError):
        weak_iv_for(13)


def test_sample_validation():
    with pytest.raises(ValueError):
        FmsSample(b"\x00\x00", 1)
    with pytest.raises(ValueError):
        FmsSample(b"\x00\x00\x00", 300)


def test_add_sample_filters_non_weak():
    attack = FmsAttack(key_length=5)
    assert attack.add_sample(b"\x03\xff\x01", 0x10) is True
    assert attack.add_sample(b"\x03\x00\x01", 0x10) is False
    assert attack.add_sample(b"\x20\xff\x01", 0x10) is False  # A=29 > keylen
    assert attack.samples_seen == 3
    assert attack.weak_samples == 1


def test_votes_require_sequential_prefix():
    attack = FmsAttack(key_length=5)
    with pytest.raises(ValueError):
        attack.votes_for_byte(2, b"x")  # prefix must be exactly 2 bytes


def test_full_recovery_40bit():
    key = WepKey.from_passphrase("SECRET", bits=40)
    attack = FmsAttack(key_length=5)
    for a in range(5):
        attack.extend(_samples_for(key, a, 256))
    assert attack.recover() == key.key


def test_recovery_with_verifier_uses_fewer_samples():
    """Ranked search + verification resolves with fewer weak IVs than
    a straight vote — Airsnort's 'breadth' trick."""
    key = WepKey(b"\x01\x9a\xfcZq")
    truth = key.key

    def verifier(candidate: bytes) -> bool:
        return candidate == truth

    attack = FmsAttack(key_length=5)
    for a in range(5):
        attack.extend(_samples_for(key, a, 96))
    assert attack.recover(verifier=verifier, search_width=4) == truth


def test_insufficient_samples_returns_none_or_wrong():
    key = WepKey.from_passphrase("SECRET", bits=40)
    attack = FmsAttack(key_length=5)
    # Zero samples: cannot recover.
    assert attack.recover() is None


def test_recovery_is_deterministic():
    key = WepKey(b"ABCDE")
    results = []
    for _ in range(2):
        attack = FmsAttack(key_length=5)
        for a in range(5):
            attack.extend(_samples_for(key, a, 200))
        results.append(attack.recover())
    assert results[0] == results[1] == key.key


def test_104bit_recovery():
    key = WepKey.from_passphrase("thirteenchars", bits=104)
    attack = FmsAttack(key_length=13)
    for a in range(13):
        attack.extend(_samples_for(key, a, 256))
    assert attack.recover() == key.key


def test_bucket_sizes_report_coverage():
    attack = FmsAttack(key_length=5)
    attack.extend(_samples_for(WepKey(b"AAAAA"), 2, 10))
    sizes = attack.bucket_sizes()
    assert sizes[2] == 10
    assert sum(sizes) == 10
