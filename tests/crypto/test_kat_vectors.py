"""Known-answer tests from committed fixtures.

Two fixture files under ``tests/crypto/fixtures/``:

- ``hmac_rfc2202.json`` — the complete RFC 2202 vector sets for
  HMAC-MD5 and HMAC-SHA-1 (seven cases each).  These pin the repo's
  from-scratch RFC 2104 implementation to the published answers, not
  merely to the stdlib.
- ``wpa_kdf_kat.json`` — pinned outputs of the repo's labelled-SHA1
  WPA KDF.  The KDF is a documented simplification (see the
  ``wpa_kdf`` module docstring) so there is no external standard to
  cite; the fixture freezes the key schedule so a silent change shows
  up as a test failure instead of a world-behavior drift.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.crypto.hmac import hmac_md5, hmac_sha1
from repro.crypto.wpa_kdf import derive_ptk, psk_from_passphrase
from repro.dot11.mac import MacAddress

FIXTURES = Path(__file__).parent / "fixtures"
RFC2202 = json.loads((FIXTURES / "hmac_rfc2202.json").read_text())
WPA_KDF = json.loads((FIXTURES / "wpa_kdf_kat.json").read_text())


@pytest.mark.parametrize("case", RFC2202["hmac_md5"],
                         ids=lambda c: c["name"])
def test_rfc2202_hmac_md5(case):
    got = hmac_md5(bytes.fromhex(case["key"]), bytes.fromhex(case["data"]))
    assert got.hex() == case["digest"]


@pytest.mark.parametrize("case", RFC2202["hmac_sha1"],
                         ids=lambda c: c["name"])
def test_rfc2202_hmac_sha1(case):
    got = hmac_sha1(bytes.fromhex(case["key"]), bytes.fromhex(case["data"]))
    assert got.hex() == case["digest"]


def test_rfc2202_fixture_is_complete():
    # RFC 2202 defines seven cases per algorithm; a trimmed fixture
    # would silently weaken the pin.
    assert len(RFC2202["hmac_md5"]) == 7
    assert len(RFC2202["hmac_sha1"]) == 7


@pytest.mark.parametrize("case", WPA_KDF["psk_from_passphrase"],
                         ids=lambda c: c["ssid"])
def test_psk_from_passphrase_kat(case):
    psk = psk_from_passphrase(case["passphrase"], case["ssid"])
    assert psk.hex() == case["psk"]
    assert len(psk) == 32


@pytest.mark.parametrize("case", WPA_KDF["derive_ptk"],
                         ids=lambda c: c["psk"][:8])
def test_derive_ptk_kat(case):
    psk = bytes.fromhex(case["psk"])
    anonce = bytes.fromhex(case["anonce"])
    snonce = bytes.fromhex(case["snonce"])
    ap = MacAddress(case["ap_mac"])
    sta = MacAddress(case["sta_mac"])
    ptk = derive_ptk(psk, anonce, snonce, ap, sta)
    assert ptk.hex() == case["ptk"]
    assert len(ptk) == 48
    # role symmetry is part of the pinned contract: AP and STA derive
    # the same PTK regardless of who contributed which nonce
    assert derive_ptk(psk, snonce, anonce, sta, ap) == ptk
