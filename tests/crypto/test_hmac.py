"""HMAC (RFC 2104) against the standard library, plus RFC 2202 vectors."""

import hashlib
import hmac as stdhmac

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.hmac import constant_time_equal, hmac_md5, hmac_sha1


RFC2202_SHA1 = [
    (b"\x0b" * 20, b"Hi There", "b617318655057264e28bc0b6fb378c8ef146be00"),
    (b"Jefe", b"what do ya want for nothing?",
     "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"),
    (b"\xaa" * 80, b"Test Using Larger Than Block-Size Key - Hash Key First",
     "aa4ae5e15272d00e95705637ce8a3b55ed402112"),
]


@pytest.mark.parametrize("key,msg,expected", RFC2202_SHA1)
def test_rfc2202_sha1_vectors(key, msg, expected):
    assert hmac_sha1(key, msg).hex() == expected


@given(st.binary(min_size=1, max_size=200), st.binary(max_size=500))
def test_hmac_sha1_matches_stdlib(key, msg):
    assert hmac_sha1(key, msg) == stdhmac.new(key, msg, hashlib.sha1).digest()


@given(st.binary(min_size=1, max_size=200), st.binary(max_size=500))
def test_hmac_md5_matches_stdlib(key, msg):
    assert hmac_md5(key, msg) == stdhmac.new(key, msg, hashlib.md5).digest()


def test_key_longer_than_block_is_hashed_first():
    long_key = b"k" * 200
    assert hmac_sha1(long_key, b"m") == stdhmac.new(long_key, b"m", hashlib.sha1).digest()


def test_different_keys_different_macs():
    assert hmac_sha1(b"key1", b"msg") != hmac_sha1(b"key2", b"msg")


def test_constant_time_equal():
    assert constant_time_equal(b"abc", b"abc")
    assert not constant_time_equal(b"abc", b"abd")
    assert not constant_time_equal(b"abc", b"abcd")
    assert constant_time_equal(b"", b"")
