"""The numpy FMS kernel must agree exactly with the scalar reference."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.fms import FmsAttack, weak_iv_for
from repro.crypto.fms_fast import votes_for_byte_vectorized
from repro.crypto.rc4 import rc4_keystream
from repro.crypto.wep import WepKey
from repro.sim.rng import SimRandom


def _attack_with_samples(key: WepKey, a: int, xs, outs_override=None):
    attack = FmsAttack(key_length=len(key.key))
    for idx, x in enumerate(xs):
        iv = weak_iv_for(a, x)
        out = (outs_override[idx] if outs_override is not None
               else rc4_keystream(key.per_packet_key(iv), 1)[0])
        attack.add_sample(iv, out)
    return attack


@settings(max_examples=30, deadline=None)
@given(
    key_bytes=st.binary(min_size=5, max_size=5),
    a=st.integers(min_value=0, max_value=4),
    xs=st.lists(st.integers(0, 255), min_size=1, max_size=120, unique=True),
)
def test_vectorized_equals_scalar(key_bytes, a, xs):
    key = WepKey(key_bytes)
    attack = _attack_with_samples(key, a, xs)
    prefix = key.key[:a]
    scalar = attack.votes_for_byte(a, prefix, use_numpy=False)
    vectorized = attack.votes_for_byte(a, prefix, use_numpy=True)
    assert scalar == vectorized


@settings(max_examples=20, deadline=None)
@given(
    a=st.integers(min_value=0, max_value=4),
    n=st.integers(min_value=1, max_value=80),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_vectorized_equals_scalar_on_noise(a, n, seed):
    """Agreement must hold for arbitrary (even non-keystream) outputs."""
    rng = SimRandom(seed)
    key = WepKey(rng.bytes(5))
    xs = rng.sample(range(256), min(n, 256))
    outs = [rng.randint(0, 255) for _ in xs]
    attack = _attack_with_samples(key, a, xs, outs_override=outs)
    prefix = key.key[:a]
    assert attack.votes_for_byte(a, prefix, use_numpy=False) == \
        attack.votes_for_byte(a, prefix, use_numpy=True)


def test_empty_bucket():
    assert votes_for_byte_vectorized([], 2, b"ab") == [0] * 256


def test_prefix_length_validated():
    attack = _attack_with_samples(WepKey(b"AAAAA"), 2, range(10))
    with pytest.raises(ValueError):
        attack.votes_for_byte(2, b"x", use_numpy=True)


def test_recovery_works_through_numpy_path():
    """Full key recovery with the dispatch threshold actually crossed."""
    key = WepKey.from_passphrase("SECRET", bits=40)
    attack = FmsAttack(key_length=5)
    for a in range(5):
        for x in range(200):  # 200 > MIN_SAMPLES_FOR_NUMPY
            iv = weak_iv_for(a, x)
            attack.add_sample(iv, rc4_keystream(key.per_packet_key(iv), 1)[0])
    assert attack.recover() == key.key


def test_numpy_path_is_faster_on_large_buckets():
    """The point of the kernel: measured speedup at scale."""
    import time
    key = WepKey(b"BENCH")
    attack = _attack_with_samples(key, 4, range(256))
    prefix = key.key[:4]

    def timed(use_numpy, reps=20):
        start = time.perf_counter()
        for _ in range(reps):
            attack.votes_for_byte(4, prefix, use_numpy=use_numpy)
        return time.perf_counter() - start

    timed(True, reps=2)  # warm numpy
    scalar_t = timed(False)
    numpy_t = timed(True)
    assert numpy_t < scalar_t  # at 256 samples the vector path must win
