"""MD5 and SHA-1 against hashlib and RFC vectors."""

import hashlib

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.md5 import MD5, md5, md5_hexdigest
from repro.crypto.sha1 import SHA1, sha1, sha1_hexdigest

RFC1321_VECTORS = [
    (b"", "d41d8cd98f00b204e9800998ecf8427e"),
    (b"a", "0cc175b9c0f1b6a831c399e269772661"),
    (b"abc", "900150983cd24fb0d6963f7d28e17f72"),
    (b"message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
    (b"abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b"),
]


@pytest.mark.parametrize("data,expected", RFC1321_VECTORS)
def test_md5_rfc1321_vectors(data, expected):
    assert md5_hexdigest(data) == expected


def test_sha1_fips_vectors():
    assert sha1_hexdigest(b"abc") == "a9993e364706816aba3e25717850c26c9cd0d89d"
    assert sha1_hexdigest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq") == \
        "84983e441c3bd26ebaae4aa1f95129e5e54670f1"


@pytest.mark.parametrize("n", [0, 1, 55, 56, 57, 63, 64, 65, 119, 128, 1000])
def test_md5_padding_boundaries(n):
    data = b"a" * n
    assert md5_hexdigest(data) == hashlib.md5(data).hexdigest()


@pytest.mark.parametrize("n", [0, 1, 55, 56, 57, 63, 64, 65, 119, 128, 1000])
def test_sha1_padding_boundaries(n):
    data = b"b" * n
    assert sha1_hexdigest(data) == hashlib.sha1(data).hexdigest()


@given(st.binary(max_size=4096))
def test_md5_matches_hashlib(data):
    assert md5(data) == hashlib.md5(data).digest()


@given(st.binary(max_size=4096))
def test_sha1_matches_hashlib(data):
    assert sha1(data) == hashlib.sha1(data).digest()


@given(st.lists(st.binary(max_size=100), max_size=10))
def test_incremental_update_equals_one_shot(chunks):
    joined = b"".join(chunks)
    m = MD5()
    s = SHA1()
    for chunk in chunks:
        m.update(chunk)
        s.update(chunk)
    assert m.digest() == md5(joined)
    assert s.digest() == sha1(joined)


def test_digest_is_idempotent_mid_stream():
    m = MD5(b"hello")
    first = m.digest()
    assert m.digest() == first
    m.update(b" world")
    assert m.digest() == md5(b"hello world")


def test_copy_is_independent():
    a = SHA1(b"base")
    b = a.copy()
    b.update(b"more")
    assert a.digest() == sha1(b"base")
    assert b.digest() == sha1(b"basemore")
