"""WEP: framing, roundtrip, failure modes, and the bit-flipping flaw."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.crc import crc32
from repro.crypto.rc4 import rc4_keystream
from repro.crypto.wep import (
    IvGenerator,
    WepError,
    WepKey,
    wep_decrypt,
    wep_encrypt,
    wep_first_keystream_byte,
    wep_iv_of,
)
from repro.sim.rng import SimRandom


KEY40 = WepKey.from_passphrase("SECRET", bits=40)
KEY104 = WepKey.from_passphrase("SECRET", bits=104)


def test_passphrase_mapping():
    assert KEY40.key == b"SECRE"
    assert KEY104.key == b"SECRETSECRETS"
    assert KEY40.bits == 40 and KEY104.bits == 104


def test_invalid_key_lengths_rejected():
    with pytest.raises(ValueError):
        WepKey(b"1234")
    with pytest.raises(ValueError):
        WepKey(b"12345678901234")
    with pytest.raises(ValueError):
        WepKey.from_passphrase("x", bits=64)
    with pytest.raises(ValueError):
        WepKey.from_passphrase("", bits=40)


@given(st.binary(min_size=1, max_size=500), st.binary(min_size=3, max_size=3))
def test_roundtrip(plaintext, iv):
    body = wep_encrypt(KEY40, iv, plaintext)
    assert wep_decrypt(KEY40, body) == plaintext


def test_frame_layout():
    body = wep_encrypt(KEY40, b"\x01\x02\x03", b"payload", key_id=2)
    assert body[:3] == b"\x01\x02\x03"     # cleartext IV
    assert body[3] == 2 << 6               # KeyID byte
    assert len(body) == 3 + 1 + 7 + 4      # IV + keyid + payload + ICV
    assert wep_iv_of(body) == b"\x01\x02\x03"


def test_wrong_key_fails_icv():
    body = wep_encrypt(KEY40, b"\x00\x00\x01", b"data")
    with pytest.raises(WepError):
        wep_decrypt(WepKey(b"WRONG"), body)


def test_truncated_body_rejected():
    with pytest.raises(WepError):
        wep_decrypt(KEY40, b"\x00\x01")


def test_naive_corruption_detected():
    """Random corruption (without CRC fix-up) does fail the ICV."""
    body = bytearray(wep_encrypt(KEY40, b"\x05\x05\x05", b"hello world"))
    body[6] ^= 0xFF
    with pytest.raises(WepError):
        wep_decrypt(KEY40, bytes(body))


def test_bit_flipping_attack_defeats_icv():
    """The legendary flaw: flip plaintext bits through the ciphertext
    and repair the encrypted ICV using CRC linearity — no key needed."""
    plaintext = b"transfer $0000100 to alice"
    iv = b"\x0a\x0b\x0c"
    body = bytearray(wep_encrypt(KEY40, iv, plaintext))
    # Attacker wants to change "alice" -> "mally".
    delta = bytes(a ^ b for a, b in zip(b"alice", b"mally"))
    offset = plaintext.find(b"alice")
    full_delta = bytearray(len(plaintext))
    full_delta[offset:offset + 5] = delta
    # XOR the delta into the ciphertext (after IV+KeyID header).
    for i, d in enumerate(full_delta):
        body[4 + i] ^= d
    # Fix the encrypted ICV: crc(p^d) = crc(p) ^ crc(d) ^ crc(0).
    icv_delta = crc32(bytes(full_delta)) ^ crc32(b"\x00" * len(plaintext))
    icv_delta_bytes = icv_delta.to_bytes(4, "little")
    for i, d in enumerate(icv_delta_bytes):
        body[4 + len(plaintext) + i] ^= d
    # The AP accepts the forged frame as valid.
    recovered = wep_decrypt(KEY40, bytes(body))
    assert recovered == b"transfer $0000100 to mally"


def test_first_keystream_byte_recovery():
    """LLC/SNAP known plaintext leaks keystream byte 0."""
    iv = b"\x03\xff\x07"
    llc_payload = b"\xaa\xaa\x03\x00\x00\x00\x08\x00rest"
    body = wep_encrypt(KEY40, iv, llc_payload)
    ks0 = wep_first_keystream_byte(body)
    assert ks0 == rc4_keystream(KEY40.per_packet_key(iv), 1)[0]


def test_iv_generator_sequential_wraps():
    gen = IvGenerator("sequential", start=0xFFFFFE)
    assert gen.next_iv() == b"\xff\xff\xfe"
    assert gen.next_iv() == b"\xff\xff\xff"
    assert gen.next_iv() == b"\x00\x00\x00"


def test_iv_generator_random_needs_rng():
    with pytest.raises(ValueError):
        IvGenerator("random")
    gen = IvGenerator("random", rng=SimRandom(1))
    assert len(gen.next_iv()) == 3


def test_per_packet_key_is_iv_prefix():
    key = KEY40.per_packet_key(b"\x01\x02\x03")
    assert key == b"\x01\x02\x03" + b"SECRE"
    with pytest.raises(ValueError):
        KEY40.per_packet_key(b"\x01\x02")
