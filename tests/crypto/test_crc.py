"""CRC-32 against zlib and its linearity (the WEP ICV flaw)."""

import zlib

from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.crc import crc32, crc32_combine_xor, crc32_table


@given(st.binary(max_size=2048))
def test_matches_zlib(data):
    assert crc32(data) == zlib.crc32(data)


def test_known_values():
    assert crc32(b"") == 0
    assert crc32(b"123456789") == 0xCBF43926  # the standard check value


def test_incremental_computation():
    whole = crc32(b"hello world")
    # zlib-style chaining
    part = crc32(b" world", crc32(b"hello"))
    assert whole == part


def test_table_shape():
    table = crc32_table()
    assert len(table) == 256
    assert len(set(table)) == 256  # all entries distinct


@given(st.binary(min_size=4, max_size=64), st.binary(min_size=4, max_size=64))
def test_linearity_enables_wep_bit_flipping(a, b):
    """crc(a xor b) == crc(a) xor crc(b) xor crc(0^len).

    This identity is why WEP's encrypted CRC provides no integrity:
    an attacker XORs a delta into the ciphertext and the matching
    CRC delta into the encrypted ICV, never knowing the key.
    """
    n = min(len(a), len(b))
    a, b = a[:n], b[:n]
    xored = bytes(x ^ y for x, y in zip(a, b))
    assert crc32(xored) == crc32_combine_xor(crc32(a), crc32(b), crc32(b"\x00" * n))
