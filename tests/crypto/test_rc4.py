"""RC4 against published test vectors and structural properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.rc4 import RC4, ksa, ksa_partial, prga, rc4_keystream


# Classic vectors (Wikipedia / original cypherpunks posting).
VECTORS = [
    (b"Key", b"Plaintext", "bbf316e8d940af0ad3"),
    (b"Wiki", b"pedia", "1021bf0420"),
    (b"Secret", b"Attack at dawn", "45a01f645fc35b383552544b9bf5"),
]


@pytest.mark.parametrize("key,plaintext,expected_hex", VECTORS)
def test_published_vectors(key, plaintext, expected_hex):
    assert RC4(key).crypt(plaintext).hex() == expected_hex


@pytest.mark.parametrize("key,plaintext,_", VECTORS)
def test_decrypt_is_encrypt(key, plaintext, _):
    ct = RC4(key).crypt(plaintext)
    assert RC4(key).crypt(ct) == plaintext


def test_ksa_is_a_permutation():
    s = ksa(b"anything")
    assert sorted(s) == list(range(256))


def test_ksa_partial_prefix_agrees_with_full():
    key = b"0123456789"
    full = ksa(key)
    # After all 256 rounds the partial equals the full schedule.
    partial, _ = ksa_partial(key, 256)
    assert partial == full


def test_ksa_rejects_empty_key():
    with pytest.raises(ValueError):
        ksa(b"")


def test_keystream_continuity():
    """A stateful cipher's concatenated output equals one-shot output."""
    a = RC4(b"streamkey")
    chunked = a.keystream(10) + a.keystream(7) + a.keystream(3)
    assert chunked == rc4_keystream(b"streamkey", 20)


def test_crypt_interleaves_with_keystream():
    a = RC4(b"k2")
    b = RC4(b"k2")
    assert a.crypt(b"\x00" * 16) == b.keystream(16)


@given(st.binary(min_size=1, max_size=32), st.binary(max_size=256))
def test_roundtrip_property(key, data):
    assert RC4(key).crypt(RC4(key).crypt(data)) == data


@given(st.binary(min_size=1, max_size=16))
def test_keystream_not_trivially_zero(key):
    ks = rc4_keystream(key, 64)
    assert ks != b"\x00" * 64


def test_prga_generator_matches_class():
    gen = prga(ksa(b"genkey"))
    from_gen = bytes(next(gen) for _ in range(12))
    assert from_gen == rc4_keystream(b"genkey", 12)
