"""Property-based invariants of the VPN record layer and ESP sealing."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.defense.ipsec import esp_open, esp_seal
from repro.defense.vpn import SshRecordLayer


def _pair():
    a = SshRecordLayer(b"E" * 16, b"e" * 16, b"M" * 20, b"m" * 20)
    b = SshRecordLayer(b"e" * 16, b"E" * 16, b"m" * 20, b"M" * 20)
    return a, b


@settings(max_examples=50, deadline=None)
@given(st.lists(st.binary(min_size=1, max_size=300), min_size=1, max_size=20))
def test_record_stream_roundtrip(messages):
    """seal;open over any message sequence is the identity."""
    a, b = _pair()
    for message in messages:
        assert b.open(a.seal(message)) == message


@settings(max_examples=50, deadline=None)
@given(message=st.binary(min_size=1, max_size=200),
       flip_at=st.integers(min_value=0, max_value=10_000),
       flip_bit=st.integers(min_value=0, max_value=7))
def test_any_single_bitflip_is_detected(message, flip_at, flip_bit):
    """No single-bit corruption of a sealed record ever opens."""
    a, b = _pair()
    record = bytearray(a.seal(message))
    idx = flip_at % len(record)
    record[idx] ^= 1 << flip_bit
    opened = b.open(bytes(record))
    # Either rejected outright (None) — or, if the flip landed in the
    # sequence prefix such that MAC fails anyway, still None.  Never the
    # original message silently accepted as modified.
    assert opened is None


@settings(max_examples=50, deadline=None)
@given(message=st.binary(min_size=1, max_size=200))
def test_ciphertext_never_leaks_plaintext(message):
    """The sealed record does not contain the plaintext verbatim
    (RC4 with a random key makes a literal match astronomically
    unlikely; a hit means encryption is broken)."""
    a, _ = _pair()
    if len(message) >= 4:  # tiny strings can collide by chance
        assert message not in a.seal(message)


@settings(max_examples=50, deadline=None)
@given(seq=st.integers(min_value=0, max_value=2**32 - 1),
       inner=st.binary(min_size=1, max_size=300))
def test_esp_seal_open_identity(seq, inner):
    enc, mac = b"enc-key", b"mac-key"
    assert esp_open(enc, mac, esp_seal(enc, mac, seq, inner)) == (seq, inner)


@settings(max_examples=50, deadline=None)
@given(seq=st.integers(min_value=0, max_value=2**32 - 1),
       inner=st.binary(min_size=1, max_size=100),
       flip_at=st.integers(min_value=0, max_value=10_000))
def test_esp_any_corruption_detected(seq, inner, flip_at):
    enc, mac = b"enc-key", b"mac-key"
    datagram = bytearray(esp_seal(enc, mac, seq, inner))
    datagram[flip_at % len(datagram)] ^= 0x01
    assert esp_open(enc, mac, bytes(datagram)) is None
