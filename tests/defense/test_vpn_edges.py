"""VPN edge paths: malformed framing, oversized frames, session bookkeeping."""

import struct

import pytest

from repro.core.scenario import VPN_IP, build_corp_scenario
from repro.defense.vpn import _FrameBuffer, _frame
from repro.sim.errors import ProtocolError


def test_frame_buffer_reassembles_across_chunks():
    buf = _FrameBuffer()
    raw = _frame(5, b"payload-one") + _frame(4, b"two")
    frames = []
    for i in range(0, len(raw), 3):
        frames.extend(buf.feed(raw[i:i + 3]))
    assert frames == [(5, b"payload-one"), (4, b"two")]


def test_frame_buffer_rejects_absurd_length():
    buf = _FrameBuffer()
    with pytest.raises(ProtocolError):
        buf.feed(struct.pack(">I", 1 << 24) + b"x")


def test_frame_buffer_rejects_zero_length():
    buf = _FrameBuffer()
    with pytest.raises(ProtocolError):
        buf.feed(struct.pack(">I", 0))


def test_server_session_count_tracks_connects_and_disconnects():
    scenario = build_corp_scenario(seed=71, with_rogue=False)
    victim = scenario.add_victim()
    scenario.sim.run_for(5.0)
    assert scenario.vpn_server.active_sessions() == 0
    vpn = scenario.connect_vpn(victim)
    scenario.sim.run_for(5.0)
    assert scenario.vpn_server.active_sessions() == 1
    vpn.disconnect()
    scenario.sim.run_for(5.0)
    assert scenario.vpn_server.active_sessions() == 0


def test_two_clients_one_server():
    scenario = build_corp_scenario(seed=72, with_rogue=False)
    from repro.core.scenario import VPN_SHARED_SECRET
    scenario.vpn_server.keystore.enroll("victim2", VPN_SHARED_SECRET)
    v1 = scenario.add_victim(ip="10.0.0.23", name="victim")
    v2 = scenario.add_victim(ip="10.0.0.27", name="victim2",
                             position=__import__("repro.radio.propagation",
                                                 fromlist=["Position"]).Position(35.0, 3.0))
    scenario.sim.run_for(5.0)
    vpn1 = scenario.connect_vpn(v1)
    from repro.crypto.keystore import KeyStore
    from repro.core.scenario import VPN_SERVER_NAME
    from repro.defense.vpn import VpnClient
    ks2 = KeyStore()
    ks2.enroll(VPN_SERVER_NAME, VPN_SHARED_SECRET)
    vpn2 = VpnClient(v2, ks2, VPN_SERVER_NAME, VPN_IP)
    vpn2.connect()
    scenario.sim.run_for(8.0)
    assert vpn1.connected and vpn2.connected
    assert scenario.vpn_server.active_sessions() == 2
    assert vpn1.tun.ip != vpn2.tun.ip  # distinct inner addresses
    # Both move traffic concurrently.
    r1, r2 = [], []
    v1.ping("198.51.100.80", on_reply=r1.append)
    v2.ping("198.51.100.80", on_reply=r2.append)
    scenario.sim.run_for(5.0)
    assert r1 and r2
