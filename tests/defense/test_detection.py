"""§2.3 detection: sequence-control monitoring, site survey, wired census."""

import pytest

from repro.attacks.deauth import DeauthAttacker
from repro.attacks.sniffer import MonitorSniffer
from repro.core.scenario import build_corp_scenario
from repro.defense.audit import AuthorizedAp, radio_site_survey, wired_side_census
from repro.wids.detectors import SeqCtlMonitor
from repro.dot11.capture import CapturedFrame, FrameCapture
from repro.dot11.frames import make_beacon
from repro.dot11.mac import MacAddress
from repro.radio.propagation import Position

BSSID = MacAddress("aa:bb:cc:dd:00:01")


def _synthetic_capture(streams, channel_by_stream=None):
    """Build a capture of beacons from one or more seq-number streams
    all claiming the same transmitter address."""
    cap = FrameCapture()
    t = 0.0
    idx = [0] * len(streams)
    # interleave round-robin
    total = sum(len(s) for s in streams)
    while sum(idx) < total:
        for i, stream in enumerate(streams):
            if idx[i] < len(stream):
                ch = (channel_by_stream or {}).get(i, 1)
                frame = make_beacon(BSSID, "CORP", ch, seq=stream[idx[i]])
                cap.add(CapturedFrame(time=t, channel=ch, rssi_dbm=-50.0, frame=frame))
                idx[i] += 1
                t += 0.1
    return cap


def test_single_transmitter_not_flagged():
    cap = _synthetic_capture([list(range(100, 200))])
    verdict = SeqCtlMonitor(cap).analyze_transmitter(BSSID)
    assert not verdict.spoofed
    assert verdict.anomalies == 0


def test_single_transmitter_with_monitor_loss_not_flagged():
    """Missing every few frames creates small gaps — below threshold."""
    seqs = [s for s in range(100, 300) if s % 7 != 0]
    cap = _synthetic_capture([seqs])
    verdict = SeqCtlMonitor(cap, gap_threshold=64).analyze_transmitter(BSSID)
    assert not verdict.spoofed


def test_interleaved_streams_flagged():
    """Two radios under one address: gaps jump between the two counters."""
    cap = _synthetic_capture([list(range(100, 160)), list(range(3000, 3060))])
    verdict = SeqCtlMonitor(cap).analyze_transmitter(BSSID)
    assert verdict.spoofed
    assert "interleaved" in verdict.reason or "channels" in verdict.reason


def test_same_address_two_channels_flagged():
    cap = _synthetic_capture(
        [list(range(0, 30)), list(range(0, 30))],
        channel_by_stream={0: 1, 1: 6})
    verdict = SeqCtlMonitor(cap).analyze_transmitter(BSSID)
    assert verdict.spoofed
    assert "two radios" in verdict.reason


def test_wrap_around_not_flagged():
    seqs = list(range(4080, 4096)) + list(range(0, 50))
    cap = _synthetic_capture([seqs])
    verdict = SeqCtlMonitor(cap).analyze_transmitter(BSSID)
    assert not verdict.spoofed


def test_live_rogue_detected_by_monitor():
    """End-to-end: Fig. 1's cloned-BSSID rogue against a real capture."""
    scenario = build_corp_scenario(seed=91)
    sniffer = MonitorSniffer(scenario.sim, scenario.medium, Position(15.0, 5.0))
    scenario.sim.run_for(20.0)  # collect beacons from both APs
    monitor = SeqCtlMonitor(sniffer.capture)
    verdict = monitor.analyze_transmitter(scenario.ap.bssid)
    assert verdict.spoofed
    assert 6 in verdict.channels_seen and 1 in verdict.channels_seen


def test_live_clean_network_no_false_positive():
    scenario = build_corp_scenario(seed=92, with_rogue=False)
    sniffer = MonitorSniffer(scenario.sim, scenario.medium, Position(15.0, 5.0))
    victim = scenario.add_victim()
    scenario.sim.run_for(20.0)
    flagged = SeqCtlMonitor(sniffer.capture).flagged()
    assert flagged == []


def test_deauth_injector_detected():
    """The forged-deauth injector shares the AP's address but not its
    counter — classic Wright-style spoof evidence."""
    scenario = build_corp_scenario(seed=93, with_rogue=False)
    sniffer = MonitorSniffer(scenario.sim, scenario.medium, Position(15.0, 5.0))
    victim = scenario.add_victim()
    scenario.sim.run_for(5.0)
    attacker = DeauthAttacker(scenario.sim, scenario.medium, Position(10.0, 0.0),
                              ap_bssid=scenario.ap.bssid, channel=1,
                              target=victim.wlan.mac, rate_hz=10.0)
    attacker.start()
    scenario.sim.run_for(10.0)
    attacker.stop()
    verdict = SeqCtlMonitor(sniffer.capture).analyze_transmitter(scenario.ap.bssid)
    assert verdict.spoofed


# ----------------------------------------------------------------------
# audits
# ----------------------------------------------------------------------

def test_site_survey_flags_cloned_bssid_on_new_channel():
    scenario = build_corp_scenario(seed=94)
    sniffer = MonitorSniffer(scenario.sim, scenario.medium, Position(15.0, 5.0))
    scenario.sim.run_for(5.0)
    inventory = [AuthorizedAp(bssid=scenario.ap.bssid, ssid="CORP", channel=1)]
    findings = radio_site_survey(sniffer.capture, inventory)
    assert len(findings) == 1
    assert findings[0].channel == 6
    assert "cloned" in findings[0].issue


def test_site_survey_clean_inventory_no_findings():
    scenario = build_corp_scenario(seed=95, with_rogue=False)
    sniffer = MonitorSniffer(scenario.sim, scenario.medium, Position(15.0, 5.0))
    scenario.sim.run_for(5.0)
    inventory = [AuthorizedAp(bssid=scenario.ap.bssid, ssid="CORP", channel=1)]
    assert radio_site_survey(sniffer.capture, inventory) == []


def test_site_survey_flags_foreign_ssid_advertiser():
    cap = FrameCapture()
    foreign = MacAddress("66:66:66:66:66:66")
    cap.add(CapturedFrame(time=0, channel=3, rssi_dbm=-40,
                          frame=make_beacon(foreign, "CORP", 3)))
    findings = radio_site_survey(cap, [AuthorizedAp(BSSID, "CORP", 1)])
    assert len(findings) == 1
    assert "unknown BSSID" in findings[0].issue


def test_wired_census_blind_to_parprouted_rogue():
    """§2.3's wired-side monitoring cannot see the Fig. 1 rogue: it
    bridges at L3 behind its own valid-client MAC."""
    scenario = build_corp_scenario(seed=96)
    victim = scenario.add_victim()
    scenario.sim.run_for(5.0)
    rtts = []
    victim.ping("10.0.0.1", on_reply=rtts.append)
    scenario.sim.run_for(3.0)
    assert rtts  # traffic flowed through the rogue onto the wire
    inventory = [scenario.ap.bssid,
                 scenario.wan.router.interfaces["lan0"].mac,
                 victim.wlan.mac,
                 scenario.rogue.eth1.mac]  # the attacker IS an inventoried client
    unknown = wired_side_census(scenario.lan, inventory)
    assert unknown == []  # nothing new ever appeared on the wire


def test_wired_census_catches_uninventoried_device():
    scenario = build_corp_scenario(seed=97, with_rogue=False)
    victim = scenario.add_victim()
    scenario.sim.run_for(5.0)
    victim.ping("10.0.0.1")
    scenario.sim.run_for(2.0)
    unknown = wired_side_census(scenario.lan, [scenario.ap.bssid])
    assert victim.wlan.mac in unknown


# ----------------------------------------------------------------------
# the repro.defense.detection tombstone (shim retired in PR 10)
# ----------------------------------------------------------------------

def test_removed_shim_import_fails_with_migration_message():
    # The deprecated re-export shim is gone; the path now raises an
    # ImportError that names the new home.  Force a fresh import — a
    # cached (failed) module entry would mask the message.
    import importlib
    import sys

    sys.modules.pop("repro.defense.detection", None)
    with pytest.raises(ImportError, match=r"repro\.wids\.detectors"):
        importlib.import_module("repro.defense.detection")
    # The migrated names stay importable from their real home and the
    # defense package facade.
    from repro.defense import SeqCtlMonitor as pkg_monitor
    from repro.wids.detectors import SeqCtlMonitor as home_monitor
    assert pkg_monitor is home_monitor
