"""ICMP error generation and the first-hop rogue check."""

import pytest

from repro.core.scenario import build_corp_scenario
from repro.defense.pathcheck import check_first_hop
from repro.netstack.addressing import IPv4Address
from repro.netstack.icmp import IcmpType


def test_ttl_expiry_generates_time_exceeded():
    """A router answers TTL death with TIME_EXCEEDED from its own IP."""
    scenario = build_corp_scenario(seed=331, with_rogue=False)
    victim = scenario.add_victim()
    scenario.sim.run_for(5.0)
    errors = []
    # TTL=1 to a WAN host: dies at the border router (10.0.0.1).
    victim.ping("198.51.100.80", ttl=1,
                on_error=lambda ip, t: errors.append((str(ip), t)))
    scenario.sim.run_for(3.0)
    assert errors == [("10.0.0.1", int(IcmpType.TIME_EXCEEDED))]


def test_sufficient_ttl_reaches_destination():
    scenario = build_corp_scenario(seed=332, with_rogue=False)
    victim = scenario.add_victim()
    scenario.sim.run_for(5.0)
    rtts = []
    victim.ping("198.51.100.80", on_reply=rtts.append, ttl=2)
    scenario.sim.run_for(3.0)
    assert len(rtts) == 1


def test_traceroute_style_hop_discovery():
    """Increasing TTL walks the path hop by hop."""
    scenario = build_corp_scenario(seed=333)  # with the rogue in path
    victim = scenario.add_victim()
    scenario.sim.run_for(5.0)
    assert victim.associated_channel == 6
    hops = []

    def probe(ttl):
        victim.ping("198.51.100.80", ttl=ttl,
                    on_reply=lambda rtt: hops.append((ttl, "dest")),
                    on_error=lambda ip, t: hops.append((ttl, str(ip))))

    for ttl in (1, 2, 3):
        probe(ttl)
        scenario.sim.run_for(3.0)
    # Hop 1: the rogue's wlan0 (10.0.0.24); hop 2: the corp gateway;
    # hop 3: the destination itself.
    assert hops[0] == (1, "10.0.0.24")
    assert hops[1] == (2, "10.0.0.1")
    assert hops[2] == (3, "dest")


def test_first_hop_check_clean_network():
    scenario = build_corp_scenario(seed=334, with_rogue=False)
    victim = scenario.add_victim()
    scenario.sim.run_for(5.0)
    results = []
    check_first_hop(victim, "10.0.0.1", results.append)
    scenario.sim.run_for(5.0)
    assert len(results) == 1
    assert results[0].first_hop_is_gateway
    assert not results[0].suspicious
    assert "clean" in results[0].describe()


def test_first_hop_check_exposes_rogue():
    """The headline: a captured victim's TTL=1 probe names the rogue."""
    scenario = build_corp_scenario(seed=335)
    victim = scenario.add_victim()
    scenario.sim.run_for(5.0)
    assert victim.associated_channel == 6
    results = []
    check_first_hop(victim, "10.0.0.1", results.append)
    scenario.sim.run_for(5.0)
    assert len(results) == 1
    result = results[0]
    assert result.suspicious
    assert result.interloper == IPv4Address("10.0.0.24")  # the rogue's wlan0
    assert "ROGUE IN PATH" in result.describe()


def test_first_hop_check_times_out_gracefully():
    scenario = build_corp_scenario(seed=336, with_rogue=False)
    victim = scenario.add_victim()
    scenario.sim.run_for(5.0)
    results = []
    check_first_hop(victim, "10.0.0.99", results.append, timeout_s=2.0)  # nobody
    scenario.sim.run_for(5.0)
    assert len(results) == 1
    assert results[0].timed_out
    assert results[0].suspicious


def test_no_route_forwarding_generates_unreachable():
    scenario = build_corp_scenario(seed=337, with_rogue=False)
    victim = scenario.add_victim()
    scenario.sim.run_for(5.0)
    errors = []
    # The border router has no route for this prefix.
    victim.ping("172.31.0.1", on_error=lambda ip, t: errors.append((str(ip), t)))
    scenario.sim.run_for(3.0)
    assert errors and errors[0][1] == int(IcmpType.DEST_UNREACHABLE)
