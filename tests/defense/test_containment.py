"""Active containment (§6 future work): detect the rogue, knock its
clients off, keep them off."""

import pytest

from repro.core.scenario import build_corp_scenario
from repro.defense.containment import ContainmentSensor
from repro.radio.propagation import Position


def test_sensor_detects_and_contains_cloned_rogue():
    scenario = build_corp_scenario(seed=301)
    sensor = ContainmentSensor(
        scenario.sim, scenario.medium, Position(15.0, 5.0),
        authorized=[(scenario.ap.bssid, 1)])
    sensor.start()
    scenario.sim.run_for(15.0)
    assert sensor.actions, "rogue never contained"
    action = sensor.actions[0]
    assert action.bssid == scenario.ap.bssid  # the clone
    assert action.channel == 6
    assert "cloned" in action.reason
    assert sensor.deauths_injected > 0


def test_containment_evicts_captured_victim():
    scenario = build_corp_scenario(seed=302)
    victim = scenario.add_victim()
    scenario.sim.run_for(5.0)
    assert victim.associated_channel == 6  # captured

    sensor = ContainmentSensor(
        scenario.sim, scenario.medium, Position(35.0, 5.0),
        authorized=[(scenario.ap.bssid, 1)],
        containment_rate_hz=10.0)
    sensor.start()
    evicted_at = None
    for _ in range(60):
        scenario.sim.run_for(1.0)
        if victim.associated_channel == 1:
            evicted_at = scenario.sim.now
            break
    assert evicted_at is not None, "victim never pushed back to the legit AP"
    # And containment keeps it there.
    scenario.sim.run_for(20.0)
    assert victim.associated_channel == 1
    sensor.stop()


def test_sensor_quiet_on_clean_network():
    scenario = build_corp_scenario(seed=303, with_rogue=False)
    victim = scenario.add_victim()
    sensor = ContainmentSensor(
        scenario.sim, scenario.medium, Position(15.0, 5.0),
        authorized=[(scenario.ap.bssid, 1)])
    sensor.start()
    scenario.sim.run_for(30.0)
    assert sensor.actions == []
    assert sensor.deauths_injected == 0
    assert victim.wlan.associated  # and it didn't break anyone


def test_sensor_stop_ceases_injection():
    scenario = build_corp_scenario(seed=304)
    sensor = ContainmentSensor(
        scenario.sim, scenario.medium, Position(15.0, 5.0),
        authorized=[(scenario.ap.bssid, 1)])
    sensor.start()
    scenario.sim.run_for(15.0)
    assert sensor.deauths_injected > 0
    sensor.stop()
    count = sensor.deauths_injected
    scenario.sim.run_for(10.0)
    assert sensor.deauths_injected == count


def test_containment_is_an_arms_race_note():
    """The contained rogue can re-capture if the sensor stops — the
    module's documented limitation, demonstrated."""
    scenario = build_corp_scenario(seed=305)
    victim = scenario.add_victim()
    scenario.sim.run_for(5.0)
    sensor = ContainmentSensor(
        scenario.sim, scenario.medium, Position(35.0, 5.0),
        authorized=[(scenario.ap.bssid, 1)], containment_rate_hz=10.0)
    sensor.start()
    for _ in range(60):
        scenario.sim.run_for(1.0)
        if victim.associated_channel == 1:
            break
    assert victim.associated_channel == 1
    sensor.stop()
    # The attacker escalates: its own deauth storm against the legit AP
    # resumes, and with the sensor silent the rogue recaptures.
    from repro.attacks.deauth import DeauthAttacker
    attacker = DeauthAttacker(
        scenario.sim, scenario.medium, Position(38.0, 2.0),
        ap_bssid=scenario.ap.bssid, channel=1,
        target=victim.wlan.mac, rate_hz=10.0)
    attacker.start()
    recaptured = False
    for _ in range(120):
        scenario.sim.run_for(1.0)
        if victim.associated_channel == 6:
            recaptured = True
            break
    attacker.stop()
    assert recaptured
