"""The PPP-over-SSH VPN: handshake, auth, routing takeover, protection."""

import pytest

from repro.core.scenario import VPN_IP, build_corp_scenario
from repro.crypto.keystore import KeyStore
from repro.defense.vpn import SshRecordLayer, VpnClient, VpnServer
from repro.netstack.addressing import IPv4Address, Network
from repro.sim.errors import ConfigurationError


# ----------------------------------------------------------------------
# record layer
# ----------------------------------------------------------------------

def _layers():
    a = SshRecordLayer(b"E" * 16, b"e" * 16, b"M" * 20, b"m" * 20)
    b = SshRecordLayer(b"e" * 16, b"E" * 16, b"m" * 20, b"M" * 20)
    return a, b


def test_record_roundtrip():
    a, b = _layers()
    rec = a.seal(b"hello tunnel")
    assert b.open(rec) == b"hello tunnel"


def test_record_tamper_detected():
    a, b = _layers()
    rec = bytearray(a.seal(b"data"))
    rec[6] ^= 0x01
    assert b.open(bytes(rec)) is None
    assert b.integrity_failures == 1


def test_record_replay_rejected():
    a, b = _layers()
    r1 = a.seal(b"one")
    assert b.open(r1) == b"one"
    assert b.open(r1) is None
    assert b.replays_dropped == 1


def test_record_sequence_continuity():
    a, b = _layers()
    for i in range(20):
        assert b.open(a.seal(f"msg{i}".encode())) == f"msg{i}".encode()


# ----------------------------------------------------------------------
# full client/server over the rogue-infested scenario
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def vpn_world():
    scenario = build_corp_scenario(seed=71)
    scenario.arm_download_mitm()
    victim = scenario.add_victim()
    scenario.sim.run_for(5.0)
    assert victim.associated_channel == 6  # captured by the rogue
    vpn = scenario.connect_vpn(victim)
    scenario.sim.run_for(5.0)
    return scenario, victim, vpn


def test_vpn_connects_through_rogue(vpn_world):
    scenario, victim, vpn = vpn_world
    assert vpn.connected
    assert scenario.vpn_server.active_sessions() == 1


def test_vpn_takes_default_route(vpn_world):
    """§5.2 requirement 4: all traffic through the tunnel."""
    scenario, victim, vpn = vpn_world
    default = victim.routing.lookup(IPv4Address("192.0.2.1"))
    assert default.interface == "ppp0"
    # The only exception: the encrypted transport to the server itself.
    server_route = victim.routing.lookup(IPv4Address(VPN_IP))
    assert server_route.interface == "wlan0"


def test_vpn_defeats_download_mitm(vpn_world):
    """Figure 3's punchline: same rogue, same netsed, clean download."""
    scenario, victim, vpn = vpn_world
    before = scenario.rogue.netsed.connections_proxied
    outcome = scenario.run_download_experiment(victim, settle_s=90.0)
    assert not outcome.failed
    assert outcome.link == "file.tgz"            # page arrived unmodified
    assert outcome.md5_ok is True
    assert outcome.executed and not outcome.trojaned
    assert not outcome.compromised
    # The DNAT rule never fired: port-80 traffic was inside port-22.
    assert scenario.rogue.netsed.connections_proxied == before


def test_vpn_requires_preestablished_credential():
    scenario = build_corp_scenario(seed=72, with_rogue=False)
    victim = scenario.add_victim()
    scenario.sim.run_for(5.0)
    empty_ks = KeyStore()
    client = VpnClient(victim, empty_ks, "vpn.corp.example", VPN_IP)
    with pytest.raises(ConfigurationError):
        client.connect()


def test_vpn_rejects_untrusted_provenance():
    scenario = build_corp_scenario(seed=73, with_rogue=False)
    victim = scenario.add_victim()
    scenario.sim.run_for(5.0)
    ks = KeyStore()
    ks.enroll("vpn.corp.example", b"secret", provenance="purchased-cert")
    client = VpnClient(victim, ks, "vpn.corp.example", VPN_IP)
    with pytest.raises(ConfigurationError):
        client.connect()


def test_server_rejects_wrong_client_secret():
    scenario = build_corp_scenario(seed=74, with_rogue=False)
    victim = scenario.add_victim()
    scenario.sim.run_for(5.0)
    ks = KeyStore()
    ks.enroll("vpn.corp.example", b"WRONG SECRET")
    client = VpnClient(victim, ks, "vpn.corp.example", VPN_IP)
    client.connect()
    scenario.sim.run_for(10.0)
    assert not client.connected
    # Either side may notice first: client sees a bad server tag, or
    # the server rejects the client's auth tag.
    assert (scenario.sim.trace.count("vpn.server_auth_failed") +
            scenario.vpn_server.auth_failures) >= 1


def test_server_rejects_unknown_client():
    scenario = build_corp_scenario(seed=75, with_rogue=False)
    victim = scenario.add_victim(name="stranger")
    scenario.sim.run_for(5.0)
    ks = KeyStore()
    ks.enroll("vpn.corp.example", b"whatever")
    client = VpnClient(victim, ks, "vpn.corp.example", VPN_IP)
    client.connect()
    scenario.sim.run_for(10.0)
    assert not client.connected
    assert scenario.vpn_server.auth_failures >= 1


def test_vpn_disconnect_restores_routes():
    scenario = build_corp_scenario(seed=76, with_rogue=False)
    victim = scenario.add_victim()
    scenario.sim.run_for(5.0)
    vpn = scenario.connect_vpn(victim)
    scenario.sim.run_for(5.0)
    assert vpn.connected
    vpn.disconnect()
    scenario.sim.run_for(2.0)
    default = victim.routing.lookup(IPv4Address("192.0.2.1"))
    assert default is not None
    assert default.interface == "wlan0"  # the original default is back


def test_vpn_traffic_is_opaque_to_sniffer():
    """Even a sniffer holding the WEP key sees only ciphertext."""
    from repro.attacks.sniffer import MonitorSniffer
    from repro.radio.propagation import Position
    scenario = build_corp_scenario(seed=77)
    sniffer = MonitorSniffer(scenario.sim, scenario.medium, Position(39.0, 2.0))
    victim = scenario.add_victim()
    scenario.sim.run_for(5.0)
    vpn = scenario.connect_vpn(victim)
    scenario.sim.run_for(5.0)
    from repro.httpsim.client import HttpClient
    results = []
    HttpClient(victim).get("http://198.51.100.80/download.html", results.append)
    scenario.sim.run_for(60.0)
    assert results and results[0] is not None
    # Reassemble what the sniffer saw of the victim's TCP stream.
    stream = sniffer.sniffed_tcp_stream(scenario.wep, victim.wlan.ip,
                                        IPv4Address(VPN_IP), dst_port=22)
    assert len(stream) > 0                         # it captured the flow
    assert b"GET /download.html" not in stream     # but it's ciphertext
    assert b"MD5SUM" not in stream
