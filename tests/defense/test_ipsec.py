"""The ESP-over-UDP tunnel: sealing, replay window, end-to-end transport."""

import pytest

from repro.core.scenario import build_corp_scenario
from repro.defense.ipsec import (
    EspTunnelClient,
    EspTunnelServer,
    _ReplayWindow,
    esp_open,
    esp_seal,
)
from repro.netstack.addressing import IPv4Address


def test_esp_seal_open_roundtrip():
    enc, mac = b"enckey", b"mackey"
    dgram = esp_seal(enc, mac, 7, b"inner packet")
    opened = esp_open(enc, mac, dgram)
    assert opened == (7, b"inner packet")


def test_esp_tamper_rejected():
    enc, mac = b"enckey", b"mackey"
    dgram = bytearray(esp_seal(enc, mac, 1, b"x" * 40))
    dgram[10] ^= 0x01
    assert esp_open(enc, mac, bytes(dgram)) is None


def test_esp_wrong_key_rejected():
    dgram = esp_seal(b"k1", b"m1", 1, b"data")
    assert esp_open(b"k1", b"WRONG", dgram) is None


def test_esp_short_datagram():
    assert esp_open(b"k", b"m", b"tiny") is None


def test_replay_window():
    w = _ReplayWindow()
    assert w.accept(1)
    assert w.accept(2)
    assert not w.accept(2)         # exact replay
    assert w.accept(10)
    assert w.accept(5)             # late but inside window
    assert not w.accept(5)
    assert w.accept(200)
    assert not w.accept(100)       # fell off the 64-wide window


@pytest.fixture(scope="module")
def esp_world():
    """Victim on the rogue, protected by the UDP tunnel instead."""
    scenario = build_corp_scenario(seed=81)
    scenario.arm_download_mitm()
    victim = scenario.add_victim()
    scenario.sim.run_for(5.0)
    assert victim.associated_channel == 6
    server_host = scenario.vpn_host  # reuse the trusted wired box
    psk = b"esp-preshared"
    server = EspTunnelServer(server_host, psk, server_inner_ip="10.9.0.1",
                             nat_ip="198.51.100.22")
    client = EspTunnelClient(victim, "198.51.100.22", psk,
                             inner_ip="10.9.0.100", server_inner_ip="10.9.0.1")
    scenario.sim.run_for(2.0)
    return scenario, victim, client, server


def test_esp_tunnel_carries_traffic(esp_world):
    scenario, victim, client, server = esp_world
    rtts = []
    victim.ping("198.51.100.80", on_reply=rtts.append)
    scenario.sim.run_for(5.0)
    assert len(rtts) == 1
    assert client.sent > 0 and client.received > 0


def test_esp_tunnel_defeats_download_mitm(esp_world):
    scenario, victim, client, server = esp_world
    outcome = scenario.run_download_experiment(victim, settle_s=90.0)
    assert outcome.md5_ok is True
    assert not outcome.trojaned
    assert not outcome.compromised
    assert scenario.rogue.netsed.connections_proxied == 0
