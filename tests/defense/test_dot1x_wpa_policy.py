"""802.1X / WPA-PSK gaps (§2.2) and the §5.2 VPN policy checker."""

import pytest

from repro.core.scenario import VPN_IP, build_corp_scenario
from repro.crypto.tkip import TkipError
from repro.defense.dot1x import (
    Dot1xAuthenticator,
    Dot1xSupplicant,
    EapAuthServer,
    chap_md5_response,
)
from repro.defense.policy import check_vpn_requirements
from repro.defense.wpa import (
    WpaPskAuthenticator,
    WpaPskSupplicant,
    derive_ptk,
    psk_from_passphrase,
)
from repro.dot11.mac import MacAddress
from repro.sim.rng import SimRandom

AP_MAC = MacAddress("aa:bb:cc:dd:00:01")
STA_MAC = MacAddress("00:02:2d:00:00:07")


# ----------------------------------------------------------------------
# 802.1X
# ----------------------------------------------------------------------

def test_legit_dot1x_authenticates_valid_user():
    server = EapAuthServer({"alice": b"wonderland"}, SimRandom(1))
    authenticator = Dot1xAuthenticator(server)
    supplicant = Dot1xSupplicant("alice", b"wonderland")
    assert authenticator.authenticate(supplicant)
    assert supplicant.authenticated
    assert server.successes == 1


def test_legit_dot1x_rejects_wrong_password():
    server = EapAuthServer({"alice": b"wonderland"}, SimRandom(1))
    authenticator = Dot1xAuthenticator(server)
    supplicant = Dot1xSupplicant("alice", b"GUESS")
    assert not authenticator.authenticate(supplicant)
    assert not supplicant.authenticated


def test_legit_dot1x_rejects_unknown_user():
    server = EapAuthServer({"alice": b"x"}, SimRandom(1))
    authenticator = Dot1xAuthenticator(server)
    assert not authenticator.authenticate(Dot1xSupplicant("mallory", b"x"))


def test_rogue_authenticator_accepted_by_supplicant():
    """§2.2: 'there is no authentication of the network' — the rogue
    needs no server, no user db, nothing; EAP-Success is believed."""
    rogue = Dot1xAuthenticator(None, rogue=True)
    supplicant = Dot1xSupplicant("alice", b"wonderland")
    assert rogue.authenticate(supplicant)
    assert supplicant.authenticated                 # the client is happy
    assert supplicant.network_was_authenticated is False  # structurally
    assert "alice" in rogue.port_authorized_for     # identity harvested


def test_rogue_authenticator_needs_flag():
    with pytest.raises(ValueError):
        Dot1xAuthenticator(None)


def test_chap_response_deterministic():
    a = chap_md5_response(1, b"pw", b"challenge")
    assert a == chap_md5_response(1, b"pw", b"challenge")
    assert a != chap_md5_response(2, b"pw", b"challenge")


# ----------------------------------------------------------------------
# WPA-PSK
# ----------------------------------------------------------------------

def test_psk_from_passphrase_binds_ssid():
    assert psk_from_passphrase("pass", "NET1") != psk_from_passphrase("pass", "NET2")
    assert len(psk_from_passphrase("pass", "NET")) == 32


def test_derive_ptk_symmetry():
    psk = psk_from_passphrase("secret", "CORP")
    ptk1 = derive_ptk(psk, b"A" * 32, b"S" * 32, AP_MAC, STA_MAC)
    ptk2 = derive_ptk(psk, b"A" * 32, b"S" * 32, AP_MAC, STA_MAC)
    assert ptk1 == ptk2 and len(ptk1) == 48
    assert derive_ptk(psk, b"B" * 32, b"S" * 32, AP_MAC, STA_MAC) != ptk1


def test_wpa_handshake_and_data_protection():
    psk = psk_from_passphrase("secret", "CORP")
    ap = WpaPskAuthenticator(psk, AP_MAC, SimRandom(1))
    sta = WpaPskSupplicant(psk, STA_MAC, SimRandom(2))
    sessions = ap.handshake(sta)
    assert sessions is not None
    ap_tx, ap_rx = sessions
    sta_tx, sta_rx = sta.sessions(AP_MAC)
    # Data flows both ways through TKIP.
    assert sta_rx.decapsulate(ap_tx.encapsulate(b"downlink")) == b"downlink"
    assert ap_rx.decapsulate(sta_tx.encapsulate(b"uplink")) == b"uplink"


def test_wpa_rejects_wrong_psk_client():
    ap = WpaPskAuthenticator(psk_from_passphrase("right", "CORP"), AP_MAC, SimRandom(1))
    sta = WpaPskSupplicant(psk_from_passphrase("wrong", "CORP"), STA_MAC, SimRandom(2))
    assert ap.handshake(sta) is None
    assert ap.mic_failures == 1
    assert not sta.established


def test_wpa_client_detects_keyless_rogue_ap():
    """WPA *does* close the open-rogue hole: msg3's MIC proves the AP
    knows the PSK, and a keyless impostor fails there."""
    psk = psk_from_passphrase("secret", "CORP")
    rogue = WpaPskAuthenticator(psk_from_passphrase("guess", "CORP"),
                                AP_MAC, SimRandom(3))
    sta = WpaPskSupplicant(psk, STA_MAC, SimRandom(4))
    # A by-the-book rogue aborts at msg2 (the client's MIC won't verify
    # under its guessed key)...
    assert rogue.handshake(sta) is None
    assert not sta.established
    # ...and a pushy rogue that barrels on to msg3 is caught by the
    # client: the msg3 MIC is the step that authenticates the network.
    from repro.crypto.hmac import hmac_sha1
    from repro.defense.wpa import derive_ptk, _Keys
    sta2 = WpaPskSupplicant(psk, STA_MAC, SimRandom(5))
    anonce = b"R" * 32
    snonce, _mic2 = sta2.msg1(anonce, AP_MAC)
    rogue_ptk = derive_ptk(psk_from_passphrase("guess", "CORP"),
                           anonce, snonce, AP_MAC, STA_MAC)
    rogue_mic3 = hmac_sha1(_Keys.from_ptk(rogue_ptk).kck, b"msg3" + anonce)
    assert sta2.msg3(rogue_mic3) is False
    assert not sta2.established
    assert sta2.mic_failures == 1


def test_wpa_insider_rogue_with_psk_succeeds():
    """§2.2: 'TKIP still relies on a pre shared key, thus is still
    vulnerable to MITM attack from valid network clients.'  Any valid
    client can run a rogue AP with the very same PSK."""
    psk = psk_from_passphrase("secret", "CORP")     # the insider has this
    insider_rogue = WpaPskAuthenticator(psk, AP_MAC, SimRandom(5))
    sta = WpaPskSupplicant(psk, STA_MAC, SimRandom(6))
    sessions = insider_rogue.handshake(sta)
    assert sessions is not None
    assert sta.established  # indistinguishable from the real network


def test_wpa_tkip_blocks_bitflip():
    """Contrast with WEP: flipping TKIP ciphertext trips Michael."""
    psk = psk_from_passphrase("secret", "CORP")
    ap = WpaPskAuthenticator(psk, AP_MAC, SimRandom(7))
    sta = WpaPskSupplicant(psk, STA_MAC, SimRandom(8))
    ap_tx, _ = ap.handshake(sta)
    _, sta_rx = sta.sessions(AP_MAC)
    frame = bytearray(ap_tx.encapsulate(b"payload"))
    frame[10] ^= 0x01
    with pytest.raises(TkipError):
        sta_rx.decapsulate(bytes(frame))


# ----------------------------------------------------------------------
# §5.2 policy
# ----------------------------------------------------------------------

def test_policy_satisfied_for_paper_setup():
    scenario = build_corp_scenario(seed=101)
    victim = scenario.add_victim()
    scenario.sim.run_for(5.0)
    vpn = scenario.connect_vpn(victim)
    scenario.sim.run_for(5.0)
    report = check_vpn_requirements(vpn, endpoint_kind="corporate-wired")
    assert report.satisfied
    assert "SATISFIED" in str(report)


def test_policy_fails_without_all_traffic():
    scenario = build_corp_scenario(seed=102)
    victim = scenario.add_victim()
    scenario.sim.run_for(5.0)
    vpn = scenario.connect_vpn(victim)
    scenario.sim.run_for(5.0)
    # Sabotage requirement 4: restore a direct default route (split tunnel).
    from repro.netstack.addressing import IPv4Address, Network
    victim.routing.remove(Network("0.0.0.0", 0))
    victim.routing.add_default(IPv4Address("10.0.0.1"), "wlan0")
    report = check_vpn_requirements(vpn, endpoint_kind="corporate-wired")
    assert not report.satisfied
    assert not report.handles_all_traffic


def test_policy_fails_for_hotspot_endpoint():
    """§5.2.1: the hotspot provider cannot be the VPN endpoint."""
    scenario = build_corp_scenario(seed=103)
    victim = scenario.add_victim()
    scenario.sim.run_for(5.0)
    vpn = scenario.connect_vpn(victim)
    scenario.sim.run_for(5.0)
    report = check_vpn_requirements(vpn, endpoint_kind="hotspot-provided",
                                    provider_known_reputation=False)
    assert not report.satisfied
    assert not report.endpoint_on_secure_wired_network
    assert not report.trustworthy_provider
