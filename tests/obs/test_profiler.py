"""Profiler: span accounting, merge law, breakdown report."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.obs.profiler import Profiler


def _split(xs, cuts):
    bounds = sorted(min(c, len(xs)) for c in cuts)
    parts, start = [], 0
    for b in bounds + [len(xs)]:
        parts.append(xs[start:b])
        start = b
    return parts


def test_span_records_category():
    p = Profiler()
    with p.span("kernel.test"):
        pass
    assert p.count("kernel.test") == 1
    assert p.total_s("kernel.test") >= 0.0
    assert p.categories() == ["kernel.test"]


def test_span_records_even_when_body_raises():
    p = Profiler()
    try:
        with p.span("boom"):
            raise RuntimeError("body failed")
    except RuntimeError:
        pass
    assert p.count("boom") == 1


def test_record_accumulates_count_total_min_max():
    p = Profiler()
    for s in [0.2, 0.1, 0.4]:
        p.record("cat", s)
    assert p.count("cat") == 3
    assert math.isclose(p.total_s("cat"), 0.7)
    assert math.isclose(p.mean_s("cat"), 0.7 / 3)
    assert p._acc["cat"][2] == 0.1  # min
    assert p._acc["cat"][3] == 0.4  # max


def test_unknown_category_queries():
    p = Profiler()
    assert p.count("nope") == 0
    assert p.total_s("nope") == 0.0
    assert math.isnan(p.mean_s("nope"))
    assert len(p) == 0


@given(st.lists(st.tuples(st.sampled_from("abc"),
                          st.floats(min_value=1e-6, max_value=10.0)),
                max_size=200),
       st.lists(st.integers(min_value=0, max_value=200), max_size=4))
def test_merge_equals_single_pass(spans, cuts):
    whole = Profiler()
    for cat, s in spans:
        whole.record(cat, s)
    merged = Profiler()
    for part in _split(spans, cuts):
        partial = Profiler()
        for cat, s in part:
            partial.record(cat, s)
        merged.merge(partial)
    assert merged.categories() == whole.categories()
    for cat in whole.categories():
        assert merged.count(cat) == whole.count(cat)
        assert math.isclose(merged.total_s(cat), whole.total_s(cat),
                            rel_tol=1e-9, abs_tol=1e-12)
        assert merged._acc[cat][2] == whole._acc[cat][2]
        assert merged._acc[cat][3] == whole._acc[cat][3]


def test_merge_copies_new_categories():
    src = Profiler()
    src.record("only.src", 1.0)
    dst = Profiler()
    dst.merge(src)
    src.record("only.src", 1.0)  # must not reach into dst
    assert dst.count("only.src") == 1
    assert dst.merge(Profiler()) is dst


def test_to_dict_from_dict_roundtrip():
    p = Profiler()
    p.record("a", 0.5)
    p.record("a", 1.5)
    p.record("b", 0.25)
    clone = Profiler.from_dict(p.to_dict())
    assert clone.to_dict() == p.to_dict()


def test_iter_orders_by_total_descending():
    p = Profiler()
    p.record("small", 0.1)
    p.record("big", 5.0)
    p.record("mid", 1.0)
    assert [cat for cat, _, _ in p] == ["big", "mid", "small"]


def test_breakdown_shares_sum_to_100():
    p = Profiler()
    p.record("a", 3.0)
    p.record("b", 1.0)
    rows = p.breakdown()
    assert rows[0]["category"] == "a"
    assert rows[0]["share"] == "75.0%"
    assert rows[1]["share"] == "25.0%"
    total = sum(float(r["share"].rstrip("%")) for r in rows)
    assert math.isclose(total, 100.0)


def test_report_empty_and_populated():
    assert Profiler().report() == "(no spans recorded)"
    p = Profiler()
    p.record("kernel.radio.medium", 0.5)
    out = p.report()
    assert "kernel.radio.medium" in out
    assert "calls" in out and "total_ms" in out and "share" in out
