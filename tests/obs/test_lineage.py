"""FlightRecorder: lineages, span links, ring bounds, serialization."""

import pytest

from repro.obs.lineage import (FlightRecorder, Hop, Lineage, flight_recorder,
                               recording)


# ----------------------------------------------------------------------
# recording basics
# ----------------------------------------------------------------------

def test_begin_and_hop_build_a_lineage():
    rec = FlightRecorder()
    tid = rec.begin("dot11", "victim:wlan0", 1.0)
    rec.hop("radio", "tx", trace_id=tid, host="victim:wlan0", t=1.0, ch=6)
    rec.hop("radio", "rx", trace_id=tid, host="corp-ap", t=1.5)
    ln = rec.get(tid)
    assert ln is not None
    assert (ln.kind, ln.origin, ln.t0, ln.parent) == ("dot11", "victim:wlan0",
                                                      1.0, None)
    assert [(h.layer, h.action, h.host) for h in ln.hops] == [
        ("radio", "tx", "victim:wlan0"), ("radio", "rx", "corp-ap")]
    assert ln.hops[0].detail == {"ch": 6}


def test_trace_ids_are_sequential_and_rng_free():
    rec = FlightRecorder()
    ids = [rec.begin("dot11", "a", float(i)) for i in range(5)]
    assert ids == [1, 2, 3, 4, 5]


def test_hop_to_unknown_id_is_dropped_silently():
    rec = FlightRecorder()
    rec.hop("radio", "tx", trace_id=999)  # must not raise
    assert len(rec) == 0


def test_hop_with_no_time_uses_last_seen_sim_time():
    rec = FlightRecorder()
    tid = rec.begin("dot11", "a", 3.5)
    rec.hop("dot11", "encode", trace_id=tid)  # codec has no sim reference
    assert rec.get(tid).hops[0].t == 3.5


def test_hop_detail_is_defensively_copied():
    rec = FlightRecorder()
    tid = rec.begin("dot11", "a", 0.0)
    detail = {"seq": 1}
    hop = Hop(t=0.0, host="h", layer="l", action="a", detail=detail)
    detail["seq"] = 999
    assert hop.detail == {"seq": 1}
    rec.hop("l", "a", trace_id=tid, **{"seq": 2})
    assert rec.get(tid).hops[0].detail == {"seq": 2}


# ----------------------------------------------------------------------
# parent/child span links + ambient context
# ----------------------------------------------------------------------

def test_explicit_parent_links_both_directions():
    rec = FlightRecorder()
    parent = rec.begin("dot11", "victim", 1.0)
    child = rec.begin("ether", "rogue-gw", 2.0, parent=parent)
    assert rec.get(child).parent == parent
    assert rec.get(parent).children == [child]


def test_frame_context_makes_new_frames_children():
    rec = FlightRecorder()
    incoming = rec.begin("dot11", "corp-ap", 1.0)
    with rec.frame_context(incoming):
        assert rec.current() == incoming
        derived = rec.begin("dot11", "rogue-gw", 1.1)  # bridge re-emits
    assert rec.current() is None
    assert rec.get(derived).parent == incoming


def test_frame_context_none_is_a_noop():
    rec = FlightRecorder()
    with rec.frame_context(None):
        assert rec.current() is None


def test_hop_defaults_to_current_lineage():
    rec = FlightRecorder()
    tid = rec.begin("dot11", "a", 0.0)
    with rec.frame_context(tid):
        rec.hop("ip", "deliver", host="victim")
    assert rec.get(tid).hops[0].action == "deliver"


def test_ancestors_and_descendants():
    rec = FlightRecorder()
    a = rec.begin("dot11", "victim", 0.0)
    b = rec.begin("ether", "corp-ap", 1.0, parent=a)
    c = rec.begin("dot11", "corp-ap", 2.0, parent=b)
    d = rec.begin("dot11", "rogue-gw", 3.0, parent=c)
    assert [ln.trace_id for ln in rec.ancestors(d)] == [a, b, c, d]
    assert [ln.trace_id for ln in rec.descendants(a)] == [b, c, d]
    assert rec.ancestors(999) == []
    assert rec.descendants(999) == []


def test_suspended_drops_hops():
    rec = FlightRecorder()
    tid = rec.begin("dot11", "a", 0.0)
    with rec.suspended():
        rec.hop("dot11", "encode", trace_id=tid)  # raw-byte capture re-entry
    rec.hop("dot11", "encode", trace_id=tid)
    assert len(rec.get(tid).hops) == 1


# ----------------------------------------------------------------------
# bounds: lineage ring + per-lineage hop cap
# ----------------------------------------------------------------------

def test_ring_evicts_oldest_lineage():
    rec = FlightRecorder(capacity=3)
    ids = [rec.begin("dot11", "a", float(i)) for i in range(5)]
    assert len(rec) == 3
    assert rec.evicted == 2
    assert rec.get(ids[0]) is None and rec.get(ids[1]) is None
    assert [ln.trace_id for ln in rec.lineages()] == ids[2:]
    # hops addressed to an evicted id vanish without error
    rec.hop("radio", "rx", trace_id=ids[0])
    assert len(rec) == 3


def test_ancestors_truncate_at_evicted_links():
    rec = FlightRecorder(capacity=2)
    a = rec.begin("dot11", "x", 0.0)
    b = rec.begin("dot11", "x", 1.0, parent=a)
    c = rec.begin("dot11", "x", 2.0, parent=b)  # evicts a
    assert rec.get(a) is None
    assert [ln.trace_id for ln in rec.ancestors(c)] == [b, c]


def test_max_hops_counts_overflow_instead_of_storing():
    rec = FlightRecorder(max_hops=2)
    tid = rec.begin("dot11", "a", 0.0)
    for i in range(5):
        rec.hop("radio", "tx", trace_id=tid, i=i)
    ln = rec.get(tid)
    assert len(ln.hops) == 2
    assert ln.hops_dropped == 3


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)


def test_attach_raw_first_capture_wins():
    rec = FlightRecorder()
    tid = rec.begin("dot11", "a", 0.0)
    rec.attach_raw(tid, b"first")
    rec.attach_raw(tid, b"retransmit")
    assert rec.get(tid).raw == b"first"
    rec.attach_raw(999, b"x")  # unknown id: silent


# ----------------------------------------------------------------------
# queries
# ----------------------------------------------------------------------

def test_find_hops_filters_by_layer_and_action_prefix():
    rec = FlightRecorder()
    a = rec.begin("dot11", "x", 0.0)
    b = rec.begin("dot11", "y", 1.0)
    rec.hop("netsed", "rewrite", trace_id=a)
    rec.hop("netsed", "accept", trace_id=b)
    rec.hop("radio", "drop.collision", trace_id=b)
    assert [(ln.trace_id, h.action) for ln, h in rec.find_hops("netsed")] == [
        (a, "rewrite"), (b, "accept")]
    assert [h.action for _, h in rec.find_hops("radio", "drop.")] == [
        "drop.collision"]


def test_summary_counts():
    rec = FlightRecorder(capacity=2)
    rec.hop("x", "y", trace_id=rec.begin("dot11", "a", 0.0))
    rec.begin("ether", "b", 1.0)
    rec.begin("dot11", "c", 2.0)  # evicts the first
    s = rec.summary()
    assert s == {"lineages": 2, "by_kind": {"ether": 1, "dot11": 1},
                 "hops": 0, "evicted": 1}


# ----------------------------------------------------------------------
# serialization (fleet IPC)
# ----------------------------------------------------------------------

def test_to_dicts_from_dicts_roundtrip():
    rec = FlightRecorder()
    a = rec.begin("dot11", "victim:wlan0", 1.0)
    rec.hop("radio", "tx", trace_id=a, host="victim:wlan0", t=1.0, ch=6)
    rec.attach_raw(a, bytes(range(16)))
    b = rec.begin("ether", "rogue-gw", 2.0, parent=a)
    rec.hop("netsed", "rewrite", trace_id=b, replacements=2)

    clone = FlightRecorder.from_dicts(rec.to_dicts())
    assert len(clone) == 2
    ca, cb = clone.get(a), clone.get(b)
    assert ca.raw == bytes(range(16))
    assert ca.children == [b] and cb.parent == a
    assert cb.hops[0].detail == {"replacements": 2}
    assert [ln.trace_id for ln in clone.ancestors(b)] == [a, b]
    # new ids in the clone don't collide with imported ones
    assert clone.begin("dot11", "z", 3.0) == b + 1


def test_to_dicts_limit_keeps_newest_and_raw_limit_truncates():
    rec = FlightRecorder()
    ids = []
    for i in range(4):
        tid = rec.begin("dot11", f"h{i}", float(i))
        rec.attach_raw(tid, bytes(1000))
        ids.append(tid)
    dicts = rec.to_dicts(limit=2, raw_limit=8)
    assert [d["trace_id"] for d in dicts] == ids[-2:]
    assert all(len(bytes.fromhex(d["raw"])) == 8 for d in dicts)


def test_lineage_dict_roundtrip_preserves_hops_dropped():
    ln = Lineage(7, kind="dot11", origin="x", t0=1.5, parent=3)
    ln.hops_dropped = 4
    clone = Lineage.from_dict(ln.to_dict())
    assert clone.hops_dropped == 4 and clone.parent == 3


# ----------------------------------------------------------------------
# the ambient global
# ----------------------------------------------------------------------

def test_recording_installs_and_restores_nested():
    assert flight_recorder() is None
    with recording(capacity=8) as outer:
        assert flight_recorder() is outer
        with recording(capacity=4) as inner:
            assert flight_recorder() is inner
        assert flight_recorder() is outer
    assert flight_recorder() is None


def test_recording_restores_on_exception():
    with pytest.raises(RuntimeError):
        with recording():
            raise RuntimeError("boom")
    assert flight_recorder() is None


def test_simulator_registers_its_trace_with_the_recorder():
    from repro.sim.kernel import Simulator

    with recording() as rec:
        sim = Simulator(seed=0)
        assert rec.sim_traces == [sim.trace]
    assert Simulator(seed=0)  # no recorder installed: no error, no leak
    assert rec.sim_traces == [sim.trace]
