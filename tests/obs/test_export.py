"""pcap / Chrome-trace export: verified with an independent stdlib reader."""

import io
import json
import struct

from repro.obs.export import (LINKTYPE_IEEE802_11, PCAP_MAGIC, PCAP_SNAPLEN,
                              PCAP_VERSION, chrome_trace_dict, pcap_bytes,
                              write_chrome_trace, write_pcap)
from repro.obs.lineage import FlightRecorder


def read_pcap(data: bytes):
    """Minimal independent pcap reader (struct only, no repro code).

    Returns (header_fields, [(ts_sec, ts_usec, orig_len, payload), ...]).
    """
    magic, vmaj, vmin, thiszone, sigfigs, snaplen, linktype = \
        struct.unpack_from("<IHHiIII", data, 0)
    offset = 24
    records = []
    while offset < len(data):
        ts_sec, ts_usec, incl_len, orig_len = \
            struct.unpack_from("<IIII", data, offset)
        offset += 16
        records.append((ts_sec, ts_usec, orig_len,
                        data[offset:offset + incl_len]))
        offset += incl_len
    assert offset == len(data), "trailing garbage after last record"
    return (magic, vmaj, vmin, thiszone, sigfigs, snaplen, linktype), records


def _recorder_with_frames():
    rec = FlightRecorder()
    a = rec.begin("dot11", "victim:wlan0", 1.25)
    rec.attach_raw(a, b"\x08\x01" + bytes(range(30)))
    rec.hop("radio", "tx", trace_id=a, host="victim:wlan0", t=1.25)
    b = rec.begin("dot11", "corp-ap", 0.5, parent=a)  # earlier t0: order check
    rec.attach_raw(b, bytes(64))
    rec.begin("ether", "rogue-gw", 2.0, parent=a)     # not 802.11: excluded
    no_raw = rec.begin("dot11", "x", 3.0)             # no bytes: excluded
    assert rec.get(no_raw).raw is None
    return rec, a, b


# ----------------------------------------------------------------------
# pcap
# ----------------------------------------------------------------------

def test_pcap_global_header():
    header, records = read_pcap(pcap_bytes(FlightRecorder()))
    assert header == (PCAP_MAGIC, *PCAP_VERSION, 0, 0, PCAP_SNAPLEN,
                      LINKTYPE_IEEE802_11)
    assert header[0] == 0xA1B2C3D4 and header[-1] == 105
    assert records == []


def test_pcap_records_roundtrip_bytes_and_timestamps():
    rec, a, b = _recorder_with_frames()
    header, records = read_pcap(pcap_bytes(rec))
    assert len(records) == 2  # dot11-with-raw only
    # sorted by t0, not insertion: frame b (t0=0.5) first
    (s0, u0, o0, p0), (s1, u1, o1, p1) = records
    assert (s0, u0) == (0, 500_000) and p0 == bytes(64) and o0 == 64
    assert (s1, u1) == (1, 250_000)
    assert p1 == rec.get(a).raw and o1 == len(rec.get(a).raw)


def test_pcap_timestamp_rounding_never_reaches_one_second():
    rec = FlightRecorder()
    tid = rec.begin("dot11", "x", 5.9999996)  # rounds to 1_000_000 usec
    rec.attach_raw(tid, b"\x00")
    _, [(ts_sec, ts_usec, _, _)] = read_pcap(pcap_bytes(rec))
    assert (ts_sec, ts_usec) == (6, 0)
    assert ts_usec < 1_000_000


def test_write_pcap_path_and_fileobj_agree(tmp_path):
    rec, _, _ = _recorder_with_frames()
    path = tmp_path / "frames.pcap"
    n = write_pcap(str(path), rec)
    buf = io.BytesIO()
    assert write_pcap(buf, rec) == n == 2
    assert path.read_bytes() == buf.getvalue() == pcap_bytes(rec)


def test_pcap_accepts_a_plain_lineage_iterable():
    rec, a, _ = _recorder_with_frames()
    subset = [rec.get(a)]
    _, records = read_pcap(pcap_bytes(subset))
    assert len(records) == 1 and records[0][3] == rec.get(a).raw


# ----------------------------------------------------------------------
# Chrome trace events
# ----------------------------------------------------------------------

def test_chrome_trace_structure():
    rec, a, b = _recorder_with_frames()
    doc = chrome_trace_dict(rec)
    events = doc["traceEvents"]
    by_ph = {}
    for ev in events:
        by_ph.setdefault(ev["ph"], []).append(ev)
    # one X slice per lineage, one instant per hop
    assert len(by_ph["X"]) == 4
    assert len(by_ph["i"]) == 1
    # parent/child links draw as s/f flow pairs (b<-a and ether<-a)
    assert len(by_ph["s"]) == len(by_ph["f"]) == 2
    # metadata names the process and every host track
    thread_names = {ev["args"]["name"] for ev in by_ph["M"]
                    if ev["name"] == "thread_name"}
    assert {"victim:wlan0", "corp-ap", "rogue-gw"} <= thread_names
    # timestamps are in microseconds
    slice_a = next(ev for ev in by_ph["X"] if ev["args"]["trace_id"] == a)
    assert slice_a["ts"] == 1.25e6


def test_chrome_trace_is_json_serializable_and_counted(tmp_path):
    rec, _, _ = _recorder_with_frames()
    path = tmp_path / "trace.json"
    n = write_chrome_trace(str(path), rec)
    doc = json.loads(path.read_text())
    assert len(doc["traceEvents"]) == n
    buf = io.StringIO()
    assert write_chrome_trace(buf, rec) == n
    assert json.loads(buf.getvalue()) == doc
