"""The ambient collecting() context: nesting, restoration, gating."""

import pytest

from repro.obs.runtime import (Collection, active_profiler, collecting,
                               obs_metrics)


def test_no_context_means_none():
    assert obs_metrics() is None
    assert active_profiler() is None


def test_collecting_installs_and_restores():
    with collecting() as col:
        assert obs_metrics() is col.registry
        assert active_profiler() is None  # profile off by default
    assert obs_metrics() is None


def test_collecting_profile_enables_profiler():
    with collecting(profile=True) as col:
        assert active_profiler() is col.profiler
        assert col.profiler is not None
    assert active_profiler() is None


def test_disabled_metrics_hide_the_registry():
    with collecting(metrics=False) as col:
        # Instrumentation sees "off" ...
        assert obs_metrics() is None
        # ... but the context still snapshots a stable (empty) shape.
        assert col.snapshot() == {}


def test_contexts_nest_innermost_wins():
    with collecting() as outer:
        outer.registry.incr("outer.only")
        with collecting() as inner:
            assert obs_metrics() is inner.registry
            obs_metrics().incr("inner.only")
        assert obs_metrics() is outer.registry
    assert "inner.only" not in outer.snapshot()


def test_context_restored_when_body_raises():
    with pytest.raises(RuntimeError):
        with collecting():
            raise RuntimeError("trial died")
    assert obs_metrics() is None
    assert active_profiler() is None


def test_recording_through_the_ambient_context():
    with collecting(profile=True) as col:
        m = obs_metrics()
        m.incr("radio.deliveries", 3)
        with active_profiler().span("radio.fanout"):
            pass
    snap = col.snapshot()
    assert snap["radio.deliveries"]["value"] == 3
    assert col.profiler.count("radio.fanout") == 1


def test_collection_defaults():
    col = Collection()
    assert col.registry.enabled
    assert col.profiler is None
