"""Mergeable metric types: the split-anywhere == single-pass law.

Mirrors tests/sim/test_stats.py: every metric type must satisfy the
same merge contract the fleet engine relies on — folding per-shard
partials together in shard order is indistinguishable from a single
pass over the whole observation stream.  Splits include empty partials
(a shard that observed nothing) and single-sample partials.
"""

import json
import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.metrics import (CounterMetric, GaugeMetric, HistogramMetric,
                               MetricsRegistry, TimerMetric)


def _split(xs, cuts):
    """Split ``xs`` into parts at the (sorted, clamped) cut points."""
    bounds = sorted(min(c, len(xs)) for c in cuts)
    parts, start = [], 0
    for b in bounds + [len(xs)]:
        parts.append(xs[start:b])
        start = b
    return parts


# cut lists that force empty partials (adjacent equal cuts) and
# single-sample partials (adjacent cuts one apart) to appear often
_CUTS = st.lists(st.integers(min_value=0, max_value=200), max_size=5)


# ----------------------------------------------------------------------
# CounterMetric
# ----------------------------------------------------------------------

@given(st.lists(st.integers(min_value=-1000, max_value=1000), max_size=200),
       _CUTS)
def test_counter_merge_equals_single_pass(xs, cuts):
    whole = CounterMetric()
    for x in xs:
        whole.incr(x)
    merged = CounterMetric()
    for part in _split(xs, cuts):
        partial = CounterMetric()
        for x in part:
            partial.incr(x)
        merged.merge(partial)
    assert merged.value == whole.value


def test_counter_roundtrip_and_chaining():
    c = CounterMetric()
    c.incr()
    c.incr(4)
    assert c.value == 5
    clone = CounterMetric.from_dict(c.to_dict())
    assert clone.value == 5
    assert c.merge(CounterMetric()) is c
    assert c.value == 5  # merging an empty counter is a no-op


# ----------------------------------------------------------------------
# GaugeMetric
# ----------------------------------------------------------------------

@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), max_size=200),
       _CUTS)
def test_gauge_merge_equals_single_pass(xs, cuts):
    whole = GaugeMetric()
    for x in xs:
        whole.set(x)
    merged = GaugeMetric()
    for part in _split(xs, cuts):
        partial = GaugeMetric()
        for x in part:
            partial.set(x)
        merged.merge(partial)
    assert merged.updates == whole.updates
    assert merged.value == whole.value  # last set wins, across shards
    if xs:
        assert merged.min == whole.min and merged.max == whole.max


def test_gauge_empty_later_shard_does_not_clobber_value():
    g = GaugeMetric()
    g.set(7.0)
    g.merge(GaugeMetric())  # later shard saw nothing
    assert g.value == 7.0
    assert g.updates == 1


def test_gauge_unset_serialization():
    data = GaugeMetric().to_dict()
    assert data["updates"] == 0
    assert data["min"] is None and data["max"] is None
    clone = GaugeMetric.from_dict(data)
    assert clone.value is None and clone.updates == 0


# ----------------------------------------------------------------------
# TimerMetric
# ----------------------------------------------------------------------

@given(st.lists(st.floats(min_value=0.0, max_value=1e3), max_size=200),
       _CUTS)
def test_timer_merge_equals_single_pass(xs, cuts):
    whole = TimerMetric()
    for x in xs:
        whole.add(x)
    merged = TimerMetric()
    for part in _split(xs, cuts):
        partial = TimerMetric()
        for x in part:
            partial.add(x)
        merged.merge(partial)
    assert merged.count == whole.count
    assert math.isclose(merged.total_s, whole.total_s,
                        rel_tol=1e-9, abs_tol=1e-9)
    if xs:
        assert merged.min_s == whole.min_s
        assert merged.max_s == whole.max_s


def test_timer_mean_and_empty():
    t = TimerMetric()
    assert math.isnan(t.mean_s)
    t.add(1.0)
    t.add(3.0)
    assert t.mean_s == 2.0
    clone = TimerMetric.from_dict(t.to_dict())
    assert (clone.count, clone.total_s, clone.min_s, clone.max_s) == (2, 4.0, 1.0, 3.0)


# ----------------------------------------------------------------------
# HistogramMetric
# ----------------------------------------------------------------------

@given(st.lists(st.floats(min_value=-50.0, max_value=150.0), max_size=200),
       _CUTS)
def test_histogram_merge_equals_single_pass(xs, cuts):
    whole = HistogramMetric(0.0, 100.0, 20)
    for x in xs:
        whole.observe(x)
    merged = HistogramMetric(0.0, 100.0, 20)
    for part in _split(xs, cuts):
        partial = HistogramMetric(0.0, 100.0, 20)
        for x in part:
            partial.observe(x)
        merged.merge(partial)
    assert merged.counts == whole.counts  # exact: counts are integers
    assert merged.underflow == whole.underflow
    assert merged.overflow == whole.overflow
    assert merged.total == whole.total


def test_histogram_merge_rejects_mismatched_binning():
    with pytest.raises(ValueError):
        HistogramMetric(0.0, 10.0, 10).merge(HistogramMetric(0.0, 10.0, 5))
    with pytest.raises(ValueError):
        HistogramMetric(0.0, 10.0, 10).merge(HistogramMetric(0.0, 20.0, 10))


def test_histogram_invalid_bounds():
    with pytest.raises(ValueError):
        HistogramMetric(1.0, 1.0, 5)
    with pytest.raises(ValueError):
        HistogramMetric(0.0, 1.0, 0)


def test_histogram_matches_sim_stats_binning():
    # Same semantics as repro.sim.stats.Histogram: [lo, hi) bins with
    # separate under/overflow — pinned against the reference directly.
    from repro.sim.stats import Histogram as RefHistogram
    xs = [0.5, 1.5, 1.7, 9.9, -1.0, 10.0, 25.0, 3.3333, 6.999999]
    ref = RefHistogram(0.0, 10.0, 10)
    mine = HistogramMetric(0.0, 10.0, 10)
    for x in xs:
        ref.add(x)
        mine.observe(x)
    assert mine.counts == ref.counts
    assert mine.underflow == ref.underflow
    assert mine.overflow == ref.overflow


def test_merge_returns_self_for_chaining():
    for a, b in [(CounterMetric(), CounterMetric()),
                 (GaugeMetric(), GaugeMetric()),
                 (TimerMetric(), TimerMetric()),
                 (HistogramMetric(0.0, 1.0, 2), HistogramMetric(0.0, 1.0, 2))]:
        assert a.merge(b) is a


# ----------------------------------------------------------------------
# MetricsRegistry
# ----------------------------------------------------------------------

def _record_ops(reg, ops):
    for kind, x in ops:
        if kind == "c":
            reg.incr("cat.count", x)
        elif kind == "g":
            reg.set_gauge("cat.gauge", x)
        elif kind == "t":
            reg.add_time("cat.timer", abs(x))
        else:
            reg.observe("cat.hist", x, lo=0.0, hi=100.0, bins=10)


@given(st.lists(st.tuples(st.sampled_from("cgth"),
                          st.integers(min_value=-50, max_value=150)),
                max_size=200),
       _CUTS)
def test_registry_merge_equals_single_pass(ops, cuts):
    whole = MetricsRegistry()
    _record_ops(whole, ops)
    merged = MetricsRegistry()
    for part in _split(ops, cuts):
        partial = MetricsRegistry()
        _record_ops(partial, part)
        merged.merge(MetricsRegistry.from_snapshot(partial.snapshot()))
    assert merged.snapshot() == whole.snapshot()


def test_registry_snapshot_roundtrip_is_json_safe():
    reg = MetricsRegistry()
    reg.incr("a.count", 3)
    reg.set_gauge("a.gauge", 1.5)
    reg.add_time("a.timer", 0.25)
    reg.observe("a.hist", 5.0, lo=0.0, hi=10.0, bins=5)
    snap = json.loads(json.dumps(reg.snapshot()))  # survives JSON transport
    clone = MetricsRegistry.from_snapshot(snap)
    assert clone.snapshot() == reg.snapshot()


def test_registry_type_collision_raises():
    reg = MetricsRegistry()
    reg.incr("x")
    with pytest.raises(ValueError):
        reg.set_gauge("x", 1.0)
    other = MetricsRegistry()
    other.set_gauge("x", 1.0)
    with pytest.raises(ValueError):
        reg.merge(other)


def test_registry_merge_deep_copies_absent_metrics():
    src = MetricsRegistry()
    src.incr("only.here", 2)
    dst = MetricsRegistry()
    dst.merge(src)
    src.incr("only.here", 10)  # must not reach into dst
    assert dst.value("only.here") == 2


def test_disabled_registry_records_nothing():
    reg = MetricsRegistry(enabled=False)
    reg.incr("a")
    reg.set_gauge("b", 1.0)
    reg.add_time("c", 1.0)
    reg.observe("d", 1.0, lo=0.0, hi=10.0, bins=2)
    assert reg.snapshot() == {}
    assert reg.value("a") == 0


def test_registry_subtree_and_queries():
    reg = MetricsRegistry()
    reg.incr("radio.deliveries", 5)
    reg.incr("radio.drops.loss", 1)
    reg.incr("tcp.retransmits", 2)
    assert set(reg.subtree("radio")) == {"radio.deliveries", "radio.drops.loss"}
    assert reg.names() == ["radio.deliveries", "radio.drops.loss",
                           "tcp.retransmits"]
    assert reg.value("radio.deliveries") == 5
    assert reg.value("missing") == 0
    assert len(reg) == 3
    assert [name for name, _ in reg] == reg.names()


def test_registry_report_lists_every_metric():
    reg = MetricsRegistry()
    reg.incr("a.count", 7)
    reg.set_gauge("a.gauge", 2.0)
    reg.add_time("a.timer", 0.5)
    reg.observe("a.hist", 1.0, lo=0.0, hi=10.0, bins=2)
    out = reg.report()
    for name in reg.names():
        assert name in out
    assert "counter" in out and "gauge" in out
    assert "timer" in out and "histogram" in out


# ----------------------------------------------------------------------
# HistogramMetric.quantile — grouped-data estimation (PR 8)
# ----------------------------------------------------------------------

def test_quantile_empty_histogram_is_nan():
    h = HistogramMetric(lo=0.0, hi=10.0, bins=5)
    assert math.isnan(h.quantile(0.5))
    h.observe(-1.0)  # out-of-range only: still no in-range mass
    h.observe(99.0)
    assert math.isnan(h.quantile(0.5))


def test_quantile_rejects_out_of_range_fraction():
    h = HistogramMetric(lo=0.0, hi=10.0, bins=5)
    h.observe(5.0)
    for bad in (-0.1, 1.1, 2.0):
        with pytest.raises(ValueError):
            h.quantile(bad)


def test_quantile_exact_on_single_bucket_data():
    # All mass in one bucket: every quantile lands inside that bucket's
    # edges, and the interpolation sweeps it monotonically.
    h = HistogramMetric(lo=0.0, hi=10.0, bins=5)
    for _ in range(100):
        h.observe(4.5)   # bucket [4, 6)
    assert 4.0 <= h.quantile(0.0) <= h.quantile(1.0) <= 6.0
    assert h.quantile(1.0) == 6.0
    assert abs(h.quantile(0.5) - 5.0) < 1e-9


@given(st.lists(st.floats(min_value=0.0, max_value=9.999), min_size=1,
                max_size=60),
       st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=2,
                max_size=8))
def test_quantile_monotone_in_q(xs, qs):
    h = HistogramMetric(lo=0.0, hi=10.0, bins=8)
    for x in xs:
        h.observe(x)
    values = [h.quantile(q) for q in sorted(qs)]
    assert all(a <= b for a, b in zip(values, values[1:]))
    assert all(h.lo <= v <= h.hi for v in values)


@given(st.lists(st.floats(min_value=-5.0, max_value=15.0), min_size=1,
                max_size=60),
       st.lists(st.integers(min_value=0, max_value=60), max_size=3),
       st.floats(min_value=0.0, max_value=1.0))
def test_quantile_stable_under_merge(xs, cuts, q):
    # Folding per-shard partials (the fleet reduction) must yield the
    # same quantiles as one histogram that saw every observation.
    single = HistogramMetric(lo=0.0, hi=10.0, bins=8)
    for x in xs:
        single.observe(x)
    merged = HistogramMetric(lo=0.0, hi=10.0, bins=8)
    for part in _split(xs, cuts):
        shard = HistogramMetric(lo=0.0, hi=10.0, bins=8)
        for x in part:
            shard.observe(x)
        merged.merge(shard)
    if sum(single.counts) == 0:  # no in-range mass (only under/overflow)
        assert math.isnan(merged.quantile(q))
    else:
        assert merged.quantile(q) == single.quantile(q)  # bit-identical
