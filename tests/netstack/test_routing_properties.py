"""Property test: RoutingTable lookup == brute-force longest-prefix-match."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netstack.addressing import IPv4Address, Network
from repro.netstack.routing import Route, RoutingTable


routes_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=0xFFFFFFFF),  # network address
        st.integers(min_value=0, max_value=32),          # prefix
        st.integers(min_value=0, max_value=3),           # metric
    ),
    min_size=0, max_size=12,
)


def brute_force_lookup(routes: list[Route], dst: IPv4Address):
    best = None
    for route in routes:
        if dst in route.network:
            if best is None:
                best = route
            elif route.network.prefix_len > best.network.prefix_len:
                best = route
            elif (route.network.prefix_len == best.network.prefix_len
                  and route.metric < best.metric):
                best = route
    return best


@settings(max_examples=150, deadline=None)
@given(specs=routes_strategy, dst=st.integers(min_value=0, max_value=0xFFFFFFFF))
def test_lookup_matches_brute_force(specs, dst):
    table = RoutingTable()
    routes = []
    for i, (addr, prefix, metric) in enumerate(specs):
        route = Route(network=Network(str(IPv4Address(addr)), prefix),
                      interface=f"if{i}", metric=metric)
        routes.append(route)
        table.add(route)
    dst_ip = IPv4Address(dst)
    expected = brute_force_lookup(routes, dst_ip)
    actual = table.lookup(dst_ip)
    if expected is None:
        assert actual is None
    else:
        assert actual is not None
        assert actual.network.prefix_len == expected.network.prefix_len
        assert actual.metric == expected.metric
        assert dst_ip in actual.network


@settings(max_examples=50, deadline=None)
@given(specs=routes_strategy)
def test_remove_then_lookup_consistent(specs):
    table = RoutingTable()
    for i, (addr, prefix, metric) in enumerate(specs):
        table.add(Route(network=Network(str(IPv4Address(addr)), prefix),
                        interface=f"if{i}", metric=metric))
    if not specs:
        return
    addr, prefix, _ = specs[0]
    net = Network(str(IPv4Address(addr)), prefix)
    table.remove(net)
    # Whatever remains still satisfies the brute-force invariant.
    remaining = table.routes()
    probe = IPv4Address(addr)
    expected = brute_force_lookup(remaining, probe)
    actual = table.lookup(probe)
    assert (actual is None) == (expected is None)
    if actual is not None:
        assert actual.network.prefix_len == expected.network.prefix_len
