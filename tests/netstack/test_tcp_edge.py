"""TCP edge cases: reordering, duplication, windows, simultaneous close."""

import pytest

from repro.netstack.addressing import IPv4Address
from repro.netstack.tcp import FLAG_ACK, FLAG_SYN, TcpConnection, TcpState
from repro.sim.kernel import Simulator

IP_A = IPv4Address("10.0.0.1")
IP_B = IPv4Address("10.0.0.2")


class ReorderingPipe:
    """Pipe that randomly delays segments, causing reordering."""

    def __init__(self, sim, *, jitter_s=0.02, seed=5):
        self.sim = sim
        self.rng = sim.rng.substream(f"reorder.{seed}")
        self.jitter_s = jitter_s
        self.a = None
        self.b = None

    def a_to_b(self, segment):
        delay = 0.005 + self.rng.uniform(0, self.jitter_s)
        self.sim.schedule(delay, lambda: self.b.handle_segment(segment))

    def b_to_a(self, segment):
        delay = 0.005 + self.rng.uniform(0, self.jitter_s)
        self.sim.schedule(delay, lambda: self.a.handle_segment(segment))


class DuplicatingPipe:
    """Pipe that delivers every data segment twice."""

    def __init__(self, sim):
        self.sim = sim
        self.a = None
        self.b = None

    def a_to_b(self, segment):
        self.sim.schedule(0.005, lambda: self.b.handle_segment(segment))
        if segment.payload:
            self.sim.schedule(0.006, lambda: self.b.handle_segment(segment))

    def b_to_a(self, segment):
        self.sim.schedule(0.005, lambda: self.a.handle_segment(segment))


def make_pair(sim, pipe, mss=100):
    a = TcpConnection(sim, IP_A, 1000, IP_B, 2000, pipe.a_to_b, mss=mss)
    b = TcpConnection(sim, IP_B, 2000, IP_A, 1000, pipe.b_to_a, mss=mss)
    pipe.a, pipe.b = a, b
    original = b.handle_segment

    def accepting(segment):
        if b.state is TcpState.CLOSED and segment.flags & FLAG_SYN \
                and not segment.flags & FLAG_ACK:
            b.accept_syn(segment)
        else:
            original(segment)

    b.handle_segment = accepting
    return a, b


def test_reordered_segments_reassemble_in_order():
    sim = Simulator(seed=11)
    a, b = make_pair(sim, ReorderingPipe(sim), mss=50)
    got = bytearray()
    b.on_data = got.extend
    blob = bytes(range(256)) * 20  # 5120 bytes in ~102 segments
    a.connect()
    a.send(blob)
    sim.run_for(120.0)
    assert bytes(got) == blob


def test_duplicated_segments_delivered_once():
    sim = Simulator(seed=12)
    a, b = make_pair(sim, DuplicatingPipe(sim), mss=100)
    got = bytearray()
    b.on_data = got.extend
    blob = b"exactly-once" * 100
    a.connect()
    a.send(blob)
    sim.run_for(30.0)
    assert bytes(got) == blob  # no duplicate bytes delivered to the app


def test_peer_window_limits_flight():
    """The sender never has more unacked bytes than the advertised window."""
    sim = Simulator(seed=13)

    class Spy:
        def __init__(self):
            self.max_flight = 0
            self.a = None
            self.b = None

        def a_to_b(self, segment):
            self.max_flight = max(self.max_flight, self.a.flight_size)
            sim.schedule(0.005, lambda: self.b.handle_segment(segment))

        def b_to_a(self, segment):
            # Shrink the advertised window.
            from dataclasses import replace
            segment = replace(segment, window=500)
            sim.schedule(0.005, lambda: self.a.handle_segment(segment))

    pipe = Spy()
    a, b = make_pair(sim, pipe, mss=100)
    b.on_data = lambda d: None
    a.connect()
    a.send(b"z" * 20000)
    sim.run_for(60.0)
    # Window 500 + one MSS of slack for the in-flight segment being cut.
    assert pipe.max_flight <= 600


def test_simultaneous_close():
    sim = Simulator(seed=14)

    class Pipe:
        def __init__(self):
            self.a = None
            self.b = None

        def a_to_b(self, segment):
            sim.schedule(0.005, lambda: self.b.handle_segment(segment))

        def b_to_a(self, segment):
            sim.schedule(0.005, lambda: self.a.handle_segment(segment))

    pipe = Pipe()
    a, b = make_pair(sim, pipe)
    a.connect()
    sim.run_for(1.0)
    assert a.established and b.established
    a.close()
    b.close()
    sim.run_for(10.0)
    assert a.state in (TcpState.CLOSED, TcpState.TIME_WAIT)
    assert b.state in (TcpState.CLOSED, TcpState.TIME_WAIT)


def test_zero_length_send_is_noop():
    sim = Simulator(seed=15)

    class Pipe:
        a = b = None

        def a_to_b(self, segment):
            sim.schedule(0.005, lambda: self.b.handle_segment(segment))

        def b_to_a(self, segment):
            sim.schedule(0.005, lambda: self.a.handle_segment(segment))

    pipe = Pipe()
    a, b = make_pair(sim, pipe)
    a.connect()
    sim.run_for(1.0)
    sent_before = a.segments_sent
    a.send(b"")
    sim.run_for(1.0)
    assert a.segments_sent == sent_before
