"""TCP: segment format, handshake, transfer, loss recovery, teardown.

The harness wires two TcpConnection objects through a configurable
pipe (delay + deterministic loss), bypassing IP — host-level TCP
integration is covered in tests/hosts/.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netstack.addressing import IPv4Address
from repro.netstack.tcp import (
    FLAG_ACK,
    FLAG_RST,
    FLAG_SYN,
    TcpConnection,
    TcpSegment,
    TcpState,
    seq_add,
    seq_lt,
)
from repro.sim.kernel import Simulator

IP_A = IPv4Address("10.0.0.1")
IP_B = IPv4Address("10.0.0.2")


class Pipe:
    """Bidirectional segment pipe with delay and scripted loss."""

    def __init__(self, sim, delay=0.01, loss_rate=0.0, seed=99):
        self.sim = sim
        self.delay = delay
        self.loss_rate = loss_rate
        self.rng = sim.rng.substream(f"pipe.{seed}")
        self.a = None  # set after construction
        self.b = None
        self.dropped = 0

    def a_to_b(self, segment):
        self._relay(segment, lambda s: self.b.handle_segment(s))

    def b_to_a(self, segment):
        self._relay(segment, lambda s: self.a.handle_segment(s))

    def _relay(self, segment, deliver):
        if self.loss_rate and self.rng.bernoulli(self.loss_rate):
            self.dropped += 1
            return
        self.sim.schedule(self.delay, deliver, segment)


def make_pair(sim, *, loss_rate=0.0, mss=100):
    pipe = Pipe(sim, loss_rate=loss_rate)
    a = TcpConnection(sim, IP_A, 1000, IP_B, 2000, pipe.a_to_b, mss=mss)
    b = TcpConnection(sim, IP_B, 2000, IP_A, 1000, pipe.b_to_a, mss=mss)
    pipe.a, pipe.b = a, b

    # Wire the passive side to accept the SYN when it arrives.
    original = b.handle_segment

    def accepting(segment):
        if b.state is TcpState.CLOSED and segment.flags & FLAG_SYN \
                and not segment.flags & FLAG_ACK:
            b.accept_syn(segment)
        else:
            original(segment)

    b.handle_segment = accepting
    return a, b, pipe


# ----------------------------------------------------------------------
# segment format
# ----------------------------------------------------------------------

def test_segment_roundtrip():
    seg = TcpSegment(src_port=80, dst_port=1234, seq=100, ack=200,
                     flags=FLAG_ACK, window=5000, payload=b"hello")
    parsed = TcpSegment.from_bytes(seg.to_bytes(IP_A, IP_B), IP_A, IP_B)
    assert parsed == seg


def test_segment_checksum_detects_corruption():
    raw = bytearray(TcpSegment(1, 2, 0, 0, FLAG_SYN).to_bytes(IP_A, IP_B))
    raw[4] ^= 0x01
    with pytest.raises(Exception):
        TcpSegment.from_bytes(bytes(raw), IP_A, IP_B)


def test_flag_names():
    assert TcpSegment(1, 2, 0, 0, FLAG_SYN | FLAG_ACK).flag_names() == "SYN|ACK"


def test_seq_arithmetic_wraps():
    assert seq_add(0xFFFFFFFF, 1) == 0
    assert seq_lt(0xFFFFFFFF, 5)       # wrapped forward
    assert not seq_lt(5, 0xFFFFFFFF)
    assert seq_lt(100, 200)


# ----------------------------------------------------------------------
# connection behaviour
# ----------------------------------------------------------------------

def test_three_way_handshake():
    sim = Simulator(seed=1)
    a, b, _ = make_pair(sim)
    established = []
    a.on_established = lambda: established.append("a")
    b.on_established = lambda: established.append("b")
    a.connect()
    sim.run_for(1.0)
    assert a.state is TcpState.ESTABLISHED
    assert b.state is TcpState.ESTABLISHED
    assert set(established) == {"a", "b"}


def test_data_transfer_in_order():
    sim = Simulator(seed=1)
    a, b, _ = make_pair(sim)
    got = bytearray()
    b.on_data = got.extend
    a.connect()
    a.send(b"hello ")
    a.send(b"world")
    sim.run_for(2.0)
    assert bytes(got) == b"hello world"


def test_large_transfer_segmented():
    sim = Simulator(seed=1)
    a, b, _ = make_pair(sim, mss=100)
    got = bytearray()
    b.on_data = got.extend
    blob = bytes(range(256)) * 40  # 10240 bytes
    a.connect()
    a.send(blob)
    sim.run_for(30.0)
    assert bytes(got) == blob
    assert b.segments_received > 10  # actually segmented


def test_send_before_establishment_is_queued():
    sim = Simulator(seed=1)
    a, b, _ = make_pair(sim)
    got = bytearray()
    b.on_data = got.extend
    a.connect()
    a.send(b"early")  # still SYN_SENT
    sim.run_for(2.0)
    assert bytes(got) == b"early"


def test_bidirectional_transfer():
    sim = Simulator(seed=1)
    a, b, _ = make_pair(sim)
    got_a, got_b = bytearray(), bytearray()
    a.on_data = got_a.extend
    b.on_data = got_b.extend
    a.connect()
    a.send(b"ping")
    b.on_established = lambda: b.send(b"pong")
    sim.run_for(2.0)
    assert bytes(got_b) == b"ping" and bytes(got_a) == b"pong"


def test_transfer_under_loss_is_reliable():
    sim = Simulator(seed=3)
    a, b, pipe = make_pair(sim, loss_rate=0.15, mss=200)
    got = bytearray()
    b.on_data = got.extend
    blob = b"\x5a" * 20000
    a.connect()
    a.send(blob)
    sim.run_for(300.0)
    assert bytes(got) == blob
    assert pipe.dropped > 0                 # loss actually happened
    assert a.retransmissions > 0            # and TCP recovered


def test_loss_triggers_congestion_response():
    sim = Simulator(seed=5)
    a, b, _ = make_pair(sim, loss_rate=0.25, mss=200)
    b.on_data = lambda d: None
    a.connect()
    a.send(b"x" * 30000)
    sim.run_for(120.0)
    assert a.timeouts + a.fast_retransmits > 0
    assert a.ssthresh < 64 * 1024  # came down from the initial value


def test_graceful_close_both_sides():
    sim = Simulator(seed=1)
    a, b, _ = make_pair(sim)
    closed = []
    b.on_close = lambda: (closed.append("b"), b.close())
    a.connect()
    a.send(b"bye")
    b.on_data = lambda d: None
    a.close()
    sim.run_for(10.0)
    assert "b" in closed
    assert a.state in (TcpState.TIME_WAIT, TcpState.CLOSED)
    assert b.state is TcpState.CLOSED


def test_close_flushes_pending_data():
    sim = Simulator(seed=1)
    a, b, _ = make_pair(sim, mss=100)
    got = bytearray()
    b.on_data = got.extend
    a.connect()
    a.send(b"q" * 500)
    a.close()  # close with data still queued
    sim.run_for(10.0)
    assert len(got) == 500


def test_send_after_close_raises():
    sim = Simulator(seed=1)
    a, b, _ = make_pair(sim)
    a.connect()
    sim.run_for(1.0)
    a.close()
    with pytest.raises(Exception):
        a.send(b"late")


def test_abort_sends_rst():
    sim = Simulator(seed=1)
    a, b, _ = make_pair(sim)
    reset = []
    b.on_reset = lambda: reset.append(1)
    a.connect()
    sim.run_for(1.0)
    a.abort()
    sim.run_for(1.0)
    assert a.closed
    assert reset == [1]
    assert b.closed


def test_read_pull_interface():
    sim = Simulator(seed=1)
    a, b, _ = make_pair(sim)
    a.connect()
    a.send(b"buffered data")
    sim.run_for(2.0)
    assert b.read(8) == b"buffered"
    assert b.read() == b"buffered data"[8:]
    assert b.read() == b""


def test_rtt_estimation_converges():
    sim = Simulator(seed=1)
    a, b, _ = make_pair(sim)  # pipe delay 0.01 -> RTT 0.02
    b.on_data = lambda d: None
    a.connect()
    for _ in range(20):
        a.send(b"probe" * 10)
        sim.run_for(0.5)
    assert a.srtt is not None
    assert 0.01 < a.srtt < 0.08


def test_syn_retransmission_on_lost_syn():
    sim = Simulator(seed=1)
    pipe = Pipe(sim)
    a = TcpConnection(sim, IP_A, 1000, IP_B, 2000, lambda s: None)  # blackhole
    a.connect()
    sim.run_for(5.0)
    assert a.retransmissions >= 2
    assert a.state is TcpState.SYN_SENT


def test_gives_up_after_repeated_timeouts():
    sim = Simulator(seed=1)
    a = TcpConnection(sim, IP_A, 1000, IP_B, 2000, lambda s: None)
    a.connect()
    sim.run_for(4000.0)
    assert a.closed


@settings(max_examples=15, deadline=None)
@given(st.binary(min_size=1, max_size=5000), st.sampled_from([50, 200, 1460]))
def test_any_payload_delivered_exactly(blob, mss):
    sim = Simulator(seed=7)
    a, b, _ = make_pair(sim, mss=mss)
    got = bytearray()
    b.on_data = got.extend
    a.connect()
    a.send(blob)
    sim.run_for(60.0)
    assert bytes(got) == blob
