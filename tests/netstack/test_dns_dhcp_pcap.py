"""DNS and DHCP message formats; IP-layer packet capture."""

import pytest

from repro.dot11.mac import MacAddress
from repro.netstack.addressing import IPv4Address, Network
from repro.netstack.dhcp import DhcpMessage, DhcpMessageType, LeasePool
from repro.netstack.dns import DnsMessage, DnsZone
from repro.netstack.ipv4 import PROTO_TCP, PROTO_UDP, IPv4Packet
from repro.netstack.pcap import CapturedPacket, PacketCapture
from repro.netstack.tcp import FLAG_ACK, TcpSegment
from repro.netstack.udp import UdpDatagram
from repro.sim.errors import ProtocolError

IP_A = IPv4Address("10.0.0.1")
IP_B = IPv4Address("10.0.0.2")


# ----------------------------------------------------------------------
# DNS
# ----------------------------------------------------------------------

def test_dns_query_response_roundtrip():
    q = DnsMessage.query(0x1234, "www.example.com")
    parsed = DnsMessage.from_bytes(q.to_bytes())
    assert parsed == q and not parsed.is_response
    r = q.answered(IPv4Address("93.184.216.34"))
    parsed_r = DnsMessage.from_bytes(r.to_bytes())
    assert parsed_r.is_response
    assert parsed_r.txn_id == 0x1234
    assert parsed_r.answers == (IPv4Address("93.184.216.34"),)


def test_dns_empty_answer():
    r = DnsMessage.query(1, "nx.example").answered()
    assert DnsMessage.from_bytes(r.to_bytes()).answers == ()


def test_dns_malformed():
    with pytest.raises(ProtocolError):
        DnsMessage.from_bytes(b"\x00\x01")


def test_dns_zone_case_insensitive():
    zone = DnsZone({"WWW.Example.COM": "1.2.3.4"})
    assert zone.resolve("www.example.com") == IPv4Address("1.2.3.4")
    assert zone.resolve("other.com") is None
    assert len(zone) == 1


# ----------------------------------------------------------------------
# DHCP
# ----------------------------------------------------------------------

def test_dhcp_roundtrip():
    mac = MacAddress("00:02:2d:00:00:01")
    msg = DhcpMessage(
        message_type=DhcpMessageType.ACK, xid=0xCAFEBABE, client_mac=mac,
        your_ip=IPv4Address("192.168.7.100"), server_ip=IPv4Address("192.168.7.1"),
        gateway=IPv4Address("192.168.7.1"), dns_server=IPv4Address("192.168.7.1"),
        netmask=IPv4Address("255.255.255.0"),
    )
    assert DhcpMessage.from_bytes(msg.to_bytes()) == msg


def test_dhcp_malformed():
    with pytest.raises(ProtocolError):
        DhcpMessage.from_bytes(b"\x01\x00")
    bad = bytearray(DhcpMessage(DhcpMessageType.DISCOVER, 1,
                                MacAddress(b"\x00" * 6)).to_bytes())
    bad[0] = 99
    with pytest.raises(ProtocolError):
        DhcpMessage.from_bytes(bytes(bad))


def test_lease_pool_stable_per_mac():
    pool = LeasePool(Network("192.168.7.0/24"))
    m1 = MacAddress("00:00:00:00:00:01")
    m2 = MacAddress("00:00:00:00:00:02")
    ip1 = pool.lease_for(m1)
    ip2 = pool.lease_for(m2)
    assert ip1 != ip2
    assert pool.lease_for(m1) == ip1  # stable
    assert len(pool) == 2
    assert ip1 in Network("192.168.7.0/24")


def test_lease_pool_exhaustion():
    pool = LeasePool(Network("10.0.0.0/30"), first_host=1)
    pool.lease_for(MacAddress(b"\x00" * 5 + b"\x01"))
    pool.lease_for(MacAddress(b"\x00" * 5 + b"\x02"))
    with pytest.raises(ProtocolError):
        pool.lease_for(MacAddress(b"\x00" * 5 + b"\x03"))


# ----------------------------------------------------------------------
# pcap
# ----------------------------------------------------------------------

def _tcp_cap(t, src, dst, sport, dport, payload, seq=0, direction="forward"):
    seg = TcpSegment(src_port=sport, dst_port=dport, seq=seq, ack=0,
                     flags=FLAG_ACK, payload=payload)
    pkt = IPv4Packet(src=src, dst=dst, proto=PROTO_TCP,
                     payload=seg.to_bytes(src, dst))
    return CapturedPacket(time=t, direction=direction, interface="eth0", packet=pkt)


def test_capture_filters():
    cap = PacketCapture()
    cap.add(_tcp_cap(1.0, IP_A, IP_B, 100, 80, b"one"))
    cap.add(_tcp_cap(2.0, IP_B, IP_A, 80, 100, b"two"))
    assert cap.count(src=IP_A) == 1
    assert cap.count(dport=80) == 1
    assert cap.count(proto=PROTO_TCP) == 2
    assert cap.count(since=1.5) == 1
    assert cap.count(direction="forward") == 2


def test_capture_decoders():
    cap = PacketCapture()
    cap.add(_tcp_cap(1.0, IP_A, IP_B, 100, 80, b"hi"))
    c = cap.packets[0]
    assert c.ports() == (100, 80)
    assert c.tcp().payload == b"hi"
    assert c.udp() is None


def test_payload_stream_reassembles_in_seq_order():
    cap = PacketCapture()
    cap.add(_tcp_cap(1.0, IP_A, IP_B, 9, 80, b"world", seq=105))
    cap.add(_tcp_cap(2.0, IP_A, IP_B, 9, 80, b"hello", seq=100))
    cap.add(_tcp_cap(3.0, IP_A, IP_B, 9, 80, b"hello", seq=100))  # dup
    assert cap.payload_stream(IP_A, IP_B) == b"helloworld"


def test_capture_capacity():
    cap = PacketCapture(capacity=4)
    for i in range(10):
        cap.add(_tcp_cap(float(i), IP_A, IP_B, 1, 2, b"x"))
    assert len(cap) <= 5
