"""Ethernet framing, LLC/SNAP, hubs and switches."""

import pytest

from repro.dot11.mac import BROADCAST, MacAddress
from repro.netstack.ethernet import (
    ETHERTYPE_ARP,
    ETHERTYPE_IPV4,
    EthernetFrame,
    Hub,
    Switch,
    WiredPort,
    llc_decap,
    llc_encap,
)
from repro.sim.errors import ConfigurationError, ProtocolError
from repro.sim.kernel import Simulator

A = MacAddress("00:00:00:00:00:0a")
B = MacAddress("00:00:00:00:00:0b")
E = MacAddress("00:00:00:00:00:0e")


def test_llc_snap_first_byte_is_aa():
    """The known plaintext the FMS attack depends on."""
    body = llc_encap(ETHERTYPE_IPV4, b"ip packet")
    assert body[0] == 0xAA
    ethertype, payload = llc_decap(body)
    assert ethertype == ETHERTYPE_IPV4
    assert payload == b"ip packet"


def test_llc_decap_rejects_garbage():
    with pytest.raises(ProtocolError):
        llc_decap(b"\x00" * 10)
    with pytest.raises(ProtocolError):
        llc_decap(b"\xaa\xaa")


def test_ethernet_frame_roundtrip():
    f = EthernetFrame(dst=B, src=A, ethertype=ETHERTYPE_ARP, payload=b"arp data")
    parsed = EthernetFrame.from_bytes(f.to_bytes())
    assert parsed == f


def test_ethernet_frame_too_short():
    with pytest.raises(ProtocolError):
        EthernetFrame.from_bytes(b"\x00" * 10)


def _setup(sim, segment_cls):
    segment = segment_cls(sim, "seg")
    ports = {}
    received = {}
    for name, mac, promisc in (("a", A, False), ("b", B, False), ("e", E, True)):
        port = WiredPort(name, mac, promiscuous=promisc)
        received[name] = []
        port.on_receive = received[name].append
        segment.attach(port)
        ports[name] = port
    return segment, ports, received


def test_hub_broadcasts_everything():
    sim = Simulator(seed=0)
    _, ports, received = _setup(sim, Hub)
    ports["a"].transmit(EthernetFrame(dst=B, src=A, ethertype=0x0800, payload=b"x"))
    sim.run()
    assert len(received["b"]) == 1
    assert len(received["e"]) == 1  # promiscuous eavesdropper sees unicast
    assert len(received["a"]) == 0


def test_hub_nonpromiscuous_filters_foreign_unicast():
    sim = Simulator(seed=0)
    _, ports, received = _setup(sim, Hub)
    ports["a"].transmit(EthernetFrame(dst=E, src=A, ethertype=0x0800, payload=b"x"))
    sim.run()
    assert len(received["b"]) == 0  # b's NIC drops a frame not for it
    assert len(received["e"]) == 1


def test_switch_isolates_unicast_after_learning():
    sim = Simulator(seed=0)
    switch, ports, received = _setup(sim, Switch)
    # Let the switch learn where B lives.
    ports["b"].transmit(EthernetFrame(dst=BROADCAST, src=B, ethertype=0x0800, payload=b""))
    sim.run()
    ports["a"].transmit(EthernetFrame(dst=B, src=A, ethertype=0x0800, payload=b"secret"))
    sim.run()
    assert len(received["b"]) == 1  # b's own broadcast isn't echoed; it gets a's unicast
    # The §1.1 claim: the promiscuous port saw the flood but NOT the
    # learned unicast.
    eavesdropped_payloads = [f.payload for f in received["e"]]
    assert b"secret" not in eavesdropped_payloads


def test_switch_floods_unknown_destination():
    sim = Simulator(seed=0)
    switch, ports, received = _setup(sim, Switch)
    ports["a"].transmit(EthernetFrame(dst=B, src=A, ethertype=0x0800, payload=b"x"))
    sim.run()
    assert len(received["b"]) == 1  # flooded
    assert switch.flooded_frames == 1


def test_switch_broadcast_reaches_all():
    sim = Simulator(seed=0)
    _, ports, received = _setup(sim, Switch)
    ports["a"].transmit(EthernetFrame(dst=BROADCAST, src=A, ethertype=0x0806, payload=b""))
    sim.run()
    assert len(received["b"]) == 1 and len(received["e"]) == 1


def test_switch_mac_table():
    sim = Simulator(seed=0)
    switch, ports, _ = _setup(sim, Switch)
    ports["a"].transmit(EthernetFrame(dst=BROADCAST, src=A, ethertype=0x0800, payload=b""))
    sim.run()
    assert switch.mac_table() == {A: "a"}


def test_detached_port_cannot_transmit():
    port = WiredPort("orphan", A)
    with pytest.raises(ConfigurationError):
        port.transmit(EthernetFrame(dst=B, src=A, ethertype=0x0800, payload=b""))


def test_double_attach_rejected():
    sim = Simulator(seed=0)
    seg = Hub(sim, "h")
    port = WiredPort("p", A)
    seg.attach(port)
    with pytest.raises(ConfigurationError):
        seg.attach(port)


def test_detach():
    sim = Simulator(seed=0)
    seg, ports, received = _setup(sim, Hub)
    seg.detach(ports["b"])
    ports["a"].transmit(EthernetFrame(dst=B, src=A, ethertype=0x0800, payload=b""))
    sim.run()
    assert received["b"] == []
