"""ARP, IPv4, ICMP, UDP packet formats."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dot11.mac import MacAddress
from repro.netstack.addressing import IPv4Address
from repro.netstack.arp import ArpOp, ArpPacket, ArpTable
from repro.netstack.icmp import IcmpMessage, IcmpType
from repro.netstack.ipv4 import PROTO_TCP, PROTO_UDP, IPv4Packet, internet_checksum
from repro.netstack.udp import UdpDatagram
from repro.sim.errors import ProtocolError

MAC_A = MacAddress("00:00:00:00:00:0a")
MAC_B = MacAddress("00:00:00:00:00:0b")
IP_A = IPv4Address("10.0.0.1")
IP_B = IPv4Address("10.0.0.2")


# ----------------------------------------------------------------------
# ARP
# ----------------------------------------------------------------------

def test_arp_request_reply_roundtrip():
    req = ArpPacket.request(MAC_A, IP_A, IP_B)
    parsed = ArpPacket.from_bytes(req.to_bytes())
    assert parsed == req
    assert parsed.op is ArpOp.REQUEST
    reply = ArpPacket.reply(MAC_B, IP_B, MAC_A, IP_A)
    assert ArpPacket.from_bytes(reply.to_bytes()).op is ArpOp.REPLY


def test_arp_malformed():
    with pytest.raises(ProtocolError):
        ArpPacket.from_bytes(b"\x00" * 10)
    raw = bytearray(ArpPacket.request(MAC_A, IP_A, IP_B).to_bytes())
    raw[7] = 9  # unknown op
    with pytest.raises(ProtocolError):
        ArpPacket.from_bytes(bytes(raw))


def test_arp_table_learn_lookup_expire():
    table = ArpTable(ttl_s=10.0)
    table.learn(IP_A, MAC_A, now=0.0)
    assert table.lookup(IP_A, now=5.0) == MAC_A
    assert table.lookup(IP_A, now=10.0) is None  # expired
    assert table.lookup(IP_B, now=0.0) is None


def test_arp_table_overwrite_is_unconditional():
    """The property ARP poisoning exploits."""
    table = ArpTable()
    table.learn(IP_A, MAC_A, now=0.0)
    table.learn(IP_A, MAC_B, now=1.0)  # attacker's unsolicited reply
    assert table.lookup(IP_A, now=2.0) == MAC_B


def test_arp_table_entries_prunes():
    table = ArpTable(ttl_s=1.0)
    table.learn(IP_A, MAC_A, now=0.0)
    table.learn(IP_B, MAC_B, now=5.0)
    live = table.entries(now=5.5)
    assert live == {IP_B: MAC_B}


# ----------------------------------------------------------------------
# IPv4
# ----------------------------------------------------------------------

def test_ipv4_roundtrip_and_checksum():
    pkt = IPv4Packet(src=IP_A, dst=IP_B, proto=PROTO_UDP, payload=b"data",
                     ttl=17, ident=99, tos=4)
    raw = pkt.to_bytes()
    assert internet_checksum(raw[:20]) == 0  # valid header checksum
    parsed = IPv4Packet.from_bytes(raw)
    assert parsed == pkt


def test_ipv4_corrupted_header_rejected():
    raw = bytearray(IPv4Packet(src=IP_A, dst=IP_B, proto=6, payload=b"x").to_bytes())
    raw[15] ^= 0x01  # flip a src-address bit
    with pytest.raises(ProtocolError):
        IPv4Packet.from_bytes(bytes(raw))


def test_ipv4_ttl_decrement_and_expiry():
    pkt = IPv4Packet(src=IP_A, dst=IP_B, proto=6, payload=b"", ttl=2)
    assert pkt.decremented().ttl == 1
    with pytest.raises(ProtocolError):
        pkt.decremented().decremented()


def test_ipv4_nat_helpers():
    pkt = IPv4Packet(src=IP_A, dst=IP_B, proto=6, payload=b"x")
    assert pkt.with_dst(IPv4Address("1.1.1.1")).dst == "1.1.1.1"
    assert pkt.with_src(IPv4Address("2.2.2.2")).src == "2.2.2.2"
    assert pkt.with_payload(b"yy").payload == b"yy"


def test_ipv4_too_short():
    with pytest.raises(ProtocolError):
        IPv4Packet.from_bytes(b"\x45" + b"\x00" * 10)


@given(st.binary(max_size=500), st.integers(1, 255))
def test_ipv4_roundtrip_property(payload, ttl):
    pkt = IPv4Packet(src=IP_A, dst=IP_B, proto=PROTO_TCP, payload=payload, ttl=ttl)
    assert IPv4Packet.from_bytes(pkt.to_bytes()) == pkt


def test_internet_checksum_odd_length():
    assert internet_checksum(b"\x01\x02\x03") == internet_checksum(b"\x01\x02\x03\x00")


# ----------------------------------------------------------------------
# ICMP
# ----------------------------------------------------------------------

def test_icmp_echo_roundtrip():
    req = IcmpMessage.echo_request(ident=7, seq=3, payload=b"ping!")
    parsed = IcmpMessage.from_bytes(req.to_bytes())
    assert parsed.icmp_type == IcmpType.ECHO_REQUEST
    assert parsed.echo_ident == 7 and parsed.echo_seq == 3
    assert parsed.payload == b"ping!"
    reply = IcmpMessage.echo_reply_to(parsed)
    assert reply.icmp_type == IcmpType.ECHO_REPLY
    assert reply.rest == parsed.rest


def test_icmp_checksum_detects_corruption():
    raw = bytearray(IcmpMessage.echo_request(1, 1).to_bytes())
    raw[-1] ^= 0xFF
    with pytest.raises(ProtocolError):
        IcmpMessage.from_bytes(bytes(raw))


def test_icmp_error_messages_quote_original():
    original = IPv4Packet(src=IP_A, dst=IP_B, proto=6, payload=b"x" * 40).to_bytes()
    te = IcmpMessage.time_exceeded(original)
    assert te.icmp_type == IcmpType.TIME_EXCEEDED
    assert len(te.payload) == 28
    un = IcmpMessage.unreachable(original, code=3)
    assert un.code == 3


# ----------------------------------------------------------------------
# UDP
# ----------------------------------------------------------------------

def test_udp_roundtrip_with_checksum():
    d = UdpDatagram(src_port=1234, dst_port=53, payload=b"query")
    raw = d.to_bytes(IP_A, IP_B)
    parsed = UdpDatagram.from_bytes(raw, IP_A, IP_B)
    assert parsed == d


def test_udp_checksum_binds_addresses():
    """The pseudo-header makes a datagram invalid if IPs are altered
    without recomputation (why NAT must rewrite transport checksums)."""
    raw = UdpDatagram(1, 2, b"x").to_bytes(IP_A, IP_B)
    with pytest.raises(ProtocolError):
        UdpDatagram.from_bytes(raw, IP_A, IPv4Address("9.9.9.9"))


def test_udp_corruption_detected():
    raw = bytearray(UdpDatagram(1, 2, b"payload").to_bytes(IP_A, IP_B))
    raw[-2] ^= 0x10
    with pytest.raises(ProtocolError):
        UdpDatagram.from_bytes(bytes(raw), IP_A, IP_B)


def test_udp_too_short():
    with pytest.raises(ProtocolError):
        UdpDatagram.from_bytes(b"\x00" * 4, IP_A, IP_B)


@given(st.binary(max_size=1000), st.integers(0, 65535), st.integers(0, 65535))
def test_udp_roundtrip_property(payload, sport, dport):
    d = UdpDatagram(src_port=sport, dst_port=dport, payload=payload)
    assert UdpDatagram.from_bytes(d.to_bytes(IP_A, IP_B), IP_A, IP_B) == d
