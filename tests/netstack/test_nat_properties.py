"""Property-based invariants of the NAT/conntrack machinery."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netstack.addressing import IPv4Address, Network
from repro.netstack.ipv4 import PROTO_TCP, PROTO_UDP, IPv4Packet
from repro.netstack.netfilter import (
    Chain,
    Netfilter,
    Rule,
    TargetDnat,
    TargetSnat,
)
from repro.netstack.tcp import FLAG_ACK, TcpSegment
from repro.netstack.udp import UdpDatagram

ips = st.integers(min_value=0x0A000001, max_value=0x0AFFFFFE).map(IPv4Address)
ports = st.integers(min_value=1, max_value=65535)


def tcp_packet(src, sport, dst, dport, payload=b"", seq=0):
    seg = TcpSegment(src_port=sport, dst_port=dport, seq=seq, ack=0,
                     flags=FLAG_ACK, payload=payload)
    return IPv4Packet(src=src, dst=dst, proto=PROTO_TCP,
                      payload=seg.to_bytes(src, dst))


def udp_packet(src, sport, dst, dport, payload=b"x"):
    d = UdpDatagram(src_port=sport, dst_port=dport, payload=payload)
    return IPv4Packet(src=src, dst=dst, proto=PROTO_UDP,
                      payload=d.to_bytes(src, dst))


@settings(max_examples=60, deadline=None)
@given(src=ips, sport=ports, dst=ips, dport=ports,
       payload=st.binary(max_size=100))
def test_dnat_then_reply_restores_original_tuple(src, sport, dst, dport, payload):
    """DNAT forward + reply reverse translation composes to identity
    from the client's point of view: the reply appears to come exactly
    from where the client sent."""
    nat_ip, nat_port = IPv4Address("10.99.0.1"), 10101
    nf = Netfilter()
    nf.append(Chain.PREROUTING, Rule(target=TargetDnat(nat_ip, nat_port),
                                     proto="tcp", dport=dport,
                                     dst=Network(str(dst), 32)))
    fwd = tcp_packet(src, sport, dst, dport, payload)
    _, translated, natted = nf.process(Chain.PREROUTING, fwd, 0.0)
    assert natted
    tseg = TcpSegment.from_bytes(translated.payload, translated.src, translated.dst)
    assert translated.dst == nat_ip and tseg.dst_port == nat_port
    assert translated.src == src and tseg.src_port == sport  # src untouched
    assert tseg.payload == payload                           # payload untouched

    reply = tcp_packet(nat_ip, nat_port, src, sport, b"resp")
    _, untranslated, natted2 = nf.process(Chain.OUTPUT, reply, 1.0)
    assert natted2
    rseg = TcpSegment.from_bytes(untranslated.payload, untranslated.src,
                                 untranslated.dst)
    assert untranslated.src == dst and rseg.src_port == dport
    assert untranslated.dst == src and rseg.dst_port == sport


@settings(max_examples=60, deadline=None)
@given(src=ips, sport=ports, dst=ips, dport=ports)
def test_snat_is_sticky_and_reversible(src, sport, dst, dport):
    """Every packet of a flow gets the same SNAT port, and the reply
    maps back to the original endpoint."""
    nat_ip = IPv4Address("203.0.113.1")
    nf = Netfilter()
    nf.append(Chain.POSTROUTING, Rule(target=TargetSnat(nat_ip)))
    outs = []
    for seq in range(3):
        pkt = udp_packet(src, sport, dst, dport, payload=bytes([seq]))
        _, translated, _ = nf.process(Chain.POSTROUTING, pkt, float(seq))
        d = UdpDatagram.from_bytes(translated.payload, translated.src,
                                   translated.dst, verify_checksum=False)
        outs.append((translated.src, d.src_port))
    assert len(set(outs)) == 1          # sticky
    assert outs[0][0] == nat_ip
    nat_port = outs[0][1]
    reply = udp_packet(dst, dport, nat_ip, nat_port)
    _, back, _ = nf.process(Chain.PREROUTING, reply, 5.0)
    d = UdpDatagram.from_bytes(back.payload, back.src, back.dst,
                               verify_checksum=False)
    assert back.dst == src and d.dst_port == sport


@settings(max_examples=40, deadline=None)
@given(src=ips, sport=ports, dst=ips, dport=ports,
       payload=st.binary(max_size=200))
def test_nat_rewrites_keep_checksums_valid(src, sport, dst, dport, payload):
    """Every NAT rewrite re-serializes with a checksum the destination
    stack will accept (parse with verification enabled)."""
    nf = Netfilter()
    nf.append(Chain.PREROUTING, Rule(
        target=TargetDnat(IPv4Address("10.99.0.2"), 8080), proto="tcp"))
    pkt = tcp_packet(src, sport, dst, dport, payload)
    _, out, _ = nf.process(Chain.PREROUTING, pkt, 0.0)
    # Raises on checksum failure:
    TcpSegment.from_bytes(out.payload, out.src, out.dst, verify_checksum=True)
    IPv4Packet.from_bytes(out.to_bytes())


@settings(max_examples=40, deadline=None)
@given(src=ips, sport=ports, other_sport=ports)
def test_distinct_flows_get_distinct_snat_ports(src, sport, other_sport):
    if sport == other_sport:
        other_sport = (other_sport % 65535) + 1
    dst = IPv4Address("10.0.9.9")
    nat_ip = IPv4Address("203.0.113.1")
    nf = Netfilter()
    nf.append(Chain.POSTROUTING, Rule(target=TargetSnat(nat_ip)))
    _, a, _ = nf.process(Chain.POSTROUTING, udp_packet(src, sport, dst, 53), 0.0)
    _, b, _ = nf.process(Chain.POSTROUTING, udp_packet(src, other_sport, dst, 53), 0.0)
    pa = UdpDatagram.from_bytes(a.payload, a.src, a.dst, verify_checksum=False)
    pb = UdpDatagram.from_bytes(b.payload, b.src, b.dst, verify_checksum=False)
    assert pa.src_port != pb.src_port
