"""IPv4Address and Network."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netstack.addressing import IPv4Address, Network


def test_parse_forms():
    a = IPv4Address("10.0.0.1")
    assert int(a) == 0x0A000001
    assert IPv4Address(b"\x0a\x00\x00\x01") == a
    assert IPv4Address(0x0A000001) == a
    assert IPv4Address(a) == a
    assert str(a) == "10.0.0.1"


def test_parse_rejects_malformed():
    for bad in ("10.0.0", "10.0.0.256", "a.b.c.d", "1.2.3.4.5", ""):
        with pytest.raises(ValueError):
            IPv4Address(bad)
    with pytest.raises(ValueError):
        IPv4Address(b"\x00" * 3)
    with pytest.raises(ValueError):
        IPv4Address(-1)
    with pytest.raises(TypeError):
        IPv4Address(1.5)


def test_equality_with_strings_and_hash():
    a = IPv4Address("192.168.1.1")
    assert a == "192.168.1.1"
    assert a != "192.168.1.2"
    assert len({IPv4Address("1.1.1.1"), IPv4Address("1.1.1.1")}) == 1


def test_ordering():
    assert IPv4Address("10.0.0.1") < IPv4Address("10.0.0.2")
    assert max(IPv4Address("1.0.0.0"), IPv4Address("2.0.0.0")) == "2.0.0.0"


def test_special_addresses():
    assert IPv4Address("255.255.255.255").is_broadcast
    assert IPv4Address("224.0.0.1").is_multicast
    assert IPv4Address("0.0.0.0").is_unspecified
    assert not IPv4Address("10.0.0.1").is_broadcast


def test_immutability():
    a = IPv4Address("10.0.0.1")
    with pytest.raises(AttributeError):
        a._value = 5


@given(st.integers(min_value=0, max_value=0xFFFFFFFF))
def test_int_roundtrip(v):
    assert int(IPv4Address(v)) == v
    assert IPv4Address(str(IPv4Address(v))) == IPv4Address(v)


def test_network_basics():
    net = Network("10.0.0.0/24")
    assert str(net.netmask) == "255.255.255.0"
    assert str(net.broadcast) == "10.0.0.255"
    assert IPv4Address("10.0.0.42") in net
    assert IPv4Address("10.0.1.1") not in net
    assert "10.0.0.1" in net


def test_network_normalizes_host_bits():
    assert Network("10.0.0.77/24").address == "10.0.0.0"


def test_network_prefix_edges():
    assert IPv4Address("1.2.3.4") in Network("0.0.0.0/0")
    host = Network("10.0.0.5/32")
    assert IPv4Address("10.0.0.5") in host
    assert IPv4Address("10.0.0.6") not in host


def test_network_invalid():
    with pytest.raises(ValueError):
        Network("10.0.0.0")
    with pytest.raises(ValueError):
        Network("10.0.0.0/33")


def test_network_hosts_iteration():
    hosts = list(Network("192.168.0.0/29").hosts())
    assert len(hosts) == 6
    assert hosts[0] == "192.168.0.1"
    assert hosts[-1] == "192.168.0.6"


def test_from_ip_netmask():
    net = Network.from_ip_netmask("10.0.0.23", "255.255.255.0")
    assert net == Network("10.0.0.0/24")
    with pytest.raises(ValueError):
        Network.from_ip_netmask("10.0.0.1", "255.0.255.0")


def test_network_equality_hash():
    assert Network("10.0.0.0/24") == Network("10.0.0.99/24")
    assert len({Network("10.0.0.0/24"), Network("10.0.0.0/24")}) == 1
    assert Network("10.0.0.0/24") != Network("10.0.0.0/25")
