"""Netfilter: rule matching, DNAT/SNAT/REDIRECT, conntrack symmetry."""

import pytest

from repro.netstack.addressing import IPv4Address, Network
from repro.netstack.ipv4 import PROTO_ICMP, PROTO_TCP, PROTO_UDP, IPv4Packet
from repro.netstack.netfilter import (
    Chain,
    Netfilter,
    Rule,
    TargetAccept,
    TargetDnat,
    TargetDrop,
    TargetRedirect,
    TargetSnat,
    Verdict,
)
from repro.netstack.tcp import FLAG_SYN, TcpSegment
from repro.netstack.udp import UdpDatagram
from repro.sim.errors import ConfigurationError

VICTIM = IPv4Address("10.0.0.23")
TARGET = IPv4Address("198.51.100.80")
GATEWAY = IPv4Address("10.0.0.24")


def tcp_packet(src, sport, dst, dport, payload=b"", flags=FLAG_SYN, seq=1):
    seg = TcpSegment(src_port=sport, dst_port=dport, seq=seq, ack=0,
                     flags=flags, payload=payload)
    return IPv4Packet(src=src, dst=dst, proto=PROTO_TCP,
                      payload=seg.to_bytes(src, dst))


def udp_packet(src, sport, dst, dport, payload=b"x"):
    d = UdpDatagram(src_port=sport, dst_port=dport, payload=payload)
    return IPv4Packet(src=src, dst=dst, proto=PROTO_UDP,
                      payload=d.to_bytes(src, dst))


def test_default_policy_accepts():
    nf = Netfilter()
    verdict, pkt, natted = nf.process(Chain.INPUT, tcp_packet(VICTIM, 1, TARGET, 80), 0.0)
    assert verdict is Verdict.ACCEPT and not natted


def test_drop_rule():
    nf = Netfilter()
    nf.append(Chain.FORWARD, Rule(target=TargetDrop(), proto="tcp", dport=23))
    verdict, _, _ = nf.process(Chain.FORWARD, tcp_packet(VICTIM, 1, TARGET, 23), 0.0)
    assert verdict is Verdict.DROP
    verdict, _, _ = nf.process(Chain.FORWARD, tcp_packet(VICTIM, 1, TARGET, 80), 0.0)
    assert verdict is Verdict.ACCEPT
    assert nf.dropped == 1


def test_accept_rule_short_circuits():
    nf = Netfilter()
    nf.append(Chain.FORWARD, Rule(target=TargetAccept(), proto="tcp"))
    nf.append(Chain.FORWARD, Rule(target=TargetDrop()))
    verdict, _, _ = nf.process(Chain.FORWARD, tcp_packet(VICTIM, 1, TARGET, 80), 0.0)
    assert verdict is Verdict.ACCEPT


def test_match_criteria():
    rule = Rule(target=TargetDrop(), proto="tcp", src=Network("10.0.0.0/24"),
                dst=Network(str(TARGET), 32), dport=80, in_iface="wlan0")
    pkt = tcp_packet(VICTIM, 5555, TARGET, 80)
    assert rule.matches(pkt, in_iface="wlan0", out_iface=None)
    assert not rule.matches(pkt, in_iface="eth1", out_iface=None)
    assert not rule.matches(tcp_packet(VICTIM, 5555, TARGET, 443),
                            in_iface="wlan0", out_iface=None)
    assert not rule.matches(udp_packet(VICTIM, 5555, TARGET, 80),
                            in_iface="wlan0", out_iface=None)


def test_icmp_has_no_ports():
    rule = Rule(target=TargetDrop(), dport=80)
    pkt = IPv4Packet(src=VICTIM, dst=TARGET, proto=PROTO_ICMP, payload=b"\x08\x00")
    assert not rule.matches(pkt, in_iface=None, out_iface=None)


def test_paper_dnat_rule_and_reply_unnat():
    """The §4.1 DNAT: victim->Target:80 becomes victim->gateway:10101,
    and the reply is source-rewritten back to Target:80."""
    nf = Netfilter()
    nf.append(Chain.PREROUTING, Rule(
        target=TargetDnat(GATEWAY, 10101), proto="tcp",
        dst=Network(str(TARGET), 32), dport=80))
    fwd = tcp_packet(VICTIM, 4321, TARGET, 80)
    verdict, translated, natted = nf.process(Chain.PREROUTING, fwd, 0.0)
    assert natted
    assert translated.dst == GATEWAY
    seg = TcpSegment.from_bytes(translated.payload, translated.src, translated.dst)
    assert seg.dst_port == 10101  # checksum valid for new addresses

    # Reply direction: netsed's response from gateway:10101 to the victim.
    reply = tcp_packet(GATEWAY, 10101, VICTIM, 4321)
    verdict, untranslated, natted = nf.process(Chain.OUTPUT, reply, 1.0)
    assert natted
    assert untranslated.src == TARGET
    seg = TcpSegment.from_bytes(untranslated.payload, untranslated.src, untranslated.dst)
    assert seg.src_port == 80


def test_established_flow_bypasses_rules():
    nf = Netfilter()
    nf.append(Chain.PREROUTING, Rule(
        target=TargetDnat(GATEWAY, 10101), proto="tcp",
        dst=Network(str(TARGET), 32), dport=80))
    first = tcp_packet(VICTIM, 4321, TARGET, 80)
    nf.process(Chain.PREROUTING, first, 0.0)
    nf.flush(Chain.PREROUTING)  # rules gone, conntrack remains
    second = tcp_packet(VICTIM, 4321, TARGET, 80, seq=2)
    _, translated, natted = nf.process(Chain.PREROUTING, second, 1.0)
    assert natted and translated.dst == GATEWAY


def test_nat_false_skips_translation():
    nf = Netfilter()
    nf.append(Chain.PREROUTING, Rule(
        target=TargetDnat(GATEWAY, 10101), proto="tcp", dport=80))
    pkt = tcp_packet(VICTIM, 1, TARGET, 80)
    _, out, natted = nf.process(Chain.PREROUTING, pkt, 0.0, nat=False)
    assert not natted and out.dst == TARGET


def test_snat_allocates_ports_and_reverses():
    nf = Netfilter()
    nat_ip = IPv4Address("203.0.113.7")
    nf.append(Chain.POSTROUTING, Rule(target=TargetSnat(nat_ip), out_iface="eth0"))
    out1 = tcp_packet(VICTIM, 4000, TARGET, 80)
    _, t1, _ = nf.process(Chain.POSTROUTING, out1, 0.0, out_iface="eth0")
    assert t1.src == nat_ip
    seg1 = TcpSegment.from_bytes(t1.payload, t1.src, t1.dst)
    # Second flow gets a different NAT port.
    out2 = tcp_packet(IPv4Address("10.0.0.24"), 4000, TARGET, 80)
    _, t2, _ = nf.process(Chain.POSTROUTING, out2, 0.0, out_iface="eth0")
    seg2 = TcpSegment.from_bytes(t2.payload, t2.src, t2.dst)
    assert seg1.src_port != seg2.src_port
    # Reply to flow 1 maps back to the victim.
    reply = tcp_packet(TARGET, 80, nat_ip, seg1.src_port)
    _, back, _ = nf.process(Chain.PREROUTING, reply, 1.0)
    assert back.dst == VICTIM
    back_seg = TcpSegment.from_bytes(back.payload, back.src, back.dst)
    assert back_seg.dst_port == 4000


def test_redirect_needs_local_ip():
    nf = Netfilter()
    nf.append(Chain.PREROUTING, Rule(target=TargetRedirect(8080), proto="tcp", dport=80))
    with pytest.raises(ConfigurationError):
        nf.process(Chain.PREROUTING, tcp_packet(VICTIM, 1, TARGET, 80), 0.0)
    _, out, _ = nf.process(Chain.PREROUTING, tcp_packet(VICTIM, 2, TARGET, 80),
                           0.0, local_ip=GATEWAY)
    assert out.dst == GATEWAY


def test_chain_restrictions():
    nf = Netfilter()
    with pytest.raises(ConfigurationError):
        nf.append(Chain.FORWARD, Rule(target=TargetSnat(GATEWAY)))
    with pytest.raises(ConfigurationError):
        nf.append(Chain.POSTROUTING, Rule(target=TargetDnat(GATEWAY)))


def test_udp_dnat():
    nf = Netfilter()
    nf.append(Chain.PREROUTING, Rule(
        target=TargetDnat(GATEWAY, 5353), proto="udp", dport=53))
    _, out, _ = nf.process(Chain.PREROUTING, udp_packet(VICTIM, 9000, TARGET, 53), 0.0)
    d = UdpDatagram.from_bytes(out.payload, out.src, out.dst)
    assert out.dst == GATEWAY and d.dst_port == 5353


def test_conntrack_expiry():
    nf = Netfilter()
    nf.append(Chain.PREROUTING, Rule(
        target=TargetDnat(GATEWAY, 10101), proto="tcp", dport=80))
    nf.process(Chain.PREROUTING, tcp_packet(VICTIM, 4321, TARGET, 80), 0.0)
    nf.flush()
    # After TTL, the flow is forgotten and no longer translated.
    late = tcp_packet(VICTIM, 4321, TARGET, 80, seq=9)
    _, out, natted = nf.process(Chain.PREROUTING, late, 1000.0)
    assert not natted and out.dst == TARGET


def test_list_rules_renders():
    nf = Netfilter()
    nf.append(Chain.PREROUTING, Rule(
        target=TargetDnat(GATEWAY, 10101), proto="tcp",
        dst=Network(str(TARGET), 32), dport=80))
    listing = nf.list_rules()
    assert "PREROUTING" in listing and "DNAT" in listing and "10101" in listing
