"""Longest-prefix routing, including Appendix A's exact route set."""

from repro.netstack.addressing import IPv4Address, Network
from repro.netstack.routing import Route, RoutingTable


def test_longest_prefix_wins():
    rt = RoutingTable()
    rt.add_default(IPv4Address("10.0.0.1"), "eth0")
    rt.add_connected(Network("10.0.0.0/24"), "eth0")
    rt.add_host(IPv4Address("10.0.0.23"), "wlan0")
    assert rt.lookup(IPv4Address("10.0.0.23")).interface == "wlan0"
    assert rt.lookup(IPv4Address("10.0.0.99")).interface == "eth0"
    assert rt.lookup(IPv4Address("10.0.0.99")).gateway is None  # connected
    ext = rt.lookup(IPv4Address("8.8.8.8"))
    assert ext.gateway == IPv4Address("10.0.0.1")


def test_no_route_returns_none():
    rt = RoutingTable()
    rt.add_connected(Network("10.0.0.0/24"), "eth0")
    assert rt.lookup(IPv4Address("192.168.1.1")) is None


def test_metric_breaks_equal_prefix_ties():
    rt = RoutingTable()
    rt.add(Route(network=Network("10.0.0.0/24"), interface="slow", metric=10))
    rt.add(Route(network=Network("10.0.0.0/24"), interface="fast", metric=1))
    assert rt.lookup(IPv4Address("10.0.0.5")).interface == "fast"


def test_remove():
    rt = RoutingTable()
    rt.add_default(IPv4Address("10.0.0.1"), "eth0")
    assert rt.remove(Network("0.0.0.0", 0)) is True
    assert rt.lookup(IPv4Address("8.8.8.8")) is None
    assert rt.remove(Network("0.0.0.0", 0)) is False


def test_appendix_a_route_set():
    """The exact routes the paper's bridge script installs."""
    rt = RoutingTable()
    rt.add_host(IPv4Address("10.0.0.23"), "wlan0")   # the victim
    rt.add_host(IPv4Address("10.0.0.1"), "eth1")     # the gateway
    rt.add_default(IPv4Address("10.0.0.1"), "eth1")
    # Victim traffic exits the AP side; everything else goes upstream.
    assert rt.lookup(IPv4Address("10.0.0.23")).interface == "wlan0"
    assert rt.lookup(IPv4Address("10.0.0.1")).interface == "eth1"
    assert rt.lookup(IPv4Address("198.51.100.80")).interface == "eth1"


def test_str_and_len():
    rt = RoutingTable()
    assert "empty" in str(rt)
    rt.add_default(IPv4Address("1.1.1.1"), "e0")
    assert len(rt) == 1
    assert "via 1.1.1.1" in str(rt)
