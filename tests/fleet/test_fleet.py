"""The fleet campaign engine: determinism, fault containment, reduction.

Trial callables live at module level so they survive pickling under any
multiprocessing start method (fork inherits them anyway; spawn needs
the names importable).
"""

import os
import signal
import time
from functools import partial

import pytest

from repro.core.campaign import TrialStats, run_trials
from repro.fleet import (CampaignError, TrialOutcome, campaign_stats,
                         merge_all, run_campaign,
                         FAIL_CRASH, FAIL_ERROR, FAIL_TIMEOUT)
from repro.sim.rng import SimRandom
from repro.sim.trace import Trace, TraceRecord


def rng_trial(seed):
    """Cheap deterministic trial: value depends only on the seed."""
    rng = SimRandom(seed)
    return float(rng.randint(0, 1000)) / 1000.0


def failing_trial(seed):
    if seed == 1005:
        raise ValueError("seed 1005 always fails")
    return 1.0


def crashing_trial(seed):
    if seed == 1003:
        os._exit(17)  # hard death: no exception, no cleanup
    return 0.5


def sleepy_trial(seed):
    if seed == 1002:
        time.sleep(60)  # interrupted by the worker's SIGALRM
    return 2.0


def signal_proof_hang_trial(seed):
    """Hang that the worker-side alarm cannot break (SIGALRM blocked)."""
    if seed == 1001:
        signal.pthread_sigmask(signal.SIG_BLOCK, {signal.SIGALRM})
        time.sleep(60)
    return 1.0


def flaky_trial(seed, marker_dir=None):
    """Fails the first attempt for each seed, succeeds on retry."""
    marker = os.path.join(marker_dir, f"{seed}.attempted")
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        raise RuntimeError("first attempt fails")
    return 3.0


def traced_trial(seed):
    trace = Trace()
    trace.emit("fleet.test", "trial", seed=seed)
    return TrialOutcome(value=float(seed), trace=trace)


def metric_trial(seed):
    """Records seed-dependent metrics through the ambient obs context."""
    from repro.obs.runtime import obs_metrics
    m = obs_metrics()
    if m is not None:
        m.incr("fleet.test.calls")
        m.incr("fleet.test.seed_sum", seed)
        m.set_gauge("fleet.test.last_seed", seed)
        m.add_time("fleet.test.duration", float(seed) / 1000.0)
    return float(seed)


# ----------------------------------------------------------------------
# determinism: worker count must not matter
# ----------------------------------------------------------------------

def test_parallel_aggregate_bit_identical_to_serial():
    serial = run_campaign(40, rng_trial, workers=1)
    parallel = run_campaign(40, rng_trial, workers=4)
    assert serial.stats.values == parallel.stats.values  # bit-for-bit
    assert serial.per_seed == parallel.per_seed
    assert serial.failures == parallel.failures == []


def test_run_trials_workers_keyword_matches_serial():
    serial = run_trials(40, rng_trial)
    parallel = run_trials(40, rng_trial, workers=4)
    assert serial.values == parallel.values
    assert serial.mean == parallel.mean
    assert serial.stdev == parallel.stdev


def test_parallel_runs_are_repeatable():
    first = run_campaign(24, rng_trial, workers=3)
    second = run_campaign(24, rng_trial, workers=3)
    assert first.stats.values == second.stats.values


# ----------------------------------------------------------------------
# fault containment: failures are data, not aborts
# ----------------------------------------------------------------------

@pytest.mark.parametrize("workers", [1, 3])
def test_raising_trial_recorded_not_fatal(workers):
    result = run_campaign(8, failing_trial, workers=workers)
    assert result.ok == 7
    assert [f.seed for f in result.failures] == [1005]
    failure = result.failures[0]
    assert failure.kind == FAIL_ERROR
    assert "seed 1005 always fails" in failure.message
    assert failure.attempts == 2  # initial try + one retry
    assert result.stats.n == 7  # failed trial contributes nothing


def test_timeout_enforced_by_worker_alarm():
    started = time.monotonic()
    result = run_campaign(6, sleepy_trial, workers=2, timeout=0.5)
    assert time.monotonic() - started < 30  # nowhere near the 60s sleep
    assert result.ok == 5
    assert [(f.seed, f.kind) for f in result.failures] == [(1002, FAIL_TIMEOUT)]


def test_timeout_enforced_by_parent_watchdog():
    """A trial hung with SIGALRM blocked is killed from the outside."""
    result = run_campaign(4, signal_proof_hang_trial, workers=2,
                          timeout=0.5, retries=0)
    assert result.ok == 3
    assert [(f.seed, f.kind) for f in result.failures] == [(1001, FAIL_TIMEOUT)]


def test_dead_worker_detected_and_replaced():
    result = run_campaign(6, crashing_trial, workers=2)
    assert result.ok == 5  # the fleet was restaffed and finished the sweep
    assert [(f.seed, f.kind) for f in result.failures] == [(1003, FAIL_CRASH)]
    assert result.failures[0].attempts == 2


def test_serial_timeout_path():
    result = run_campaign(4, sleepy_trial, workers=1, timeout=0.5, retries=0)
    assert result.ok == 3
    assert [(f.seed, f.kind) for f in result.failures] == [(1002, FAIL_TIMEOUT)]


@pytest.mark.parametrize("workers", [1, 2])
def test_retry_rescues_transient_failures(tmp_path, workers):
    trial = partial(flaky_trial, marker_dir=str(tmp_path))
    result = run_campaign(5, trial, workers=workers, retries=1)
    assert result.failures == []
    assert result.ok == 5
    assert result.stats.values == [3.0] * 5
    # every seed really did fail once before succeeding
    assert len(list(tmp_path.glob("*.attempted"))) == 5


def test_run_trials_raises_campaign_error_on_persistent_failure():
    with pytest.raises(CampaignError) as excinfo:
        run_trials(8, failing_trial, workers=2)
    assert [f.seed for f in excinfo.value.failures] == [1005]


# ----------------------------------------------------------------------
# trace shipping
# ----------------------------------------------------------------------

@pytest.mark.parametrize("workers", [1, 2])
def test_sampled_traces_ship_to_parent(workers):
    result = run_campaign(4, traced_trial, workers=workers, sample_traces=2)
    assert sorted(result.traces) == [1000, 1001]
    for seed, dicts in result.traces.items():
        records = [TraceRecord.from_dict(d) for d in dicts]
        assert [r.category for r in records] == ["fleet.test"]
        assert records[0].detail == {"seed": seed}
    # unsampled seeds still contribute values
    assert result.stats.values == [1000.0, 1001.0, 1002.0, 1003.0]


# ----------------------------------------------------------------------
# metrics shipping
# ----------------------------------------------------------------------

@pytest.mark.parametrize("workers", [1, 2])
def test_collect_metrics_ships_per_trial_snapshots(workers):
    result = run_campaign(4, metric_trial, workers=workers,
                          collect_metrics=True)
    assert sorted(result.metrics) == [1000, 1001, 1002, 1003]
    for seed, snap in result.metrics.items():
        assert snap["fleet.test.calls"]["value"] == 1
        assert snap["fleet.test.seed_sum"]["value"] == seed
        assert snap["fleet.test.last_seed"]["value"] == seed
    # values are unchanged by collection
    assert result.stats.values == [1000.0, 1001.0, 1002.0, 1003.0]


def test_merged_metrics_obey_seed_order_gauge_law():
    result = run_campaign(3, metric_trial, workers=2, collect_metrics=True)
    merged = result.merged_metrics
    assert merged.value("fleet.test.calls") == 3
    assert merged.value("fleet.test.seed_sum") == 1000 + 1001 + 1002
    # gauge: the last shard in *seed* order wins, not completion order
    gauge = merged.get("fleet.test.last_seed")
    assert gauge.value == 1002
    assert (gauge.min, gauge.max) == (1000, 1002)
    timer = merged.get("fleet.test.duration")
    assert timer.count == 3


def test_collect_metrics_off_by_default():
    result = run_campaign(2, metric_trial, workers=1)
    assert result.metrics == {}
    assert result.merged_metrics is None
    assert result.to_json_dict()["metrics"] is None


def test_collect_metrics_wraps_trial_outcome_trials():
    # A trial already returning TrialOutcome keeps its trace shipping
    # and gains a metrics snapshot on the same outcome.
    result = run_campaign(2, traced_trial, workers=1, sample_traces=1,
                          collect_metrics=True)
    assert sorted(result.traces) == [1000]
    assert sorted(result.metrics) == [1000, 1001]
    assert result.stats.values == [1000.0, 1001.0]


def lineage_trial(seed):
    """Transmits `seed % 3 + 1` frames through an ambient flight recorder."""
    from repro.obs.lineage import flight_recorder
    rec = flight_recorder()
    if rec is not None:
        for i in range(seed % 3 + 1):
            tid = rec.begin("dot11", f"host{seed}", float(i))
            rec.hop("radio", "tx", trace_id=tid, host=f"host{seed}")
            rec.attach_raw(tid, bytes(2000))
    return float(seed)


@pytest.mark.parametrize("workers", [1, 2])
def test_flight_recorder_ships_truncated_lineage_samples(workers):
    result = run_campaign(4, lineage_trial, seed_base=1000, workers=workers,
                          flight_recorder=2)
    assert result.stats.values == [1000.0, 1001.0, 1002.0, 1003.0]
    assert sorted(result.lineages) == [1000, 1001, 1002, 1003]
    # ring capacity truncates worker-side: seed 1001 made 3 frames, 2 ship
    assert [len(result.lineages[s]) for s in sorted(result.lineages)] == \
        [2, 2, 1, 2]
    # raw bytes are clipped for IPC
    for sample in result.lineages.values():
        for ln in sample:
            assert len(bytes.fromhex(ln["raw"])) <= 256
    merged = result.merged_lineages
    assert [ln["seed"] for ln in merged] == [1000, 1000, 1001, 1001,
                                             1002, 1003, 1003]


def test_flight_recorder_off_by_default():
    result = run_campaign(2, lineage_trial, workers=1)
    assert result.lineages == {}
    assert result.merged_lineages == []
    assert result.to_json_dict()["lineages"] is None


def test_flight_recorder_composes_with_metrics_and_traces():
    result = run_campaign(2, traced_trial, workers=1, sample_traces=1,
                          collect_metrics=True, flight_recorder=4)
    # all three extras ride the same TrialOutcome
    assert sorted(result.traces) == [1000]
    assert sorted(result.metrics) == [1000, 1001]
    assert sorted(result.lineages) == [1000, 1001]  # empty samples still ship
    assert result.stats.values == [1000.0, 1001.0]


# ----------------------------------------------------------------------
# reduction helpers
# ----------------------------------------------------------------------

def test_campaign_stats_reduces_in_seed_order():
    per_index = {i: float(i) for i in range(10)}
    for chunk in (1, 3, 10, 64):
        stats = campaign_stats(per_index, 10, chunk=chunk)
        assert stats.values == [float(i) for i in range(10)]


def test_campaign_stats_skips_failed_indices():
    per_index = {0: 1.0, 2: 3.0}
    stats = campaign_stats(per_index, 3)
    assert stats.values == [1.0, 3.0]


def test_campaign_stats_none_for_payload_sweeps():
    assert campaign_stats({0: {"rows": []}}, 1) is None


def test_merge_all_chains_accumulators():
    parts = []
    for lo in (0, 5):
        part = TrialStats()
        for v in range(lo, lo + 5):
            part.add(float(v))
        parts.append(part)
    total = merge_all(TrialStats(), *parts)
    assert total.values == [float(v) for v in range(10)]


def test_empty_campaign():
    result = run_campaign(0, rng_trial, workers=3)
    assert result.ok == 0
    assert result.failures == []
    assert result.stats.n == 0


# ----------------------------------------------------------------------
# interim snapshot channel (fleet_publish -> on_snapshot)
# ----------------------------------------------------------------------

def publishing_trial(seed):
    """Publishes three cumulative snapshots through the ambient channel."""
    from repro.fleet import fleet_publish
    from repro.obs.runtime import obs_metrics

    m = obs_metrics()
    for step in range(3):
        if m is not None:
            m.incr("fleet.test.progress")
        fleet_publish({"seed": seed, "step": step,
                       "metrics": m.snapshot() if m is not None else {}})
    return float(seed)


def test_fleet_publish_is_noop_without_publisher():
    # Direct call, no campaign: publishing must be invisible.
    assert publishing_trial(7) == 7.0


def test_publishing_context_nests_and_restores():
    from repro.fleet import fleet_publish, publishing

    outer, inner = [], []
    with publishing(outer.append):
        fleet_publish({"at": "outer"})
        with publishing(inner.append):
            fleet_publish({"at": "inner"})
        fleet_publish({"at": "outer-again"})
    fleet_publish({"at": "nowhere"})
    assert [p["at"] for p in outer] == ["outer", "outer-again"]
    assert [p["at"] for p in inner] == ["inner"]


@pytest.mark.parametrize("workers", [1, 2])
def test_on_snapshot_delivers_per_trial_publish_order(workers):
    seen = []
    result = run_campaign(3, publishing_trial, workers=workers,
                          on_snapshot=lambda i, p: seen.append((i, p)))
    assert result.stats.values == [1000.0, 1001.0, 1002.0]
    by_index = {}
    for index, payload in seen:
        by_index.setdefault(index, []).append(payload)
    assert sorted(by_index) == [0, 1, 2]
    for index, payloads in by_index.items():
        assert [p["step"] for p in payloads] == [0, 1, 2]  # per-trial order
        assert all(p["seed"] == 1000 + index for p in payloads)


def test_on_snapshot_composes_with_collect_metrics():
    last = {}
    result = run_campaign(
        2, publishing_trial, workers=1, collect_metrics=True,
        on_snapshot=lambda i, p: last.__setitem__(i, p))
    for index in (0, 1):
        # the trial's published registry view is live and cumulative
        assert last[index]["metrics"]["fleet.test.progress"]["value"] == 3
        assert result.metrics[1000 + index]["fleet.test.progress"]["value"] == 3
    # shipping snapshots never changes results
    assert result.stats.values == [1000.0, 1001.0]


@pytest.mark.parametrize("workers", [1, 2])
def test_raising_listener_contained_not_fatal(workers):
    calls = []

    def bad_listener(index, payload):
        calls.append(index)
        raise RuntimeError("listener broke")

    result = run_campaign(3, publishing_trial, workers=workers,
                          on_snapshot=bad_listener)
    assert result.stats.values == [1000.0, 1001.0, 1002.0]  # sweep survived
    assert len(calls) == 1  # switched off after the first failure


def test_snapshots_without_listener_are_discarded():
    result = run_campaign(2, publishing_trial, workers=2)
    assert result.stats.values == [1000.0, 1001.0]


# ----------------------------------------------------------------------
# CampaignResult.to_json_dict round-trip
# ----------------------------------------------------------------------

def rich_trial(seed):
    """Metrics + trace in one trial, for payload round-trips."""
    from repro.obs.runtime import obs_metrics

    m = obs_metrics()
    if m is not None:
        m.incr("fleet.test.calls")
        m.observe("fleet.test.hist", float(seed % 7), lo=0.0, hi=8.0, bins=4)
    trace = Trace()
    trace.emit("fleet.test", "trial", seed=seed)
    return TrialOutcome(value=float(seed), trace=trace)


def test_to_json_dict_round_trips_through_json():
    import json as _json

    result = run_campaign(3, rich_trial, workers=2, sample_traces=2,
                          collect_metrics=True, flight_recorder=4)
    doc = result.to_json_dict()
    # the document survives an encode/decode cycle unchanged
    rehydrated = _json.loads(_json.dumps(doc))
    assert rehydrated == _json.loads(_json.dumps(doc))
    assert doc["trials"] == 3 and doc["ok"] == 3
    assert [r["seed"] for r in doc["results"]] == [1000, 1001, 1002]
    assert sorted(doc["traces"]) == ["1000", "1001"]
    # merged metrics payload: counters add across the three seeds
    assert doc["metrics"]["fleet.test.calls"]["value"] == 3
    from repro.obs.metrics import MetricsRegistry
    merged = MetricsRegistry.from_snapshot(doc["metrics"])
    assert merged.get("fleet.test.hist").total == 3


def test_to_json_dict_is_seed_order_stable_across_worker_counts():
    import json as _json

    docs = []
    for workers in (1, 2, 3):
        result = run_campaign(4, rich_trial, workers=workers,
                              sample_traces=1, collect_metrics=True)
        doc = result.to_json_dict()
        doc.pop("elapsed_s")          # wall clock varies
        doc.pop("workers")            # the knob under test
        docs.append(_json.dumps(doc, sort_keys=True))
    assert docs[0] == docs[1] == docs[2]


def test_to_json_dict_lineages_payload():
    result = run_campaign(2, lineage_trial, workers=1, flight_recorder=8)
    doc = result.to_json_dict()
    assert doc["lineages"], "flight recorder shipped nothing"
    seeds = {ln["seed"] for ln in doc["lineages"]}
    assert seeds == {1000, 1001}
    # seed annotation + seed-order concatenation
    assert [ln["seed"] for ln in doc["lineages"]] \
        == sorted(ln["seed"] for ln in doc["lineages"])
