"""E-WIDS — streaming detector bank vs the paper's rogue-AP worlds.

Expected shape:

* naive rogue world: the first alert lands *before* the netsed rewrite
  (detection beats compromise), and every beacon-visible detector fires;
* evasive rogue world: seqctl mirroring + cadence matching silence the
  gap and jitter analyses, but the fingerprint and multi-channel
  detectors still fire — a second radio on a second channel is
  physically unhideable;
* benign world: zero alerts at every threshold (zero false positives).
"""

from conftest import record_rows, run_once

from repro.wids.experiment import exp_wids_eval


def test_wids_eval(benchmark):
    result = run_once(benchmark, exp_wids_eval, seed=1)
    rows = result["scorecard"]["rows"]
    record_rows("E-WIDS: detector bank confusion cells over threshold sweep",
               rows, area="wids")

    # Detection beats compromise on the Fig. 1/Fig. 2 world.
    assert result["alert_before_rewrite"], result["worlds"]["naive"]
    # Zero-FP acceptance bar on the benign office.
    assert result["benign_false_positives"] == 0
    for row in rows:
        assert row["fp"] == 0, row
    # The arms race: evasion silences the sequence/jitter analyses ...
    assert result["evasion"]["seqctl_evaded"]
    assert result["evasion"]["jitter_evaded"]
    # ... but the second radio on a second channel cannot hide.
    assert result["evasion"]["unhideable"] == ["fingerprint", "multichannel"]
    # Every detector earns its keep in at least one world.
    detectors = {row["detector"] for row in rows}
    for det in detectors:
        assert any(row["tp"] > 0 for row in rows
                   if row["detector"] == det), det
