"""X-PATH / X-CONTAIN — extension experiments (§6 future work, built).

Not reproductions of paper figures: these quantify the two "detecting
and countering" capabilities the paper's §6 promises as future work —
the victim-side first-hop probe and the WIDS containment sensor.
"""

from conftest import record_rows, run_once

from repro.core.experiments import exp_containment, exp_first_hop_detection


def test_first_hop_detection(benchmark):
    result = run_once(benchmark, exp_first_hop_detection, trials=4)
    rows = result["rows"]
    record_rows("X-PATH: TTL=1 first-hop probe", rows, area="extensions")

    rogue = next(r for r in rows if r["network"] == "rogue in path")
    clean = next(r for r in rows if r["network"] == "clean")
    assert rogue["probe_flags_rogue"] == 1.0   # the rogue always names itself
    assert clean["probe_flags_rogue"] == 0.0   # and clean paths never alarm


def test_containment(benchmark):
    result = run_once(benchmark, exp_containment, trials=3)
    rows = result["rows"]
    record_rows("X-CONTAIN: eviction vs containment injection rate", rows, area="extensions")

    baseline = next(r for r in rows if r["containment_rate_hz"] == 0.0)
    assert baseline["eviction_rate"] == 0.0    # captured victims stay captured

    active = sorted((r for r in rows if r["containment_rate_hz"] > 0),
                    key=lambda r: r["containment_rate_hz"])
    assert all(r["eviction_rate"] == 1.0 for r in active)
    times = [r["mean_time_to_evict_s"] for r in active]
    assert times[-1] <= times[0] + 1.0         # faster injection, faster eviction
