"""E-FMS — Airsnort key-recovery economics (§4, refs [3][11]).

Expected shape: recovery probability rises monotonically with collected
weak IVs, reaching ~1 within a few hundred samples per key byte; the
104-bit key needs at least as many samples per byte as the 40-bit key
at every budget (and strictly more total traffic: 13 byte classes vs
5).  Sample counts convert to sniffed-frame estimates via the ~65k
frames/weak-IV rate of a sequential-IV card — reproducing the folklore
"millions of packets" figure.
"""

from conftest import record_rows, run_once

from repro.core.experiments import exp_airsnort_curve


def test_airsnort_key_recovery(benchmark):
    result = run_once(benchmark, exp_airsnort_curve, trials=5)
    rows = result["rows"]
    record_rows("E-FMS: WEP key recovery vs weak-IV budget", rows, area="fms")

    for bits in (40, 104):
        curve = [r for r in rows if r["key_bits"] == bits]
        rates = [r["recovery_rate"] for r in curve]
        # Monotone non-decreasing.
        assert all(a <= b + 1e-9 for a, b in zip(rates, rates[1:])), rates
        assert rates[0] < 1.0, "even tiny budgets sufficed — curve degenerate"
    # 40-bit keys always fall to the classic weak-IV class...
    rates40 = [r["recovery_rate"] for r in rows if r["key_bits"] == 40]
    assert rates40[-1] == 1.0
    # ...104-bit keys mostly do, but classic-FMS-only recovery can miss
    # some keys even with every canonical weak IV (the later KoreK IV
    # classes closed that gap) — require a majority, not certainty.
    rates104 = [r["recovery_rate"] for r in rows if r["key_bits"] == 104]
    assert rates104[-1] >= 0.5
    # 104-bit is never easier at equal per-byte budget.
    for budget in {r["weak_ivs_per_byte"] for r in rows}:
        r40 = next(r for r in rows if r["key_bits"] == 40
                   and r["weak_ivs_per_byte"] == budget)
        r104 = next(r for r in rows if r["key_bits"] == 104
                    and r["weak_ivs_per_byte"] == budget)
        assert r104["recovery_rate"] <= r40["recovery_rate"] + 1e-9
