"""E-8021X — §2.2: "there is no authentication of the network".

Expected shape: the 802.1X supplicant accepts a rogue authenticator
that verifies nothing (EAP-Success is believed from anyone); WPA-PSK
rejects the keyless rogue but accepts any rogue holding the shared
PSK — i.e. any valid client, the paper's residual MITM.
"""

from conftest import record_rows, run_once

from repro.core.experiments import exp_dot1x_wpa_gap


def test_dot1x_wpa_gap(benchmark):
    result = run_once(benchmark, exp_dot1x_wpa_gap, seed=1)
    rows = result["rows"]
    record_rows("E-8021X: what the client ends up trusting", rows, area="dot1x")

    by_net = {r["network"]: r for r in rows}
    assert by_net["802.1X legitimate AP"]["client_accepts_network"]
    # The flaw: the rogue with NO credentials is accepted identically.
    assert by_net["802.1X ROGUE AP (no server)"]["client_accepts_network"]
    assert not by_net["802.1X ROGUE AP (no server)"]["network_authenticated_to_client"]
    # WPA's partial fix and its §2.2 residual hole.
    assert not by_net["WPA-PSK ROGUE, outsider"]["client_accepts_network"]
    assert by_net["WPA-PSK ROGUE, valid client"]["client_accepts_network"]
