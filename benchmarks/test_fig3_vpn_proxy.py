"""FIG3 — Figure 3's VPN through the compromised wireless network.

Expected shape (paper §5): the identical rogue+netsed setup
compromises the bare client but never even *sees* a port-80 flow from
the VPN client; the VPN client's download is clean.
"""

from conftest import record_rows, run_once

from repro.core.experiments import fig3_vpn_proxy


def test_fig3_vpn_proxy(benchmark):
    result = run_once(benchmark, fig3_vpn_proxy, seed=1)
    rows = result["rows"]
    record_rows("FIG3: VPN proxy through the rogue", rows, area="fig3")

    bare = next(r for r in rows if r["arm"] == "bare client")
    vpn = next(r for r in rows if r["arm"] == "VPN client")

    assert bare["on_rogue"] and vpn["on_rogue"]  # both captured at L2
    assert bare["compromised"]
    assert bare["netsed_saw_flows"] >= 1

    assert vpn["vpn_connected"]
    assert not vpn["compromised"]
    assert vpn["netsed_saw_flows"] == 0          # nothing to rewrite
    assert vpn["tunnelled_packets"] > 0
