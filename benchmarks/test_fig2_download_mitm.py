"""FIG2 — Figure 2's software-download MITM detail.

Expected shape (paper §4.1–4.2): against the rogue, the page's link
and MD5SUM are rewritten (2 netsed replacements), the victim's
integrity check PASSES, and the trojan executes; the control arm is
clean; traffic not matching the DNAT rule passes through untouched
("No Rule Match" path of the figure).
"""

from conftest import record_fields, record_rows, run_once

from repro.core.experiments import fig2_download_mitm


def test_fig2_download_mitm(benchmark):
    result = run_once(benchmark, fig2_download_mitm, seed=1)
    rows = result["rows"]
    record_rows("FIG2: the §4.1 download MITM", rows, area="fig2")
    record_fields("fig2", "no_rule_match",
                  passthrough_intact=result["no_rule_match_passthrough"])

    control = next(r for r in rows if "control" in r["arm"])
    attacked = next(r for r in rows if "netsed" in r["arm"])

    assert not control["compromised"]
    assert control["md5_check_passed"] and not control["trojaned"]

    assert attacked["link_rewritten"]
    assert attacked["md5_check_passed"]      # the punchline: the check passes
    assert attacked["trojaned"] and attacked["compromised"]
    assert attacked["netsed_replacements"] >= 2
    assert result["no_rule_match_passthrough"]
