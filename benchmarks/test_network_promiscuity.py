"""E-PROM — §3.2: network promiscuity compounds per-visit risk.

Expected shape: the measured per-hostile-visit compromise probability
is ~1 for an unpatched client (stage 1, full simulation); across K
roamed domains with hostile fraction p the compromise probability
follows 1-(1-p·s)^K — rising in both p and K — while the always-on
VPN client's stays at zero.
"""

from conftest import record_fields, record_rows, run_once

from repro.core.experiments import exp_network_promiscuity


def test_network_promiscuity(benchmark):
    result = run_once(benchmark, exp_network_promiscuity,
                      stage1_seeds=(1, 2, 3), chain_trials=2000)
    rows = result["rows"]
    s = result["per_visit_compromise_prob"]
    record_fields("prom", "stage1_full_sim", per_hostile_visit_compromise=s)
    record_rows("E-PROM: P(compromised before returning home)", rows, area="prom")

    assert s >= 0.9  # the hostile hotspot essentially always lands

    for p in (0.1, 0.3):
        curve = [r for r in rows if r["hostile_fraction"] == p]
        curve.sort(key=lambda r: r["domains_visited"])
        probs = [r["p_compromised_no_vpn"] for r in curve]
        assert all(a <= b + 0.03 for a, b in zip(probs, probs[1:])), probs
        # Matches the analytic expression within sampling error.
        for r in curve:
            assert abs(r["p_compromised_no_vpn"] - r["analytic"]) < 0.05
        # VPN arm flat at zero.
        assert all(r["p_compromised_always_on_vpn"] == 0.0 for r in curve)
    # More hostility, more risk, at fixed K.
    k10 = {r["hostile_fraction"]: r["p_compromised_no_vpn"]
           for r in rows if r["domains_visited"] == 10}
    assert k10[0.3] > k10[0.1]
