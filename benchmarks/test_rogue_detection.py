"""E-DETECT — §2.3: sequence-control monitoring detects the rogue.

Expected shape: the monitor flags the cloned-BSSID rogue (two radios,
two channels, interleaved counters) at every reasonable gap threshold,
with no false positives on the clean network.
"""

from conftest import record_rows, run_once

from repro.core.experiments import exp_rogue_detection


def test_rogue_detection(benchmark):
    result = run_once(benchmark, exp_rogue_detection, trials=4)
    rows = result["rows"]
    record_rows("E-DETECT: seq-ctl monitor TPR/FPR vs gap threshold", rows, area="detect")

    for row in rows:
        assert row["true_positive_rate"] == 1.0, row
        assert row["false_positive_rate"] == 0.0, row
