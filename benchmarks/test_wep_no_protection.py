"""E-WEP — §2.1: WEP "provides no protection what so ever" here.

Expected shape: compromise succeeds identically with WEP off, with WEP
on when the rogue is a valid client, and with WEP on after a passive
FMS key recovery.
"""

from conftest import record_rows, run_once

from repro.core.experiments import exp_wep_no_protection


def test_wep_no_protection(benchmark):
    result = run_once(benchmark, exp_wep_no_protection, seed=1)
    rows = result["rows"]
    record_rows("E-WEP: WEP vs the rogue-AP MITM", rows, area="wep")

    assert len(rows) == 3
    for row in rows:
        assert row["victim_on_rogue"], row
        assert row["compromised"], row
