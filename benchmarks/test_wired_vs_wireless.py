"""E-WIRED — §1.1/§1.2: the same threats, radically different prerequisites.

Expected shape: a switched LAN leaks ~nothing to a bystander; a hub
and the open air leak everything.  DNS spoofing is executable exactly
where the query is visible.  Every wired MITM path requires inside
access; the wireless paths require proximity only.
"""

from conftest import record_rows, run_once

from repro.core.experiments import exp_wired_vs_wireless


def test_wired_vs_wireless(benchmark):
    result = run_once(benchmark, exp_wired_vs_wireless, seed=1)
    record_rows("E-WIRED: passive eavesdropping yield", result["sniffing"], area="wired")
    record_rows("E-WIRED: DNS-spoof executability", result["dns_spoof"], area="wired")
    record_rows("E-WIRED: MITM prerequisites (§1.2 taxonomy)",
               result["mitm_paths"], area="wired")

    by_medium = {r["medium"]: r["overheard"] for r in result["sniffing"]}
    assert by_medium["wired (switch)"] <= 2          # isolation holds
    assert by_medium["wired (hub)"] >= 45            # shared wire leaks
    assert by_medium["wireless (open air)"] >= 45    # the air leaks

    dns = {r["fabric"]: r for r in result["dns_spoof"]}
    assert dns["hub"]["spoof_won"]
    assert not dns["switch"]["spoof_won"]
    assert dns["switch"]["queries_visible"] == 0

    for path in result["mitm_paths"]:
        if path["medium"] == "wireless":
            assert path["steps"] <= 2  # trivially few active steps
