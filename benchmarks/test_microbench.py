"""Microbenchmarks for the hot primitives.

Not paper reproduction — engineering telemetry, following the HPC
guides' measure-first discipline: these are the inner loops every
experiment above spends its time in, so regressions here show up as
wall-clock regressions everywhere.  Run with real repetition (unlike
the single-shot experiment benches):

    pytest benchmarks/test_microbench.py --benchmark-only
"""

import pytest

from conftest import record_fields

from repro.crypto.crc import crc32
from repro.crypto.fms import FmsAttack, weak_iv_for
from repro.crypto.md5 import md5
from repro.crypto.rc4 import RC4, rc4_keystream
from repro.crypto.sha1 import sha1
from repro.crypto.hmac import hmac_sha1
from repro.crypto.wep import WepKey, wep_decrypt, wep_encrypt
from repro.dot11.frames import Dot11Frame, make_beacon, make_data
from repro.dot11.mac import MacAddress
from repro.sim.kernel import Simulator

BLOB_4K = bytes(range(256)) * 16
AP = MacAddress("aa:bb:cc:dd:00:01")
STA = MacAddress("00:02:2d:00:00:07")


def test_rc4_throughput_4k(benchmark):
    benchmark(lambda: RC4(b"benchmark-key").crypt(BLOB_4K))


def test_md5_throughput_4k(benchmark):
    benchmark(md5, BLOB_4K)


def test_sha1_throughput_4k(benchmark):
    benchmark(sha1, BLOB_4K)


def test_crc32_throughput_4k(benchmark):
    benchmark(crc32, BLOB_4K)


def test_hmac_sha1_small_record(benchmark):
    benchmark(hmac_sha1, b"k" * 20, b"m" * 256)


def test_wep_encrypt_decrypt_frame(benchmark):
    key = WepKey.from_passphrase("SECRET")
    payload = b"\xaa" * 256

    def roundtrip():
        wep_decrypt(key, wep_encrypt(key, b"\x01\x02\x03", payload))

    benchmark(roundtrip)


def test_fms_vote_accumulation(benchmark):
    key = WepKey.from_passphrase("SECRET")
    samples = [(weak_iv_for(0, x), rc4_keystream(key.per_packet_key(weak_iv_for(0, x)), 1)[0])
               for x in range(256)]

    def votes():
        attack = FmsAttack(key_length=5)
        attack.extend(samples)
        return attack.votes_for_byte(0, b"")

    benchmark(votes)


def test_frame_serialize_parse(benchmark):
    frame = make_data(STA, AP, AP, b"x" * 200, to_ds=True, seq=100)

    def roundtrip():
        Dot11Frame.from_bytes(frame.to_bytes())

    benchmark(roundtrip)


def test_event_kernel_dispatch_rate(benchmark):
    """Events/second through the simulator core (10k-event batch)."""

    def run_batch():
        sim = Simulator(seed=1)
        sink = []
        for i in range(10_000):
            sim.schedule(i * 1e-6, sink.append, i)
        sim.run()
        return len(sink)

    assert benchmark(run_batch) == 10_000
    record_fields("micro", "event_kernel_dispatch", events=10_000)


def test_radio_medium_delivery_rate(benchmark):
    """Beacon fan-out to 10 receivers, 500 transmissions per round."""
    from repro.radio.medium import Medium, RadioPort
    from repro.radio.propagation import Position

    def run_round():
        sim = Simulator(seed=2)
        medium = Medium(sim)
        tx = RadioPort("tx", Position(0, 0), 1)
        medium.attach(tx)
        received = []
        for i in range(10):
            rx = RadioPort(f"rx{i}", Position(5 + i, 0), 1)
            rx.on_receive = lambda f, r, c: received.append(1)
            medium.attach(rx)
        beacon = make_beacon(AP, "NET", 1)
        for _ in range(500):
            tx.transmit(beacon)
        sim.run()
        return len(received)

    assert benchmark(run_round) == 5000
    record_fields("micro", "radio_medium_delivery", receivers=10,
                  transmissions=500, deliveries=5000)
