"""E-DOWNGRADE / E-CSA / E-PMF — the modern Wi-Fi scenario pack.

Expected shape:

* E-DOWNGRADE: the transition client negotiates SAE+PMF on the benign
  arm, is coerced to WPA2-PSK / open by the rogue's weaker offer, and
  the ``rsn-mismatch`` detector flags both lures with zero benign FPs;
* E-CSA: forged CSA beacons herd the WPA3 victim onto the twin's
  channel and its data link goes dark — ``unexpected-CSA`` flags it;
* E-PMF: the §4 deauth flood bounces the client repeatedly with PMF
  off and is cryptographically discarded with PMF on — the original
  association and its traffic survive the entire flood.
"""

from conftest import record_rows, run_once

from repro.rsn.experiment import exp_csa_lure, exp_downgrade, exp_pmf_flood


def test_downgrade(benchmark):
    result = run_once(benchmark, exp_downgrade, seed=1)
    rows = result["scorecard"]["rows"]
    record_rows("E-DOWNGRADE: transition-mode coercion scorecard",
                rows, area="rsn")
    assert result["benign_negotiates_sae"], result["worlds"]["benign"]
    assert result["coerced_to_wpa2"], result["worlds"]["wpa2"]
    assert result["coerced_to_open"], result["worlds"]["open"]
    assert result["downgrade_flagged"]
    assert result["benign_false_positives"] == 0
    for row in rows:
        assert row["fp"] == 0, row


def test_csa_lure(benchmark):
    result = run_once(benchmark, exp_csa_lure, seed=1)
    rows = result["scorecard"]["rows"]
    record_rows("E-CSA: channel-switch herding scorecard",
                rows, area="rsn")
    assert result["herded"], result["worlds"]["lured"]
    assert result["link_dark_after_lure"], result["worlds"]["lured"]
    assert result["csa_flagged"]
    assert result["benign_false_positives"] == 0
    for row in rows:
        assert row["fp"] == 0, row


def test_pmf_flood(benchmark):
    result = run_once(benchmark, exp_pmf_flood, seed=1)
    rows = result["scorecard"]["rows"]
    record_rows("E-PMF: deauth flood with and without 802.11w",
                rows, area="rsn")
    assert result["flood_effective_without_pmf"], result["pmf_off"]
    assert result["pmf_protects"], result["pmf_on"]
    # The flood is loud either way; the WIDS sees it in both worlds.
    for world in (result["pmf_off"], result["pmf_on"]):
        assert "deauth-flood" in world["alerted_detectors"], world
