"""Flight-recorder overhead: the price of causal frame tracing.

Engineering telemetry, not paper reproduction: the recorder's contract
is zero *perturbation* (bit-identical results, pinned by the
determinism goldens), but not zero *cost*.  These benches measure the
cost on the FIG2 download-MITM world — the densest frame-lineage
workload in the repo — and pin two budgets:

* wall-clock: a recorded run must stay within a small multiple of an
  unrecorded one (generous bound; CI boxes are noisy);
* memory: the ring buffer really is a ring — lineage count never
  exceeds capacity, hop lists never exceed ``max_hops``, no matter how
  much traffic the world generates.

Run with::

    pytest benchmarks/test_trace_overhead.py --benchmark-only -s
"""

import time

from conftest import record_rows

from repro.core.scenario import build_corp_scenario
from repro.obs.lineage import recording


def _fig2_world(seed=11):
    scenario = build_corp_scenario(seed=seed)
    scenario.arm_download_mitm()
    victim = scenario.add_victim()
    scenario.sim.run_for(5.0)
    scenario.run_download_experiment(victim)
    return scenario


def _time_runs(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_recorder_wall_clock_overhead(benchmark):
    base_s = _time_runs(_fig2_world)

    def recorded():
        with recording(capacity=8192):
            _fig2_world()

    recorded_s = benchmark.pedantic(lambda: _time_runs(recorded),
                                    rounds=1, iterations=1, warmup_rounds=0)
    ratio = recorded_s / base_s if base_s > 0 else 1.0
    record_rows("Flight-recorder overhead (FIG2 world, best of 3)", [
        {"mode": "recorder off", "best_s": round(base_s, 4), "ratio": 1.0},
        {"mode": "recorder on", "best_s": round(recorded_s, 4),
         "ratio": round(ratio, 2)},
    ], area="trace")
    # Generous: recording adds per-frame dict/hop work but must never be
    # the dominant cost of the simulation.
    assert ratio < 5.0, f"flight recorder {ratio:.1f}x slower than baseline"


def test_recorder_memory_stays_bounded(benchmark):
    def run(capacity, max_hops):
        with recording(capacity=capacity, max_hops=max_hops) as rec:
            _fig2_world()
        return rec

    rec = benchmark.pedantic(run, args=(256, 8),
                             rounds=1, iterations=1, warmup_rounds=0)
    s = rec.summary()
    record_rows("Flight-recorder ring bounds (capacity=256, max_hops=8)", [
        {"lineages": s["lineages"], "hops": s["hops"],
         "evicted": s["evicted"],
         "max_hops_seen": max((len(ln.hops) for ln in rec.lineages()),
                              default=0)},
    ], area="trace")
    assert len(rec) <= 256
    assert s["evicted"] > 0  # FIG2 overflows a 256-lineage ring
    assert all(len(ln.hops) <= 8 for ln in rec.lineages())
    # raw capture is also bounded per lineage by the frame size itself:
    # total retained bytes stay modest even with capture on
    total_raw = sum(len(ln.raw or b"") for ln in rec.lineages())
    assert total_raw < 256 * 4096
