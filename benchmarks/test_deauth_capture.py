"""E-DEAUTH — §4: forcing disassociation until the rogue wins.

Expected shape: with no injection the well-placed victim is never
captured; capture probability rises with deauth rate (→1), and
time-to-capture falls.  Targeted unicast at a given rate is at least
as effective as broadcast.
"""

from conftest import record_rows, run_once

from repro.core.experiments import exp_deauth_capture


def test_deauth_capture(benchmark):
    result = run_once(benchmark, exp_deauth_capture, trials=3, horizon_s=60.0)
    rows = result["rows"]
    record_rows("E-DEAUTH: victim capture vs deauth injection rate", rows, area="deauth")

    baseline = next(r for r in rows if r["deauth_rate_hz"] == 0.0)
    assert baseline["capture_rate"] == 0.0

    targeted = sorted((r for r in rows if r["targeted"] and r["deauth_rate_hz"] > 0),
                      key=lambda r: r["deauth_rate_hz"])
    rates = [r["capture_rate"] for r in targeted]
    assert all(a <= b + 1e-9 for a, b in zip(rates, rates[1:])), rates
    assert rates[-1] == 1.0  # a fast storm always captures

    # Faster injection captures sooner (where both capture).
    fastest = targeted[-1]
    slower_with_time = [r for r in targeted[:-1]
                        if r["mean_time_to_capture_s"] is not None]
    if slower_with_time and fastest["mean_time_to_capture_s"] is not None:
        assert fastest["mean_time_to_capture_s"] <= \
            max(r["mean_time_to_capture_s"] for r in slower_with_time)

    fast_targeted = next(r for r in rows if r["deauth_rate_hz"] == 10.0
                         and r["targeted"])
    broadcast = next(r for r in rows if not r["targeted"])
    assert fast_targeted["capture_rate"] >= broadcast["capture_rate"] - 1e-9
