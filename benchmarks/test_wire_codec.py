"""Wire-codec performance: encode caching and ``codec.frame.*`` spans.

Engineering telemetry for the ``repro.wire`` migration, not paper
reproduction.  Three claims are measured and asserted:

* re-encoding the *same* frame (the common case on the simulated air:
  every receiver, the sniffer, and the recorder all serialize one
  transmitted frame) hits the encode cache and is measurably faster
  than a cold encode;
* the cache hit rate in a realistic fan-out pattern is high, read from
  the ``codec.encode_cache.*`` counters;
* ``codec.frame.encode`` profiler spans show the cached encodes — the
  per-call span is kept on the cache-hit path precisely so the speedup
  is visible in the profile.

Run with::

    pytest benchmarks/test_wire_codec.py --benchmark-only -s
"""

from __future__ import annotations

import time

from conftest import record_fields

from repro.dot11.frames import Dot11Frame, make_beacon, make_data
from repro.dot11.mac import MacAddress
from repro.netstack.addressing import IPv4Address
from repro.netstack.ipv4 import IPv4Packet
from repro.netstack.tcp import FLAG_ACK, TcpSegment
from repro.obs.runtime import collecting

AP = MacAddress("aa:bb:cc:dd:00:01")
STA = MacAddress("00:02:2d:00:00:07")
IP_A = IPv4Address("10.0.0.1")
IP_B = IPv4Address("10.0.0.2")

#: Serializations of one transmitted frame in a 1-AP/3-STA cell:
#: per-receiver delivery x3, monitor-mode sniffer, recorder raw capture.
FANOUT = 5


def _fresh_data_frame(i: int = 0) -> Dot11Frame:
    return make_data(STA, AP, AP, bytes(range(200)), to_ds=True, seq=i & 0xFFF)


def test_encode_cache_hit_is_faster_than_cold_encode(benchmark):
    """One cold encode then repeated cached encodes, vs all-cold."""
    rounds = 2000

    def cached():
        frame = _fresh_data_frame()
        for _ in range(rounds):
            frame.to_bytes()

    def cold():
        for i in range(rounds):
            _fresh_data_frame(i).to_bytes()

    t0 = time.perf_counter()
    cold()
    t_cold = time.perf_counter() - t0
    t0 = time.perf_counter()
    cached()
    t_cached = time.perf_counter() - t0
    speedup = t_cold / t_cached
    record_fields("wire", "encode_cache_speedup", rounds=rounds,
                  cold_ms=round(t_cold * 1e3, 1),
                  cached_ms=round(t_cached * 1e3, 1),
                  speedup=f"{speedup:.1f}x")
    # Cached encodes skip header pack, body concat, and CRC-32; anything
    # under 2x would mean the cache is not actually being hit.
    assert speedup > 2.0
    benchmark(cached)


def test_fanout_hit_rate_from_metrics():
    """A transmit fan-out pattern reports its hit rate via the registry."""
    with collecting() as col:
        for i in range(200):
            frame = make_beacon(AP, "CORP", 6, seq=i)
            for _ in range(FANOUT):
                frame.to_bytes()
    snap = col.registry.snapshot()
    hits = snap["codec.encode_cache.hits"]["value"]
    misses = snap["codec.encode_cache.misses"]["value"]
    hit_rate = hits / (hits + misses)
    record_fields("wire", "encode_cache_fanout", hits=hits, misses=misses,
                  **{"hit rate": f"{hit_rate:.1%}"})
    assert misses == 200                      # one cold encode per frame
    assert hit_rate >= (FANOUT - 1) / FANOUT  # every fan-out copy hits


def test_with_body_invalidates_the_cache():
    """Copy-on-write derivatives start cold — WEP encap must re-encode."""
    with collecting() as col:
        frame = _fresh_data_frame()
        frame.to_bytes()
        derived = frame.with_body(b"ciphertext " * 20, protected=True)
        assert derived.to_bytes() != frame.to_bytes()
    snap = col.registry.snapshot()
    assert snap["codec.encode_cache.misses"]["value"] == 2


def test_codec_frame_spans_show_cached_calls():
    """Profiler keeps per-call spans; cache hits appear as faster spans."""
    with collecting(profile=True) as col:
        frame = _fresh_data_frame()
        raw = frame.to_bytes()
        for _ in range(99):
            frame.to_bytes()
        for _ in range(50):
            Dot11Frame.from_bytes(raw)
    prof = col.profiler
    assert prof.count("codec.frame.encode") == 100
    assert prof.count("codec.frame.decode") == 50
    mean_encode_us = prof.mean_s("codec.frame.encode") * 1e6
    mean_decode_us = prof.mean_s("codec.frame.decode") * 1e6
    record_fields("wire", "codec.frame.encode",
                  calls=prof.count("codec.frame.encode"),
                  mean_us=round(mean_encode_us, 2), cached="99%")
    record_fields("wire", "codec.frame.decode",
                  calls=prof.count("codec.frame.decode"),
                  mean_us=round(mean_decode_us, 2))


def test_netstack_encode_throughput(benchmark):
    """IPv4+TCP encode path (bytearray + in-place checksum patch)."""
    seg = TcpSegment(src_port=80, dst_port=1234, seq=1, ack=2,
                     flags=FLAG_ACK, payload=bytes(512))

    def encode():
        IPv4Packet(src=IP_A, dst=IP_B, proto=6,
                   payload=seg.to_bytes(IP_A, IP_B)).to_bytes()

    benchmark(encode)


def test_netstack_decode_throughput(benchmark):
    """Zero-copy decode path over a memoryview."""
    seg = TcpSegment(src_port=80, dst_port=1234, seq=1, ack=2,
                     flags=FLAG_ACK, payload=bytes(512))
    raw = IPv4Packet(src=IP_A, dst=IP_B, proto=6,
                     payload=seg.to_bytes(IP_A, IP_B)).to_bytes()

    def decode():
        pkt = IPv4Packet.from_bytes(memoryview(raw))
        TcpSegment.from_bytes(memoryview(pkt.payload), pkt.src, pkt.dst)

    benchmark(decode)
