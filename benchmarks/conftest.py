"""Benchmark harness configuration.

Each benchmark runs one experiment from :mod:`repro.core.experiments`
exactly once under pytest-benchmark (these are simulations, not
microbenchmarks — wall time is reported for reproducibility tracking,
the printed tables are the result), emits the reproduced table as a
*structured record* through :mod:`repro.bench.records` (still printed
under ``-s``), and asserts the paper's qualitative shape.

Determinism pins (the deflake contract):

* ``PYTHONHASHSEED`` is pinned to ``0`` for every child process the
  suite forks (fleet workers) unless the caller already pinned one —
  recorded in the bench environment capture either way;
* ``random`` is re-seeded before every benchmark, so any incidental
  stdlib-RNG use cannot leak state between tests;
* all simulation seeds are explicit in the test bodies.

Two invocations of any registered benchmark must produce identical
non-timing payloads — pinned by ``tests/bench/test_determinism.py``.

Run with::

    pytest benchmarks/ --benchmark-only -s
    pytest benchmarks/ --benchmark-only --bench-records records.json
"""

import os
import random

import pytest

# Pin hashing for every subprocess this suite spawns (fleet workers,
# sweep trials).  Setting it here cannot re-randomize the current
# interpreter, but it makes child processes reproducible and the bench
# environment capture records the effective value.
os.environ.setdefault("PYTHONHASHSEED", "0")


@pytest.fixture(autouse=True)
def _pinned_rng():
    """Re-seed stdlib RNG per test: no cross-test state, no flake."""
    random.seed(0)
    yield


def pytest_addoption(parser):
    parser.addoption(
        "--bench-records", action="store", default=None, metavar="PATH",
        help="write every structured benchmark record (tables, telemetry "
             "fields) as JSON to PATH at session end")


def pytest_sessionfinish(session, exitstatus):
    path = session.config.getoption("--bench-records")
    if path:
        from repro.bench.records import write_records

        count = write_records(path)
        print(f"\nwrote {count} benchmark record(s) to {path}")


def run_once(benchmark, fn, *args, **kwargs):
    """Execute ``fn`` once under the benchmark timer and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


def record_rows(title, rows, order=None, *, area):
    """Emit experiment rows as a structured table record (and print it)."""
    from repro.bench.records import emit_table

    emit_table(area, title, rows, order=order)


def record_fields(area, name, **fields):
    """Emit one telemetry line as a structured record (and print it)."""
    from repro.bench.records import emit_record

    emit_record(area, name, **fields)
