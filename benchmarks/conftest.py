"""Benchmark harness configuration.

Each benchmark runs one experiment from :mod:`repro.core.experiments`
exactly once under pytest-benchmark (these are simulations, not
microbenchmarks — wall time is reported for reproducibility tracking,
the printed tables are the result), prints the reproduced table, and
asserts the paper's qualitative shape.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Execute ``fn`` once under the benchmark timer and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


def print_rows(title, rows, order=None):
    """Render experiment rows as the reproduction table."""
    from repro.core.report import format_table
    if not rows:
        print(f"{title}\n  (no rows)")
        return
    headers = order or list(rows[0].keys())
    table = format_table(headers, [[r.get(h) for h in headers] for r in rows],
                         title=title)
    print("\n" + table + "\n")
