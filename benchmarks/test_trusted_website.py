"""E-CNN — §5.1: "the trust he places in the website provider is
irrelevant" on a hostile segment.

Expected shape: the honest hotspot never tampers; the hostile hotspot
injects exploit script into the trusted site's page; an unpatched
client is compromised, a patched one is not (but was still served
tampered content).
"""

from conftest import record_rows, run_once

from repro.core.experiments import exp_trusted_website


def test_trusted_website(benchmark):
    result = run_once(benchmark, exp_trusted_website, seed=1)
    rows = result["rows"]
    record_rows("E-CNN: browsing a trusted site through a hotspot", rows, area="cnn")

    honest = next(r for r in rows if "honest" in r["arm"])
    hostile_unpatched = next(r for r in rows if "hostile" in r["arm"]
                             and "unpatched" in r["arm"])
    hostile_patched = next(r for r in rows if r["arm"].endswith("patched")
                           and "un" not in r["arm"].split(",")[1])

    assert all(r["page_loaded"] for r in rows)
    assert not honest["tampered_in_flight"] and not honest["compromised"]
    assert hostile_unpatched["tampered_in_flight"]
    assert hostile_unpatched["exploit_executed"]
    assert hostile_unpatched["compromised"]
    assert hostile_patched["tampered_in_flight"]
    assert not hostile_patched["compromised"]
