"""Fleet engine scaling: serial vs parallel campaign throughput.

Engineering telemetry for :mod:`repro.fleet`, not paper reproduction.
One CPU-bound trial (an RC4 keystream grind seeded per-trial) is swept
serially and with 4 workers; the table records trials/second for each
configuration plus the achieved speedup, and the test asserts the
determinism contract (aggregates bit-identical across worker counts).

The >=2x speedup assertion only applies when the machine actually has
>=4 usable cores — on smaller boxes (CI runners, containers pinned to
one CPU) the numbers are recorded but process-level parallelism cannot
beat the hardware, so only the determinism half is enforced.

    pytest benchmarks/test_fleet_scaling.py --benchmark-only -s
"""

import os

from conftest import record_rows, run_once

from repro.crypto.rc4 import rc4_keystream
from repro.fleet import run_campaign

TRIALS = 32
WORKERS = 4


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def cpu_bound_trial(seed: int) -> float:
    """A trial dominated by pure-Python compute, deterministic per seed."""
    key = seed.to_bytes(8, "big") + b"fleet-scaling"
    stream = rc4_keystream(key, 120_000)  # ~tens of ms: dwarfs fork/IPC costs
    return float(sum(stream) % 1009)


def test_fleet_scaling_throughput(benchmark):
    serial = run_campaign(TRIALS, cpu_bound_trial, workers=1)
    parallel = run_once(benchmark, run_campaign, TRIALS, cpu_bound_trial,
                        workers=WORKERS)

    # Determinism is non-negotiable regardless of core count.
    assert serial.failures == [] and parallel.failures == []
    assert serial.stats.values == parallel.stats.values  # bit-for-bit

    speedup = (parallel.throughput / serial.throughput
               if serial.throughput else float("nan"))
    cores = _usable_cores()
    record_rows(
        f"Fleet scaling: {TRIALS} CPU-bound trials ({cores} usable core(s))",
        [
            {"workers": 1, "elapsed_s": round(serial.elapsed_s, 3),
             "trials_per_s": round(serial.throughput, 1), "speedup": 1.0},
            {"workers": WORKERS, "elapsed_s": round(parallel.elapsed_s, 3),
             "trials_per_s": round(parallel.throughput, 1),
             "speedup": round(speedup, 2)},
        ], area="fleet")
    if cores >= WORKERS:
        assert speedup >= 2.0, (
            f"expected >=2x throughput at {WORKERS} workers on {cores} "
            f"cores, measured {speedup:.2f}x")
