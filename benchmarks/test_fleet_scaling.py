"""Fleet engine scaling: serial vs parallel campaign throughput.

Engineering telemetry for :mod:`repro.fleet`, not paper reproduction.
One CPU-bound trial (an RC4 keystream grind seeded per-trial) is swept
serially and with 4 workers; the table records trials/second for each
configuration plus the achieved speedup, and the test asserts the
determinism contract (aggregates bit-identical across worker counts).

The >=2x speedup assertion only applies when the machine actually has
>=4 usable cores — on smaller boxes (CI runners, containers pinned to
one CPU) the numbers are recorded but process-level parallelism cannot
beat the hardware, so only the determinism half is enforced.

    pytest benchmarks/test_fleet_scaling.py --benchmark-only -s
"""

import os

from conftest import record_rows, run_once

from repro.crypto.rc4 import rc4_keystream
from repro.fleet import run_campaign

TRIALS = 32
WORKERS = 4


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def cpu_bound_trial(seed: int) -> float:
    """A trial dominated by pure-Python compute, deterministic per seed."""
    key = seed.to_bytes(8, "big") + b"fleet-scaling"
    stream = rc4_keystream(key, 120_000)  # ~tens of ms: dwarfs fork/IPC costs
    return float(sum(stream) % 1009)


def stadium_smoke_trial(seed: int) -> dict:
    """A 10k-station dense world: one AP beaconing over a 2 km square.

    Stations within the ~272 m hearable radius (a few hundred of the
    10,000) receive every beacon; a handful of walkers exercise the
    kernel's per-station move invalidation at full population.  Returns
    deterministic totals so the wall-time bound below is checked
    against a world that verifiably did the work.
    """
    import math

    from repro.dot11.frames import make_beacon
    from repro.dot11.mac import MacAddress
    from repro.radio.medium import Medium, RadioPort
    from repro.radio.mobility import LinearMobility
    from repro.radio.propagation import Position
    from repro.sim.kernel import Simulator

    stations = 10_000
    beacons = 50
    sim = Simulator(seed=seed)
    medium = Medium(sim)
    ap = RadioPort("ap", Position(0.0, 0.0), 6)
    medium.attach(ap)
    heard = [0]
    sink = lambda frame, rssi, channel: heard.__setitem__(0, heard[0] + 1)
    rng = sim.rng.substream("stadium.layout")
    ports = []
    for i in range(stations):
        port = RadioPort(f"sta{i}",
                         Position(rng.uniform(-1000.0, 1000.0),
                                  rng.uniform(-1000.0, 1000.0)), 6)
        port.on_receive = sink
        medium.attach(port)
        ports.append(port)
    # Walkers crossing the field keep geometry churn in the picture.
    for port in ports[:20]:
        LinearMobility(sim, port, [Position(0.0, 0.0)],
                       speed_mps=30.0, tick_s=0.05)
    beacon = make_beacon(MacAddress("aa:bb:cc:dd:00:06"), "STADIUM", 6)
    for k in range(beacons):
        sim.schedule_at(k * 0.1, ap.transmit, beacon)
    sim.run_for(beacons * 0.1)
    hearable_radius = 10.0 ** (
        (ap.tx_power_dbm - (medium.loss_model.threshold_dbm - 10.0)
         - medium.path_loss.pl_d0_db) / (10.0 * medium.path_loss.exponent))
    in_range = sum(
        1 for p in ports
        if math.hypot(p.position.x, p.position.y) <= hearable_radius)
    return {"stations": stations, "beacons": beacons,
            "deliveries": heard[0], "in_range_at_end": in_range}


def test_stadium_smoke_10k_stations(benchmark):
    """PR 7's tractability claim: a 10k-station trial fits a smoke bound.

    Before the vectorized kernel each beacon cost 10,000 hypot/log10
    pairs (~50 s of per-pair scalar math for this world); with cached
    rows + delivery plans the whole trial — build, 50 beacons, walker
    churn — must finish in seconds.  The bound is deliberately loose
    (CI containers are slow and shared); the point is the complexity
    class, not the constant.
    """
    result = run_once(benchmark, stadium_smoke_trial, 11)
    elapsed = benchmark.stats.stats.total
    assert result["stations"] == 10_000
    # the world did real work: hundreds of in-range stations, every
    # beacon fanned out to each of them
    assert result["in_range_at_end"] >= 100
    assert result["deliveries"] >= result["in_range_at_end"] * 10
    record_rows(
        "Stadium smoke: 10k stations, 50 beacons, 20 walkers",
        [{"stations": result["stations"], "beacons": result["beacons"],
          "deliveries": result["deliveries"],
          "in_range_at_end": result["in_range_at_end"],
          "elapsed_s": round(elapsed, 3)}], area="radio")
    assert elapsed < 10.0, (
        f"10k-station smoke trial took {elapsed:.1f}s; the vectorized "
        f"kernel should keep it well under the 10s bound")


def test_fleet_scaling_throughput(benchmark):
    serial = run_campaign(TRIALS, cpu_bound_trial, workers=1)
    parallel = run_once(benchmark, run_campaign, TRIALS, cpu_bound_trial,
                        workers=WORKERS)

    # Determinism is non-negotiable regardless of core count.
    assert serial.failures == [] and parallel.failures == []
    assert serial.stats.values == parallel.stats.values  # bit-for-bit

    speedup = (parallel.throughput / serial.throughput
               if serial.throughput else float("nan"))
    cores = _usable_cores()
    record_rows(
        f"Fleet scaling: {TRIALS} CPU-bound trials ({cores} usable core(s))",
        [
            {"workers": 1, "elapsed_s": round(serial.elapsed_s, 3),
             "trials_per_s": round(serial.throughput, 1), "speedup": 1.0},
            {"workers": WORKERS, "elapsed_s": round(parallel.elapsed_s, 3),
             "trials_per_s": round(parallel.throughput, 1),
             "speedup": round(speedup, 2)},
        ], area="fleet")
    if cores >= WORKERS:
        assert speedup >= 2.0, (
            f"expected >=2x throughput at {WORKERS} workers on {cores} "
            f"cores, measured {speedup:.2f}x")
