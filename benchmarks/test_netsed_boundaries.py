"""E-NETSED — §4.2: "netsed will not match strings that cross packet
boundaries", and the fix the paper says is easy.

Expected shape: per-segment hit rate is 0 when segments are smaller
than the pattern, climbs toward 1 as segments grow (≈ 1 - (L-1)/MSS
for pattern length L), and the streaming rewriter is 1.0 everywhere.
"""

from conftest import record_rows, run_once

from repro.core.experiments import exp_netsed_boundaries


def test_netsed_boundaries(benchmark):
    result = run_once(benchmark, exp_netsed_boundaries, trials=300)
    rows = result["rows"]
    L = result["pattern_len"]
    record_rows(f"E-NETSED: rewrite hit rate vs segment size (pattern {L} bytes)",
               rows, area="netsed")

    per_seg = sorted((r for r in rows if "netsed" in r["rewriter"]),
                     key=lambda r: r["segment_size"])
    stream = [r for r in rows if r["rewriter"] == "streaming"]

    # Streaming is perfect at every segment size.
    assert all(r["hit_rate"] == 1.0 for r in stream)

    # Per-segment: zero below the pattern length, monotone up to ~1.
    for r in per_seg:
        if r["segment_size"] < L:
            assert r["hit_rate"] == 0.0, r
    rates = [r["hit_rate"] for r in per_seg]
    assert all(a <= b + 0.07 for a, b in zip(rates, rates[1:])), rates
    assert per_seg[-1]["hit_rate"] > 0.98  # 1460-byte MSS nearly always hits

    # The analytic miss rate (L-1)/MSS holds to first order.
    mid = next(r for r in per_seg if r["segment_size"] == 64)
    expected = 1 - (L - 1) / 64
    assert abs(mid["hit_rate"] - expected) < 0.1
