"""E-VPNOH — §5.3: "any UDP traffic is subject to unnecessary
retransmission by TCP" in the PPP-over-SSH tunnel.

Expected shape, as radio loss grows:

* native UDP: delivery falls with loss, latency stays flat (drops are
  just drops);
* PPP-over-SSH (TCP transport): delivery stays ~1 (TCP retransmits —
  the "unnecessary retransmission") but tail latency explodes as the
  outer TCP's RTO/backoff head-of-line-blocks the tunnel;
* ESP-over-UDP: tracks native behaviour — the comparison the paper's
  future-work VPN evaluation would have drawn.
"""

from conftest import record_rows, run_once

from repro.core.experiments import exp_vpn_overhead


def test_vpn_overhead(benchmark):
    result = run_once(benchmark, exp_vpn_overhead,
                      loss_rates=(0.0, 0.05, 0.10, 0.20))
    rows = result["rows"]
    record_rows("E-VPNOH: CBR UDP through three transports vs radio loss", rows, area="vpnoh")

    def pick(loss, transport):
        return next(r for r in rows
                    if r["radio_loss"] == loss and r["transport"] == transport)

    clean_tcp = pick(0.0, "ppp-ssh (tcp)")
    mild_tcp = pick(0.05, "ppp-ssh (tcp)")
    lossy_tcp = pick(0.20, "ppp-ssh (tcp)")
    lossy_native = pick(0.20, "native")
    lossy_esp = pick(0.20, "esp (udp)")

    # Under mild loss the TCP tunnel still delivers everything — the
    # "unnecessary retransmission" — at the price of latency spikes.
    assert mild_tcp["delivery"] > 0.95
    assert mild_tcp["p95_ms"] > 10 * max(clean_tcp["p95_ms"], 1.0)
    # Native/ESP lose roughly what the radio loses (two air crossings)
    # but their latency stays flat.
    assert lossy_native["delivery"] < 0.9
    assert lossy_esp["delivery"] < 0.9
    assert lossy_esp["p95_ms"] < 5.0
    # The full meltdown at heavy loss: the tunnel's backlog grows
    # without bound — seconds of queueing delay, and most datagrams
    # don't arrive within the measurement window at all.
    assert lossy_tcp["p95_ms"] > 1000.0
    assert lossy_tcp["p95_ms"] > 100 * lossy_esp["p95_ms"]
    assert lossy_tcp["delivery"] < lossy_esp["delivery"]
    # Clean-path sanity: all three transports behave at zero loss.
    for transport in ("native", "ppp-ssh (tcp)", "esp (udp)"):
        assert pick(0.0, transport)["delivery"] > 0.97
