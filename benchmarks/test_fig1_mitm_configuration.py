"""FIG1 — Figure 1's rogue-AP configuration, executed and validated.

Expected shape (paper §4/§4.1): the attacker associates upstream as a
valid client; a nearby victim's stock strongest-RSSI selection lands
on the rogue's channel under the cloned SSID/BSSID; the parprouted
bridge is transparent (gateway and WAN reachable).  The AP-selection
ablation shows *why*: a first-heard policy can dodge this particular
geometry, stock drivers do not.
"""

from conftest import record_rows, run_once

from repro.core.experiments import fig1_mitm_configuration


def test_fig1_mitm_configuration(benchmark):
    result = run_once(benchmark, fig1_mitm_configuration, seed=1)
    rows = result["rows"]
    record_rows("FIG1: rogue-AP capture (ablation: AP-selection policy)", rows, area="fig1")

    stock = next(r for r in rows if r["policy"] == "strongest-rssi")
    assert stock["rogue_upstream_associated"]
    assert stock["victim_channel"] == 6          # the rogue's channel
    assert stock["victim_bssid_cloned"]
    assert stock["captured_by_rogue"]
    assert stock["gateway_reachable"] and stock["wan_reachable"]
    assert stock["bridge_rtt_ms"] < 50           # bridge is transparent
