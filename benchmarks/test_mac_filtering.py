"""E-MAC — §2.1: MAC filtering "keeps honest people honest".

Expected shape: the honest outsider is denied; sniffing yields a valid
MAC and the spoofing outsider is admitted.
"""

from conftest import record_rows, run_once

from repro.core.experiments import exp_mac_filtering


def test_mac_filtering(benchmark):
    result = run_once(benchmark, exp_mac_filtering, seed=1)
    rows = result["rows"]
    record_rows("E-MAC: MAC filtering vs sniff-and-spoof", rows, area="mac")

    honest = next(r for r in rows if "honest" in r["attacker"])
    spoof = next(r for r in rows if "spoof" in r["attacker"])
    assert not honest["admitted"]
    assert honest["denials_logged"] >= 1
    assert spoof["harvested_valid_mac"]
    assert spoof["admitted"]
