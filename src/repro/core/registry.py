"""Experiment registry: ids → runners, for the CLI and the docs.

One entry per experiment of DESIGN.md §4, each knowing how to run
itself and how to print its result tables.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable

from repro.core import experiments as E
from repro.core.report import format_table
from repro.rsn import experiment as R
from repro.wids import experiment as W

__all__ = ["EXPERIMENTS", "ExperimentSpec", "SeededExperiment",
           "get_experiment", "render_result", "spec_accepts_seed"]


@dataclass(frozen=True)
class ExperimentSpec:
    """One reproducible experiment."""

    exp_id: str
    title: str
    paper_anchor: str
    runner: Callable[..., dict]
    bench_target: str


EXPERIMENTS: list[ExperimentSpec] = [
    ExperimentSpec("FIG1", "Rogue-AP configuration captures clients",
                   "Fig. 1, §4.1", E.fig1_mitm_configuration,
                   "benchmarks/test_fig1_mitm_configuration.py"),
    ExperimentSpec("FIG2", "Software-download MITM detail",
                   "Fig. 2, §4.1–4.2", E.fig2_download_mitm,
                   "benchmarks/test_fig2_download_mitm.py"),
    ExperimentSpec("FIG3", "VPN proxy through the compromised WLAN",
                   "Fig. 3, §5", E.fig3_vpn_proxy,
                   "benchmarks/test_fig3_vpn_proxy.py"),
    ExperimentSpec("E-WEP", "WEP provides no protection here",
                   "§2.1", E.exp_wep_no_protection,
                   "benchmarks/test_wep_no_protection.py"),
    ExperimentSpec("E-MAC", "MAC filtering vs sniff-and-spoof",
                   "§2.1", E.exp_mac_filtering,
                   "benchmarks/test_mac_filtering.py"),
    ExperimentSpec("E-FMS", "Airsnort key-recovery economics",
                   "§4, refs [3][11]", E.exp_airsnort_curve,
                   "benchmarks/test_airsnort_key_recovery.py"),
    ExperimentSpec("E-DEAUTH", "Deauth forcing onto the rogue",
                   "§4", E.exp_deauth_capture,
                   "benchmarks/test_deauth_capture.py"),
    ExperimentSpec("E-NETSED", "netsed's packet-boundary limitation",
                   "§4.2", E.exp_netsed_boundaries,
                   "benchmarks/test_netsed_boundaries.py"),
    ExperimentSpec("E-WIRED", "Wired vs wireless prerequisites",
                   "§1.1–1.2, §3", E.exp_wired_vs_wireless,
                   "benchmarks/test_wired_vs_wireless.py"),
    ExperimentSpec("E-VPNOH", "UDP over the TCP tunnel (§5.3 drawback)",
                   "§5.3", E.exp_vpn_overhead,
                   "benchmarks/test_vpn_overhead.py"),
    ExperimentSpec("E-DETECT", "Sequence-control rogue detection",
                   "§2.3, ref [15]", E.exp_rogue_detection,
                   "benchmarks/test_rogue_detection.py"),
    ExperimentSpec("E-PROM", "Network promiscuity across domains",
                   "§3.2", E.exp_network_promiscuity,
                   "benchmarks/test_network_promiscuity.py"),
    ExperimentSpec("E-CNN", "The trusted-website scenario",
                   "§5.1", E.exp_trusted_website,
                   "benchmarks/test_trusted_website.py"),
    ExperimentSpec("E-8021X", "802.1X / WPA network-auth gap",
                   "§2.2, ref [9]", E.exp_dot1x_wpa_gap,
                   "benchmarks/test_dot1x_wpa_gap.py"),
    # Extensions beyond the paper's own experiments (§6 future work, built):
    ExperimentSpec("X-PATH", "Victim-side first-hop rogue detection",
                   "extension (§6)", E.exp_first_hop_detection,
                   "benchmarks/test_extensions.py"),
    ExperimentSpec("X-CONTAIN", "Active rogue containment",
                   "extension (§6)", E.exp_containment,
                   "benchmarks/test_extensions.py"),
    ExperimentSpec("E-WIDS", "Streaming WIDS detector evaluation",
                   "§2.3 + WIDS literature", W.exp_wids_eval,
                   "benchmarks/test_wids_eval.py"),
    # Modern Wi-Fi scenario pack: the paper's rogue problem under RSN.
    ExperimentSpec("E-DOWNGRADE", "WPA3-transition downgrade coercion",
                   "§4 modernized (WPA3/RSN)", R.exp_downgrade,
                   "benchmarks/test_rsn_scenarios.py"),
    ExperimentSpec("E-CSA", "Channel-switch herding onto an evil twin",
                   "§4 modernized (802.11 CSA)", R.exp_csa_lure,
                   "benchmarks/test_rsn_scenarios.py"),
    ExperimentSpec("E-PMF", "Deauth flood vs management-frame protection",
                   "§4 modernized (802.11w)", R.exp_pmf_flood,
                   "benchmarks/test_rsn_scenarios.py"),
]


def get_experiment(exp_id: str) -> ExperimentSpec:
    for spec in EXPERIMENTS:
        if spec.exp_id.lower() == exp_id.lower():
            return spec
    known = ", ".join(s.exp_id for s in EXPERIMENTS)
    raise KeyError(f"unknown experiment {exp_id!r}; known: {known}")


def spec_accepts_seed(spec: ExperimentSpec) -> bool:
    """True when the experiment's runner takes a ``seed`` parameter.

    Runners that instead take ``trials=...`` (they loop seeds
    internally) still sweep, but every seed reproduces the same result.
    """
    return "seed" in inspect.signature(spec.runner).parameters


class SeededExperiment:
    """Picklable ``trial(seed)`` adapter over a registered experiment.

    ``python -m repro sweep`` hands this to :func:`repro.fleet.run_campaign`;
    being a module-level class holding only the experiment id, it crosses
    process boundaries under both ``fork`` and ``spawn`` start methods.
    """

    def __init__(self, exp_id: str) -> None:
        self.exp_id = get_experiment(exp_id).exp_id  # validate + normalize

    def __call__(self, seed: int) -> dict:
        spec = get_experiment(self.exp_id)
        if spec_accepts_seed(spec):
            return spec.runner(seed=seed)
        return spec.runner()


def render_result(result: dict) -> str:
    """Render an experiment runner's dict as text tables."""
    blocks: list[str] = []
    for key, value in result.items():
        if isinstance(value, list) and value and isinstance(value[0], dict):
            headers: list[str] = []
            for row in value:  # union of keys, first-seen order
                for h in row:
                    if h not in headers:
                        headers.append(h)
            blocks.append(format_table(
                headers, [[row.get(h, "") for h in headers] for row in value],
                title=key))
        else:
            blocks.append(f"{key} = {value}")
    return "\n\n".join(blocks)
