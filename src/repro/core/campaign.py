"""Multi-seed trial campaigns.

One simulated world is one sample.  Experiments that report rates or
probabilities run the same scenario under many seeds and aggregate —
this module is that loop, kept deliberately dumb so benchmark code
reads as "what was measured", not "how the loop works".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional, TypeVar

__all__ = ["TrialStats", "run_trials"]

T = TypeVar("T")


@dataclass
class TrialStats:
    """Aggregate over per-trial scalar outcomes."""

    values: list[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        self.values.append(float(value))

    def merge(self, other: "TrialStats") -> "TrialStats":
        """Append another aggregate's samples to this one (returns self).

        Merging shard aggregates in seed order reproduces the serial
        ``values`` list exactly, which is what lets
        :mod:`repro.fleet` promise bit-for-bit parallel == serial.
        """
        self.values.extend(other.values)
        return self

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / self.n if self.n else math.nan

    @property
    def stdev(self) -> float:
        if self.n < 2:
            return 0.0
        m = self.mean
        return math.sqrt(sum((v - m) ** 2 for v in self.values) / (self.n - 1))

    @property
    def rate(self) -> float:
        """For boolean outcomes (0/1): the success fraction."""
        return self.mean

    def ci95_halfwidth(self) -> float:
        """Normal-approximation 95% half-width on the mean."""
        if self.n < 2:
            return math.nan
        return 1.96 * self.stdev / math.sqrt(self.n)

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.ci95_halfwidth():.2g} (n={self.n})"


def run_trials(n: int, trial: Callable[[int], float],
               *, seed_base: int = 1000, workers: int = 1,
               timeout: Optional[float] = None) -> TrialStats:
    """Run ``trial(seed)`` for ``n`` distinct seeds and aggregate.

    Each trial builds its own simulator from its seed, so trials are
    independent and individually reproducible.

    ``workers=1`` (the default) is the serial fast path: the plain loop
    below, no multiprocessing machinery, exceptions propagate as they
    always have.  ``workers>1`` shards the sweep across processes via
    :mod:`repro.fleet`; results are reduced in seed order, so the
    returned aggregate is bit-for-bit identical to the serial one.  In
    that mode a trial that keeps failing (after one retry) raises
    :class:`repro.fleet.CampaignError` — use
    :func:`repro.fleet.run_campaign` directly when partial results plus
    recorded failures are wanted instead.
    """
    if workers <= 1 and timeout is None:
        stats = TrialStats()
        for i in range(n):
            stats.add(trial(seed_base + i))
        return stats
    from repro.fleet import CampaignError, run_campaign

    result = run_campaign(n, trial, seed_base=seed_base, workers=workers,
                          timeout=timeout)
    if result.failures:
        raise CampaignError(result.failures)
    stats = result.stats
    assert stats is not None  # numeric by contract of this API
    return stats
