"""Multi-seed trial campaigns.

One simulated world is one sample.  Experiments that report rates or
probabilities run the same scenario under many seeds and aggregate —
this module is that loop, kept deliberately dumb so benchmark code
reads as "what was measured", not "how the loop works".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, TypeVar

__all__ = ["TrialStats", "run_trials"]

T = TypeVar("T")


@dataclass
class TrialStats:
    """Aggregate over per-trial scalar outcomes."""

    values: list[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        self.values.append(float(value))

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / self.n if self.n else math.nan

    @property
    def stdev(self) -> float:
        if self.n < 2:
            return 0.0
        m = self.mean
        return math.sqrt(sum((v - m) ** 2 for v in self.values) / (self.n - 1))

    @property
    def rate(self) -> float:
        """For boolean outcomes (0/1): the success fraction."""
        return self.mean

    def ci95_halfwidth(self) -> float:
        """Normal-approximation 95% half-width on the mean."""
        if self.n < 2:
            return math.nan
        return 1.96 * self.stdev / math.sqrt(self.n)

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.ci95_halfwidth():.2g} (n={self.n})"


def run_trials(n: int, trial: Callable[[int], float],
               *, seed_base: int = 1000) -> TrialStats:
    """Run ``trial(seed)`` for ``n`` distinct seeds and aggregate.

    Each trial builds its own simulator from its seed, so trials are
    independent and individually reproducible.
    """
    stats = TrialStats()
    for i in range(n):
        stats.add(trial(seed_base + i))
    return stats
