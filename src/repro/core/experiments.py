"""Experiment runners: one function per table/figure of the reproduction.

Each function builds fresh worlds from seeds, measures, and returns a
plain dict of rows; ``benchmarks/`` wraps them in pytest-benchmark
targets and asserts the expected *shape* (who wins, by what rough
factor).  EXPERIMENTS.md records a reference run.

The experiment ids (FIG1..E-8021X) are indexed in DESIGN.md §4.
"""

from __future__ import annotations

from typing import Optional

from repro.attacks.deauth import DeauthAttacker
from repro.attacks.mac_spoof import observe_client_macs, spoof_mac
from repro.attacks.netsed import NetsedRule, StreamingRewriter, _PerSegmentRewriter
from repro.attacks.sniffer import MonitorSniffer
from repro.core.campaign import TrialStats, run_trials
from repro.core.scenario import (
    EVIL_IP,
    TARGET_IP,
    VPN_IP,
    build_corp_scenario,
    build_hotspot_scenario,
    build_wired_office,
)
from repro.crypto.fms import FmsAttack, weak_iv_for
from repro.crypto.rc4 import rc4_keystream
from repro.crypto.wep import WepKey
from repro.wids.detectors import SeqCtlMonitor
from repro.hosts.nic import first_heard_policy, strongest_rssi_policy
from repro.hosts.station import Station
from repro.radio.propagation import Position
from repro.sim.rng import SimRandom

__all__ = [
    "fig1_mitm_configuration",
    "fig2_download_mitm",
    "fig3_vpn_proxy",
    "exp_wep_no_protection",
    "exp_mac_filtering",
    "exp_airsnort_curve",
    "exp_deauth_capture",
    "exp_netsed_boundaries",
    "exp_wired_vs_wireless",
    "exp_vpn_overhead",
    "exp_rogue_detection",
    "exp_network_promiscuity",
    "exp_trusted_website",
    "exp_dot1x_wpa_gap",
]


# ----------------------------------------------------------------------
# FIG1 — the rogue-AP configuration captures clients transparently
# ----------------------------------------------------------------------

def fig1_mitm_configuration(seed: int = 1) -> dict:
    """Reproduce Figure 1 and validate its operational claims."""
    rows = []
    for policy_name, policy in (("strongest-rssi", strongest_rssi_policy),
                                ("first-heard", first_heard_policy)):
        scenario = build_corp_scenario(seed=seed)
        victim = scenario.add_victim(policy=policy)
        scenario.sim.run_for(5.0)
        rtts: list[float] = []
        victim.ping("10.0.0.1", on_reply=rtts.append)
        victim.ping(TARGET_IP, on_reply=rtts.append)
        scenario.sim.run_for(3.0)
        rows.append({
            "policy": policy_name,
            "rogue_upstream_associated": scenario.rogue.upstream_associated,
            "victim_channel": victim.associated_channel,
            "victim_bssid_cloned": victim.associated_bssid == scenario.ap.bssid,
            "captured_by_rogue": victim.wlan.mac in scenario.rogue.captured_clients(),
            "gateway_reachable": len(rtts) >= 1,
            "wan_reachable": len(rtts) == 2,
            "bridge_rtt_ms": round(rtts[0] * 1000, 2) if rtts else None,
        })
    return {"rows": rows}


# ----------------------------------------------------------------------
# FIG2 — the software-download MITM detail
# ----------------------------------------------------------------------

def fig2_download_mitm(seed: int = 1) -> dict:
    """Reproduce Figure 2: DNAT → netsed → rewritten page → trojan run."""
    rows = []
    for arm, mitm in (("control (no rogue)", False), ("rogue + netsed", True)):
        scenario = build_corp_scenario(seed=seed, with_rogue=mitm)
        if mitm:
            scenario.arm_download_mitm()
        victim = scenario.add_victim()
        scenario.sim.run_for(5.0)
        outcome = scenario.run_download_experiment(victim)
        rows.append({
            "arm": arm,
            "link_rewritten": outcome.link is not None and EVIL_IP in
                              outcome.link.replace("%2f", "/"),
            "md5_check_passed": outcome.md5_ok,
            "executed": outcome.executed,
            "trojaned": outcome.trojaned,
            "compromised": outcome.compromised,
            "netsed_replacements": (scenario.rogue.netsed.total_replacements
                                    if mitm else 0),
        })
    # The "No Rule Match" path of Fig. 2: off-target port-80 traffic.
    scenario = build_corp_scenario(seed=seed + 7)
    scenario.arm_download_mitm()
    victim = scenario.add_victim()
    scenario.sim.run_for(5.0)
    from repro.httpsim.client import HttpClient
    results: list = []
    HttpClient(victim).get(f"http://{EVIL_IP}/file.tgz", results.append)
    scenario.sim.run_for(30.0)
    passthrough_ok = bool(results and results[0] is not None
                          and results[0].status == 200
                          and scenario.rogue.netsed.connections_proxied == 0)
    return {"rows": rows, "no_rule_match_passthrough": passthrough_ok}


# ----------------------------------------------------------------------
# FIG3 — VPN through the compromised wireless network
# ----------------------------------------------------------------------

def fig3_vpn_proxy(seed: int = 1) -> dict:
    """Reproduce Figure 3: the same attack against a VPN'd client."""
    rows = []
    for arm, use_vpn in (("bare client", False), ("VPN client", True)):
        scenario = build_corp_scenario(seed=seed)
        scenario.arm_download_mitm()
        victim = scenario.add_victim()
        scenario.sim.run_for(5.0)
        on_rogue = victim.associated_channel == 6
        if use_vpn:
            vpn = scenario.connect_vpn(victim)
            scenario.sim.run_for(5.0)
        outcome = scenario.run_download_experiment(victim, settle_s=90.0)
        rows.append({
            "arm": arm,
            "on_rogue": on_rogue,
            "vpn_connected": use_vpn and vpn.connected,
            "md5_check_passed": outcome.md5_ok,
            "compromised": outcome.compromised,
            "netsed_saw_flows": scenario.rogue.netsed.connections_proxied,
            "tunnelled_packets": vpn.packets_tunnelled if use_vpn else 0,
        })
    return {"rows": rows}


# ----------------------------------------------------------------------
# E-WEP — WEP provides no protection against the rogue
# ----------------------------------------------------------------------

def exp_wep_no_protection(seed: int = 1) -> dict:
    rows = []
    for arm, wep, rogue_key_mode in (
        ("open network", False, "same"),
        ("WEP, rogue is valid client", True, "same"),
        ("WEP, rogue cracked key (FMS)", True, "cracked"),
    ):
        scenario = build_corp_scenario(seed=seed, wep=wep)
        if rogue_key_mode == "cracked":
            # The attacker recovers the root key passively before the
            # attack (the E-FMS benchmark measures this step's cost);
            # here we perform the recovery against real keystream and
            # hand the result to the rogue.
            truth = WepKey.from_passphrase("SECRET", bits=40)
            attack = FmsAttack(key_length=5)
            for a in range(5):
                for x in range(160):
                    iv = weak_iv_for(a, x)
                    attack.add_sample(iv, rc4_keystream(truth.per_packet_key(iv), 1)[0])
            recovered = attack.recover(verifier=lambda k: k == truth.key)
            assert recovered == truth.key
            # The rogue was built with the same key anyway ("same"); the
            # point is the key was *obtainable* without membership.
        victim = scenario.add_victim()
        scenario.sim.run_for(5.0)
        scenario.arm_download_mitm()
        outcome = scenario.run_download_experiment(victim)
        rows.append({
            "arm": arm,
            "victim_on_rogue": victim.associated_channel == 6,
            "compromised": outcome.compromised,
        })
    return {"rows": rows}


# ----------------------------------------------------------------------
# E-MAC — MAC filtering keeps honest people honest
# ----------------------------------------------------------------------

def exp_mac_filtering(seed: int = 1) -> dict:
    scenario = build_corp_scenario(seed=seed, with_rogue=False, wep=False)
    victim = scenario.add_victim()
    scenario.ap.core.mac_filter.allow(victim.wlan.mac)
    scenario.sim.run_for(5.0)

    honest = Station(scenario.sim, "honest-outsider", scenario.medium,
                     Position(12, 0))
    honest.connect("CORP", ip="10.0.0.50")
    scenario.sim.run_for(6.0)
    honest_admitted = honest.wlan.associated
    honest.wlan.leave()

    sniffer = MonitorSniffer(scenario.sim, scenario.medium, Position(12, 2))
    victim.ping("10.0.0.1")
    scenario.sim.run_for(3.0)
    harvested = observe_client_macs(sniffer, bssid=scenario.ap.bssid)

    spoofer = Station(scenario.sim, "spoofing-outsider", scenario.medium,
                      Position(12, -2))
    harvested_ok = victim.wlan.mac in harvested
    if harvested_ok:
        spoof_mac(spoofer.wlan, harvested[0])
    spoofer.connect("CORP", ip="10.0.0.51")
    scenario.sim.run_for(8.0)
    return {"rows": [
        {"attacker": "honest outsider (own MAC)", "admitted": honest_admitted,
         "denials_logged": scenario.ap.core.mac_filter.denials},
        {"attacker": "sniff + spoof valid MAC", "admitted": spoofer.wlan.associated,
         "harvested_valid_mac": harvested_ok},
    ]}


# ----------------------------------------------------------------------
# E-FMS — Airsnort key-recovery economics
# ----------------------------------------------------------------------

def exp_airsnort_curve(trials: int = 5) -> dict:
    """Recovery probability vs weak-IV samples per key byte.

    Context row included: a sequential-IV card yields one weak IV per
    ~65k frames per byte class, so N samples/byte ≈ N × 65k sniffed
    frames — the "5-10 million packets" folklore falls out.
    """
    rows = []
    for bits, key_length in ((40, 5), (104, 13)):
        # 256 is the whole classic weak-IV class per byte: the axis cap.
        for samples_per_byte in (10, 20, 40, 80, 160, 256):
            def trial(seed: int) -> float:
                rng = SimRandom(seed)
                key = WepKey(rng.bytes(key_length))
                attack = FmsAttack(key_length=key_length)
                xs = rng.sample(range(256), min(samples_per_byte, 256))
                for a in range(key_length):
                    for x in xs:
                        iv = weak_iv_for(a, x)
                        attack.add_sample(
                            iv, rc4_keystream(key.per_packet_key(iv), 1)[0])
                recovered = attack.recover(
                    verifier=lambda k: k == key.key, search_width=4)
                return 1.0 if recovered == key.key else 0.0

            stats = run_trials(trials, trial, seed_base=7000 + bits + samples_per_byte)
            rows.append({
                "key_bits": bits,
                "weak_ivs_per_byte": samples_per_byte,
                "approx_sniffed_frames": samples_per_byte * 65536,
                "recovery_rate": stats.rate,
            })
    return {"rows": rows}


# ----------------------------------------------------------------------
# E-DEAUTH — forcing the victim onto the rogue
# ----------------------------------------------------------------------

def exp_deauth_capture(trials: int = 3, horizon_s: float = 60.0) -> dict:
    """Geometry: the rogue is parked far enough (30 m) that the victim
    needs *accumulated* deauth penalties before its selection flips —
    so the injection rate shows through in time-to-capture."""
    rows = []
    for rate_hz, targeted in ((0.0, True), (0.05, True), (0.2, True),
                              (1.0, True), (10.0, True), (10.0, False)):
        captured = TrialStats()
        times = TrialStats()

        def trial(seed: int) -> float:
            scenario = build_corp_scenario(seed=seed,
                                           rogue_position=Position(30.0, 0.0))
            victim = scenario.add_victim(position=Position(6.0, 0.0))
            scenario.sim.run_for(5.0)
            if victim.associated_channel != 1:
                return 1.0  # already on the rogue (rare at this geometry)
            attacker = None
            if rate_hz > 0:
                attacker = DeauthAttacker(
                    scenario.sim, scenario.medium, Position(6.0, 2.0),
                    ap_bssid=scenario.ap.bssid, channel=1,
                    target=victim.wlan.mac if targeted else None,
                    rate_hz=rate_hz)
                attacker.start()
            start = scenario.sim.now
            hit = 0.0
            for _ in range(int(horizon_s)):
                scenario.sim.run_for(1.0)
                if victim.associated_channel == 6:
                    times.add(scenario.sim.now - start)
                    hit = 1.0
                    break
            if attacker:
                attacker.stop()
            return hit

        stats = run_trials(trials, trial,
                           seed_base=8000 + int(rate_hz * 10) + int(targeted))
        rows.append({
            "deauth_rate_hz": rate_hz,
            "targeted": targeted,
            "capture_rate": stats.rate,
            "mean_time_to_capture_s": round(times.mean, 1) if times.n else None,
        })
    return {"rows": rows}


# ----------------------------------------------------------------------
# E-NETSED — the packet-boundary limitation
# ----------------------------------------------------------------------

def exp_netsed_boundaries(trials: int = 200) -> dict:
    """Hit rate vs segment size, per-segment vs streaming rewriter.

    The stream is cut at uniformly random offsets into ``mss``-sized
    chunks with the 13-byte pattern (``href=file.tgz``) at a random
    position — the distribution a real capture presents.
    """
    pattern = b"href=file.tgz"
    rows = []
    for mss in (4, 8, 16, 32, 64, 128, 256, 1460):
        for streaming in (False, True):
            rng = SimRandom(9000 + mss + int(streaming))
            hits = 0
            for _ in range(trials):
                pad_front = rng.randint(0, 200)
                stream = (bytes(rng.randint(97, 122) for _ in range(pad_front))
                          + pattern
                          + bytes(rng.randint(97, 122) for _ in range(100)))
                rules = [NetsedRule(pattern, b"X" * len(pattern))]
                rw = StreamingRewriter(rules) if streaming else _PerSegmentRewriter(rules)
                out = b""
                for off in range(0, len(stream), mss):
                    out += rw.process(stream[off:off + mss])
                out += rw.flush()
                if pattern not in out:
                    hits += 1
            rows.append({
                "segment_size": mss,
                "rewriter": "streaming" if streaming else "per-segment (netsed)",
                "hit_rate": hits / trials,
            })
    return {"rows": rows, "pattern_len": len(pattern)}


# ----------------------------------------------------------------------
# E-WIRED — eavesdropping and MITM prerequisites, wired vs wireless
# ----------------------------------------------------------------------

def exp_wired_vs_wireless(seed: int = 1) -> dict:
    """§1.1/§1.2 quantified: what a passive attacker overhears on each
    fabric, and which MITM paths were executable with what access."""
    from repro.attacks.dns_spoof import DnsSpoofer
    from repro.attacks.wired_mitm import wired_vs_wireless_paths
    from repro.hosts.services import DnsResolver
    from repro.netstack.addressing import IPv4Address
    from repro.netstack.ipv4 import PROTO_UDP

    sniff_rows = []
    # Wired: victim sends 50 datagrams to the gateway-side server; how
    # many does a promiscuous bystander port capture?
    for fabric in ("switch", "hub"):
        office = build_wired_office(seed=seed, fabric=fabric)
        cap = office.attacker.enable_capture()
        office.attacker.l2_tap = lambda iface, s, d, et, p: None  # promiscuous on
        sock = office.victim.udp_socket()
        # Teach the switch the server's port first.
        office.victim.ping(TARGET_IP)
        office.sim.run_for(1.0)
        seen_before = cap.count(src=IPv4Address("10.0.0.23"))
        # The tap counts L2 frames; use a dedicated counter.
        overheard = {"n": 0}

        def tap(iface, smac, dmac, ethertype, payload, _o=overheard):
            if ethertype == 0x0800 and payload[12:16] == IPv4Address("10.0.0.23").bytes:
                _o["n"] += 1

        office.attacker.l2_tap = tap
        for i in range(50):
            sock.sendto(b"confidential-%d" % i, TARGET_IP, 9999)
        office.sim.run_for(5.0)
        sniff_rows.append({
            "medium": f"wired ({fabric})",
            "victim_datagrams": 50,
            "overheard": overheard["n"],
        })
    # Wireless: same victim workload on the open-air corp WLAN.
    scenario = build_corp_scenario(seed=seed, with_rogue=False, wep=False)
    sniffer = MonitorSniffer(scenario.sim, scenario.medium, Position(20.0, 5.0))
    victim = scenario.add_victim()
    scenario.sim.run_for(5.0)
    sock = victim.udp_socket()
    for i in range(50):
        sock.sendto(b"confidential-%d" % i, TARGET_IP, 9999)
    scenario.sim.run_for(5.0)
    overheard_air = sum(
        1 for _, et, payload in sniffer.decrypted_payloads(
            WepKey(b"XXXXX"))  # key unused for open network
        if b"confidential-" in payload
    )
    # decrypted_payloads with a key on an OPEN network: protected=False
    # frames pass straight through, so the count is genuine.
    sniff_rows.append({
        "medium": "wireless (open air)",
        "victim_datagrams": 50,
        "overheard": overheard_air,
    })

    # DNS-spoof executability.
    dns_rows = []
    for fabric in ("hub", "switch"):
        office = build_wired_office(seed=seed + 3, fabric=fabric)
        resolver = DnsResolver(office.victim, "10.0.0.53")
        if fabric == "switch":
            office.victim.ping("10.0.0.66")
            office.victim.ping("10.0.0.53")
            office.sim.run_for(2.0)
        spoofer = DnsSpoofer(office.attacker, "eth0",
                             lies={"downloads.example.com": "10.0.0.66"})
        spoofer.arm()
        answers: list = []
        resolver.resolve("downloads.example.com", answers.append)
        office.sim.run_for(5.0)
        dns_rows.append({
            "fabric": fabric,
            "queries_visible": spoofer.queries_seen,
            "spoof_won": bool(answers and answers[0] == IPv4Address("10.0.0.66")),
        })

    taxonomy_rows = [{
        "path": p.name, "medium": p.medium, "steps": p.step_count,
        "access_required": p.access_required,
    } for p in wired_vs_wireless_paths()]
    return {"sniffing": sniff_rows, "dns_spoof": dns_rows,
            "mitm_paths": taxonomy_rows}


# ----------------------------------------------------------------------
# E-VPNOH — UDP over the TCP tunnel: the §5.3 drawback
# ----------------------------------------------------------------------

def exp_vpn_overhead(loss_rates=(0.0, 0.05, 0.10, 0.20),
                     duration_s: float = 20.0, rate_pps: float = 40.0) -> dict:
    """CBR UDP through nothing / PPP-over-SSH (TCP) / ESP (UDP) as the
    radio loses frames.  Shape: the TCP tunnel's latency and backlog
    explode with loss (TCP-over-TCP meltdown); the UDP tunnel tracks
    native behaviour."""
    from repro.defense.ipsec import EspTunnelClient, EspTunnelServer
    from repro.workloads.traffic import CbrUdpStream

    rows = []
    for loss in loss_rates:
        for transport in ("native", "ppp-ssh (tcp)", "esp (udp)"):
            scenario = build_corp_scenario(seed=1313, with_rogue=False)
            scenario.medium.loss_model.extra_loss = loss
            victim = scenario.add_victim()
            scenario.sim.run_for(6.0)
            if not victim.wlan.associated:
                # Heavy loss can stall association; retry window.
                scenario.sim.run_for(20.0)
            vpn = None
            if transport == "ppp-ssh (tcp)":
                vpn = scenario.connect_vpn(victim)
                scenario.sim.run_for(10.0)
                if not vpn.connected:
                    rows.append({"radio_loss": loss, "transport": transport,
                                 "delivery": 0.0, "p50_ms": None,
                                 "p95_ms": None, "note": "tunnel never established"})
                    continue
            elif transport == "esp (udp)":
                EspTunnelServer(scenario.vpn_host, b"esp-bench",
                                server_inner_ip="10.9.0.1", nat_ip=VPN_IP)
                EspTunnelClient(victim, VPN_IP, b"esp-bench",
                                inner_ip="10.9.0.100", server_inner_ip="10.9.0.1")
                scenario.sim.run_for(2.0)
            stream = CbrUdpStream(victim, scenario.target_server, TARGET_IP,
                                  port=9050, rate_pps=rate_pps)
            stream.start(duration_s=duration_s)
            scenario.sim.run_for(duration_s + 40.0)  # drain queues
            stream.stop()
            rows.append({
                "radio_loss": loss,
                "transport": transport,
                "delivery": round(stream.delivery_ratio, 3),
                "p50_ms": round(stream.latency_quantile(0.5) * 1000, 1)
                          if stream.latencies_s else None,
                "p95_ms": round(stream.latency_quantile(0.95) * 1000, 1)
                          if stream.latencies_s else None,
                "note": "",
            })
    return {"rows": rows}


# ----------------------------------------------------------------------
# E-DETECT — sequence-control monitoring
# ----------------------------------------------------------------------

def exp_rogue_detection(trials: int = 4, observe_s: float = 20.0) -> dict:
    rows = []
    for gap_threshold in (16, 64, 256):
        def tpr_trial(seed: int) -> float:
            scenario = build_corp_scenario(seed=seed)
            sniffer = MonitorSniffer(scenario.sim, scenario.medium,
                                     Position(15.0, 5.0))
            scenario.sim.run_for(observe_s)
            verdict = SeqCtlMonitor(sniffer.capture,
                                    gap_threshold=gap_threshold
                                    ).analyze_transmitter(scenario.ap.bssid)
            return 1.0 if verdict.spoofed else 0.0

        def fpr_trial(seed: int) -> float:
            scenario = build_corp_scenario(seed=seed, with_rogue=False)
            sniffer = MonitorSniffer(scenario.sim, scenario.medium,
                                     Position(15.0, 5.0))
            victim = scenario.add_victim()
            scenario.sim.run_for(observe_s)
            return 1.0 if SeqCtlMonitor(
                sniffer.capture, gap_threshold=gap_threshold).flagged() else 0.0

        tpr = run_trials(trials, tpr_trial, seed_base=14000 + gap_threshold)
        fpr = run_trials(trials, fpr_trial, seed_base=15000 + gap_threshold)
        rows.append({
            "gap_threshold": gap_threshold,
            "true_positive_rate": tpr.rate,
            "false_positive_rate": fpr.rate,
        })
    return {"rows": rows}


# ----------------------------------------------------------------------
# E-PROM — network promiscuity
# ----------------------------------------------------------------------

def exp_network_promiscuity(stage1_seeds=(1, 2, 3), chain_trials: int = 3000) -> dict:
    """Stage 1: measure the per-hostile-visit compromise probability in
    the full hotspot simulation.  Stage 2: sample roaming chains."""
    from repro.workloads.roaming import simulate_roaming_client

    # Stage 1 (full fidelity): unpatched browser visits the news site
    # through a hostile hotspot.
    compromised = 0
    for seed in stage1_seeds:
        world = build_hotspot_scenario(seed=seed, hostile=True)
        station, browser = world.add_visitor(patched=False)
        browser.visit("http://news.example.com/index.html")
        world.sim.run_for(40.0)
        compromised += int(browser.compromised)
    s_measured = compromised / len(stage1_seeds)

    rows = []
    rng = SimRandom(16000)
    for p in (0.1, 0.3):
        for domains in (1, 3, 5, 10, 20):
            hits = sum(
                simulate_roaming_client(
                    rng, domains=domains, hostile_fraction=p,
                    per_visit_compromise_prob=s_measured).compromised
                for _ in range(chain_trials))
            analytic = 1 - (1 - p * s_measured) ** domains
            rows.append({
                "hostile_fraction": p,
                "domains_visited": domains,
                "p_compromised_no_vpn": round(hits / chain_trials, 3),
                "analytic": round(analytic, 3),
                "p_compromised_always_on_vpn": 0.0,  # measured by FIG3/E-CNN
            })
    return {"rows": rows, "per_visit_compromise_prob": s_measured}


# ----------------------------------------------------------------------
# E-CNN — the trusted-website scenario
# ----------------------------------------------------------------------

def exp_trusted_website(seed: int = 1) -> dict:
    rows = []
    for arm, hostile, patched in (
        ("honest hotspot, unpatched", False, False),
        ("hostile hotspot, unpatched", True, False),
        ("hostile hotspot, patched", True, True),
    ):
        world = build_hotspot_scenario(seed=seed, hostile=hostile)
        station, browser = world.add_visitor(patched=patched)
        visit = browser.visit("http://news.example.com/index.html")
        world.sim.run_for(40.0)
        rows.append({
            "arm": arm,
            "page_loaded": visit.status == 200,
            "tampered_in_flight": world.hotspot.tampered_segments > 0,
            "exploit_executed": visit.exploit_executed,
            "compromised": browser.compromised,
        })
    return {"rows": rows}


# ----------------------------------------------------------------------
# E-8021X — 802.1X and WPA still admit the right rogue
# ----------------------------------------------------------------------

def exp_dot1x_wpa_gap(seed: int = 1) -> dict:
    from repro.defense.dot1x import Dot1xAuthenticator, Dot1xSupplicant, EapAuthServer
    from repro.defense.wpa import (WpaPskAuthenticator, WpaPskSupplicant,
                                   psk_from_passphrase)
    from repro.dot11.mac import MacAddress

    rng = SimRandom(seed)
    rows = []

    server = EapAuthServer({"alice": b"pw"}, rng.substream("eap"))
    supplicant = Dot1xSupplicant("alice", b"pw")
    legit = Dot1xAuthenticator(server)
    rows.append({"network": "802.1X legitimate AP", "attacker_holds": "n/a",
                 "client_accepts_network": legit.authenticate(supplicant),
                 "network_authenticated_to_client": False})

    rogue_supplicant = Dot1xSupplicant("alice", b"pw")
    rogue = Dot1xAuthenticator(None, rogue=True)
    rows.append({"network": "802.1X ROGUE AP (no server)", "attacker_holds": "nothing",
                 "client_accepts_network": rogue.authenticate(rogue_supplicant),
                 "network_authenticated_to_client": False})

    psk = psk_from_passphrase("office-psk", "CORP")
    ap_mac = MacAddress("aa:bb:cc:dd:00:01")
    sta_mac = MacAddress("00:02:2d:00:00:07")

    outsider = WpaPskAuthenticator(psk_from_passphrase("guess", "CORP"),
                                   ap_mac, rng.substream("w1"))
    sta1 = WpaPskSupplicant(psk, sta_mac, rng.substream("w2"))
    rows.append({"network": "WPA-PSK ROGUE, outsider", "attacker_holds": "no PSK",
                 "client_accepts_network": outsider.handshake(sta1) is not None,
                 "network_authenticated_to_client": True})

    insider = WpaPskAuthenticator(psk, ap_mac, rng.substream("w3"))
    sta2 = WpaPskSupplicant(psk, sta_mac, rng.substream("w4"))
    rows.append({"network": "WPA-PSK ROGUE, valid client", "attacker_holds": "the PSK",
                 "client_accepts_network": insider.handshake(sta2) is not None,
                 "network_authenticated_to_client": True})
    return {"rows": rows}


# ----------------------------------------------------------------------
# X-PATH — extension: victim-side first-hop rogue detection
# ----------------------------------------------------------------------

def exp_first_hop_detection(trials: int = 4) -> dict:
    """TTL=1 probe detection rates: rogue present vs clean network.

    Extension experiment (not a paper figure): the parprouted rogue
    routes, so it decrements TTL; the victim's first-hop probe exposes
    it.  Measured as TPR (rogue named by its own TIME_EXCEEDED) and FPR
    (clean network flagged).
    """
    from repro.defense.pathcheck import check_first_hop

    def tpr_trial(seed: int) -> float:
        scenario = build_corp_scenario(seed=seed)
        victim = scenario.add_victim()
        scenario.sim.run_for(5.0)
        if victim.associated_channel != 6:
            return 0.0  # not captured: nothing to detect (counts against TPR)
        results: list = []
        check_first_hop(victim, "10.0.0.1", results.append)
        scenario.sim.run_for(5.0)
        return 1.0 if results and results[0].interloper is not None else 0.0

    def fpr_trial(seed: int) -> float:
        scenario = build_corp_scenario(seed=seed, with_rogue=False)
        victim = scenario.add_victim()
        scenario.sim.run_for(5.0)
        results: list = []
        check_first_hop(victim, "10.0.0.1", results.append)
        scenario.sim.run_for(5.0)
        return 1.0 if results and results[0].suspicious else 0.0

    tpr = run_trials(trials, tpr_trial, seed_base=17000)
    fpr = run_trials(trials, fpr_trial, seed_base=18000)
    return {"rows": [
        {"network": "rogue in path", "probe_flags_rogue": tpr.rate,
         "interloper_named": True},
        {"network": "clean", "probe_flags_rogue": fpr.rate,
         "interloper_named": False},
    ]}


# ----------------------------------------------------------------------
# X-CONTAIN — extension: active containment effectiveness
# ----------------------------------------------------------------------

def exp_containment(trials: int = 3, horizon_s: float = 60.0) -> dict:
    """Victim eviction time vs containment injection rate.

    Extension experiment (§6's "countering" future work): the WIDS
    sensor deauths the rogue BSS; faster injection evicts captured
    victims sooner and holds them on the legitimate AP.
    """
    from repro.defense.containment import ContainmentSensor

    rows = []
    for rate_hz in (0.0, 2.0, 10.0):
        evictions = TrialStats()
        times = TrialStats()

        def trial(seed: int) -> float:
            scenario = build_corp_scenario(seed=seed)
            victim = scenario.add_victim()
            scenario.sim.run_for(5.0)
            if victim.associated_channel != 6:
                return 0.0
            sensor = None
            if rate_hz > 0:
                sensor = ContainmentSensor(
                    scenario.sim, scenario.medium, Position(35.0, 5.0),
                    authorized=[(scenario.ap.bssid, 1)],
                    containment_rate_hz=rate_hz)
                sensor.start()
            start = scenario.sim.now
            evicted = 0.0
            for _ in range(int(horizon_s)):
                scenario.sim.run_for(1.0)
                if victim.associated_channel == 1:
                    times.add(scenario.sim.now - start)
                    evicted = 1.0
                    break
            if sensor:
                sensor.stop()
            return evicted

        stats = run_trials(trials, trial, seed_base=19000 + int(rate_hz * 10))
        rows.append({
            "containment_rate_hz": rate_hz,
            "eviction_rate": stats.rate,
            "mean_time_to_evict_s": round(times.mean, 1) if times.n else None,
        })
    return {"rows": rows}
