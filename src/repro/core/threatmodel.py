"""The §1–§3 threat taxonomy, as data.

"wireless networks are prone to jamming, spoofing, rogue access
points, and possible Man-in-the-middle attacks" (§1) — and the paper's
thesis is that the *same* threats exist on wires with very different
prerequisites.  Each entry records both sides and points to the module
that implements/demonstrates it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Threat", "ThreatApplicability", "threat_taxonomy"]


class ThreatApplicability(enum.Enum):
    """How practical a threat is on a given medium."""

    IMPRACTICAL = "impractical"
    REQUIRES_INSIDE_ACCESS = "requires-inside-access"
    PRACTICAL = "practical"
    TRIVIAL = "trivial"


@dataclass(frozen=True)
class Threat:
    name: str
    paper_anchor: str
    wired: ThreatApplicability
    wireless: ThreatApplicability
    rationale: str
    demonstrated_by: str  # module implementing the demonstration

    @property
    def wireless_amplified(self) -> bool:
        """Is this threat strictly easier on wireless?"""
        order = list(ThreatApplicability)
        return order.index(self.wireless) > order.index(self.wired)


def threat_taxonomy() -> list[Threat]:
    return [
        Threat(
            name="eavesdropping",
            paper_anchor="§1.1",
            wired=ThreatApplicability.REQUIRES_INSIDE_ACCESS,
            wireless=ThreatApplicability.TRIVIAL,
            rationale="switched LANs isolate unicast; routers are hard to "
                      "reprogram; radio is broadcast to anyone in range",
            demonstrated_by="repro.attacks.sniffer",
        ),
        Threat(
            name="jamming",
            paper_anchor="§1",
            wired=ThreatApplicability.IMPRACTICAL,
            wireless=ThreatApplicability.PRACTICAL,
            rationale="a wire must be cut; the ISM band only needs noise",
            demonstrated_by="repro.radio.interference",
        ),
        Threat(
            name="spoofing",
            paper_anchor="§1, §2.1",
            wired=ThreatApplicability.REQUIRES_INSIDE_ACCESS,
            wireless=ThreatApplicability.TRIVIAL,
            rationale="MAC and management frames carry no authenticator on "
                      "either medium, but wireless needs no jack",
            demonstrated_by="repro.attacks.mac_spoof, repro.attacks.deauth",
        ),
        Threat(
            name="rogue-access-point",
            paper_anchor="§1.3.1, §4",
            wired=ThreatApplicability.IMPRACTICAL,
            wireless=ThreatApplicability.PRACTICAL,
            rationale="no wired analogue: the client chooses its attachment "
                      "point by radio signal with no mutual authentication",
            demonstrated_by="repro.attacks.rogue_ap",
        ),
        Threat(
            name="man-in-the-middle",
            paper_anchor="§1.2, §4",
            wired=ThreatApplicability.REQUIRES_INSIDE_ACCESS,
            wireless=ThreatApplicability.PRACTICAL,
            rationale="wired MITM needs ARP/DNS spoofing from inside or a "
                      "gateway compromise; wireless MITM is an AP and a "
                      "bridge in a parking lot",
            demonstrated_by="repro.attacks.rogue_ap, repro.attacks.arp_spoof, "
                            "repro.attacks.dns_spoof",
        ),
        Threat(
            name="hostile-hotspot",
            paper_anchor="§1.3.2, §5.1",
            wired=ThreatApplicability.IMPRACTICAL,
            wireless=ThreatApplicability.TRIVIAL,
            rationale="roaming clients voluntarily attach to infrastructure "
                      "owned by strangers (network promiscuity, §3.2)",
            demonstrated_by="repro.attacks.hotspot",
        ),
    ]
