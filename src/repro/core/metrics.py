"""Experiment-level metric records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.httpsim.browser import DownloadOutcome

__all__ = ["CaptureMetrics", "DownloadMetrics", "TunnelMetrics"]


@dataclass
class CaptureMetrics:
    """How a victim's association played out."""

    associated: bool = False
    on_rogue: bool = False
    time_to_capture_s: Optional[float] = None
    deauths_received: int = 0
    reassociations: int = 0


@dataclass
class DownloadMetrics:
    """Outcome of the §4.1 download flow, condensed for tables."""

    attempted: bool
    md5_check_passed: Optional[bool]
    executed: bool
    trojaned: bool
    compromised: bool

    @classmethod
    def from_outcome(cls, outcome: DownloadOutcome) -> "DownloadMetrics":
        return cls(
            attempted=not outcome.failed,
            md5_check_passed=outcome.md5_ok,
            executed=outcome.executed,
            trojaned=outcome.trojaned,
            compromised=outcome.compromised,
        )


@dataclass
class TunnelMetrics:
    """Datagram-service quality through a tunnel (E-VPNOH)."""

    offered: int = 0
    delivered: int = 0
    latencies_s: list = field(default_factory=list)

    @property
    def delivery_ratio(self) -> float:
        return self.delivered / self.offered if self.offered else 0.0

    @property
    def mean_latency_s(self) -> float:
        return (sum(self.latencies_s) / len(self.latencies_s)
                if self.latencies_s else float("nan"))

    def latency_quantile(self, q: float) -> float:
        if not self.latencies_s:
            return float("nan")
        ordered = sorted(self.latencies_s)
        idx = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[idx]
