"""Scenario builders: the paper's figures as constructible worlds.

Every experiment and benchmark builds one of these instead of
hand-wiring hosts, so topology and parameters live in exactly one
place.  Coordinates (metres): the legitimate AP at the origin, the
office extending east; the rogue parks near the victim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.attacks.rogue_ap import RogueAccessPoint
from repro.attacks.trojan import build_trojan_site
from repro.crypto.keystore import KeyStore
from repro.crypto.md5 import md5_hexdigest
from repro.crypto.wep import WepKey
from repro.defense.vpn import VpnClient, VpnServer
from repro.dot11.mac import MacAddress
from repro.hosts.access_point import AccessPoint
from repro.hosts.ap_core import MacFilter
from repro.hosts.gateway import Wan, build_wan
from repro.hosts.host import Host
from repro.hosts.nic import WiredInterface
from repro.hosts.services import DnsServerService, DnsResolver
from repro.hosts.station import Station
from repro.httpsim.browser import Browser, DownloadOutcome
from repro.httpsim.content import Website, make_download_page, make_news_page
from repro.httpsim.downloads import make_binary
from repro.httpsim.server import HttpServer
from repro.netstack.dns import DnsZone
from repro.netstack.ethernet import Hub, LanSegment, Switch
from repro.radio.medium import Medium
from repro.radio.propagation import Position
from repro.sim.kernel import Simulator

__all__ = [
    "CorpScenario",
    "HotspotScenario",
    "WiredOfficeScenario",
    "build_corp_scenario",
    "build_hotspot_scenario",
    "build_wired_office",
]

# Canonical addresses, following Fig. 1 / Appendix A where given.
LEGIT_BSSID = MacAddress("aa:bb:cc:dd:00:01")
TARGET_IP = "198.51.100.80"
EVIL_IP = "198.51.100.66"
VPN_IP = "198.51.100.22"
DNS_IP = "198.51.100.53"
TARGET_HOSTNAME = "downloads.corp.example"
VICTIM_IP = "10.0.0.23"
GATEWAY_IP = "10.0.0.1"
VPN_SHARED_SECRET = b"corp-vpn-out-of-band-secret"
VPN_SERVER_NAME = "vpn.corp.example"


@dataclass
class CorpScenario:
    """The Fig. 1 world: corporate WLAN, WAN servers, optional rogue."""

    sim: Simulator
    medium: Medium
    lan: Switch
    wan: Wan
    ap: AccessPoint
    wep: Optional[WepKey]
    target_server: Host
    evil_server: Host
    target_site: Website
    evil_site: Website
    binary: bytes
    trojan: bytes
    real_md5: str
    fake_md5: str
    rogue: Optional[RogueAccessPoint] = None
    vpn_host: Optional[Host] = None
    vpn_server: Optional[VpnServer] = None
    dns_host: Optional[Host] = None
    zone: Optional[DnsZone] = None
    victims: list[Station] = field(default_factory=list)

    def resolver_for(self, station: Station) -> DnsResolver:
        """A stub resolver pointed at the corp DNS server."""
        return DnsResolver(station, DNS_IP)

    # ------------------------------------------------------------------
    # population
    # ------------------------------------------------------------------
    def add_victim(self, *, position: Position = Position(40.0, 0.0),
                   ip: str = VICTIM_IP, name: str = "victim",
                   policy=None, wep_key="default") -> Station:
        """A client configured per §4.1 (SSID CORP, WEP key entered)."""
        station = Station(self.sim, name, self.medium, position)
        key = self.wep if wep_key == "default" else wep_key
        station.connect("CORP", wep_key=key, ip=ip, gateway=GATEWAY_IP,
                        policy=policy)
        self.victims.append(station)
        return station

    def arm_download_mitm(self, *, streaming: bool = False) -> None:
        """Install the §4.1 netsed rules on the rogue."""
        assert self.rogue is not None, "scenario was built without a rogue"
        self.rogue.install_download_mitm(TARGET_IP, rules=[
            f"s/href=file.tgz/href=http:%2f%2f{EVIL_IP}%2ffile.tgz/",
            f"s/{self.real_md5}/{self.fake_md5}/",
        ], streaming=streaming)

    def connect_vpn(self, station: Station) -> VpnClient:
        """Give a victim the paper's §5 protection."""
        assert self.vpn_server is not None, "scenario was built without a VPN endpoint"
        keystore = KeyStore()
        keystore.enroll(VPN_SERVER_NAME, VPN_SHARED_SECRET)
        client = VpnClient(station, keystore, VPN_SERVER_NAME, VPN_IP)
        client.connect()
        return client

    def run_download_experiment(self, station: Station,
                                settle_s: float = 60.0) -> DownloadOutcome:
        """The §4.1 victim behaviour: fetch page, verify MD5, run binary."""
        browser = Browser(station)
        outcome = browser.download_and_run(f"http://{TARGET_IP}/download.html")
        self.sim.run_for(settle_s)
        return outcome


def build_corp_scenario(
    seed: int = 0,
    *,
    wep: bool = True,
    wep_bits: int = 40,
    mac_filter_macs: Optional[list[MacAddress]] = None,
    with_rogue: bool = True,
    rogue_channel: int = 6,
    rogue_position: Position = Position(38.0, 0.0),
    rogue_wep: str = "same",     # "same" | "none" | "cracked-later"
    rogue_mirror_seqctl: bool = False,
    rogue_beacon_jitter_s: float = 0.0,
    rogue_match_beacon_cadence: bool = False,
    with_vpn_endpoint: bool = True,
    settle_s: float = 4.0,
) -> CorpScenario:
    """Assemble Fig. 1 (plus WAN servers for Fig. 2 and Fig. 3)."""
    sim = Simulator(seed=seed)
    medium = Medium(sim)
    lan = Switch(sim, "corp-lan")
    wep_key = WepKey.from_passphrase("SECRET", bits=wep_bits) if wep else None
    mac_filter = MacFilter(mac_filter_macs) if mac_filter_macs is not None else None
    ap = AccessPoint(sim, medium, "corp-ap", bssid=LEGIT_BSSID, ssid="CORP",
                     channel=1, position=Position(0.0, 0.0), wep_key=wep_key,
                     mac_filter=mac_filter)
    ap.attach_uplink(lan)
    wan = build_wan(sim, lan, lan_gateway_ip=GATEWAY_IP)

    target = wan.add_server(sim, "target-web", TARGET_IP)
    binary = make_binary("file.tgz", 4096, sim.rng.substream("binary"))
    site = Website("target")
    real_md5 = make_download_page(site, binary=binary)
    HttpServer(target, site, 80)

    evil = wan.add_server(sim, "evil-web", EVIL_IP)
    evil_site, trojan, _ = build_trojan_site(binary)
    fake_md5 = md5_hexdigest(trojan)
    HttpServer(evil, evil_site, 80)

    dns_host = wan.add_server(sim, "corp-dns", DNS_IP)
    zone = DnsZone({TARGET_HOSTNAME: TARGET_IP})
    DnsServerService(dns_host, zone)

    scenario = CorpScenario(
        sim=sim, medium=medium, lan=lan, wan=wan, ap=ap, wep=wep_key,
        target_server=target, evil_server=evil, target_site=site,
        evil_site=evil_site,
        binary=binary, trojan=trojan, real_md5=real_md5, fake_md5=fake_md5,
        dns_host=dns_host, zone=zone,
    )

    if with_vpn_endpoint:
        vpn_host = wan.add_server(sim, "vpn-endpoint", VPN_IP)
        server_ks = KeyStore()
        server_ks.enroll("victim", VPN_SHARED_SECRET)
        scenario.vpn_host = vpn_host
        scenario.vpn_server = VpnServer(vpn_host, server_ks, nat_ip=VPN_IP)

    if with_rogue:
        rogue_key = wep_key if rogue_wep == "same" else None
        scenario.rogue = RogueAccessPoint(
            sim, medium, rogue_position,
            clone_bssid=LEGIT_BSSID, legit_channel=1,
            rogue_channel=rogue_channel, wep_key=rogue_key,
            mirror_seqctl=rogue_mirror_seqctl,
            beacon_jitter_s=rogue_beacon_jitter_s,
            match_beacon_cadence=rogue_match_beacon_cadence,
        )
        scenario.rogue.start()

    sim.run_for(settle_s)
    return scenario


# ----------------------------------------------------------------------
# hostile hotspot (§1.3.2, §5.1)
# ----------------------------------------------------------------------

@dataclass
class HotspotScenario:
    """An airport hotspot in front of the public internet."""

    sim: Simulator
    medium: Medium
    hotspot: "object"              # attacks.hotspot.HostileHotspot
    news_server: Host
    news_site: Website
    zone: DnsZone

    def add_visitor(self, *, name: str = "traveler",
                    position: Position = Position(5.0, 0.0),
                    patched: bool = False) -> tuple[Station, Browser]:
        """A roaming client that joins the hotspot via DHCP."""
        from repro.hosts.services import DhcpClientService
        station = Station(self.sim, name, self.medium, position)
        resolver_box: dict = {}

        def configured(lease) -> None:
            resolver_box["resolver"] = DnsResolver(station, lease.dns_server)

        dhcp = DhcpClientService(station, "wlan0", on_configured=configured)
        station.wlan.join(self.hotspot.ssid)
        station.wlan.on_associated = lambda *_: dhcp.start()
        self.sim.run_for(6.0)
        resolver = resolver_box.get("resolver")
        browser = Browser(station, resolver=resolver, patched=patched)
        return station, browser


def build_hotspot_scenario(seed: int = 0, *, hostile: bool = True,
                           settle_s: float = 2.0) -> HotspotScenario:
    """A hotspot (honest or hostile) in front of a trusted news site."""
    from repro.attacks.hotspot import HostileHotspot
    from repro.httpsim.browser import EXPLOIT_MARKER

    sim = Simulator(seed=seed)
    medium = Medium(sim)
    backbone = Switch(sim, "internet")
    # Upstream router for the hotspot's DSL line.
    from repro.hosts.gateway import Router
    isp = Router(sim, "isp-router")
    isp.add_wired("up0", backbone, "203.0.113.1")

    news = Host(sim, "news-server")
    mac = MacAddress.random(sim.rng.substream("mac.news"))
    iface = WiredInterface("eth0", mac)
    iface.attach_segment(backbone)
    news.add_interface(iface)
    iface.configure_ip("203.0.113.80")
    news.routing.add_default(isp.interfaces["up0"].ip, "eth0")
    news_site = Website("world-news")
    # §5.1: trusted site; benign widget script; page close-delimited the
    # way big dynamic news frontends were.
    make_news_page(news_site, headline="Markets calm; nothing exploited")
    news_site._static["/index.html"] = (
        news_site._static["/index.html"][0],
        news_site._static["/index.html"][1],
        False,
    )
    HttpServer(news, news_site, 80)

    zone = DnsZone({"news.example.com": "203.0.113.80"})
    tamper = ([(b"renderWeatherWidget()", b"exploit(0xdead)   ")]
              if hostile else [])
    hotspot = HostileHotspot(
        sim, medium, Position(0.0, 0.0), backbone,
        upstream_ip="203.0.113.7", upstream_gateway="203.0.113.1",
        zone=zone, tamper_rules=tamper,
    )
    sim.run_for(settle_s)
    return HotspotScenario(sim=sim, medium=medium, hotspot=hotspot,
                           news_server=news, news_site=news_site, zone=zone)


# ----------------------------------------------------------------------
# wired office (E-WIRED baselines)
# ----------------------------------------------------------------------

@dataclass
class WiredOfficeScenario:
    """A wired LAN (hub or switch) with victim, attacker, gateway, servers."""

    sim: Simulator
    segment: LanSegment
    wan: Wan
    victim: Host
    attacker: Host
    dns_server: Host
    zone: DnsZone

    @property
    def gateway_ip(self):
        return self.wan.lan_gateway_ip


def build_wired_office(seed: int = 0, *, fabric: str = "switch",
                       settle_s: float = 1.0) -> WiredOfficeScenario:
    """§1.1's wired comparison topology.

    ``fabric`` is "switch" (the corporate norm the paper credits with
    resisting sniffing) or "hub" (the shared-medium case).
    """
    sim = Simulator(seed=seed)
    segment: LanSegment = (Switch(sim, "office") if fabric == "switch"
                           else Hub(sim, "office"))
    wan = build_wan(sim, segment)

    def wired_host(name: str, ip: str, promiscuous: bool = False) -> Host:
        host = Host(sim, name)
        mac = MacAddress.random(sim.rng.substream(f"mac.{name}"))
        iface = WiredInterface("eth0", mac, promiscuous=promiscuous)
        iface.attach_segment(segment)
        host.add_interface(iface)
        iface.configure_ip(ip)
        host.routing.add_default(wan.lan_gateway_ip, "eth0")
        return host

    victim = wired_host("victim", "10.0.0.23")
    attacker = wired_host("attacker", "10.0.0.66", promiscuous=True)
    dns_server = wired_host("dns", "10.0.0.53")
    zone = DnsZone({"downloads.example.com": TARGET_IP})
    DnsServerService(dns_server, zone)

    target = wan.add_server(sim, "target-web", TARGET_IP)
    binary = make_binary("file.tgz", 2048, sim.rng.substream("binary"))
    site = Website("target")
    make_download_page(site, binary=binary)
    HttpServer(target, site, 80)

    sim.run_for(settle_s)
    return WiredOfficeScenario(sim=sim, segment=segment, wan=wan,
                               victim=victim, attacker=attacker,
                               dns_server=dns_server, zone=zone)
