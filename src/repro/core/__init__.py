"""The paper's contribution layer.

Everything below this package is substrate (radios, stacks, attacks,
defenses).  This package composes them into the paper's actual
content:

* :mod:`repro.core.scenario` — executable versions of the paper's
  figures: the corporate WLAN of Fig. 1, the download MITM of Fig. 2,
  the VPN-through-rogue deployment of Fig. 3, plus the hostile
  hotspot and wired-office comparison settings.
* :mod:`repro.core.threatmodel` — the §1–§3 threat taxonomy with
  wired/wireless applicability.
* :mod:`repro.core.campaign` — multi-seed trial runner.
* :mod:`repro.core.metrics` / :mod:`repro.core.report` — result
  aggregation and table rendering for the benchmark harness.
"""

from repro.core.campaign import TrialStats, run_trials
from repro.core.metrics import CaptureMetrics, DownloadMetrics
from repro.core.report import format_table
from repro.core.scenario import (
    CorpScenario,
    HotspotScenario,
    WiredOfficeScenario,
    build_corp_scenario,
    build_hotspot_scenario,
    build_wired_office,
)
from repro.core.threatmodel import Threat, ThreatApplicability, threat_taxonomy

__all__ = [
    "CaptureMetrics",
    "CorpScenario",
    "DownloadMetrics",
    "HotspotScenario",
    "Threat",
    "ThreatApplicability",
    "TrialStats",
    "WiredOfficeScenario",
    "build_corp_scenario",
    "build_hotspot_scenario",
    "build_wired_office",
    "format_table",
    "run_trials",
    "threat_taxonomy",
]
