"""Plain-text result tables.

Every benchmark prints its reproduction of a paper figure/claim as an
aligned table through this module, so ``pytest benchmarks/ -s`` output
and EXPERIMENTS.md stay consistent.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table", "format_kv"]


def _cell(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 *, title: str = "") -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_kv(title: str, pairs: Sequence[tuple[str, Any]]) -> str:
    """Render a key/value block (single-scenario results)."""
    width = max((len(k) for k, _ in pairs), default=1)
    lines = [title]
    for key, value in pairs:
        lines.append(f"  {key.ljust(width)} : {_cell(value)}")
    return "\n".join(lines)
