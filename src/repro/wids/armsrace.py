"""The arms race: evasion genomes vs. an adaptively retuned detector bank.

The WIDS survey's missing evaluation, run for real: a *population* of
attacker configurations (:class:`EvasionGenome` — the PR 4 evasion
knobs plus the PR 9 RSN-downgrade postures, and one benign genome as
the false-positive control) plays against the detector registry over
``generations`` of fleet campaigns.  Each generation:

1. every genome runs ``trials_per_gen`` seeded worlds through
   :func:`repro.fleet.run_campaign` (serial or process-parallel — the
   scores are bit-identical either way, pinned by test);
2. each world is scored once, single-pass, by
   :func:`~repro.wids.evaluation.evaluate_with_crossings` — confusion
   cells for every ``SWEEP`` threshold *and* the exact first-alert time
   at every threshold, so any operating point can be read off later
   without re-running anything;
3. the per-seed registries fold in (genome, seed) order into the
   generation registry (:func:`repro.fleet.reduce.merge_snapshots`
   — the merge law), which feeds the sliding-window
   :class:`~repro.wids.adaptive.AdaptiveThreshold`;
4. the *current* operating thresholds score this generation's
   detection/compromise/time-to-detect rates, then the window retunes
   the thresholds for the next generation — detectors adapt mid-
   campaign, which is the "arms race" in the name.

The output is a :class:`ParetoScorecard`: the defender's
(detector, threshold) cells as (tpr, fpr, mean-ttd) points with their
non-dominated frontier, and the attacker genomes as (detection-rate,
compromise-rate, ttd) points with *their* frontier — which evasions
are worth their complexity, and which detector configs dominate.

Telemetry rides the PR 8 stream: an optional
:class:`~repro.telemetry.stream.JsonlWriter` gets meta / per-generation
``generation`` + ``snapshot`` records / final (so ``replay()``
reproduces the campaign's merged registry bit-for-bit), and an optional
:class:`~repro.telemetry.daemon.LiveStore` serves the same view on a
live ``/metrics`` endpoint via
:class:`~repro.telemetry.daemon.MetricsExporter`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.wids.adaptive import AdaptiveThreshold
from repro.wids.detectors import DETECTORS
from repro.wids.evaluation import (GroundTruth, Scorecard, _thr_token,
                                   evaluate_with_crossings)

__all__ = [
    "ArmsRaceCampaign",
    "ArmsRaceResult",
    "ArmsRaceTrial",
    "DEFAULT_POPULATION",
    "EvasionGenome",
    "ParetoScorecard",
    "pareto_front",
]

#: Beacon-scheduler slop for a naive soft-AP rogue (hostap-style TBTT
#: misses under load) — same figure E-WIDS uses.
SLOPPY_BEACON_JITTER_S = 0.03


# ----------------------------------------------------------------------
# genomes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EvasionGenome:
    """One attacker configuration: which evasion knobs are turned.

    ``rsn_downgrade`` switches the world entirely: instead of the §4
    corp MITM rogue, the genome runs the PR 9 WPA3-transition downgrade
    world with the given posture (``"wpa2"`` or ``"open"``).  A genome
    with ``rogue=False`` is the benign control — its detections are the
    campaign's false positives.
    """

    name: str
    rogue: bool = True
    mirror_seqctl: bool = False
    match_beacon_cadence: bool = False
    beacon_jitter_s: float = 0.0
    rsn_downgrade: Optional[str] = None  # None | "wpa2" | "open"

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "rogue": self.rogue,
            "mirror_seqctl": self.mirror_seqctl,
            "match_beacon_cadence": self.match_beacon_cadence,
            "beacon_jitter_s": self.beacon_jitter_s,
            "rsn_downgrade": self.rsn_downgrade,
        }


#: The default population: the FP control, the naive §4 rogue, each
#: evasion knob alone, the full stealth playbook, and both RSN
#: downgrade postures.
DEFAULT_POPULATION: Tuple[EvasionGenome, ...] = (
    EvasionGenome("benign", rogue=False),
    EvasionGenome("naive", beacon_jitter_s=SLOPPY_BEACON_JITTER_S),
    EvasionGenome("mirror", mirror_seqctl=True,
                  beacon_jitter_s=SLOPPY_BEACON_JITTER_S),
    EvasionGenome("cadence", match_beacon_cadence=True),
    EvasionGenome("ghost", mirror_seqctl=True, match_beacon_cadence=True),
    EvasionGenome("downgrade-wpa2", rsn_downgrade="wpa2"),
    EvasionGenome("downgrade-open", rsn_downgrade="open"),
)


# ----------------------------------------------------------------------
# the per-seed trial (picklable: fleet workers fork/spawn it)
# ----------------------------------------------------------------------
class ArmsRaceTrial:
    """One genome, one seed, one world — threshold-agnostic by design.

    The trial does *not* need to know the defender's current operating
    point: the single evaluation pass records the first-crossing time at
    every ``SWEEP`` threshold, so the campaign scores whatever
    thresholds the adaptive tuner picked — this generation's or any
    other — offline from the returned payload.  That is what makes the
    generation loop cheap: retuning never re-runs a world.
    """

    def __init__(self, genome: EvasionGenome) -> None:
        self.genome = genome

    def __call__(self, seed: int) -> dict:
        if self.genome.rsn_downgrade is not None:
            capture, truth, compromised = self._run_downgrade(seed)
        else:
            capture, truth, compromised = self._run_corp(seed)
        registry = MetricsRegistry()
        _, crossings = evaluate_with_crossings(capture, truth,
                                               registry=registry)
        return {
            "genome": self.genome.name,
            "rogue": self.genome.rogue,
            "seed": seed,
            "metrics": registry.snapshot(),
            # detector -> {thr-token: first alert t or None}
            "crossings": {
                det: {_thr_token(thr): t for thr, t in per_thr.items()}
                for det, per_thr in crossings.items()
            },
            "compromised": compromised,
            "frames": len(capture.frames),
        }

    def _run_corp(self, seed: int):
        # Imported lazily: repro.core imports the radio layer which
        # imports repro.wids — a module-level import would be a cycle.
        from repro.attacks.sniffer import MonitorSniffer
        from repro.core.scenario import build_corp_scenario
        from repro.radio.propagation import Position

        g = self.genome
        scenario = build_corp_scenario(
            seed=seed,
            with_rogue=g.rogue,
            rogue_mirror_seqctl=g.mirror_seqctl,
            rogue_beacon_jitter_s=g.beacon_jitter_s,
            rogue_match_beacon_cadence=g.match_beacon_cadence,
        )
        sniffer = MonitorSniffer(scenario.sim, scenario.medium,
                                 Position(15.0, 5.0))
        if g.rogue:
            scenario.arm_download_mitm()
        victim = scenario.add_victim()
        scenario.sim.run_for(5.0)
        outcome = scenario.run_download_experiment(victim)
        truth = GroundTruth(rogue_present=g.rogue, attack_start_s=0.0)
        return sniffer.capture, truth, outcome.compromised

    def _run_downgrade(self, seed: int):
        from repro.rsn.experiment import run_downgrade_world

        world, summary = run_downgrade_world(
            seed, mode=self.genome.rsn_downgrade)
        compromised = bool(summary["on_rogue_channel"]
                           and summary["rogue_client_count"] > 0)
        truth = GroundTruth(rogue_present=True, attack_start_s=0.0)
        return world.sniffer.capture, truth, compromised


# ----------------------------------------------------------------------
# Pareto machinery
# ----------------------------------------------------------------------
def pareto_front(points: Sequence[dict], *,
                 maximize: Sequence[str] = (),
                 minimize: Sequence[str] = ()) -> List[int]:
    """Indices of the non-dominated points, in input order.

    Point ``a`` dominates ``b`` when it is no worse on every objective
    and strictly better on at least one.  ``None`` values are treated
    as worst-possible for their objective (a detector that never fires
    has no time-to-detect — nothing to brag about).
    """
    def objective_vector(p: dict) -> List[float]:
        vec = []
        for key in maximize:
            v = p.get(key)
            vec.append(float("-inf") if v is None else float(v))
        for key in minimize:
            v = p.get(key)
            vec.append(float("-inf") if v is None else -float(v))
        return vec  # uniformly "bigger is better"

    vectors = [objective_vector(p) for p in points]

    def dominates(a: List[float], b: List[float]) -> bool:
        return all(x >= y for x, y in zip(a, b)) and any(
            x > y for x, y in zip(a, b))

    return [i for i, v in enumerate(vectors)
            if not any(dominates(w, v)
                       for j, w in enumerate(vectors) if j != i)]


class ParetoScorecard:
    """Both sides of the arms race as scored points + frontiers.

    *Defender points* are every (detector, threshold) cell of the
    campaign-merged registry: ``tpr`` / ``fpr`` from the confusion
    counters, ``mean_ttd_s`` averaged over every rogue world whose
    trajectory crossed that threshold.  The defender frontier maximizes
    tpr, minimizes fpr and ttd.

    *Attacker points* are the rogue genomes: ``detection_rate`` /
    ``mean_ttd_s`` at the operating thresholds that scored each
    generation, ``compromise_rate`` from world outcomes.  The attacker
    frontier minimizes detection, maximizes compromise and ttd — an
    evasion that is detected less, compromises more, or buys time
    dominates one that doesn't.
    """

    def __init__(self, defender: List[dict], attacker: List[dict],
                 scorecard: Scorecard) -> None:
        self.defender = defender
        self.attacker = attacker
        self.scorecard = scorecard
        self.defender_front = pareto_front(
            defender, maximize=("tpr",), minimize=("fpr", "mean_ttd_s"))
        self.attacker_front = pareto_front(
            attacker, maximize=("compromise_rate", "mean_ttd_s"),
            minimize=("detection_rate",))

    def report(self) -> str:
        from repro.core.report import format_table  # cycle avoidance
        def_rows = []
        for i, p in enumerate(self.defender):
            def_rows.append([
                "*" if i in self.defender_front else "",
                p["detector"], f"{p['threshold']:g}",
                f"{p['tpr']:.3f}", f"{p['fpr']:.3f}",
                f"{p['mean_ttd_s']:.3f}" if p["mean_ttd_s"] is not None
                else "-",
            ])
        atk_rows = []
        for i, p in enumerate(self.attacker):
            atk_rows.append([
                "*" if i in self.attacker_front else "",
                p["genome"],
                f"{p['detection_rate']:.3f}", f"{p['compromise_rate']:.3f}",
                f"{p['mean_ttd_s']:.3f}" if p["mean_ttd_s"] is not None
                else "-",
                str(p["worlds"]),
            ])
        return "\n\n".join([
            format_table(
                ["front", "detector", "thr", "tpr", "fpr", "mean_ttd_s"],
                def_rows, title="defender Pareto (maximize tpr; "
                                "minimize fpr, ttd)"),
            format_table(
                ["front", "genome", "detected", "compromised",
                 "mean_ttd_s", "worlds"],
                atk_rows, title="attacker Pareto (minimize detection; "
                                "maximize compromise, ttd)"),
        ])

    def to_json_dict(self) -> dict:
        return {
            "defender": {
                "points": self.defender,
                "front": self.defender_front,
            },
            "attacker": {
                "points": self.attacker,
                "front": self.attacker_front,
            },
            "scorecard": self.scorecard.to_json_dict(),
        }


# ----------------------------------------------------------------------
# the campaign
# ----------------------------------------------------------------------
@dataclass
class ArmsRaceResult:
    """Everything a campaign produced, JSON-ready."""

    population: List[dict]
    generations: List[dict]
    thresholds_trajectory: List[Dict[str, float]]
    pareto: ParetoScorecard
    merged_metrics: MetricsRegistry
    worlds_run: int = 0

    def to_json_dict(self) -> dict:
        return {
            "population": list(self.population),
            "generations": list(self.generations),
            "thresholds_trajectory": list(self.thresholds_trajectory),
            "pareto": self.pareto.to_json_dict(),
            "metrics": self.merged_metrics.snapshot(),
            "worlds_run": self.worlds_run,
        }


class ArmsRaceCampaign:
    """Generations of genomes vs. a self-retuning detector bank.

    Parameters
    ----------
    population:
        The genomes to race (default :data:`DEFAULT_POPULATION`).
    generations, trials_per_gen:
        The campaign grid: every genome runs ``trials_per_gen`` seeds
        per generation; seeds advance per generation so no world is
        ever replayed (``seed_base + gen * trials_per_gen + i``).
    workers:
        Fleet parallelism per :func:`repro.fleet.run_campaign`.
        Results are bit-identical to ``workers=1`` (merge law).
    window:
        Sliding-window size (in generations) for
        :class:`AdaptiveThreshold`.
    writer:
        Optional :class:`~repro.telemetry.stream.JsonlWriter`;
        receives meta, per-generation ``generation`` + ``snapshot``
        records, and the final merged registry + Pareto scorecard.
    store:
        Optional :class:`~repro.telemetry.daemon.LiveStore` (serve it
        with :class:`~repro.telemetry.daemon.MetricsExporter`); updated
        with each generation's registry so ``/metrics`` tracks the
        campaign live.
    on_generation:
        ``callback(record_dict)`` after each generation — progress
        reporting without polling.
    """

    def __init__(self, *,
                 population: Sequence[EvasionGenome] = DEFAULT_POPULATION,
                 generations: int = 3, trials_per_gen: int = 4,
                 seed_base: int = 1000, workers: int = 1,
                 window: int = 4,
                 writer=None, store=None,
                 on_generation: Optional[Callable[[dict], None]] = None
                 ) -> None:
        if generations < 1 or trials_per_gen < 1:
            raise ValueError("generations and trials_per_gen must be >= 1")
        self.population = tuple(population)
        self.generations = generations
        self.trials_per_gen = trials_per_gen
        self.seed_base = seed_base
        self.workers = workers
        self.window = window
        self.writer = writer
        self.store = store
        self.on_generation = on_generation

    # ------------------------------------------------------------------
    def run(self) -> ArmsRaceResult:
        from repro.fleet import run_campaign  # lazy: scheduler is heavy

        adaptive = AdaptiveThreshold(window=self.window)
        thresholds: Dict[str, float] = {
            name: cls.default_threshold for name, cls in DETECTORS.items()}
        campaign_registry = MetricsRegistry()
        gen_records: List[dict] = []
        trajectory: List[Dict[str, float]] = [dict(thresholds)]
        # Defender ttd accumulation: (detector, thr-token) -> [sum, n]
        # over every rogue world that crossed.  Fold order is (gen,
        # genome, seed) — fully deterministic.
        ttd_sums: Dict[Tuple[str, str], List[float]] = {}
        # Attacker totals per genome across all generations.
        attacker_totals: Dict[str, Dict[str, float]] = {
            g.name: {"worlds": 0, "detected": 0, "compromised": 0,
                     "ttd_sum": 0.0, "ttd_n": 0}
            for g in self.population}
        worlds_run = 0

        if self.writer is not None:
            self.writer.write_meta(
                campaign="arms-race",
                population=[g.to_dict() for g in self.population],
                generations=self.generations,
                trials_per_gen=self.trials_per_gen,
                seed_base=self.seed_base, workers=self.workers,
                window=self.window)

        for gen in range(self.generations):
            seed_base = self.seed_base + gen * self.trials_per_gen
            gen_registry = MetricsRegistry()
            per_genome: Dict[str, dict] = {}
            for genome in self.population:
                result = run_campaign(
                    self.trials_per_gen, ArmsRaceTrial(genome),
                    seed_base=seed_base, workers=self.workers)
                if result.failures:
                    raise RuntimeError(
                        f"arms-race genome {genome.name!r} generation "
                        f"{gen}: {len(result.failures)} trial(s) failed: "
                        f"{result.failures[0]}")
                trials = [result.per_seed[s]
                          for s in sorted(result.per_seed)]
                worlds_run += len(trials)
                for trial in trials:
                    gen_registry.merge(
                        MetricsRegistry.from_snapshot(trial["metrics"]))
                per_genome[genome.name] = self._score_genome(
                    genome, trials, thresholds, ttd_sums, attacker_totals)
            adaptive.observe(gen_registry)
            campaign_registry.merge(
                MetricsRegistry.from_snapshot(gen_registry.snapshot()))
            record = {
                "generation": gen,
                "seed_base": seed_base,
                "thresholds": dict(thresholds),
                "per_genome": per_genome,
            }
            gen_records.append(record)
            if self.writer is not None:
                self.writer.write_record("generation", **record)
                self.writer.write_snapshot(gen, seed_base,
                                           gen_registry.snapshot())
            if self.store is not None:
                self.store.update(gen, seed_base, gen_registry.snapshot())
            if self.on_generation is not None:
                self.on_generation(record)
            # Retune for the next generation from the updated window.
            thresholds = adaptive.thresholds()
            trajectory.append(dict(thresholds))

        pareto = self._build_pareto(campaign_registry, ttd_sums,
                                    attacker_totals)
        result = ArmsRaceResult(
            population=[g.to_dict() for g in self.population],
            generations=gen_records,
            thresholds_trajectory=trajectory,
            pareto=pareto,
            merged_metrics=campaign_registry,
            worlds_run=worlds_run,
        )
        if self.writer is not None:
            self.writer.write_final(
                campaign_registry.snapshot(),
                scorecard=pareto.to_json_dict(),
                summary={"worlds_run": worlds_run,
                         "final_thresholds": thresholds})
        return result

    # ------------------------------------------------------------------
    @staticmethod
    def _score_genome(genome: EvasionGenome, trials: List[dict],
                      thresholds: Dict[str, float],
                      ttd_sums: Dict[Tuple[str, str], List[float]],
                      attacker_totals: Dict[str, Dict[str, float]]) -> dict:
        """One genome's generation stats at the current operating point."""
        detected = 0
        compromised = 0
        ttd_sum, ttd_n = 0.0, 0
        for trial in trials:
            crossings = trial["crossings"]
            # World-level bank decision: did *any* detector, at its
            # current tuned threshold, open an alert?
            first: Optional[float] = None
            for det, thr in thresholds.items():
                t = crossings.get(det, {}).get(_thr_token(thr))
                if t is not None and (first is None or t < first):
                    first = t
            if first is not None:
                detected += 1
                ttd_sum += first
                ttd_n += 1
            if trial["compromised"]:
                compromised += 1
            if genome.rogue:
                # Defender ttd cells: every crossed (detector, thr).
                for det, per_thr in crossings.items():
                    for token, t in per_thr.items():
                        if t is not None:
                            acc = ttd_sums.setdefault((det, token),
                                                      [0.0, 0])
                            acc[0] += t
                            acc[1] += 1
        n = len(trials)
        totals = attacker_totals[genome.name]
        totals["worlds"] += n
        totals["detected"] += detected
        totals["compromised"] += compromised
        totals["ttd_sum"] += ttd_sum
        totals["ttd_n"] += ttd_n
        return {
            "worlds": n,
            "detection_rate": detected / n,
            "compromise_rate": compromised / n,
            "mean_ttd_s": (ttd_sum / ttd_n) if ttd_n else None,
        }

    def _build_pareto(self, campaign_registry: MetricsRegistry,
                      ttd_sums: Dict[Tuple[str, str], List[float]],
                      attacker_totals: Dict[str, Dict[str, float]]
                      ) -> ParetoScorecard:
        scorecard = Scorecard.from_registry(campaign_registry)
        defender = []
        for row in scorecard.rows():
            acc = ttd_sums.get((row.detector, _thr_token(row.threshold)))
            defender.append({
                "detector": row.detector,
                "threshold": row.threshold,
                "tpr": row.tpr,
                "fpr": row.fpr,
                "mean_ttd_s": (acc[0] / acc[1]) if acc and acc[1] else None,
            })
        attacker = []
        for genome in self.population:
            if not genome.rogue:
                continue  # the FP control is not racing
            totals = attacker_totals[genome.name]
            n = int(totals["worlds"])
            attacker.append({
                "genome": genome.name,
                "worlds": n,
                "detection_rate": totals["detected"] / n if n else 0.0,
                "compromise_rate": totals["compromised"] / n if n else 0.0,
                "mean_ttd_s": (totals["ttd_sum"] / totals["ttd_n"]
                               if totals["ttd_n"] else None),
            })
        return ParetoScorecard(defender, attacker, scorecard)
