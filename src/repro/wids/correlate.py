"""Alert correlation: evidence streams in, deduplicated alerts out.

Detectors emit :class:`~repro.wids.detectors.Detection` evidence per
frame; the correlator accumulates it per ``(detector, subject)`` pair
and opens exactly one :class:`~repro.wids.alerts.Alert` the instant the
accumulated score crosses the detector's threshold.  Evidence arriving
after that *updates* the open alert (score, count, last-seen time,
contributing trace_ids) rather than duplicating it — a deauth flood is
one alert with a rising score, not ten thousand.

Fleet scale comes from :class:`ShardedCorrelator`: evidence is
partitioned by ``(subject, band)`` across independent
:class:`AlertCorrelator` shards, each of which can be fed from its own
stream, and :meth:`ShardedCorrelator.merge` reassembles the exact
serial alert order.  The merge obeys the repo's fleet merge law:

    serial == sharded == parallel

Every ingest carries a monotone stream sequence number (``seq``); an
alert records the ``seq`` of the ingest that opened it (``open_seq``),
and because the serial alert order *is* open-``seq`` order, merging the
per-shard alert lists by ``open_seq`` reproduces the unsharded
correlator bit-for-bit — alerts, scores, counts, trace_ids, and
threshold-crossing order (pinned by a hypothesis differential in
``tests/wids/test_correlate_sharded.py``).

Memory under alert floods is bounded by ``max_evidence``: when the
evidence map outgrows the bound, the oldest *alert-less* entries are
evicted in insertion order (entries with an open alert are never
evicted — the alert must keep updating).  Eviction trades exactness
for a memory ceiling: a re-appearing evicted subject restarts its
accumulation, so the sharded == unsharded law is only exact in the
default unbounded mode.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from heapq import merge as _heapq_merge
from typing import Dict, List, Optional, Tuple

from repro.wids.alerts import MAX_TRACE_IDS, Alert
from repro.wids.detectors import Detection

__all__ = ["AlertCorrelator", "ShardedCorrelator", "shard_index"]


def shard_index(subject: str, band: Optional[str], shards: int) -> int:
    """Deterministic shard routing for one ``(subject, band)`` pair.

    Uses CRC-32, *not* ``hash()`` — Python string hashing is randomized
    per process, and routing must agree across runs, workers, and the
    committed goldens.
    """
    key = f"{subject}\x00{band or ''}".encode()
    return zlib.crc32(key) % shards


@dataclass(slots=True)
class _Evidence:
    """Accumulated evidence for one (detector, subject) pair."""

    score: float = 0.0
    count: int = 0
    first_t: float = 0.0
    last_t: float = 0.0
    reason: str = ""
    trace_ids: List[int] = field(default_factory=list)
    alert: Optional[Alert] = None


class AlertCorrelator:
    """Dedup, score, and timestamp detections into alerts.

    Alerts appear in :attr:`alerts` in threshold-crossing order, which
    is deterministic because frames arrive in simulation order.

    ``max_evidence`` bounds the evidence map (``None`` = unbounded):
    past the bound, the oldest alert-less entries are evicted in
    insertion order and counted in :attr:`evicted`.
    """

    def __init__(self, *, max_evidence: Optional[int] = None) -> None:
        if max_evidence is not None and max_evidence < 1:
            raise ValueError("max_evidence must be >= 1 or None")
        self._evidence: Dict[Tuple[str, str], _Evidence] = {}
        self.alerts: List[Alert] = []
        self.max_evidence = max_evidence
        self.evicted = 0
        self._seq = 0  # monotone per-ingest stream position

    def ingest(self, detector: str, threshold: float, detection: Detection,
               t: float, trace_id: Optional[int] = None, *,
               band: Optional[str] = None,
               seq: Optional[int] = None) -> Optional[Alert]:
        """Fold one detection in; return the alert iff it *newly* opened.

        ``seq`` is the position of this event in the overall stream.
        Callers feeding one serial stream leave it ``None`` (an internal
        counter is used); a sharding front-end passes the global stream
        position so per-shard alerts can be merged back into serial
        order.  ``band`` is accepted for interface parity with
        :class:`ShardedCorrelator` (routing happens there, not here).
        """
        del band  # single-shard: no routing
        self._seq += 1
        if seq is None:
            seq = self._seq
        key = (detector, detection.subject)
        ev = self._evidence.get(key)
        if ev is None:
            ev = _Evidence(first_t=t)
            self._evidence[key] = ev
            if self.max_evidence is not None \
                    and len(self._evidence) > self.max_evidence:
                self._evict()
        ev.score += detection.score
        ev.count += 1
        ev.last_t = t
        if detection.reason:
            ev.reason = detection.reason  # keep the freshest explanation
        if trace_id is not None and len(ev.trace_ids) < MAX_TRACE_IDS \
                and trace_id not in ev.trace_ids:
            ev.trace_ids.append(trace_id)
        if ev.alert is not None:
            # The open alert *shares* the evidence trace_ids list, so the
            # update path is O(1) — no per-event list copy.
            alert = ev.alert
            alert.score = ev.score
            alert.count = ev.count
            alert.last_evidence_t = ev.last_t
            alert.reason = ev.reason
            return None
        if ev.score >= threshold:
            alert = Alert(
                detector=detector,
                subject=detection.subject,
                t=t,
                score=ev.score,
                count=ev.count,
                first_evidence_t=ev.first_t,
                last_evidence_t=ev.last_t,
                reason=ev.reason,
                trace_ids=ev.trace_ids,  # shared; to_dict() copies
                open_seq=seq,
            )
            ev.alert = alert
            self.alerts.append(alert)
            return alert
        return None

    def _evict(self) -> None:
        """Drop the oldest alert-less evidence entries past the bound.

        Insertion order *is* dict order, so the scan is oldest-first and
        deterministic.  Entries with an open alert survive — their alert
        object must keep tracking fresh evidence.
        """
        over = len(self._evidence) - self.max_evidence
        if over <= 0:
            return
        doomed = []
        for key, ev in self._evidence.items():
            if ev.alert is None:
                doomed.append(key)
                if len(doomed) >= over:
                    break
        for key in doomed:
            del self._evidence[key]
        self.evicted += len(doomed)

    def evidence_score(self, detector: str, subject: str) -> float:
        ev = self._evidence.get((detector, subject))
        return ev.score if ev is not None else 0.0

    def open_alert(self, detector: str, subject: str) -> Optional[Alert]:
        ev = self._evidence.get((detector, subject))
        return ev.alert if ev is not None else None

    @property
    def evidence_size(self) -> int:
        """Live evidence entries (the quantity ``max_evidence`` bounds)."""
        return len(self._evidence)


class ShardedCorrelator:
    """Evidence partitioned by ``(subject, band)`` across N shards.

    Drop-in for :class:`AlertCorrelator`: same :meth:`ingest` signature,
    same :attr:`alerts` property (merged lazily).  Each shard is an
    independent :class:`AlertCorrelator`, so shards can also be fed
    separately — e.g. one per fleet worker — and :meth:`merge` folds
    their alert lists back into the exact serial threshold-crossing
    order by ``open_seq``.

    Routing pins a subject to the shard chosen by the *first* band it
    was seen with: a subject later heard on another band (a multichannel
    twin roaming across the 2.4/5 GHz split) keeps routing to its pinned
    shard, which is what keeps per-subject accumulation — and therefore
    the merge law — exact.
    """

    def __init__(self, shards: int = 4, *,
                 max_evidence: Optional[int] = None) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        # max_evidence is a per-shard bound: total evidence <= shards * bound.
        self._shards: List[AlertCorrelator] = [
            AlertCorrelator(max_evidence=max_evidence) for _ in range(shards)
        ]
        self._route: Dict[str, int] = {}  # subject -> pinned shard index
        self._seq = 0
        self._merged: List[Alert] = []
        self._merged_count = -1  # cache key: total alerts at last merge

    @property
    def shards(self) -> List[AlertCorrelator]:
        return self._shards

    def shard_of(self, subject: str, band: Optional[str] = None) -> int:
        """The shard index ``subject`` routes to (pinned at first sight)."""
        idx = self._route.get(subject)
        if idx is None:
            idx = shard_index(subject, band, len(self._shards))
            self._route[subject] = idx
        return idx

    def ingest(self, detector: str, threshold: float, detection: Detection,
               t: float, trace_id: Optional[int] = None, *,
               band: Optional[str] = None,
               seq: Optional[int] = None) -> Optional[Alert]:
        self._seq += 1
        if seq is None:
            seq = self._seq
        shard = self._shards[self.shard_of(detection.subject, band)]
        return shard.ingest(detector, threshold, detection, t, trace_id,
                            seq=seq)

    def merge(self) -> List[Alert]:
        """All alerts in serial threshold-crossing order.

        Within a shard, alerts are already in ascending ``open_seq``
        order (the stream position of the opening ingest), and ``seq``
        values are globally unique, so a k-way merge on ``open_seq``
        reconstructs the exact order the unsharded correlator would have
        produced.
        """
        total = sum(len(s.alerts) for s in self._shards)
        if total != self._merged_count:
            self._merged = list(_heapq_merge(
                *(s.alerts for s in self._shards),
                key=lambda a: a.open_seq))
            self._merged_count = total
        return self._merged

    @property
    def alerts(self) -> List[Alert]:
        return self.merge()

    def evidence_score(self, detector: str, subject: str) -> float:
        idx = self._route.get(subject)
        if idx is None:
            return 0.0
        return self._shards[idx].evidence_score(detector, subject)

    def open_alert(self, detector: str, subject: str) -> Optional[Alert]:
        idx = self._route.get(subject)
        if idx is None:
            return None
        return self._shards[idx].open_alert(detector, subject)

    @property
    def evicted(self) -> int:
        return sum(s.evicted for s in self._shards)

    @property
    def evidence_size(self) -> int:
        return sum(s.evidence_size for s in self._shards)
