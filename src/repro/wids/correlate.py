"""Alert correlation: evidence streams in, deduplicated alerts out.

Detectors emit :class:`~repro.wids.detectors.Detection` evidence per
frame; the correlator accumulates it per ``(detector, subject)`` pair
and opens exactly one :class:`~repro.wids.alerts.Alert` the instant the
accumulated score crosses the detector's threshold.  Evidence arriving
after that *updates* the open alert (score, count, last-seen time,
contributing trace_ids) rather than duplicating it — a deauth flood is
one alert with a rising score, not ten thousand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.wids.alerts import MAX_TRACE_IDS, Alert
from repro.wids.detectors import Detection

__all__ = ["AlertCorrelator"]


@dataclass
class _Evidence:
    """Accumulated evidence for one (detector, subject) pair."""

    score: float = 0.0
    count: int = 0
    first_t: float = 0.0
    last_t: float = 0.0
    reason: str = ""
    trace_ids: List[int] = field(default_factory=list)
    alert: Optional[Alert] = None


class AlertCorrelator:
    """Dedup, score, and timestamp detections into alerts.

    Alerts appear in :attr:`alerts` in threshold-crossing order, which
    is deterministic because frames arrive in simulation order.
    """

    def __init__(self) -> None:
        self._evidence: Dict[Tuple[str, str], _Evidence] = {}
        self.alerts: List[Alert] = []

    def ingest(self, detector: str, threshold: float, detection: Detection,
               t: float, trace_id: Optional[int] = None) -> Optional[Alert]:
        """Fold one detection in; return the alert iff it *newly* opened."""
        key = (detector, detection.subject)
        ev = self._evidence.get(key)
        if ev is None:
            ev = _Evidence(first_t=t)
            self._evidence[key] = ev
        ev.score += detection.score
        ev.count += 1
        ev.last_t = t
        if detection.reason:
            ev.reason = detection.reason  # keep the freshest explanation
        if trace_id is not None and len(ev.trace_ids) < MAX_TRACE_IDS \
                and trace_id not in ev.trace_ids:
            ev.trace_ids.append(trace_id)
        if ev.alert is not None:
            alert = ev.alert
            alert.score = ev.score
            alert.count = ev.count
            alert.last_evidence_t = ev.last_t
            alert.reason = ev.reason
            alert.trace_ids = list(ev.trace_ids)
            return None
        if ev.score >= threshold:
            alert = Alert(
                detector=detector,
                subject=detection.subject,
                t=t,
                score=ev.score,
                count=ev.count,
                first_evidence_t=ev.first_t,
                last_evidence_t=ev.last_t,
                reason=ev.reason,
                trace_ids=list(ev.trace_ids),
            )
            ev.alert = alert
            self.alerts.append(alert)
            return alert
        return None

    def evidence_score(self, detector: str, subject: str) -> float:
        ev = self._evidence.get((detector, subject))
        return ev.score if ev is not None else 0.0

    def open_alert(self, detector: str, subject: str) -> Optional[Alert]:
        ev = self._evidence.get((detector, subject))
        return ev.alert if ev is not None else None
