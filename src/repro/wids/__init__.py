"""`repro.wids` — streaming wireless intrusion detection.

The defensive subsystem §2.3 sketches and the WIDS literature names:
pluggable detectors (:mod:`~repro.wids.detectors`) consume
monitor-mode frames live, an alert correlator
(:mod:`~repro.wids.correlate`) turns evidence into deduplicated,
scored, lineage-linked :class:`~repro.wids.alerts.Alert`\\ s, and an
evaluation harness (:mod:`~repro.wids.evaluation`) scores every
detector against scenario-derived ground truth with mergeable metrics
the fleet can reduce.

Feeds come in two forms: :meth:`WidsEngine.attach` taps any
:class:`~repro.dot11.capture.FrameCapture` (an in-world sniffer), and
the ambient :func:`wids_watch` context observes every medium without
placing a radio in the world at all (zero-perturbation).

Fleet scale (PR 10): correlation shards by ``(subject, band)``
(:class:`~repro.wids.correlate.ShardedCorrelator`, merge-law exact),
evaluation is single-pass with offline threshold derivation, a
sliding-window ROC retunes thresholds online
(:mod:`~repro.wids.adaptive`), and the generation-based
evasion-vs-detection campaign (:mod:`~repro.wids.armsrace`) scores both
sides on Pareto frontiers.

This package deliberately does **not** import
:mod:`repro.wids.experiment` or :mod:`repro.wids.armsrace` here: the
radio layer feeds the ambient watch, so ``repro.wids`` must stay
importable from :mod:`repro.radio.medium` without dragging in
scenarios.
"""

from repro.wids.adaptive import AdaptiveThreshold
from repro.wids.alerts import Alert
from repro.wids.correlate import AlertCorrelator, ShardedCorrelator
from repro.wids.detectors import (
    DETECTORS,
    Detection,
    Detector,
    SeqCtlMonitor,
    SpoofVerdict,
    default_detectors,
    get_detector_class,
    register,
)
from repro.wids.engine import WidsEngine
from repro.wids.evaluation import (
    GroundTruth,
    Scorecard,
    evaluate,
    evaluate_rescan,
    evaluate_with_crossings,
    score_trajectory,
)
from repro.wids.runtime import WidsWatch, active_wids, wids_watch

__all__ = [
    "AdaptiveThreshold",
    "Alert",
    "AlertCorrelator",
    "DETECTORS",
    "Detection",
    "Detector",
    "GroundTruth",
    "Scorecard",
    "SeqCtlMonitor",
    "ShardedCorrelator",
    "SpoofVerdict",
    "WidsEngine",
    "WidsWatch",
    "active_wids",
    "default_detectors",
    "evaluate",
    "evaluate_rescan",
    "evaluate_with_crossings",
    "get_detector_class",
    "register",
    "score_trajectory",
    "wids_watch",
]
