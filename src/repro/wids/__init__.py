"""`repro.wids` — streaming wireless intrusion detection.

The defensive subsystem §2.3 sketches and the WIDS literature names:
pluggable detectors (:mod:`~repro.wids.detectors`) consume
monitor-mode frames live, an alert correlator
(:mod:`~repro.wids.correlate`) turns evidence into deduplicated,
scored, lineage-linked :class:`~repro.wids.alerts.Alert`\\ s, and an
evaluation harness (:mod:`~repro.wids.evaluation`) scores every
detector against scenario-derived ground truth with mergeable metrics
the fleet can reduce.

Feeds come in two forms: :meth:`WidsEngine.attach` taps any
:class:`~repro.dot11.capture.FrameCapture` (an in-world sniffer), and
the ambient :func:`wids_watch` context observes every medium without
placing a radio in the world at all (zero-perturbation).

This package deliberately does **not** import
:mod:`repro.wids.experiment` here: the radio layer feeds the ambient
watch, so ``repro.wids`` must stay importable from
:mod:`repro.radio.medium` without dragging in scenarios.
"""

from repro.wids.alerts import Alert
from repro.wids.correlate import AlertCorrelator
from repro.wids.detectors import (
    DETECTORS,
    Detection,
    Detector,
    SeqCtlMonitor,
    SpoofVerdict,
    default_detectors,
    get_detector_class,
    register,
)
from repro.wids.engine import WidsEngine
from repro.wids.evaluation import GroundTruth, Scorecard, evaluate
from repro.wids.runtime import WidsWatch, active_wids, wids_watch

__all__ = [
    "Alert",
    "AlertCorrelator",
    "DETECTORS",
    "Detection",
    "Detector",
    "GroundTruth",
    "Scorecard",
    "SeqCtlMonitor",
    "SpoofVerdict",
    "WidsEngine",
    "WidsWatch",
    "active_wids",
    "default_detectors",
    "evaluate",
    "get_detector_class",
    "register",
    "wids_watch",
]
