"""The ambient WIDS watch: intrusion detection without a sniffer host.

:func:`wids_watch` installs a :class:`WidsWatch` the radio layer feeds
directly: :meth:`Medium._fan_out` offers every completed transmission
to :func:`active_wids` *before* any per-receiver work, so the watch
sees the whole band the way an ideal distributed sensor would.

The hook is placed, deliberately, where it cannot perturb the world:
it runs before any receiver-RSSI RNG draw, never registers a radio
port, and only reads the frame.  Simulated results are bit-identical
with the watch installed, detached, or absent — the same ambient
zero-perturbation pattern as :func:`repro.obs.runtime.collecting` and
:func:`repro.obs.lineage.recording`, pinned by the determinism goldens.

Each distinct :class:`~repro.radio.medium.Medium` gets its own
monitor-mode :class:`~repro.dot11.capture.FrameCapture` (bounded) with
a :class:`~repro.wids.engine.WidsEngine` attached via the capture's
``tap`` — exactly the live-feed path an in-world sniffer would use.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from repro.dot11.capture import CapturedFrame, FrameCapture
from repro.dot11.frames import Dot11Frame
from repro.wids.alerts import Alert
from repro.wids.detectors import Detector
from repro.wids.engine import WidsEngine

__all__ = ["WidsWatch", "active_wids", "wids_watch"]


class WidsWatch:
    """One watch session: a capture + engine per observed medium."""

    def __init__(self, *, capacity: int = 4096,
                 thresholds: Optional[Dict[str, float]] = None) -> None:
        self.capacity = capacity
        self.thresholds = dict(thresholds) if thresholds else None
        # Keyed by medium identity; insertion order = first-heard order.
        self._feeds: Dict[int, Tuple[str, FrameCapture, WidsEngine]] = {}

    def _feed_for(self, medium) -> Tuple[str, FrameCapture, WidsEngine]:
        feed = self._feeds.get(id(medium))
        if feed is None:
            from repro.wids.detectors import default_detectors
            label = f"medium-{len(self._feeds)}"
            capture = FrameCapture(capacity=self.capacity)
            engine = WidsEngine(default_detectors(self.thresholds))
            engine.attach(capture)
            feed = (label, capture, engine)
            self._feeds[id(medium)] = feed
        return feed

    def offer(self, medium, frame: Dot11Frame, channel: int, t: float) -> None:
        """Radio-layer hook: one completed transmission on ``medium``.

        RSSI is recorded as 0.0 — the ambient watch is an idealised
        sensor with no position; detectors here key on content, timing,
        and channel, never signal strength.
        """
        _label, capture, _engine = self._feed_for(medium)
        capture.add(CapturedFrame(time=t, channel=channel,
                                  rssi_dbm=0.0, frame=frame))

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def feeds(self) -> List[Tuple[str, FrameCapture, WidsEngine]]:
        return list(self._feeds.values())

    def engines(self) -> List[WidsEngine]:
        return [engine for _, _, engine in self._feeds.values()]

    def alerts(self) -> List[Alert]:
        """All alerts across media, in threshold-crossing time order."""
        out: List[Alert] = []
        for _, _, engine in self._feeds.values():
            out.extend(engine.alerts)
        out.sort(key=lambda a: (a.t, a.detector, a.subject))
        return out

    def frames_seen(self) -> int:
        return sum(engine.frames_seen for engine in self.engines())


_active: Optional[WidsWatch] = None


@contextmanager
def wids_watch(*, capacity: int = 4096,
               thresholds: Optional[Dict[str, float]] = None
               ) -> Iterator[WidsWatch]:
    """Install a fresh :class:`WidsWatch` for the duration of the block."""
    global _active
    previous = _active
    watch = WidsWatch(capacity=capacity, thresholds=thresholds)
    _active = watch
    try:
        yield watch
    finally:
        _active = previous


def active_wids() -> Optional[WidsWatch]:
    """The active watch — or ``None`` (the radio layer offers nothing)."""
    return _active
