"""The WIDS engine: a detector bank wired to a frame feed.

One :class:`WidsEngine` owns one set of detector instances and one
:class:`~repro.wids.correlate.AlertCorrelator`.  It consumes frames
either live — :meth:`attach` taps a monitor-mode
:class:`~repro.dot11.capture.FrameCapture` via ``FrameCapture.tap`` —
or offline via :meth:`scan` over an existing capture.

The engine is strictly observational: it never touches the simulation
RNG, never schedules an event, and only *reads* frames, so attaching
or detaching it cannot change simulated results (the same
zero-perturbation discipline as :mod:`repro.obs`, pinned by the
determinism goldens).  Metrics go to the ambient
:func:`~repro.obs.runtime.obs_metrics` registry when one is installed:
``wids.frames``, ``wids.evidence.<detector>``, ``wids.alerts`` and
``wids.alerts.<detector>``.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from repro.dot11.capture import CapturedFrame, FrameCapture
from repro.dot11.channels import band_of
from repro.obs.runtime import obs_metrics
from repro.wids.alerts import Alert
from repro.wids.correlate import AlertCorrelator, ShardedCorrelator
from repro.wids.detectors import Detector, default_detectors

__all__ = ["WidsEngine"]


class WidsEngine:
    """A detector bank plus correlator consuming one frame stream.

    ``shards > 1`` swaps the single :class:`AlertCorrelator` for a
    :class:`ShardedCorrelator` partitioned by ``(subject, band)`` —
    alert results are bit-identical (the merge law), the evidence maps
    just live in independent shards.  ``max_evidence`` bounds the
    evidence map(s) so an alert flood cannot grow memory without bound.
    """

    def __init__(self, detectors: Optional[Iterable[Detector]] = None, *,
                 record_metrics: bool = True, shards: int = 1,
                 max_evidence: Optional[int] = None) -> None:
        self.detectors: List[Detector] = (
            list(detectors) if detectors is not None else default_detectors()
        )
        if shards > 1:
            self.correlator = ShardedCorrelator(
                shards, max_evidence=max_evidence)
        else:
            self.correlator = AlertCorrelator(max_evidence=max_evidence)
        self.frames_seen = 0
        # Offline evaluation replays disable this so threshold sweeps
        # don't inflate the live ``wids.*`` counters.
        self.record_metrics = record_metrics

    # ------------------------------------------------------------------
    # feeds
    # ------------------------------------------------------------------
    def attach(self, capture: FrameCapture) -> Callable[[], None]:
        """Tap a capture live; returns the detach function."""
        return capture.tap(self.process)

    def scan(self, capture: FrameCapture) -> List[Alert]:
        """Offline replay of an existing capture, oldest first."""
        for cap in list(capture.frames):
            self.process(cap)
        return self.alerts

    # ------------------------------------------------------------------
    # the hot path
    # ------------------------------------------------------------------
    def process(self, cap: CapturedFrame) -> None:
        self.frames_seen += 1
        m = obs_metrics() if self.record_metrics else None
        if m is not None:
            m.incr("wids.frames")
        trace_id = cap.frame.trace_id
        band = band_of(cap.channel)
        for detector in self.detectors:
            for detection in detector.observe(cap):
                if m is not None:
                    m.incr(f"wids.evidence.{detector.name}")
                opened = self.correlator.ingest(
                    detector.name, detector.threshold, detection,
                    cap.time, trace_id, band=band)
                if opened is not None and m is not None:
                    m.incr("wids.alerts")
                    m.incr(f"wids.alerts.{detector.name}")

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    @property
    def alerts(self) -> List[Alert]:
        return self.correlator.alerts

    def alerts_for(self, detector: str) -> List[Alert]:
        return [a for a in self.correlator.alerts if a.detector == detector]

    def first_alert(self) -> Optional[Alert]:
        return self.correlator.alerts[0] if self.correlator.alerts else None
