"""The detector registry: pluggable analysers over monitor-mode frames.

Two families live here:

* **Streaming detectors** (:class:`Detector` subclasses) consume one
  :class:`~repro.dot11.capture.CapturedFrame` at a time via
  :meth:`Detector.observe` and emit :class:`Detection` evidence that the
  :mod:`~repro.wids.correlate` engine accumulates into alerts.  Each is
  registered under a stable name with :func:`register` so engines,
  evaluation sweeps, and the CLI can enumerate them.

* The **offline** :class:`SeqCtlMonitor` — the §2.3 sequence-control
  analyser migrated verbatim from ``repro.defense.detection`` (which
  remains as a deprecated re-export shim).  It post-processes a whole
  capture into per-transmitter :class:`SpoofVerdict`\\ s; the streaming
  :class:`SeqCtlAnomalyDetector` is its online counterpart.

The streaming seqctl detector deliberately counts only *large* forward
gaps (two radios with independent counters), not duplicate sequence
numbers: a live monitor cannot tell a duplicate from its own missed
retry flag, whereas the offline monitor sees the whole stream and keeps
the stricter gap==0 rule.  That asymmetry is exactly the surface the
``mirror_seqctl`` evasion knob on the rogue exploits — the arms race
the evaluation harness measures.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import ClassVar, Dict, Iterator, Optional, Tuple, Type

from repro.dot11.capture import CapturedFrame, FrameCapture
from repro.dot11.frames import BeaconInfo, FrameSubtype
from repro.dot11.mac import MacAddress
from repro.dot11.seqctl import SEQ_MODULO, SequenceCounter
from repro.obs.runtime import obs_metrics
from repro.sim.errors import ProtocolError

__all__ = [
    "BeaconFingerprintDetector",
    "BeaconJitterDetector",
    "DeauthFloodDetector",
    "Detection",
    "Detector",
    "DETECTORS",
    "MultiChannelSsidDetector",
    "RsnMismatchDetector",
    "SeqCtlAnomalyDetector",
    "SeqCtlMonitor",
    "SpoofVerdict",
    "UnexpectedCsaDetector",
    "default_detectors",
    "get_detector_class",
    "register",
]


# ----------------------------------------------------------------------
# streaming detector framework
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Detection:
    """One piece of evidence a detector extracted from one frame."""

    subject: str          # who is accused (BSSID, SSID/BSSID pair, ...)
    score: float = 1.0    # evidence weight toward the alert threshold
    reason: str = ""


class Detector:
    """Base class: stateful, one instance per engine, frames in order.

    ``threshold`` is the accumulated-evidence score at which the
    correlation engine opens an alert for a subject; ``SWEEP`` is the
    threshold ladder the ROC evaluation walks.
    """

    name: ClassVar[str] = ""
    default_threshold: ClassVar[float] = 1.0
    SWEEP: ClassVar[Tuple[float, ...]] = (1.0,)

    def __init__(self, threshold: Optional[float] = None) -> None:
        self.threshold = (self.default_threshold
                          if threshold is None else threshold)

    def observe(self, cap: CapturedFrame) -> Iterator[Detection]:
        raise NotImplementedError


#: Registry of detector classes by stable name, in registration order
#: (dicts preserve insertion order; determinism depends on it).
DETECTORS: Dict[str, Type[Detector]] = {}


def register(cls: Type[Detector]) -> Type[Detector]:
    """Class decorator: add a detector to the registry under its name."""
    if not cls.name:
        raise ValueError(f"detector {cls.__name__} has no name")
    if cls.name in DETECTORS:
        raise ValueError(f"detector name {cls.name!r} already registered")
    DETECTORS[cls.name] = cls
    return cls


def get_detector_class(name: str) -> Type[Detector]:
    try:
        return DETECTORS[name]
    except KeyError:
        raise KeyError(
            f"unknown detector {name!r}; known: {', '.join(sorted(DETECTORS))}"
        ) from None


def default_detectors(
    thresholds: Optional[Dict[str, float]] = None,
) -> list[Detector]:
    """Fresh instances of every registered detector, registry order."""
    thresholds = thresholds or {}
    return [cls(threshold=thresholds.get(name))
            for name, cls in DETECTORS.items()]


def _parse_beacon(cap: CapturedFrame) -> Optional[BeaconInfo]:
    try:
        return cap.frame.parse_beacon()
    except ProtocolError:
        return None


# ----------------------------------------------------------------------
# streaming detectors
# ----------------------------------------------------------------------

@register
class SeqCtlAnomalyDetector(Detector):
    """§2.3 online: large sequence-control gaps mean a second radio.

    A single radio stamps frames from one 12-bit counter, so the gap
    between consecutive frames from one transmitter address is small
    even across the 4096 wrap-around (the gap is modular).  Gaps above
    ``gap_threshold`` are evidence of interleaved counters.
    """

    name = "seqctl"
    default_threshold = 3.0
    SWEEP = (1.0, 2.0, 3.0, 5.0, 8.0, 13.0)

    def __init__(self, threshold: Optional[float] = None, *,
                 gap_threshold: int = 64) -> None:
        super().__init__(threshold)
        self.gap_threshold = gap_threshold
        self._last_seq: Dict[str, int] = {}

    def observe(self, cap: CapturedFrame) -> Iterator[Detection]:
        frame = cap.frame
        # Control frames (ACK) carry no sequence number; skip them.
        if frame.subtype is FrameSubtype.ACK:
            return
        subject = str(frame.addr2)
        prev = self._last_seq.get(subject)
        self._last_seq[subject] = frame.seq
        if prev is None:
            return
        gap = SequenceCounter.gap(prev, frame.seq)
        if gap > self.gap_threshold:
            yield Detection(
                subject=subject,
                reason=(f"sequence jump {prev}->{frame.seq} "
                        f"(gap {gap} > {self.gap_threshold}) — "
                        f"interleaved counters"),
            )


@register
class BeaconFingerprintDetector(Detector):
    """Fig. 1 evil twin: one SSID+BSSID advertised two different ways.

    The first beacon seen for an (SSID, BSSID) pair pins its
    fingerprint — capability field, advertised channel IE, beacon
    interval.  Any later beacon for the same pair with a *different*
    fingerprint is evidence of a second AP cloning the identity: a
    rogue can copy the name and the MAC, but its configuration leaks.
    """

    name = "fingerprint"
    default_threshold = 1.0
    SWEEP = (1.0, 2.0, 4.0, 8.0)

    def __init__(self, threshold: Optional[float] = None) -> None:
        super().__init__(threshold)
        self._fingerprints: Dict[Tuple[str, str], Tuple[int, int, int]] = {}

    def observe(self, cap: CapturedFrame) -> Iterator[Detection]:
        if cap.frame.subtype not in (FrameSubtype.BEACON,
                                     FrameSubtype.PROBE_RESP):
            return
        info = _parse_beacon(cap)
        if info is None:
            return
        key = (info.ssid, str(info.bssid))
        fp = (info.capability, info.channel, info.interval_tu)
        seen = self._fingerprints.get(key)
        if seen is None:
            self._fingerprints[key] = fp
        elif fp != seen:
            yield Detection(
                subject=f"{info.ssid}/{info.bssid}",
                reason=(f"conflicting advertisement: "
                        f"cap/chan/interval {seen} vs {fp}"),
            )


@register
class MultiChannelSsidDetector(Detector):
    """One BSS beaconing on two radio channels — two physical radios.

    Keys on the *air* channel the beacon was heard on, not the channel
    IE it claims: an evil twin can forge every byte of its beacon, but
    it cannot transmit on the legitimate AP's channel from a different
    channel.  Scanning clients probe everywhere legitimately, so only
    AP-role frames (beacons, probe responses) count.
    """

    name = "multichannel"
    default_threshold = 2.0
    SWEEP = (1.0, 2.0, 4.0, 8.0)

    def __init__(self, threshold: Optional[float] = None) -> None:
        super().__init__(threshold)
        self._home_channel: Dict[str, int] = {}

    def observe(self, cap: CapturedFrame) -> Iterator[Detection]:
        if cap.frame.subtype not in (FrameSubtype.BEACON,
                                     FrameSubtype.PROBE_RESP):
            return
        subject = str(cap.frame.addr2)
        home = self._home_channel.get(subject)
        if home is None:
            self._home_channel[subject] = cap.channel
        elif cap.channel != home:
            yield Detection(
                subject=subject,
                reason=(f"AP-role frames on channel {cap.channel} and "
                        f"{home} — one address, two radios"),
            )


@register
class BeaconJitterDetector(Detector):
    """Beacon cadence drift: soft-AP schedulers are sloppier than ASICs.

    A hardware AP's TBTT is crystal-driven: consecutive beacons land a
    near-exact multiple of the advertised interval apart (missed
    beacons just skip integer multiples).  A hostap-style soft-AP adds
    OS scheduling jitter.  Inter-beacon gaps deviating from the nearest
    integer multiple of the advertised interval by more than
    ``rel_tolerance`` are evidence.
    """

    name = "beacon-jitter"
    default_threshold = 5.0
    SWEEP = (2.0, 5.0, 10.0, 20.0)

    #: Fractional deviation from the nearest interval multiple that a
    #: crystal-timed AP never shows (CSMA deferral is ~0.4% of 100 TU).
    rel_tolerance = 0.15

    def __init__(self, threshold: Optional[float] = None) -> None:
        super().__init__(threshold)
        self._last_beacon: Dict[Tuple[str, int], float] = {}

    def observe(self, cap: CapturedFrame) -> Iterator[Detection]:
        if cap.frame.subtype is not FrameSubtype.BEACON:
            return
        info = _parse_beacon(cap)
        if info is None or info.interval_tu <= 0:
            return
        key = (str(info.bssid), cap.channel)
        prev = self._last_beacon.get(key)
        self._last_beacon[key] = cap.time
        if prev is None:
            return
        expected = info.interval_tu * 1024e-6  # TU -> seconds
        dt = cap.time - prev
        multiples = round(dt / expected)
        if multiples < 1:
            return
        deviation = abs(dt - multiples * expected)
        if deviation > self.rel_tolerance * expected:
            yield Detection(
                subject=str(info.bssid),
                reason=(f"beacon cadence off by {deviation * 1e3:.1f} ms "
                        f"from {multiples}x{expected * 1e3:.1f} ms — "
                        f"software-timed AP"),
            )


@register
class DeauthFloodDetector(Detector):
    """§3.2 deauth-flood DoS: broadcast/targeted deauths at attack rate.

    Legitimate deauths are rare one-offs (a client leaving, a class-3
    error); an injector repeats them continuously to hold victims off
    the air.  Each deauth beyond ``flood_count`` within ``window_s``
    for one claimed source is evidence.
    """

    name = "deauth-flood"
    default_threshold = 4.0
    SWEEP = (1.0, 2.0, 4.0, 8.0, 16.0)

    def __init__(self, threshold: Optional[float] = None, *,
                 window_s: float = 5.0, flood_count: int = 8) -> None:
        super().__init__(threshold)
        self.window_s = window_s
        self.flood_count = flood_count
        self._times: Dict[str, deque] = {}

    def observe(self, cap: CapturedFrame) -> Iterator[Detection]:
        if cap.frame.subtype not in (FrameSubtype.DEAUTH,
                                     FrameSubtype.DISASSOC):
            return
        subject = str(cap.frame.addr2)
        times = self._times.setdefault(subject, deque())
        cutoff = cap.time - self.window_s
        while times and times[0] < cutoff:
            times.popleft()
        times.append(cap.time)
        if len(times) > self.flood_count:
            yield Detection(
                subject=subject,
                reason=(f"{len(times)} deauth/disassoc in "
                        f"{self.window_s:g} s claiming {subject}"),
            )


@register
class RsnMismatchDetector(Detector):
    """WPA3-downgrade evidence: one SSID advertised at two postures.

    The first beacon seen for an SSID pins its security posture — the
    raw RSN IE bytes (or their absence).  Any later advertisement of
    the same SSID with a *different* posture is evidence: a downgrade
    rogue must offer weaker security than the network it impersonates,
    and the RSN IE is where that offer is written.  Keying on the SSID
    alone (not SSID+BSSID) catches rogues that don't bother cloning
    the BSSID; legacy networks advertise no RSN anywhere, so the
    posture is uniformly "absent" and the detector stays silent.
    """

    name = "rsn-mismatch"
    default_threshold = 1.0
    SWEEP = (1.0, 2.0, 4.0, 8.0)

    def __init__(self, threshold: Optional[float] = None) -> None:
        super().__init__(threshold)
        self._postures: Dict[str, Optional[bytes]] = {}

    def observe(self, cap: CapturedFrame) -> Iterator[Detection]:
        if cap.frame.subtype not in (FrameSubtype.BEACON,
                                     FrameSubtype.PROBE_RESP):
            return
        info = _parse_beacon(cap)
        if info is None:
            return
        posture = info.rsn  # raw IE bytes, None when absent
        seen = self._postures.setdefault(info.ssid, posture)
        if posture != seen:
            def _label(p: Optional[bytes]) -> str:
                return "no-RSN" if p is None else f"RSN[{p.hex()}]"
            yield Detection(
                subject=f"{info.ssid}/{info.bssid}",
                reason=(f"SSID {info.ssid!r} advertised as "
                        f"{_label(posture)} but pinned as "
                        f"{_label(seen)} — downgrade lure"),
            )


@register
class UnexpectedCsaDetector(Detector):
    """Channel-switch herding: CSA announcements are unauthenticated.

    A genuine channel switch is a rare, short burst of CSA-bearing
    beacons (the countdown); a lure repeats them indefinitely to drag
    every client onto the attacker's channel.  Each CSA-bearing
    beacon/probe-response is one unit of evidence, and the default
    threshold sits above a genuine countdown's worth.
    """

    name = "unexpected-CSA"
    default_threshold = 5.0
    SWEEP = (1.0, 2.0, 5.0, 10.0, 20.0)

    def observe(self, cap: CapturedFrame) -> Iterator[Detection]:
        if cap.frame.subtype not in (FrameSubtype.BEACON,
                                     FrameSubtype.PROBE_RESP):
            return
        info = _parse_beacon(cap)
        if info is None or info.csa is None:
            return
        yield Detection(
            subject=str(cap.frame.addr2),
            reason=(f"CSA in beacon for {info.ssid!r} on channel "
                    f"{cap.channel} announcing a switch"),
        )


# ----------------------------------------------------------------------
# offline sequence-control monitor (migrated from repro.defense.detection)
# ----------------------------------------------------------------------

@dataclass
class SpoofVerdict:
    """Analysis result for one transmitter address."""

    transmitter: MacAddress
    frames: int
    anomalies: int
    max_gap: int
    channels_seen: tuple[int, ...]
    spoofed: bool
    reason: str = ""

    @property
    def anomaly_rate(self) -> float:
        return self.anomalies / self.frames if self.frames else 0.0


class SeqCtlMonitor:
    """Offline/online analyser over a monitor-mode capture.

    §2.3: "These techniques rely on monitoring 802.11b Sequence Control
    numbers"; reference [15] is Wright's *Detecting Wireless LAN MAC
    Address Spoofing*.  A single radio stamps frames from one
    monotonically increasing 12-bit counter; a second radio under the
    same address produces gaps one radio cannot.

    Parameters
    ----------
    gap_threshold:
        Forward gaps above this count as anomalies.  Healthy single
        transmitters produce gaps of 1 (occasionally a handful under
        loss — the monitor misses frames too, so the threshold trades
        false positives against sensitivity: the E-DETECT ablation).
    anomaly_rate_threshold:
        Fraction of anomalous gaps above which the verdict is
        "spoofed".
    """

    def __init__(self, capture: FrameCapture, *, gap_threshold: int = 64,
                 anomaly_rate_threshold: float = 0.05) -> None:
        self.capture = capture
        self.gap_threshold = gap_threshold
        self.anomaly_rate_threshold = anomaly_rate_threshold

    def analyze_transmitter(self, mac: MacAddress) -> SpoofVerdict:
        """Sequence-gap analysis for all frames claiming transmitter ``mac``."""
        seqs: list[int] = []
        channels: set[int] = set()
        for cap in self.capture.select(transmitter=mac):
            # Control frames (ACK) carry no sequence number; skip them.
            if cap.frame.subtype is FrameSubtype.ACK:
                continue
            seqs.append(cap.frame.seq)
            # Multi-channel evidence only counts for AP-role frames:
            # scanning *clients* legitimately probe on every channel.
            if cap.frame.subtype in (FrameSubtype.BEACON, FrameSubtype.PROBE_RESP):
                channels.add(cap.channel)
        anomalies = 0
        max_gap = 0
        for prev, cur in zip(seqs, seqs[1:]):
            gap = SequenceCounter.gap(prev, cur)
            # gap==0 (duplicate, not retry-flagged) and huge gaps are anomalies.
            if gap == 0 or gap > self.gap_threshold:
                anomalies += 1
            if self.gap_threshold < gap < SEQ_MODULO:
                max_gap = max(max_gap, gap)
        rate = anomalies / max(1, len(seqs) - 1)
        multichannel = len(channels) > 1
        spoofed = False
        reason = ""
        if multichannel:
            spoofed = True
            reason = (f"one transmitter address beaconing on channels "
                      f"{sorted(channels)} — two radios")
        elif len(seqs) > 8 and rate >= self.anomaly_rate_threshold:
            spoofed = True
            reason = (f"interleaved sequence streams: {anomalies} anomalous "
                      f"gaps in {len(seqs)} frames")
        m = obs_metrics()
        if m is not None:
            m.incr("detect.analyses")
            m.incr("detect.anomalies", anomalies)
            if spoofed:
                m.incr("detect.flagged")
        return SpoofVerdict(
            transmitter=mac,
            frames=len(seqs),
            anomalies=anomalies,
            max_gap=max_gap,
            channels_seen=tuple(sorted(channels)),
            spoofed=spoofed,
            reason=reason,
        )

    def analyze_all(self) -> list[SpoofVerdict]:
        """Verdicts for every transmitter seen, flagged ones first."""
        verdicts = [self.analyze_transmitter(mac)
                    for mac in sorted(self.capture.transmitters())]
        verdicts.sort(key=lambda v: (not v.spoofed, str(v.transmitter)))
        return verdicts

    def flagged(self) -> list[SpoofVerdict]:
        return [v for v in self.analyze_all() if v.spoofed]
