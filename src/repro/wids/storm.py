"""Synthetic alert storms: correlator load with zero simulation cost.

The correlator benches need millions of evidence events per second —
no simulated world produces frames that fast, so the storm generator
fabricates the *detector output* directly: a deterministic stream of
``(detector, threshold, Detection, t, trace_id, band)`` tuples shaped
like a hostile airspace (a few hot subjects flooding, a long tail of
one-off subjects churning past).  Everything is pre-built so a timed
loop measures only :meth:`AlertCorrelator.ingest`, and the stream is a
pure function of the arguments (``random.Random(seed)``), so bench
payloads and differential tests are repeat-deterministic.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.wids.correlate import ShardedCorrelator
from repro.wids.detectors import Detection

__all__ = ["StormEvent", "alert_storm", "run_storm", "storm_digest"]

#: One pre-built evidence event:
#: ``(detector, threshold, detection, t, trace_id, band)``.
StormEvent = Tuple[str, float, Detection, float, Optional[int], str]

_BANDS = ("2g4", "5g")


def alert_storm(n: int, *, subjects: int = 64, detectors: int = 4,
                threshold: float = 50.0, churn: float = 0.0,
                seed: int = 7) -> List[StormEvent]:
    """Pre-build ``n`` evidence events for correlator benchmarking.

    ``subjects`` hot subjects are revisited uniformly at random (every
    pair eventually opens an alert and then hammers the update path —
    the hot path under a real flood); a ``churn`` fraction of events
    instead introduce a brand-new one-shot subject, which is what grows
    the evidence map and exercises eviction.  Subjects are pinned to a
    band at creation, so the stream satisfies the sharded-routing
    stability precondition by construction.
    """
    if not 0.0 <= churn <= 1.0:
        raise ValueError("churn must be in [0, 1]")
    rng = random.Random(seed)
    det_names = [f"storm-det-{i}" for i in range(detectors)]
    hot = [(f"storm:subj:{i:04d}", _BANDS[i % 2],
            Detection(subject=f"storm:subj:{i:04d}", score=1.0,
                      reason="storm"))
           for i in range(subjects)]
    events: List[StormEvent] = []
    churn_id = 0
    for i in range(n):
        detector = det_names[i % detectors]
        if churn and rng.random() < churn:
            subject = f"storm:churn:{churn_id:08d}"
            churn_id += 1
            band = _BANDS[churn_id % 2]
            detection = Detection(subject=subject, score=1.0, reason="storm")
        else:
            _subject, band, detection = hot[rng.randrange(subjects)]
        trace_id = i if i % 7 == 0 else None
        events.append((detector, threshold, detection, i * 1e-4,
                       trace_id, band))
    return events


def run_storm(correlator, events: List[StormEvent]):
    """Feed a pre-built storm through any correlator; returns it back.

    Works for :class:`AlertCorrelator` and :class:`ShardedCorrelator`
    alike (both take ``band=``).  Not the timed path — the benches
    inline the loop to keep call overhead out of the measurement — but
    the shared reference feed for tests.
    """
    ingest = correlator.ingest
    for detector, threshold, detection, t, trace_id, band in events:
        ingest(detector, threshold, detection, t, trace_id, band=band)
    return correlator


def storm_digest(correlator) -> dict:
    """Deterministic summary of a correlator's end state after a storm.

    Used as bench payload (repeat-identical) and as a cheap cross-check
    that two correlators saw the same stream.
    """
    alerts = (correlator.merge()
              if isinstance(correlator, ShardedCorrelator)
              else correlator.alerts)
    # Keys deliberately avoid ``_s`` substrings: bench payloads are
    # linted against timing-looking names.
    return {
        "alerts": len(alerts),
        "score": sum(a.score for a in alerts),
        "count": sum(a.count for a in alerts),
        "evidence": correlator.evidence_size,
        "evicted": correlator.evicted,
        "head": [a.subject for a in alerts[:4]],
    }
