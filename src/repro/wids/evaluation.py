"""Detection-quality evaluation: confusion matrices, ROC, time-to-detect.

Ground truth comes from the scenario itself — we *built* the world, so
we know whether a rogue is present and when the attack started.
:func:`evaluate` replays a finished capture offline once per
(detector, threshold) point of each detector's ``SWEEP`` ladder and
scores the world-level binary decision:

=====================  ======================  =====================
                        rogue present           rogue absent
=====================  ======================  =====================
detector alerted        true positive (tp)      false positive (fp)
detector silent         false negative (fn)     true negative (tn)
=====================  ======================  =====================

Every cell is an obs-registry **counter** and time-to-detect is a
**timer**, so the scores obey the fleet ``merge()`` law: per-seed
registries reduce in seed order to exactly the counts a serial pass
would produce — ``sweep --wids`` merged scorecards are bit-identical
serial vs parallel for free.

Metric names::

    wids.eval.<detector>.thr<T>.{tp,fp,fn,tn}   counters, one world each
    wids.eval.<detector>.ttd_s                  timer, default threshold

:class:`Scorecard` renders any registry (or merged snapshot) holding
those names back into rows, ROC points, tables, and JSON.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.dot11.capture import FrameCapture
from repro.obs.metrics import CounterMetric, MetricsRegistry, TimerMetric
from repro.obs.runtime import obs_metrics
from repro.wids.detectors import DETECTORS
from repro.wids.engine import WidsEngine

__all__ = ["GroundTruth", "Scorecard", "evaluate"]

_CELLS = ("tp", "fp", "fn", "tn")


@dataclass(frozen=True)
class GroundTruth:
    """Scenario-derived label for one simulated world."""

    rogue_present: bool
    attack_start_s: float = 0.0


def _thr_token(threshold: float) -> str:
    """``3.0 -> "thr3"``, ``0.5 -> "thr0_5"`` (dot-free for metric names)."""
    return "thr" + f"{threshold:g}".replace(".", "_")


def _thr_value(token: str) -> float:
    return float(token[3:].replace("_", "."))


def evaluate(
    capture: FrameCapture,
    truth: GroundTruth,
    *,
    registry: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Score every registered detector over one world's capture.

    Writes ``wids.eval.*`` into ``registry`` (a fresh one when omitted)
    **and** into the ambient :func:`obs_metrics` registry when one is
    installed — the local copy keeps experiment payloads independent of
    ambient observability state (zero-perturbation), the ambient copy
    is what the fleet ships and merges.
    """
    local = registry if registry is not None else MetricsRegistry()
    ambient = obs_metrics()

    def incr(name: str) -> None:
        local.incr(name)
        if ambient is not None and ambient is not local:
            ambient.incr(name)

    def add_time(name: str, seconds: float) -> None:
        local.add_time(name, seconds)
        if ambient is not None and ambient is not local:
            ambient.add_time(name, seconds)

    for name, cls in DETECTORS.items():
        for threshold in cls.SWEEP:
            engine = WidsEngine([cls(threshold=threshold)],
                                record_metrics=False)
            engine.scan(capture)
            alerted = bool(engine.alerts)
            if truth.rogue_present:
                cell = "tp" if alerted else "fn"
            else:
                cell = "fp" if alerted else "tn"
            incr(f"wids.eval.{name}.{_thr_token(threshold)}.{cell}")
            if (alerted and truth.rogue_present
                    and threshold == cls.default_threshold):
                first = engine.alerts[0]
                add_time(f"wids.eval.{name}.ttd_s",
                         max(0.0, first.t - truth.attack_start_s))
    return local


@dataclass
class ScoreRow:
    """One (detector, threshold) confusion cell set with derived rates."""

    detector: str
    threshold: float
    tp: int
    fp: int
    fn: int
    tn: int

    @property
    def precision(self) -> float:
        return self.tp / (self.tp + self.fp) if (self.tp + self.fp) else 0.0

    @property
    def recall(self) -> float:
        return self.tp / (self.tp + self.fn) if (self.tp + self.fn) else 0.0

    # recall and tpr coincide; both names kept for ROC readability
    @property
    def tpr(self) -> float:
        return self.recall

    @property
    def fpr(self) -> float:
        return self.fp / (self.fp + self.tn) if (self.fp + self.tn) else 0.0

    def to_dict(self) -> dict:
        return {
            "detector": self.detector,
            "threshold": self.threshold,
            "tp": self.tp, "fp": self.fp, "fn": self.fn, "tn": self.tn,
            "precision": self.precision, "recall": self.recall,
            "fpr": self.fpr,
        }


class Scorecard:
    """Rows/ROC/tables over ``wids.eval.*`` metrics from any registry."""

    def __init__(self, rows: List[ScoreRow],
                 ttd: Dict[str, dict]) -> None:
        self._rows = rows
        self._ttd = ttd  # detector -> TimerMetric.to_dict()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_registry(cls, registry: MetricsRegistry) -> "Scorecard":
        cells: Dict[Tuple[str, float], Dict[str, int]] = {}
        ttd: Dict[str, dict] = {}
        for metric_name, metric in registry.subtree("wids.eval").items():
            parts = metric_name.split(".")
            if parts[-1] == "ttd_s" and isinstance(metric, TimerMetric):
                ttd[".".join(parts[2:-1])] = metric.to_dict()
                continue
            if len(parts) < 5 or parts[-1] not in _CELLS:
                continue
            if not isinstance(metric, CounterMetric):
                continue
            detector = ".".join(parts[2:-2])
            try:
                threshold = _thr_value(parts[-2])
            except ValueError:
                continue
            cell = cells.setdefault((detector, threshold),
                                    dict.fromkeys(_CELLS, 0))
            cell[parts[-1]] = metric.value
        rows = [ScoreRow(detector=det, threshold=thr, **counts)
                for (det, thr), counts in cells.items()]
        rows.sort(key=lambda r: (r.detector, r.threshold))
        return cls(rows, ttd)

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "Scorecard":
        return cls.from_registry(MetricsRegistry.from_snapshot(snapshot))

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def rows(self) -> List[ScoreRow]:
        return list(self._rows)

    def detectors(self) -> List[str]:
        return sorted({r.detector for r in self._rows})

    def roc(self, detector: str) -> List[Tuple[float, float, float]]:
        """``(fpr, tpr, threshold)`` points, descending threshold."""
        points = [(r.fpr, r.tpr, r.threshold) for r in self._rows
                  if r.detector == detector]
        points.sort(key=lambda p: -p[2])
        return points

    def ttd(self, detector: str) -> Optional[dict]:
        """Merged time-to-detect timer dict, or None if never detected."""
        return self._ttd.get(detector)

    def mean_ttd_s(self, detector: str) -> Optional[float]:
        t = self._ttd.get(detector)
        if not t or not t.get("count"):
            return None
        return t["total_s"] / t["count"]

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def report(self, *, title: str = "WIDS evaluation scorecard") -> str:
        # Imported here, not at module level: the radio layer imports
        # repro.wids (for the ambient watch), and repro.core imports
        # the radio layer — a module-level import would be a cycle.
        from repro.core.report import format_table
        rows = []
        for r in self._rows:
            mean_ttd = self.mean_ttd_s(r.detector)
            rows.append([
                r.detector, f"{r.threshold:g}", r.tp, r.fp, r.fn, r.tn,
                r.precision, r.recall, r.fpr,
                f"{mean_ttd:.3f}" if mean_ttd is not None else "-",
            ])
        return format_table(
            ["detector", "thr", "tp", "fp", "fn", "tn",
             "precision", "recall", "fpr", "mean_ttd_s"],
            rows, title=title)

    def to_json_dict(self) -> dict:
        return {
            "rows": [r.to_dict() for r in self._rows],
            "roc": {det: [{"fpr": p[0], "tpr": p[1], "threshold": p[2]}
                          for p in self.roc(det)]
                    for det in self.detectors()},
            "time_to_detect_s": dict(self._ttd),
        }
