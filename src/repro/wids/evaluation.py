"""Detection-quality evaluation: confusion matrices, ROC, time-to-detect.

Ground truth comes from the scenario itself — we *built* the world, so
we know whether a rogue is present and when the attack started.
:func:`evaluate` scans a finished capture **once per detector**,
records the evidence-score trajectory (every ``(t, subject,
cumulative-score)`` event in stream order), and derives every
``SWEEP`` threshold cell offline from that trajectory.  The key fact
making this sound: detector ``observe()`` is threshold-independent
(thresholds only gate the correlator), and the correlator opens its
first alert at the first event where any subject's running score
reaches the threshold — so each cell falls out of the trajectory with
no rescan, bit-identical to the per-threshold rescan the repo used to
do (kept as :func:`evaluate_rescan` and pinned by a differential test).
The scored decision per world:

=====================  ======================  =====================
                        rogue present           rogue absent
=====================  ======================  =====================
detector alerted        true positive (tp)      false positive (fp)
detector silent         false negative (fn)     true negative (tn)
=====================  ======================  =====================

Every cell is an obs-registry **counter** and time-to-detect is a
**timer**, so the scores obey the fleet ``merge()`` law: per-seed
registries reduce in seed order to exactly the counts a serial pass
would produce — ``sweep --wids`` merged scorecards are bit-identical
serial vs parallel for free.

Metric names::

    wids.eval.<detector>.thr<T>.{tp,fp,fn,tn}   counters, one world each
    wids.eval.<detector>.ttd_s                  timer, default threshold

:class:`Scorecard` renders any registry (or merged snapshot) holding
those names back into rows, ROC points, AUC, tables, and JSON.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.dot11.capture import FrameCapture
from repro.obs.metrics import CounterMetric, MetricsRegistry, TimerMetric
from repro.obs.runtime import obs_metrics
from repro.wids.detectors import DETECTORS, Detector
from repro.wids.engine import WidsEngine

__all__ = [
    "GroundTruth",
    "Scorecard",
    "evaluate",
    "evaluate_rescan",
    "evaluate_with_crossings",
    "score_trajectory",
]

_CELLS = ("tp", "fp", "fn", "tn")


@dataclass(frozen=True)
class GroundTruth:
    """Scenario-derived label for one simulated world."""

    rogue_present: bool
    attack_start_s: float = 0.0


def _thr_token(threshold: float) -> str:
    """``3.0 -> "thr3"``, ``0.5 -> "thr0_5"`` (dot-free for metric names)."""
    return "thr" + f"{threshold:g}".replace(".", "_")


def _thr_value(token: str) -> float:
    return float(token[3:].replace("_", "."))


def score_trajectory(
    detector: Detector, capture: FrameCapture
) -> List[Tuple[float, str, float]]:
    """One detector's evidence trajectory over a capture, stream order.

    Each element is ``(t, subject, cumulative_score)`` — the subject's
    running evidence total *after* folding that event in.  The per-
    subject accumulation is the same sequence of float additions the
    correlator performs (``0.0 + s1 + s2 + ...`` in stream order), so
    cumulative scores here equal correlator evidence scores bit-for-bit.
    """
    events: List[Tuple[float, str, float]] = []
    totals: Dict[str, float] = {}
    for cap in list(capture.frames):
        t = cap.time
        for detection in detector.observe(cap):
            cum = totals.get(detection.subject, 0.0) + detection.score
            totals[detection.subject] = cum
            events.append((t, detection.subject, cum))
    return events


def _first_crossing_t(
    events: List[Tuple[float, str, float]], threshold: float
) -> Optional[float]:
    """Time of the first alert a correlator at ``threshold`` would open.

    The correlator checks ``score >= threshold`` on every ingest while
    the pair has no open alert, so the first event (in stream order)
    whose cumulative score reaches the threshold is exactly the first
    alert's opening time — any earlier-crossing subject would have
    produced an earlier event.
    """
    for t, _subject, cum in events:
        if cum >= threshold:
            return t
    return None


def evaluate_with_crossings(
    capture: FrameCapture,
    truth: GroundTruth,
    *,
    registry: Optional[MetricsRegistry] = None,
) -> Tuple[MetricsRegistry, Dict[str, Dict[float, Optional[float]]]]:
    """Single-pass :func:`evaluate` that also returns the crossing map.

    The second return value maps ``detector -> {threshold: t}`` with the
    sim time a correlator at that threshold would open its first alert
    (``None`` = never) — every ``SWEEP`` point of every detector, from
    the same one trajectory pass that produced the cells.  The arms-race
    campaign scores *tuned* operating points offline from this map
    without re-running any world.
    """
    local = registry if registry is not None else MetricsRegistry()
    ambient = obs_metrics()

    def incr(name: str) -> None:
        local.incr(name)
        if ambient is not None and ambient is not local:
            ambient.incr(name)

    def add_time(name: str, seconds: float) -> None:
        local.add_time(name, seconds)
        if ambient is not None and ambient is not local:
            ambient.add_time(name, seconds)

    crossings: Dict[str, Dict[float, Optional[float]]] = {}
    for name, cls in DETECTORS.items():
        events = score_trajectory(cls(), capture)
        crossings[name] = {}
        for threshold in cls.SWEEP:
            first_t = _first_crossing_t(events, threshold)
            crossings[name][threshold] = first_t
            alerted = first_t is not None
            if truth.rogue_present:
                cell = "tp" if alerted else "fn"
            else:
                cell = "fp" if alerted else "tn"
            incr(f"wids.eval.{name}.{_thr_token(threshold)}.{cell}")
            if (alerted and truth.rogue_present
                    and threshold == cls.default_threshold):
                add_time(f"wids.eval.{name}.ttd_s",
                         max(0.0, first_t - truth.attack_start_s))
    return local, crossings


def evaluate(
    capture: FrameCapture,
    truth: GroundTruth,
    *,
    registry: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Score every registered detector over one world's capture.

    Single-pass: each detector scans the capture once; every threshold
    cell of its ``SWEEP`` ladder is derived from the recorded
    trajectory.  Cells and time-to-detect are bit-identical to
    :func:`evaluate_rescan` (the differential test pins this).

    Writes ``wids.eval.*`` into ``registry`` (a fresh one when omitted)
    **and** into the ambient :func:`obs_metrics` registry when one is
    installed — the local copy keeps experiment payloads independent of
    ambient observability state (zero-perturbation), the ambient copy
    is what the fleet ships and merges.
    """
    local, _ = evaluate_with_crossings(capture, truth, registry=registry)
    return local


def evaluate_rescan(
    capture: FrameCapture,
    truth: GroundTruth,
    *,
    registry: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Reference implementation: full engine rescan per (detector, thr).

    O(frames x detectors x thresholds) — kept as the trusted-by-
    construction oracle the single-pass :func:`evaluate` is diffed
    against, not for production use.
    """
    local = registry if registry is not None else MetricsRegistry()
    ambient = obs_metrics()

    def incr(name: str) -> None:
        local.incr(name)
        if ambient is not None and ambient is not local:
            ambient.incr(name)

    def add_time(name: str, seconds: float) -> None:
        local.add_time(name, seconds)
        if ambient is not None and ambient is not local:
            ambient.add_time(name, seconds)

    for name, cls in DETECTORS.items():
        for threshold in cls.SWEEP:
            engine = WidsEngine([cls(threshold=threshold)],
                                record_metrics=False)
            engine.scan(capture)
            alerted = bool(engine.alerts)
            if truth.rogue_present:
                cell = "tp" if alerted else "fn"
            else:
                cell = "fp" if alerted else "tn"
            incr(f"wids.eval.{name}.{_thr_token(threshold)}.{cell}")
            if (alerted and truth.rogue_present
                    and threshold == cls.default_threshold):
                first = engine.alerts[0]
                add_time(f"wids.eval.{name}.ttd_s",
                         max(0.0, first.t - truth.attack_start_s))
    return local


@dataclass
class ScoreRow:
    """One (detector, threshold) confusion cell set with derived rates."""

    detector: str
    threshold: float
    tp: int
    fp: int
    fn: int
    tn: int

    @property
    def precision(self) -> float:
        return self.tp / (self.tp + self.fp) if (self.tp + self.fp) else 0.0

    @property
    def recall(self) -> float:
        return self.tp / (self.tp + self.fn) if (self.tp + self.fn) else 0.0

    # recall and tpr coincide; both names kept for ROC readability
    @property
    def tpr(self) -> float:
        return self.recall

    @property
    def fpr(self) -> float:
        return self.fp / (self.fp + self.tn) if (self.fp + self.tn) else 0.0

    def to_dict(self) -> dict:
        return {
            "detector": self.detector,
            "threshold": self.threshold,
            "tp": self.tp, "fp": self.fp, "fn": self.fn, "tn": self.tn,
            "precision": self.precision, "recall": self.recall,
            "fpr": self.fpr,
        }


class Scorecard:
    """Rows/ROC/tables over ``wids.eval.*`` metrics from any registry."""

    def __init__(self, rows: List[ScoreRow],
                 ttd: Dict[str, dict]) -> None:
        self._rows = rows
        self._ttd = ttd  # detector -> TimerMetric.to_dict()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_registry(cls, registry: MetricsRegistry) -> "Scorecard":
        cells: Dict[Tuple[str, float], Dict[str, int]] = {}
        ttd: Dict[str, dict] = {}
        for metric_name, metric in registry.subtree("wids.eval").items():
            parts = metric_name.split(".")
            if parts[-1] == "ttd_s" and isinstance(metric, TimerMetric):
                ttd[".".join(parts[2:-1])] = metric.to_dict()
                continue
            if len(parts) < 5 or parts[-1] not in _CELLS:
                continue
            if not isinstance(metric, CounterMetric):
                continue
            detector = ".".join(parts[2:-2])
            try:
                threshold = _thr_value(parts[-2])
            except ValueError:
                continue
            cell = cells.setdefault((detector, threshold),
                                    dict.fromkeys(_CELLS, 0))
            cell[parts[-1]] = metric.value
        rows = [ScoreRow(detector=det, threshold=thr, **counts)
                for (det, thr), counts in cells.items()]
        rows.sort(key=lambda r: (r.detector, r.threshold))
        return cls(rows, ttd)

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "Scorecard":
        return cls.from_registry(MetricsRegistry.from_snapshot(snapshot))

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def rows(self) -> List[ScoreRow]:
        return list(self._rows)

    def detectors(self) -> List[str]:
        return sorted({r.detector for r in self._rows})

    def roc(self, detector: str) -> List[Tuple[float, float, float]]:
        """``(fpr, tpr, threshold)`` points, descending threshold."""
        points = [(r.fpr, r.tpr, r.threshold) for r in self._rows
                  if r.detector == detector]
        points.sort(key=lambda p: -p[2])
        return points

    def auc(self, detector: str) -> Optional[float]:
        """Trapezoidal area under the detector's ROC curve.

        The measured sweep points are closed with the implicit ROC
        endpoints ``(0, 0)`` (threshold -> infinity: never alert) and
        ``(1, 1)`` (threshold -> 0: always alert), so even a one-point
        sweep yields a meaningful area — a single perfect operating
        point ``(fpr=0, tpr=1)`` integrates to 1.0, and a single
        chance-line point to 0.5.  Returns ``None`` when the registry
        holds no rows for the detector.
        """
        points = self.roc(detector)
        if not points:
            return None
        pts = sorted((p[0], p[1]) for p in points)
        pts = [(0.0, 0.0)] + pts + [(1.0, 1.0)]
        area = 0.0
        for (x1, y1), (x2, y2) in zip(pts, pts[1:]):
            area += (x2 - x1) * (y1 + y2) / 2.0
        return area

    def ttd(self, detector: str) -> Optional[dict]:
        """Merged time-to-detect timer dict, or None if never detected."""
        return self._ttd.get(detector)

    def mean_ttd_s(self, detector: str) -> Optional[float]:
        t = self._ttd.get(detector)
        if not t or not t.get("count"):
            return None
        return t["total_s"] / t["count"]

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def report(self, *, title: str = "WIDS evaluation scorecard") -> str:
        # Imported here, not at module level: the radio layer imports
        # repro.wids (for the ambient watch), and repro.core imports
        # the radio layer — a module-level import would be a cycle.
        from repro.core.report import format_table
        aucs = {det: self.auc(det) for det in self.detectors()}
        rows = []
        for r in self._rows:
            mean_ttd = self.mean_ttd_s(r.detector)
            auc = aucs[r.detector]
            rows.append([
                r.detector, f"{r.threshold:g}", r.tp, r.fp, r.fn, r.tn,
                r.precision, r.recall, r.fpr,
                f"{auc:.3f}" if auc is not None else "-",
                f"{mean_ttd:.3f}" if mean_ttd is not None else "-",
            ])
        return format_table(
            ["detector", "thr", "tp", "fp", "fn", "tn",
             "precision", "recall", "fpr", "auc", "mean_ttd_s"],
            rows, title=title)

    def to_json_dict(self) -> dict:
        return {
            "rows": [r.to_dict() for r in self._rows],
            "roc": {det: [{"fpr": p[0], "tpr": p[1], "threshold": p[2]}
                          for p in self.roc(det)]
                    for det in self.detectors()},
            "auc": {det: self.auc(det) for det in self.detectors()},
            "time_to_detect_s": dict(self._ttd),
        }
