"""Online threshold tuning: a sliding-window ROC over the eval stream.

A campaign emits one merged ``wids.eval.*`` registry per generation
(thousands of per-seed registries already reduced in seed order by the
fleet merge law).  :class:`AdaptiveThreshold` keeps the last ``window``
of those, folds them into one windowed registry, and re-derives each
detector's operating threshold from the windowed ROC — the detector
bank retunes *during* the campaign as the attacker population drifts,
instead of holding the hand-picked defaults forever.

The operating point is chosen by Youden's J statistic (``tpr - fpr``,
the vertical distance above the ROC chance line), the standard single-
number criterion when detection and false alarms are weighted equally.
Ties break toward the *higher* threshold: same J means the extra
sensitivity bought nothing, so keep the quieter configuration.
Detectors with no windowed evidence keep their registry defaults.

Everything here is deterministic — fold order is arrival order, the
tie-break is total — so a campaign's threshold trajectory is
reproducible seed-for-seed, serial or parallel.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple, Union

from repro.obs.metrics import MetricsRegistry
from repro.wids.detectors import DETECTORS
from repro.wids.evaluation import Scorecard

__all__ = ["AdaptiveThreshold"]


class AdaptiveThreshold:
    """Sliding-window ROC retuner over merged ``wids.eval.*`` registries."""

    def __init__(self, *, window: int = 8) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self._snapshots: Deque[dict] = deque(maxlen=window)
        self.window = window
        self.observed = 0  # total observe() calls, beyond the window too

    # ------------------------------------------------------------------
    # feeding
    # ------------------------------------------------------------------
    def observe(self, registry: Union[MetricsRegistry, dict]) -> None:
        """Fold one generation's merged eval registry into the window.

        Accepts a live :class:`MetricsRegistry` or its ``snapshot()``
        dict (what the telemetry stream carries).  Oldest generations
        fall off the back once the window is full.
        """
        snap = (registry.snapshot()
                if isinstance(registry, MetricsRegistry) else dict(registry))
        self._snapshots.append(snap)
        self.observed += 1

    def __len__(self) -> int:
        return len(self._snapshots)

    # ------------------------------------------------------------------
    # the windowed view
    # ------------------------------------------------------------------
    def merged(self) -> MetricsRegistry:
        """All windowed generations folded in arrival order."""
        reg = MetricsRegistry()
        for snap in self._snapshots:
            reg.merge(MetricsRegistry.from_snapshot(snap))
        return reg

    def scorecard(self) -> Scorecard:
        return Scorecard.from_registry(self.merged())

    # ------------------------------------------------------------------
    # the tuned operating point
    # ------------------------------------------------------------------
    def threshold_for(self, detector: str,
                      card: Optional[Scorecard] = None) -> Optional[float]:
        """Best windowed threshold for one detector, or ``None`` if no data."""
        if card is None:
            card = self.scorecard()
        points = card.roc(detector)  # (fpr, tpr, threshold), desc threshold
        if not points:
            return None
        best = max(points, key=lambda p: (p[1] - p[0], p[2]))
        return best[2]

    def thresholds(self) -> Dict[str, float]:
        """Per-detector operating thresholds for the current window.

        The dict is shaped for
        ``repro.wids.detectors.default_detectors(thresholds=...)``:
        every registered detector appears, falling back to its
        ``default_threshold`` when the window holds no evidence for it.
        """
        card = self.scorecard()
        out: Dict[str, float] = {}
        for name, cls in DETECTORS.items():
            tuned = self.threshold_for(name, card)
            out[name] = tuned if tuned is not None else cls.default_threshold
        return out

    def operating_points(self) -> List[Tuple[str, float, float, float]]:
        """``(detector, threshold, tpr, fpr)`` at each tuned point."""
        card = self.scorecard()
        points = []
        for name, threshold in self.thresholds().items():
            tpr = fpr = 0.0
            for p_fpr, p_tpr, p_thr in card.roc(name):
                if p_thr == threshold:
                    tpr, fpr = p_tpr, p_fpr
                    break
            points.append((name, threshold, tpr, fpr))
        return points

    def to_json_dict(self) -> dict:
        return {
            "window": self.window,
            "generations_seen": self.observed,
            "generations_windowed": len(self._snapshots),
            "thresholds": self.thresholds(),
            "operating_points": [
                {"detector": d, "threshold": thr, "tpr": tpr, "fpr": fpr}
                for d, thr, tpr, fpr in self.operating_points()
            ],
        }
