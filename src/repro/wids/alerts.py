"""WIDS alerts: what a detector's accumulated evidence becomes.

An :class:`Alert` is the unit the correlation engine emits — one per
``(detector, subject)`` pair, opened the instant accumulated evidence
crosses the detector's threshold and updated (never duplicated) as
further evidence for the same pair arrives.  Alerts carry the lineage
``trace_id`` of every contributing frame (bounded), so
``python -m repro trace --follow`` can reconstruct the causal chain
behind any alert when the flight recorder was active.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Alert", "MAX_TRACE_IDS"]

# Alerts keep at most this many contributing frame lineage ids — enough
# to seed `trace --follow` without growing without bound under floods.
MAX_TRACE_IDS = 16


@dataclass
class Alert:
    """One correlated detection: a subject a detector decided is hostile.

    ``t`` is the threshold-crossing time (when the alert *opened*), the
    number the time-to-detect evaluation measures; ``first_evidence_t``
    and ``last_evidence_t`` bracket every frame that contributed.
    """

    detector: str                 # registry name of the detector
    subject: str                  # what's being accused (BSSID, SSID, ...)
    t: float                      # sim time the threshold was crossed
    score: float                  # accumulated evidence score
    count: int                    # number of contributing detections
    first_evidence_t: float
    last_evidence_t: float
    reason: str = ""
    trace_ids: list[int] = field(default_factory=list)
    # Stream position of the ingest that opened this alert.  The serial
    # alert order is exactly ascending open_seq, which is what lets
    # ShardedCorrelator.merge() reassemble per-shard alert lists into
    # the unsharded order bit-for-bit.  Bookkeeping, not payload — it is
    # deliberately absent from to_dict().
    open_seq: int = 0

    @property
    def severity(self) -> str:
        """Coarse triage bucket from how far past threshold we are."""
        if self.score >= 10.0:
            return "critical"
        if self.score >= 3.0:
            return "high"
        return "warn"

    def to_dict(self) -> dict:
        return {
            "detector": self.detector,
            "subject": self.subject,
            "t": self.t,
            "score": self.score,
            "count": self.count,
            "first_evidence_t": self.first_evidence_t,
            "last_evidence_t": self.last_evidence_t,
            "severity": self.severity,
            "reason": self.reason,
            "trace_ids": list(self.trace_ids),
        }

    def add_trace_id(self, trace_id: Optional[int]) -> None:
        if trace_id is None:
            return
        if len(self.trace_ids) < MAX_TRACE_IDS and trace_id not in self.trace_ids:
            self.trace_ids.append(trace_id)
