"""E-WIDS: score the detector bank against the paper's rogue-AP worlds.

Three worlds per seed, one evaluation registry:

* **naive** — the Fig. 1/Fig. 2 rogue exactly as §4 builds it (plus a
  sloppy soft-AP beacon scheduler), download MITM armed, victim
  downloading.  Every detector should fire, and the first alert must
  land *before* the netsed rewrite reaches the victim — detection
  beats compromise.
* **evasive** — the same rogue running the evasion playbook:
  ``mirror_seqctl`` (stamp frames as successors of the overheard
  legitimate counter) and ``match_beacon_cadence`` (crystal-exact
  TBTT).  Gap analysis and jitter analysis go quiet; the fingerprint
  and multi-channel detectors still fire, because a second radio on a
  second channel is physically unhideable.
* **deauth-flood** — no rogue BSS, but a §4 deauth injector hammering
  the legitimate AP's identity.  The flood detector and the seqctl
  detector (the injector's arbitrary counter interleaves with the real
  AP's) carry this world; the beacon detectors rightly stay silent, so
  the merged scorecard shows the *bank's* complementary coverage — no
  single detector sees every attack.
* **benign** — the same office with no rogue at all: any alert is a
  false positive, and the acceptance bar is zero.

Confusion cells and time-to-detect go through
:func:`repro.wids.evaluation.evaluate` into both a local registry (the
returned payload is independent of ambient observability — the
zero-perturbation discipline) and the ambient obs registry, where the
fleet's seed-order ``merge()`` makes ``sweep --wids`` scorecards
bit-identical serial vs parallel.
"""

from __future__ import annotations

from typing import Optional

from repro.attacks.deauth import DeauthAttacker
from repro.attacks.sniffer import MonitorSniffer
from repro.core.scenario import LEGIT_BSSID, build_corp_scenario
from repro.obs.metrics import MetricsRegistry
from repro.radio.propagation import Position
from repro.wids.engine import WidsEngine
from repro.wids.evaluation import GroundTruth, Scorecard, evaluate

__all__ = ["exp_wids_eval"]

#: Beacon-scheduler slop for the naive rogue: a default hostap-style
#: soft AP misses TBTT by multiple milliseconds under load.
SLOPPY_BEACON_JITTER_S = 0.03


def _run_world(seed: int, *, rogue: bool, mirror: bool = False,
               jitter_s: float = 0.0, cadence_match: bool = False,
               registry: Optional[MetricsRegistry] = None) -> dict:
    """One labelled world: build, watch, attack (maybe), download, score."""
    scenario = build_corp_scenario(
        seed=seed,
        with_rogue=rogue,
        rogue_mirror_seqctl=mirror,
        rogue_beacon_jitter_s=jitter_s,
        rogue_match_beacon_cadence=cadence_match,
    )
    sniffer = MonitorSniffer(scenario.sim, scenario.medium, Position(15.0, 5.0))
    engine = WidsEngine()
    engine.attach(sniffer.capture)          # live tap: alerts as frames land
    if rogue:
        scenario.arm_download_mitm()
    victim = scenario.add_victim()
    scenario.sim.run_for(5.0)
    outcome = scenario.run_download_experiment(victim)
    evaluate(sniffer.capture,
             GroundTruth(rogue_present=rogue, attack_start_s=0.0),
             registry=registry)
    netsed_times = [rec.time for rec in scenario.sim.trace.records
                    if rec.category.startswith("netsed.")]
    alerts = engine.alerts
    return {
        "alerts": [a.to_dict() for a in alerts],
        "alert_count": len(alerts),
        "alerted_detectors": sorted({a.detector for a in alerts}),
        "first_alert_t": alerts[0].t if alerts else None,
        "first_netsed_t": min(netsed_times) if netsed_times else None,
        "seqctl_evidence": engine.correlator.evidence_score(
            "seqctl", str(LEGIT_BSSID)),
        "compromised": outcome.compromised,
        "frames_seen": engine.frames_seen,
    }


def _run_deauth_world(seed: int,
                      registry: Optional[MetricsRegistry]) -> dict:
    """No rogue BSS — a deauth injector spoofing the legitimate AP."""
    scenario = build_corp_scenario(seed=seed, with_rogue=False)
    sniffer = MonitorSniffer(scenario.sim, scenario.medium, Position(15.0, 5.0))
    engine = WidsEngine()
    engine.attach(sniffer.capture)
    scenario.add_victim()
    attack_start = scenario.sim.now
    attacker = DeauthAttacker(scenario.sim, scenario.medium,
                              Position(30.0, 0.0),
                              ap_bssid=LEGIT_BSSID, channel=1, rate_hz=10.0)
    attacker.start()
    scenario.sim.run_for(20.0)
    attacker.stop()
    evaluate(sniffer.capture,
             GroundTruth(rogue_present=True, attack_start_s=attack_start),
             registry=registry)
    alerts = engine.alerts
    return {
        "alerts": [a.to_dict() for a in alerts],
        "alert_count": len(alerts),
        "alerted_detectors": sorted({a.detector for a in alerts}),
        "first_alert_t": alerts[0].t if alerts else None,
        "frames_injected": attacker.frames_injected,
        "frames_seen": engine.frames_seen,
    }


def exp_wids_eval(seed: int = 1) -> dict:
    """Run naive / evasive / deauth / benign worlds; return the scorecard."""
    registry = MetricsRegistry()
    naive = _run_world(seed, rogue=True, jitter_s=SLOPPY_BEACON_JITTER_S,
                       registry=registry)
    evasive = _run_world(seed, rogue=True, mirror=True, cadence_match=True,
                         registry=registry)
    deauth = _run_deauth_world(seed, registry)
    benign = _run_world(seed, rogue=False, registry=registry)
    scorecard = Scorecard.from_registry(registry)
    alert_before_rewrite = (
        naive["first_alert_t"] is not None
        and naive["first_netsed_t"] is not None
        and naive["first_alert_t"] < naive["first_netsed_t"]
    )
    return {
        "worlds": {"naive": naive, "evasive": evasive,
                   "deauth": deauth, "benign": benign},
        # detection beats compromise: the alert precedes the rewrite
        "alert_before_rewrite": alert_before_rewrite,
        "benign_false_positives": benign["alert_count"],
        "evasion": {
            "naive_seqctl_evidence": naive["seqctl_evidence"],
            "evasive_seqctl_evidence": evasive["seqctl_evidence"],
            "seqctl_evaded": (
                evasive["seqctl_evidence"] < naive["seqctl_evidence"]
                and "seqctl" not in evasive["alerted_detectors"]
            ),
            "jitter_evaded": "beacon-jitter" not in evasive["alerted_detectors"],
            "unhideable": sorted(
                set(evasive["alerted_detectors"])
                & {"fingerprint", "multichannel"}),
        },
        "scorecard": scorecard.to_json_dict(),
    }
