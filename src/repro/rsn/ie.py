"""RSN, channel-switch, and vendor information-element codecs.

The RSN (robust security network) element is how a modern network
*advertises* its security posture: which pairwise/group ciphers it
runs, which AKMs (PSK = WPA2-personal, SAE = WPA3) it accepts, and
whether management-frame protection (802.11w) is capable/required —
the MFPC/MFPR capability bits.  The element is still **self-asserted
and unauthenticated**, exactly like the 2003-era SSID the paper turns
on: nothing stops a rogue from advertising a *weaker* RSN under the
same SSID/BSSID.  SAE only closes the hole if clients refuse the
downgrade — which is precisely what the E-DOWNGRADE experiment probes.

Wire layout (802.11-2016 §9.4.2.25, simplified: no PMKID list, no
group-management-cipher field):

    u16   version (= 1)
    4B    group cipher suite   (OUI 00-0F-AC + type)
    u16   pairwise count, then count x 4B suites
    u16   AKM count,      then count x 4B suites
    u16   RSN capabilities    (bit 6 MFPR, bit 7 MFPC)

All integers little-endian, as everywhere in 802.11.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import Optional, Union

from repro.dot11.ies import IeId, InformationElement
from repro.sim.errors import ProtocolError
from repro.wire import HeaderSpec, fixed_bytes, take, u16

__all__ = [
    "AkmSuite",
    "CipherSuite",
    "CsaIe",
    "MFPC",
    "MFPR",
    "RSN_OUI",
    "RSN_VERSION",
    "RsnIe",
    "RsnSelection",
    "VendorIe",
    "negotiate",
]

#: The OUI every standard cipher/AKM selector carries.
RSN_OUI = b"\x00\x0f\xac"
RSN_VERSION = 1

# RSN capability bits (u16, little-endian).
MFPR = 0x0040  # management frame protection REQUIRED
MFPC = 0x0080  # management frame protection CAPABLE


class CipherSuite(enum.IntEnum):
    """Cipher suite selector types under OUI 00-0F-AC."""

    WEP40 = 1
    TKIP = 2
    CCMP = 4
    WEP104 = 5
    BIP_CMAC = 6  # the management-frame integrity cipher (802.11w)


class AkmSuite(enum.IntEnum):
    """AKM suite selector types under OUI 00-0F-AC."""

    IEEE_8021X = 1
    PSK = 2        # WPA2-Personal
    SAE = 8        # WPA3-Personal

    @property
    def strength(self) -> int:
        """Ordering for "strongest mutually supported" negotiation."""
        return _AKM_STRENGTH.get(int(self), 0)


#: SAE resists offline dictionary attacks and provides forward secrecy;
#: 802.1X delegates to an authentication server; raw PSK does neither.
_AKM_STRENGTH = {int(AkmSuite.SAE): 3, int(AkmSuite.IEEE_8021X): 2,
                 int(AkmSuite.PSK): 1}

_RSN_PREFIX = HeaderSpec(
    "RSN IE prefix", "<",
    u16("version"),
    fixed_bytes("group", 4),
)


def _pack_suite(suite_type: int) -> bytes:
    if not 0 <= suite_type <= 255:
        raise ProtocolError(f"suite selector type {suite_type} out of range")
    return RSN_OUI + bytes([suite_type])


def _parse_suite(raw: Union[bytes, memoryview], what: str) -> int:
    raw = bytes(raw)
    if raw[:3] != RSN_OUI:
        raise ProtocolError(f"non-standard {what} suite OUI {raw[:3].hex()}")
    return raw[3]


@dataclass(frozen=True)
class RsnIe:
    """A decoded (or to-be-advertised) RSN element."""

    group_cipher: int = CipherSuite.CCMP
    pairwise: tuple[int, ...] = (int(CipherSuite.CCMP),)
    akms: tuple[int, ...] = (int(AkmSuite.PSK),)
    pmf_capable: bool = False
    pmf_required: bool = False
    version: int = RSN_VERSION

    def __post_init__(self) -> None:
        if not self.pairwise:
            raise ProtocolError("RSN IE needs at least one pairwise cipher")
        if not self.akms:
            raise ProtocolError("RSN IE needs at least one AKM suite")
        if len(self.pairwise) > 255 or len(self.akms) > 255:
            raise ProtocolError("RSN suite list too long")

    # -- convenience profiles ------------------------------------------
    @classmethod
    def wpa2(cls) -> "RsnIe":
        """WPA2-Personal: PSK, no management-frame protection."""
        return cls(akms=(int(AkmSuite.PSK),))

    @classmethod
    def wpa3(cls) -> "RsnIe":
        """WPA3-Personal: SAE with PMF mandatory."""
        return cls(akms=(int(AkmSuite.SAE),),
                   pmf_capable=True, pmf_required=True)

    @classmethod
    def wpa3_transition(cls) -> "RsnIe":
        """Transition mode: SAE preferred, PSK allowed, PMF optional.

        The mode the downgrade attack feeds on — the client *may* fall
        back, so a rogue advertising PSK-only still gets a bite.
        """
        return cls(akms=(int(AkmSuite.SAE), int(AkmSuite.PSK)),
                   pmf_capable=True, pmf_required=False)

    @property
    def capabilities(self) -> int:
        caps = 0
        if self.pmf_capable or self.pmf_required:
            caps |= MFPC
        if self.pmf_required:
            caps |= MFPR
        return caps

    def supports(self, akm: int) -> bool:
        return int(akm) in self.akms

    # -- wire ----------------------------------------------------------
    def pack(self) -> bytes:
        out = [_RSN_PREFIX.pack(version=self.version,
                                group=_pack_suite(self.group_cipher))]
        out.append(struct.pack("<H", len(self.pairwise)))
        out.extend(_pack_suite(s) for s in self.pairwise)
        out.append(struct.pack("<H", len(self.akms)))
        out.extend(_pack_suite(s) for s in self.akms)
        out.append(struct.pack("<H", self.capabilities))
        return b"".join(out)

    def to_ie(self) -> InformationElement:
        return InformationElement(IeId.RSN, self.pack())

    @classmethod
    def parse(cls, body: Union[bytes, bytearray, memoryview]) -> "RsnIe":
        view = memoryview(body)
        if len(view) < _RSN_PREFIX.size:
            raise ProtocolError("truncated RSN IE prefix")
        prefix = _RSN_PREFIX.unpack(view[:_RSN_PREFIX.size])
        offset = _RSN_PREFIX.size
        group = _parse_suite(prefix["group"], "group cipher")

        def suite_list(what: str, offset: int) -> tuple[tuple[int, ...], int]:
            raw, offset = take(view, offset, 2, f"RSN {what} count")
            (count,) = struct.unpack("<H", raw)
            suites = []
            for _ in range(count):
                raw, offset = take(view, offset, 4, f"RSN {what} suite")
                suites.append(_parse_suite(raw, what))
            return tuple(suites), offset

        pairwise, offset = suite_list("pairwise", offset)
        akms, offset = suite_list("AKM", offset)
        raw, offset = take(view, offset, 2, "RSN capabilities")
        (caps,) = struct.unpack("<H", raw)
        return cls(
            group_cipher=group,
            pairwise=pairwise,
            akms=akms,
            pmf_capable=bool(caps & MFPC),
            pmf_required=bool(caps & MFPR),
            version=prefix["version"],
        )

    @classmethod
    def from_ie(cls, ie: InformationElement) -> "RsnIe":
        if ie.element_id != IeId.RSN:
            raise ProtocolError(f"not an RSN IE (id {ie.element_id})")
        return cls.parse(ie.data)


@dataclass(frozen=True)
class CsaIe:
    """Channel Switch Announcement (802.11h §9.4.2.19).

    "This BSS moves to ``new_channel`` in ``count`` beacon intervals."
    Standards-honest clients follow it blindly — the element is as
    unauthenticated as a 2003 beacon, which is what `CsaLureAttack`
    exploits to herd victims onto the rogue's channel.
    """

    new_channel: int
    count: int = 3          # beacons until the switch
    mode: int = 1           # 1 = cease transmission until switched

    def __post_init__(self) -> None:
        if not 1 <= self.new_channel <= 14:
            raise ProtocolError(f"invalid CSA target channel {self.new_channel}")
        if not 0 <= self.count <= 255:
            raise ProtocolError("CSA count out of range")
        if self.mode not in (0, 1):
            raise ProtocolError("CSA mode must be 0 or 1")

    def pack(self) -> bytes:
        return bytes([self.mode, self.new_channel, self.count])

    def to_ie(self) -> InformationElement:
        return InformationElement(IeId.CHANNEL_SWITCH, self.pack())

    @classmethod
    def parse(cls, body: Union[bytes, bytearray, memoryview]) -> "CsaIe":
        raw = bytes(body)
        if len(raw) != 3:
            raise ProtocolError(f"CSA IE must be 3 bytes, got {len(raw)}")
        return cls(mode=raw[0], new_channel=raw[1], count=raw[2])


@dataclass(frozen=True)
class VendorIe:
    """Vendor-specific element (id 221): a 3-byte OUI scoping a blob.

    Pre-standard WPA v1 lived here; we use an OUI-scoped container to
    carry SAE commit/confirm payloads inside auth frames so that
    RSN-oblivious parsers skip them as just another unknown element.
    """

    oui: bytes
    data: bytes = b""

    def __post_init__(self) -> None:
        if len(self.oui) != 3:
            raise ProtocolError("vendor IE OUI must be 3 bytes")
        if len(self.data) > 252:
            raise ProtocolError("vendor IE payload too long")

    def pack(self) -> bytes:
        return self.oui + self.data

    def to_ie(self) -> InformationElement:
        return InformationElement(IeId.VENDOR_SPECIFIC, self.pack())

    @classmethod
    def parse(cls, body: Union[bytes, bytearray, memoryview]) -> "VendorIe":
        raw = bytes(body)
        if len(raw) < 3:
            raise ProtocolError("truncated vendor IE (no OUI)")
        return cls(oui=raw[:3], data=raw[3:])


# ----------------------------------------------------------------------
# negotiation
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class RsnSelection:
    """Outcome of AP/STA RSN negotiation: one AKM, one cipher, PMF y/n."""

    akm: int
    pairwise: int
    group: int
    pmf: bool

    @property
    def akm_name(self) -> str:
        try:
            return AkmSuite(self.akm).name
        except ValueError:
            return f"akm-{self.akm}"


#: Cipher preference for negotiation (strongest first).
_CIPHER_PREFERENCE = (int(CipherSuite.CCMP), int(CipherSuite.TKIP))


def negotiate(ap: Optional[RsnIe], sta: Optional[RsnIe]) -> Optional[RsnSelection]:
    """Strongest mutually supported AKM + cipher, honoring PMF bits.

    Returns None when no RSN association is possible: either side
    lacks an RSN IE, versions mismatch, no common AKM/cipher exists,
    or one side *requires* PMF the other cannot do.
    """
    if ap is None or sta is None:
        return None
    if ap.version != RSN_VERSION or sta.version != RSN_VERSION:
        return None
    common_akms = [a for a in ap.akms if a in sta.akms]
    if not common_akms:
        return None
    akm = max(common_akms, key=lambda a: _AKM_STRENGTH.get(int(a), 0))
    pairwise = next((c for c in _CIPHER_PREFERENCE
                     if c in ap.pairwise and c in sta.pairwise), None)
    if pairwise is None:
        return None
    ap_mfpc = ap.pmf_capable or ap.pmf_required
    sta_mfpc = sta.pmf_capable or sta.pmf_required
    if ap.pmf_required and not sta_mfpc:
        return None
    if sta.pmf_required and not ap_mfpc:
        return None
    return RsnSelection(akm=int(akm), pairwise=int(pairwise),
                        group=int(ap.group_cipher), pmf=ap_mfpc and sta_mfpc)
