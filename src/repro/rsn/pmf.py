"""802.11w management-frame protection (PMF), BIP-CMAC style.

Once a PMF association is keyed, every deauth/disassoc the AP sends
carries a Management MIC Element (MME, element id 76): a key id, a
monotonically increasing packet number (IPN, replay protection), and a
truncated MAC over the frame's addresses, subtype, and body.  A
station that negotiated PMF *discards* any deauth/disassoc whose MME
is absent, stale, or wrong — so the paper's §4 deauth flood, which
forges exactly such frames without the key, bounces off.

Simplifications (DESIGN §15): the MIC is truncated HMAC-SHA1 rather
than AES-128-CMAC (the repo has no AES, and the experiments measure
*rejection of forgeries*, not cipher strength), the IGTK is derived
from the established pairwise KCK instead of being distributed in the
group handshake, and the pre-key SA-query dance is out of scope — PMF
here protects established sessions, which is where the flood attack
aims.

MME wire layout (802.11-2016 §9.4.2.55): u16 key id, 6-byte IPN,
8-byte MIC.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Union

from repro.crypto.hmac import constant_time_equal, hmac_sha1
from repro.dot11.frames import Dot11Frame
from repro.dot11.ies import IeId, InformationElement, find_ie
from repro.sim.errors import ProtocolError

__all__ = ["MME_LEN", "Mme", "derive_igtk", "mme_for_frame",
           "verify_mgmt_mic"]

_MIC_LEN = 8
_IPN_LEN = 6
MME_LEN = 2 + _IPN_LEN + _MIC_LEN  # keyid + ipn + mic


def derive_igtk(kck: bytes) -> bytes:
    """Integrity group key for management frames, from the pairwise KCK."""
    return hmac_sha1(kck, b"BIP IGTK")[:16]


@dataclass(frozen=True)
class Mme:
    """A decoded Management MIC Element."""

    key_id: int
    ipn: int
    mic: bytes

    def pack(self) -> bytes:
        return (struct.pack("<H", self.key_id)
                + self.ipn.to_bytes(_IPN_LEN, "little") + self.mic)

    def to_ie(self) -> InformationElement:
        return InformationElement(IeId.MME, self.pack())

    @classmethod
    def parse(cls, body: Union[bytes, bytearray, memoryview]) -> "Mme":
        raw = bytes(body)
        if len(raw) != MME_LEN:
            raise ProtocolError(f"MME must be {MME_LEN} bytes, got {len(raw)}")
        (key_id,) = struct.unpack("<H", raw[:2])
        return cls(key_id=key_id,
                   ipn=int.from_bytes(raw[2:2 + _IPN_LEN], "little"),
                   mic=raw[2 + _IPN_LEN:])


def _mic_input(frame: Dot11Frame, ipn: int) -> bytes:
    """The authenticated associated data: who, what, and the body."""
    return (bytes([frame.subtype.value])
            + frame.addr1.bytes + frame.addr2.bytes + frame.addr3.bytes
            + ipn.to_bytes(_IPN_LEN, "little")
            + frame.body)


def mme_for_frame(frame: Dot11Frame, igtk: bytes, ipn: int) -> Mme:
    """Build the MME for a management frame *before* the MME is appended.

    ``frame.body`` must hold the unprotected body (e.g. the 2-byte
    reason); the caller appends ``mme.to_ie()`` to it afterwards.
    """
    mic = hmac_sha1(igtk, _mic_input(frame, ipn))[:_MIC_LEN]
    return Mme(key_id=4, ipn=ipn, mic=mic)


def verify_mgmt_mic(frame: Dot11Frame, igtk: bytes,
                    last_ipn: int, *, body_prefix_len: int = 2
                    ) -> Optional[int]:
    """Check a received deauth/disassoc's MME.

    Returns the frame's IPN when the MIC verifies and the IPN advances
    past ``last_ipn`` (store it as the new high-water mark), or None
    for forgeries: MME missing, malformed, replayed, or MIC mismatch.
    """
    try:
        ies = frame.parse_trailing_ies(body_prefix_len)
    except ProtocolError:
        return None
    mme_el = find_ie(ies, IeId.MME)
    if mme_el is None:
        return None
    try:
        mme = Mme.parse(mme_el.data)
    except ProtocolError:
        return None
    if mme.ipn <= last_ipn:
        return None  # replay
    # Recompute over the body with the MME stripped (it was appended
    # after MIC computation, so the authenticated body ends where the
    # trailing IE list begins... minus the MME element itself).
    stripped = frame.with_body(
        frame.body[:len(frame.body) - (MME_LEN + 2)])
    expected = hmac_sha1(igtk, _mic_input(stripped, mme.ipn))[:_MIC_LEN]
    if not constant_time_equal(mme.mic, expected):
        return None
    return mme.ipn
