"""Modern rogue-AP attacks: security downgrade and CSA herding.

Twenty years after the paper, the rogue AP of Figure 1 still works —
it just has to defeat the negotiation first.  These two attacks are
the contemporary forms:

* :class:`DowngradeRogueAP` clones the target SSID but advertises a
  *weaker* security posture (WPA2-PSK instead of WPA3-SAE, or no RSN
  at all).  A strict WPA3-only client refuses it; a transition-mode
  client — the overwhelmingly common deployment — negotiates down,
  and a sloppy one (``rsn_strict=False``) will even associate open.
* :class:`CsaLureAttack` exploits that beacons, and the channel-switch
  announcements they carry, are *still* unauthenticated even under
  WPA3: forged CSA beacons herd an associated victim onto the channel
  where the rogue twin waits.
"""

from __future__ import annotations

from typing import Optional

from repro.dot11.frames import make_beacon
from repro.dot11.mac import MacAddress
from repro.dot11.seqctl import SequenceCounter
from repro.hosts.ap_core import ApCore
from repro.obs.runtime import obs_metrics
from repro.radio.medium import Medium, RadioPort
from repro.radio.propagation import Position
from repro.rsn.ie import CsaIe, RsnIe
from repro.sim.errors import ConfigurationError
from repro.sim.kernel import Simulator

__all__ = ["CsaLureAttack", "DowngradeRogueAP"]


class DowngradeRogueAP:
    """An evil twin that wins by *offering less* security.

    Parameters
    ----------
    mode:
        ``"wpa2"`` — advertise PSK-only RSN.  A WPA3-transition client
        negotiates PSK, runs the offline-crackable 4-way instead of
        SAE, and never gets PMF; ``psk`` is the passphrase-derived key
        (transition networks keep one PSK for both AKMs, so a cracked
        or shared passphrase hands it to the attacker).
        ``"open"`` — advertise no RSN at all; only a non-strict client
        associates, and then in cleartext.
    """

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        position: Position,
        *,
        ssid: str,
        bssid: MacAddress,
        channel: int,
        mode: str = "wpa2",
        psk: Optional[bytes] = None,
        name: str = "downgrade-rogue",
        tx_power_dbm: float = 18.0,
    ) -> None:
        if mode not in ("wpa2", "open"):
            raise ConfigurationError(f"unknown downgrade mode {mode!r}")
        if mode == "wpa2" and psk is None:
            raise ConfigurationError("wpa2 downgrade needs the network PSK")
        self.mode = mode
        rsn = RsnIe.wpa2() if mode == "wpa2" else None
        self.core = ApCore(
            sim, medium, name,
            bssid=bssid, ssid=ssid, channel=channel, position=position,
            wpa_psk=psk if mode == "wpa2" else None, rsn=rsn,
            tx_power_dbm=tx_power_dbm,
        )
        sim.trace.emit("attack.downgrade_ap", name, ssid=ssid,
                       bssid=str(bssid), channel=channel, mode=mode)

    @property
    def victims(self) -> list[MacAddress]:
        """Stations that took the weaker offer."""
        return list(self.core.clients)

    def shutdown(self) -> None:
        self.core.shutdown()


class CsaLureAttack:
    """Forged channel-switch announcements herding a BSS's clients.

    Injects beacons byte-cloned from the legitimate AP (same BSSID,
    SSID, capabilities) with one addition: a CSA IE ordering a switch
    to ``lure_channel``.  Clients obey the standard and retune — onto
    the channel where the attacker's twin is waiting.  Works against
    WPA3/PMF networks because beacons carry no MIC; only the new
    ``unexpected-CSA`` WIDS detector sees it.
    """

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        position: Position,
        *,
        clone_bssid: MacAddress,
        ssid: str,
        legit_channel: int,
        lure_channel: int,
        privacy: bool = True,
        rsn: Optional[RsnIe] = None,
        csa_count: int = 1,
        rate_hz: float = 10.0,
        name: str = "csa-lure",
        tx_power_dbm: float = 18.0,
    ) -> None:
        self.sim = sim
        self.clone_bssid = clone_bssid
        self.ssid = ssid
        self.lure_channel = lure_channel
        self.privacy = privacy
        self.rate_hz = rate_hz
        self.port = RadioPort(name=name, position=position,
                              channel=legit_channel,
                              tx_power_dbm=tx_power_dbm)
        medium.attach(self.port)
        # An injector's counter, not the AP's — seqctl analysis applies.
        self.seqctl = SequenceCounter(
            sim.rng.substream(f"seq.{name}").randrange(0, 4096))
        ies = []
        if rsn is not None:
            ies.append(rsn.to_ie())
        ies.append(CsaIe(new_channel=lure_channel, count=csa_count).to_ie())
        self._extra_ies = ies
        self._legit_channel = legit_channel
        self.frames_injected = 0
        self._stop = None

    def start(self) -> None:
        if self._stop is not None:
            return
        self._stop = self.sim.every(1.0 / self.rate_hz, self._inject)
        self.sim.trace.emit("attack.csa_lure.start", self.port.name,
                            bssid=str(self.clone_bssid),
                            lure_channel=self.lure_channel)

    def stop(self) -> None:
        if self._stop is not None:
            self._stop()
            self._stop = None

    def _inject(self) -> None:
        frame = make_beacon(self.clone_bssid, self.ssid, self._legit_channel,
                            privacy=self.privacy, seq=self.seqctl.next(),
                            extra_ies=self._extra_ies)
        self.port.transmit(frame)
        self.frames_injected += 1
        m = obs_metrics()
        if m is not None:
            m.incr("attack.csa_lure.injected")
