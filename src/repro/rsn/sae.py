"""Simplified SAE (WPA3 "dragonfly") commit/confirm handshake.

Two parties who share a *password* run an ephemeral DH exchange
(commit), then each proves knowledge of both the password and the
resulting shared secret with a MAC over the full transcript (confirm).
The session key (PMK) that falls out is fresh per handshake.

What the simplification preserves — the three properties the
experiments lean on:

* **Mutual password proof.**  The key schedule mixes the password into
  every derived key, so a rogue AP that does not know the password can
  answer the commit but its confirm fails verification: the client
  refuses it *cryptographically*, where 2003's open/WEP client had
  nothing to check.
* **Forward secrecy.**  The PMK depends on the ephemeral DH secret;
  recording traffic and later learning the password does not decrypt
  old sessions (unlike WPA2-PSK, where the PMK *is* the password
  derivative).
* **Fresh PMK per association** feeding the existing 4-way handshake,
  exactly how real WPA3 layers SAE under 802.11i key management.

What it drops (documented, DESIGN §15): the Hunting-and-Pecking /
hash-to-element derivation of the password element (we MAC the
password into the key schedule instead of blinding the commit scalars
with it), anti-clogging tokens, and group negotiation — none of which
the downgrade/PMF scenarios measure.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.crypto.dh import DH_GROUP_1536, DhGroup, DiffieHellman
from repro.crypto.hmac import constant_time_equal, hmac_sha1
from repro.dot11.ies import IeId, InformationElement
from repro.dot11.mac import MacAddress
from repro.rsn.ie import RSN_OUI, VendorIe
from repro.sim.errors import ProtocolError

__all__ = ["SAE_GROUP_IDS", "SaeError", "SaeParty", "sae_container_ie",
           "sae_payload"]

#: Wire tags for the groups a commit may name (RFC 3526 numbering for
#: the real group; 0 is the documented-unsafe test group).
SAE_GROUP_IDS = {"modp1536": 5, "toy32": 0}

_CONFIRM_LEN = 16
_PMK_LEN = 32


class SaeError(ProtocolError):
    """A malformed or unverifiable SAE message."""


#: Subtype byte scoping our SAE container inside a vendor IE.  Real
#: SAE puts commit/confirm fields bare in the auth body; carrying them
#: as an OUI-scoped element instead means pre-RSN parsers skip them as
#: just another unknown IE (documented simplification, DESIGN §15).
SAE_CONTAINER_SUBTYPE = 0x53


def sae_container_ie(payload: bytes) -> InformationElement:
    """Wrap an SAE commit/confirm payload for an auth frame's IE list."""
    return VendorIe(RSN_OUI, bytes([SAE_CONTAINER_SUBTYPE]) + payload).to_ie()


def sae_payload(ies: list) -> Optional[bytes]:
    """Extract an SAE payload from parsed auth-frame IEs, or None."""
    for el in ies:
        if (el.element_id == IeId.VENDOR_SPECIFIC and len(el.data) >= 4
                and el.data[:3] == RSN_OUI
                and el.data[3] == SAE_CONTAINER_SUBTYPE):
            return el.data[4:]
    return None


def _sorted_pair(a: bytes, b: bytes) -> bytes:
    return a + b if a <= b else b + a


class SaeParty:
    """One side (AP or STA) of a simplified SAE handshake.

    Symmetric by construction: both sides send a commit, process the
    peer's commit, send a confirm, verify the peer's confirm.  After a
    verified confirm, :attr:`pmk` holds the fresh 32-byte session key.
    """

    def __init__(self, password: str, own_mac: MacAddress,
                 peer_mac: MacAddress, rng, *,
                 group: DhGroup = DH_GROUP_1536) -> None:
        if group.name not in SAE_GROUP_IDS:
            raise SaeError(f"SAE has no wire id for DH group {group.name!r}")
        self.group = group
        self._password = password.encode("utf-8")
        self._macs = _sorted_pair(own_mac.bytes, peer_mac.bytes)
        self._dh = DiffieHellman(group, rng)
        self._element_len = (group.p.bit_length() + 7) // 8
        self._own_commit = (
            struct.pack("<H", SAE_GROUP_IDS[group.name])
            + self._dh.public.to_bytes(self._element_len, "big"))
        self._peer_commit: Optional[bytes] = None
        self._kck: Optional[bytes] = None
        self.pmk: Optional[bytes] = None
        self.confirmed = False

    # -- commit --------------------------------------------------------
    def commit_bytes(self) -> bytes:
        """Our commit message: group id + ephemeral element."""
        return self._own_commit

    def process_commit(self, raw: bytes) -> None:
        if len(raw) != 2 + self._element_len:
            raise SaeError(f"SAE commit wrong length ({len(raw)} bytes)")
        (group_id,) = struct.unpack("<H", raw[:2])
        if group_id != SAE_GROUP_IDS[self.group.name]:
            raise SaeError(f"SAE group mismatch (peer sent {group_id})")
        element = int.from_bytes(raw[2:], "big")
        if not self.group.validate_public(element):
            raise SaeError("degenerate SAE commit element")
        self._peer_commit = bytes(raw)
        shared = self._dh.shared_secret(element)
        # keyseed binds the password to the ephemeral secret: without
        # the password there is no way to compute kck, hence no way to
        # produce or verify a confirm.
        transcript = self._macs + _sorted_pair(self._own_commit,
                                               self._peer_commit)
        keyseed = hmac_sha1(self._password, shared + transcript)
        self._kck = hmac_sha1(keyseed, b"SAE KCK")
        self.pmk = (hmac_sha1(keyseed, b"SAE PMK" + b"\x00")
                    + hmac_sha1(keyseed, b"SAE PMK" + b"\x01"))[:_PMK_LEN]

    # -- confirm -------------------------------------------------------
    def confirm_bytes(self) -> bytes:
        """Transcript MAC proving we hold the password *and* the secret."""
        if self._kck is None or self._peer_commit is None:
            raise SaeError("SAE confirm before processing peer commit")
        return hmac_sha1(
            self._kck,
            b"sae-confirm" + self._own_commit + self._peer_commit,
        )[:_CONFIRM_LEN]

    def process_confirm(self, raw: bytes) -> bool:
        """Verify the peer's confirm; True marks the handshake complete."""
        if self._kck is None or self._peer_commit is None:
            return False
        expected = hmac_sha1(
            self._kck,
            b"sae-confirm" + self._peer_commit + self._own_commit,
        )[:_CONFIRM_LEN]
        if len(raw) == _CONFIRM_LEN and constant_time_equal(bytes(raw), expected):
            self.confirmed = True
            return True
        return False
