"""E-DOWNGRADE / E-CSA / E-PMF: the modern Wi-Fi scenario pack.

Twenty years of fixes later, the paper's rogue problem comes back in
negotiated form, and these experiments measure both halves:

* **E-DOWNGRADE** — a WPA3-transition client versus a rogue offering
  weaker security.  The benign arm shows the client picking SAE with
  PMF; the attack arms show the same client coerced down to WPA2-PSK
  (no PMF, offline-crackable 4-way) or — with a sloppy supplicant —
  all the way to an open association in cleartext.  The new
  ``rsn-mismatch`` detector must flag the lure, and every detector
  must stay silent on the benign arm.
* **E-CSA** — channel-switch herding: forged CSA beacons drag an
  associated WPA3 victim onto the attacker's channel, where a cloned
  twin keeps it parked and its data link dark.  PMF does not help —
  beacons carry no MIC — so only the ``unexpected-CSA`` detector sees
  it.
* **E-PMF** — the paper's §4 deauth flood replayed against the same
  network with PMF off and PMF on.  Off: one forged frame per bounce,
  the client reassociates in a loop.  On: every forgery is discarded
  (MME missing/invalid), the original association survives the whole
  flood, and data keeps flowing.

All three follow the E-WIDS evaluation discipline: a monitor sniffer
feeds a streaming :class:`~repro.wids.engine.WidsEngine` and the
threshold-sweep :func:`~repro.wids.evaluation.evaluate`, with every
world's confusion cells merged into one local
:class:`~repro.obs.metrics.MetricsRegistry` so fleet campaigns produce
bit-identical scorecards serial vs parallel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.attacks.deauth import DeauthAttacker
from repro.attacks.sniffer import MonitorSniffer
from repro.crypto.wpa_kdf import psk_from_passphrase
from repro.dot11.mac import MacAddress
from repro.hosts.access_point import AccessPoint
from repro.hosts.host import Host
from repro.hosts.nic import WiredInterface
from repro.hosts.station import Station
from repro.netstack.ethernet import Switch
from repro.obs.metrics import MetricsRegistry
from repro.radio.medium import Medium
from repro.radio.propagation import Position
from repro.rsn.attacks import CsaLureAttack, DowngradeRogueAP
from repro.rsn.ie import AkmSuite, RsnIe
from repro.sim.kernel import Simulator
from repro.wids.engine import WidsEngine
from repro.wids.evaluation import GroundTruth, Scorecard, evaluate

__all__ = ["exp_csa_lure", "exp_downgrade", "exp_pmf_flood",
           "run_downgrade_world"]

SSID = "CORP"
LEGIT_BSSID = MacAddress("aa:bb:cc:dd:00:01")
SERVER_IP = "10.0.0.1"
VICTIM_IP = "10.0.0.23"
#: One passphrase backing both AKMs, as transition deployments do —
#: which is exactly why cracking the WPA2 side hands over the network.
PASSPHRASE = "corp-modern-pass"
PSK = psk_from_passphrase(PASSPHRASE, SSID)

LEGIT_CHANNEL = 1
ROGUE_CHANNEL = 6


@dataclass
class RsnWorld:
    """One modern-office world: AP, wired server, victim, WIDS tap."""

    sim: Simulator
    medium: Medium
    ap: AccessPoint
    victim: Station
    sniffer: MonitorSniffer
    engine: WidsEngine
    ping_replies: list = field(default_factory=list)

    def world_summary(self) -> dict:
        wlan = self.victim.wlan
        alerts = self.engine.alerts
        return {
            "associated": wlan.associated,
            "link_ready": wlan.link_ready,
            "akm": wlan.negotiated_akm,
            "pmf": wlan.pmf_active,
            "encrypted": wlan.link_encrypted,
            "channel": wlan.channel,
            "associations": wlan.associations,
            "deauths_received": wlan.deauths_received,
            "pmf_discards": wlan.pmf_discards,
            "csa_switches": wlan.csa_switches,
            "pings_ok": len(self.ping_replies),
            "alert_count": len(alerts),
            "alerted_detectors": sorted({a.detector for a in alerts}),
            "first_alert_t": alerts[0].t if alerts else None,
        }


def _build_world(seed: int, *, ap_rsn: Optional[RsnIe],
                 sae_password: Optional[str] = None,
                 wpa_psk: Optional[bytes] = None,
                 victim_rsn: Optional[RsnIe] = None,
                 victim_sae_password: Optional[str] = None,
                 victim_psk: Optional[bytes] = None,
                 rsn_strict: bool = True,
                 victim_position: Position = Position(10.0, 0.0),
                 settle_s: float = 5.0) -> RsnWorld:
    sim = Simulator(seed=seed)
    medium = Medium(sim)
    lan = Switch(sim, "corp-lan")
    ap = AccessPoint(sim, medium, "corp-ap", bssid=LEGIT_BSSID, ssid=SSID,
                     channel=LEGIT_CHANNEL, position=Position(0.0, 0.0),
                     rsn=ap_rsn, sae_password=sae_password, wpa_psk=wpa_psk)
    ap.attach_uplink(lan)
    server = Host(sim, "server")
    eth0 = WiredInterface("eth0", MacAddress.random(
        sim.rng.substream("mac.server")))
    eth0.attach_segment(lan)
    server.add_interface(eth0)
    eth0.configure_ip(SERVER_IP)
    sniffer = MonitorSniffer(sim, medium, Position(15.0, 5.0))
    engine = WidsEngine()
    engine.attach(sniffer.capture)
    victim = Station(sim, "victim", medium, victim_position)
    victim.connect(SSID, rsn=victim_rsn, sae_password=victim_sae_password,
                   wpa_psk=victim_psk, rsn_strict=rsn_strict,
                   ip=VICTIM_IP)
    world = RsnWorld(sim=sim, medium=medium, ap=ap, victim=victim,
                     sniffer=sniffer, engine=engine)
    sim.run_for(settle_s)
    return world


def _ping_probe(world: RsnWorld, *, every_s: float = 1.0,
                count: int = 10) -> None:
    """Schedule pings across the attack window, collecting replies."""
    for i in range(count):
        world.sim.schedule(
            i * every_s,
            lambda: world.victim.ping(SERVER_IP,
                                      on_reply=world.ping_replies.append))


# ----------------------------------------------------------------------
# E-PMF — the §4 deauth flood, before and after 802.11w
# ----------------------------------------------------------------------

def _pmf_world(seed: int, *, pmf: bool,
               registry: MetricsRegistry) -> dict:
    rsn = (RsnIe.wpa3() if pmf
           else RsnIe(akms=(int(AkmSuite.SAE),)))  # SAE, but no 802.11w
    world = _build_world(seed, ap_rsn=rsn, sae_password=PASSPHRASE,
                         victim_rsn=rsn, victim_sae_password=PASSPHRASE)
    attack_start = world.sim.now
    attacker = DeauthAttacker(world.sim, world.medium, Position(30.0, 0.0),
                              ap_bssid=LEGIT_BSSID, channel=LEGIT_CHANNEL,
                              target=world.victim.wlan.mac, rate_hz=10.0)
    attacker.start()
    _ping_probe(world, every_s=1.0, count=10)
    world.sim.run_for(12.0)
    attacker.stop()
    world.sim.run_for(2.0)
    evaluate(world.sniffer.capture,
             GroundTruth(rogue_present=True, attack_start_s=attack_start),
             registry=registry)
    out = world.world_summary()
    out["frames_injected"] = attacker.frames_injected
    return out


def exp_pmf_flood(seed: int = 1) -> dict:
    """Same network, same flood, PMF off vs on."""
    registry = MetricsRegistry()
    off = _pmf_world(seed, pmf=False, registry=registry)
    on = _pmf_world(seed, pmf=True, registry=registry)
    return {
        "pmf_off": off,
        "pmf_on": on,
        # Off: the flood works — forged frames tear the link down and
        # the client burns re-associations the whole window.
        "flood_effective_without_pmf": (
            off["deauths_received"] > 0 and off["associations"] > 1),
        # On: every forgery discarded, the first association survives,
        # and data kept flowing through the flood.
        "pmf_protects": (
            on["pmf_discards"] > 0 and on["associations"] == 1
            and on["link_ready"] and on["pings_ok"] > 0),
        "scorecard": Scorecard.from_registry(registry).to_json_dict(),
    }


# ----------------------------------------------------------------------
# E-DOWNGRADE — transition-mode coercion
# ----------------------------------------------------------------------

def run_downgrade_world(seed: int, *, mode: Optional[str]):
    """Build and run one WPA3-downgrade world *without* scoring it.

    ``mode``: None = benign, "wpa2" or "open" = rogue posture.  Returns
    ``(world, summary)`` — the finished :class:`RsnWorld` (its sniffer
    capture ready for any evaluation pass) and the world summary dict
    with the coercion outcome fields.  :func:`exp_downgrade` and the
    arms-race RSN-downgrade genome share this runner; only the scoring
    differs (fixed registry vs. adaptive-threshold crossings).
    """
    strict = mode != "open"
    world = _build_world(
        seed,
        ap_rsn=RsnIe.wpa3_transition(), sae_password=PASSPHRASE, wpa_psk=PSK,
        victim_rsn=RsnIe.wpa3_transition(), victim_sae_password=PASSPHRASE,
        victim_psk=PSK, rsn_strict=strict,
        # Victim sits between the AP and where the rogue will stand,
        # close enough that the rogue's signal wins selection.
        victim_position=Position(26.0, 0.0),
        settle_s=0.0)
    rogue = None
    if mode is not None:
        rogue = DowngradeRogueAP(
            world.sim, world.medium, Position(30.0, 0.0),
            ssid=SSID, bssid=LEGIT_BSSID, channel=ROGUE_CHANNEL,
            mode=mode, psk=PSK if mode == "wpa2" else None)
    world.sim.run_for(8.0)
    _ping_probe(world, every_s=1.0, count=5)
    world.sim.run_for(6.0)
    summary = world.world_summary()
    summary["on_rogue_channel"] = summary["channel"] == ROGUE_CHANNEL
    summary["rogue_client_count"] = len(rogue.victims) if rogue else 0
    return world, summary


def _downgrade_world(seed: int, *, mode: Optional[str],
                     registry: MetricsRegistry) -> dict:
    """``mode``: None = benign, "wpa2" or "open" = rogue posture."""
    world, out = run_downgrade_world(seed, mode=mode)
    evaluate(world.sniffer.capture,
             GroundTruth(rogue_present=mode is not None, attack_start_s=0.0),
             registry=registry)
    return out


def exp_downgrade(seed: int = 1) -> dict:
    """Benign / WPA2-coercion / open-coercion worlds, one scorecard."""
    registry = MetricsRegistry()
    benign = _downgrade_world(seed, mode=None, registry=registry)
    wpa2 = _downgrade_world(seed, mode="wpa2", registry=registry)
    open_ = _downgrade_world(seed, mode="open", registry=registry)
    return {
        "worlds": {"benign": benign, "wpa2": wpa2, "open": open_},
        # Benign: the transition client picks the strongest AKM.
        "benign_negotiates_sae": benign["akm"] == "SAE" and benign["pmf"],
        # WPA2 arm: the same SAE-capable client runs the crackable
        # 4-way against the rogue — no SAE, no PMF.
        "coerced_to_wpa2": (
            wpa2["akm"] == "PSK" and not wpa2["pmf"]
            and wpa2["on_rogue_channel"] and wpa2["rogue_client_count"] > 0),
        # Open arm: a non-strict client associates in cleartext.
        "coerced_to_open": (
            open_["akm"] is None and not open_["encrypted"]
            and open_["on_rogue_channel"] and open_["rogue_client_count"] > 0),
        "downgrade_flagged": "rsn-mismatch" in (
            set(wpa2["alerted_detectors"]) | set(open_["alerted_detectors"])),
        "benign_false_positives": benign["alert_count"],
        "scorecard": Scorecard.from_registry(registry).to_json_dict(),
    }


# ----------------------------------------------------------------------
# E-CSA — channel-switch herding
# ----------------------------------------------------------------------

def _csa_world(seed: int, *, attack: bool,
               registry: MetricsRegistry) -> dict:
    rsn = RsnIe.wpa3()
    world = _build_world(seed, ap_rsn=rsn, sae_password=PASSPHRASE,
                         victim_rsn=rsn, victim_sae_password=PASSPHRASE)
    pre_pings: list = []
    world.victim.ping(SERVER_IP, on_reply=pre_pings.append)
    world.sim.run_for(2.0)
    attack_start = world.sim.now
    lure = twin = None
    if attack:
        # The twin clones everything it can see — BSSID, SSID, RSN
        # posture — on its own channel; it does NOT know the password.
        twin = AccessPoint(world.sim, world.medium, "evil-twin",
                           bssid=LEGIT_BSSID, ssid=SSID,
                           channel=ROGUE_CHANNEL, position=Position(20.0, 0.0),
                           rsn=rsn, sae_password="not-the-password")
        lure = CsaLureAttack(world.sim, world.medium, Position(20.0, 0.0),
                             clone_bssid=LEGIT_BSSID, ssid=SSID,
                             legit_channel=LEGIT_CHANNEL,
                             lure_channel=ROGUE_CHANNEL, rsn=rsn,
                             rate_hz=10.0)
        lure.start()
    world.sim.run_for(5.0)
    if lure is not None:
        lure.stop()
    _ping_probe(world, every_s=1.0, count=5)
    world.sim.run_for(8.0)
    evaluate(world.sniffer.capture,
             GroundTruth(rogue_present=attack, attack_start_s=attack_start),
             registry=registry)
    out = world.world_summary()
    out["pre_attack_pings_ok"] = len(pre_pings)
    out["frames_injected"] = lure.frames_injected if lure else 0
    return out


def exp_csa_lure(seed: int = 1) -> dict:
    """Benign world vs CSA herding onto a cloned twin's channel."""
    registry = MetricsRegistry()
    benign = _csa_world(seed, attack=False, registry=registry)
    lured = _csa_world(seed, attack=True, registry=registry)
    return {
        "worlds": {"benign": benign, "lured": lured},
        # The victim obeyed the forged announcement: it retuned to the
        # attacker's channel and its (PMF-protected!) data link went
        # dark — beacons are still unauthenticated under WPA3.
        "herded": (lured["csa_switches"] >= 1
                   and lured["channel"] == ROGUE_CHANNEL),
        "link_dark_after_lure": (lured["pre_attack_pings_ok"] > 0
                                 and lured["pings_ok"] == 0),
        "csa_flagged": "unexpected-CSA" in lured["alerted_detectors"],
        "benign_false_positives": benign["alert_count"],
        "scorecard": Scorecard.from_registry(registry).to_json_dict(),
    }
