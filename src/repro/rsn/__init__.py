"""``repro.rsn`` — modern Wi-Fi security: RSN IEs, SAE, and PMF.

The industry's answer to the paper's central finding (a client cannot
authenticate the network it joins): RSN advertisement and negotiation,
the SAE password-authenticated key exchange (WPA3), and 802.11w
management-frame protection — plus the modern attacks that defeat the
deployments which leave them optional: `DowngradeRogueAP` (strip or
weaken the RSN IE) and `CsaLureAttack` (channel-switch herding).

Import discipline mirrors ``repro.wids``: this package pulls in only
wire/crypto modules; the radio-layer attack and experiment modules
(``repro.rsn.attacks``, ``repro.rsn.experiment``) are imported lazily
by the experiment registry to keep import cycles out.
"""

from repro.rsn.ie import (
    MFPC,
    MFPR,
    RSN_OUI,
    RSN_VERSION,
    AkmSuite,
    CipherSuite,
    CsaIe,
    RsnIe,
    RsnSelection,
    VendorIe,
    negotiate,
)
from repro.rsn.pmf import Mme, derive_igtk, mme_for_frame, verify_mgmt_mic
from repro.rsn.sae import SaeError, SaeParty, sae_container_ie, sae_payload

__all__ = [
    "AkmSuite",
    "CipherSuite",
    "CsaIe",
    "MFPC",
    "MFPR",
    "Mme",
    "RSN_OUI",
    "RSN_VERSION",
    "RsnIe",
    "RsnSelection",
    "SaeError",
    "SaeParty",
    "VendorIe",
    "derive_igtk",
    "mme_for_frame",
    "negotiate",
    "sae_container_ie",
    "sae_payload",
    "verify_mgmt_mic",
]
