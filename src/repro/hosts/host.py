"""The host: interfaces + ARP + routing + Netfilter + transports.

This is the "Linux operating system" box of §4.1 — victim laptop,
gateway machine, web server, and VPN endpoint are all instances.  The
IP path mirrors Linux's: PREROUTING → routing decision → INPUT or
FORWARD → POSTROUTING, with connection-tracked NAT, proxy-ARP
(parprouted's mechanism), and an ``ip_forward`` flag that Appendix A
flips with ``echo 1 > /proc/sys/net/ipv4/ip_forward``.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.dot11.mac import BROADCAST, MacAddress
from repro.hosts.nic import Interface, TunInterface
from repro.netstack.addressing import IPv4Address, Network
from repro.netstack.arp import ArpOp, ArpPacket, ArpTable, record_arp_hop
from repro.netstack.ethernet import ETHERTYPE_ARP, ETHERTYPE_IPV4
from repro.netstack.icmp import IcmpMessage, IcmpType
from repro.netstack.ipv4 import PROTO_ICMP, PROTO_TCP, PROTO_UDP, IPv4Packet
from repro.netstack.netfilter import Chain, Netfilter, Verdict
from repro.netstack.pcap import CapturedPacket, PacketCapture
from repro.netstack.routing import Route, RoutingTable
from repro.netstack.tcp import (
    FLAG_ACK,
    FLAG_RST,
    FLAG_SYN,
    TcpConnection,
    TcpSegment,
)
from repro.netstack.udp import UdpDatagram
from repro.obs.lineage import flight_recorder
from repro.sim.errors import ConfigurationError, NetworkError, ProtocolError, SocketError
from repro.sim.kernel import Simulator

__all__ = ["Host", "TcpListener", "UdpSocket"]

LIMITED_BROADCAST = IPv4Address("255.255.255.255")


class UdpSocket:
    """A bound UDP endpoint on a host."""

    def __init__(self, host: "Host", port: int) -> None:
        self.host = host
        self.port = port
        self.on_datagram: Optional[Callable[[bytes, IPv4Address, int], None]] = None
        self.closed = False
        self.rx_count = 0
        self.tx_count = 0

    def sendto(self, payload: bytes, dst_ip: "IPv4Address | str", dst_port: int,
               *, via_iface: Optional[str] = None) -> None:
        if self.closed:
            raise SocketError("socket closed")
        self.tx_count += 1
        self.host.udp_send(self.port, payload, IPv4Address(dst_ip), dst_port,
                           via_iface=via_iface)

    def deliver(self, payload: bytes, src_ip: IPv4Address, src_port: int) -> None:
        self.rx_count += 1
        if self.on_datagram is not None:
            self.on_datagram(payload, src_ip, src_port)

    def close(self) -> None:
        self.closed = True
        self.host._udp_socks.pop(self.port, None)


class TcpListener:
    """A passive TCP endpoint; spawns a connection per inbound SYN."""

    def __init__(self, host: "Host", port: int,
                 on_connection: Callable[[TcpConnection], None]) -> None:
        self.host = host
        self.port = port
        self.on_connection = on_connection
        self.accepted = 0
        self.closed = False

    def close(self) -> None:
        self.closed = True
        self.host._tcp_listeners.pop(self.port, None)


class Host:
    """A simulated computer."""

    ARP_RETRY_S = 0.5
    ARP_MAX_TRIES = 3
    EPHEMERAL_BASE = 20000

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.interfaces: dict[str, Interface] = {}
        self.routing = RoutingTable()
        self.netfilter = Netfilter()
        self.ip_forward = False
        self.arp_tables: dict[str, ArpTable] = {}
        #: Learn from unsolicited ARP replies (Linux-like default; the
        #: behaviour ARP poisoning requires).
        self.arp_accept_unsolicited = True
        self.capture: Optional[PacketCapture] = None
        #: Optional promiscuous L2 tap: (iface, src, dst, ethertype, payload).
        self.l2_tap: Optional[Callable] = None
        #: ARP observers: called with (iface, ArpPacket) for every ARP seen.
        self.arp_listeners: list[Callable] = []
        self._udp_socks: dict[int, UdpSocket] = {}
        self._tcp_listeners: dict[int, TcpListener] = {}
        self._tcp_conns: dict[tuple, TcpConnection] = {}
        self._arp_pending: dict[tuple[str, IPv4Address], list[IPv4Packet]] = {}
        self._arp_tries: dict[tuple[str, IPv4Address], int] = {}
        self._ephemeral_next = self.EPHEMERAL_BASE + sim.rng.substream(
            f"ephemeral.{name}").randrange(0, 5000)
        self._ping_waiters: dict[tuple[int, int], Callable[[float], None]] = {}
        self._ping_error_waiters: dict[tuple[int, int], Callable] = {}
        self._ping_ident = sim.rng.substream(f"ping.{name}").randrange(1, 0xFFFF)
        self._ping_seq = 0
        self._ping_times: dict[tuple[int, int], float] = {}
        # counters
        self.packets_forwarded = 0
        self.packets_delivered = 0
        self.packets_dropped = 0

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def add_interface(self, iface: Interface) -> Interface:
        if iface.name in self.interfaces:
            raise ConfigurationError(f"duplicate interface name {iface.name!r}")
        self.interfaces[iface.name] = iface
        self.arp_tables[iface.name] = ArpTable()
        iface.bind(self)
        # If the interface was IP-configured before attach, install the route.
        if iface.network is not None:
            self.routing.add_connected(iface.network, iface.name)
        return iface

    def enable_capture(self) -> PacketCapture:
        """Start tcpdump-style IP capture on all interfaces."""
        if self.capture is None:
            self.capture = PacketCapture()
        return self.capture

    def local_ips(self) -> list[IPv4Address]:
        return [i.ip for i in self.interfaces.values() if i.ip is not None]

    def _is_local_ip(self, ip: IPv4Address) -> bool:
        if ip == LIMITED_BROADCAST:
            return True
        for iface in self.interfaces.values():
            if iface.ip == ip:
                return True
            if iface.network is not None and ip == iface.network.broadcast:
                return True
        return False

    def _capture(self, direction: str, iface_name: str, packet: IPv4Packet) -> None:
        if self.capture is not None:
            self.capture.add(CapturedPacket(time=self.sim.now, direction=direction,
                                            interface=iface_name, packet=packet))

    # ------------------------------------------------------------------
    # link-layer input
    # ------------------------------------------------------------------
    def receive_link(self, iface: Interface, src_mac: MacAddress, dst_mac: MacAddress,
                     ethertype: int, payload: bytes) -> None:
        if self.l2_tap is not None:
            self.l2_tap(iface, src_mac, dst_mac, ethertype, payload)
        if ethertype == ETHERTYPE_ARP:
            try:
                self._handle_arp(iface, ArpPacket.from_bytes(payload))
            except ProtocolError:
                pass
            return
        if ethertype != ETHERTYPE_IPV4:
            return
        if dst_mac != iface.mac and not dst_mac.is_broadcast and not dst_mac.is_multicast:
            return  # promiscuous noise, not addressed to us
        try:
            packet = IPv4Packet.from_bytes(payload)
        except ProtocolError:
            return
        self.receive_ip(packet, iface)

    # ------------------------------------------------------------------
    # ARP
    # ------------------------------------------------------------------
    def _handle_arp(self, iface: Interface, arp: ArpPacket) -> None:
        record_arp_hop(self.name, iface.name, arp, self.sim.now)
        for listener in self.arp_listeners:
            listener(iface, arp)
        table = self.arp_tables[iface.name]
        addressed_to_us = iface.ip is not None and arp.target_ip == iface.ip
        if not arp.sender_ip.is_unspecified and (
            addressed_to_us or self.arp_accept_unsolicited
        ):
            table.learn(arp.sender_ip, arp.sender_mac, self.sim.now)
            self._flush_arp_pending(iface, arp.sender_ip, arp.sender_mac)
        if arp.op is not ArpOp.REQUEST:
            return
        if addressed_to_us:
            self._arp_reply(iface, arp, iface.mac)
        elif getattr(iface, "proxy_arp", False) and not arp.target_ip.is_unspecified:
            # parprouted semantics: answer for addresses we route elsewhere.
            route = self.routing.lookup(arp.target_ip)
            if route is not None and route.interface != iface.name:
                self.sim.trace.emit("arp.proxy_reply", self.name,
                                    iface=iface.name, target=str(arp.target_ip),
                                    asker=str(arp.sender_ip))
                self._arp_reply(iface, arp, iface.mac)

    def _arp_reply(self, iface: Interface, request: ArpPacket, mac: MacAddress) -> None:
        reply = ArpPacket.reply(sender_mac=mac, sender_ip=request.target_ip,
                                target_mac=request.sender_mac, target_ip=request.sender_ip)
        iface.send_frame_to(request.sender_mac, ETHERTYPE_ARP, reply.to_bytes())

    def _flush_arp_pending(self, iface: Interface, ip: IPv4Address, mac: MacAddress) -> None:
        key = (iface.name, ip)
        queued = self._arp_pending.pop(key, [])
        self._arp_tries.pop(key, None)
        for packet in queued:
            iface.send_frame_to(mac, ETHERTYPE_IPV4, packet.to_bytes())

    def _arp_resolve_and_send(self, iface: Interface, next_hop: IPv4Address,
                              packet: IPv4Packet) -> None:
        mac = self.arp_tables[iface.name].lookup(next_hop, self.sim.now)
        if mac is not None:
            iface.send_frame_to(mac, ETHERTYPE_IPV4, packet.to_bytes())
            return
        key = (iface.name, next_hop)
        queue = self._arp_pending.setdefault(key, [])
        queue.append(packet)
        if len(queue) > 64:
            del queue[:32]
        if key not in self._arp_tries:
            self._arp_tries[key] = 0
            self._arp_request(iface, next_hop)

    def _arp_request(self, iface: Interface, target: IPv4Address) -> None:
        key = (iface.name, target)
        if key not in self._arp_tries:
            return  # already resolved/flushed
        if self._arp_tries[key] >= self.ARP_MAX_TRIES:
            dropped = self._arp_pending.pop(key, [])
            self._arp_tries.pop(key, None)
            self.packets_dropped += len(dropped)
            self.sim.trace.emit("arp.timeout", self.name,
                                iface=iface.name, target=str(target),
                                dropped=len(dropped))
            return
        self._arp_tries[key] += 1
        req = ArpPacket.request(iface.mac, iface.ip or IPv4Address(0), target)
        iface.send_frame_to(BROADCAST, ETHERTYPE_ARP, req.to_bytes())
        self.sim.schedule(self.ARP_RETRY_S, self._arp_request, iface, target)

    # ------------------------------------------------------------------
    # IP input / forwarding
    # ------------------------------------------------------------------
    def receive_ip(self, packet: IPv4Packet, iface: Interface) -> None:
        self._capture("in", iface.name, packet)
        verdict, packet, natted = self.netfilter.process(
            Chain.PREROUTING, packet, self.sim.now,
            in_iface=iface.name, local_ip=iface.ip,
        )
        if verdict is Verdict.DROP:
            self.packets_dropped += 1
            return
        if self._is_local_ip(packet.dst):
            verdict, packet, _ = self.netfilter.process(
                Chain.INPUT, packet, self.sim.now, in_iface=iface.name, nat=False)
            if verdict is Verdict.DROP:
                self.packets_dropped += 1
                return
            self.packets_delivered += 1
            self._deliver_local(packet, iface)
            return
        if not self.ip_forward:
            self.packets_dropped += 1
            return
        verdict, packet, _ = self.netfilter.process(
            Chain.FORWARD, packet, self.sim.now, in_iface=iface.name, nat=False)
        if verdict is Verdict.DROP:
            self.packets_dropped += 1
            return
        try:
            packet = packet.decremented()
        except ProtocolError:
            self.sim.trace.emit("ip.ttl_expired", self.name, dst=str(packet.dst))
            self.packets_dropped += 1
            self._send_icmp_error(packet, IcmpMessage.time_exceeded, iface)
            return
        self.packets_forwarded += 1
        self._capture("forward", iface.name, packet)
        rec = flight_recorder()
        if rec is not None and rec.current() is not None:
            # On the rogue this is the parprouted/ip_forward bridge hop:
            # the packet crossed from one interface toward the other.
            rec.hop("ip", "forward", host=self.name, t=self.sim.now,
                    in_iface=iface.name, src=str(packet.src),
                    dst=str(packet.dst), ttl=packet.ttl)
        self._route_and_send(packet, originated=False, nat_done=natted)

    def send_ip(self, packet: IPv4Packet, *, via_iface: Optional[str] = None) -> None:
        """Transmit a locally-generated packet (runs OUTPUT/POSTROUTING)."""
        verdict, packet, natted = self.netfilter.process(
            Chain.OUTPUT, packet, self.sim.now)
        if verdict is Verdict.DROP:
            self.packets_dropped += 1
            return
        self._route_and_send(packet, originated=True, via_iface=via_iface,
                             nat_done=natted)

    def _route_and_send(self, packet: IPv4Packet, *, originated: bool,
                        via_iface: Optional[str] = None,
                        nat_done: bool = False) -> None:
        if via_iface is not None:
            iface = self.interfaces[via_iface]
            next_hop = packet.dst
        else:
            route = self.routing.lookup(packet.dst)
            if route is None:
                self.packets_dropped += 1
                self.sim.trace.emit("ip.no_route", self.name, dst=str(packet.dst))
                if not originated:
                    self._send_icmp_error(packet, IcmpMessage.unreachable, None)
                return
            iface = self.interfaces[route.interface]
            next_hop = route.gateway or packet.dst
        verdict, packet, _ = self.netfilter.process(
            Chain.POSTROUTING, packet, self.sim.now, out_iface=iface.name,
            nat=not nat_done)
        if verdict is Verdict.DROP:
            self.packets_dropped += 1
            return
        self._capture("out", iface.name, packet)
        if isinstance(iface, TunInterface):
            iface.transmit_ip(packet)
            return
        if packet.dst == LIMITED_BROADCAST or (
            iface.network is not None and packet.dst == iface.network.broadcast
        ):
            iface.send_frame_to(BROADCAST, ETHERTYPE_IPV4, packet.to_bytes())
            return
        if not iface.needs_arp:
            raise ConfigurationError(f"interface {iface.name} cannot route {packet.dst}")
        self._arp_resolve_and_send(iface, next_hop, packet)

    # ------------------------------------------------------------------
    # local delivery
    # ------------------------------------------------------------------
    def _deliver_local(self, packet: IPv4Packet, iface: Interface) -> None:
        rec = flight_recorder()
        if rec is not None and rec.current() is not None:
            rec.hop("ip", "deliver", host=self.name, t=self.sim.now,
                    proto=packet.proto, src=str(packet.src),
                    dst=str(packet.dst))
        if packet.proto == PROTO_ICMP:
            self._deliver_icmp(packet)
        elif packet.proto == PROTO_UDP:
            self._deliver_udp(packet)
        elif packet.proto == PROTO_TCP:
            self._deliver_tcp(packet)

    def _send_icmp_error(self, original: IPv4Packet, builder, iface) -> None:
        """Emit an ICMP error quoting the offending packet.

        RFC 1122 discipline: never generate errors about ICMP errors,
        and never about broadcasts.
        """
        if original.proto == PROTO_ICMP and len(original.payload) >= 1 \
                and original.payload[0] not in (IcmpType.ECHO_REQUEST,
                                                IcmpType.ECHO_REPLY):
            return
        if original.src.is_broadcast or original.src.is_unspecified:
            return
        try:
            src = self.source_ip_for(original.src)
        except NetworkError:
            return
        msg = builder(original.to_bytes())
        self.send_ip(IPv4Packet(src=src, dst=original.src, proto=PROTO_ICMP,
                                payload=msg.to_bytes()))

    @staticmethod
    def _quoted_echo_key(msg: IcmpMessage) -> Optional[tuple[int, int]]:
        """Extract (ident, seq) of the echo request quoted in an ICMP error."""
        quoted = msg.payload
        if len(quoted) < 28:
            return None
        inner = quoted[20:28]  # the first 8 bytes of the original ICMP
        if inner[0] != IcmpType.ECHO_REQUEST:
            return None
        rest = int.from_bytes(inner[4:8], "big")
        return ((rest >> 16) & 0xFFFF, rest & 0xFFFF)

    def _deliver_icmp(self, packet: IPv4Packet) -> None:
        try:
            msg = IcmpMessage.from_bytes(packet.payload)
        except ProtocolError:
            return
        if msg.icmp_type == IcmpType.ECHO_REQUEST:
            reply = IcmpMessage.echo_reply_to(msg)
            self.send_ip(IPv4Packet(src=packet.dst, dst=packet.src,
                                    proto=PROTO_ICMP, payload=reply.to_bytes()))
        elif msg.icmp_type == IcmpType.ECHO_REPLY:
            key = (msg.echo_ident, msg.echo_seq)
            waiter = self._ping_waiters.pop(key, None)
            sent = self._ping_times.pop(key, None)
            self._ping_error_waiters.pop(key, None)
            if waiter is not None and sent is not None:
                waiter(self.sim.now - sent)
        elif msg.icmp_type in (IcmpType.TIME_EXCEEDED, IcmpType.DEST_UNREACHABLE):
            key = self._quoted_echo_key(msg)
            if key is None:
                return
            on_error = self._ping_error_waiters.pop(key, None)
            self._ping_waiters.pop(key, None)
            self._ping_times.pop(key, None)
            if on_error is not None:
                on_error(packet.src, int(msg.icmp_type))

    def _deliver_udp(self, packet: IPv4Packet) -> None:
        try:
            dgram = UdpDatagram.from_bytes(packet.payload, packet.src, packet.dst)
        except ProtocolError:
            return
        sock = self._udp_socks.get(dgram.dst_port)
        if sock is not None:
            sock.deliver(dgram.payload, packet.src, dgram.src_port)

    def _deliver_tcp(self, packet: IPv4Packet) -> None:
        try:
            segment = TcpSegment.from_bytes(packet.payload, packet.src, packet.dst)
        except ProtocolError:
            return
        key = (packet.dst, segment.dst_port, packet.src, segment.src_port)
        conn = self._tcp_conns.get(key)
        if conn is not None and not conn.closed:
            conn.handle_segment(segment)
            return
        listener = self._tcp_listeners.get(segment.dst_port)
        if listener is not None and not listener.closed and segment.flags & FLAG_SYN \
                and not segment.flags & FLAG_ACK:
            conn = self._make_connection(packet.dst, segment.dst_port,
                                         packet.src, segment.src_port)
            conn.accept_syn(segment)
            listener.accepted += 1
            listener.on_connection(conn)
            return
        if not segment.flags & FLAG_RST:
            self._send_rst(packet, segment)

    def _send_rst(self, packet: IPv4Packet, segment: TcpSegment) -> None:
        if segment.flags & FLAG_ACK:
            rst = TcpSegment(src_port=segment.dst_port, dst_port=segment.src_port,
                             seq=segment.ack, ack=0, flags=FLAG_RST)
        else:
            adv = len(segment.payload) + (1 if segment.flags & FLAG_SYN else 0)
            rst = TcpSegment(src_port=segment.dst_port, dst_port=segment.src_port,
                             seq=0, ack=(segment.seq + adv) % (1 << 32),
                             flags=FLAG_RST | FLAG_ACK)
        self.send_ip(IPv4Packet(src=packet.dst, dst=packet.src, proto=PROTO_TCP,
                                payload=rst.to_bytes(packet.dst, packet.src)))

    # ------------------------------------------------------------------
    # transport APIs
    # ------------------------------------------------------------------
    def source_ip_for(self, dst: IPv4Address) -> IPv4Address:
        """Source-address selection: the IP of the egress interface."""
        route = self.routing.lookup(dst)
        if route is None:
            raise NetworkError(f"{self.name}: no route to {dst}")
        iface = self.interfaces[route.interface]
        if iface.ip is None:
            raise NetworkError(f"{self.name}: egress {iface.name} has no IP")
        return iface.ip

    def ephemeral_port(self) -> int:
        port = self._ephemeral_next
        self._ephemeral_next += 1
        if self._ephemeral_next >= 65000:
            self._ephemeral_next = self.EPHEMERAL_BASE
        return port

    def udp_socket(self, port: Optional[int] = None) -> UdpSocket:
        if port is None:
            port = self.ephemeral_port()
        if port in self._udp_socks:
            raise SocketError(f"UDP port {port} already bound on {self.name}")
        sock = UdpSocket(self, port)
        self._udp_socks[port] = sock
        return sock

    def udp_send(self, src_port: int, payload: bytes, dst_ip: IPv4Address,
                 dst_port: int, *, via_iface: Optional[str] = None) -> None:
        if via_iface is not None:
            iface = self.interfaces[via_iface]
            src_ip = iface.ip or IPv4Address(0)
        elif dst_ip == LIMITED_BROADCAST:
            raise NetworkError("broadcast sends require via_iface")
        else:
            src_ip = self.source_ip_for(dst_ip)
        dgram = UdpDatagram(src_port=src_port, dst_port=dst_port, payload=payload)
        self.send_ip(IPv4Packet(src=src_ip, dst=dst_ip, proto=PROTO_UDP,
                                payload=dgram.to_bytes(src_ip, dst_ip)),
                     via_iface=via_iface)

    def tcp_listen(self, port: int,
                   on_connection: Callable[[TcpConnection], None]) -> TcpListener:
        if port in self._tcp_listeners:
            raise SocketError(f"TCP port {port} already listening on {self.name}")
        listener = TcpListener(self, port, on_connection)
        self._tcp_listeners[port] = listener
        return listener

    def tcp_connect(self, dst_ip: "IPv4Address | str", dst_port: int,
                    *, src_port: Optional[int] = None,
                    mss: Optional[int] = None) -> TcpConnection:
        dst_ip = IPv4Address(dst_ip)
        src_ip = self.source_ip_for(dst_ip)
        if src_port is None:
            src_port = self.ephemeral_port()
        conn = self._make_connection(src_ip, src_port, dst_ip, dst_port, mss=mss)
        conn.connect()
        return conn

    def _make_connection(self, local_ip: IPv4Address, local_port: int,
                         remote_ip: IPv4Address, remote_port: int,
                         mss: Optional[int] = None) -> TcpConnection:
        def send_segment(segment: TcpSegment) -> None:
            self.send_ip(IPv4Packet(src=local_ip, dst=remote_ip, proto=PROTO_TCP,
                                    payload=segment.to_bytes(local_ip, remote_ip)))

        conn = TcpConnection(self.sim, local_ip, local_port, remote_ip, remote_port,
                             send_segment, mss=mss if mss is not None else 1460)
        self._tcp_conns[conn.four_tuple] = conn
        return conn

    def reap_closed_connections(self) -> int:
        """Drop CLOSED connections from the table; returns how many."""
        dead = [k for k, c in self._tcp_conns.items() if c.closed]
        for k in dead:
            del self._tcp_conns[k]
        return len(dead)

    # ------------------------------------------------------------------
    # ping
    # ------------------------------------------------------------------
    def ping(self, dst: "IPv4Address | str",
             on_reply: Optional[Callable[[float], None]] = None,
             *, ttl: int = 64,
             on_error: Optional[Callable[[IPv4Address, int], None]] = None) -> None:
        """Send one ICMP echo request; ``on_reply`` gets the RTT.

        ``ttl`` enables traceroute-style probing: ``on_error`` receives
        ``(responder_ip, icmp_type)`` for TIME_EXCEEDED / UNREACHABLE
        answers — which is how :mod:`repro.defense.pathcheck` exposes an
        in-path rogue bridge.
        """
        dst = IPv4Address(dst)
        self._ping_seq += 1
        key = (self._ping_ident, self._ping_seq)
        if on_reply is not None:
            self._ping_waiters[key] = on_reply
        if on_error is not None:
            self._ping_error_waiters[key] = on_error
        self._ping_times[key] = self.sim.now
        msg = IcmpMessage.echo_request(self._ping_ident, self._ping_seq)
        src = self.source_ip_for(dst)
        self.send_ip(IPv4Packet(src=src, dst=dst, proto=PROTO_ICMP,
                                payload=msg.to_bytes(), ttl=ttl))

    def __repr__(self) -> str:
        return f"<Host {self.name} ifaces={list(self.interfaces)}>"
