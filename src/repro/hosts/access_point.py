"""Infrastructure access point: an 802.11 ↔ Ethernet bridge.

The legitimate CORP AP of Figure 1.  It is a transparent L2 bridge:
frames from associated stations egress onto the wired LAN with the
*station's* source MAC preserved, and wired frames destined for an
associated station (or broadcast) are re-encapsulated as from-DS data
frames, WEP-protected if the BSS requires it.

It has no IP stack of its own — which is itself a paper-relevant
point: the AP can't protect anybody at layer 3; it just moves frames.
"""

from __future__ import annotations

from typing import Optional

from repro.crypto.wep import WepKey
from repro.dot11.mac import MacAddress
from repro.hosts.ap_core import ApCore, MacFilter
from repro.netstack.ethernet import EthernetFrame, LanSegment, WiredPort
from repro.radio.medium import Medium
from repro.radio.propagation import Position
from repro.sim.kernel import Simulator

__all__ = ["AccessPoint"]


class AccessPoint:
    """A bridging AP: one BSS, one wired uplink."""

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        name: str,
        *,
        bssid: MacAddress,
        ssid: str,
        channel: int,
        position: Position,
        wep_key: Optional[WepKey] = None,
        wpa_psk: Optional[bytes] = None,
        auth_algorithm: int = 0,
        mac_filter: Optional[MacFilter] = None,
        tx_power_dbm: float = 18.0,
        rsn=None,
        sae_password: Optional[str] = None,
        sae_group=None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.core = ApCore(
            sim, medium, name,
            bssid=bssid, ssid=ssid, channel=channel, position=position,
            wep_key=wep_key, wpa_psk=wpa_psk, auth_algorithm=auth_algorithm,
            mac_filter=mac_filter, tx_power_dbm=tx_power_dbm,
            rsn=rsn, sae_password=sae_password, sae_group=sae_group,
        )
        self.core.on_client_frame = self._wireless_to_wired
        # Promiscuous so we see wired frames destined for our stations.
        self.uplink = WiredPort(f"{name}.eth", bssid, promiscuous=True)
        self.uplink.on_receive = self._wired_to_wireless
        self.bridged_to_wired = 0
        self.bridged_to_wireless = 0

    def attach_uplink(self, segment: LanSegment) -> "AccessPoint":
        segment.attach(self.uplink)
        return self

    @property
    def bssid(self) -> MacAddress:
        return self.core.bssid

    @property
    def ssid(self) -> str:
        return self.core.ssid

    # ------------------------------------------------------------------
    # bridging
    # ------------------------------------------------------------------
    def _wireless_to_wired(self, src_mac: MacAddress, dst_mac: MacAddress,
                           ethertype: int, payload: bytes) -> None:
        if self.uplink.segment is None:
            return
        self.bridged_to_wired += 1
        self.uplink.transmit(EthernetFrame(dst=dst_mac, src=src_mac,
                                           ethertype=ethertype, payload=payload))

    def _wired_to_wireless(self, frame: EthernetFrame) -> None:
        if frame.src in self.core.clients:
            return  # our own bridged frame echoed by a hub; ignore
        if frame.dst.is_broadcast or frame.dst.is_multicast:
            self.bridged_to_wireless += 1
            self.core.send_to_client(frame.dst, frame.src, frame.ethertype, frame.payload)
            return
        client = self.core.clients.get(frame.dst)
        if client is not None:
            self.bridged_to_wireless += 1
            self.core.send_to_client(frame.dst, frame.src, frame.ethertype, frame.payload)

    def shutdown(self) -> None:
        self.core.shutdown()
