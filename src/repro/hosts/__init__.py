"""Hosts: the glue binding radios, links, and the IP stack together.

A :class:`~repro.hosts.host.Host` owns interfaces (wired, managed
wireless, soft-AP wireless, or PPP/TUN), a routing table, ARP caches,
a Netfilter instance, and transport endpoints — in short, the Linux
laptop of the paper's experiment, §4.1's "gateway machine" included.
"""

from repro.hosts.access_point import AccessPoint
from repro.hosts.ap_core import ApCore, MacFilter, SoftApInterface
from repro.hosts.gateway import Router, build_wan
from repro.hosts.host import Host, TcpListener, UdpSocket
from repro.hosts.linuxconf import LinuxBox
from repro.hosts.nic import (
    Interface,
    TunInterface,
    WiredInterface,
    WirelessInterface,
)
from repro.hosts.services import (
    DhcpClientService,
    DhcpServerService,
    DnsResolver,
    DnsServerService,
    UdpEchoService,
)
from repro.hosts.station import Station

__all__ = [
    "AccessPoint",
    "ApCore",
    "DhcpClientService",
    "DhcpServerService",
    "DnsResolver",
    "DnsServerService",
    "Host",
    "Interface",
    "LinuxBox",
    "MacFilter",
    "Router",
    "SoftApInterface",
    "Station",
    "TcpListener",
    "TunInterface",
    "UdpEchoService",
    "UdpSocket",
    "WiredInterface",
    "WirelessInterface",
    "build_wan",
]
