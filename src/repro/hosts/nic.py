"""Network interfaces: wired, managed wireless (STA), soft-AP, and TUN.

The managed :class:`WirelessInterface` carries the behaviour the whole
paper turns on: it scans by listening to beacons, picks the
best-looking BSS *by signal strength and SSID alone* — there is
nothing else to go on — authenticates, associates, and will do all of
that again to whoever answers after a (possibly forged) deauth.  The
rogue AP never has to break anything; the client's own standard
behaviour walks into it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.dot11.frames import (
    AuthAlgorithm,
    BeaconInfo,
    Dot11Frame,
    FrameSubtype,
    ReasonCode,
    StatusCode,
    make_assoc_request,
    make_auth,
    make_data,
    make_probe_request,
)
from repro.dot11.mac import BROADCAST, MacAddress
from repro.dot11.seqctl import SequenceCounter
from repro.crypto.tkip import TkipError
from repro.crypto.wep import WepKey, IvGenerator, wep_decrypt, wep_encrypt, WepError
from repro.netstack.addressing import IPv4Address, Network
from repro.netstack.ethernet import EthernetFrame, WiredPort, llc_decap, llc_encap
from repro.netstack.ipv4 import IPv4Packet
from repro.obs.lineage import flight_recorder
from repro.obs.runtime import obs_metrics
from repro.radio.medium import Medium, RadioPort
from repro.radio.propagation import Position
from repro.rsn.ie import AkmSuite, CsaIe, RsnIe, RsnSelection, negotiate
from repro.rsn.pmf import derive_igtk, verify_mgmt_mic
from repro.rsn.sae import SaeError, SaeParty, sae_container_ie, sae_payload
from repro.sim.errors import ConfigurationError, ProtocolError

if TYPE_CHECKING:  # pragma: no cover
    from repro.hosts.host import Host

__all__ = [
    "Interface",
    "StaState",
    "TunInterface",
    "WiredInterface",
    "WirelessInterface",
    "strongest_rssi_policy",
]


class Interface:
    """Base class: a named L2/L3 attachment point on a host."""

    def __init__(self, name: str, mac: MacAddress, mtu: int = 1500) -> None:
        self.name = name
        self.mac = mac
        self.mtu = mtu
        self.host: Optional["Host"] = None
        self.ip: Optional[IPv4Address] = None
        self.network: Optional[Network] = None

    def bind(self, host: "Host") -> None:
        self.host = host

    @property
    def sim(self):
        if self.host is None:
            raise ConfigurationError(f"interface {self.name!r} not attached to a host")
        return self.host.sim

    def configure_ip(self, ip: "IPv4Address | str", netmask: "IPv4Address | str" = "255.255.255.0") -> None:
        """``ifconfig`` equivalent: set the address and the connected route."""
        self.ip = IPv4Address(ip)
        self.network = Network.from_ip_netmask(self.ip, netmask)
        if self.host is not None:
            self.host.routing.add_connected(self.network, self.name)

    # Subclasses implement the actual L2 send.
    def send_frame_to(self, dst_mac: MacAddress, ethertype: int, payload: bytes) -> None:
        raise NotImplementedError

    def _hop_host(self) -> str:
        """Host-qualified label for flight-recorder hops (``victim:wlan0``)."""
        if self.host is not None:
            return f"{self.host.name}:{self.name}"
        return self.name

    #: Whether IP next-hops on this interface require ARP resolution.
    needs_arp = True

    def _deliver_up(self, src_mac: MacAddress, dst_mac: MacAddress,
                    ethertype: int, payload: bytes) -> None:
        if self.host is not None:
            self.host.receive_link(self, src_mac, dst_mac, ethertype, payload)

    def __repr__(self) -> str:
        ip = f" {self.ip}" if self.ip else ""
        return f"<{type(self).__name__} {self.name} {self.mac}{ip}>"


class WiredInterface(Interface):
    """An Ethernet NIC attached to a hub or switch segment."""

    def __init__(self, name: str, mac: MacAddress, *, promiscuous: bool = False) -> None:
        super().__init__(name, mac)
        self.port = WiredPort(name, mac, promiscuous=promiscuous)
        self.port.on_receive = self._on_ethernet

    def attach_segment(self, segment) -> "WiredInterface":
        segment.attach(self.port)
        return self

    def send_frame_to(self, dst_mac: MacAddress, ethertype: int, payload: bytes) -> None:
        self.port.transmit(EthernetFrame(dst=dst_mac, src=self.mac,
                                         ethertype=ethertype, payload=payload))

    def _on_ethernet(self, frame: EthernetFrame) -> None:
        self._deliver_up(frame.src, frame.dst, frame.ethertype, frame.payload)


class TunInterface(Interface):
    """A point-to-point virtual interface (the VPN's ``ppp0``).

    Packets routed out of it are handed to ``on_transmit`` (the tunnel
    encapsulator); the tunnel injects received inner packets back with
    :meth:`inject`.  No ARP, no link framing — exactly like PPP.
    """

    needs_arp = False

    def __init__(self, name: str, mtu: int = 1400) -> None:
        # A TUN device has no real MAC; use a locally-administered dummy.
        super().__init__(name, MacAddress(b"\x02\x00\x00\x00\x00\x01"), mtu)
        self.on_transmit: Optional[Callable[[IPv4Packet], None]] = None
        self.peer_ip: Optional[IPv4Address] = None
        self.tx_packets = 0
        self.rx_packets = 0

    def configure_p2p(self, local_ip: "IPv4Address | str", peer_ip: "IPv4Address | str") -> None:
        """Point-to-point addressing (``ifconfig ppp0 A pointopoint B``)."""
        self.ip = IPv4Address(local_ip)
        self.peer_ip = IPv4Address(peer_ip)
        self.network = Network(str(self.ip), 32)
        if self.host is not None:
            self.host.routing.add_host(self.peer_ip, self.name)

    def transmit_ip(self, packet: IPv4Packet) -> None:
        if self.on_transmit is None:
            return
        self.tx_packets += 1
        self.on_transmit(packet)

    def inject(self, packet: IPv4Packet) -> None:
        """Deliver a decapsulated inner packet into the host stack."""
        self.rx_packets += 1
        if self.host is not None:
            self.host.receive_ip(packet, self)

    def send_frame_to(self, dst_mac: MacAddress, ethertype: int, payload: bytes) -> None:
        raise ConfigurationError("TUN interfaces carry IP packets, not frames")


# ----------------------------------------------------------------------
# managed (station) wireless interface
# ----------------------------------------------------------------------

class StaState(enum.Enum):
    IDLE = "IDLE"
    SCANNING = "SCANNING"
    AUTHENTICATING = "AUTHENTICATING"
    ASSOCIATING = "ASSOCIATING"
    ASSOCIATED = "ASSOCIATED"


@dataclass
class BssCandidate:
    """One BSS discovered during a scan."""

    info: BeaconInfo
    channel: int        # channel the frame was actually heard on
    rssi_dbm: float

    @property
    def key(self) -> tuple[MacAddress, int]:
        return (self.info.bssid, self.channel)


def strongest_rssi_policy(candidates: list[BssCandidate],
                          penalties: dict[tuple[MacAddress, int], float]) -> Optional[BssCandidate]:
    """Default AP selection: strongest signal, minus a failure penalty.

    The penalty models real supplicants' avoidance of APs that keep
    deauthing them — the knob the E-DEAUTH experiment turns.  With no
    failures recorded this is pure strongest-RSSI, the stock driver
    behaviour that hands roaming clients to a nearby rogue.
    """
    if not candidates:
        return None
    return max(candidates, key=lambda c: c.rssi_dbm - penalties.get(c.key, 0.0))


def first_heard_policy(candidates: list[BssCandidate],
                       penalties: dict[tuple[MacAddress, int], float]) -> Optional[BssCandidate]:
    """Ablation policy: take whichever matching BSS was heard first."""
    for c in candidates:
        if penalties.get(c.key, 0.0) <= 0.0:
            return c
    return candidates[0] if candidates else None


class WirelessInterface(Interface):
    """A managed-mode 802.11b NIC (station side).

    Lifecycle: :meth:`join` starts a scan over the channel list; the
    selection policy picks a BSS; open-system or shared-key
    authentication and association follow; data flows until a deauth,
    a disassoc, or beacon loss, whereupon the interface (optionally)
    rejoins — selecting afresh, failure penalties applied.
    """

    DWELL_S = 0.12            # per-channel scan dwell (catches a 100 TU beacon)
    MGMT_TIMEOUT_S = 0.2
    MGMT_RETRIES = 3
    REJOIN_DELAY_S = 0.2
    PENALTY_DB = 12.0         # selection penalty per recent deauth/failure
    PENALTY_DECAY_S = 30.0
    BEACON_LOSS_LIMIT = 8     # missed beacon intervals before rescan

    def __init__(
        self,
        name: str,
        mac: MacAddress,
        medium: Medium,
        position: Position,
        *,
        tx_power_dbm: float = 15.0,
    ) -> None:
        super().__init__(name, mac)
        self.port = RadioPort(name=name, position=position, channel=1,
                              tx_power_dbm=tx_power_dbm)
        self.port.on_receive = self._on_radio
        medium.attach(self.port)
        self.medium = medium
        self.state = StaState.IDLE
        self.seqctl = SequenceCounter()
        # join parameters
        self.target_ssid: Optional[str] = None
        self.wep: Optional[WepKey] = None
        self.wpa_psk: Optional[bytes] = None
        self._wpa = None  # StaWpaSession while associated to a WPA BSS
        self.iv_gen: Optional[IvGenerator] = None
        # RSN/SAE/PMF supplicant state (all inert unless join(rsn=...))
        self.rsn: Optional[RsnIe] = None
        self.rsn_strict = True
        self.sae_password: Optional[str] = None
        self.sae_group = None
        self._selected_rsn: Optional[RsnSelection] = None
        self._sae: Optional[SaeParty] = None
        self._sae_attempts = 0
        self._pmk: Optional[bytes] = None
        self._link_psk: Optional[bytes] = None  # 4-way input this assoc
        self._pmf_rx_ipn = 0
        self._csa_pending = None
        self.auth_algorithm = AuthAlgorithm.OPEN_SYSTEM
        self.scan_channels: tuple[int, ...] = tuple(range(1, 12))
        self.selection_policy: Callable = strongest_rssi_policy
        self.auto_reconnect = True
        # association state
        self.bssid: Optional[MacAddress] = None
        self.channel: Optional[int] = None
        self.current_rssi: Optional[float] = None
        self._candidates: dict[tuple[MacAddress, int], BssCandidate] = {}
        self._penalties: dict[tuple[MacAddress, int], float] = {}
        self._penalty_times: dict[tuple[MacAddress, int], float] = {}
        self._scan_idx = 0
        self._retries = 0
        self._mgmt_timer = None
        self._beacon_watch = None
        self._last_beacon_time = 0.0
        self._pending_challenge: Optional[bytes] = None
        # callbacks for experiments
        self.on_associated: Optional[Callable[[MacAddress, int], None]] = None
        self.on_deauthenticated: Optional[Callable[[int], None]] = None
        # Raw-frame observation hook: called with (frame, rssi, channel)
        # for every frame the radio hears, before any station-state
        # processing.  The seqctl-mirroring rogue uses its upstream
        # card's tap to shadow the legitimate AP's counter.
        self.frame_tap: Optional[Callable[[Dot11Frame, float, int], None]] = None
        # counters
        self.associations = 0
        self.deauths_received = 0
        self.wep_decrypt_failures = 0
        self.pmf_discards = 0
        self.csa_switches = 0

    # ------------------------------------------------------------------
    # joining
    # ------------------------------------------------------------------
    def join(
        self,
        ssid: str,
        *,
        wep_key: Optional[WepKey] = None,
        wpa_psk: Optional[bytes] = None,
        auth_algorithm: int = AuthAlgorithm.OPEN_SYSTEM,
        channels: Optional[tuple[int, ...]] = None,
        policy: Optional[Callable] = None,
        rsn: Optional[RsnIe] = None,
        sae_password: Optional[str] = None,
        sae_group=None,
        rsn_strict: bool = True,
    ) -> None:
        """Configure the target network and start scanning for it.

        ``rsn`` makes this a modern supplicant: it negotiates the
        strongest AKM both sides support (SAE over PSK) and honors PMF.
        ``rsn_strict=False`` models a sloppy transition-mode client
        that will also take an *open* network under the target SSID —
        the posture the downgrade rogue preys on.
        """
        if wep_key is not None and wpa_psk is not None:
            raise ConfigurationError("configure WEP or WPA-PSK, not both")
        if rsn is not None:
            if wep_key is not None:
                raise ConfigurationError("RSN and WEP cannot be combined")
            if rsn.supports(AkmSuite.SAE) and sae_password is None:
                raise ConfigurationError("SAE AKM configured without a password")
            if rsn.supports(AkmSuite.PSK) and wpa_psk is None:
                raise ConfigurationError("PSK AKM configured without a PSK")
        self.rsn = rsn
        self.rsn_strict = rsn_strict
        self.sae_password = sae_password
        if sae_group is None:
            from repro.crypto.dh import DH_GROUP_1536
            sae_group = DH_GROUP_1536
        self.sae_group = sae_group
        self.target_ssid = ssid
        self.wep = wep_key
        self.wpa_psk = wpa_psk
        if wep_key is not None:
            self.iv_gen = IvGenerator("sequential",
                                      start=self.sim.rng.substream(f"iv.{self.name}").randrange(0, 1 << 24))
        self.auth_algorithm = AuthAlgorithm(auth_algorithm)
        if channels is not None:
            self.scan_channels = tuple(channels)
        if policy is not None:
            self.selection_policy = policy
        self._start_scan()

    def leave(self) -> None:
        """Stop everything; go idle and stay there."""
        self.auto_reconnect = False
        self._disassociate(rejoin=False)
        self.state = StaState.IDLE

    def _start_scan(self) -> None:
        self._cancel_mgmt_timer()
        self._cancel_csa()
        self.state = StaState.SCANNING
        self.bssid = None
        self.channel = None
        self._selected_rsn = None
        self._sae = None
        self._pmk = None
        self._link_psk = None
        self._pmf_rx_ipn = 0
        self._candidates.clear()
        self._scan_idx = 0
        self._scan_step()

    def _cancel_csa(self) -> None:
        if self._csa_pending is not None:
            self._csa_pending.cancel()
            self._csa_pending = None

    def _scan_step(self) -> None:
        if self.state is not StaState.SCANNING:
            return
        if self._scan_idx >= len(self.scan_channels):
            self._finish_scan()
            return
        ch = self.scan_channels[self._scan_idx]
        self._scan_idx += 1
        self.port.channel = ch
        # Active scan: probe, then dwell listening for beacons/responses.
        probe = make_probe_request(self.mac, self.target_ssid or "", seq=self.seqctl.next())
        self.port.transmit(probe)
        self.sim.schedule(self.DWELL_S, self._scan_step)

    def _acceptable(self, c: BssCandidate) -> bool:
        """Whether a scanned BSS matches our security configuration."""
        if self.rsn is None:
            # Legacy path, untouched: privacy bit must match the keys.
            expects_privacy = self.wep is not None or self.wpa_psk is not None
            return c.info.privacy == expects_privacy
        if c.info.rsn is not None:
            try:
                ap_rsn = RsnIe.parse(c.info.rsn)
            except ProtocolError:
                return False
            return negotiate(ap_rsn, self.rsn) is not None
        if not c.info.privacy:
            # No RSN, no privacy bit: an open BSS under our SSID.  Only
            # a non-strict transition client takes the bait — this is
            # the association the downgrade rogue is fishing for.
            return not self.rsn_strict
        return False  # privacy without an RSN IE = WEP-era gear

    def _finish_scan(self) -> None:
        self._decay_penalties()
        matches = [
            c for c in self._candidates.values()
            if c.info.ssid == self.target_ssid and self._acceptable(c)
        ]
        choice = self.selection_policy(matches, dict(self._penalties))
        if choice is None:
            self.state = StaState.IDLE
            if self.auto_reconnect and self.target_ssid is not None:
                self.sim.schedule(self.REJOIN_DELAY_S, self._start_scan)
            return
        self.sim.trace.emit("dot11.select", self.name,
                            bssid=str(choice.info.bssid), channel=choice.channel,
                            rssi=round(choice.rssi_dbm, 1), ssid=choice.info.ssid)
        self.port.channel = choice.channel
        self.bssid = choice.info.bssid
        self.channel = choice.channel
        self._retries = 0
        self._selected_rsn = None
        if self.rsn is not None and choice.info.rsn is not None:
            try:
                self._selected_rsn = negotiate(RsnIe.parse(choice.info.rsn),
                                               self.rsn)
            except ProtocolError:
                self._selected_rsn = None
        if self._selected_rsn is not None:
            self.sim.trace.emit(
                "rsn.sta_negotiated", self.name,
                bssid=str(choice.info.bssid),
                akm=self._selected_rsn.akm_name, pmf=self._selected_rsn.pmf)
        self._send_auth_start()

    # ------------------------------------------------------------------
    # authentication / association
    # ------------------------------------------------------------------
    def _send_auth_start(self) -> None:
        self.state = StaState.AUTHENTICATING
        if (self._selected_rsn is not None
                and self._selected_rsn.akm == int(AkmSuite.SAE)):
            if self._sae is None:
                self._sae_attempts += 1
                self._sae = SaeParty(
                    self.sae_password, self.mac, self.bssid,
                    self.sim.rng.substream(
                        f"sae.{self.name}.{self._sae_attempts}"),
                    group=self.sae_group)
            frame = make_auth(
                self.mac, self.bssid, self.bssid,
                algorithm=AuthAlgorithm.SAE, txn=1,
                extra_ies=[sae_container_ie(self._sae.commit_bytes())],
                seq=self.seqctl.next())
        else:
            frame = make_auth(self.mac, self.bssid, self.bssid,
                              algorithm=self.auth_algorithm, txn=1,
                              seq=self.seqctl.next())
        self.port.transmit(frame)
        self._arm_mgmt_timer(self._send_auth_start)

    def _send_assoc_request(self) -> None:
        self.state = StaState.ASSOCIATING
        if self._selected_rsn is not None and self.rsn is not None:
            # Advertise *our* capabilities; the AP re-runs the same
            # negotiation and must land on the same selection.
            frame = make_assoc_request(self.mac, self.bssid,
                                       self.target_ssid or "",
                                       privacy=True,
                                       extra_ies=[self.rsn.to_ie()],
                                       seq=self.seqctl.next())
        else:
            frame = make_assoc_request(self.mac, self.bssid,
                                       self.target_ssid or "",
                                       privacy=self.wep is not None,
                                       seq=self.seqctl.next())
        self.port.transmit(frame)
        self._arm_mgmt_timer(self._send_assoc_request)

    def _arm_mgmt_timer(self, retry_fn: Callable[[], None]) -> None:
        self._cancel_mgmt_timer()

        def on_timeout() -> None:
            self._retries += 1
            if self._retries > self.MGMT_RETRIES:
                self._record_failure()
                self._start_scan()
            else:
                retry_fn()

        self._mgmt_timer = self.sim.schedule(self.MGMT_TIMEOUT_S, on_timeout)

    def _cancel_mgmt_timer(self) -> None:
        if self._mgmt_timer is not None:
            self._mgmt_timer.cancel()
            self._mgmt_timer = None

    def _record_failure(self) -> None:
        if self.bssid is None or self.channel is None:
            return
        key = (self.bssid, self.channel)
        self._penalties[key] = self._penalties.get(key, 0.0) + self.PENALTY_DB
        self._penalty_times[key] = self.sim.now

    def _decay_penalties(self) -> None:
        now = self.sim.now
        for key in list(self._penalties):
            age = now - self._penalty_times.get(key, now)
            if age > self.PENALTY_DECAY_S:
                del self._penalties[key]
                self._penalty_times.pop(key, None)

    def _become_associated(self) -> None:
        self._cancel_mgmt_timer()
        self.state = StaState.ASSOCIATED
        self.associations += 1
        link_psk = self.wpa_psk
        if self.rsn is not None:
            sel = self._selected_rsn
            if sel is None:
                link_psk = None  # open fallback (rsn_strict=False bit)
            elif sel.akm == int(AkmSuite.SAE):
                link_psk = self._pmk  # fresh per-association SAE PMK
        self._link_psk = link_psk
        if link_psk is not None:
            from repro.hosts.wpa_link import StaWpaSession
            self._wpa = StaWpaSession(
                link_psk, self.mac, self.bssid,
                send_eapol=self._send_eapol,
                rng=self.sim.rng.substream(f"wpa.{self.name}.{self.associations}"))
        self._last_beacon_time = self.sim.now
        self._watch_beacons()
        self.sim.trace.emit("dot11.assoc", self.name,
                            bssid=str(self.bssid), channel=self.channel)
        m = obs_metrics()
        if m is not None:
            m.incr("dot11.sta_associations")
        if self.on_associated is not None:
            self.on_associated(self.bssid, self.channel)

    def _watch_beacons(self) -> None:
        if self._beacon_watch is not None:
            self._beacon_watch.cancel()
        if self.state is not StaState.ASSOCIATED:
            return

        def check() -> None:
            if self.state is not StaState.ASSOCIATED:
                return
            if self.sim.now - self._last_beacon_time > self.BEACON_LOSS_LIMIT * 0.1:
                self.sim.trace.emit("dot11.beacon_loss", self.name, bssid=str(self.bssid))
                self._disassociate(rejoin=True)
            else:
                self._watch_beacons()

        self._beacon_watch = self.sim.schedule(0.5, check)

    def _disassociate(self, rejoin: bool) -> None:
        self._cancel_mgmt_timer()
        self._cancel_csa()
        if self._beacon_watch is not None:
            self._beacon_watch.cancel()
            self._beacon_watch = None
        self.state = StaState.IDLE
        self.bssid = None
        self.channel = None
        self._wpa = None
        self._link_psk = None
        self._sae = None
        self._pmk = None
        if rejoin and self.auto_reconnect and self.target_ssid is not None:
            self.sim.schedule(self.REJOIN_DELAY_S, self._start_scan)

    @property
    def associated(self) -> bool:
        return self.state is StaState.ASSOCIATED

    @property
    def negotiated_akm(self) -> Optional[str]:
        """AKM name this association negotiated (``None`` = open/legacy)."""
        return self._selected_rsn.akm_name if self._selected_rsn else None

    @property
    def pmf_active(self) -> bool:
        """Whether this association negotiated management-frame protection."""
        return self._selected_rsn is not None and self._selected_rsn.pmf

    @property
    def link_encrypted(self) -> bool:
        """Whether data on the current association is protected at all."""
        return self._link_psk is not None or self.wep is not None

    @property
    def link_ready(self) -> bool:
        """Associated *and* keyed (WPA needs the 4-way to finish)."""
        if not self.associated:
            return False
        if self._link_psk is not None:
            return self._wpa is not None and self._wpa.established
        return True

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def _send_eapol(self, payload: bytes) -> None:
        if self.state is not StaState.ASSOCIATED or self.bssid is None:
            return
        body = llc_encap(0x888E, payload)
        frame = make_data(self.mac, self.bssid, self.bssid, body,
                          to_ds=True, seq=self.seqctl.next())
        self.port.transmit(frame)

    def send_frame_to(self, dst_mac: MacAddress, ethertype: int, payload: bytes) -> None:
        if self.state is not StaState.ASSOCIATED or self.bssid is None:
            return  # not connected; upper layers retry (ARP) or time out (TCP)
        body = llc_encap(ethertype, payload)
        protected = False
        if self._link_psk is not None:
            if self._wpa is None or not self._wpa.established:
                return  # keys not installed yet; WPA sends no cleartext data
            body = self._wpa.tx.encapsulate(body)
            protected = True
        elif self.wep is not None and self.iv_gen is not None:
            body = wep_encrypt(self.wep, self.iv_gen.next_iv(), body)
            protected = True
        frame = make_data(self.mac, dst_mac, self.bssid, body,
                          to_ds=True, protected=protected, seq=self.seqctl.next())
        self.port.transmit(frame)
        rec = flight_recorder()
        if rec is not None and frame.trace_id is not None:
            rec.hop("nic", "tx", trace_id=frame.trace_id,
                    host=self._hop_host(), t=self.sim.now,
                    ethertype=hex(ethertype),
                    privacy="wpa" if self._link_psk is not None
                    else "wep" if protected else "open")

    # ------------------------------------------------------------------
    # reception
    # ------------------------------------------------------------------
    def _on_radio(self, frame: Dot11Frame, rssi: float, channel: int) -> None:
        if self.frame_tap is not None:
            self.frame_tap(frame, rssi, channel)
        subtype = frame.subtype
        if subtype in (FrameSubtype.BEACON, FrameSubtype.PROBE_RESP):
            self._on_beacon(frame, rssi, channel)
        elif subtype is FrameSubtype.AUTH:
            self._on_auth(frame)
        elif subtype is FrameSubtype.ASSOC_RESP:
            self._on_assoc_resp(frame)
        elif subtype in (FrameSubtype.DEAUTH, FrameSubtype.DISASSOC):
            self._on_deauth(frame)
        elif subtype is FrameSubtype.DATA:
            self._on_data(frame)

    def _on_beacon(self, frame: Dot11Frame, rssi: float, channel: int) -> None:
        try:
            info = frame.parse_beacon()
        except ProtocolError:
            return
        if self.state is StaState.SCANNING:
            cand = BssCandidate(info=info, channel=channel, rssi_dbm=rssi)
            existing = self._candidates.get(cand.key)
            if existing is None or rssi > existing.rssi_dbm:
                self._candidates[cand.key] = cand
        elif self.state is StaState.ASSOCIATED and frame.addr3 == self.bssid:
            self._last_beacon_time = self.sim.now
            self.current_rssi = rssi
            if info.csa is not None and self._csa_pending is None:
                self._honor_csa(info)

    def _honor_csa(self, info: BeaconInfo) -> None:
        """Obey a channel-switch announcement from our own BSS.

        Standard-mandated behaviour — and an unauthenticated lure: a
        forged beacon with a CSA IE herds us onto the attacker's
        channel just as obediently as a genuine switch.
        """
        try:
            csa = CsaIe.parse(info.csa)
        except ProtocolError:
            return
        if csa.new_channel == self.channel:
            return
        delay = max(1, csa.count) * info.interval_tu * 1024e-6
        self.sim.trace.emit("dot11.csa_rx", self.name, bssid=str(self.bssid),
                            new_channel=csa.new_channel, count=csa.count)
        self._csa_pending = self.sim.schedule(
            delay, lambda: self._execute_csa(csa.new_channel))

    def _execute_csa(self, new_channel: int) -> None:
        self._csa_pending = None
        if self.state is not StaState.ASSOCIATED:
            return
        self.port.channel = new_channel
        self.channel = new_channel
        self.csa_switches += 1
        self.sim.trace.emit("dot11.csa_switch", self.name,
                            bssid=str(self.bssid), channel=new_channel)
        m = obs_metrics()
        if m is not None:
            m.incr("dot11.csa_switches")

    def _on_auth(self, frame: Dot11Frame) -> None:
        if self.state is not StaState.AUTHENTICATING or frame.addr1 != self.mac:
            return
        if frame.addr2 != self.bssid:
            return
        try:
            if frame.protected and self.wep is not None:
                body = wep_decrypt(self.wep, frame.body)
                frame = frame.with_body(body, protected=False)
            alg, txn, status, challenge = frame.parse_auth()
        except (ProtocolError, WepError):
            return
        if status != StatusCode.SUCCESS:
            self._record_failure()
            self._cancel_mgmt_timer()
            self._start_scan()
            return
        if alg == AuthAlgorithm.SAE:
            self._on_auth_sae(frame, txn)
            return
        if alg == AuthAlgorithm.SHARED_KEY and txn == 2 and challenge is not None:
            # Return the challenge WEP-encrypted (the step that leaks keystream).
            if self.wep is None or self.iv_gen is None:
                self._record_failure()
                self._start_scan()
                return
            reply = make_auth(self.mac, self.bssid, self.bssid,
                              algorithm=AuthAlgorithm.SHARED_KEY, txn=3,
                              challenge=challenge, seq=self.seqctl.next())
            encrypted = wep_encrypt(self.wep, self.iv_gen.next_iv(), reply.body)
            self.port.transmit(reply.with_body(encrypted, protected=True))
            self._arm_mgmt_timer(self._send_auth_start)
            return
        final_txn = 2 if alg == AuthAlgorithm.OPEN_SYSTEM else 4
        if txn == final_txn:
            self._cancel_mgmt_timer()
            self._retries = 0
            self._send_assoc_request()

    def _on_auth_sae(self, frame: Dot11Frame, txn: int) -> None:
        """SAE commit/confirm exchange (status SUCCESS already checked)."""
        if self._sae is None:
            return
        try:
            payload = sae_payload(frame.parse_trailing_ies(6))
        except ProtocolError:
            return
        if payload is None:
            return
        if txn == 1:
            try:
                self._sae.process_commit(payload)
            except SaeError:
                self._sae_fail()
                return
            reply = make_auth(
                self.mac, self.bssid, self.bssid,
                algorithm=AuthAlgorithm.SAE, txn=2,
                extra_ies=[sae_container_ie(self._sae.confirm_bytes())],
                seq=self.seqctl.next())
            self.port.transmit(reply)
            self._arm_mgmt_timer(self._send_auth_start)
        elif txn == 2:
            if not self._sae.process_confirm(payload):
                # The password proof the 2003 client never had: an AP
                # that cannot produce a valid confirm does not know the
                # password, and we walk away instead of associating.
                self._sae_fail()
                return
            self._pmk = self._sae.pmk
            self._cancel_mgmt_timer()
            self._retries = 0
            self._send_assoc_request()

    def _sae_fail(self) -> None:
        self.sim.trace.emit("rsn.sae_reject", self.name, bssid=str(self.bssid))
        self._sae = None
        self._record_failure()
        self._cancel_mgmt_timer()
        self._start_scan()

    def _on_assoc_resp(self, frame: Dot11Frame) -> None:
        if self.state is not StaState.ASSOCIATING or frame.addr1 != self.mac:
            return
        if frame.addr2 != self.bssid:
            return
        try:
            _cap, status, _aid = frame.parse_assoc_response()
        except ProtocolError:
            return
        if status == StatusCode.SUCCESS:
            self._become_associated()
        else:
            self._record_failure()
            self._cancel_mgmt_timer()
            self._start_scan()

    def _on_deauth(self, frame: Dot11Frame) -> None:
        """A deauth/disassoc naming us — genuine or forged, we obey.

        802.11b gives no way to tell the difference; this unconditional
        obedience is what the deauth attack (§4) exploits.
        """
        if frame.addr1 != self.mac and not frame.addr1.is_broadcast:
            return
        relevant = (
            (self.state is StaState.ASSOCIATED and frame.addr2 == self.bssid)
            or (self.state in (StaState.AUTHENTICATING, StaState.ASSOCIATING)
                and frame.addr2 == self.bssid)
        )
        if not relevant:
            return
        self.deauths_received += 1
        if (self._selected_rsn is not None and self._selected_rsn.pmf
                and self._wpa is not None and self._wpa.established):
            # PMF: a keyed session only honors deauth/disassoc bearing
            # a valid, non-replayed MME.  Forgeries bounce off — the
            # fix the paper's §4 flood predates.
            igtk = derive_igtk(self._wpa.keys.kck)
            ipn = verify_mgmt_mic(frame, igtk, self._pmf_rx_ipn)
            if ipn is None:
                self.pmf_discards += 1
                self.sim.trace.emit("dot11.pmf_discard", self.name,
                                    bssid=str(frame.addr2))
                m = obs_metrics()
                if m is not None:
                    m.incr("dot11.pmf_discards")
                return
            self._pmf_rx_ipn = ipn
        try:
            reason = frame.parse_reason()
        except ProtocolError:
            reason = int(ReasonCode.UNSPECIFIED)
        self.sim.trace.emit("dot11.deauth_rx", self.name,
                            bssid=str(frame.addr2), reason=reason)
        m = obs_metrics()
        if m is not None:
            m.incr("dot11.deauths_received")
        self._record_failure()
        if self.on_deauthenticated is not None:
            self.on_deauthenticated(reason)
        self._disassociate(rejoin=True)

    def _on_data(self, frame: Dot11Frame) -> None:
        if self.state is not StaState.ASSOCIATED:
            return
        if not frame.from_ds or frame.addr2 != self.bssid:
            return
        if frame.addr1 != self.mac and not frame.addr1.is_broadcast:
            return
        body = frame.body
        if self._link_psk is not None:
            if frame.protected:
                if self._wpa is None or not self._wpa.established:
                    self.wep_decrypt_failures += 1
                    return
                try:
                    body = self._wpa.rx.decapsulate(body)
                except TkipError:
                    self.wep_decrypt_failures += 1
                    return
            else:
                try:
                    ethertype, payload = llc_decap(body)
                except ProtocolError:
                    return
                if ethertype == 0x888E and self._wpa is not None:
                    self._wpa.handle_eapol(payload)
                return  # cleartext non-EAPOL is dropped under WPA
        elif frame.protected:
            if self.wep is None:
                return
            try:
                body = wep_decrypt(self.wep, body)
            except WepError:
                self.wep_decrypt_failures += 1
                return
        elif self.wep is not None:
            return  # we expect privacy; drop cleartext data
        try:
            ethertype, payload = llc_decap(body)
        except ProtocolError:
            return
        rec = flight_recorder()
        if rec is not None and frame.trace_id is not None:
            rec.hop("nic", "deliver", trace_id=frame.trace_id,
                    host=self._hop_host(), t=self.sim.now,
                    ethertype=hex(ethertype), bytes=len(payload),
                    privacy="wpa" if self._link_psk is not None
                    else "wep" if frame.protected else "open")
        self._deliver_up(frame.source, frame.destination, ethertype, payload)
