"""Wireless client stations.

A :class:`Station` is the victim's laptop: a host with one managed
wireless NIC and convenience wrappers for the join-and-configure dance
("The unsuspecting client will be configured to connect to the
corporate network with SSID CORP and have the WEP key entered into his
machine", §4.1).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.crypto.wep import WepKey
from repro.dot11.mac import MacAddress
from repro.hosts.host import Host
from repro.hosts.nic import WirelessInterface
from repro.netstack.addressing import IPv4Address
from repro.radio.medium import Medium
from repro.radio.propagation import Position
from repro.sim.kernel import Simulator

__all__ = ["Station"]


class Station(Host):
    """A host with a single managed 802.11b interface named ``wlan0``."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        medium: Medium,
        position: Position,
        *,
        mac: Optional[MacAddress] = None,
        tx_power_dbm: float = 15.0,
    ) -> None:
        super().__init__(sim, name)
        if mac is None:
            mac = MacAddress.random(sim.rng.substream(f"mac.{name}"))
        self.wlan = WirelessInterface("wlan0", mac, medium, position,
                                      tx_power_dbm=tx_power_dbm)
        self.add_interface(self.wlan)

    @property
    def position(self) -> Position:
        return self.wlan.port.position

    def move_to(self, position: Position) -> None:
        self.wlan.port.position = position

    def connect(
        self,
        ssid: str,
        *,
        wep_key: Optional[WepKey] = None,
        wpa_psk: Optional[bytes] = None,
        ip: Optional[str] = None,
        netmask: str = "255.255.255.0",
        gateway: Optional[str] = None,
        auth_algorithm: int = 0,
        policy: Optional[Callable] = None,
        channels: Optional[tuple[int, ...]] = None,
        rsn=None,
        sae_password: Optional[str] = None,
        sae_group=None,
        rsn_strict: bool = True,
    ) -> None:
        """Join a network and statically configure IP (the §4.1 victim setup)."""
        if ip is not None:
            self.wlan.configure_ip(ip, netmask)
        if gateway is not None:
            self.routing.add_default(IPv4Address(gateway), "wlan0")
        self.wlan.join(ssid, wep_key=wep_key, wpa_psk=wpa_psk,
                       auth_algorithm=auth_algorithm,
                       policy=policy, channels=channels,
                       rsn=rsn, sae_password=sae_password,
                       sae_group=sae_group, rsn_strict=rsn_strict)

    @property
    def associated_bssid(self) -> Optional[MacAddress]:
        return self.wlan.bssid if self.wlan.associated else None

    @property
    def associated_channel(self) -> Optional[int]:
        return self.wlan.channel if self.wlan.associated else None
