"""Access-point machinery shared by infrastructure APs and soft-APs.

:class:`ApCore` implements the AP side of 802.11b: beaconing, probe
responses, open-system and shared-key authentication, association,
WEP enforcement, and MAC filtering.  Crucially it implements them
*symmetrically for anyone who instantiates it* — the legitimate CORP
AP and the attacker's hostap-driver laptop (§4: "The D-Link card is
configured with the Linux hostap driver to operate in Master mode")
run the very same code, because the protocol gives the rogue nothing
it must fake beyond configuration values.

:class:`SoftApInterface` wraps an :class:`ApCore` as a host interface:
the paper's ``wlan0`` — simultaneously an AP for victims and an IP
interface on the attacker's gateway machine.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.crypto.wep import IvGenerator, WepError, WepKey, wep_decrypt, wep_encrypt
from repro.dot11.frames import (
    AuthAlgorithm,
    Dot11Frame,
    FrameSubtype,
    ReasonCode,
    StatusCode,
    make_assoc_response,
    make_auth,
    make_beacon,
    make_data,
    make_deauth,
    make_probe_response,
)
from repro.dot11.mac import BROADCAST, MacAddress
from repro.dot11.seqctl import SequenceCounter
from repro.crypto.tkip import TkipError
from repro.hosts.nic import Interface
from repro.hosts.wpa_link import ETHERTYPE_EAPOL, ApWpaSession
from repro.netstack.ethernet import llc_decap, llc_encap
from repro.obs.lineage import flight_recorder
from repro.obs.runtime import obs_metrics
from repro.radio.medium import Medium, RadioPort
from repro.radio.propagation import Position
from repro.dot11.ies import IeId, find_ie
from repro.rsn.ie import AkmSuite, RsnIe, RsnSelection, negotiate
from repro.rsn.pmf import derive_igtk, mme_for_frame, verify_mgmt_mic
from repro.rsn.sae import SaeError, SaeParty, sae_container_ie, sae_payload
from repro.sim.errors import ProtocolError
from repro.sim.kernel import Simulator

__all__ = ["ApCore", "ClientState", "MacFilter", "SoftApInterface"]


class MacFilter:
    """Allow-list MAC filtering (§2.1).

    "Since MAC addresses can be changed from their factory default and
    valid MACs can be sniffed from the network it accomplishes nothing
    more than perhaps keeping honest people honest."  The E-MAC
    experiment quantifies that sentence.
    """

    def __init__(self, allowed: Optional[list[MacAddress]] = None) -> None:
        self._allowed: Optional[set[MacAddress]] = (
            set(allowed) if allowed is not None else None
        )
        self.denials = 0

    @property
    def enabled(self) -> bool:
        return self._allowed is not None

    def allow(self, mac: MacAddress) -> None:
        if self._allowed is None:
            self._allowed = set()
        self._allowed.add(mac)

    def permits(self, mac: MacAddress) -> bool:
        if self._allowed is None:
            return True
        if mac in self._allowed:
            return True
        self.denials += 1
        return False


class ClientPhase(enum.Enum):
    AUTHENTICATED = "AUTHENTICATED"
    ASSOCIATED = "ASSOCIATED"


@dataclass
class ClientState:
    mac: MacAddress
    phase: ClientPhase
    aid: int = 0
    pending_challenge: Optional[bytes] = None
    rssi_dbm: float = 0.0
    frames_from: int = 0
    wpa: Optional[ApWpaSession] = None
    # RSN/SAE/PMF per-client state (all None/0 on legacy networks)
    sae: Optional[SaeParty] = None
    pmk: Optional[bytes] = None        # SAE outcome; feeds the 4-way
    rsn: Optional[RsnSelection] = None
    pmf: bool = False
    ipn_tx: int = 0                    # MME packet number we send
    ipn_rx: int = 0                    # replay high-water mark from STA


class ApCore:
    """One BSS: radio, beaconing, client table, crypto policy."""

    BEACON_INTERVAL_S = 0.1  # 100 TU, the universal default

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        name: str,
        bssid: MacAddress,
        ssid: str,
        channel: int,
        position: Position,
        *,
        wep_key: Optional[WepKey] = None,
        wpa_psk: Optional[bytes] = None,
        auth_algorithm: int = AuthAlgorithm.OPEN_SYSTEM,
        mac_filter: Optional[MacFilter] = None,
        tx_power_dbm: float = 18.0,
        beaconing: bool = True,
        seqctl=None,
        beacon_jitter_s: float = 0.0,
        rsn: Optional[RsnIe] = None,
        sae_password: Optional[str] = None,
        sae_group=None,
    ) -> None:
        if wep_key is not None and wpa_psk is not None:
            from repro.sim.errors import ConfigurationError
            raise ConfigurationError("a BSS runs WEP or WPA, not both")
        if rsn is not None:
            from repro.sim.errors import ConfigurationError
            if wep_key is not None:
                raise ConfigurationError("an RSN BSS cannot also run WEP")
            if rsn.supports(AkmSuite.SAE) and sae_password is None:
                raise ConfigurationError("SAE AKM advertised without a password")
            if rsn.supports(AkmSuite.PSK) and wpa_psk is None:
                raise ConfigurationError("PSK AKM advertised without a PSK")
        self.sim = sim
        self.name = name
        self.bssid = bssid
        self.ssid = ssid
        self.channel = channel
        self.wep = wep_key
        self.wpa_psk = wpa_psk
        self.rsn = rsn
        self.sae_password = sae_password
        if sae_group is None:
            from repro.crypto.dh import DH_GROUP_1536
            sae_group = DH_GROUP_1536
        self.sae_group = sae_group
        # Advertised in every beacon/probe response; packed once.
        self._rsn_ies = [rsn.to_ie()] if rsn is not None else None
        # SAE RNG substream is created lazily on the first commit, so
        # legacy (non-RSN) worlds draw nothing new — substreams are
        # independently seeded, but not creating one at all is the
        # strongest possible no-perturbation guarantee.
        self._sae_rng = None
        self.pmf_discards = 0
        self.auth_algorithm = AuthAlgorithm(auth_algorithm)
        self.mac_filter = mac_filter or MacFilter()
        self.port = RadioPort(name=name, position=position, channel=channel,
                              tx_power_dbm=tx_power_dbm)
        self.port.on_receive = self._on_radio
        medium.attach(self.port)
        # ``seqctl`` injection point: an evading rogue substitutes a
        # MirroredSequenceCounter here.  Skipping the substream draw is
        # safe — substreams are independently seeded, so no other
        # stream's values shift.
        self.seqctl = (seqctl if seqctl is not None else
                       SequenceCounter(sim.rng.substream(f"seq.{name}").randrange(0, 4096)))
        self.iv_gen = (
            IvGenerator("sequential",
                        start=sim.rng.substream(f"iv.{name}").randrange(0, 1 << 24))
            if wep_key is not None else None
        )
        self._wpa_rng = sim.rng.substream(f"wpa.{name}")
        self.clients: dict[MacAddress, ClientState] = {}
        self._next_aid = 1
        self._challenge_rng = sim.rng.substream(f"chal.{name}")
        #: Owner hook: called with (src_mac, dst_mac, ethertype, payload)
        #: for upstream-bound traffic from associated clients.
        self.on_client_frame: Optional[Callable[[MacAddress, MacAddress, int, bytes], None]] = None
        self._stop_beaconing = None
        self._beacon_timer = None
        self.beacon_jitter_s = beacon_jitter_s
        if beaconing:
            if beacon_jitter_s > 0.0:
                # A software-timed AP (hostap on a laptop): each TBTT
                # slips by OS-scheduling jitter.  Own substream, so the
                # jitter-free path stays byte-identical to before.
                self._jitter_rng = sim.rng.substream(f"beaconjitter.{name}")
                self._beacon_timer = sim.schedule(
                    self.BEACON_INTERVAL_S
                    + self._jitter_rng.uniform(0.0, beacon_jitter_s),
                    self._jittered_beacon)
            else:
                self._stop_beaconing = sim.every(self.BEACON_INTERVAL_S, self._beacon)
        # counters
        self.associations_granted = 0
        self.data_relayed = 0
        self.wep_drop_count = 0

    # ------------------------------------------------------------------
    # transmission helpers
    # ------------------------------------------------------------------
    @property
    def privacy(self) -> bool:
        """The capability bit: set for WEP, WPA, and RSN networks."""
        return (self.wep is not None or self.wpa_psk is not None
                or self.rsn is not None)

    @property
    def _wpa_enabled(self) -> bool:
        """Data frames ride pairwise keys (legacy WPA-PSK or RSN)."""
        return self.wpa_psk is not None or self.rsn is not None

    def _beacon(self) -> None:
        frame = make_beacon(self.bssid, self.ssid, self.channel,
                            privacy=self.privacy,
                            timestamp=int(self.sim.now * 1e6),
                            seq=self.seqctl.next(),
                            extra_ies=self._rsn_ies)
        self.port.transmit(frame)

    def _jittered_beacon(self) -> None:
        self._beacon()
        delay = (self.BEACON_INTERVAL_S
                 + self._jitter_rng.uniform(0.0, self.beacon_jitter_s))
        self._beacon_timer = self.sim.schedule(delay, self._jittered_beacon)

    def send_to_client(self, dst_mac: MacAddress, src_mac: MacAddress,
                       ethertype: int, payload: bytes) -> None:
        """Transmit a from-DS data frame into the BSS."""
        if self._wpa_enabled and (dst_mac.is_broadcast or dst_mac.is_multicast):
            # GTK substitution (documented): group frames go per-peer
            # under the pairwise keys.
            for mac, state in list(self.clients.items()):
                if state.phase is ClientPhase.ASSOCIATED and state.wpa is not None \
                        and state.wpa.established:
                    self._unicast_to_client(mac, dst_mac, src_mac, ethertype, payload)
            return
        if not dst_mac.is_broadcast and not dst_mac.is_multicast:
            client = self.clients.get(dst_mac)
            if client is None or client.phase is not ClientPhase.ASSOCIATED:
                return
        self._unicast_to_client(dst_mac, dst_mac, src_mac, ethertype, payload)

    def _unicast_to_client(self, radio_dst: MacAddress, dst_mac: MacAddress,
                           src_mac: MacAddress, ethertype: int,
                           payload: bytes) -> None:
        body = llc_encap(ethertype, payload)
        protected = False
        if self._wpa_enabled:
            state = self.clients.get(radio_dst)
            if state is None or state.wpa is None or not state.wpa.established:
                return  # no keys yet: WPA never sends cleartext data
            body = state.wpa.tx.encapsulate(body)
            protected = True
        elif self.wep is not None and self.iv_gen is not None:
            body = wep_encrypt(self.wep, self.iv_gen.next_iv(), body)
            protected = True
        frame = make_data(self.bssid, dst_mac, self.bssid, body,
                          from_ds=True, protected=protected, seq=self.seqctl.next())
        if radio_dst != dst_mac:
            # Group frame delivered pairwise: address the radio peer.
            frame = make_data(self.bssid, radio_dst, self.bssid, body,
                              from_ds=True, protected=protected,
                              seq=self.seqctl.next())
        self.port.transmit(frame)
        rec = flight_recorder()
        if rec is not None and frame.trace_id is not None:
            rec.hop("ap", "tx", trace_id=frame.trace_id, host=self.name,
                    t=self.sim.now, dst=str(dst_mac),
                    ethertype=hex(ethertype),
                    privacy="wpa" if self._wpa_enabled
                    else "wep" if protected else "open")

    def _send_eapol(self, sta: MacAddress, payload: bytes) -> None:
        """Handshake frames ride unprotected data frames (as EAPOL does)."""
        body = llc_encap(ETHERTYPE_EAPOL, payload)
        frame = make_data(self.bssid, sta, self.bssid, body,
                          from_ds=True, seq=self.seqctl.next())
        self.port.transmit(frame)

    def wpa_established(self, mac: MacAddress) -> bool:
        state = self.clients.get(mac)
        return bool(state and state.wpa and state.wpa.established)

    def deauth_client(self, mac: MacAddress, reason: int = ReasonCode.UNSPECIFIED) -> None:
        """Administratively kick a client.

        For a PMF association the deauth carries a valid MME, so the
        station distinguishes this legitimate kick from a forgery.
        """
        state = self.clients.pop(mac, None)
        frame = make_deauth(self.bssid, mac, self.bssid,
                            reason=reason, seq=self.seqctl.next())
        if (state is not None and state.pmf and state.wpa is not None
                and state.wpa.established):
            igtk = derive_igtk(state.wpa.keys.kck)
            state.ipn_tx += 1
            mme = mme_for_frame(frame, igtk, state.ipn_tx)
            frame = frame.with_body(frame.body + mme.to_ie().pack())
        if state is not None and state.wpa is not None:
            state.wpa.shutdown()
        self.port.transmit(frame)

    def associated_clients(self) -> list[MacAddress]:
        return [mac for mac, st in self.clients.items()
                if st.phase is ClientPhase.ASSOCIATED]

    def shutdown(self) -> None:
        if self._stop_beaconing is not None:
            self._stop_beaconing()
        if self._beacon_timer is not None:
            self._beacon_timer.cancel()
            self._beacon_timer = None
        self.port.enabled = False

    # ------------------------------------------------------------------
    # reception
    # ------------------------------------------------------------------
    def _on_radio(self, frame: Dot11Frame, rssi: float, channel: int) -> None:
        subtype = frame.subtype
        if subtype is FrameSubtype.PROBE_REQ:
            self._on_probe_req(frame)
        elif subtype is FrameSubtype.AUTH:
            self._on_auth(frame, rssi)
        elif subtype is FrameSubtype.ASSOC_REQ:
            self._on_assoc_req(frame)
        elif subtype in (FrameSubtype.DEAUTH, FrameSubtype.DISASSOC):
            if frame.addr1 == self.bssid:
                state = self.clients.get(frame.addr2)
                if (state is not None and state.pmf
                        and state.wpa is not None and state.wpa.established):
                    igtk = derive_igtk(state.wpa.keys.kck)
                    ipn = verify_mgmt_mic(frame, igtk, state.ipn_rx)
                    if ipn is None:
                        # Forged STA-side deauth: cryptographically
                        # rejected; the association survives.
                        self.pmf_discards += 1
                        return
                    state.ipn_rx = ipn
                self.clients.pop(frame.addr2, None)
        elif subtype is FrameSubtype.DATA:
            self._on_data(frame)

    def _on_probe_req(self, frame: Dot11Frame) -> None:
        # Respond to directed probes for our SSID and to broadcast probes.
        from repro.dot11.ies import IeId, find_ie, parse_ies
        try:
            ies = parse_ies(frame.body)
        except ProtocolError:
            return
        ssid_el = find_ie(ies, IeId.SSID)
        requested = ssid_el.data.decode("utf-8", "replace") if ssid_el else ""
        if requested not in ("", self.ssid):
            return
        self.port.transmit(make_probe_response(
            self.bssid, frame.addr2, self.ssid, self.channel,
            privacy=self.privacy,
            timestamp=int(self.sim.now * 1e6),
            seq=self.seqctl.next(),
            extra_ies=self._rsn_ies,
        ))

    def _on_auth(self, frame: Dot11Frame, rssi: float) -> None:
        if frame.addr1 != self.bssid:
            return
        sta = frame.addr2
        # Shared-key transaction 3 arrives WEP-protected.
        if frame.protected:
            self._on_auth_txn3(frame, sta)
            return
        try:
            alg, txn, _status, _challenge = frame.parse_auth()
        except ProtocolError:
            return
        if alg == AuthAlgorithm.SAE:
            self._on_auth_sae(frame, sta, txn, rssi)
            return
        if txn != 1:
            return
        if not self.mac_filter.permits(sta):
            self.port.transmit(make_auth(self.bssid, sta, self.bssid,
                                         algorithm=alg, txn=2,
                                         status=StatusCode.UNSPECIFIED_FAILURE,
                                         seq=self.seqctl.next()))
            self.sim.trace.emit("dot11.mac_filter_deny", self.name, sta=str(sta))
            return
        if alg == AuthAlgorithm.OPEN_SYSTEM and self.auth_algorithm == AuthAlgorithm.OPEN_SYSTEM:
            self.clients[sta] = ClientState(mac=sta, phase=ClientPhase.AUTHENTICATED,
                                            rssi_dbm=rssi)
            self.port.transmit(make_auth(self.bssid, sta, self.bssid,
                                         algorithm=alg, txn=2,
                                         status=StatusCode.SUCCESS,
                                         seq=self.seqctl.next()))
        elif alg == AuthAlgorithm.SHARED_KEY and self.wep is not None:
            challenge = self._challenge_rng.bytes(128)
            state = ClientState(mac=sta, phase=ClientPhase.AUTHENTICATED,
                                pending_challenge=challenge, rssi_dbm=rssi)
            self.clients[sta] = state
            self.port.transmit(make_auth(self.bssid, sta, self.bssid,
                                         algorithm=alg, txn=2,
                                         status=StatusCode.SUCCESS,
                                         challenge=challenge,
                                         seq=self.seqctl.next()))
        else:
            self.port.transmit(make_auth(self.bssid, sta, self.bssid,
                                         algorithm=alg, txn=2,
                                         status=StatusCode.UNSPECIFIED_FAILURE,
                                         seq=self.seqctl.next()))

    def _on_auth_sae(self, frame: Dot11Frame, sta: MacAddress,
                     txn: int, rssi: float) -> None:
        """AP side of SAE: txn 1 = commit exchange, txn 2 = confirm.

        A password-less AP (or one not advertising the SAE AKM) refuses
        outright — there is nothing it could say that would verify.
        """
        def reject(status: int) -> None:
            self.port.transmit(make_auth(
                self.bssid, sta, self.bssid,
                algorithm=AuthAlgorithm.SAE, txn=txn, status=status,
                seq=self.seqctl.next()))

        if (self.rsn is None or self.sae_password is None
                or not self.rsn.supports(AkmSuite.SAE)):
            reject(StatusCode.UNSPECIFIED_FAILURE)
            return
        try:
            payload = sae_payload(frame.parse_trailing_ies(6))
        except ProtocolError:
            return
        if payload is None:
            return
        if txn == 1:
            if not self.mac_filter.permits(sta):
                reject(StatusCode.UNSPECIFIED_FAILURE)
                self.sim.trace.emit("dot11.mac_filter_deny", self.name,
                                    sta=str(sta))
                return
            if self._sae_rng is None:
                self._sae_rng = self.sim.rng.substream(f"sae.{self.name}")
            party = SaeParty(self.sae_password, self.bssid, sta,
                             self._sae_rng, group=self.sae_group)
            try:
                party.process_commit(payload)
            except SaeError:
                reject(StatusCode.UNSPECIFIED_FAILURE)
                return
            self.clients[sta] = ClientState(
                mac=sta, phase=ClientPhase.AUTHENTICATED,
                rssi_dbm=rssi, sae=party)
            self.port.transmit(make_auth(
                self.bssid, sta, self.bssid,
                algorithm=AuthAlgorithm.SAE, txn=1,
                status=StatusCode.SUCCESS,
                extra_ies=[sae_container_ie(party.commit_bytes())],
                seq=self.seqctl.next()))
        elif txn == 2:
            state = self.clients.get(sta)
            if state is None or state.sae is None:
                return
            if not state.sae.process_confirm(payload):
                # Confirm fails = peer does not hold the password.
                self.clients.pop(sta, None)
                reject(StatusCode.CHALLENGE_FAILURE)
                return
            state.pmk = state.sae.pmk
            self.port.transmit(make_auth(
                self.bssid, sta, self.bssid,
                algorithm=AuthAlgorithm.SAE, txn=2,
                status=StatusCode.SUCCESS,
                extra_ies=[sae_container_ie(state.sae.confirm_bytes())],
                seq=self.seqctl.next()))

    def _on_auth_txn3(self, frame: Dot11Frame, sta: MacAddress) -> None:
        state = self.clients.get(sta)
        if state is None or state.pending_challenge is None or self.wep is None:
            return
        try:
            body = wep_decrypt(self.wep, frame.body)
            alg, txn, _status, challenge = frame.with_body(body, protected=False).parse_auth()
        except (WepError, ProtocolError):
            self._auth_reject(sta, StatusCode.CHALLENGE_FAILURE)
            return
        if txn != 3 or challenge != state.pending_challenge:
            self._auth_reject(sta, StatusCode.CHALLENGE_FAILURE)
            return
        state.pending_challenge = None
        self.port.transmit(make_auth(self.bssid, sta, self.bssid,
                                     algorithm=AuthAlgorithm.SHARED_KEY, txn=4,
                                     status=StatusCode.SUCCESS,
                                     seq=self.seqctl.next()))

    def _auth_reject(self, sta: MacAddress, status: int) -> None:
        self.clients.pop(sta, None)
        self.port.transmit(make_auth(self.bssid, sta, self.bssid,
                                     algorithm=AuthAlgorithm.SHARED_KEY, txn=4,
                                     status=status, seq=self.seqctl.next()))

    def _on_assoc_req(self, frame: Dot11Frame) -> None:
        if frame.addr1 != self.bssid:
            return
        sta = frame.addr2
        state = self.clients.get(sta)
        if state is None:
            # Not authenticated; a real AP answers with a status error.
            self.port.transmit(make_assoc_response(
                self.bssid, sta, status=StatusCode.ASSOC_DENIED_UNSPEC,
                seq=self.seqctl.next()))
            return
        try:
            _cap, ssid = frame.parse_assoc_request()
        except ProtocolError:
            return
        if ssid != self.ssid:
            self.port.transmit(make_assoc_response(
                self.bssid, sta, status=StatusCode.ASSOC_DENIED_UNSPEC,
                seq=self.seqctl.next()))
            return
        link_psk = self.wpa_psk
        if self.rsn is not None:
            sta_rsn = None
            try:
                rsn_el = find_ie(frame.parse_trailing_ies(4), IeId.RSN)
                if rsn_el is not None:
                    sta_rsn = RsnIe.parse(rsn_el.data)
            except ProtocolError:
                sta_rsn = None
            sel = negotiate(self.rsn, sta_rsn)
            if (sel is not None and sel.akm == int(AkmSuite.SAE)
                    and state.pmk is None):
                sel = None  # SAE selected but no completed handshake
            if sel is None:
                self.port.transmit(make_assoc_response(
                    self.bssid, sta, status=StatusCode.ASSOC_DENIED_UNSPEC,
                    seq=self.seqctl.next()))
                return
            state.rsn = sel
            state.pmf = sel.pmf
            link_psk = (state.pmk if sel.akm == int(AkmSuite.SAE)
                        else self.wpa_psk)
            self.sim.trace.emit("rsn.ap_negotiated", self.name,
                                sta=str(sta), akm=sel.akm_name, pmf=sel.pmf)
        state.phase = ClientPhase.ASSOCIATED
        state.aid = self._next_aid
        self._next_aid += 1
        self.associations_granted += 1
        self.sim.trace.emit("dot11.ap_assoc", self.name, sta=str(sta))
        m = obs_metrics()
        if m is not None:
            m.incr("dot11.ap_associations")
        self.port.transmit(make_assoc_response(
            self.bssid, sta, status=StatusCode.SUCCESS, aid=state.aid,
            privacy=self.privacy, seq=self.seqctl.next()))
        if link_psk is not None:
            # Kick off the 4-way handshake right behind the response.
            # Under SAE ``link_psk`` is the fresh per-session PMK —
            # exactly how WPA3 layers SAE beneath 802.11i key handling.
            state.wpa = ApWpaSession(
                self.sim, link_psk, self.bssid, sta,
                send_eapol=lambda p, dst=sta: self._send_eapol(dst, p),
                rng=self._wpa_rng)
            self.sim.call_soon(state.wpa.start)

    def _on_data(self, frame: Dot11Frame) -> None:
        if not frame.to_ds or frame.addr1 != self.bssid:
            return
        sta = frame.addr2
        state = self.clients.get(sta)
        if state is None or state.phase is not ClientPhase.ASSOCIATED:
            # Class-3 frame from a non-associated station.
            self.port.transmit(make_deauth(self.bssid, sta, self.bssid,
                                           reason=ReasonCode.CLASS3_FROM_NONASSOC,
                                           seq=self.seqctl.next()))
            return
        state.frames_from += 1
        body = frame.body
        if self._wpa_enabled:
            if frame.protected:
                if state.wpa is None or not state.wpa.established:
                    self.wep_drop_count += 1
                    return
                try:
                    body = state.wpa.rx.decapsulate(body)
                except TkipError:
                    self.wep_drop_count += 1
                    return
            else:
                # Cleartext is only acceptable as EAPOL handshake.
                try:
                    ethertype, payload = llc_decap(body)
                except ProtocolError:
                    return
                if ethertype == ETHERTYPE_EAPOL and state.wpa is not None:
                    state.wpa.handle_eapol(payload)
                else:
                    self.wep_drop_count += 1
                return
        elif self.wep is not None:
            if not frame.protected:
                self.wep_drop_count += 1
                return
            try:
                body = wep_decrypt(self.wep, body)
            except WepError:
                self.wep_drop_count += 1
                return
        elif frame.protected:
            self.wep_drop_count += 1
            return
        try:
            ethertype, payload = llc_decap(body)
        except ProtocolError:
            return
        dst = frame.destination  # addr3 for to-DS frames
        rec = flight_recorder()
        if rec is not None and frame.trace_id is not None:
            rec.hop("ap", "uplink", trace_id=frame.trace_id, host=self.name,
                    t=self.sim.now, src=str(frame.source), dst=str(dst),
                    ethertype=hex(ethertype))
        # Intra-BSS relay for associated peers and broadcasts.
        if dst.is_broadcast or dst.is_multicast:
            self.data_relayed += 1
            self.send_to_client(dst, frame.source, ethertype, payload)
            if self.on_client_frame is not None:
                self.on_client_frame(frame.source, dst, ethertype, payload)
            return
        peer = self.clients.get(dst)
        if peer is not None and peer.phase is ClientPhase.ASSOCIATED:
            self.data_relayed += 1
            self.send_to_client(dst, frame.source, ethertype, payload)
            return
        if self.on_client_frame is not None:
            self.on_client_frame(frame.source, dst, ethertype, payload)


class SoftApInterface(Interface):
    """Master-mode NIC on a host: an AP that is also an IP interface.

    The attacker's ``wlan0`` in Appendix A — hostap's Master mode.  The
    owning host sees client traffic as ordinary link input and its ARP
    replies / forwarded packets flow back out as from-DS data frames.
    """

    needs_arp = True

    def __init__(
        self,
        name: str,
        medium: Medium,
        position: Position,
        *,
        bssid: MacAddress,
        ssid: str,
        channel: int,
        wep_key: Optional[WepKey] = None,
        wpa_psk: Optional[bytes] = None,
        mac_filter: Optional[MacFilter] = None,
        tx_power_dbm: float = 18.0,
        seqctl=None,
        beacon_jitter_s: float = 0.0,
        rsn: Optional[RsnIe] = None,
        sae_password: Optional[str] = None,
        sae_group=None,
    ) -> None:
        super().__init__(name, bssid)
        self._pending_core_args = dict(
            medium=medium, position=position, bssid=bssid, ssid=ssid,
            channel=channel, wep_key=wep_key, wpa_psk=wpa_psk,
            mac_filter=mac_filter, tx_power_dbm=tx_power_dbm,
            seqctl=seqctl, beacon_jitter_s=beacon_jitter_s,
            rsn=rsn, sae_password=sae_password, sae_group=sae_group,
        )
        self.core: Optional[ApCore] = None

    def bind(self, host) -> None:
        super().bind(host)
        args = self._pending_core_args
        self.core = ApCore(
            host.sim, args["medium"], self.name,
            bssid=args["bssid"], ssid=args["ssid"], channel=args["channel"],
            position=args["position"], wep_key=args["wep_key"],
            wpa_psk=args["wpa_psk"], mac_filter=args["mac_filter"],
            tx_power_dbm=args["tx_power_dbm"],
            seqctl=args["seqctl"], beacon_jitter_s=args["beacon_jitter_s"],
            rsn=args["rsn"], sae_password=args["sae_password"],
            sae_group=args["sae_group"],
        )
        self.core.on_client_frame = self._from_client

    def _from_client(self, src_mac: MacAddress, dst_mac: MacAddress,
                     ethertype: int, payload: bytes) -> None:
        self.host.receive_link(self, src_mac, dst_mac, ethertype, payload)

    def send_frame_to(self, dst_mac: MacAddress, ethertype: int, payload: bytes) -> None:
        if self.core is not None:
            self.core.send_to_client(dst_mac, self.mac, ethertype, payload)
