"""Host-side services: DNS server/resolver, DHCP server/client, UDP echo.

These are the small daemons scenarios run on hosts — the hostile
hotspot, for instance, is "just" a DHCP server that names itself as
gateway and DNS, plus a DNS server that answers whatever serves the
attacker.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.dot11.mac import MacAddress
from repro.hosts.host import Host, UdpSocket
from repro.netstack.addressing import IPv4Address, Network
from repro.netstack.dhcp import (
    DHCP_CLIENT_PORT,
    DHCP_SERVER_PORT,
    DhcpMessage,
    DhcpMessageType,
    LeasePool,
)
from repro.netstack.dns import DNS_PORT, DnsMessage, DnsZone
from repro.sim.errors import ProtocolError

__all__ = [
    "DhcpClientService",
    "DhcpServerService",
    "DnsResolver",
    "DnsServerService",
    "UdpEchoService",
]


class UdpEchoService:
    """Echo every datagram back to its sender."""

    def __init__(self, host: Host, port: int = 7) -> None:
        self.sock = host.udp_socket(port)
        self.sock.on_datagram = self._echo
        self.echoed = 0

    def _echo(self, payload: bytes, src_ip: IPv4Address, src_port: int) -> None:
        self.echoed += 1
        self.sock.sendto(payload, src_ip, src_port)


class DnsServerService:
    """An authoritative DNS server over the simulated UDP."""

    def __init__(self, host: Host, zone: DnsZone, port: int = DNS_PORT) -> None:
        self.host = host
        self.zone = zone
        self.sock = host.udp_socket(port)
        self.sock.on_datagram = self._on_query
        self.queries = 0
        #: Optional rewrite hook — a hostile resolver can lie selectively.
        self.answer_hook: Optional[Callable[[str, Optional[IPv4Address]], Optional[IPv4Address]]] = None

    def _on_query(self, payload: bytes, src_ip: IPv4Address, src_port: int) -> None:
        try:
            query = DnsMessage.from_bytes(payload)
        except ProtocolError:
            return
        if query.is_response:
            return
        self.queries += 1
        answer = self.zone.resolve(query.name)
        if self.answer_hook is not None:
            answer = self.answer_hook(query.name, answer)
        answers = (answer,) if answer is not None else ()
        self.sock.sendto(query.answered(*answers).to_bytes(), src_ip, src_port)


class DnsResolver:
    """A stub resolver: one outstanding query at a time per name.

    Faithfully naive: it accepts the first response whose transaction
    id and name match — from anyone.  (E-WIRED's DNS-spoofing attacker
    races exactly this check.)
    """

    TIMEOUT_S = 2.0
    RETRIES = 2

    def __init__(self, host: Host, server_ip: "IPv4Address | str") -> None:
        self.host = host
        self.server_ip = IPv4Address(server_ip)
        self.sock = host.udp_socket()
        self.sock.on_datagram = self._on_response
        self._rng = host.sim.rng.substream(f"dns.{host.name}")
        self._pending: dict[int, tuple[str, Callable[[Optional[IPv4Address]], None]]] = {}
        self.cache: dict[str, IPv4Address] = {}

    def resolve(self, name: str, callback: Callable[[Optional[IPv4Address]], None]) -> None:
        cached = self.cache.get(name.lower())
        if cached is not None:
            self.host.sim.call_soon(callback, cached)
            return
        txn = self._rng.randrange(0, 0x10000)
        self._pending[txn] = (name, callback)
        self._send_query(txn, name, tries_left=self.RETRIES)

    def _send_query(self, txn: int, name: str, tries_left: int) -> None:
        if txn not in self._pending:
            return
        self.sock.sendto(DnsMessage.query(txn, name).to_bytes(), self.server_ip, DNS_PORT)

        def timeout() -> None:
            if txn not in self._pending:
                return
            if tries_left > 0:
                self._send_query(txn, name, tries_left - 1)
            else:
                _, cb = self._pending.pop(txn)
                cb(None)

        self.host.sim.schedule(self.TIMEOUT_S, timeout)

    def _on_response(self, payload: bytes, src_ip: IPv4Address, src_port: int) -> None:
        try:
            msg = DnsMessage.from_bytes(payload)
        except ProtocolError:
            return
        if not msg.is_response:
            return
        entry = self._pending.get(msg.txn_id)
        if entry is None or entry[0].lower() != msg.name.lower():
            return
        name, callback = self._pending.pop(msg.txn_id)
        answer = msg.answers[0] if msg.answers else None
        if answer is not None:
            self.cache[name.lower()] = answer
        callback(answer)


class DhcpServerService:
    """DHCP on one interface: hands out addresses, gateway, and DNS."""

    def __init__(
        self,
        host: Host,
        iface_name: str,
        pool: LeasePool,
        *,
        gateway: "IPv4Address | str",
        dns_server: "IPv4Address | str",
    ) -> None:
        self.host = host
        self.iface_name = iface_name
        self.pool = pool
        self.gateway = IPv4Address(gateway)
        self.dns_server = IPv4Address(dns_server)
        self.sock = host.udp_socket(DHCP_SERVER_PORT)
        self.sock.on_datagram = self._on_message
        self.acks_sent = 0

    def _on_message(self, payload: bytes, src_ip: IPv4Address, src_port: int) -> None:
        try:
            msg = DhcpMessage.from_bytes(payload)
        except ProtocolError:
            return
        iface = self.host.interfaces[self.iface_name]
        if msg.message_type == DhcpMessageType.DISCOVER:
            reply_type = DhcpMessageType.OFFER
        elif msg.message_type == DhcpMessageType.REQUEST:
            reply_type = DhcpMessageType.ACK
            self.acks_sent += 1
        else:
            return
        lease_ip = self.pool.lease_for(msg.client_mac)
        reply = DhcpMessage(
            message_type=reply_type,
            xid=msg.xid,
            client_mac=msg.client_mac,
            your_ip=lease_ip,
            server_ip=iface.ip or IPv4Address(0),
            gateway=self.gateway,
            dns_server=self.dns_server,
            netmask=self.pool.network.netmask,
        )
        # Reply by broadcast: the client has no address yet.
        self.sock.sendto(reply.to_bytes(), IPv4Address("255.255.255.255"),
                         DHCP_CLIENT_PORT, via_iface=self.iface_name)


class DhcpClientService:
    """DHCP client on one interface: DISCOVER → OFFER → REQUEST → ACK."""

    TIMEOUT_S = 1.0
    RETRIES = 3

    def __init__(self, host: Host, iface_name: str,
                 on_configured: Optional[Callable[[DhcpMessage], None]] = None) -> None:
        self.host = host
        self.iface_name = iface_name
        self.on_configured = on_configured
        self.sock = host.udp_socket(DHCP_CLIENT_PORT)
        self.sock.on_datagram = self._on_message
        self._rng = host.sim.rng.substream(f"dhcp.{host.name}")
        self._xid: Optional[int] = None
        self._state = "IDLE"
        self.lease: Optional[DhcpMessage] = None

    def start(self) -> None:
        self._xid = self._rng.randrange(0, 1 << 32)
        self._state = "SELECTING"
        self._send(DhcpMessageType.DISCOVER, tries_left=self.RETRIES)

    def _send(self, mtype: DhcpMessageType, tries_left: int) -> None:
        if self._state == "BOUND":
            return
        iface = self.host.interfaces[self.iface_name]
        msg = DhcpMessage(message_type=mtype, xid=self._xid or 0, client_mac=iface.mac)
        self.sock.sendto(msg.to_bytes(), IPv4Address("255.255.255.255"),
                         DHCP_SERVER_PORT, via_iface=self.iface_name)

        def timeout() -> None:
            if self._state == "BOUND":
                return
            if tries_left > 0:
                self._send(mtype, tries_left - 1)

        self.host.sim.schedule(self.TIMEOUT_S, timeout)

    def _on_message(self, payload: bytes, src_ip: IPv4Address, src_port: int) -> None:
        try:
            msg = DhcpMessage.from_bytes(payload)
        except ProtocolError:
            return
        iface = self.host.interfaces[self.iface_name]
        if msg.xid != self._xid or msg.client_mac != iface.mac:
            return
        if msg.message_type == DhcpMessageType.OFFER and self._state == "SELECTING":
            self._state = "REQUESTING"
            self._send(DhcpMessageType.REQUEST, tries_left=self.RETRIES)
        elif msg.message_type == DhcpMessageType.ACK and self._state == "REQUESTING":
            self._state = "BOUND"
            self.lease = msg
            iface.configure_ip(msg.your_ip, msg.netmask)
            if not msg.gateway.is_unspecified:
                self.host.routing.add_default(msg.gateway, self.iface_name)
            self.host.sim.trace.emit("dhcp.bound", self.host.name,
                                     ip=str(msg.your_ip), gw=str(msg.gateway),
                                     dns=str(msg.dns_server))
            if self.on_configured is not None:
                self.on_configured(msg)
