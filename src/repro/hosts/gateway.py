"""Routers and a small "internet" builder.

The corporate scenario needs a border router between the office LAN
and a WAN segment holding the target web server, the trojan-hosting
server, and the VPN endpoint's network.  :func:`build_wan` assembles
that plumbing so scenario code stays readable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dot11.mac import MacAddress
from repro.hosts.host import Host
from repro.hosts.nic import WiredInterface
from repro.netstack.addressing import IPv4Address, Network
from repro.netstack.ethernet import LanSegment, Switch
from repro.sim.kernel import Simulator

__all__ = ["Router", "Wan", "build_wan"]


class Router(Host):
    """A host that forwards by default (``ip_forward`` pre-enabled)."""

    def __init__(self, sim: Simulator, name: str) -> None:
        super().__init__(sim, name)
        self.ip_forward = True

    def add_wired(self, name: str, segment: LanSegment, ip: str,
                  netmask: str = "255.255.255.0", *,
                  mac: Optional[MacAddress] = None) -> WiredInterface:
        """Attach one routed interface to a LAN segment."""
        if mac is None:
            mac = MacAddress.random(self.sim.rng.substream(f"mac.{self.name}.{name}"))
        iface = WiredInterface(name, mac)
        iface.attach_segment(segment)
        self.add_interface(iface)
        iface.configure_ip(ip, netmask)
        return iface


@dataclass
class Wan:
    """The assembled wide-area plumbing returned by :func:`build_wan`."""

    segment: Switch                 # the "backbone"
    router: Router                  # border router (LAN side + WAN side)
    lan_gateway_ip: IPv4Address     # the LAN-side address (10.0.0.1 in Fig. 1)
    wan_network: Network

    def add_server(self, sim: Simulator, name: str, ip: str) -> Host:
        """Attach a server host to the backbone with a route back to the LAN."""
        host = Host(sim, name)
        mac = MacAddress.random(sim.rng.substream(f"mac.{name}"))
        iface = WiredInterface("eth0", mac)
        iface.attach_segment(self.segment)
        host.add_interface(iface)
        iface.configure_ip(ip, str(self.wan_network.netmask))
        host.routing.add_default(self.router.interfaces["wan0"].ip, "eth0")
        return host


def build_wan(
    sim: Simulator,
    lan_segment: LanSegment,
    *,
    lan_gateway_ip: str = "10.0.0.1",
    lan_netmask: str = "255.255.255.0",
    wan_cidr: str = "198.51.100.0/24",
    router_wan_ip: str = "198.51.100.1",
) -> Wan:
    """Build border-router + backbone: LAN ⇄ router ⇄ WAN switch.

    The WAN uses TEST-NET-2 addressing; servers attach with
    :meth:`Wan.add_server`.
    """
    backbone = Switch(sim, "backbone")
    router = Router(sim, "border-router")
    router.add_wired("lan0", lan_segment, lan_gateway_ip, lan_netmask)
    router.add_wired("wan0", backbone, router_wan_ip, str(Network(wan_cidr).netmask))
    return Wan(
        segment=backbone,
        router=router,
        lan_gateway_ip=IPv4Address(lan_gateway_ip),
        wan_network=Network(wan_cidr),
    )
