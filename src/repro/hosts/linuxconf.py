"""A Linux-flavoured configuration front-end.

Appendix A of the paper is a shell script; §4.1 prints literal
``iptables`` and ``netsed`` commands.  :class:`LinuxBox` lets scenario
code (and the FIG2 benchmark) run those *same command strings* against
a simulated host, so a reader can diff our setup against the paper's
line by line::

    box = LinuxBox(gateway_host)
    box.sh("echo 1 > /proc/sys/net/ipv4/ip_forward")
    box.sh("ifconfig wlan0 10.0.0.24 netmask 255.255.255.0")
    box.sh("route add -host 10.0.0.23 dev wlan0")
    box.sh("route add default gw 10.0.0.1")
    box.sh("iptables -t nat -A PREROUTING -p tcp -d 198.51.100.80 "
           "--dport 80 -j DNAT --to 10.0.0.24:10101")
"""

from __future__ import annotations

import shlex
from typing import Optional

from repro.hosts.host import Host
from repro.netstack.addressing import IPv4Address, Network
from repro.netstack.netfilter import (
    Chain,
    Rule,
    TargetAccept,
    TargetDnat,
    TargetDrop,
    TargetRedirect,
    TargetSnat,
)
from repro.sim.errors import ConfigurationError

__all__ = ["LinuxBox"]


class LinuxBox:
    """Command-string configuration wrapper around a :class:`Host`."""

    def __init__(self, host: Host) -> None:
        self.host = host
        self.history: list[str] = []

    def sh(self, command: str) -> None:
        """Execute one supported shell-style configuration command."""
        self.history.append(command)
        argv = shlex.split(command)
        if not argv:
            return
        if argv[0] == "echo" and len(argv) >= 4 and argv[2] == ">":
            self._echo(argv[1], argv[3])
        elif argv[0] == "ifconfig":
            self._ifconfig(argv[1:])
        elif argv[0] == "route":
            self._route(argv[1:])
        elif argv[0] == "iptables":
            self._iptables(argv[1:])
        else:
            raise ConfigurationError(f"unsupported command: {command!r}")

    # ------------------------------------------------------------------
    # echo (sysctl via /proc)
    # ------------------------------------------------------------------
    def _echo(self, value: str, path: str) -> None:
        if path == "/proc/sys/net/ipv4/ip_forward":
            self.host.ip_forward = value.strip() == "1"
        else:
            raise ConfigurationError(f"unsupported /proc path {path!r}")

    # ------------------------------------------------------------------
    # ifconfig
    # ------------------------------------------------------------------
    def _ifconfig(self, args: list[str]) -> None:
        if len(args) < 2:
            raise ConfigurationError("ifconfig needs: IFACE IP [netmask MASK]")
        iface_name, ip = args[0], args[1]
        netmask = "255.255.255.0"
        i = 2
        while i < len(args) - 1:
            if args[i] == "netmask":
                netmask = args[i + 1]
            i += 2
        iface = self.host.interfaces.get(iface_name)
        if iface is None:
            raise ConfigurationError(f"no such interface {iface_name!r}")
        iface.configure_ip(ip, netmask)

    # ------------------------------------------------------------------
    # route
    # ------------------------------------------------------------------
    def _route(self, args: list[str]) -> None:
        if not args or args[0] != "add":
            raise ConfigurationError("only 'route add' is supported")
        args = args[1:]
        if args and args[0] == "-host":
            # route add -host IP [gw GW] dev IFACE
            ip = IPv4Address(args[1])
            gateway: Optional[IPv4Address] = None
            iface: Optional[str] = None
            i = 2
            while i < len(args) - 1:
                if args[i] == "gw":
                    gateway = IPv4Address(args[i + 1])
                elif args[i] == "dev":
                    iface = args[i + 1]
                i += 2
            if iface is None:
                raise ConfigurationError("route add -host requires dev IFACE")
            self.host.routing.add_host(ip, iface, gateway)
        elif args and args[0] == "default":
            # route add default gw GW [dev IFACE]
            if len(args) < 3 or args[1] != "gw":
                raise ConfigurationError("route add default gw GW")
            gateway = IPv4Address(args[2])
            iface = None
            if len(args) >= 5 and args[3] == "dev":
                iface = args[4]
            if iface is None:
                route = self.host.routing.lookup(gateway)
                if route is None:
                    raise ConfigurationError(f"gateway {gateway} unreachable; no connected route")
                iface = route.interface
            self.host.routing.add_default(gateway, iface)
        else:
            raise ConfigurationError(f"unsupported route syntax: {' '.join(args)}")

    # ------------------------------------------------------------------
    # iptables
    # ------------------------------------------------------------------
    def _iptables(self, args: list[str]) -> None:
        chain: Optional[Chain] = None
        proto = src = dst = None
        sport = dport = None
        in_iface = out_iface = None
        target = None
        i = 0
        while i < len(args):
            flag = args[i]
            if flag == "-t":
                i += 2  # the table name adds nothing in this model
                continue
            if flag == "-A":
                chain = Chain(args[i + 1])
            elif flag == "-p":
                proto = args[i + 1]
            elif flag == "-s":
                src = self._as_network(args[i + 1])
            elif flag == "-d":
                dst = self._as_network(args[i + 1])
            elif flag == "--sport":
                sport = int(args[i + 1])
            elif flag == "--dport":
                dport = int(args[i + 1])
            elif flag == "-i":
                in_iface = args[i + 1]
            elif flag == "-o":
                out_iface = args[i + 1]
            elif flag == "-j":
                target_name = args[i + 1]
                if target_name == "ACCEPT":
                    target = TargetAccept()
                elif target_name == "DROP":
                    target = TargetDrop()
                elif target_name == "DNAT":
                    # expect --to IP[:PORT] after
                    if i + 3 >= len(args) + 1 or args[i + 2] != "--to":
                        raise ConfigurationError("DNAT requires --to IP[:PORT]")
                    to = args[i + 3]
                    ip_text, _, port_text = to.partition(":")
                    target = TargetDnat(IPv4Address(ip_text),
                                        int(port_text) if port_text else None)
                    i += 2
                elif target_name == "REDIRECT":
                    if args[i + 2] != "--to-port":
                        raise ConfigurationError("REDIRECT requires --to-port PORT")
                    target = TargetRedirect(int(args[i + 3]))
                    i += 2
                elif target_name == "SNAT":
                    if args[i + 2] != "--to":
                        raise ConfigurationError("SNAT requires --to IP")
                    target = TargetSnat(IPv4Address(args[i + 3]))
                    i += 2
                else:
                    raise ConfigurationError(f"unsupported target {target_name!r}")
            i += 2
        if chain is None or target is None:
            raise ConfigurationError("iptables needs -A CHAIN and -j TARGET")
        self.host.netfilter.append(chain, Rule(
            target=target, proto=proto, src=src, dst=dst,
            sport=sport, dport=dport, in_iface=in_iface, out_iface=out_iface,
        ))

    @staticmethod
    def _as_network(text: str) -> Network:
        if "/" in text:
            return Network(text)
        return Network(text, 32)
