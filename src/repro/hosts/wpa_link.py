"""WPA-PSK over the air: EAPOL-framed 4-way handshake + TKIP data.

§2.2's WPA, integrated into the radio path rather than modelled at
message level: after open-system association, the AP initiates the
4-way handshake in EAPOL frames (ethertype 0x888E) riding ordinary
data frames; both sides derive the PTK from the PSK
(:func:`repro.defense.wpa.derive_ptk`) and install
:class:`~repro.crypto.tkip.TkipSession` pairs; data frames are then
TKIP-protected with per-packet keys, Michael MICs, and replay windows.

Documented simplifications (none touching the §2.2 argument):

* no GTK — group-addressed frames are delivered per-peer under the
  pairwise keys;
* no Michael countermeasures (the 60-second lockout);
* EAPOL messages use a compact local encoding, not the 802.1X
  key-descriptor layout.

What is *faithful*, because the experiments depend on it: the PTK
binds both nonces and both MACs; message 2 proves the client holds the
PSK; message 3 proves the AP does — so a keyless rogue fails, and any
valid client's rogue succeeds, over the real radio path.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.crypto.hmac import constant_time_equal, hmac_sha1
from repro.crypto.tkip import TkipSession
from repro.crypto.wpa_kdf import derive_ptk
from repro.dot11.mac import MacAddress
from repro.sim.errors import ProtocolError

__all__ = ["ETHERTYPE_EAPOL", "ApWpaSession", "StaWpaSession", "WpaKeys"]

ETHERTYPE_EAPOL = 0x888E

_MSG1 = 1  # AP -> STA: ANonce
_MSG2 = 2  # STA -> AP: SNonce | MIC
_MSG3 = 3  # AP -> STA: MIC (install)
_MSG4 = 4  # STA -> AP: MIC (confirm)

MIC_LEN = 20
NONCE_LEN = 32


def _pack(msg: int, *fields: bytes) -> bytes:
    return bytes([msg]) + b"".join(fields)


@dataclass
class WpaKeys:
    """The PTK split: handshake MIC key + TKIP material."""

    kck: bytes
    tk: bytes
    mic_ap_to_sta: bytes
    mic_sta_to_ap: bytes

    @classmethod
    def from_ptk(cls, ptk: bytes) -> "WpaKeys":
        return cls(kck=ptk[:16], tk=ptk[16:32],
                   mic_ap_to_sta=ptk[32:40], mic_sta_to_ap=ptk[40:48])


class ApWpaSession:
    """AP-side per-client handshake state and data protection."""

    MAX_RETRIES = 5
    RETRY_S = 0.5

    def __init__(self, sim, psk: bytes, ap_mac: MacAddress, sta_mac: MacAddress,
                 send_eapol: Callable[[bytes], None], rng) -> None:
        self.sim = sim
        self.psk = psk
        self.ap_mac = ap_mac
        self.sta_mac = sta_mac
        self.send_eapol = send_eapol
        self.anonce = rng.bytes(NONCE_LEN)
        self.keys: Optional[WpaKeys] = None
        self.tx: Optional[TkipSession] = None     # AP -> STA
        self.rx: Optional[TkipSession] = None     # STA -> AP
        self.established = False
        self.mic_failures = 0
        self._retries = 0
        self._timer = None
        self._awaiting: Optional[int] = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._send_msg1()

    def _send_msg1(self) -> None:
        self._awaiting = _MSG2
        self.send_eapol(_pack(_MSG1, self.anonce))
        self._arm(self._send_msg1)

    def _send_msg3(self) -> None:
        assert self.keys is not None
        mic3 = hmac_sha1(self.keys.kck, b"msg3" + self.anonce)
        self._awaiting = _MSG4
        self.send_eapol(_pack(_MSG3, mic3))
        self._arm(self._send_msg3)

    def _arm(self, retry) -> None:
        self._cancel()

        def timeout() -> None:
            self._retries += 1
            if self._retries <= self.MAX_RETRIES and not self.established:
                retry()

        self._timer = self.sim.schedule(self.RETRY_S, timeout)

    def _cancel(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # ------------------------------------------------------------------
    def handle_eapol(self, payload: bytes) -> None:
        if not payload:
            return
        msg = payload[0]
        if msg == _MSG2 and self._awaiting == _MSG2:
            if len(payload) < 1 + NONCE_LEN + MIC_LEN:
                return
            snonce = payload[1:1 + NONCE_LEN]
            mic2 = payload[1 + NONCE_LEN:1 + NONCE_LEN + MIC_LEN]
            ptk = derive_ptk(self.psk, self.anonce, snonce,
                             self.ap_mac, self.sta_mac)
            keys = WpaKeys.from_ptk(ptk)
            if not constant_time_equal(
                    mic2, hmac_sha1(keys.kck, b"msg2" + snonce)):
                self.mic_failures += 1
                return  # wrong PSK on the client; keep waiting / retrying
            self.keys = keys
            self._retries = 0
            self._send_msg3()
        elif msg == _MSG4 and self._awaiting == _MSG4 and self.keys is not None:
            mic4 = payload[1:1 + MIC_LEN]
            if not constant_time_equal(
                    mic4, hmac_sha1(self.keys.kck, b"msg4" + self.anonce)):
                self.mic_failures += 1
                return
            self._cancel()
            self._awaiting = None
            self.tx = TkipSession(self.keys.tk, self.keys.mic_ap_to_sta,
                                  self.ap_mac.bytes)
            self.rx = TkipSession(self.keys.tk, self.keys.mic_sta_to_ap,
                                  self.sta_mac.bytes)
            self.established = True

    def shutdown(self) -> None:
        self._cancel()


class StaWpaSession:
    """Station-side handshake state and data protection."""

    def __init__(self, psk: bytes, sta_mac: MacAddress, ap_mac: MacAddress,
                 send_eapol: Callable[[bytes], None], rng) -> None:
        self.psk = psk
        self.sta_mac = sta_mac
        self.ap_mac = ap_mac
        self.send_eapol = send_eapol
        self.snonce = rng.bytes(NONCE_LEN)
        self.anonce: Optional[bytes] = None
        self.keys: Optional[WpaKeys] = None
        self.tx: Optional[TkipSession] = None     # STA -> AP
        self.rx: Optional[TkipSession] = None     # AP -> STA
        self.established = False
        self.mic_failures = 0

    def handle_eapol(self, payload: bytes) -> None:
        if not payload:
            return
        msg = payload[0]
        if msg == 1:  # MSG1: ANonce
            if len(payload) < 1 + NONCE_LEN:
                return
            self.anonce = payload[1:1 + NONCE_LEN]
            ptk = derive_ptk(self.psk, self.anonce, self.snonce,
                             self.ap_mac, self.sta_mac)
            self.keys = WpaKeys.from_ptk(ptk)
            mic2 = hmac_sha1(self.keys.kck, b"msg2" + self.snonce)
            self.send_eapol(_pack(2, self.snonce, mic2))
        elif msg == 3 and self.keys is not None and self.anonce is not None:
            mic3 = payload[1:1 + MIC_LEN]
            if not constant_time_equal(
                    mic3, hmac_sha1(self.keys.kck, b"msg3" + self.anonce)):
                # The network failed to prove PSK knowledge: a keyless
                # rogue.  Refuse; never install keys.
                self.mic_failures += 1
                return
            mic4 = hmac_sha1(self.keys.kck, b"msg4" + self.anonce)
            self.send_eapol(_pack(4, mic4))
            self.tx = TkipSession(self.keys.tk, self.keys.mic_sta_to_ap,
                                  self.sta_mac.bytes)
            self.rx = TkipSession(self.keys.tk, self.keys.mic_ap_to_sta,
                                  self.ap_mac.bytes)
            self.established = True
