"""The registered benchmark suite — the repo's perf surface, named.

One registration per claim the repo has shipped:

* ``sim/event_dispatch_per_s`` — the kernel every experiment stands on;
* ``radio/fanout_frames_per_s`` — dense-crowd beacon delivery through
  the vectorized radio kernel (PR 7), the number the ROADMAP's
  vectorized-radio item promised to move;
* ``radio/kernel_speedup`` — vector vs. scalar reference on the same
  world, locking the PR 7 speedup in as a tracked ratio;
* ``wire/checksum_mb_per_s``, ``wire/encode_cache_hit_rate``,
  ``wire/encode_cached_speedup`` — PR 5's streaming checksum and
  ~144x encode cache;
* ``netstack/tcpip_roundtrip_per_s`` — zero-copy decode + in-place
  checksum patching;
* ``crypto/rc4_mb_per_s`` — the WEP/FMS inner loop;
* ``fleet/serial_trials_per_s``, ``fleet/parallel_speedup`` — PR 1's
  campaign engine (speedup is recorded against the usable-core count
  in the environment capture; a 1-core box legitimately reports <1);
* ``wids/eval_alerts_per_s`` — PR 4's full E-WIDS evaluation, the
  sustained-throughput discipline the WIDS survey calls for;
* ``wids/correlator_alerts_per_s``, ``wids/shard_merge_alerts_per_s``
  — PR 10's alert-storm ingest path, unsharded and through the 4-way
  sharded correlator + ``open_seq`` merge (digest cross-checked
  against the serial run every time);
* ``trace/overhead_ratio`` — PR 3's flight recorder must stay a small
  multiple of an unrecorded run (lower is better);
* ``fleet/open_loop_sessions_per_s``, ``telemetry/snapshot_export_per_s``
  — PR 8's open-loop campaign daemon: how fast one shard pushes
  Poisson sessions through the corp world, and how fast the exporter
  renders + encodes a merged registry (Prometheus text + JSON-lines).

Every function takes ``scale`` (the runner passes 0.25 for
``--smoke``) and floors its workload so rates stay meaningful.
Payloads are deterministic and timing-free — pinned by
``tests/bench/test_determinism.py``.
"""

from __future__ import annotations

import time
import zlib

from repro.bench.registry import BenchSample, register

__all__: list = []

_MAC_AP = "aa:bb:cc:dd:00:01"
_MAC_STA = "00:02:2d:00:00:07"


def _scaled(base: int, scale: float, floor: int) -> int:
    return max(floor, int(base * scale))


# --------------------------------------------------------------------------
# sim — the discrete-event kernel
# --------------------------------------------------------------------------

@register("sim", "event_dispatch_per_s", unit="events/s",
          higher_is_better=True)
def sim_event_dispatch(scale: float = 1.0) -> BenchSample:
    """Events/second through the simulator core (flat schedule batch)."""
    from repro.sim.kernel import Simulator

    n = _scaled(20_000, scale, 2_000)
    sim = Simulator(seed=1)
    sink: list = []
    for i in range(n):
        sim.schedule(i * 1e-6, sink.append, i)
    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    return BenchSample(value=len(sink) / elapsed,
                       payload={"events": n, "dispatched": len(sink)})


# --------------------------------------------------------------------------
# radio — fan-out heavy delivery (the vectorized-kernel "before" number)
# --------------------------------------------------------------------------

def _fanout_world(kernel: str, receivers: int, transmissions: int):
    """Dense-crowd beacon fan-out: ``receivers`` co-located clients all
    hearing one AP (the stadium/crowded-floor case the vectorized kernel
    targets).  Returns ``(elapsed_s, deliveries)``.

    The consumer callback is a no-op so the number measures the medium's
    fan-out machinery, not the benchmark's own bookkeeping; deliveries
    are counted from the ports' own ``rx_frames`` counters.
    """
    import math

    from repro.dot11.frames import make_beacon
    from repro.dot11.mac import MacAddress
    from repro.radio.medium import Medium, RadioPort
    from repro.radio.propagation import Position
    from repro.sim.kernel import Simulator

    sim = Simulator(seed=2)
    medium = Medium(sim, kernel=kernel)
    tx = RadioPort("tx", Position(0, 0), 1)
    medium.attach(tx)
    sink = lambda frame, rssi, channel: None
    ports = []
    for i in range(receivers):
        angle = 2.0 * math.pi * i / receivers
        rx = RadioPort(f"rx{i}",
                       Position(math.cos(angle), math.sin(angle)), 1)
        rx.on_receive = sink
        medium.attach(rx)
        ports.append(rx)
    beacon = make_beacon(MacAddress(_MAC_AP), "BENCH", 1)
    t0 = time.perf_counter()
    for _ in range(transmissions):
        tx.transmit(beacon)
    sim.run()
    elapsed = time.perf_counter() - t0
    return elapsed, sum(rx.rx_frames for rx in ports)


@register("radio", "fanout_frames_per_s", unit="frames/s",
          higher_is_better=True)
def radio_fanout(scale: float = 1.0) -> BenchSample:
    """Beacon fan-out delivery rate across a dense receiver field."""
    receivers = _scaled(200, scale, 40)
    transmissions = _scaled(400, scale, 100)
    elapsed, deliveries = _fanout_world("vector", receivers, transmissions)
    return BenchSample(
        value=deliveries / elapsed,
        payload={"receivers": receivers, "transmissions": transmissions,
                 "deliveries": deliveries})


@register("radio", "kernel_speedup", unit="x", higher_is_better=True)
def radio_kernel_speedup(scale: float = 1.0) -> BenchSample:
    """Vectorized-kernel speedup over the scalar reference, same world.

    Both kernels run the identical dense fan-out; the payload asserts
    they delivered the same frame count (the differential harness proves
    the stronger bit-identity claim — this locks the perf ratio in as a
    tracked number).
    """
    receivers = _scaled(200, scale, 40)
    transmissions = _scaled(200, scale, 50)
    scalar_s, scalar_n = _fanout_world("scalar", receivers, transmissions)
    vector_s, vector_n = _fanout_world("vector", receivers, transmissions)
    return BenchSample(
        value=scalar_s / vector_s,
        payload={"receivers": receivers, "transmissions": transmissions,
                 "deliveries": vector_n,
                 "deliveries_match": scalar_n == vector_n})


# --------------------------------------------------------------------------
# wire — streaming checksum + encode cache (PR 5's claims)
# --------------------------------------------------------------------------

@register("wire", "checksum_mb_per_s", unit="MB/s", higher_is_better=True)
def wire_checksum(scale: float = 1.0) -> BenchSample:
    """RFC 1071 streaming checksum throughput over a 64 KiB buffer."""
    from repro.wire.checksum import internet_checksum

    blob = bytes(range(256)) * 256          # 64 KiB
    reps = _scaled(80, scale, 20)
    checksum = internet_checksum(blob)
    t0 = time.perf_counter()
    for _ in range(reps):
        internet_checksum(blob)
    elapsed = time.perf_counter() - t0
    return BenchSample(
        value=reps * len(blob) / elapsed / 1e6,
        payload={"buffer_bytes": len(blob), "reps": reps,
                 "checksum": checksum})


@register("wire", "encode_cache_hit_rate", unit="ratio",
          higher_is_better=True, tolerance=0.02)
def wire_encode_cache_hit_rate(scale: float = 1.0) -> BenchSample:
    """Hit rate of the per-frame encode cache in a transmit fan-out.

    Deterministic — each frame encodes cold once then serves its
    fan-out copies from cache — so the tolerance is tight: any drop
    means the cache stopped being hit, not that the machine was busy.
    """
    from repro.dot11.frames import make_beacon
    from repro.dot11.mac import MacAddress
    from repro.obs.runtime import collecting

    frames = _scaled(200, scale, 50)
    fanout = 5          # per-receiver x3 + sniffer + recorder
    with collecting() as col:
        for i in range(frames):
            frame = make_beacon(MacAddress(_MAC_AP), "CORP", 6, seq=i)
            for _ in range(fanout):
                frame.to_bytes()
    snap = col.registry.snapshot()
    hits = snap["codec.encode_cache.hits"]["value"]
    misses = snap["codec.encode_cache.misses"]["value"]
    return BenchSample(
        value=hits / (hits + misses),
        payload={"frames": frames, "fanout": fanout,
                 "hits": hits, "misses": misses})


@register("wire", "encode_cached_speedup", unit="x", higher_is_better=True)
def wire_encode_cached_speedup(scale: float = 1.0) -> BenchSample:
    """Cached re-encode speedup over cold encodes of fresh frames."""
    from repro.dot11.frames import make_data
    from repro.dot11.mac import MacAddress

    rounds = _scaled(2_000, scale, 500)
    sta, ap = MacAddress(_MAC_STA), MacAddress(_MAC_AP)

    def fresh(i: int):
        return make_data(sta, ap, ap, bytes(range(200)), to_ds=True,
                         seq=i & 0xFFF)

    t0 = time.perf_counter()
    for i in range(rounds):
        fresh(i).to_bytes()
    t_cold = time.perf_counter() - t0
    frame = fresh(0)
    t0 = time.perf_counter()
    for _ in range(rounds):
        frame.to_bytes()
    t_cached = time.perf_counter() - t0
    return BenchSample(value=t_cold / t_cached,
                       payload={"rounds": rounds,
                                "frame_bytes": len(frame.to_bytes())})


@register("wire", "rsn_ie_roundtrips_per_s", unit="ops/s",
          higher_is_better=True)
def wire_rsn_ie_roundtrips(scale: float = 1.0) -> BenchSample:
    """RSN IE pack → parse round-trips over the three standard postures."""
    from repro.rsn.ie import RsnIe

    rounds = _scaled(3_000, scale, 500)
    postures = (RsnIe.wpa2(), RsnIe.wpa3(), RsnIe.wpa3_transition())
    blobs = [ie.pack() for ie in postures]
    crc = 0
    for blob in blobs:
        crc = zlib.crc32(blob, crc)
    t0 = time.perf_counter()
    for i in range(rounds):
        posture = postures[i % 3]
        parsed = RsnIe.parse(posture.pack())
        assert parsed == posture
    elapsed = time.perf_counter() - t0
    return BenchSample(value=rounds / elapsed,
                       payload={"rounds": rounds, "wire_crc32": crc})


# --------------------------------------------------------------------------
# netstack — zero-copy decode + in-place checksum patch
# --------------------------------------------------------------------------

@register("netstack", "tcpip_roundtrip_per_s", unit="ops/s",
          higher_is_better=True)
def netstack_roundtrip(scale: float = 1.0) -> BenchSample:
    """IPv4+TCP encode then zero-copy decode, round trips per second."""
    from repro.netstack.addressing import IPv4Address
    from repro.netstack.ipv4 import IPv4Packet
    from repro.netstack.tcp import FLAG_ACK, TcpSegment

    rounds = _scaled(2_000, scale, 400)
    ip_a, ip_b = IPv4Address("10.0.0.1"), IPv4Address("10.0.0.2")
    seg = TcpSegment(src_port=80, dst_port=1234, seq=1, ack=2,
                     flags=FLAG_ACK, payload=bytes(512))
    raw = IPv4Packet(src=ip_a, dst=ip_b, proto=6,
                     payload=seg.to_bytes(ip_a, ip_b)).to_bytes()
    t0 = time.perf_counter()
    for _ in range(rounds):
        encoded = IPv4Packet(src=ip_a, dst=ip_b, proto=6,
                             payload=seg.to_bytes(ip_a, ip_b)).to_bytes()
        pkt = IPv4Packet.from_bytes(memoryview(encoded))
        TcpSegment.from_bytes(memoryview(pkt.payload), pkt.src, pkt.dst)
    elapsed = time.perf_counter() - t0
    return BenchSample(
        value=rounds / elapsed,
        payload={"rounds": rounds, "raw_len": len(raw),
                 "raw_crc32": zlib.crc32(raw)})


# --------------------------------------------------------------------------
# crypto — the WEP/FMS inner loop
# --------------------------------------------------------------------------

@register("crypto", "rc4_mb_per_s", unit="MB/s", higher_is_better=True)
def crypto_rc4(scale: float = 1.0) -> BenchSample:
    """RC4 keystream generation throughput."""
    from repro.crypto.rc4 import rc4_keystream

    n = _scaled(240_000, scale, 60_000)
    t0 = time.perf_counter()
    stream = rc4_keystream(b"bench-key", n)
    elapsed = time.perf_counter() - t0
    return BenchSample(value=n / elapsed / 1e6,
                       payload={"bytes": n,
                                "stream_crc32": zlib.crc32(bytes(stream))})


@register("crypto", "sae_handshakes_per_s", unit="handshakes/s",
          higher_is_better=True)
def crypto_sae_handshakes(scale: float = 1.0) -> BenchSample:
    """Full SAE commit/confirm handshakes over the real 1536-bit group."""
    from repro.crypto.dh import DH_GROUP_1536
    from repro.dot11.mac import MacAddress
    from repro.rsn.sae import SaeParty
    from repro.sim.rng import SimRandom

    n = _scaled(8, scale, 2)
    ap_mac = MacAddress("aa:bb:cc:dd:00:01")
    sta_mac = MacAddress("aa:bb:cc:dd:00:02")
    crc = 0
    t0 = time.perf_counter()
    for i in range(n):
        ap = SaeParty("bench-password", ap_mac, sta_mac,
                      SimRandom(2 * i), group=DH_GROUP_1536)
        sta = SaeParty("bench-password", sta_mac, ap_mac,
                       SimRandom(2 * i + 1), group=DH_GROUP_1536)
        ap.process_commit(sta.commit_bytes())
        sta.process_commit(ap.commit_bytes())
        assert ap.process_confirm(sta.confirm_bytes())
        assert sta.process_confirm(ap.confirm_bytes())
        crc = zlib.crc32(ap.pmk, crc)
    elapsed = time.perf_counter() - t0
    return BenchSample(value=n / elapsed,
                       payload={"handshakes": n, "pmk_crc32": crc})


# --------------------------------------------------------------------------
# fleet — the campaign engine (PR 1)
# --------------------------------------------------------------------------

def _fleet_trial(seed: int) -> float:
    """CPU-bound, deterministic per seed (module-level: picklable)."""
    from repro.crypto.rc4 import rc4_keystream

    key = seed.to_bytes(8, "big") + b"bench-fleet"
    return float(sum(rc4_keystream(key, 60_000)) % 1009)


@register("fleet", "serial_trials_per_s", unit="trials/s",
          higher_is_better=True)
def fleet_serial(scale: float = 1.0) -> BenchSample:
    """Single-worker campaign throughput on a CPU-bound trial."""
    from repro.fleet import run_campaign

    trials = _scaled(16, scale, 4)
    result = run_campaign(trials, _fleet_trial, workers=1)
    return BenchSample(
        value=result.throughput,
        payload={"trials": trials, "failures": len(result.failures),
                 "stats_mean": result.stats.mean if result.stats else None})


@register("fleet", "parallel_speedup", unit="x", higher_is_better=True,
          tolerance=0.9)
def fleet_parallel_speedup(scale: float = 1.0) -> BenchSample:
    """4-worker over 1-worker campaign speedup (hardware-bound).

    On a 1-core box this is legitimately <1 (fork + IPC overhead with
    nothing to parallelize) — the environment capture records the
    usable-core count next to it.  The determinism half (aggregates
    bit-identical across worker counts) is asserted here regardless.
    """
    from repro.fleet import run_campaign

    trials = _scaled(16, scale, 4)
    workers = 4
    serial = run_campaign(trials, _fleet_trial, workers=1)
    parallel = run_campaign(trials, _fleet_trial, workers=workers)
    identical = (serial.failures == [] and parallel.failures == []
                 and serial.stats.values == parallel.stats.values)
    if not identical:
        raise AssertionError(
            "fleet determinism contract violated: serial and parallel "
            "campaigns disagree")
    speedup = (parallel.throughput / serial.throughput
               if serial.throughput else 0.0)
    return BenchSample(value=speedup,
                       payload={"trials": trials, "workers": workers,
                                "deterministic": identical})


# --------------------------------------------------------------------------
# wids — sustained evaluation throughput (PR 4)
# --------------------------------------------------------------------------

@register("wids", "eval_alerts_per_s", unit="alerts/s",
          higher_is_better=True)
def wids_eval_throughput(scale: float = 1.0) -> BenchSample:
    """Alerts/second through the full E-WIDS four-world evaluation.

    The workload is the complete naive/evasive/deauth/benign sweep —
    it does not scale down (a partial world changes the detector
    shape), so smoke runs pay the full ~1 s once.
    """
    from repro.wids.experiment import exp_wids_eval

    t0 = time.perf_counter()
    result = exp_wids_eval(seed=1)
    elapsed = time.perf_counter() - t0
    worlds = result["worlds"]
    alerts = {name: world["alert_count"] for name, world in worlds.items()}
    total = sum(alerts.values())
    return BenchSample(
        value=total / elapsed,
        payload={"alerts_by_world": alerts, "total_alerts": total,
                 "benign_false_positives": result["benign_false_positives"],
                 "unhideable": result["evasion"]["unhideable"],
                 "scorecard_rows": len(result["scorecard"]["rows"])})


@register("wids", "correlator_alerts_per_s", unit="alerts/s",
          higher_is_better=True)
def wids_correlator_throughput(scale: float = 1.0) -> BenchSample:
    """Evidence events/second through ``AlertCorrelator.ingest``.

    A pre-built synthetic alert storm (hot subjects hammering the
    open-alert update path, 5% churn growing the evidence map) is fed
    through one unsharded correlator; only the ingest loop is timed.
    """
    from repro.wids.correlate import AlertCorrelator
    from repro.wids.storm import alert_storm, storm_digest

    n = _scaled(1_000_000, scale, 100_000)
    events = alert_storm(n, subjects=64, detectors=4, churn=0.05, seed=7)
    correlator = AlertCorrelator()
    ingest = correlator.ingest
    t0 = time.perf_counter()
    for detector, threshold, detection, t, trace_id, band in events:
        ingest(detector, threshold, detection, t, trace_id, band=band)
    elapsed = time.perf_counter() - t0
    digest = storm_digest(correlator)
    return BenchSample(value=n / elapsed,
                       payload={"events": n, **digest})


@register("wids", "shard_merge_alerts_per_s", unit="alerts/s",
          higher_is_better=True)
def wids_shard_merge_throughput(scale: float = 1.0) -> BenchSample:
    """The same storm through a 4-way ``ShardedCorrelator`` + ``merge``.

    Times the full sharded path — route, per-shard ingest, and the
    final ``open_seq`` k-way merge — and cross-checks the digest
    against the unsharded run (the merge law, enforced every bench
    run).
    """
    from repro.wids.correlate import AlertCorrelator, ShardedCorrelator
    from repro.wids.storm import alert_storm, run_storm, storm_digest

    n = _scaled(1_000_000, scale, 100_000)
    events = alert_storm(n, subjects=64, detectors=4, churn=0.05, seed=7)
    sharded = ShardedCorrelator(shards=4)
    ingest = sharded.ingest
    t0 = time.perf_counter()
    for detector, threshold, detection, t, trace_id, band in events:
        ingest(detector, threshold, detection, t, trace_id, band=band)
    merged = sharded.merge()
    elapsed = time.perf_counter() - t0
    digest = storm_digest(sharded)
    serial_digest = storm_digest(run_storm(AlertCorrelator(), events))
    if digest != serial_digest:
        raise AssertionError(
            "sharded merge law violated: sharded and serial correlators "
            "disagree on the same storm")
    return BenchSample(value=n / elapsed,
                       payload={"events": n, "shards": 4,
                                "merged_alerts": len(merged), **digest})


# --------------------------------------------------------------------------
# trace — flight-recorder overhead (PR 3); lower is better
# --------------------------------------------------------------------------

@register("trace", "overhead_ratio", unit="x", higher_is_better=False,
          tolerance=1.5)
def trace_overhead(scale: float = 1.0) -> BenchSample:
    """Recorded-over-unrecorded wall-clock ratio on the FIG2 world."""
    from repro.core.scenario import build_corp_scenario
    from repro.obs.lineage import recording

    def fig2_world():
        scenario = build_corp_scenario(seed=11)
        scenario.arm_download_mitm()
        victim = scenario.add_victim()
        scenario.sim.run_for(5.0)
        scenario.run_download_experiment(victim)

    t0 = time.perf_counter()
    fig2_world()
    base_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    with recording(capacity=8192) as rec:
        fig2_world()
    recorded_s = time.perf_counter() - t0
    summary = rec.summary()
    return BenchSample(
        value=recorded_s / base_s if base_s > 0 else 1.0,
        payload={"capacity": 8192, "lineages": summary["lineages"],
                 "hops": summary["hops"], "evicted": summary["evicted"]})


# --------------------------------------------------------------------------
# telemetry — the open-loop campaign daemon (PR 8)
# --------------------------------------------------------------------------

@register("fleet", "open_loop_sessions_per_s", unit="sessions/s",
          higher_is_better=True)
def fleet_open_loop_sessions(scale: float = 1.0) -> BenchSample:
    """Completed Poisson sessions/second through one open-loop shard.

    One seed of the ``python -m repro serve`` workload: the full corp
    world with the rogue armed, WIDS watching, clients arriving at a
    fixed simulated rate, metrics collected — the wall-clock cost of a
    shard slice-stepping its world end to end (including drain).
    """
    from repro.obs import collecting
    from repro.telemetry.shard import OpenLoopShard

    duration = max(1.0, 3.0 * scale)
    shard = OpenLoopShard(duration_s=duration, rate_per_s=12.0,
                          snapshot_every_s=1.0)
    t0 = time.perf_counter()
    with collecting():
        summary = shard(seed=1)
    elapsed = time.perf_counter() - t0
    return BenchSample(
        value=summary["completed"] / elapsed if elapsed > 0 else 0.0,
        payload={"arrived": summary["arrived"],
                 "completed": summary["completed"],
                 "failed": summary["failed"],
                 "compromised": summary["compromised"],
                 "alerts": summary["alerts"]})


@register("telemetry", "snapshot_export_per_s", unit="exports/s",
          higher_is_better=True)
def telemetry_snapshot_export(scale: float = 1.0) -> BenchSample:
    """Merged-registry exports/second (Prometheus text + JSON-lines).

    The daemon's scrape-path hot loop: snapshot a realistic registry,
    render the text exposition, and JSON-encode the snapshot record.
    The payload pins the rendered bytes (crc32) so a formatting change
    cannot masquerade as a perf change.
    """
    import json as _json

    from repro.obs.metrics import MetricsRegistry
    from repro.telemetry.prometheus import parse_exposition, render_exposition

    registry = MetricsRegistry()
    for i in range(40):
        registry.incr(f"telemetry.bench.counter.{i:02d}", i * 7 + 1)
        registry.set_gauge(f"telemetry.bench.gauge.{i:02d}", i * 0.25)
    for i in range(400):
        registry.observe("telemetry.session.latency_s", (i % 97) * 0.3,
                         lo=0.0, hi=40.0, bins=160)
        registry.add_time("telemetry.bench.timer", (i % 13) * 0.01)
    n = _scaled(300, scale, 30)
    text = ""
    t0 = time.perf_counter()
    for _ in range(n):
        snapshot = registry.snapshot()
        text = render_exposition(snapshot)
        _json.dumps({"kind": "snapshot", "index": 0, "seed": 1000,
                     "metrics": snapshot}, sort_keys=True,
                    separators=(",", ":"))
    elapsed = time.perf_counter() - t0
    families = parse_exposition(text)
    samples = sum(len(f["samples"]) for f in families.values())
    return BenchSample(
        value=n / elapsed if elapsed > 0 else 0.0,
        payload={"exports": n, "families": len(families),
                 "samples": samples,
                 "crc32": zlib.crc32(text.encode("utf-8"))})
