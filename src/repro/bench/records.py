"""Structured records for the pytest benchmarks under ``benchmarks/``.

The experiment benchmarks used to ``print()`` their reproduction
tables and telemetry lines — human-readable under ``pytest -s``,
invisible to machines.  Every emission now goes through this sink:
the table still prints (the ``-s`` experience is unchanged), and a
structured record accumulates in a session-wide list that
``benchmarks/conftest.py`` can dump as JSON via ``--bench-records``.

Records are plain dicts::

    {"kind": "table",  "area": "detect", "title": ..., "rows": [...]}
    {"kind": "record", "area": "wire",   "name": ...,  "fields": {...}}

Nothing here touches timing — these are the *shape* results (rates,
counts, confusion cells) whose determinism the repeat-run test pins.
"""

from __future__ import annotations

import json
from typing import List, Optional

__all__ = ["clear_records", "emit_record", "emit_table", "records",
           "write_records"]

_RECORDS: List[dict] = []


def emit_table(area: str, title: str, rows: list,
               order: Optional[list] = None) -> dict:
    """Print a reproduction table and append its structured record."""
    from repro.core.report import format_table

    if rows:
        headers = order or list(rows[0].keys())
        print("\n" + format_table(
            headers, [[r.get(h) for h in headers] for r in rows],
            title=title) + "\n")
    else:
        print(f"{title}\n  (no rows)")
    record = {"kind": "table", "area": area, "title": title, "rows": rows}
    _RECORDS.append(record)
    return record


def emit_record(area: str, name: str, **fields) -> dict:
    """Print one telemetry line and append its structured record."""
    rendered = " ".join(f"{k}={v}" for k, v in fields.items())
    print(f"\n{name}: {rendered}")
    record = {"kind": "record", "area": area, "name": name, "fields": fields}
    _RECORDS.append(record)
    return record


def records() -> List[dict]:
    """A copy of every record emitted this session."""
    return list(_RECORDS)


def clear_records() -> None:
    _RECORDS.clear()


def write_records(path: str) -> int:
    """Dump the session's records as JSON; return the record count."""
    with open(path, "w") as fh:
        json.dump({"records": _RECORDS}, fh, indent=2, default=str)
        fh.write("\n")
    return len(_RECORDS)
