"""``python -m repro bench`` — run, check, and update perf baselines.

Modes (composable)::

    python -m repro bench                     # run, print the table
    python -m repro bench --smoke             # scaled-down, 1 repeat
    python -m repro bench --area wire radio   # subset of areas
    python -m repro bench --json out.json     # combined machine output
    python -m repro bench --check [DIR]       # diff vs BENCH_*.json,
                                              # exit 1 on regression
    python -m repro bench --update [DIR]      # rewrite the baselines
                                              # (the intentional
                                              # re-baseline workflow)

``--check`` and ``--update`` default to the current directory — the
repository root, where the committed ``BENCH_<area>.json`` files live.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.bench.diff import diff_baselines
from repro.bench.registry import all_specs
from repro.bench.runner import load_baselines, run_suite, write_baselines

__all__ = ["add_bench_parser", "cmd_bench", "main"]


def add_bench_parser(sub) -> None:
    """Attach the ``bench`` subcommand to ``python -m repro``'s parser."""
    bench = sub.add_parser(
        "bench", help="run the perf benchmark suite; check or update "
                      "the committed BENCH_<area>.json baselines")
    bench.add_argument("--area", nargs="*", default=None,
                       help="restrict to these areas (default: all)")
    bench.add_argument("--repeat", type=int, default=3,
                       help="median-of-k repetitions (default 3)")
    bench.add_argument("--smoke", action="store_true",
                       help="scaled-down single-repeat run for CI gates")
    bench.add_argument("--json", dest="json_path", default=None,
                       help="write the combined run as one JSON file")
    bench.add_argument("--check", nargs="?", const=".", default=None,
                       metavar="DIR",
                       help="diff against BENCH_*.json in DIR (default .); "
                            "exit 1 on regression or missing metric")
    bench.add_argument("--update", nargs="?", const=".", default=None,
                       metavar="DIR",
                       help="write/overwrite BENCH_<area>.json in DIR "
                            "(default .) from this run")


def _print_run_table(docs: dict) -> None:
    from repro.core.report import format_table

    rows = []
    for area in sorted(docs):
        for metric, entry in sorted(docs[area]["metrics"].items()):
            direction = "higher" if entry["higher_is_better"] else "lower"
            rows.append([area, metric, f"{entry['value']:g}", entry["unit"],
                         direction, f"{entry['tolerance']:.0%}",
                         entry["repeat"]])
    print(format_table(
        ["area", "metric", "value", "unit", "better", "tolerance", "k"],
        rows, title="repro.bench suite"))


def cmd_bench(areas: Optional[list], repeat: int, smoke: bool,
              json_path: Optional[str], check_dir: Optional[str],
              update_dir: Optional[str]) -> int:
    specs = all_specs(areas)  # KeyError -> exit 2, handled by main()
    print(f"running {len(specs)} benchmark(s) across "
          f"{len({s.area for s in specs})} area(s)"
          + (" [smoke]" if smoke else ""))
    docs = run_suite(area_filter=areas, repeat=repeat, smoke=smoke,
                     progress=lambda msg: print(f"  {msg}", flush=True))
    print()
    _print_run_table(docs)

    if json_path:
        try:
            with open(json_path, "w") as fh:
                json.dump({"schema": 1, "areas": docs}, fh, indent=2,
                          sort_keys=True)
                fh.write("\n")
        except OSError as exc:
            print(f"cannot write {json_path}: {exc}", file=sys.stderr)
            return 1
        print(f"\nwrote {json_path}")

    if update_dir is not None:
        paths = write_baselines(docs, update_dir)
        for path in paths:
            print(f"wrote {path}")
        print(f"re-baselined {len(paths)} area(s); commit the BENCH_*.json "
              f"files with a note on why the numbers moved")

    if check_dir is not None:
        baselines = load_baselines(check_dir, area_filter=areas)
        if not baselines:
            print(f"no BENCH_*.json baselines under {check_dir!r} — run "
                  f"`python -m repro bench --update` first", file=sys.stderr)
            return 1
        report = diff_baselines(baselines, docs)
        print()
        print(report.report())
        if not report.ok():
            print("\nbench gate: FAIL (regression beyond tolerance or "
                  "missing metric; re-baseline intentionally with "
                  "`python -m repro bench --update`)", file=sys.stderr)
            return 1
        print("\nbench gate: ok")
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.bench")
    sub = parser.add_subparsers(dest="command", required=True)
    add_bench_parser(sub)
    args = parser.parse_args(["bench"] + list(argv or []))
    return cmd_bench(args.area, args.repeat, args.smoke, args.json_path,
                     args.check, args.update)
