"""Benchmark execution and ``BENCH_<area>.json`` emission.

The runner's contract:

* each registered benchmark runs ``repeat`` times; the recorded value
  is the **median** of the samples (robust to one noisy run, cheap
  enough to commit to);
* every emitted document carries an environment capture — Python
  version, platform, ``PYTHONHASHSEED``, commit, usable cores — so a
  baseline read six PRs later says *where* its numbers came from;
* emission is deterministic: sorted keys, fixed float rounding, one
  file per area named ``BENCH_<area>.json``.

The committed baselines live at the repository root; ``--update``
rewrites them, ``--check`` diffs a fresh run against them (see
:mod:`repro.bench.diff`).
"""

from __future__ import annotations

import glob
import json
import os
import platform
import statistics
import subprocess
import sys
from typing import Callable, Dict, List, Optional

from repro.bench.registry import BenchSample, BenchSpec, all_specs

__all__ = ["baseline_path", "capture_environment", "load_baselines",
           "run_spec", "run_suite", "write_baselines"]

SCHEMA_VERSION = 1

#: ``--smoke`` workload scale: small enough for a CI gate measured in
#: tens of seconds, large enough that the rates stay meaningful (each
#: benchmark applies its own floor).
SMOKE_SCALE = 0.25


def capture_environment(*, mode: str = "full") -> dict:
    """Where these numbers came from — recorded in every emitted doc."""
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            timeout=10).stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        commit = "unknown"
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cores = os.cpu_count() or 1
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "usable_cores": cores,
        "pythonhashseed": os.environ.get("PYTHONHASHSEED", "unset"),
        "commit": commit,
        "mode": mode,
    }


def _round(value: float) -> float:
    """Fixed rounding so emitted docs diff cleanly across runs."""
    if value == 0 or not (value == value):  # 0 or NaN
        return value
    return float(f"{value:.6g}")


def run_spec(spec: BenchSpec, *, repeat: int = 3, scale: float = 1.0) -> dict:
    """Run one benchmark ``repeat`` times; return its metric entry.

    The value is the median of the samples.  The payload is taken from
    the first run — the determinism test pins that every run's payload
    is identical, so which one we keep is immaterial.
    """
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    samples: List[BenchSample] = [spec.run(scale=scale) for _ in range(repeat)]
    values = [s.value for s in samples]
    return {
        "value": _round(statistics.median(values)),
        "unit": spec.unit,
        "higher_is_better": spec.higher_is_better,
        "tolerance": spec.tolerance,
        "repeat": repeat,
        "samples": [_round(v) for v in values],
        "payload": samples[0].payload,
    }


def run_suite(*, area_filter: "list[str] | None" = None, repeat: int = 3,
              smoke: bool = False,
              progress: Optional[Callable[[str], None]] = None
              ) -> Dict[str, dict]:
    """Run the registered suite; return ``{area: BENCH document}``."""
    scale = SMOKE_SCALE if smoke else 1.0
    if smoke:
        repeat = 1
    env = capture_environment(mode="smoke" if smoke else "full")
    docs: Dict[str, dict] = {}
    for spec in all_specs(area_filter):
        if progress is not None:
            progress(f"bench {spec.area}/{spec.metric} "
                     f"(x{repeat}, scale {scale:g}) ...")
        doc = docs.setdefault(spec.area, {
            "schema": SCHEMA_VERSION,
            "area": spec.area,
            "environment": env,
            "metrics": {},
        })
        doc["metrics"][spec.metric] = run_spec(spec, repeat=repeat,
                                               scale=scale)
    return docs


def baseline_path(directory: str, area: str) -> str:
    return os.path.join(directory, f"BENCH_{area}.json")


def write_baselines(docs: Dict[str, dict], directory: str) -> List[str]:
    """Write one ``BENCH_<area>.json`` per area; return the paths."""
    os.makedirs(directory, exist_ok=True)
    paths = []
    for area in sorted(docs):
        path = baseline_path(directory, area)
        with open(path, "w") as fh:
            json.dump(docs[area], fh, indent=2, sort_keys=True)
            fh.write("\n")
        paths.append(path)
    return paths


def load_baselines(directory: str,
                   area_filter: "list[str] | None" = None
                   ) -> Dict[str, dict]:
    """Read every ``BENCH_*.json`` under ``directory`` into ``{area: doc}``.

    Files that fail to parse raise — a corrupt committed baseline must
    fail the gate loudly, not vanish from the diff.
    """
    docs: Dict[str, dict] = {}
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        with open(path) as fh:
            doc = json.load(fh)
        area = doc.get("area")
        if not area:
            name = os.path.basename(path)
            area = name[len("BENCH_"):-len(".json")]
        if area_filter and area not in area_filter:
            continue
        docs[area] = doc
    return docs


def main() -> int:  # pragma: no cover - thin alias
    from repro.bench.cli import main as cli_main
    return cli_main(sys.argv[1:])
