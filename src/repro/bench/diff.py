"""The noise-tolerant baseline differ.

Classification rules, in order, for each metric present in either the
baseline or the current run:

* in current only → ``new`` (informational: commit a fresh baseline);
* in baseline only → ``missing`` (fails the gate by default — a
  silently dropped benchmark is how regressions go dark);
* moved in the *better* direction, or unchanged → ``improvement`` /
  ``within`` — **never** flagged, by construction;
* moved in the *worse* direction by a relative fraction ≤ the metric's
  tolerance → ``within`` (noise);
* worse beyond tolerance → ``regression`` (fails the gate).

"Worse" respects ``higher_is_better``; the relative worsening is
``(baseline - current) / |baseline|`` for higher-is-better metrics and
``(current - baseline) / |baseline|`` otherwise.  A zero baseline
makes any worsening infinite (flagged) and any non-worsening clean —
there is no direction in which a degenerate baseline can mask a real
regression.  Non-finite current values are always regressions: a
benchmark that produced NaN did not get faster.

Tolerance is read from the *current* run's registration (code is the
source of truth), falling back to the baseline document for metrics
the current registry no longer describes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

from repro.bench.registry import DEFAULT_TOLERANCE

__all__ = ["DiffReport", "MetricDelta", "diff_baselines", "diff_metrics"]

KINDS = ("regression", "missing", "new", "improvement", "within")


@dataclass(frozen=True)
class MetricDelta:
    """One metric's fate across the baseline → current comparison."""

    area: str
    metric: str
    kind: str                       # one of KINDS
    baseline: float = math.nan
    current: float = math.nan
    worsening: float = 0.0          # relative, >= 0; inf for zero-baseline
    tolerance: float = DEFAULT_TOLERANCE
    unit: str = ""
    higher_is_better: bool = True

    @property
    def name(self) -> str:
        return f"{self.area}/{self.metric}"

    def describe(self) -> str:
        if self.kind == "new":
            return (f"{self.name}: new metric "
                    f"({self.current:g} {self.unit}) — not in baseline")
        if self.kind == "missing":
            return (f"{self.name}: missing from current run "
                    f"(baseline {self.baseline:g} {self.unit})")
        if self.kind == "improvement":
            denom = abs(self.baseline)
            moved = (abs(self.current - self.baseline) / denom
                     if denom > 0 else math.inf)
            arrow, magnitude = "better", moved
        else:
            arrow, magnitude = "worse", self.worsening
        return (f"{self.name}: {self.baseline:g} -> {self.current:g} "
                f"{self.unit} ({magnitude:+.1%} {arrow}, "
                f"tolerance {self.tolerance:.0%})")


@dataclass
class DiffReport:
    """Every per-metric delta, partitioned by kind."""

    deltas: List[MetricDelta] = field(default_factory=list)

    def of_kind(self, kind: str) -> List[MetricDelta]:
        return [d for d in self.deltas if d.kind == kind]

    @property
    def regressions(self) -> List[MetricDelta]:
        return self.of_kind("regression")

    @property
    def missing(self) -> List[MetricDelta]:
        return self.of_kind("missing")

    @property
    def new(self) -> List[MetricDelta]:
        return self.of_kind("new")

    @property
    def improvements(self) -> List[MetricDelta]:
        return self.of_kind("improvement")

    @property
    def within(self) -> List[MetricDelta]:
        return self.of_kind("within")

    def ok(self, *, fail_on_missing: bool = True) -> bool:
        if self.regressions:
            return False
        return not (fail_on_missing and self.missing)

    def summary(self) -> str:
        counts = {k: len(self.of_kind(k)) for k in KINDS}
        return (f"{counts['regression']} regression(s), "
                f"{counts['missing']} missing, {counts['new']} new, "
                f"{counts['improvement']} improvement(s), "
                f"{counts['within']} within tolerance")

    def report(self) -> str:
        lines = [f"baseline diff: {self.summary()}"]
        for kind, label in (("regression", "REGRESSION"),
                            ("missing", "MISSING"), ("new", "NEW"),
                            ("improvement", "improved"),
                            ("within", "ok")):
            for d in self.of_kind(kind):
                lines.append(f"  [{label:10s}] {d.describe()}")
        return "\n".join(lines)


def _worsening(baseline: float, current: float,
               higher_is_better: bool) -> float:
    """Relative movement in the bad direction (>= 0; 0 when not worse)."""
    delta = (baseline - current) if higher_is_better else (current - baseline)
    if delta <= 0:
        return 0.0
    denom = abs(baseline)
    return delta / denom if denom > 0 else math.inf


def diff_metrics(area: str, baseline_metrics: Dict[str, dict],
                 current_metrics: Dict[str, dict]) -> List[MetricDelta]:
    """Compare one area's metric tables; see the module doc for rules."""
    deltas: List[MetricDelta] = []
    for metric in sorted(set(baseline_metrics) | set(current_metrics)):
        base = baseline_metrics.get(metric)
        cur = current_metrics.get(metric)
        src = cur if cur is not None else base
        unit = src.get("unit", "")
        hib = bool(src.get("higher_is_better", True))
        tolerance = float((cur or {}).get(
            "tolerance", (base or {}).get("tolerance", DEFAULT_TOLERANCE)))
        if base is None:
            deltas.append(MetricDelta(area, metric, "new",
                                      current=float(cur["value"]),
                                      tolerance=tolerance, unit=unit,
                                      higher_is_better=hib))
            continue
        if cur is None:
            deltas.append(MetricDelta(area, metric, "missing",
                                      baseline=float(base["value"]),
                                      tolerance=tolerance, unit=unit,
                                      higher_is_better=hib))
            continue
        b, c = float(base["value"]), float(cur["value"])
        if not math.isfinite(c):
            deltas.append(MetricDelta(area, metric, "regression",
                                      baseline=b, current=c,
                                      worsening=math.inf,
                                      tolerance=tolerance, unit=unit,
                                      higher_is_better=hib))
            continue
        worsening = _worsening(b, c, hib)
        if worsening == 0.0 and c != b:
            kind = "improvement"
        elif worsening > tolerance:
            kind = "regression"
        else:
            kind = "within"
        deltas.append(MetricDelta(area, metric, kind, baseline=b, current=c,
                                  worsening=worsening, tolerance=tolerance,
                                  unit=unit, higher_is_better=hib))
    return deltas


def diff_baselines(baseline_docs: Dict[str, dict],
                   current_docs: Dict[str, dict]) -> DiffReport:
    """Diff ``{area: BENCH doc}`` maps; safe on empty either side."""
    report = DiffReport()
    for area in sorted(set(baseline_docs) | set(current_docs)):
        base = (baseline_docs.get(area) or {}).get("metrics", {})
        cur = (current_docs.get(area) or {}).get("metrics", {})
        report.deltas.extend(diff_metrics(area, base, cur))
    return report
